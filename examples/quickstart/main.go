// Quickstart: build the paper's software FM radio with the Go builder API,
// compile it, and run it on the sequential runtime — the §3 example
// end to end (E9 in EXPERIMENTS.md).
package main

import (
	"fmt"
	"log"

	"streamit/internal/apps"
	"streamit/internal/core"
	"streamit/internal/exec"
	"streamit/internal/ir"
)

func main() {
	// A small FM radio: antenna -> low-pass -> demodulator -> 6-band
	// equalizer -> adder. We replace the speaker with a collecting sink so
	// the output is visible.
	bands, taps := 6, 32
	var branches []ir.Stream
	for i := 0; i < bands; i++ {
		lo := 0.1 + 0.8*float64(i)/float64(bands)
		branches = append(branches, ir.Pipe(fmt.Sprintf("band%d", i),
			apps.FIR(fmt.Sprintf("bpfLow%d", i), taps, lo),
			apps.FIR(fmt.Sprintf("bpfHigh%d", i), taps, lo+0.1),
		))
	}
	speaker, samples := exec.SliceSink("speaker")
	radio := ir.Pipe("FMRadio",
		apps.Source("antenna"),
		apps.FIR("lowpass", taps, 0.25),
		apps.FMDemod("demod"),
		ir.SJ("equalizer", ir.Duplicate(), ir.RoundRobin(), branches...),
		apps.Adder("eqsum", bands),
		speaker,
	)

	c, err := core.Compile(&ir.Program{Name: "FMRadio", Top: radio}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(c.Report())

	engine, err := c.Engine()
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Run(32); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfirst audio samples:")
	for i, v := range *samples {
		if i >= 8 {
			break
		}
		fmt.Printf("  audio[%d] = %+.6f\n", i, v)
	}
	fmt.Printf("total firings: %d\n", engine.Firings)
}
