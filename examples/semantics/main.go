// Semantics tour: the paper's information-wavefront machinery made
// visible. Builds a small rate-changing pipeline and shows (1) the
// closed-form filter transfer functions against the simulation-based ones,
// (2) end-to-end information latency, and (3) a MAXITEMS-bounded schedule
// (the operational-semantics extension that caps live items).
package main

import (
	"fmt"
	"log"

	"streamit/internal/apps"
	"streamit/internal/core"
	"streamit/internal/ir"
	"streamit/internal/sched"
	"streamit/internal/sdep"
)

func main() {
	// src -> A (peek 5, pop 2, push 3) -> B (peek 4, pop 4, push 1) -> sink
	prog := &ir.Program{Name: "semantics", Top: ir.Pipe("main",
		apps.Source("src"),
		apps.FIRDecim("A", 5, 2, 0.2), // peek 5, pop 2, push 1... see below
		apps.Adder("B", 4),
		apps.Sink("out", 1),
	)}
	c, err := core.Compile(prog, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	g, s := c.Graph, c.Schedule
	calc := sdep.NewCalc(g, s)

	var edgeIntoA, edgeIntoB, edgeOut *ir.Edge
	for _, e := range g.Edges {
		if e.Dst.Kind == ir.NodeFilter {
			switch e.Dst.Filter.Kernel.Name {
			case "A":
				edgeIntoA = e
			case "B":
				edgeIntoB = e
			case "out":
				edgeOut = e
			}
		}
	}

	fmt.Println("filter A transfer functions: closed form vs simulation")
	fmt.Printf("%6s %10s %10s %10s %10s\n", "x", "ma(x)", "sim", "mi(x)", "sim")
	kA := findKernel(g, "A")
	for _, x := range []int64{1, 3, 5, 8, 13, 21} {
		ma := sdep.FilterMax(kA.Peek, kA.Pop, kA.Push, x)
		maSim, err := calc.Ma(edgeIntoA, edgeIntoB, x)
		if err != nil {
			log.Fatal(err)
		}
		mi := sdep.FilterMin(kA.Peek, kA.Pop, kA.Push, x)
		miSim, err := calc.Mi(edgeIntoA, edgeIntoB, x)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %10d %10d %10d %10d\n", x, ma, maSim, mi, miSim)
	}

	lat, err := sdep.InfoLatency(calc, edgeIntoA, edgeOut, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninformation latency A-input -> sink-input at item 10: %d items\n", lat)

	// MAXITEMS: the same program scheduled under a live-item bound.
	free, err := sched.Compute(g)
	if err != nil {
		log.Fatal(err)
	}
	bounded, err := sched.ComputeOpts(g, sched.Options{MaxLiveItems: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbuffer bounds (items), unconstrained vs MAXITEMS=16:\n")
	for _, e := range g.Edges {
		fmt.Printf("  %-24s %4d  ->  %4d\n", e.String(), free.BufCap[e.ID], bounded.BufCap[e.ID])
	}
}

func findKernel(g *ir.Graph, name string) *struct{ Peek, Pop, Push int } {
	for _, n := range g.Nodes {
		if n.Kind == ir.NodeFilter && n.Filter.Kernel.Name == name {
			k := n.Filter.Kernel
			return &struct{ Peek, Pop, Push int }{k.Peek, k.Pop, k.Push}
		}
	}
	log.Fatalf("filter %s not found", name)
	return nil
}
