// Serving: embed the multi-tenant streaming server, load one program,
// and run many concurrent sessions over it — two self-contained FMRadio
// tenants plus a fed session whose inputs arrive at runtime. The same
// surface is exposed over HTTP by cmd/streamit-serve; this example uses
// the in-process API directly.
package main

import (
	"fmt"
	"log"
	"time"

	"streamit/internal/apps"
	"streamit/internal/serve"
)

// gainSrc is a tiny fed pipeline: its source is overridden per session,
// so every tenant streams its own samples through the shared compiled
// program.
const gainSrc = `
void->float filter Mic() { work push 1 { push(0); } }
float->float filter Gain(float g) { work pop 1 push 1 { push(pop() * g); } }
float->void filter Out() { work pop 1 { pop(); } }
void->void pipeline Amp() { add Mic(); add Gain(2.5); add Out(); }
`

func main() {
	srv := serve.New(serve.Config{})
	defer srv.Close()

	// Compile once; every session stamped below shares the artifacts.
	if _, err := srv.LoadProgram("radio", apps.FMRadio(4, 16)); err != nil {
		log.Fatal(err)
	}
	if _, err := srv.LoadSource("amp", gainSrc, "Amp"); err != nil {
		log.Fatal(err)
	}

	// Two self-contained radio tenants.
	var radios []*serve.Session
	for i := 0; i < 2; i++ {
		s, err := srv.NewSession(serve.SessionOptions{Program: "radio", Tenant: fmt.Sprintf("radio%d", i)})
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Run(20); err != nil {
			log.Fatal(err)
		}
		radios = append(radios, s)
	}

	// A fed session: override the Mic source and push samples in.
	amp, err := srv.NewSession(serve.SessionOptions{Program: "amp", Source: "Mic", Tenant: "studio"})
	if err != nil {
		log.Fatal(err)
	}
	samples := make([]float64, 16)
	for i := range samples {
		samples[i] = float64(i) * 0.5
	}
	if _, err := amp.Feed(samples); err != nil {
		log.Fatal(err)
	}
	if err := amp.Run(16); err != nil {
		log.Fatal(err)
	}

	for _, s := range append(radios, amp) {
		_, goal := s.Progress()
		if err := s.WaitDone(goal, 10*time.Second); err != nil {
			log.Fatal(err)
		}
	}

	out := amp.Drain(8)
	fmt.Println("amplified samples (input * 2.5):")
	for i, v := range out {
		fmt.Printf("  out[%d] = %.3f\n", i, v)
	}

	st := srv.Stats()
	fmt.Printf("\nserver: %d sessions created, %d iterations completed, p99 latency %v\n",
		st.Sessions.Created, st.Iterations.Completed, time.Duration(st.LatencyNS.P99))
	for tenant, ts := range st.Tenants {
		fmt.Printf("  tenant %-8s sessions=%d iters=%d\n", tenant, ts.Sessions, ts.Iterations)
	}
}
