// Frequency-hopping radio: teleport messaging in action (E8). The
// spectral-check filter sends setFreq messages upstream to the RF-to-IF
// mixer with a latency of 4 work executions; delivery lands exactly on the
// information wavefront. The same radio built with manually-embedded
// control tokens runs measurably slower — the paper's 49% result.
package main

import (
	"fmt"
	"log"
	"time"

	"streamit/internal/apps"
	"streamit/internal/exec"
)

func main() {
	fmt.Println("frequency-hopping radio: teleport messaging vs manual embedding")

	rate := func(teleport bool) float64 {
		prog := apps.FreqHoppingRadio(teleport)
		e, err := exec.New(prog)
		if err != nil {
			log.Fatal(err)
		}
		if err := e.RunInit(); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		iters := 0
		for time.Since(start) < 300*time.Millisecond {
			if err := e.RunSteady(64); err != nil {
				log.Fatal(err)
			}
			iters += 64
		}
		return float64(iters) / time.Since(start).Seconds()
	}

	tele := rate(true)
	manual := rate(false)
	fmt.Printf("  teleport messaging:  %10.0f samples/sec\n", tele)
	fmt.Printf("  manual embedding:    %10.0f samples/sec\n", manual)
	fmt.Printf("  improvement:         %9.0f%%  (paper reports 49%%)\n", (tele/manual-1)*100)
}
