// Parallelization demo (E2): the DCT benchmark mapped onto the simulated
// 16-tile machine with every strategy of the paper's evaluation. DCT is
// the case study where coarse-grained data parallelism shines (the
// dominant transform filter fisses across all tiles) while software
// pipelining alone is stuck behind it.
package main

import (
	"fmt"
	"log"

	"streamit/internal/apps"
	"streamit/internal/core"
	"streamit/internal/machine"
	"streamit/internal/partition"
)

func main() {
	c, err := core.Compile(apps.DCT(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	fmt.Printf("DCT on a %dx%d tile grid (%.0f MHz, peak %.0f MFLOPS)\n\n",
		cfg.Rows, cfg.Cols, cfg.ClockMHz, cfg.PeakMFLOPS())

	base, err := c.MapOnto(partition.StratSequential, cfg, 24)
	if err != nil {
		log.Fatal(err)
	}
	strategies := []partition.Strategy{
		partition.StratTask,
		partition.StratFineData,
		partition.StratCoarseData,
		partition.StratSWP,
		partition.StratCombined,
		partition.StratSpace,
	}
	fmt.Printf("  %-22s %12s %10s %8s\n", "strategy", "cycles/iter", "speedup", "util")
	fmt.Printf("  %-22s %12.0f %9.2fx %7.0f%%\n", "sequential", base.CyclesPerIter, 1.0, 100*base.Utilization)
	for _, s := range strategies {
		res, err := c.MapOnto(s, cfg, 24)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %12.0f %9.2fx %7.0f%%\n",
			s, res.CyclesPerIter, res.Speedup(base), 100*res.Utilization)
	}
}
