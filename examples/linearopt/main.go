// Linear optimization demo (E7): a chain of FIR filters and rate
// converters is analyzed, collapsed into a single matrix filter, and (for
// long convolutions) translated into the frequency domain. Both versions
// run through the same interpreter; the measured speedup is algorithmic.
package main

import (
	"fmt"
	"log"
	"time"

	"streamit/internal/apps"
	"streamit/internal/core"
	"streamit/internal/exec"
	"streamit/internal/ir"
	"streamit/internal/linear"
)

func buildChain() *ir.Program {
	return &ir.Program{Name: "chain", Top: ir.Pipe("chain",
		apps.Source("in"),
		apps.Upsample("up2", 2),
		apps.FIR("interp", 64, 0.21),
		apps.Downsample("down2", 2),
		apps.FIR("post", 32, 0.4),
		apps.Sink("out", 1),
	)}
}

func measure(prog *ir.Program) float64 {
	e, err := exec.New(prog)
	if err != nil {
		log.Fatal(err)
	}
	if err := e.RunInit(); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	iters := 0
	for time.Since(start) < 300*time.Millisecond {
		if err := e.RunSteady(256); err != nil {
			log.Fatal(err)
		}
		iters += 256
	}
	return float64(iters) / time.Since(start).Seconds()
}

func main() {
	// Analysis: which filters are linear?
	prog := buildChain()
	fmt.Println("linear analysis of the rate-converter chain:")
	for name, rep := range linear.Analyze(prog.Top) {
		fmt.Printf("  %-10s peek=%-3d pop=%-2d push=%-2d nonzeros=%d\n",
			name, rep.Peek, rep.Pop, rep.Push, rep.NonZeros())
	}

	base := measure(buildChain())

	opt := linear.DefaultOptions()
	c, err := core.Compile(buildChain(), core.Options{Linear: &opt})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimizer: %d linear filters, %d combined away, %d matrix kernels, %d frequency kernels\n",
		c.Linear.LinearFilters, c.Linear.Combined, c.Linear.MatrixReplaced, c.Linear.FreqTranslated)

	optRate := measure(c.Program)
	fmt.Printf("\nthroughput (steady iterations/sec):\n")
	fmt.Printf("  original:  %10.0f\n", base)
	fmt.Printf("  optimized: %10.0f\n", optRate)
	fmt.Printf("  speedup:   %9.2fx\n", optRate/base)
}
