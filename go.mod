module streamit

go 1.22
