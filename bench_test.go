// Benchmarks regenerating every table and figure of the paper's evaluation
// (see EXPERIMENTS.md for the experiment index E1..E8). Each benchmark
// reports the figure's headline quantities as custom metrics; running
//
//	go test -bench=. -benchmem
//
// at the module root reproduces the evaluation end to end. The full tables
// are printed by cmd/streamit-bench.
package streamit_test

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"

	"streamit/internal/bench"
	"streamit/internal/partition"
)

// BenchmarkFigBenchChar regenerates E1, the benchmark characteristics
// table (filters, peeking, state, paths, comp/comm, stateful work).
func BenchmarkFigBenchChar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.BenchChar()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatalf("expected 12 benchmarks, got %d", len(rows))
		}
	}
}

func speedupBench(b *testing.B, strats ...partition.Strategy) {
	b.Helper()
	var means map[partition.Strategy]float64
	for i := 0; i < b.N; i++ {
		var err error
		_, means, err = bench.Speedups(strats...)
		if err != nil {
			b.Fatal(err)
		}
	}
	for s, m := range means {
		b.ReportMetric(m, "x-geomean-"+metricName(s))
	}
}

func metricName(s partition.Strategy) string {
	switch s {
	case partition.StratTask:
		return "task"
	case partition.StratFineData:
		return "finegrained"
	case partition.StratCoarseData:
		return "task+data"
	case partition.StratSWP:
		return "task+swp"
	case partition.StratCombined:
		return "task+data+swp"
	case partition.StratSpace:
		return "space"
	}
	return string(s)
}

// BenchmarkFigMainComp regenerates E2: Task, Task+Data, and
// Task+Data+SWP speedups over single core on 16 tiles (paper geomeans:
// 2.27x / 9.9x / ~14.4x).
func BenchmarkFigMainComp(b *testing.B) {
	speedupBench(b, partition.StratTask, partition.StratCoarseData, partition.StratCombined)
}

// BenchmarkFigFineGrained regenerates E3: fine-grained data parallelism
// versus the coarse-grained technique.
func BenchmarkFigFineGrained(b *testing.B) {
	speedupBench(b, partition.StratFineData, partition.StratCoarseData)
}

// BenchmarkFigSoftPipe regenerates E4: Task and Task+SWP (paper: SWP 7.7x
// over single core).
func BenchmarkFigSoftPipe(b *testing.B) {
	speedupBench(b, partition.StratTask, partition.StratSWP)
}

// BenchmarkFigThroughput regenerates E5: utilization and MFLOPS of the
// combined technique (peak 7200 MFLOPS).
func BenchmarkFigThroughput(b *testing.B) {
	var rows []bench.ThruputRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Throughput()
		if err != nil {
			b.Fatal(err)
		}
	}
	var minU, maxM float64 = 1, 0
	for _, r := range rows {
		if r.Utilization < minU {
			minU = r.Utilization
		}
		if r.MFLOPS > maxM {
			maxM = r.MFLOPS
		}
	}
	b.ReportMetric(100*minU, "%min-utilization")
	b.ReportMetric(maxM, "MFLOPS-max")
}

// BenchmarkFigVsSpace regenerates E6: the combined technique normalized to
// the prior work's space multiplexing.
func BenchmarkFigVsSpace(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		var err error
		_, mean, err = bench.VsSpace()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mean, "x-geomean-vs-space")
}

// BenchmarkTableLinear regenerates E7: measured interpreter speedup from
// linear combination and frequency translation (paper: ~400% average).
func BenchmarkTableLinear(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		var err error
		_, mean, err = bench.LinearBench()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mean, "x-geomean-linear")
	b.ReportMetric((mean-1)*100, "%improvement")
}

// BenchmarkTableTeleport regenerates E8: the frequency-hopping radio with
// teleport messaging versus manual embedding (paper: 49%).
func BenchmarkTableTeleport(b *testing.B) {
	var res *bench.TeleportResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.TeleportBench()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Improvement, "%improvement")
}

// BenchmarkVMSpeedup measures the bytecode-VM execution backend against
// the tree-walking interpreter on the linear suite's work functions
// (items/sec at the sinks; acceptance floor is a 1.5x geomean).
func BenchmarkVMSpeedup(b *testing.B) {
	var rows []bench.VMRow
	var mean float64
	for i := 0; i < b.N; i++ {
		var err error
		rows, mean, err = bench.VMBench()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, "x-"+r.Name)
	}
	b.ReportMetric(mean, "x-geomean-vm")
}

// BenchmarkAblationScaling regenerates A1: geomean speedups at several
// machine sizes.
func BenchmarkAblationScaling(b *testing.B) {
	var rows []bench.ScalingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Scaling([]int{4, 16, 32})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Combined, fmt.Sprintf("x-combined-%dtiles", r.Tiles))
	}
}

// BenchmarkAblationFreqBlocks regenerates A3: frequency-translation
// speedup vs overlap-save block size for a 512-tap FIR.
func BenchmarkAblationFreqBlocks(b *testing.B) {
	var rows []bench.BlockRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.FreqBlockAblation()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, fmt.Sprintf("x-block%d", r.Block))
	}
}

// BenchmarkMappedSpeedup measures the host-mapped engine (the coarsen+fiss
// plans run on real cores by exec.MappedEngine) against the
// goroutine-per-filter ParallelEngine across the parallelization suite,
// in sink items per second. GOMAXPROCS is raised to at least 8 so the
// measurement exercises a real multi-worker mapping even on small hosts.
// With STREAMIT_BENCH_JSON=dir, streamit-bench/v1 snapshots land in dir
// (BENCH_<app>.json per app plus BENCH_mapped_suite.json).
func BenchmarkMappedSpeedup(b *testing.B) {
	workers := runtime.NumCPU()
	if workers < 8 {
		workers = 8
	}
	prevProcs := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prevProcs)
	prevDir := bench.JSONDir
	bench.JSONDir = os.Getenv("STREAMIT_BENCH_JSON")
	defer func() { bench.JSONDir = prevDir }()

	var rows []bench.MappedRow
	var mean float64
	for i := 0; i < b.N; i++ {
		var err error
		rows, mean, err = bench.MappedBench(workers)
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := bench.WriteMappedSnapshots(rows, mean, workers); err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, "x-"+r.Name)
	}
	b.ReportMetric(mean, "x-geomean-mapped")
}

// BenchmarkMappedSWP measures coarse-grained software pipelining on real
// cores: every suite app under the lockstep task and task+data plans and
// under both pipelined strategies (task+swp, task+data+swp), on the
// host-mapped engine. The headline metric is the geomean ratio of the
// best pipelined strategy over the task+data plan. GOMAXPROCS is raised
// to at least 8 so the stage skew spans real workers. With
// STREAMIT_BENCH_JSON=dir, a streamit-bench/v1 snapshot lands in
// dir/BENCH_mapped_swp.json.
func BenchmarkMappedSWP(b *testing.B) {
	workers := runtime.NumCPU()
	if workers < 8 {
		workers = 8
	}
	prevProcs := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prevProcs)
	prevDir := bench.JSONDir
	bench.JSONDir = os.Getenv("STREAMIT_BENCH_JSON")
	defer func() { bench.JSONDir = prevDir }()

	var rows []bench.MappedRow
	var vsTaskdata, vsTask float64
	for i := 0; i < b.N; i++ {
		var err error
		rows, vsTaskdata, vsTask, err = bench.MappedSWPBench(workers)
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := bench.WriteSWPSnapshot(rows, workers); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(vsTaskdata, "x-swp-vs-taskdata")
	b.ReportMetric(vsTask, "x-swp-vs-task")
}

// BenchmarkMappedRecovery measures the fault-tolerance costs of the mapped
// engine: steady-state throughput with and without per-iteration
// coordinated checkpoints, the checkpoint image size, and the wall time of
// a run that crashes a worker mid-way and recovers onto the survivors.
// With STREAMIT_BENCH_JSON=dir, a streamit-bench/v1 snapshot lands in
// dir/BENCH_mapped_recovery.json.
func BenchmarkMappedRecovery(b *testing.B) {
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	prevProcs := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prevProcs)
	prevDir := bench.JSONDir
	bench.JSONDir = os.Getenv("STREAMIT_BENCH_JSON")
	defer func() { bench.JSONDir = prevDir }()

	var res *bench.RecoveryResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RecoveryBench(workers)
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := bench.WriteRecoverySnapshot(res); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.OverheadPct, "%ckpt-overhead")
	b.ReportMetric(float64(res.ImageBytes), "ckpt-bytes")
	b.ReportMetric(res.RecoveryMS, "ms-crash-recover")
}

// BenchmarkMappedElastic measures elastic runtime re-planning on the
// skewed synthetic pipeline: throughput under the mis-planned static
// assignment, under the elastic engine that re-packs from its live
// profile, and under the oracle assignment built with perfect per-firing
// measurements (acceptance: elastic within ~10% of oracle), plus the
// mid-run resize bit-identity check. With STREAMIT_BENCH_JSON=dir, a
// streamit-bench/v1 snapshot lands in dir/BENCH_mapped_elastic.json.
func BenchmarkMappedElastic(b *testing.B) {
	prevProcs := runtime.GOMAXPROCS(bench.ElasticWorkers + 1)
	defer runtime.GOMAXPROCS(prevProcs)
	prevDir := bench.JSONDir
	bench.JSONDir = os.Getenv("STREAMIT_BENCH_JSON")
	defer func() { bench.JSONDir = prevDir }()

	var res *bench.ElasticResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.ElasticBench(bench.ElasticWorkers)
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := bench.WriteElasticSnapshot(res); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.ElasticRate, "items/s-elastic")
	b.ReportMetric(res.ConvergencePct, "%-vs-oracle")
	b.ReportMetric(float64(res.Replans), "replans")
}

// BenchmarkServeSoak measures the multi-tenant streaming server: 10k
// concurrent sessions (alternating the paper-suite Vocoder and FMRadio
// applications) resident in one process, multiplexed onto a worker pool
// sized to the host, reported as session density, aggregate iteration
// throughput, and per-iteration latency quantiles.
// STREAMIT_SERVE_BENCH_SESSIONS scales the fleet (CI smoke runs use a
// small one); with STREAMIT_BENCH_JSON=dir, a streamit-bench/v1 snapshot
// lands in dir/BENCH_serve.json.
func BenchmarkServeSoak(b *testing.B) {
	prevDir := bench.JSONDir
	bench.JSONDir = os.Getenv("STREAMIT_BENCH_JSON")
	defer func() { bench.JSONDir = prevDir }()

	sessions := bench.DefaultServeSessions
	if env := os.Getenv("STREAMIT_SERVE_BENCH_SESSIONS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			b.Fatalf("bad STREAMIT_SERVE_BENCH_SESSIONS %q", env)
		}
		sessions = n
	}
	var res *bench.ServeResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.ServeBench(sessions, 16, runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := bench.WriteServeSnapshot(res); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.SessionsPerCore, "sessions/core")
	b.ReportMetric(res.ItersPerSec, "iters/s")
	b.ReportMetric(float64(res.P99NS), "ns-p99-iter")
}

// BenchmarkServeRecovery measures the streaming server's checkpointed
// restart: a resident fleet runs half its iterations, Server.Snapshot
// persists every session, the server is torn down, and a fresh server
// restores the fleet from disk and finishes the run. Reported as snapshot
// cost (ms, bytes/session) and restore throughput (sessions/s).
// STREAMIT_SERVE_BENCH_SESSIONS scales the fleet; with
// STREAMIT_BENCH_JSON=dir, a streamit-bench/v1 snapshot lands in
// dir/BENCH_serve_recovery.json.
func BenchmarkServeRecovery(b *testing.B) {
	prevDir := bench.JSONDir
	bench.JSONDir = os.Getenv("STREAMIT_BENCH_JSON")
	defer func() { bench.JSONDir = prevDir }()

	sessions := bench.DefaultServeSessions
	if env := os.Getenv("STREAMIT_SERVE_BENCH_SESSIONS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			b.Fatalf("bad STREAMIT_SERVE_BENCH_SESSIONS %q", env)
		}
		sessions = n
	}
	var res *bench.ServeRecoveryResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.ServeRecoveryBench(sessions, 16, runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := bench.WriteServeRecoverySnapshot(res); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.SnapshotMS, "ms-snapshot")
	b.ReportMetric(res.BytesPerSession, "bytes/session")
	b.ReportMetric(res.RestoredPerSec, "sessions/s-restored")
}

// BenchmarkDist measures distributed mapped execution over loopback TCP:
// sharded vs single-process throughput of the same plan, the overhead of
// a coordinated barrier every iteration, and the wall time of a sharded
// run whose shard crashes mid-way and is recovered onto the survivors.
// With STREAMIT_BENCH_JSON=dir, a streamit-bench/v1 snapshot lands in
// dir/BENCH_dist.json.
func BenchmarkDist(b *testing.B) {
	prevDir := bench.JSONDir
	bench.JSONDir = os.Getenv("STREAMIT_BENCH_JSON")
	defer func() { bench.JSONDir = prevDir }()

	var res *bench.DistResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.DistBench(2, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := bench.WriteDistSnapshot(res); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.ShardedRate, "iters/s-sharded")
	b.ReportMetric(res.BarrierPct, "%barrier-overhead")
	b.ReportMetric(res.RecoveryMS, "ms-crash-recover")
}
