// Package streamit is a from-scratch Go implementation of the StreamIt
// language and compiler ("Language and Compiler Design for Streaming
// Applications", Thies et al., IPPS 2004) and the systems it is evaluated
// on.
//
// The library is organized as one package per subsystem:
//
//   - internal/ir       — the stream graph: filters, pipelines, split-joins,
//     feedback loops, and the flattened node/edge graph
//   - internal/wfunc    — the work-function IL, interpreter, and work
//     estimator
//   - internal/lang     — the textual .str front end (lexer, parser,
//     elaborator)
//   - internal/sched    — SDF balance equations, init/steady schedules,
//     buffer bounds, deadlock detection
//   - internal/sdep     — information-wavefront (sdep) transfer functions,
//     closed-form and simulation-based
//   - internal/exec     — the sequential runtime with teleport messaging
//   - internal/linear   — linear extraction, combination, and frequency
//     translation
//   - internal/fuse     — executable filter fusion
//   - internal/fft      — the FFT substrate
//   - internal/machine  — the simulated 16-tile Raw-like multicore
//   - internal/partition — fusion, fission, and the mapping strategies of
//     the paper's evaluation
//   - internal/apps     — the benchmark suite
//   - internal/bench    — the harness regenerating every table and figure
//   - internal/core     — the compiler driver tying it all together
//
// The root package re-exports the compiler driver's entry points so that
// code inside this module has a single convenient import; see streamit.go.
//
// Executables: cmd/streamitc (compile and analyze .str programs),
// cmd/streamit-run (execute them), and cmd/streamit-bench (regenerate the
// paper's evaluation). Runnable examples live under examples/.
package streamit
