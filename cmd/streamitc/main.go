// Command streamitc compiles and analyzes a StreamIt (.str) program: it
// parses and elaborates the stream graph, verifies it (rates, deadlock,
// buffer growth), computes the schedule, runs the linear analysis, and
// prints a compilation report.
//
// Usage:
//
//	streamitc [-top Main] [-linear] [-freq] [-maxitems N] prog.str
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"streamit/internal/core"
	"streamit/internal/faults"
	"streamit/internal/ir"
	"streamit/internal/linear"
)

func main() {
	top := flag.String("top", "Main", "top-level stream to elaborate")
	doLinear := flag.Bool("linear", false, "apply linear combination before scheduling")
	doFreq := flag.Bool("freq", false, "also apply frequency translation (implies -linear)")
	verify := flag.Bool("verify", false, "with -linear: cross-check every generated replacement kernel against its linear representation")
	maxItems := flag.Int("maxitems", 0, "bound total live items in the schedule (0 = unbounded)")
	dot := flag.Bool("dot", false, "emit the flattened stream graph in Graphviz DOT format instead of the report")
	sdepPair := flag.String("sdep", "", "print the sdep table between two instances named with 'as', e.g. -sdep mid,out")
	faultSpec := flag.String("faults", "", "validate a fault-injection spec against the program and print the materialized schedule")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: streamitc [flags] prog.str")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamitc:", err)
		os.Exit(1)
	}
	opts := core.Options{MaxLiveItems: *maxItems, CheckFeedback: true}
	if *doLinear || *doFreq {
		lo := linear.DefaultOptions()
		lo.Frequency = *doFreq
		lo.Verify = *verify
		opts.Linear = &lo
	}
	c, err := core.CompileSource(string(src), *top, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamitc:", err)
		os.Exit(1)
	}
	if *dot {
		fmt.Print(c.Graph.Dot())
		return
	}
	if *sdepPair != "" {
		parts := strings.SplitN(*sdepPair, ",", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "streamitc: -sdep wants two comma-separated instance names")
			os.Exit(2)
		}
		tbl, err := c.SdepTable(strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]), 24)
		if err != nil {
			fmt.Fprintln(os.Stderr, "streamitc:", err)
			os.Exit(1)
		}
		fmt.Print(tbl)
		return
	}
	fmt.Print(c.Report())
	if *faultSpec != "" {
		plan, err := faults.ParsePlan(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "streamitc:", err)
			os.Exit(1)
		}
		var names []string
		for _, n := range c.Graph.Nodes {
			if n.Kind == ir.NodeFilter {
				names = append(names, n.Name)
			}
		}
		sched, err := plan.Materialize(names)
		if err != nil {
			fmt.Fprintln(os.Stderr, "streamitc:", err)
			os.Exit(1)
		}
		fmt.Println("\nfault schedule (deterministic):")
		for _, f := range sched {
			fmt.Printf("  %s\n", f)
		}
	}
}
