// Command streamit-run executes a StreamIt (.str) program on the
// sequential runtime and reports throughput.
//
// Usage:
//
//	streamit-run [-top Main] [-iters N] [-linear] [-backend vm|interp] [-strategy name] prog.str
//
// Work functions execute on the bytecode VM by default; -backend=interp
// forces the tree-walking interpreter (bit-identical output, useful for
// cross-checking and debugging).
//
// With -repeat N, the sequential run repeats N times in one process. The
// compiled program is cached by source hash (the same cache the streaming
// server uses), so repeats skip parsing, scheduling, and VM compilation
// and only stamp fresh engines from the shared artifact bundle.
//
// With -strategy, the program is instead mapped onto the simulated 16-tile
// machine with the chosen strategy (sequential, task, task+data, task+swp,
// task+data+swp, space) and the simulated throughput is reported.
//
// With -map, the program runs on the host-mapped parallel engine: the
// graph is rewritten by fusion and executable fission with the chosen
// strategy (task, "fine-grained data", task+data, task+swp, task+data+swp;
// "swp" is shorthand for task+swp) and the partitions run one goroutine
// per worker core (-workers, default all cores). The +swp strategies add
// coarse-grained software pipelining: partitions are stage-skewed so
// producers of iteration i+1 overlap consumers of iteration i, with
// cross-stage traffic flushed in batches. Output is bit-identical to the
// sequential engine under every strategy; programs the lockstep concurrent
// engines cannot run (feedback loops, teleport messaging) run pipelined
// under a +swp strategy and otherwise fall back to the sequential engine
// with a note. -parallel takes the same fallback path.
//
// Robustness controls:
//
//	-faults "panic:Filter@100;rand:3@42"   inject deterministic faults
//	-faults "crash:worker1@200"            crash a mapped worker mid-run (also stall:workerN, slow:workerN)
//	-on-error "retry;Filter=skip"          per-filter recovery policies
//	-watchdog 2s                           stall-detection interval (-1s disables)
//	-checkpoint st.ckpt -checkpoint-after 500   stop at iteration 500, save state
//	-resume st.ckpt                        restore and finish the remaining iterations
//	-checkpoint-every 100                  with -map: coordinated checkpoint cadence
//	-queue-depth 2                         with -map: cross-worker channel capacity (batches)
//	-elastic                               with -map: re-plan at barriers from live profiles
//	-resize-at 500 -resize-to 2            with -elastic: change the worker count mid-run
//
// With -elastic, the mapped engine watches per-worker busy time over a
// sliding window (-elastic-window, -elastic-threshold) and, when the load
// skews — or when -resize-at/-resize-to ask for a different worker count —
// re-packs the same rewritten graph from the measured work at the next
// coordinated-checkpoint barrier and resumes from the in-memory image. No
// restart, and the output stays bit-identical to an uninterrupted run.
//
// Checkpoints are engine-state images taken at iteration boundaries; a
// resumed run is bit-identical to an uninterrupted one, on either backend.
// They work on the sequential engine and the host-mapped engine (-map) —
// the two share one image format over the same graph, so a mapped
// checkpoint even restores into a sequential run of the mapped graph. On
// -map, a worker crash (injected with crash:workerN@iter) rolls back to
// the last coordinated checkpoint, re-plans the partitions onto the
// surviving workers, and resumes — degradation shows in the supervision
// report.
//
// Distributed execution (-shards):
//
//	streamit-run -shards 3 [-per-shard 2] [-epoch 8] prog.str
//
// The process becomes the coordinator: it compiles the program, spawns N
// copies of itself as shard worker processes (each re-joining with
// -join), and drives them through coordinated epoch barriers over
// loopback TCP. Every shard compiles the program independently and must
// reproduce the coordinator's graph fingerprint, so the elaborated graph
// never crosses the wire. A shard process dying mid-run — kill -9
// included, or injected with -faults "crash:shardN@iter" (also
// stall:shardN, partition:shardN) — rolls the survivors back to the last
// barrier image, re-packs its partitions onto them, and the run finishes
// bit-identically. -coordinator sets the listen address; -join is the
// internal worker mode and can also point a manually started worker
// (even on another machine) at a coordinator.
//
// Observability (internal/obs):
//
//	-profile            print a per-filter table after the run: firings,
//	                    tape traffic, work and stall time, buffer high-water
//	                    marks (works on all three engines)
//	-trace out.json     write a Chrome trace_event JSON of the run (load in
//	                    chrome://tracing or https://ui.perfetto.dev); with
//	                    -strategy, traces the simulated NoC execution
//	                    instead of the runtime engines
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"streamit/internal/core"
	"streamit/internal/exec"
	"streamit/internal/faults"
	"streamit/internal/linear"
	"streamit/internal/machine"
	"streamit/internal/obs"
	"streamit/internal/partition"
)

// observed is the observability surface shared by all three engines.
type observed interface {
	Profile() *obs.Profiler
	TraceRecorder() *obs.Recorder
}

// finishObs emits the requested observability artifacts after a run: the
// per-filter profile table on stdout and/or the Chrome trace file.
func finishObs(e observed, tracePath string) {
	if p := e.Profile(); p != nil {
		fmt.Print("per-filter profile:\n")
		fmt.Print(p.Table())
	}
	if r := e.TraceRecorder(); r != nil && tracePath != "" {
		if err := r.WriteFile(tracePath); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", tracePath)
	}
}

func main() {
	top := flag.String("top", "Main", "top-level stream to elaborate")
	iters := flag.Int("iters", 1000, "steady-state iterations to run")
	doLinear := flag.Bool("linear", false, "apply the linear optimizer first")
	strategy := flag.String("strategy", "", "map onto the simulated multicore with this strategy instead of running sequentially")
	parallel := flag.Bool("parallel", false, "run on the goroutine-per-filter parallel backend")
	mapStrat := flag.String("map", "", "run on the host-mapped engine with this rewrite strategy: task, 'fine-grained data', task+data, task+swp (alias swp), or task+data+swp")
	workers := flag.Int("workers", 0, "worker cores for -map (0 = all cores)")
	dynamic := flag.Bool("dynamic", false, "run on the demand-driven dynamic-rate backend (-iters counts sink items)")
	traceOut := flag.String("trace", "", "write a Chrome trace JSON of the execution to this file (runtime engines or, with -strategy, the simulated machine)")
	profile := flag.Bool("profile", false, "print the per-filter profile table after the run")
	backendName := flag.String("backend", "vm", "work-function backend: vm (bytecode) or interp (tree-walking)")
	faultSpec := flag.String("faults", "", "inject faults: 'kind:filter@firing' (kind: panic, stall, corrupt), 'kind:workerN@iter' (kind: crash, stall, slow; -map only), or 'rand:N@seed', ';'-separated")
	onError := flag.String("on-error", "", "recovery policies: 'policy' or 'filter=policy' (fail, retry[:n[:backoff]], skip, restart), ','-separated")
	watchdog := flag.Duration("watchdog", 0, "no-progress window before the parallel/dynamic engines abort with a deadlock report (0 = default, negative = off)")
	ckptPath := flag.String("checkpoint", "", "write an engine checkpoint to this file (sequential and -map engines)")
	ckptAfter := flag.Int("checkpoint-after", 0, "with -checkpoint: stop and save after this many steady iterations")
	resumePath := flag.String("resume", "", "restore a checkpoint written by -checkpoint and run the remaining iterations (sequential and -map engines)")
	ckptEvery := flag.Int("checkpoint-every", 0, "with -map: take a coordinated checkpoint every N steady iterations (0 = only when worker faults are scheduled)")
	queueDepth := flag.Int("queue-depth", 0, "with -map: cross-worker channel capacity in batches (0 = default)")
	elastic := flag.Bool("elastic", false, "with -map: enable runtime re-planning from live profiles at checkpoint barriers")
	elasticWindow := flag.Int("elastic-window", 0, "with -elastic: imbalance-observation window in steady iterations (0 = default)")
	elasticThreshold := flag.Float64("elastic-threshold", 0, "with -elastic: max/mean worker-busy ratio that trips a re-plan (0 = default)")
	resizeAt := flag.Int64("resize-at", 0, "with -elastic: re-plan onto -resize-to workers at the first barrier at or past this iteration")
	resizeTo := flag.Int("resize-to", 0, "with -elastic: target worker count for -resize-at")
	repeat := flag.Int("repeat", 1, "run the whole program N times on the sequential engine; compilation is cached, so repeats only stamp fresh engines")
	shards := flag.Int("shards", 0, "run distributed: spawn N local shard worker processes and coordinate them over TCP")
	coordAddr := flag.String("coordinator", "", "with -shards: coordinator listen address (default 127.0.0.1: an ephemeral port)")
	joinAddr := flag.String("join", "", "run as a shard worker: join the coordinator at this address (no program argument; the job arrives over the wire)")
	perShard := flag.Int("per-shard", 0, "with -shards: engine workers per shard process (0 = default 2)")
	epoch := flag.Int("epoch", 0, "with -shards: steady iterations per coordinated barrier — the rollback granularity (0 = default 8)")
	flag.Parse()

	if *joinAddr != "" {
		runShard(*joinAddr)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: streamit-run [flags] prog.str")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *shards > 0 {
		if *parallel || *dynamic || *strategy != "" || *repeat > 1 || *elastic ||
			*ckptPath != "" || *resumePath != "" || *traceOut != "" || *profile {
			fatal(fmt.Errorf("-shards runs the distributed engine; it composes with -map (strategy), -per-shard, -epoch, -queue-depth, and -faults only"))
		}
		runDistributed(*shards, *coordAddr, *perShard, *epoch, distFlags{
			top: *top, iters: *iters, strategy: *mapStrat, backend: *backendName,
			queueDepth: *queueDepth, faults: *faultSpec,
		})
		return
	}
	backend, err := core.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	runOpts := core.RunOptions{Backend: backend, Watchdog: *watchdog, Profile: *profile}
	if *traceOut != "" && *strategy == "" {
		runOpts.TracePath = *traceOut
	}
	if *faultSpec != "" {
		plan, err := faults.ParsePlan(*faultSpec)
		if err != nil {
			fatal(err)
		}
		runOpts.Faults = plan
	}
	if *onError != "" {
		pols, err := faults.ParsePolicies(*onError)
		if err != nil {
			fatal(err)
		}
		runOpts.OnError = pols
	}
	useCkpt := *ckptPath != "" || *resumePath != ""
	if useCkpt && (*parallel || *dynamic || *strategy != "") {
		fatal(fmt.Errorf("-checkpoint/-resume support the sequential and -map engines"))
	}
	if *ckptPath != "" && *ckptAfter <= 0 {
		fatal(fmt.Errorf("-checkpoint needs -checkpoint-after N (N > 0)"))
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *dynamic {
		d, err := core.CompileSourceDynamicOpts(string(src), *top, runOpts)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		if err := d.Run(int64(*iters)); err != nil {
			report(d.SupervisionReport(), len(d.Degraded()) > 0)
			fatal(err)
		}
		dur := time.Since(start)
		fmt.Printf("dynamic run: %d sink items in %v (%.0f items/sec)\n",
			d.SinkItems(), dur.Round(time.Microsecond), float64(d.SinkItems())/dur.Seconds())
		report(d.SupervisionReport(), len(d.Degraded()) > 0)
		finishObs(d, runOpts.TracePath)
		return
	}
	opts := core.Options{}
	if *doLinear {
		lo := linear.DefaultOptions()
		opts.Linear = &lo
	}
	c, _, err := core.CachedCompileSource(string(src), *top, opts)
	if err != nil {
		fatal(err)
	}

	if *repeat > 1 {
		if useCkpt || *parallel || *dynamic || *strategy != "" || *mapStrat != "" {
			fatal(fmt.Errorf("-repeat supports the plain sequential engine only"))
		}
		start := time.Now()
		for i := 0; i < *repeat; i++ {
			// Cache hit: same Compiled, same shared artifact bundle; only
			// the engine (tapes, filter state, VM frames) is rebuilt.
			cc, _, err := core.CachedCompileSource(string(src), *top, opts)
			if err != nil {
				fatal(err)
			}
			e, err := cc.EngineOpts(runOpts)
			if err != nil {
				fatal(err)
			}
			if err := e.Run(*iters); err != nil {
				fatal(err)
			}
		}
		dur := time.Since(start)
		entries, hits, misses := core.DefaultCache.Stats()
		fmt.Printf("ran %d × %d steady-state iterations in %v (%.0f runs/sec)\n",
			*repeat, *iters, dur.Round(time.Microsecond), float64(*repeat)/dur.Seconds())
		fmt.Printf("compile cache: %d entries, %d hits, %d misses\n", entries, hits, misses)
		return
	}

	if *strategy != "" {
		cfg := machine.DefaultConfig()
		var res *machine.Result
		var err error
		if *traceOut != "" {
			res, err = c.MapOntoTraced(partition.Strategy(*strategy), cfg, 24, *traceOut)
		} else {
			res, err = c.MapOnto(partition.Strategy(*strategy), cfg, 24)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("strategy %s on %d tiles:\n", *strategy, cfg.Tiles())
		fmt.Printf("  %.0f cycles/steady-iteration (%.0f iterations/sec at %v MHz)\n",
			res.CyclesPerIter, res.ItersPerSec, cfg.ClockMHz)
		fmt.Printf("  compute utilization %.0f%%, %.0f MFLOPS (peak %.0f)\n",
			100*res.Utilization, res.MFLOPS, cfg.PeakMFLOPS())
		return
	}

	if *parallel || *mapStrat != "" {
		kind := core.EngineParallel
		label := "parallel"
		if *mapStrat != "" {
			kind = core.EngineMapped
			label = fmt.Sprintf("mapped (%s, %d workers)", *mapStrat, runtime.GOMAXPROCS(0))
			if *workers > 0 {
				label = fmt.Sprintf("mapped (%s, %d workers)", *mapStrat, *workers)
			}
			runOpts.MapStrategy = partition.Strategy(*mapStrat)
			if *mapStrat == "swp" { // common shorthand
				runOpts.MapStrategy = partition.StratSWP
			}
			runOpts.Workers = *workers
			runOpts.QueueDepth = *queueDepth
			runOpts.CheckpointEvery = *ckptEvery
			if (*resizeAt != 0 || *resizeTo != 0) && !*elastic {
				fatal(fmt.Errorf("-resize-at/-resize-to need -elastic"))
			}
			runOpts.Elastic = *elastic
			runOpts.ElasticWindow = *elasticWindow
			runOpts.ElasticThreshold = *elasticThreshold
			runOpts.ResizeAt = *resizeAt
			runOpts.ResizeTo = *resizeTo
		} else if *elastic || *resizeAt != 0 || *resizeTo != 0 {
			fatal(fmt.Errorf("-elastic/-resize-at/-resize-to need -map"))
		}
		r, err := c.Runner(kind, runOpts)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		switch {
		case *resumePath != "":
			img, err := os.ReadFile(*resumePath)
			if err != nil {
				fatal(err)
			}
			if err := asCheckpointer(r).RunFromCheckpoint(img, *iters); err != nil {
				report(r.SupervisionReport(), len(r.Degraded()) > 0)
				fatal(err)
			}
			fmt.Printf("resumed from %s and finished at iteration %d\n", *resumePath, *iters)
		case *ckptPath != "":
			if *ckptAfter > *iters {
				fatal(fmt.Errorf("-checkpoint-after %d exceeds -iters %d", *ckptAfter, *iters))
			}
			if err := r.Run(*ckptAfter); err != nil {
				report(r.SupervisionReport(), len(r.Degraded()) > 0)
				fatal(err)
			}
			if err := writeCheckpoint(asCheckpointer(r), *ckptPath, int64(*ckptAfter)); err != nil {
				fatal(err)
			}
			fmt.Printf("checkpoint written to %s at iteration %d (resume with -resume %s -iters %d)\n",
				*ckptPath, *ckptAfter, *ckptPath, *iters)
			report(r.SupervisionReport(), len(r.Degraded()) > 0)
			finishObs(r, runOpts.TracePath)
			return
		default:
			if err := r.Run(*iters); err != nil {
				report(r.SupervisionReport(), len(r.Degraded()) > 0)
				fatal(err)
			}
		}
		dur := time.Since(start)
		fmt.Printf("ran %d steady-state iterations on the %s backend in %v\n", *iters, label, dur.Round(time.Microsecond))
		fmt.Printf("%.0f iterations/sec\n", float64(*iters)/dur.Seconds())
		if me, ok := r.(*exec.MappedEngine); ok && *elastic {
			fmt.Printf("elastic re-plans: %d (finished on %d workers)\n", me.Replans(), me.Workers)
		}
		report(r.SupervisionReport(), len(r.Degraded()) > 0)
		finishObs(r, runOpts.TracePath)
		return
	}
	e, err := c.EngineOpts(runOpts)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	switch {
	case *resumePath != "":
		img, err := os.ReadFile(*resumePath)
		if err != nil {
			fatal(err)
		}
		if err := e.RunFromCheckpoint(img, *iters); err != nil {
			fatal(err)
		}
		fmt.Printf("resumed from %s and finished at iteration %d\n", *resumePath, *iters)
	case *ckptPath != "":
		if *ckptAfter > *iters {
			fatal(fmt.Errorf("-checkpoint-after %d exceeds -iters %d", *ckptAfter, *iters))
		}
		if err := e.RunInit(); err != nil {
			fatal(err)
		}
		if err := e.RunSteady(*ckptAfter); err != nil {
			fatal(err)
		}
		if err := writeCheckpoint(e, *ckptPath, int64(*ckptAfter)); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint written to %s at iteration %d (resume with -resume %s -iters %d)\n",
			*ckptPath, *ckptAfter, *ckptPath, *iters)
		report(e.SupervisionReport(), len(e.Degraded()) > 0)
		finishObs(e, runOpts.TracePath)
		return
	default:
		if err := e.Run(*iters); err != nil {
			report(e.SupervisionReport(), len(e.Degraded()) > 0)
			fatal(err)
		}
	}
	dur := time.Since(start)
	fmt.Printf("ran %d steady-state iterations (%d firings) in %v\n", *iters, e.Firings, dur.Round(time.Microsecond))
	fmt.Printf("%.0f firings/sec\n", float64(e.Firings)/dur.Seconds())
	report(e.SupervisionReport(), len(e.Degraded()) > 0)
	finishObs(e, runOpts.TracePath)
}

// checkpointer is the checkpoint surface the sequential and mapped
// engines share: one image format, interchangeable over the same graph.
type checkpointer interface {
	WriteCheckpoint(w io.Writer, iteration int64) error
	RunFromCheckpoint(data []byte, total int) error
}

// asCheckpointer narrows a Runner to its checkpoint surface. The mapped
// engine and the sequential engine (including the feedback/teleport
// fallback path) both implement it; the others are rejected before this.
func asCheckpointer(r core.Runner) checkpointer {
	ck, ok := r.(checkpointer)
	if !ok {
		fatal(fmt.Errorf("engine %T does not support checkpoints", r))
	}
	return ck
}

// writeCheckpoint saves the engine image atomically enough for a CLI: a
// temp file in the same directory, then rename.
func writeCheckpoint(e checkpointer, path string, iteration int64) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".streamit-ckpt-*")
	if err != nil {
		return err
	}
	if err := e.WriteCheckpoint(f, iteration); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	return os.Rename(f.Name(), path)
}

// report prints the supervision summary when anything degraded the run.
func report(s string, degraded bool) {
	if degraded && s != "" {
		fmt.Print(s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "streamit-run:", err)
	os.Exit(1)
}
