// Command streamit-run executes a StreamIt (.str) program on the
// sequential runtime and reports throughput.
//
// Usage:
//
//	streamit-run [-top Main] [-iters N] [-linear] [-backend vm|interp] [-strategy name] prog.str
//
// Work functions execute on the bytecode VM by default; -backend=interp
// forces the tree-walking interpreter (bit-identical output, useful for
// cross-checking and debugging).
//
// With -strategy, the program is instead mapped onto the simulated 16-tile
// machine with the chosen strategy (sequential, task, task+data, task+swp,
// task+data+swp, space) and the simulated throughput is reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"streamit/internal/core"
	"streamit/internal/linear"
	"streamit/internal/machine"
	"streamit/internal/partition"
)

func main() {
	top := flag.String("top", "Main", "top-level stream to elaborate")
	iters := flag.Int("iters", 1000, "steady-state iterations to run")
	doLinear := flag.Bool("linear", false, "apply the linear optimizer first")
	strategy := flag.String("strategy", "", "map onto the simulated multicore with this strategy instead of running sequentially")
	parallel := flag.Bool("parallel", false, "run on the goroutine-per-filter parallel backend")
	dynamic := flag.Bool("dynamic", false, "run on the demand-driven dynamic-rate backend (-iters counts sink items)")
	traceOut := flag.String("trace", "", "with -strategy: write a Chrome trace JSON of the simulated execution to this file")
	backendName := flag.String("backend", "vm", "work-function backend: vm (bytecode) or interp (tree-walking)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: streamit-run [flags] prog.str")
		flag.PrintDefaults()
		os.Exit(2)
	}
	backend, err := core.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	runOpts := core.RunOptions{Backend: backend}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *dynamic {
		d, err := core.CompileSourceDynamicOpts(string(src), *top, runOpts)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		if err := d.Run(int64(*iters)); err != nil {
			fatal(err)
		}
		dur := time.Since(start)
		fmt.Printf("dynamic run: %d sink items in %v (%.0f items/sec)\n",
			d.SinkItems(), dur.Round(time.Microsecond), float64(d.SinkItems())/dur.Seconds())
		return
	}
	opts := core.Options{}
	if *doLinear {
		lo := linear.DefaultOptions()
		opts.Linear = &lo
	}
	c, err := core.CompileSource(string(src), *top, opts)
	if err != nil {
		fatal(err)
	}

	if *strategy != "" {
		cfg := machine.DefaultConfig()
		var res *machine.Result
		var err error
		if *traceOut != "" {
			res, err = c.MapOntoTraced(partition.Strategy(*strategy), cfg, 24, *traceOut)
		} else {
			res, err = c.MapOnto(partition.Strategy(*strategy), cfg, 24)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("strategy %s on %d tiles:\n", *strategy, cfg.Tiles())
		fmt.Printf("  %.0f cycles/steady-iteration (%.0f iterations/sec at %v MHz)\n",
			res.CyclesPerIter, res.ItersPerSec, cfg.ClockMHz)
		fmt.Printf("  compute utilization %.0f%%, %.0f MFLOPS (peak %.0f)\n",
			100*res.Utilization, res.MFLOPS, cfg.PeakMFLOPS())
		return
	}

	if *parallel {
		pe, err := c.ParallelEngineOpts(runOpts)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		if err := pe.Run(*iters); err != nil {
			fatal(err)
		}
		dur := time.Since(start)
		fmt.Printf("ran %d steady-state iterations on the parallel backend in %v\n", *iters, dur.Round(time.Microsecond))
		fmt.Printf("%.0f iterations/sec\n", float64(*iters)/dur.Seconds())
		return
	}
	e, err := c.EngineOpts(runOpts)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	if err := e.Run(*iters); err != nil {
		fatal(err)
	}
	dur := time.Since(start)
	fmt.Printf("ran %d steady-state iterations (%d firings) in %v\n", *iters, e.Firings, dur.Round(time.Microsecond))
	fmt.Printf("%.0f firings/sec\n", float64(e.Firings)/dur.Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "streamit-run:", err)
	os.Exit(1)
}
