package main

import (
	"flag"
	"fmt"
	"os"
	osexec "os/exec"
	"time"

	"streamit/internal/dist"
	"streamit/internal/exec"
	"streamit/internal/partition"
)

// distFlags carries the subset of the ordinary run flags that a
// distributed run forwards into the coordinator's job.
type distFlags struct {
	top        string
	iters      int
	strategy   string
	backend    string
	queueDepth int
	faults     string
}

// runDistributed coordinates a sharded run: it compiles the program,
// listens for shard workers, re-executes this binary -shards times as
// local worker processes joined with -join, and drives the epoch barrier
// protocol across them. A shard process dying mid-run (including kill -9)
// rolls the survivors back to the last barrier and the run completes on
// whoever is left, bit-identically.
func runDistributed(shards int, listenAddr string, perShard, epoch int, f distFlags) {
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	backend, err := exec.ParseBackend(f.backend)
	if err != nil {
		fatal(err)
	}
	strategy := partition.Strategy(f.strategy)
	if f.strategy == "swp" {
		strategy = partition.StratSWP // rejected below, but with the real name
	}
	cfg := dist.Config{
		Shards:     shards,
		PerShard:   perShard,
		Strategy:   strategy,
		Backend:    backend,
		Epoch:      epoch,
		QueueDepth: f.queueDepth,
		Faults:     f.faults,
	}
	co, err := dist.NewCoordinator(dist.Spec{Source: string(src), Top: f.top}, cfg)
	if err != nil {
		fatal(err)
	}
	addr, err := co.Listen(listenAddr)
	if err != nil {
		fatal(err)
	}
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	cmds := make([]*osexec.Cmd, shards)
	for i := range cmds {
		cmd := osexec.Command(exe, "-join", addr)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			for _, c := range cmds[:i] {
				c.Process.Kill()
			}
			fatal(fmt.Errorf("spawning shard %d: %w", i, err))
		}
		cmds[i] = cmd
	}
	start := time.Now()
	res, err := co.Run(f.iters)
	if err != nil {
		for _, c := range cmds {
			c.Process.Kill()
		}
		fatal(err)
	}
	dur := time.Since(start)
	for _, c := range cmds {
		c.Wait()
	}
	fmt.Printf("ran %d steady-state iterations across %d shard processes in %v\n",
		res.Iterations, shards, dur.Round(time.Microsecond))
	fmt.Printf("%.0f iterations/sec\n", float64(res.Iterations)/dur.Seconds())
	if res.Recoveries > 0 {
		fmt.Printf("recovered %d time(s): lost shard(s) %v, %d generation(s) installed, finished on %d shard(s)\n",
			res.Recoveries, res.Lost, res.Generations, shards-len(res.Lost))
	}
}

// runShard is the -join worker mode: the process serves one coordinator
// for one run — the program arrives over the wire, is compiled locally,
// and must reproduce the coordinator's graph fingerprint.
func runShard(addr string) {
	host, _ := os.Hostname()
	opts := dist.ShardOptions{Name: fmt.Sprintf("%s/%d", host, os.Getpid())}
	if err := dist.Join(addr, opts); err != nil {
		fatal(fmt.Errorf("shard: %w", err))
	}
}
