// Command streamit-bench regenerates the tables and figures of the paper's
// evaluation on the simulated 16-tile machine and the sequential runtime.
//
// Usage:
//
//	streamit-bench                 # all tables
//	streamit-bench -table main     # one table: benchchar, main, finegrain,
//	                               # softpipe, thruput, vsspace, linear,
//	                               # teleport
//	streamit-bench -dur 500ms      # longer measurement windows for E7/E8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"streamit/internal/bench"
)

func main() {
	table := flag.String("table", "all", "table to print: all, benchchar, main, finegrain, softpipe, thruput, vsspace, linear, teleport, scaling, commablation, freqblocks, vm")
	dur := flag.Duration("dur", 150*time.Millisecond, "measurement window per configuration for the execution benchmarks")
	flag.Parse()

	bench.MeasureDur = *dur
	var err error
	switch *table {
	case "all":
		err = bench.PrintAll(os.Stdout)
	case "benchchar":
		err = bench.PrintBenchChar(os.Stdout)
	case "main":
		err = bench.PrintMainComparison(os.Stdout)
	case "finegrain":
		err = bench.PrintFineGrained(os.Stdout)
	case "softpipe":
		err = bench.PrintSoftPipe(os.Stdout)
	case "thruput":
		err = bench.PrintThroughput(os.Stdout)
	case "vsspace":
		err = bench.PrintVsSpace(os.Stdout)
	case "linear":
		err = bench.PrintLinear(os.Stdout)
	case "teleport":
		err = bench.PrintTeleport(os.Stdout)
	case "scaling":
		err = bench.PrintScaling(os.Stdout)
	case "commablation":
		err = bench.PrintCommAblation(os.Stdout)
	case "freqblocks":
		err = bench.PrintFreqBlocks(os.Stdout)
	case "vm":
		err = bench.PrintVM(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamit-bench:", err)
		os.Exit(1)
	}
}
