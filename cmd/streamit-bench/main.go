// Command streamit-bench regenerates the tables and figures of the paper's
// evaluation on the simulated 16-tile machine and the sequential runtime.
//
// Usage:
//
//	streamit-bench                 # all tables
//	streamit-bench -table main     # one table: benchchar, main, finegrain,
//	                               # softpipe, thruput, vsspace, linear,
//	                               # teleport, scaling, commablation,
//	                               # freqblocks, vm, mapped, recovery, serve,
//	                               # serve-recovery, elastic
//	streamit-bench -dur 500ms      # longer measurement windows for E7/E8
//	streamit-bench -json out       # write BENCH_<app>.json snapshots to out/
//	streamit-bench -validate 'out/BENCH_*.json'  # check snapshot schema
//
// The execution benchmarks (vm, teleport) additionally write their
// measurements as BENCH_<app>.json snapshots (schema streamit-bench/v1,
// see internal/obs) into the -json directory, so CI can archive and diff
// them; -json ” disables snapshot writing.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"streamit/internal/bench"
	"streamit/internal/obs"
)

// validate checks every file matching the glob against the benchmark
// snapshot schema; zero matches is an error (a silent no-op validation
// would let CI rot).
func validate(glob string) error {
	paths, err := filepath.Glob(glob)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no files match %q", glob)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		if err := obs.ValidateBench(data); err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		fmt.Printf("%s: ok\n", p)
	}
	return nil
}

func main() {
	table := flag.String("table", "all", "table to print: all, benchchar, main, finegrain, softpipe, thruput, vsspace, linear, teleport, scaling, commablation, freqblocks, vm, mapped, recovery, serve, serve-recovery, elastic, dist")
	dur := flag.Duration("dur", 150*time.Millisecond, "measurement window per configuration for the execution benchmarks")
	jsonDir := flag.String("json", ".", "directory for BENCH_<app>.json snapshots (empty: do not write snapshots)")
	check := flag.String("validate", "", "validate BENCH_*.json files matching this glob and exit")
	flag.Parse()

	if *check != "" {
		if err := validate(*check); err != nil {
			fmt.Fprintln(os.Stderr, "streamit-bench:", err)
			os.Exit(1)
		}
		return
	}

	bench.MeasureDur = *dur
	bench.JSONDir = *jsonDir
	var err error
	switch *table {
	case "all":
		err = bench.PrintAll(os.Stdout)
	case "benchchar":
		err = bench.PrintBenchChar(os.Stdout)
	case "main":
		err = bench.PrintMainComparison(os.Stdout)
	case "finegrain":
		err = bench.PrintFineGrained(os.Stdout)
	case "softpipe":
		err = bench.PrintSoftPipe(os.Stdout)
	case "thruput":
		err = bench.PrintThroughput(os.Stdout)
	case "vsspace":
		err = bench.PrintVsSpace(os.Stdout)
	case "linear":
		err = bench.PrintLinear(os.Stdout)
	case "teleport":
		err = bench.PrintTeleport(os.Stdout)
	case "scaling":
		err = bench.PrintScaling(os.Stdout)
	case "commablation":
		err = bench.PrintCommAblation(os.Stdout)
	case "freqblocks":
		err = bench.PrintFreqBlocks(os.Stdout)
	case "vm":
		err = bench.PrintVM(os.Stdout)
	case "mapped":
		err = bench.PrintMapped(os.Stdout)
	case "recovery":
		err = bench.PrintRecovery(os.Stdout)
	case "serve":
		err = bench.PrintServe(os.Stdout)
	case "serve-recovery":
		err = bench.PrintServeRecovery(os.Stdout)
	case "elastic":
		err = bench.PrintElastic(os.Stdout)
	case "dist":
		err = bench.PrintDist(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamit-bench:", err)
		os.Exit(1)
	}
}
