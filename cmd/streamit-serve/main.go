// Command streamit-serve runs the multi-tenant streaming server: it
// compiles StreamIt programs once and multiplexes many concurrent
// sessions of them onto a shared worker pool, exposing an HTTP API.
//
// Usage:
//
//	streamit-serve [-addr :8080] [-workers N] [name=prog.str:Top ...]
//
// Each positional argument preloads a program: a registry name, the .str
// file, and the top-level stream. Programs can also be loaded (and hot
// reloaded) at runtime via POST /v1/programs.
//
// API summary (all JSON):
//
//	POST   /v1/programs            load or hot-reload a program
//	GET    /v1/programs            list program versions
//	POST   /v1/sessions            open a session  {"program":"fm"}
//	POST   /v1/sessions/{id}/run   request iterations {"iterations":100}
//	POST   /v1/sessions/{id}/feed  feed an overridden source
//	GET    /v1/sessions/{id}/drain?max=n  take buffered output
//	GET    /v1/sessions/{id}       session status
//	DELETE /v1/sessions/{id}       close
//	GET    /v1/stats               streamit-serve/v1 server stats
//
// Admission rejections (session limit, iteration backlog) answer 429;
// a slow consumer only ever stalls its own session.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"streamit/internal/exec"
	"streamit/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = all cores)")
	maxSessions := flag.Int("max-sessions", 0, "max concurrently open sessions (0 = default 16384)")
	maxQueued := flag.Int("max-queued", 0, "max undone iterations per session (0 = default 4096)")
	maxOut := flag.Int("max-buffered-out", 0, "max undrained output items per session (0 = default 8192)")
	batch := flag.Int("batch", 0, "steady iterations per worker dispatch (0 = default 8)")
	backendName := flag.String("backend", "vm", "work-function backend: vm or interp")
	flag.Parse()

	backend, err := exec.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	srv := serve.New(serve.Config{
		Workers:        *workers,
		MaxSessions:    *maxSessions,
		MaxQueuedIters: *maxQueued,
		MaxBufferedOut: *maxOut,
		Batch:          *batch,
		Backend:        backend,
	})
	defer srv.Close()

	for _, arg := range flag.Args() {
		name, path, top, err := parseLoad(arg)
		if err != nil {
			fatal(err)
		}
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		ver, err := srv.LoadSource(name, string(src), top)
		if err != nil {
			fatal(fmt.Errorf("load %s: %w", name, err))
		}
		fmt.Printf("loaded %s v%d from %s (top %s)\n", name, ver, path, top)
	}

	fmt.Printf("streamit-serve listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

// parseLoad splits a preload argument of the form name=path:Top.
func parseLoad(arg string) (name, path, top string, err error) {
	name, rest, ok := strings.Cut(arg, "=")
	if !ok {
		return "", "", "", fmt.Errorf("bad program %q (want name=prog.str:Top)", arg)
	}
	path, top, ok = strings.Cut(rest, ":")
	if !ok {
		return "", "", "", fmt.Errorf("bad program %q (want name=prog.str:Top)", arg)
	}
	return name, path, top, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "streamit-serve:", err)
	os.Exit(1)
}
