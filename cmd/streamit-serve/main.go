// Command streamit-serve runs the multi-tenant streaming server: it
// compiles StreamIt programs once and multiplexes many concurrent
// sessions of them onto a shared worker pool, exposing an HTTP API.
//
// Usage:
//
//	streamit-serve [-addr :8080] [-workers N] [-snapshot-dir DIR] [name=prog.str:Top ...]
//
// Each positional argument preloads a program: a registry name, the .str
// file, and the top-level stream. Programs can also be loaded (and hot
// reloaded) at runtime via POST /v1/programs.
//
// API summary (all JSON):
//
//	POST   /v1/programs            load or hot-reload a program
//	GET    /v1/programs            list program versions
//	POST   /v1/sessions            open a session  {"program":"fm"}
//	POST   /v1/sessions/{id}/run   request iterations {"iterations":100}
//	POST   /v1/sessions/{id}/feed  feed an overridden source
//	GET    /v1/sessions/{id}/drain?max=n  take buffered output
//	GET    /v1/sessions/{id}       session status
//	DELETE /v1/sessions/{id}       close
//	POST   /v1/snapshot            checkpoint all sessions to disk
//	GET    /v1/stats               streamit-serve/v1 server stats
//
// Admission rejections (session limit, iteration backlog) answer 429;
// a slow consumer only ever stalls its own session.
//
// Resilience: with -snapshot-dir set, the server restores any session
// checkpoints found there on start, and SIGINT/SIGTERM triggers a
// graceful shutdown — admission stops, in-flight sessions drain (bounded
// by -drain-timeout), every resident session is checkpointed, and the
// HTTP listener closes. A second signal exits immediately. -batch-timeout
// arms the stuck-session watchdog: a batch wedging a pool worker past the
// deadline quarantines only that session and spawns a replacement worker.
// The listener itself is hardened against slow or dead clients with
// -read-header-timeout, -read-timeout, and -idle-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streamit/internal/exec"
	"streamit/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = all cores)")
	maxSessions := flag.Int("max-sessions", 0, "max concurrently open sessions (0 = default 16384)")
	maxQueued := flag.Int("max-queued", 0, "max undone iterations per session (0 = default 4096)")
	maxOut := flag.Int("max-buffered-out", 0, "max undrained output items per session (0 = default 8192)")
	batch := flag.Int("batch", 0, "steady iterations per worker dispatch (0 = default 8)")
	backendName := flag.String("backend", "vm", "work-function backend: vm or interp")
	snapshotDir := flag.String("snapshot-dir", "", "directory for session checkpoints (restore on start, snapshot on shutdown)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight sessions to finish")
	batchTimeout := flag.Duration("batch-timeout", 0, "stuck-session watchdog deadline per batch (0 = disabled)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "max time to read a request's headers (0 = no limit)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "max time to read an entire request, body included (0 = no limit)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time before a connection closes (0 = no limit)")
	flag.Parse()

	backend, err := exec.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	srv := serve.New(serve.Config{
		Workers:        *workers,
		MaxSessions:    *maxSessions,
		MaxQueuedIters: *maxQueued,
		MaxBufferedOut: *maxOut,
		Batch:          *batch,
		Backend:        backend,
		BatchTimeout:   *batchTimeout,
		SnapshotDir:    *snapshotDir,
	})
	defer srv.Close()

	for _, arg := range flag.Args() {
		name, path, top, err := parseLoad(arg)
		if err != nil {
			fatal(err)
		}
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		ver, err := srv.LoadSource(name, string(src), top)
		if err != nil {
			fatal(fmt.Errorf("load %s: %w", name, err))
		}
		fmt.Printf("loaded %s v%d from %s (top %s)\n", name, ver, path, top)
	}

	if *snapshotDir != "" {
		sum, err := srv.Restore(*snapshotDir)
		if err != nil {
			fatal(fmt.Errorf("restore: %w", err))
		}
		if sum.Restored > 0 || len(sum.Failed) > 0 {
			fmt.Printf("restored %d session(s) from %s\n", sum.Restored, *snapshotDir)
			for _, f := range sum.Failed {
				fmt.Fprintln(os.Stderr, "streamit-serve: restore skipped", f)
			}
		}
	}

	// Slowloris and dead-peer protection: a client trickling headers, a
	// stalled body, or an abandoned keep-alive connection must not pin a
	// conn goroutine forever. Responses stay unbounded — a long drain of a
	// big session is legitimate — so WriteTimeout is deliberately not set.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("streamit-serve listening on %s\n", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case sig := <-sigCh:
		fmt.Printf("streamit-serve: %v: draining (second signal exits immediately)\n", sig)
		go func() {
			<-sigCh
			os.Exit(1)
		}()
		if err := srv.Drain(*drainTimeout); err != nil {
			fmt.Fprintln(os.Stderr, "streamit-serve: drain:", err)
		}
		if *snapshotDir != "" {
			sum, err := srv.Snapshot(*snapshotDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "streamit-serve: snapshot:", err)
			} else {
				fmt.Printf("snapshotted %d session(s) (%d bytes) to %s\n", sum.Sessions, sum.Bytes, sum.Dir)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}
}

// parseLoad splits a preload argument of the form name=path:Top.
func parseLoad(arg string) (name, path, top string, err error) {
	name, rest, ok := strings.Cut(arg, "=")
	if !ok {
		return "", "", "", fmt.Errorf("bad program %q (want name=prog.str:Top)", arg)
	}
	path, top, ok = strings.Cut(rest, ":")
	if !ok {
		return "", "", "", fmt.Errorf("bad program %q (want name=prog.str:Top)", arg)
	}
	return name, path, top, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "streamit-serve:", err)
	os.Exit(1)
}
