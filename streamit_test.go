package streamit_test

import (
	"strings"
	"testing"

	"streamit"
	"streamit/internal/apps"
	"streamit/internal/exec"
)

// TestFacadeEndToEnd exercises the root package's re-exported API exactly
// the way the README shows it.
func TestFacadeEndToEnd(t *testing.T) {
	snk, got := exec.SliceSink("speaker")
	prog := &streamit.Program{Name: "radio", Top: streamit.Pipe("main",
		apps.Source("antenna"),
		apps.FIR("lp", 16, 0.25),
		streamit.SJ("eq", streamit.Duplicate(), streamit.RoundRobin(),
			apps.Gain("lo", 0.5), apps.Gain("hi", 2)),
		apps.Adder("sum", 2),
		snk,
	)}
	lo := streamit.LinearOptions{Combine: true}
	c, err := streamit.Compile(prog, streamit.Options{Linear: &lo})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := c.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(24); err != nil {
		t.Fatal(err)
	}
	if len(*got) == 0 {
		t.Fatal("no output")
	}
	if rep := c.Report(); !strings.Contains(rep, "linear optimization") {
		t.Errorf("report missing optimizer summary:\n%s", rep)
	}
	res, err := c.MapOnto(streamit.TaskDataSWP, streamit.DefaultMachine(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.CyclesPerIter <= 0 {
		t.Errorf("bad simulation result: %+v", res)
	}
}

// TestFacadeSource compiles textual source through the facade.
func TestFacadeSource(t *testing.T) {
	src := `
void->float filter S() { float n; work push 1 { push(n); n = n + 1; } }
float->void filter K() { work pop 1 { pop(); } }
void->void pipeline Main() { add S(); add K(); }
`
	c, err := streamit.CompileSource(src, "Main", streamit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := c.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeFusion uses the re-exported fusion entry point.
func TestFacadeFusion(t *testing.T) {
	a := apps.Gain("a", 2)
	b := apps.Gain("b", 3)
	fused, err := streamit.FuseFilters("ab", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if fused.Kernel.Pop != 1 || fused.Kernel.Push != 1 {
		t.Errorf("fused rates: %+v", fused.Kernel)
	}
}
