package bench

import "streamit/internal/obs"

// JSONDir, when non-empty, makes the execution-benchmark printers also
// write one BENCH_<app>.json snapshot per measured app (obs.BenchSnapshot
// schema). The CLI points this at its -json directory; tests point it at a
// temp dir. Empty disables snapshot writing.
var JSONDir string

// writeVMSnapshots persists the VM-vs-interpreter measurements.
func writeVMSnapshots(rows []VMRow, mean float64) error {
	if JSONDir == "" {
		return nil
	}
	for _, r := range rows {
		b := obs.NewBench(r.Name)
		b.Set("interp_items_per_sec", r.InterpRate, "items/s")
		b.Set("vm_items_per_sec", r.VMRate, "items/s")
		b.Set("vm_speedup_x", r.Speedup, "x")
		if _, err := b.WriteFile(JSONDir); err != nil {
			return err
		}
	}
	b := obs.NewBench("vm_suite")
	b.Set("vm_speedup_geomean_x", mean, "x")
	_, err := b.WriteFile(JSONDir)
	return err
}

// writeTeleportSnapshot persists the E8 measurement.
func writeTeleportSnapshot(res *TeleportResult) error {
	if JSONDir == "" {
		return nil
	}
	b := obs.NewBench("FreqHoppingRadio")
	b.Set("teleport_samples_per_sec", res.TeleportRate, "items/s")
	b.Set("manual_samples_per_sec", res.ManualRate, "items/s")
	b.Set("teleport_improvement_pct", res.Improvement, "%")
	_, err := b.WriteFile(JSONDir)
	return err
}
