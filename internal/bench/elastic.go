package bench

import (
	"bytes"
	"fmt"
	"io"
	"text/tabwriter"

	"streamit/internal/exec"
	"streamit/internal/ir"
	"streamit/internal/obs"
	"streamit/internal/partition"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

// ElasticResult reports the elastic re-planning benchmark on the skewed
// synthetic pipeline: the predicted bottleneck (the busiest worker's
// measured nanoseconds per steady iteration — the quantity a plan
// actually controls, and machine-independent where wall throughput is
// not) under the mis-planned static assignment, under the assignment the
// elastic engine converged to from its live profile, and under the oracle
// assignment a planner with perfect per-firing measurements produces.
// Convergence is the oracle bottleneck as a fraction of the elastic one
// (100% = the controller found a packing as good as the oracle's). Wall
// rates are reported alongside; on hosts with fewer cores than workers
// they flatten together and only the bottleneck numbers separate the
// plans. ResizeOK reports the bit-identity check: a run that shrinks its
// worker count mid-flight ends in exactly the state of an undisturbed
// run.
type ElasticResult struct {
	Workers        int
	StaticNS       int64   // predicted bottleneck ns/iter, stale static plan
	ElasticNS      int64   // predicted bottleneck ns/iter, converged elastic plan
	OracleNS       int64   // predicted bottleneck ns/iter, perfect-measurement plan
	ConvergencePct float64 // oracle / elastic * 100
	StaticRate     float64 // sink items/sec, stale static plan
	ElasticRate    float64 // sink items/sec, elastic re-planning on
	OracleRate     float64 // sink items/sec, plan from perfect measurements
	Replans        int     // re-plans the elastic engine performed
	ResizeOK       bool    // mid-run resize ended bit-identical
	ResizeWorkers  int     // worker count the resize run finished on
}

// ElasticWorkers is the machine size of the elastic benchmark.
const ElasticWorkers = 4

// elasticSpins sizes the hot filters' true cost (busy-work loop
// iterations per firing, roughly a nanosecond each).
const elasticSpins = 30000

// elasticFilter is a peek-1/pop-1/push-1 IL filter whose kernel carries a
// busy loop of the given length — the static planner's only evidence of
// its cost.
func elasticFilter(name string, loops int) *ir.Filter {
	b := wfunc.NewKernel(name, 1, 1, 1)
	i, s := b.Local("i"), b.Local("s")
	b.WorkBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(loops),
			wfunc.Set(s, wfunc.AddX(s, wfunc.MulX(i, wfunc.C(1.0001))))),
		wfunc.Pop1(),
		wfunc.Push1(s),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// elasticProg builds the skewed pipeline: three "decoy" filters whose
// kernels look expensive to the static estimator, and two "hot" filters
// that look free. At run time the costs are inverted (OverrideWork makes
// the decoys pass-throughs and the hots spin), so the static LPT packing
// — decoys spread out, both hots sharing the leftover worker — is
// maximally wrong, and a planner fed the true measurements separates the
// hots instead.
func elasticProg() *ir.Program {
	return &ir.Program{Name: "skew", Top: ir.Pipe("main",
		exec.RampSource("src"),
		elasticFilter("decoy0", 4000),
		elasticFilter("decoy1", 4000),
		elasticFilter("decoy2", 4000),
		elasticFilter("hot0", 2),
		elasticFilter("hot1", 2),
		exec.NullSink("snk", 1))}
}

// elasticOverrides installs the true runtime costs on a mapped engine:
// decoys become pass-throughs, hots spin for elasticSpins iterations. Both
// honor the kernels' 1-in/1-out rates, so schedules and checkpoint images
// stay valid and every engine variant computes the same stream.
func elasticOverrides(me *exec.MappedEngine) error {
	pass := func(in, out wfunc.Tape) { out.Push(in.Pop()) }
	spin := func(in, out wfunc.Tape) {
		v := in.Pop()
		s := 0.0
		for i := 0; i < elasticSpins; i++ {
			s += float64(i&7) * 1e-12
		}
		out.Push(v + s*0)
	}
	for _, name := range []string{"decoy0", "decoy1", "decoy2"} {
		if err := me.OverrideWork(name, pass); err != nil {
			return err
		}
	}
	for _, name := range []string{"hot0", "hot1"} {
		if err := me.OverrideWork(name, spin); err != nil {
			return err
		}
	}
	return nil
}

// elasticTopology compiles the skewed pipeline under the task strategy (no
// rewrite, so instance names survive flat and re-plans only move the
// packing) and returns the plan alongside its elaborated graph, schedule,
// and static assignment.
func elasticTopology(workers int) (*partition.ExecPlan, *ir.Graph, *sched.Schedule, []int, error) {
	prog := elasticProg()
	g, err := ir.Flatten(prog)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	s, err := sched.Compute(g)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	plan, err := partition.BuildExecPlan(prog, g, s, partition.ExecPlanOptions{Strategy: partition.StratTask, Workers: workers})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	g2, err := ir.Flatten(plan.Program)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	s2, err := sched.Compute(g2)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return plan, g2, s2, plan.Assign(g2, s2), nil
}

// elasticBottleneck predicts an assignment's bottleneck: the busiest
// worker's measured nanoseconds per steady iteration (per-firing cost
// times repetitions, summed per worker, maximum over workers).
func elasticBottleneck(g2 *ir.Graph, s2 *sched.Schedule, assign []int, workers int, perFiringNS map[string]int64) int64 {
	busy := make([]int64, workers)
	for _, n := range g2.Nodes {
		if n.Kind != ir.NodeFilter {
			continue
		}
		busy[assign[n.ID]] += perFiringNS[n.Name] * int64(s2.Reps[n.ID])
	}
	var max int64
	for _, b := range busy {
		if b > max {
			max = b
		}
	}
	return max
}

// elasticEngine builds a mapped engine on the shared topology with the
// true runtime costs installed.
func elasticEngine(g2 *ir.Graph, s2 *sched.Schedule, assign []int, workers int, opts exec.Options) (*exec.MappedEngine, error) {
	me, err := exec.NewMappedOpts(g2, s2, assign, workers, opts)
	if err != nil {
		return nil, err
	}
	if err := elasticOverrides(me); err != nil {
		return nil, err
	}
	return me, nil
}

// ElasticBench measures the elastic re-plan controller against the static
// mis-plan and the measured-work oracle, plus the mid-run resize
// bit-identity check. workers <= 0 selects ElasticWorkers.
func ElasticBench(workers int) (*ElasticResult, error) {
	if workers <= 0 {
		workers = ElasticWorkers
	}
	if workers < 2 {
		workers = 2
	}
	plan, g2, s2, staticAssign, err := elasticTopology(workers)
	if err != nil {
		return nil, err
	}
	r := &ElasticResult{Workers: workers}
	per := sinkItems(g2, s2)

	// Static: run the stale compile-time plan as-is.
	static, err := elasticEngine(g2, s2, staticAssign, workers, exec.Options{})
	if err != nil {
		return nil, err
	}
	if r.StaticRate, err = sinkRate(static.Run, per, MeasureDur); err != nil {
		return nil, err
	}

	// Oracle: profile a short run to capture the true per-firing costs,
	// then rebuild the assignment with perfect measurements.
	profiled, err := elasticEngine(g2, s2, staticAssign, workers, exec.Options{Profile: true})
	if err != nil {
		return nil, err
	}
	if err := profiled.Run(32); err != nil {
		return nil, err
	}
	measured := profiled.Profile().WorkNSPerFiring()
	oracleAssign := plan.AssignMeasured(g2, s2, workers, measured)
	oracle, err := elasticEngine(g2, s2, oracleAssign, workers, exec.Options{})
	if err != nil {
		return nil, err
	}
	if r.OracleRate, err = sinkRate(oracle.Run, per, MeasureDur); err != nil {
		return nil, err
	}
	r.StaticNS = elasticBottleneck(g2, s2, staticAssign, workers, measured)
	r.OracleNS = elasticBottleneck(g2, s2, oracleAssign, workers, measured)

	// Elastic: start from the same stale plan, let the windowed imbalance
	// detector discover the skew and re-pack at a barrier. The engine keeps
	// its converged assignment across sinkRate's warm-up runs, so the timed
	// window measures the post-convergence rate plus any residual
	// controller overhead.
	elastic, err := elasticEngine(g2, s2, staticAssign, workers, exec.Options{
		Elastic: true, ElasticWindow: 8, CheckpointEvery: 8,
	})
	if err != nil {
		return nil, err
	}
	elastic.ReplanMeasured = func(target int, perFiring map[string]int64) []int {
		return plan.AssignMeasured(g2, s2, target, perFiring)
	}
	if r.ElasticRate, err = sinkRate(elastic.Run, per, MeasureDur); err != nil {
		return nil, err
	}
	r.Replans = elastic.Replans()
	r.ElasticNS = elasticBottleneck(g2, s2, elastic.Assign, elastic.Workers, measured)
	if r.ElasticNS > 0 {
		r.ConvergencePct = float64(r.OracleNS) / float64(r.ElasticNS) * 100
	}

	// Resize bit-identity: a run that drops to workers-1 at the midpoint
	// barrier must end in exactly the undisturbed run's state.
	const resizeIters, resizeAt = 40, 20
	ref, err := elasticEngine(g2, s2, staticAssign, workers, exec.Options{})
	if err != nil {
		return nil, err
	}
	if err := ref.Run(resizeIters); err != nil {
		return nil, err
	}
	resized, err := elasticEngine(g2, s2, staticAssign, workers, exec.Options{
		Elastic: true, ResizeAt: resizeAt, ResizeTo: workers - 1, CheckpointEvery: 5,
	})
	if err != nil {
		return nil, err
	}
	if err := resized.Run(resizeIters); err != nil {
		return nil, err
	}
	var refImg, rszImg bytes.Buffer
	if err := ref.WriteCheckpoint(&refImg, resizeIters); err != nil {
		return nil, err
	}
	if err := resized.WriteCheckpoint(&rszImg, resizeIters); err != nil {
		return nil, err
	}
	r.ResizeWorkers = resized.Workers
	r.ResizeOK = resized.Workers == workers-1 && resized.Replans() >= 1 &&
		bytes.Equal(refImg.Bytes(), rszImg.Bytes())
	return r, nil
}

// WriteElasticSnapshot persists the measurements as
// BENCH_mapped_elastic.json (streamit-bench/v1).
func WriteElasticSnapshot(r *ElasticResult) error {
	if JSONDir == "" {
		return nil
	}
	b := obs.NewBench("mapped_elastic")
	b.Set("workers", float64(r.Workers), "cores")
	b.Set("static_bottleneck_ns", float64(r.StaticNS), "ns/iter")
	b.Set("elastic_bottleneck_ns", float64(r.ElasticNS), "ns/iter")
	b.Set("oracle_bottleneck_ns", float64(r.OracleNS), "ns/iter")
	b.Set("elastic_vs_oracle_pct", r.ConvergencePct, "%")
	b.Set("static_items_per_sec", r.StaticRate, "items/s")
	b.Set("elastic_items_per_sec", r.ElasticRate, "items/s")
	b.Set("oracle_items_per_sec", r.OracleRate, "items/s")
	b.Set("replans", float64(r.Replans), "count")
	resize := 0.0
	if r.ResizeOK {
		resize = 1
	}
	b.Set("resize_bit_identical", resize, "bool")
	_, err := b.WriteFile(JSONDir)
	return err
}

// PrintElastic renders the elastic re-planning table: static mis-plan vs
// elastic vs measured-work oracle, and the mid-run resize identity check.
func PrintElastic(w io.Writer) error {
	r, err := ElasticBench(ElasticWorkers)
	if err != nil {
		return err
	}
	if err := WriteElasticSnapshot(r); err != nil {
		return err
	}
	fmt.Fprintf(w, "Table elastic: runtime re-planning on the skewed pipeline (%d workers)\n", r.Workers)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Metric\tBottleneck\tThroughput")
	fmt.Fprintf(tw, "static mis-plan\t%d ns/iter\t%.0f items/s\n", r.StaticNS, r.StaticRate)
	fmt.Fprintf(tw, "elastic (live re-plan)\t%d ns/iter\t%.0f items/s\n", r.ElasticNS, r.ElasticRate)
	fmt.Fprintf(tw, "oracle (perfect measurements)\t%d ns/iter\t%.0f items/s\n", r.OracleNS, r.OracleRate)
	fmt.Fprintf(tw, "elastic vs oracle (bottleneck)\t%.1f%%\t\n", r.ConvergencePct)
	fmt.Fprintf(tw, "re-plans performed\t%d\n", r.Replans)
	fmt.Fprintf(tw, "mid-run resize (%d -> %d workers)\tbit-identical: %v\n",
		r.Workers, r.ResizeWorkers, r.ResizeOK)
	return tw.Flush()
}
