package bench

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"streamit/internal/apps"
	"streamit/internal/exec"
	"streamit/internal/faults"
	"streamit/internal/ir"
	"streamit/internal/obs"
	"streamit/internal/partition"
	"streamit/internal/sched"
)

// RecoveryResult reports the fault-tolerance costs of the mapped engine on
// one app: clean throughput, throughput with a coordinated checkpoint
// every steady iteration (the steady-state overhead crash recovery pays
// for), the checkpoint image size, and the wall time of a run that
// crashes a worker mid-way, rolls back, re-plans onto the survivors, and
// finishes.
type RecoveryResult struct {
	App            string
	Workers        int
	CleanRate      float64 // sink items/sec, no supervision
	CheckpointRate float64 // sink items/sec with CheckpointEvery=1
	OverheadPct    float64 // (clean - checkpoint) / clean * 100
	ImageBytes     int     // coordinated checkpoint image size
	RecoveryMS     float64 // wall ms of the crash-and-recover run
	RecoveryIters  int     // iterations of that run
}

// recoveryTopology builds the fixed app the recovery benchmark measures
// (FMRadio under the task+data rewrite — a mid-sized pipeline whose
// rewritten graph spans every worker).
func recoveryTopology(workers int) (*ir.Graph, *sched.Schedule, []int, int, error) {
	prog := apps.FMRadio(4, 16)
	g, err := ir.Flatten(prog)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	s, err := sched.Compute(g)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	plan, err := partition.BuildExecPlan(prog, g, s, partition.ExecPlanOptions{Strategy: partition.StratCoarseData, Workers: workers})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	g2, err := ir.Flatten(plan.Program)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	s2, err := sched.Compute(g2)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	return g2, s2, plan.Assign(g2, s2), plan.Workers, nil
}

// RecoveryBench measures checkpoint overhead and crash-recovery cost of
// the mapped engine with workers worker cores (minimum 2, so a crash
// leaves survivors; 0 selects GOMAXPROCS).
func RecoveryBench(workers int) (*RecoveryResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 2 {
		workers = 2
	}
	g2, s2, assign, planned, err := recoveryTopology(workers)
	if err != nil {
		return nil, err
	}
	r := &RecoveryResult{App: "FMRadio", Workers: planned}
	per := sinkItems(g2, s2)

	clean, err := exec.NewMappedOpts(g2, s2, assign, planned, exec.Options{})
	if err != nil {
		return nil, err
	}
	if r.CleanRate, err = sinkRate(clean.Run, per, MeasureDur); err != nil {
		return nil, err
	}

	ckpt, err := exec.NewMappedOpts(g2, s2, assign, planned, exec.Options{CheckpointEvery: 1})
	if err != nil {
		return nil, err
	}
	if r.CheckpointRate, err = sinkRate(ckpt.Run, per, MeasureDur); err != nil {
		return nil, err
	}
	if r.CleanRate > 0 {
		r.OverheadPct = (r.CleanRate - r.CheckpointRate) / r.CleanRate * 100
	}
	var buf bytes.Buffer
	if err := ckpt.WriteCheckpoint(&buf, 0); err != nil {
		return nil, err
	}
	r.ImageBytes = buf.Len()

	// Crash-and-recover wall time: a worker dies at the run's midpoint, the
	// engine rolls back to the last per-iteration checkpoint, re-plans onto
	// the survivors, and finishes degraded.
	const iters = 64
	plan, err := faults.ParsePlan(fmt.Sprintf("crash:worker1@%d", iters/2))
	if err != nil {
		return nil, err
	}
	crashed, err := exec.NewMappedOpts(g2, s2, assign, planned, exec.Options{Faults: plan, CheckpointEvery: 1})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := crashed.Run(iters); err != nil {
		return nil, fmt.Errorf("crash-recovery run: %w", err)
	}
	r.RecoveryMS = float64(time.Since(start).Microseconds()) / 1000
	r.RecoveryIters = iters
	return r, nil
}

// WriteRecoverySnapshot persists the measurements as
// BENCH_mapped_recovery.json (streamit-bench/v1).
func WriteRecoverySnapshot(r *RecoveryResult) error {
	if JSONDir == "" {
		return nil
	}
	b := obs.NewBench("mapped_recovery")
	b.Set("workers", float64(r.Workers), "cores")
	b.Set("clean_items_per_sec", r.CleanRate, "items/s")
	b.Set("checkpoint_items_per_sec", r.CheckpointRate, "items/s")
	b.Set("checkpoint_overhead_pct", r.OverheadPct, "%")
	b.Set("checkpoint_bytes", float64(r.ImageBytes), "bytes")
	b.Set("crash_recovery_run_ms", r.RecoveryMS, "ms")
	_, err := b.WriteFile(JSONDir)
	return err
}

// PrintRecovery renders the fault-tolerance cost table: checkpoint
// overhead and crash-recovery wall time of the mapped engine.
func PrintRecovery(w io.Writer) error {
	r, err := RecoveryBench(runtime.GOMAXPROCS(0))
	if err != nil {
		return err
	}
	if err := WriteRecoverySnapshot(r); err != nil {
		return err
	}
	fmt.Fprintf(w, "Table recovery: mapped-engine fault tolerance (%s, %d workers)\n", r.App, r.Workers)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Metric\tValue")
	fmt.Fprintf(tw, "clean throughput\t%.0f items/s\n", r.CleanRate)
	fmt.Fprintf(tw, "with per-iteration checkpoints\t%.0f items/s\n", r.CheckpointRate)
	fmt.Fprintf(tw, "checkpoint overhead\t%.1f%%\n", r.OverheadPct)
	fmt.Fprintf(tw, "checkpoint image\t%d bytes\n", r.ImageBytes)
	fmt.Fprintf(tw, "crash-and-recover run (%d iters)\t%.1f ms\n", r.RecoveryIters, r.RecoveryMS)
	return tw.Flush()
}
