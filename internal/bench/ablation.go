package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"streamit/internal/linear"
	"streamit/internal/machine"
	"streamit/internal/partition"
	"streamit/internal/wfunc"
)

// The ablation experiments go beyond the paper's figures: they vary the
// design parameters DESIGN.md calls out (tile count, synchronization cost,
// communication substrate) to show which conclusions are robust and which
// are artifacts of one machine point.

// ScalingRow reports geometric-mean speedup over single core at one
// machine size.
type ScalingRow struct {
	Tiles    int
	Task     float64
	TaskData float64
	Combined float64
}

// Scaling sweeps the tile count (grids of 1xN/4xN) and reports geomean
// speedups of the three headline strategies — the scalability curve of the
// combined technique.
func Scaling(tileCounts []int) ([]ScalingRow, error) {
	ps, err := suite()
	if err != nil {
		return nil, err
	}
	var out []ScalingRow
	for _, tiles := range tileCounts {
		cfg := machine.DefaultConfig()
		switch {
		case tiles < 4:
			cfg.Rows, cfg.Cols = 1, tiles
		default:
			cfg.Rows, cfg.Cols = tiles/4, 4
		}
		if cfg.Rows*cfg.Cols != tiles {
			return nil, fmt.Errorf("tile count %d does not fit a 4-wide grid", tiles)
		}
		row := ScalingRow{Tiles: tiles}
		for _, strat := range []partition.Strategy{partition.StratTask, partition.StratCoarseData, partition.StratCombined} {
			var sp []float64
			for _, p := range ps {
				seqPlan, err := p.pg.Map(partition.StratSequential, tiles)
				if err != nil {
					return nil, err
				}
				seq, err := seqPlan.Simulate(cfg, SimIters)
				if err != nil {
					return nil, err
				}
				plan, err := p.pg.Map(strat, tiles)
				if err != nil {
					return nil, err
				}
				res, err := plan.Simulate(cfg, SimIters)
				if err != nil {
					return nil, err
				}
				sp = append(sp, res.Speedup(seq))
			}
			switch strat {
			case partition.StratTask:
				row.Task = GeoMean(sp)
			case partition.StratCoarseData:
				row.TaskData = GeoMean(sp)
			case partition.StratCombined:
				row.Combined = GeoMean(sp)
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// PrintScaling renders the scaling ablation.
func PrintScaling(w io.Writer) error {
	rows, err := Scaling([]int{2, 4, 8, 16, 32})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: geometric-mean speedup vs tile count")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Tiles\ttask\ttask+data\ttask+data+swp")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.2fx\t%.2fx\t%.2fx\n", r.Tiles, r.Task, r.TaskData, r.Combined)
	}
	return tw.Flush()
}

// CommRow reports one machine-parameter variant.
type CommRow struct {
	Name     string
	TaskData float64
	Combined float64
}

// CommAblation varies synchronization and communication costs to show how
// the combined technique's margin over plain data parallelism depends on
// them (the paper's +45% is a synchronization-cost story).
func CommAblation() ([]CommRow, error) {
	ps, err := suite()
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		cfg  machine.Config
	}{
		{"baseline", machine.DefaultConfig()},
		{"free barriers", func() machine.Config { c := machine.DefaultConfig(); c.BarrierCost = 0; return c }()},
		{"expensive barriers (8x)", func() machine.Config { c := machine.DefaultConfig(); c.BarrierCost *= 8; return c }()},
		{"slow DRAM (4x)", func() machine.Config { c := machine.DefaultConfig(); c.DRAMCost *= 4; return c }()},
		{"2 DRAM ports", func() machine.Config { c := machine.DefaultConfig(); c.DRAMPorts = 2; return c }()},
	}
	var out []CommRow
	for _, v := range variants {
		row := CommRow{Name: v.name}
		for _, strat := range []partition.Strategy{partition.StratCoarseData, partition.StratCombined} {
			var sp []float64
			for _, p := range ps {
				seqPlan, err := p.pg.Map(partition.StratSequential, v.cfg.Tiles())
				if err != nil {
					return nil, err
				}
				seq, err := seqPlan.Simulate(v.cfg, SimIters)
				if err != nil {
					return nil, err
				}
				plan, err := p.pg.Map(strat, v.cfg.Tiles())
				if err != nil {
					return nil, err
				}
				res, err := plan.Simulate(v.cfg, SimIters)
				if err != nil {
					return nil, err
				}
				sp = append(sp, res.Speedup(seq))
			}
			if strat == partition.StratCoarseData {
				row.TaskData = GeoMean(sp)
			} else {
				row.Combined = GeoMean(sp)
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// PrintCommAblation renders the communication-cost ablation.
func PrintCommAblation(w io.Writer) error {
	rows, err := CommAblation()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: synchronization/communication cost sensitivity (geomeans, 16 tiles)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Machine variant\ttask+data\ttask+data+swp\tSWP margin")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2fx\t%.2fx\t%+.0f%%\n", r.Name, r.TaskData, r.Combined, (r.Combined/r.TaskData-1)*100)
	}
	return tw.Flush()
}

// BlockRow is one frequency-translation block-size point.
type BlockRow struct {
	Block   int
	Speedup float64
}

// FreqBlockAblation measures the frequency-translation speedup of a
// 512-tap FIR at several overlap-save block sizes, against the direct
// (unrolled) implementation — the block-size trade-off behind the
// optimizer's cost model.
func FreqBlockAblation() ([]BlockRow, error) {
	const taps = 512
	weights := make([]float64, taps)
	for i := range weights {
		weights[i] = 1.0 / float64(i+1)
	}
	rep := linearRepFor(weights)
	direct := linear.ToKernel("directFIR", rep)
	directRate, err := kernelRate(direct)
	if err != nil {
		return nil, err
	}
	var out []BlockRow
	for _, block := range []int{128, 256, 512, 1024} {
		k, err := linear.FreqKernel(fmt.Sprintf("freq%d", block), weights, block)
		if err != nil {
			return nil, err
		}
		rate, err := kernelRate(k)
		if err != nil {
			return nil, err
		}
		out = append(out, BlockRow{Block: block, Speedup: rate / directRate})
	}
	return out, nil
}

func linearRepFor(weights []float64) *linear.Rep {
	r := linear.NewRep(len(weights), 1, 1)
	copy(r.A[0], weights)
	return r
}

// kernelRate measures a standalone kernel's outputs per second.
func kernelRate(k *wfunc.Kernel) (float64, error) {
	input := make([]float64, 4096+k.Peek)
	for i := range input {
		input[i] = float64(i % 31)
	}
	start := time.Now()
	outputs := 0
	for time.Since(start) < MeasureDur {
		out, err := wfunc.RunKernel(k, input)
		if err != nil {
			return 0, err
		}
		outputs += len(out)
	}
	return float64(outputs) / time.Since(start).Seconds(), nil
}

// PrintFreqBlocks renders the block-size ablation.
func PrintFreqBlocks(w io.Writer) error {
	rows, err := FreqBlockAblation()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: frequency translation of a 512-tap FIR vs block size")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Block\tspeedup over direct")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.2fx\n", r.Block, r.Speedup)
	}
	return tw.Flush()
}
