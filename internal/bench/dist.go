package bench

import (
	"fmt"
	"io"
	"sync"
	"text/tabwriter"
	"time"

	"streamit/internal/apps"
	"streamit/internal/dist"
	"streamit/internal/exec"
	"streamit/internal/ir"
	"streamit/internal/obs"
	"streamit/internal/partition"
	"streamit/internal/sched"
)

// DistResult reports the costs of distributed mapped execution on one
// app: single-process vs sharded-over-loopback-TCP throughput, the
// overhead of per-iteration barriers, and the wall time of a run whose
// shard crashes mid-way and is recovered onto the survivors.
type DistResult struct {
	App           string
	Shards        int
	PerShard      int
	Iters         int     // iterations per throughput measurement
	SingleRate    float64 // iterations/sec, single-process mapped engine
	ShardedRate   float64 // iterations/sec, sharded over loopback TCP
	DistPct       float64 // (single - sharded) / single * 100
	BarrierRate   float64 // sharded iterations/sec with a barrier every iteration
	BarrierPct    float64 // (sharded - barrier) / sharded * 100
	RecoveryMS    float64 // wall ms of the crash-and-recover sharded run
	RecoveryIters int
}

// distApp is the fixed program the distributed benchmark measures — the
// same mid-sized FMRadio the mapped recovery benchmark uses, so the two
// tables are comparable.
func distApp() *ir.Program { return apps.FMRadio(4, 16) }

const distAppName = "FMRadioDist"

func distRegistry() map[string]func() *ir.Program {
	return map[string]func() *ir.Program{distAppName: distApp}
}

// runSharded drives one distributed run with in-process shard workers
// over loopback TCP and returns the result with its wall time.
func runSharded(cfg dist.Config, total int) (*dist.Result, time.Duration, error) {
	cfg.Registry = distRegistry()
	cfg.Log = func(string, ...any) {}
	co, err := dist.NewCoordinator(dist.Spec{App: distAppName}, cfg)
	if err != nil {
		return nil, 0, err
	}
	addr, err := co.Listen("")
	if err != nil {
		return nil, 0, err
	}
	var wg sync.WaitGroup
	for i := 0; i < cfg.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// In-process workers: a crash fault must sever connections, not
			// exit the benchmark process.
			dist.Join(addr, dist.ShardOptions{
				Name:     fmt.Sprintf("bench%d", i),
				Registry: distRegistry(),
				CrashFn:  func() {},
				Log:      func(string, ...any) {},
			})
		}(i)
	}
	start := time.Now()
	res, err := co.Run(total)
	dur := time.Since(start)
	wg.Wait()
	if err != nil {
		return nil, 0, err
	}
	return res, dur, nil
}

// singleRate measures the same plan on a single-process mapped engine —
// identical graph rewrite, all workers local, no wire.
func singleRate(workers, total int) (float64, error) {
	prog := distApp()
	g, err := ir.Flatten(prog)
	if err != nil {
		return 0, err
	}
	s, err := sched.Compute(g)
	if err != nil {
		return 0, err
	}
	plan, err := partition.BuildExecPlan(prog, g, s, partition.ExecPlanOptions{
		Strategy: partition.StratCoarseData, Workers: workers,
	})
	if err != nil {
		return 0, err
	}
	g2, err := ir.Flatten(plan.Program)
	if err != nil {
		return 0, err
	}
	s2, err := sched.Compute(g2)
	if err != nil {
		return 0, err
	}
	eng, err := exec.NewMappedOpts(g2, s2, plan.Assign(g2, s2), plan.Workers, exec.Options{})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if err := eng.Run(total); err != nil {
		return 0, err
	}
	return float64(total) / time.Since(start).Seconds(), nil
}

// DistBench measures distributed execution with shards × perShard
// workers (defaults 2 × 2; the crash measurement always uses one more
// shard so survivors remain).
func DistBench(shards, perShard int) (*DistResult, error) {
	if shards < 2 {
		shards = 2
	}
	if perShard < 1 {
		perShard = 2
	}
	r := &DistResult{App: "FMRadio", Shards: shards, PerShard: perShard, Iters: 256}

	var err error
	if r.SingleRate, err = singleRate(shards*perShard, r.Iters); err != nil {
		return nil, err
	}

	cfg := dist.Config{Shards: shards, PerShard: perShard, Strategy: partition.StratCoarseData, Epoch: 8}
	res, dur, err := runSharded(cfg, r.Iters)
	if err != nil {
		return nil, err
	}
	r.ShardedRate = float64(res.Iterations) / dur.Seconds()
	if r.SingleRate > 0 {
		r.DistPct = (r.SingleRate - r.ShardedRate) / r.SingleRate * 100
	}

	cfg.Epoch = 1
	if res, dur, err = runSharded(cfg, r.Iters); err != nil {
		return nil, err
	}
	r.BarrierRate = float64(res.Iterations) / dur.Seconds()
	if r.ShardedRate > 0 {
		r.BarrierPct = (r.ShardedRate - r.BarrierRate) / r.ShardedRate * 100
	}

	// Crash-and-recover wall time: one shard of shards+1 dies at the run's
	// midpoint, the survivors roll back to the last barrier and finish.
	r.RecoveryIters = 64
	crash := dist.Config{
		Shards: shards + 1, PerShard: perShard, Strategy: partition.StratCoarseData,
		Epoch:  8,
		Faults: fmt.Sprintf("crash:shard1@%d", r.RecoveryIters/2),
	}
	res, dur, err = runSharded(crash, r.RecoveryIters)
	if err != nil {
		return nil, fmt.Errorf("crash-recovery run: %w", err)
	}
	if res.Recoveries < 1 {
		return nil, fmt.Errorf("crash-recovery run finished without recovering")
	}
	r.RecoveryMS = float64(dur.Microseconds()) / 1000
	return r, nil
}

// WriteDistSnapshot persists the measurements as BENCH_dist.json
// (streamit-bench/v1).
func WriteDistSnapshot(r *DistResult) error {
	if JSONDir == "" {
		return nil
	}
	b := obs.NewBench("dist")
	b.Set("shards", float64(r.Shards), "processes")
	b.Set("per_shard_workers", float64(r.PerShard), "cores")
	b.Set("single_process_iters_per_sec", r.SingleRate, "iters/s")
	b.Set("sharded_iters_per_sec", r.ShardedRate, "iters/s")
	b.Set("distribution_overhead_pct", r.DistPct, "%")
	b.Set("per_iter_barrier_iters_per_sec", r.BarrierRate, "iters/s")
	b.Set("barrier_overhead_pct", r.BarrierPct, "%")
	b.Set("crash_recovery_run_ms", r.RecoveryMS, "ms")
	_, err := b.WriteFile(JSONDir)
	return err
}

// PrintDist renders the distributed-execution cost table: sharded vs
// single-process throughput, barrier overhead, and crash recovery.
func PrintDist(w io.Writer) error {
	r, err := DistBench(2, 2)
	if err != nil {
		return err
	}
	if err := WriteDistSnapshot(r); err != nil {
		return err
	}
	fmt.Fprintf(w, "Table dist: distributed mapped execution (%s, %d shards × %d workers, loopback TCP)\n",
		r.App, r.Shards, r.PerShard)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Metric\tValue")
	fmt.Fprintf(tw, "single process\t%.0f iters/s\n", r.SingleRate)
	fmt.Fprintf(tw, "sharded (epoch 8)\t%.0f iters/s\n", r.ShardedRate)
	fmt.Fprintf(tw, "distribution overhead\t%.1f%%\n", r.DistPct)
	fmt.Fprintf(tw, "sharded, barrier every iteration\t%.0f iters/s\n", r.BarrierRate)
	fmt.Fprintf(tw, "barrier overhead\t%.1f%%\n", r.BarrierPct)
	fmt.Fprintf(tw, "crash-and-recover run (%d iters, %d shards)\t%.1f ms\n",
		r.RecoveryIters, r.Shards+1, r.RecoveryMS)
	return tw.Flush()
}
