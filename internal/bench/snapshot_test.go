package bench

import (
	"os"
	"path/filepath"
	"testing"

	"streamit/internal/obs"
)

func validateDir(t *testing.T, dir string, wantFiles int) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != wantFiles {
		t.Fatalf("wrote %d snapshots, want %d: %v", len(paths), wantFiles, paths)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateBench(data); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

func TestWriteVMSnapshots(t *testing.T) {
	dir := t.TempDir()
	JSONDir = dir
	defer func() { JSONDir = "" }()
	rows := []VMRow{
		{Name: "FIR", InterpRate: 1e6, VMRate: 3e6, Speedup: 3},
		{Name: "DToA", InterpRate: 2e6, VMRate: 5e6, Speedup: 2.5},
	}
	if err := writeVMSnapshots(rows, 2.7); err != nil {
		t.Fatal(err)
	}
	validateDir(t, dir, 3) // two apps + the vm_suite geomean

	data, err := os.ReadFile(obs.BenchPath(dir, "FIR"))
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateBench(data); err != nil {
		t.Fatal(err)
	}
}

func TestWriteTeleportSnapshot(t *testing.T) {
	dir := t.TempDir()
	JSONDir = dir
	defer func() { JSONDir = "" }()
	res := &TeleportResult{TeleportRate: 1.5e5, ManualRate: 1e5, Improvement: 50}
	if err := writeTeleportSnapshot(res); err != nil {
		t.Fatal(err)
	}
	validateDir(t, dir, 1)
}

func TestSnapshotsDisabledByDefault(t *testing.T) {
	JSONDir = ""
	if err := writeVMSnapshots([]VMRow{{Name: "X", Speedup: 1}}, 1); err != nil {
		t.Fatal(err)
	}
	if err := writeTeleportSnapshot(&TeleportResult{}); err != nil {
		t.Fatal(err)
	}
}
