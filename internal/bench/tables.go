package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"streamit/internal/partition"
)

// PrintBenchChar renders the E1 table.
func PrintBenchChar(w io.Writer) error {
	rows, err := BenchChar()
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Figure benchchar: benchmark characteristics (sorted by stateful work)")
	fmt.Fprintln(tw, "Benchmark\tFilters\tPeeking\tStateful\tShortest\tLongest\tComp/Comm\tStateful work")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%.1f\t%.1f%%\n",
			r.Name, r.Filters, r.Peeking, r.Stateful, r.ShortestPath, r.LongestPath,
			r.CompComm, r.StatefulWorkPct)
	}
	return tw.Flush()
}

// PrintMainComparison renders E2 (Task, Task+Data, Task+Data+SWP).
func PrintMainComparison(w io.Writer) error {
	strats := []partition.Strategy{partition.StratTask, partition.StratCoarseData, partition.StratCombined}
	return printSpeedups(w, "Figure main_comp: speedup over single core (16 tiles)", strats)
}

// PrintFineGrained renders E3 (fine-grained data parallelism).
func PrintFineGrained(w io.Writer) error {
	strats := []partition.Strategy{partition.StratFineData, partition.StratCoarseData}
	return printSpeedups(w, "Figure fine-dup: fine-grained vs coarse-grained data parallelism", strats)
}

// PrintSoftPipe renders E4 (Task and Task+SWP).
func PrintSoftPipe(w io.Writer) error {
	strats := []partition.Strategy{partition.StratTask, partition.StratSWP}
	return printSpeedups(w, "Figure softpipe: task and task+software-pipeline speedups", strats)
}

func printSpeedups(w io.Writer, title string, strats []partition.Strategy) error {
	rows, means, err := Speedups(strats...)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := "Benchmark"
	for _, s := range strats {
		header += "\t" + string(s)
	}
	fmt.Fprintln(tw, header)
	for _, r := range rows {
		line := r.Name
		for _, s := range strats {
			line += fmt.Sprintf("\t%.2fx", r.Values[s])
		}
		fmt.Fprintln(tw, line)
	}
	line := "geometric mean"
	for _, s := range strats {
		line += fmt.Sprintf("\t%.2fx", means[s])
	}
	fmt.Fprintln(tw, line)
	return tw.Flush()
}

// PrintThroughput renders E5.
func PrintThroughput(w io.Writer) error {
	rows, err := Throughput()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure thruput: combined technique utilization and MFLOPS (peak 7200)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tUtilization\tMFLOPS")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.0f%%\t%.0f\n", r.Name, 100*r.Utilization, r.MFLOPS)
	}
	return tw.Flush()
}

// PrintVsSpace renders E6.
func PrintVsSpace(w io.Writer) error {
	rows, mean, err := VsSpace()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure vs-space: normalized to space multiplexing (prior work); >1 = faster")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tTask+Data vs space\tTask+Data+SWP vs space\t(space vs 1 core)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2fx\t%.2fx\t%.2fx\n", r.Name, r.TaskData, r.Combined, r.SpaceSpeedup)
	}
	fmt.Fprintf(tw, "geometric mean\t\t%.2fx\t\n", mean)
	return tw.Flush()
}

// PrintLinear renders E7.
func PrintLinear(w io.Writer) error {
	rows, mean, err := LinearBench()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table linear: measured interpreter speedup from linear optimization")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tLinear filters\tCombined away\tFreq kernels\tCombination\tFull")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.2fx\t%.2fx\n",
			r.Name, r.LinearFilters, r.Combined, r.FreqKernels, r.SpeedupComb, r.SpeedupFull)
	}
	fmt.Fprintf(tw, "geometric mean\t\t\t\t\t%.2fx\n", mean)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "average improvement: %.0f%% (paper: ~400%%)\n", (mean-1)*100)
	return nil
}

// PrintVM renders the bytecode-VM vs interpreter backend comparison (and,
// with JSONDir set, writes one BENCH_<app>.json snapshot per row).
func PrintVM(w io.Writer) error {
	rows, mean, err := VMBench()
	if err != nil {
		return err
	}
	if err := writeVMSnapshots(rows, mean); err != nil {
		return err
	}
	fmt.Fprintln(w, "Table vm: work-function throughput, bytecode VM vs tree-walking interpreter")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tInterp items/sec\tVM items/sec\tSpeedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.2fx\n", r.Name, r.InterpRate, r.VMRate, r.Speedup)
	}
	fmt.Fprintf(tw, "geometric mean\t\t\t%.2fx\n", mean)
	return tw.Flush()
}

// PrintTeleport renders E8.
func PrintTeleport(w io.Writer) error {
	res, err := TeleportBench()
	if err != nil {
		return err
	}
	if err := writeTeleportSnapshot(res); err != nil {
		return err
	}
	fmt.Fprintln(w, "Table teleport: frequency-hopping radio, teleport messaging vs manual embedding")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Variant\tAudio samples/sec")
	fmt.Fprintf(tw, "manual embedding\t%.0f\n", res.ManualRate)
	fmt.Fprintf(tw, "teleport messaging\t%.0f\n", res.TeleportRate)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "improvement: %.0f%% (paper: 49%%)\n", res.Improvement)
	return nil
}

// PrintAll renders every table in experiment order.
func PrintAll(w io.Writer) error {
	printers := []func(io.Writer) error{
		PrintBenchChar, PrintMainComparison, PrintFineGrained, PrintSoftPipe,
		PrintThroughput, PrintVsSpace, PrintLinear, PrintTeleport,
		PrintScaling, PrintCommAblation, PrintFreqBlocks, PrintVM,
	}
	for i, p := range printers {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := p(w); err != nil {
			return err
		}
	}
	return nil
}
