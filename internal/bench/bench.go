// Package bench regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md for the experiment index):
//
//	E1 benchchar   — benchmark characteristics table
//	E2 main_comp   — Task / Task+Data / Task+Data+SWP speedups, 16 tiles
//	E3 fine-dup    — fine-grained data parallelism
//	E4 softpipe    — Task and Task+SWP
//	E5 thruput     — utilization and MFLOPS of the combined technique
//	E6 vs-space    — combined technique vs space multiplexing (prior work)
//	E7 linear      — linear optimization speedups (avg ~400% in the paper)
//	E8 teleport    — teleport messaging vs manual embedding (~49%)
package bench

import (
	"fmt"
	"math"
	"time"

	"streamit/internal/apps"
	"streamit/internal/exec"
	"streamit/internal/ir"
	"streamit/internal/linear"
	"streamit/internal/machine"
	"streamit/internal/partition"
	"streamit/internal/sched"
)

// SimIters is the number of steady iterations simulated per configuration.
const SimIters = 24

// prepared caches the per-app compilation pipeline.
type prepared struct {
	app   apps.App
	graph *ir.Graph
	sched *sched.Schedule
	pg    *partition.PGraph
	plans map[partition.Strategy]*machine.Result
}

func prepare(app apps.App) (*prepared, error) {
	prog := app.Build()
	g, err := ir.Flatten(prog)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", app.Name, err)
	}
	s, err := sched.Compute(g)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", app.Name, err)
	}
	pg, err := partition.Build(g, s)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", app.Name, err)
	}
	return &prepared{app: app, graph: g, sched: s, pg: pg,
		plans: map[partition.Strategy]*machine.Result{}}, nil
}

func (p *prepared) result(strat partition.Strategy) (*machine.Result, error) {
	if r, ok := p.plans[strat]; ok {
		return r, nil
	}
	plan, err := p.pg.Map(strat, machine.DefaultConfig().Tiles())
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", p.app.Name, strat, err)
	}
	res, err := plan.Simulate(machine.DefaultConfig(), SimIters)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", p.app.Name, strat, err)
	}
	p.plans[strat] = res
	return res, nil
}

func (p *prepared) speedup(strat partition.Strategy) (float64, error) {
	base, err := p.result(partition.StratSequential)
	if err != nil {
		return 0, err
	}
	r, err := p.result(strat)
	if err != nil {
		return 0, err
	}
	return r.Speedup(base), nil
}

// suiteCache prepares all 12 benchmarks once per process.
var suiteCache []*prepared

// suite returns the prepared benchmark suite.
func suite() ([]*prepared, error) {
	if suiteCache != nil {
		return suiteCache, nil
	}
	for _, app := range apps.Suite() {
		p, err := prepare(app)
		if err != nil {
			return nil, err
		}
		suiteCache = append(suiteCache, p)
	}
	return suiteCache, nil
}

// GeoMean computes the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// CharRow is one line of the benchmark characteristics table (E1).
type CharRow struct {
	Name            string
	Filters         int
	Peeking         int
	Stateful        int
	ShortestPath    int
	LongestPath     int
	CompComm        float64
	StatefulWorkPct float64
}

// BenchChar computes the E1 table, sorted (as in the paper) by ascending
// stateful work.
func BenchChar() ([]CharRow, error) {
	ps, err := suite()
	if err != nil {
		return nil, err
	}
	var rows []CharRow
	for _, p := range ps {
		st, err := p.graph.ComputeStats()
		if err != nil {
			return nil, err
		}
		rows = append(rows, CharRow{
			Name:            p.app.Name,
			Filters:         st.Filters,
			Peeking:         st.Peeking,
			Stateful:        st.Stateful,
			ShortestPath:    st.ShortestPath,
			LongestPath:     st.LongestPath,
			CompComm:        p.pg.CompCommRatio(),
			StatefulWorkPct: 100 * p.pg.StatefulWork(),
		})
	}
	// Stable sort by stateful work (ascending), preserving suite order for
	// ties — mirroring the paper's table ordering.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].StatefulWorkPct < rows[j-1].StatefulWorkPct; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	return rows, nil
}

// SpeedupRow is one benchmark's speedups over single-core for E2/E3/E4.
type SpeedupRow struct {
	Name   string
	Values map[partition.Strategy]float64
}

// Speedups computes per-benchmark speedups over the sequential baseline
// for the given strategies.
func Speedups(strats ...partition.Strategy) ([]SpeedupRow, map[partition.Strategy]float64, error) {
	ps, err := suite()
	if err != nil {
		return nil, nil, err
	}
	var rows []SpeedupRow
	acc := map[partition.Strategy][]float64{}
	for _, p := range ps {
		row := SpeedupRow{Name: p.app.Name, Values: map[partition.Strategy]float64{}}
		for _, s := range strats {
			sp, err := p.speedup(s)
			if err != nil {
				return nil, nil, err
			}
			row.Values[s] = sp
			acc[s] = append(acc[s], sp)
		}
		rows = append(rows, row)
	}
	means := map[partition.Strategy]float64{}
	for s, xs := range acc {
		means[s] = GeoMean(xs)
	}
	return rows, means, nil
}

// ThruputRow is one benchmark's combined-technique utilization and MFLOPS
// (E5).
type ThruputRow struct {
	Name        string
	Utilization float64
	MFLOPS      float64
}

// Throughput computes the E5 table.
func Throughput() ([]ThruputRow, error) {
	ps, err := suite()
	if err != nil {
		return nil, err
	}
	var rows []ThruputRow
	for _, p := range ps {
		res, err := p.result(partition.StratCombined)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ThruputRow{
			Name:        p.app.Name,
			Utilization: res.Utilization,
			MFLOPS:      res.MFLOPS,
		})
	}
	return rows, nil
}

// VsSpaceRow compares the combined technique against the space-multiplexed
// prior work (E6): values > 1 mean the combined technique is faster.
type VsSpaceRow struct {
	Name         string
	TaskData     float64 // task+data normalized to space
	Combined     float64 // task+data+swp normalized to space
	SpaceSpeedup float64 // space over sequential, for reference
}

// VsSpace computes the E6 comparison.
func VsSpace() ([]VsSpaceRow, float64, error) {
	ps, err := suite()
	if err != nil {
		return nil, 0, err
	}
	var rows []VsSpaceRow
	var ratios []float64
	for _, p := range ps {
		space, err := p.result(partition.StratSpace)
		if err != nil {
			return nil, 0, err
		}
		td, err := p.result(partition.StratCoarseData)
		if err != nil {
			return nil, 0, err
		}
		comb, err := p.result(partition.StratCombined)
		if err != nil {
			return nil, 0, err
		}
		seq, err := p.result(partition.StratSequential)
		if err != nil {
			return nil, 0, err
		}
		rows = append(rows, VsSpaceRow{
			Name:         p.app.Name,
			TaskData:     td.Speedup(space),
			Combined:     comb.Speedup(space),
			SpaceSpeedup: space.Speedup(seq),
		})
		ratios = append(ratios, comb.Speedup(space))
	}
	return rows, GeoMean(ratios), nil
}

// measureRate runs a program for at least minDur and returns output items
// per second (items consumed by the graph's sinks, per wall-clock second)
// on the default (VM) backend.
func measureRate(prog *ir.Program, minDur time.Duration) (float64, error) {
	return measureRateBackend(prog, minDur, exec.BackendVM)
}

// measureRateBackend is measureRate with an explicit work-function
// backend.
func measureRateBackend(prog *ir.Program, minDur time.Duration, backend exec.Backend) (float64, error) {
	e, err := exec.NewBackend(prog, backend)
	if err != nil {
		return 0, err
	}
	if err := e.RunInit(); err != nil {
		return 0, err
	}
	// Items delivered to sinks per steady iteration.
	var perIter int64
	for _, n := range e.G.Nodes {
		if n.IsSink() {
			perIter += int64(e.Sch.Reps[n.ID] * n.TotalPop())
		}
	}
	if perIter == 0 {
		return 0, fmt.Errorf("%s: no sink items per steady iteration", prog.Name)
	}
	var iters int64
	start := time.Now()
	chunk := 4
	for time.Since(start) < minDur {
		if err := e.RunSteady(chunk); err != nil {
			return 0, err
		}
		iters += int64(chunk)
		if chunk < 1024 {
			chunk *= 2
		}
	}
	sec := time.Since(start).Seconds()
	return float64(iters*perIter) / sec, nil
}

// LinearRow reports one linear-suite benchmark (E7).
type LinearRow struct {
	Name          string
	LinearFilters int
	Combined      int
	FreqKernels   int
	SpeedupComb   float64 // combination only
	SpeedupFull   float64 // combination + frequency translation
}

// MeasureDur is the default wall-clock measurement window per
// configuration in the execution benchmarks (E7/E8).
var MeasureDur = 150 * time.Millisecond

// LinearBench measures E7: interpreter throughput of each linear benchmark
// unoptimized, with linear combination, and with combination plus
// frequency translation.
func LinearBench() ([]LinearRow, float64, error) {
	var rows []LinearRow
	var fulls []float64
	for _, app := range apps.LinearSuite() {
		base, err := measureRate(app.Build(), MeasureDur)
		if err != nil {
			return nil, 0, fmt.Errorf("%s base: %w", app.Name, err)
		}
		combProg := app.Build()
		var repC linear.Report
		top, err := linear.Optimize(combProg.Top, linear.Options{Combine: true}, &repC)
		if err != nil {
			return nil, 0, err
		}
		combProg.Top = top
		comb, err := measureRate(combProg, MeasureDur)
		if err != nil {
			return nil, 0, fmt.Errorf("%s combined: %w", app.Name, err)
		}
		fullProg := app.Build()
		var repF linear.Report
		top, err = linear.Optimize(fullProg.Top, linear.Options{Combine: true, Frequency: true, Block: 64}, &repF)
		if err != nil {
			return nil, 0, err
		}
		fullProg.Top = top
		full, err := measureRate(fullProg, MeasureDur)
		if err != nil {
			return nil, 0, fmt.Errorf("%s full: %w", app.Name, err)
		}
		row := LinearRow{
			Name:          app.Name,
			LinearFilters: repF.LinearFilters,
			Combined:      repF.Combined,
			FreqKernels:   repF.FreqTranslated,
			SpeedupComb:   comb / base,
			SpeedupFull:   full / base,
		}
		if row.SpeedupFull < row.SpeedupComb {
			// The optimizer's cost model picked frequency translation only
			// where beneficial; report the better of the two as "full",
			// matching the paper's automatic selection.
			row.SpeedupFull = row.SpeedupComb
		}
		rows = append(rows, row)
		fulls = append(fulls, row.SpeedupFull)
	}
	return rows, GeoMean(fulls), nil
}

// VMRow reports one benchmark of the bytecode-VM execution backend
// against the tree-walking interpreter.
type VMRow struct {
	Name       string
	InterpRate float64 // sink items per second, interpreter backend
	VMRate     float64 // sink items per second, bytecode VM backend
	Speedup    float64 // VMRate / InterpRate
}

// VMBench measures the linear suite (unoptimized, so every work function
// actually executes IL) on both work-function backends and reports the
// per-app speedup plus its geometric mean.
func VMBench() ([]VMRow, float64, error) {
	var rows []VMRow
	var speedups []float64
	for _, app := range apps.LinearSuite() {
		interp, err := measureRateBackend(app.Build(), MeasureDur, exec.BackendInterp)
		if err != nil {
			return nil, 0, fmt.Errorf("%s interp: %w", app.Name, err)
		}
		vmRate, err := measureRateBackend(app.Build(), MeasureDur, exec.BackendVM)
		if err != nil {
			return nil, 0, fmt.Errorf("%s vm: %w", app.Name, err)
		}
		rows = append(rows, VMRow{
			Name:       app.Name,
			InterpRate: interp,
			VMRate:     vmRate,
			Speedup:    vmRate / interp,
		})
		speedups = append(speedups, vmRate/interp)
	}
	return rows, GeoMean(speedups), nil
}

// TeleportResult reports E8.
type TeleportResult struct {
	TeleportRate float64 // audio samples per second, teleport messaging
	ManualRate   float64 // audio samples per second, manual embedding
	Improvement  float64 // (teleport/manual - 1) * 100 percent
}

// TeleportBench measures E8: the frequency-hopping radio with teleport
// messaging versus manually-embedded control tokens.
func TeleportBench() (*TeleportResult, error) {
	tele, err := measureRate(apps.FreqHoppingRadio(true), MeasureDur)
	if err != nil {
		return nil, fmt.Errorf("teleport: %w", err)
	}
	man, err := measureRate(apps.FreqHoppingRadio(false), MeasureDur)
	if err != nil {
		return nil, fmt.Errorf("manual: %w", err)
	}
	return &TeleportResult{
		TeleportRate: tele,
		ManualRate:   man,
		Improvement:  (tele/man - 1) * 100,
	}, nil
}
