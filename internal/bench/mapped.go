package bench

import (
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"streamit/internal/apps"
	"streamit/internal/exec"
	"streamit/internal/ir"
	"streamit/internal/obs"
	"streamit/internal/partition"
	"streamit/internal/sched"
)

// MappedStrategies are the host-executable rewrite strategies measured by
// MappedBench, in table order.
var MappedStrategies = []partition.Strategy{
	partition.StratTask, partition.StratFineData, partition.StratCoarseData,
	partition.StratSWP, partition.StratCombined,
}

// MappedRow reports one app of the host-mapped engine benchmark: sink
// items per wall-clock second on the goroutine-per-filter ParallelEngine
// and on the MappedEngine under each host-executable rewrite strategy.
// Speedup is the best strategy's rate over the per-filter baseline —
// the rate a partitioner that picks per-app (as the paper's does) gets.
type MappedRow struct {
	Name     string
	Parallel float64
	Rates    map[partition.Strategy]float64
	Speedup  float64
}

// sinkRate measures sink items per second of an engine whose Run method
// re-initializes per call (both concurrent engines do): the iteration
// count grows until a single run fills the measurement window, so the
// timed run amortizes init and ramp-up.
func sinkRate(run func(int) error, perIter int64, minDur time.Duration) (float64, error) {
	if perIter <= 0 {
		return 0, fmt.Errorf("bench: no sink items per steady iteration")
	}
	iters := 8
	for {
		start := time.Now()
		if err := run(iters); err != nil {
			return 0, err
		}
		el := time.Since(start)
		if el >= minDur || iters >= 1<<20 {
			return float64(int64(iters)*perIter) / el.Seconds(), nil
		}
		iters *= 4
	}
}

// sinkItems counts items delivered to sinks per steady iteration. Rates
// are compared in items/sec because the mapped rewrite scales the steady
// state: one rewritten iteration covers a whole multiple of the original.
func sinkItems(g *ir.Graph, s *sched.Schedule) int64 {
	var per int64
	for _, n := range g.Nodes {
		if n.IsSink() {
			per += int64(s.Reps[n.ID] * n.TotalPop())
		}
	}
	return per
}

// MappedBench measures the host-mapped engine against the
// goroutine-per-filter ParallelEngine on the parallelization suite, with
// workers worker cores (0 selects GOMAXPROCS). The returned mean is the
// geomean best-strategy speedup over the per-filter baseline.
func MappedBench(workers int) ([]MappedRow, float64, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var rows []MappedRow
	var speedups []float64
	for _, app := range apps.Suite() {
		prog := app.Build()
		g, err := ir.Flatten(prog)
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", app.Name, err)
		}
		s, err := sched.Compute(g)
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", app.Name, err)
		}
		pe, err := exec.NewParallel(g, s)
		if err != nil {
			return nil, 0, fmt.Errorf("%s parallel: %w", app.Name, err)
		}
		base, err := sinkRate(pe.Run, sinkItems(g, s), MeasureDur)
		if err != nil {
			return nil, 0, fmt.Errorf("%s parallel: %w", app.Name, err)
		}
		row := MappedRow{Name: app.Name, Parallel: base, Rates: map[partition.Strategy]float64{}}
		best := 0.0
		for _, strat := range MappedStrategies {
			rate, err := measureMapped(app, strat, workers)
			if err != nil {
				return nil, 0, fmt.Errorf("%s %s: %w", app.Name, strat, err)
			}
			row.Rates[strat] = rate
			if rate > best {
				best = rate
			}
		}
		row.Speedup = best / base
		speedups = append(speedups, row.Speedup)
		rows = append(rows, row)
	}
	return rows, GeoMean(speedups), nil
}

func measureMapped(app apps.App, strat partition.Strategy, workers int) (float64, error) {
	prog := app.Build()
	g, err := ir.Flatten(prog)
	if err != nil {
		return 0, err
	}
	s, err := sched.Compute(g)
	if err != nil {
		return 0, err
	}
	plan, err := partition.BuildExecPlan(prog, g, s, partition.ExecPlanOptions{Strategy: strat, Workers: workers})
	if err != nil {
		return 0, err
	}
	g2, err := ir.Flatten(plan.Program)
	if err != nil {
		return 0, err
	}
	s2, err := sched.Compute(g2)
	if err != nil {
		return 0, err
	}
	var opts exec.Options
	if plan.Pipelined {
		st, err := partition.PipelineStages(g2)
		if err != nil {
			return 0, err
		}
		opts.Stages = st.Levels
		opts.StageClusters = st.Clusters
	}
	me, err := exec.NewMappedOpts(g2, s2, plan.Assign(g2, s2), plan.Workers, opts)
	if err != nil {
		return 0, err
	}
	return sinkRate(me.Run, sinkItems(g2, s2), MeasureDur)
}

// WriteMappedSnapshots persists the mapped-engine measurements: one
// BENCH_<app>.json per app plus a BENCH_mapped_suite.json geomean.
// WriteMappedSnapshots is exported for the module-root benchmark.
func WriteMappedSnapshots(rows []MappedRow, mean float64, workers int) error {
	if JSONDir == "" {
		return nil
	}
	for _, r := range rows {
		b := obs.NewBench(r.Name)
		b.Set("parallel_items_per_sec", r.Parallel, "items/s")
		b.Set("mapped_task_items_per_sec", r.Rates[partition.StratTask], "items/s")
		b.Set("mapped_fine_items_per_sec", r.Rates[partition.StratFineData], "items/s")
		b.Set("mapped_taskdata_items_per_sec", r.Rates[partition.StratCoarseData], "items/s")
		b.Set("mapped_taskswp_items_per_sec", r.Rates[partition.StratSWP], "items/s")
		b.Set("mapped_combined_items_per_sec", r.Rates[partition.StratCombined], "items/s")
		b.Set("mapped_speedup_x", r.Speedup, "x")
		if _, err := b.WriteFile(JSONDir); err != nil {
			return err
		}
	}
	b := obs.NewBench("mapped_suite")
	b.Set("workers", float64(workers), "cores")
	b.Set("mapped_speedup_geomean_x", mean, "x")
	if _, err := b.WriteFile(JSONDir); err != nil {
		return err
	}
	return WriteSWPSnapshot(rows, workers)
}

// MappedSWPBench runs the focused software-pipelining comparison: every
// suite app under task, task+data, and both pipelined strategies (no
// per-filter baseline, no fine-grained fission — the lockstep plans the
// pipelined ones are judged against). The returned means are the geomean
// ratio of the best pipelined strategy over task+data and over task.
func MappedSWPBench(workers int) ([]MappedRow, float64, float64, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	strats := []partition.Strategy{partition.StratTask, partition.StratCoarseData,
		partition.StratSWP, partition.StratCombined}
	var rows []MappedRow
	for _, app := range apps.Suite() {
		row := MappedRow{Name: app.Name, Rates: map[partition.Strategy]float64{}}
		for _, strat := range strats {
			rate, err := measureMapped(app, strat, workers)
			if err != nil {
				return nil, 0, 0, fmt.Errorf("%s %s: %w", app.Name, strat, err)
			}
			row.Rates[strat] = rate
		}
		rows = append(rows, row)
	}
	vsTaskdata, vsTask := swpRatios(rows)
	return rows, GeoMean(vsTaskdata), GeoMean(vsTask), nil
}

// swpRatios computes, per app, the best pipelined rate over the task+data
// and task rates.
func swpRatios(rows []MappedRow) (vsTaskdata, vsTask []float64) {
	for _, r := range rows {
		swp := r.Rates[partition.StratSWP]
		if c := r.Rates[partition.StratCombined]; c > swp {
			swp = c
		}
		if td := r.Rates[partition.StratCoarseData]; td > 0 {
			vsTaskdata = append(vsTaskdata, swp/td)
		}
		if tk := r.Rates[partition.StratTask]; tk > 0 {
			vsTask = append(vsTask, swp/tk)
		}
	}
	return vsTaskdata, vsTask
}

// WriteSWPSnapshot persists the software-pipelining comparison
// (BENCH_mapped_swp.json): the headline geomean ratio of the best
// pipelined strategy (task+swp or task+data+swp, whichever wins per app)
// over the task+data plan, and the same ratio over plain task.
func WriteSWPSnapshot(rows []MappedRow, workers int) error {
	if JSONDir == "" {
		return nil
	}
	vsTaskdata, vsTask := swpRatios(rows)
	b := obs.NewBench("mapped_swp")
	b.Set("workers", float64(workers), "cores")
	b.Set("apps", float64(len(rows)), "count")
	b.Set("swp_vs_taskdata_geomean_x", GeoMean(vsTaskdata), "x")
	b.Set("swp_vs_task_geomean_x", GeoMean(vsTask), "x")
	_, err := b.WriteFile(JSONDir)
	return err
}

// PrintMapped renders the host-mapped engine table: items/sec per strategy
// against the goroutine-per-filter baseline.
func PrintMapped(w io.Writer) error {
	workers := runtime.GOMAXPROCS(0)
	rows, mean, err := MappedBench(workers)
	if err != nil {
		return err
	}
	if err := WriteMappedSnapshots(rows, mean, workers); err != nil {
		return err
	}
	fmt.Fprintf(w, "Table mapped: host-mapped engine, sink items/sec (%d workers)\n", workers)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tper-filter\ttask\tfine-grained data\ttask+data\ttask+swp\ttask+data+swp\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.2fx\n",
			r.Name, r.Parallel,
			r.Rates[partition.StratTask],
			r.Rates[partition.StratFineData],
			r.Rates[partition.StratCoarseData],
			r.Rates[partition.StratSWP],
			r.Rates[partition.StratCombined],
			r.Speedup)
	}
	fmt.Fprintf(tw, "geometric mean\t\t\t\t\t\t\t%.2fx\n", mean)
	return tw.Flush()
}
