package bench

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"text/tabwriter"
	"time"

	"streamit/internal/apps"
	"streamit/internal/obs"
	"streamit/internal/serve"
)

// ServeResult reports the multi-tenant streaming server's soak metrics: a
// fleet of concurrent Vocoder and FMRadio sessions multiplexed onto the
// shared worker pool, measured as session density, aggregate iteration
// throughput, and per-iteration latency quantiles.
type ServeResult struct {
	Sessions        int
	Workers         int
	Iters           int     // steady iterations per session
	SessionsPerCore float64 // concurrent sessions per pool worker
	CreateMS        float64 // wall ms to stamp every session
	WallMS          float64 // wall ms to run the whole fleet to completion
	ItersPerSec     float64 // aggregate completed iterations per second
	P50NS           int64   // per-iteration latency quantiles (histogram)
	P99NS           int64
	MaxNS           int64
}

// DefaultServeSessions is the serve soak's fleet size; the
// STREAMIT_SERVE_BENCH_SESSIONS environment variable overrides it (CI
// smoke runs use a small fleet).
const DefaultServeSessions = 10000

// serveSessions resolves the fleet size.
func serveSessions() (int, error) {
	env := os.Getenv("STREAMIT_SERVE_BENCH_SESSIONS")
	if env == "" {
		return DefaultServeSessions, nil
	}
	n, err := strconv.Atoi(env)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad STREAMIT_SERVE_BENCH_SESSIONS %q", env)
	}
	return n, nil
}

// ServeBench soaks the streaming server: sessions concurrent sessions
// (alternating the paper-suite Vocoder and FMRadio applications) resident
// in one process, each running iters steady iterations on a pool of
// workers cores.
func ServeBench(sessions, iters, workers int) (*ServeResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	srv := serve.New(serve.Config{
		Workers:        workers,
		MaxSessions:    sessions + 8,
		MaxBufferedOut: 1 << 20,
	})
	defer srv.Close()
	if _, err := srv.LoadProgram("vocoder", apps.Vocoder(15)); err != nil {
		return nil, err
	}
	if _, err := srv.LoadProgram("fmradio", apps.FMRadio(10, 64)); err != nil {
		return nil, err
	}

	r := &ServeResult{Sessions: sessions, Workers: workers, Iters: iters,
		SessionsPerCore: float64(sessions) / float64(workers)}

	all := make([]*serve.Session, sessions)
	start := time.Now()
	for i := range all {
		name := "vocoder"
		if i%2 == 1 {
			name = "fmradio"
		}
		s, err := srv.NewSession(serve.SessionOptions{Program: name, Tenant: name})
		if err != nil {
			return nil, fmt.Errorf("session %d: %w", i, err)
		}
		all[i] = s
	}
	r.CreateMS = float64(time.Since(start).Microseconds()) / 1000

	start = time.Now()
	for _, s := range all {
		if err := s.Run(iters); err != nil {
			return nil, err
		}
	}
	for i, s := range all {
		if err := s.WaitDone(int64(iters), 10*time.Minute); err != nil {
			return nil, fmt.Errorf("session %d: %w", i, err)
		}
		s.Drain(0)
		s.Close()
	}
	wall := time.Since(start)
	r.WallMS = float64(wall.Microseconds()) / 1000
	r.ItersPerSec = float64(sessions*iters) / wall.Seconds()

	st := srv.Stats()
	r.P50NS = st.LatencyNS.P50
	r.P99NS = st.LatencyNS.P99
	r.MaxNS = st.LatencyNS.Max
	if st.Iterations.Completed != int64(sessions*iters) {
		return nil, fmt.Errorf("completed %d iterations, want %d", st.Iterations.Completed, sessions*iters)
	}
	return r, nil
}

// WriteServeSnapshot persists the soak as BENCH_serve.json
// (streamit-bench/v1).
func WriteServeSnapshot(r *ServeResult) error {
	if JSONDir == "" {
		return nil
	}
	b := obs.NewBench("serve")
	b.Set("sessions", float64(r.Sessions), "sessions")
	b.Set("workers", float64(r.Workers), "cores")
	b.Set("sessions_per_core", r.SessionsPerCore, "sessions/core")
	b.Set("iters_per_session", float64(r.Iters), "iters")
	b.Set("create_ms", r.CreateMS, "ms")
	b.Set("wall_ms", r.WallMS, "ms")
	b.Set("iters_per_sec", r.ItersPerSec, "iters/s")
	b.Set("p50_iter_ns", float64(r.P50NS), "ns")
	b.Set("p99_iter_ns", float64(r.P99NS), "ns")
	b.Set("max_iter_ns", float64(r.MaxNS), "ns")
	_, err := b.WriteFile(JSONDir)
	return err
}

// PrintServe renders the streaming-server soak table: session density and
// latency for thousands of concurrent Vocoder/FMRadio sessions on the
// shared pool.
func PrintServe(w io.Writer) error {
	sessions, err := serveSessions()
	if err != nil {
		return err
	}
	r, err := ServeBench(sessions, 16, runtime.GOMAXPROCS(0))
	if err != nil {
		return err
	}
	if err := WriteServeSnapshot(r); err != nil {
		return err
	}
	fmt.Fprintf(w, "Table serve: multi-tenant server soak (%d sessions, %d workers)\n", r.Sessions, r.Workers)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Metric\tValue")
	fmt.Fprintf(tw, "concurrent sessions\t%d (%.0f per core)\n", r.Sessions, r.SessionsPerCore)
	fmt.Fprintf(tw, "session creation\t%.1f ms total (%.1f µs each)\n", r.CreateMS, 1000*r.CreateMS/float64(r.Sessions))
	fmt.Fprintf(tw, "fleet completion\t%.1f ms for %d iters/session\n", r.WallMS, r.Iters)
	fmt.Fprintf(tw, "aggregate throughput\t%.0f iters/s\n", r.ItersPerSec)
	fmt.Fprintf(tw, "iteration latency p50\t%s\n", fmtNS(r.P50NS))
	fmt.Fprintf(tw, "iteration latency p99\t%s\n", fmtNS(r.P99NS))
	fmt.Fprintf(tw, "iteration latency max\t%s\n", fmtNS(r.MaxNS))
	return tw.Flush()
}

func fmtNS(ns int64) string { return time.Duration(ns).Round(100 * time.Nanosecond).String() }
