package bench

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"streamit/internal/apps"
	"streamit/internal/obs"
	"streamit/internal/serve"
)

// ServeRecoveryResult reports the cost of the streaming server's
// checkpointed-restart cycle: a resident fleet snapshotted to disk
// mid-run, the server torn down, and a fresh server restoring every
// session and finishing the remaining iterations.
type ServeRecoveryResult struct {
	Sessions        int
	Workers         int
	Iters           int     // steady iterations per session (half before, half after)
	SnapshotMS      float64 // wall ms for Server.Snapshot over the whole fleet
	BytesPerSession float64 // mean checkpoint envelope size
	TotalBytes      int64   // whole snapshot directory payload
	RestoreMS       float64 // wall ms for Server.Restore of the whole fleet
	RestoredPerSec  float64 // sessions/s rebuilt during restore
	FinishMS        float64 // wall ms for the restored fleet's remaining iterations
}

// ServeRecoveryBench runs the kill/restart cycle: sessions concurrent
// sessions (alternating Vocoder and FMRadio) run the first half of their
// iterations, the server snapshots them all and closes, and a new server
// restores the fleet from disk and runs the second half to completion.
func ServeRecoveryBench(sessions, iters, workers int) (*ServeRecoveryResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	dir, err := os.MkdirTemp("", "streamit-serve-recovery-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	cfg := serve.Config{
		Workers:        workers,
		MaxSessions:    sessions + 8,
		MaxBufferedOut: 1 << 20,
	}
	load := func(srv *serve.Server) error {
		if _, err := srv.LoadProgram("vocoder", apps.Vocoder(15)); err != nil {
			return err
		}
		_, err := srv.LoadProgram("fmradio", apps.FMRadio(10, 64))
		return err
	}

	srv := serve.New(cfg)
	if err := load(srv); err != nil {
		srv.Close()
		return nil, err
	}
	r := &ServeRecoveryResult{Sessions: sessions, Workers: workers, Iters: iters}
	half := iters / 2
	ids := make([]uint64, sessions)
	for i := range ids {
		name := "vocoder"
		if i%2 == 1 {
			name = "fmradio"
		}
		s, err := srv.NewSession(serve.SessionOptions{Program: name, Tenant: name})
		if err != nil {
			srv.Close()
			return nil, fmt.Errorf("session %d: %w", i, err)
		}
		ids[i] = s.ID
		if err := s.Run(half); err != nil {
			srv.Close()
			return nil, err
		}
	}
	for i, id := range ids {
		if err := srv.Session(id).WaitDone(int64(half), 10*time.Minute); err != nil {
			srv.Close()
			return nil, fmt.Errorf("session %d: %w", i, err)
		}
	}

	start := time.Now()
	sum, err := srv.Snapshot(dir)
	if err != nil {
		srv.Close()
		return nil, err
	}
	r.SnapshotMS = float64(time.Since(start).Microseconds()) / 1000
	if sum.Sessions != sessions {
		srv.Close()
		return nil, fmt.Errorf("snapshotted %d sessions, want %d (%d skipped)", sum.Sessions, sessions, sum.Skipped)
	}
	r.TotalBytes = sum.Bytes
	r.BytesPerSession = float64(sum.Bytes) / float64(sessions)
	srv.Close() // the "kill": every resident session dies with the process

	srv2 := serve.New(cfg)
	defer srv2.Close()
	if err := load(srv2); err != nil {
		return nil, err
	}
	start = time.Now()
	rs, err := srv2.Restore(dir)
	if err != nil {
		return nil, err
	}
	restore := time.Since(start)
	if rs.Restored != sessions || len(rs.Failed) > 0 {
		return nil, fmt.Errorf("restored %d sessions, want %d (failed %v)", rs.Restored, sessions, rs.Failed)
	}
	r.RestoreMS = float64(restore.Microseconds()) / 1000
	r.RestoredPerSec = float64(sessions) / restore.Seconds()

	start = time.Now()
	for _, id := range ids {
		if err := srv2.Session(id).Run(iters - half); err != nil {
			return nil, err
		}
	}
	for i, id := range ids {
		s := srv2.Session(id)
		if err := s.WaitDone(int64(iters), 10*time.Minute); err != nil {
			return nil, fmt.Errorf("restored session %d: %w", i, err)
		}
		s.Drain(0)
		s.Close()
	}
	r.FinishMS = float64(time.Since(start).Microseconds()) / 1000

	if got := srv2.Stats().Sessions.Restored; got != int64(sessions) {
		return nil, fmt.Errorf("restored counter %d, want %d", got, sessions)
	}
	return r, nil
}

// WriteServeRecoverySnapshot persists the cycle as
// BENCH_serve_recovery.json (streamit-bench/v1).
func WriteServeRecoverySnapshot(r *ServeRecoveryResult) error {
	if JSONDir == "" {
		return nil
	}
	b := obs.NewBench("serve_recovery")
	b.Set("sessions", float64(r.Sessions), "sessions")
	b.Set("workers", float64(r.Workers), "cores")
	b.Set("iters_per_session", float64(r.Iters), "iters")
	b.Set("snapshot_ms", r.SnapshotMS, "ms")
	b.Set("snapshot_bytes_per_session", r.BytesPerSession, "bytes")
	b.Set("snapshot_bytes_total", float64(r.TotalBytes), "bytes")
	b.Set("restore_ms", r.RestoreMS, "ms")
	b.Set("sessions_per_sec_restored", r.RestoredPerSec, "sessions/s")
	b.Set("finish_ms", r.FinishMS, "ms")
	_, err := b.WriteFile(JSONDir)
	return err
}

// PrintServeRecovery renders the checkpointed-restart table: what a full
// snapshot/kill/restore cycle costs for a resident session fleet.
func PrintServeRecovery(w io.Writer) error {
	sessions, err := serveSessions()
	if err != nil {
		return err
	}
	r, err := ServeRecoveryBench(sessions, 16, runtime.GOMAXPROCS(0))
	if err != nil {
		return err
	}
	if err := WriteServeRecoverySnapshot(r); err != nil {
		return err
	}
	fmt.Fprintf(w, "Table serve-recovery: snapshot/kill/restore cycle (%d sessions, %d workers)\n", r.Sessions, r.Workers)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Metric\tValue")
	fmt.Fprintf(tw, "snapshot\t%.1f ms (%.0f bytes/session, %d total)\n", r.SnapshotMS, r.BytesPerSession, r.TotalBytes)
	fmt.Fprintf(tw, "restore\t%.1f ms (%.0f sessions/s)\n", r.RestoreMS, r.RestoredPerSec)
	fmt.Fprintf(tw, "finish remaining iters\t%.1f ms\n", r.FinishMS)
	return tw.Flush()
}
