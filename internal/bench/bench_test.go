package bench

import (
	"bytes"
	"strings"
	"testing"

	"streamit/internal/partition"
)

// TestBenchCharShape pins the qualitative properties of E1 that the
// paper's narrative depends on.
func TestBenchCharShape(t *testing.T) {
	rows, err := BenchChar()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("expected 12 benchmarks, got %d", len(rows))
	}
	byName := map[string]CharRow{}
	for i := 1; i < len(rows); i++ {
		if rows[i].StatefulWorkPct < rows[i-1].StatefulWorkPct {
			t.Errorf("rows not sorted by stateful work at %d", i)
		}
	}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Radar and Vocoder carry the most stateful work; MPEG2's is small but
	// nonzero; everything else is stateless.
	if byName["Radar"].StatefulWorkPct < 90 {
		t.Errorf("Radar stateful work = %.1f%%, want >= 90%%", byName["Radar"].StatefulWorkPct)
	}
	if v := byName["Vocoder"].StatefulWorkPct; v < 20 || v > 90 {
		t.Errorf("Vocoder stateful work = %.1f%%, want significant", v)
	}
	if v := byName["MPEG2Decoder"].StatefulWorkPct; v <= 0 || v > 5 {
		t.Errorf("MPEG2Decoder stateful work = %.1f%%, want small but nonzero", v)
	}
	stateless := []string{"BitonicSort", "DCT", "DES", "FFT", "Serpent", "TDE"}
	for _, n := range stateless {
		if byName[n].StatefulWorkPct != 0 {
			t.Errorf("%s should have no stateful work, got %.1f%%", n, byName[n].StatefulWorkPct)
		}
		if byName[n].Peeking != 0 {
			t.Errorf("%s should have no peeking filters, got %d", n, byName[n].Peeking)
		}
	}
	// Peeking suite members.
	for _, n := range []string{"ChannelVocoder", "FilterBank", "FMRadio"} {
		if byName[n].Peeking == 0 {
			t.Errorf("%s should contain peeking filters", n)
		}
	}
	// BitonicSort is the finest-grained benchmark: most filters, lowest
	// computation-to-communication ratio among the DSP apps.
	if byName["BitonicSort"].Filters < 80 {
		t.Errorf("BitonicSort filters = %d, want fine granularity (>= 80)", byName["BitonicSort"].Filters)
	}
	// Serpent is the long pipeline.
	if byName["Serpent"].LongestPath < 60 {
		t.Errorf("Serpent longest path = %d, want a long pipeline", byName["Serpent"].LongestPath)
	}
}

// TestMainComparisonShape pins E2's qualitative results: the task-parallel
// baseline is weak (paper: 2.27x), coarse data parallelism is the big win
// (paper: 9.9x), and adding software pipelining never loses and helps the
// stateful applications most.
func TestMainComparisonShape(t *testing.T) {
	rows, means, err := Speedups(partition.StratTask, partition.StratCoarseData, partition.StratCombined)
	if err != nil {
		t.Fatal(err)
	}
	task, data, comb := means[partition.StratTask], means[partition.StratCoarseData], means[partition.StratCombined]
	if task < 1.5 || task > 3.5 {
		t.Errorf("task geomean = %.2f, paper reports 2.27", task)
	}
	if data < 8 || data > 16.5 {
		t.Errorf("task+data geomean = %.2f, paper reports 9.9", data)
	}
	if comb < data {
		t.Errorf("combined (%.2f) should be at least data parallelism (%.2f)", comb, data)
	}
	byName := map[string]SpeedupRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Stateful applications: data parallelism is paralyzed (close to the
	// task baseline) while the combination rescues them.
	for _, n := range []string{"Vocoder", "Radar"} {
		r := byName[n]
		if r.Values[partition.StratCoarseData] > 1.6*r.Values[partition.StratTask] {
			t.Errorf("%s: data parallelism (%.2f) should be paralyzed near task (%.2f)",
				n, r.Values[partition.StratCoarseData], r.Values[partition.StratTask])
		}
		if r.Values[partition.StratCombined] < 1.15*r.Values[partition.StratCoarseData] {
			t.Errorf("%s: combined (%.2f) should clearly beat data alone (%.2f)",
				n, r.Values[partition.StratCombined], r.Values[partition.StratCoarseData])
		}
	}
	// BitonicSort's task parallelism is too fine-grained to profit.
	if v := byName["BitonicSort"].Values[partition.StratTask]; v > 1 {
		t.Errorf("BitonicSort task speedup = %.2f, should be < 1 (too fine-grained)", v)
	}
}

// TestSoftPipeShape pins E4: software pipelining exceeds task parallelism
// substantially (paper: 7.7x vs 2.27x) but DCT and MPEG2 stay low because
// their dominant stateless filter needs fission, not pipelining.
func TestSoftPipeShape(t *testing.T) {
	rows, means, err := Speedups(partition.StratTask, partition.StratSWP)
	if err != nil {
		t.Fatal(err)
	}
	swp := means[partition.StratSWP]
	if swp < 5 || swp > 11 {
		t.Errorf("task+swp geomean = %.2f, paper reports 7.7", swp)
	}
	if swp < 2*means[partition.StratTask] {
		t.Errorf("swp (%.2f) should be well above task (%.2f)", swp, means[partition.StratTask])
	}
	for _, r := range rows {
		if r.Name == "DCT" || r.Name == "MPEG2Decoder" {
			if r.Values[partition.StratSWP] > 4 {
				t.Errorf("%s swp speedup = %.2f: a dominant filter should cap software pipelining", r.Name, r.Values[partition.StratSWP])
			}
		}
	}
}

// TestFineGrainedLosesToCoarse pins E3.
func TestFineGrainedLosesToCoarse(t *testing.T) {
	rows, means, err := Speedups(partition.StratFineData, partition.StratCoarseData)
	if err != nil {
		t.Fatal(err)
	}
	if means[partition.StratFineData] >= means[partition.StratCoarseData] {
		t.Errorf("fine-grained (%.2f) should lose to coarse-grained (%.2f)",
			means[partition.StratFineData], means[partition.StratCoarseData])
	}
	for _, r := range rows {
		if r.Name == "BitonicSort" || r.Name == "FFT" {
			if r.Values[partition.StratFineData] > 0.5*r.Values[partition.StratCoarseData] {
				t.Errorf("%s: fine-grained (%.2f) should collapse against coarse (%.2f)",
					r.Name, r.Values[partition.StratFineData], r.Values[partition.StratCoarseData])
			}
		}
	}
}

// TestVsSpaceShape pins E6: the combined technique beats the prior work
// overall; DCT and MPEG2 (dominant-filter apps) are where space
// multiplexing collapses.
func TestVsSpaceShape(t *testing.T) {
	rows, mean, err := VsSpace()
	if err != nil {
		t.Fatal(err)
	}
	if mean < 1.1 {
		t.Errorf("combined vs space geomean = %.2f, should be > 1.1", mean)
	}
	for _, r := range rows {
		if r.Name == "DCT" || r.Name == "MPEG2Decoder" {
			if r.Combined < 3 {
				t.Errorf("%s: combined vs space = %.2f, expected a rout (space cannot fiss the dominant filter)", r.Name, r.Combined)
			}
		}
		if r.Name == "Vocoder" {
			if r.Combined < r.TaskData {
				t.Errorf("Vocoder: SWP should close the gap on space (combined %.2f < task+data %.2f)", r.Combined, r.TaskData)
			}
		}
	}
}

// TestThroughputBounds pins E5's sanity: utilization within [0, 1] and
// MFLOPS below the 7200 peak, with most benchmarks above 50% utilization.
func TestThroughputBounds(t *testing.T) {
	rows, err := Throughput()
	if err != nil {
		t.Fatal(err)
	}
	above := 0
	for _, r := range rows {
		if r.Utilization < 0 || r.Utilization > 1 {
			t.Errorf("%s utilization %.2f out of range", r.Name, r.Utilization)
		}
		if r.MFLOPS < 0 || r.MFLOPS > 7200 {
			t.Errorf("%s MFLOPS %.0f out of range (peak 7200)", r.Name, r.MFLOPS)
		}
		if r.Utilization >= 0.5 {
			above++
		}
	}
	if above < 7 {
		t.Errorf("only %d/12 benchmarks above 50%% utilization; paper reports 7+ above 60%%", above)
	}
}

// TestGeoMean checks the helper.
func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); g < 1.99 || g > 2.01 {
		t.Errorf("GeoMean(1,4) = %v, want 2", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", g)
	}
}

// TestTablesRender smoke-tests every printer (the simulation-backed ones;
// the wall-clock benchmarks E7/E8 are exercised by the root benchmarks).
func TestTablesRender(t *testing.T) {
	var buf bytes.Buffer
	printers := map[string]func(*bytes.Buffer) error{
		"benchchar": func(b *bytes.Buffer) error { return PrintBenchChar(b) },
		"main":      func(b *bytes.Buffer) error { return PrintMainComparison(b) },
		"finegrain": func(b *bytes.Buffer) error { return PrintFineGrained(b) },
		"softpipe":  func(b *bytes.Buffer) error { return PrintSoftPipe(b) },
		"thruput":   func(b *bytes.Buffer) error { return PrintThroughput(b) },
		"vsspace":   func(b *bytes.Buffer) error { return PrintVsSpace(b) },
	}
	for name, p := range printers {
		buf.Reset()
		if err := p(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := buf.String()
		if !strings.Contains(out, "Radar") || len(out) < 200 {
			t.Errorf("%s table looks incomplete:\n%s", name, out)
		}
	}
}

// TestScalingMonotone smoke-tests the scaling ablation at two machine
// sizes: the combined technique must improve with more tiles.
func TestScalingMonotone(t *testing.T) {
	rows, err := Scaling([]int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[1].Combined <= rows[0].Combined {
		t.Errorf("combined speedup should grow with tiles: %v", rows)
	}
	if rows[0].Task <= 0 || rows[0].TaskData < rows[0].Task {
		t.Errorf("unexpected ordering at 4 tiles: %+v", rows[0])
	}
}
