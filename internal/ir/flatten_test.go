package ir

import (
	"strings"
	"testing"

	"streamit/internal/wfunc"
)

// Test helpers: minimal source, sink, and pass-through filters.

func srcFilter(name string, push int) *Filter {
	b := wfunc.NewKernel(name, 0, 0, push)
	var body []wfunc.Stmt
	for i := 0; i < push; i++ {
		body = append(body, wfunc.Push1(wfunc.Ci(i)))
	}
	b.WorkBody(body...)
	return &Filter{Kernel: b.Build(), In: TypeVoid, Out: TypeFloat}
}

func sinkFilter(name string, pop int) *Filter {
	b := wfunc.NewKernel(name, pop, pop, 0)
	var body []wfunc.Stmt
	for i := 0; i < pop; i++ {
		body = append(body, wfunc.Pop1())
	}
	b.WorkBody(body...)
	return &Filter{Kernel: b.Build(), In: TypeFloat, Out: TypeVoid}
}

func gain(name string, g float64) *Filter {
	b := wfunc.NewKernel(name, 1, 1, 1)
	b.WorkBody(wfunc.Push1(wfunc.MulX(wfunc.PopE(), wfunc.C(g))))
	return &Filter{Kernel: b.Build(), In: TypeFloat, Out: TypeFloat}
}

func fir(name string, taps int) *Filter {
	b := wfunc.NewKernel(name, taps, 1, 1)
	w := b.FieldArray("w", taps)
	i := b.Local("i")
	sum := b.Local("sum")
	b.InitBody(wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(taps),
		wfunc.SetFIdx(w, i, wfunc.AddX(i, wfunc.C(1)))))
	b.WorkBody(
		wfunc.Set(sum, wfunc.C(0)),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(taps),
			wfunc.Set(sum, wfunc.AddX(sum, wfunc.MulX(wfunc.PeekX(i), wfunc.FIdx(w, i))))),
		wfunc.Pop1(),
		wfunc.Push1(sum),
	)
	return &Filter{Kernel: b.Build(), In: TypeFloat, Out: TypeFloat}
}

func TestFlattenPipeline(t *testing.T) {
	p := Pipe("main", srcFilter("src", 1), gain("g1", 2), gain("g2", 3), sinkFilter("snk", 1))
	g, err := FlattenStream("t", p)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 4 {
		t.Fatalf("got %d nodes, want 4", len(g.Nodes))
	}
	if len(g.Edges) != 3 {
		t.Fatalf("got %d edges, want 3", len(g.Edges))
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(order))
	for i, n := range order {
		names[i] = n.Name
	}
	joined := strings.Join(names, " ")
	if !strings.HasPrefix(joined, "src") || !strings.Contains(joined, "g1") {
		t.Errorf("unexpected topo order: %v", names)
	}
}

func TestFlattenSplitJoin(t *testing.T) {
	sj := SJ("eq", Duplicate(), RoundRobin(),
		gain("band1", 1), gain("band2", 2), gain("band3", 3))
	p := Pipe("main", srcFilter("src", 1), sj, sinkFilter("snk", 3))
	g, err := FlattenStream("t", p)
	if err != nil {
		t.Fatal(err)
	}
	// src, splitter, 3 gains, joiner, sink = 7 nodes
	if len(g.Nodes) != 7 {
		t.Fatalf("got %d nodes, want 7", len(g.Nodes))
	}
	var sp, jn *Node
	for _, n := range g.Nodes {
		switch n.Kind {
		case NodeSplitter:
			sp = n
		case NodeJoiner:
			jn = n
		}
	}
	if sp == nil || jn == nil {
		t.Fatal("missing splitter or joiner")
	}
	if sp.PopPort(0) != 1 || sp.PushPort(0) != 1 || sp.PushPort(2) != 1 {
		t.Errorf("duplicate splitter rates wrong: pop=%d push=%d", sp.PopPort(0), sp.PushPort(0))
	}
	if jn.PopPort(1) != 1 || jn.TotalPush() != 3 {
		t.Errorf("joiner rates wrong: pop(1)=%d push=%d", jn.PopPort(1), jn.TotalPush())
	}
}

func TestFlattenWeightedRoundRobin(t *testing.T) {
	// The paper's butterfly: WRR(N,N) split, two branches, RR join.
	n := 4
	sj := SJ("bfly", RoundRobin(n, n), RoundRobin(),
		gain("scale", 1.5), Identity(TypeFloat))
	p := Pipe("main", srcFilter("src", 2*n), sj, sinkFilter("snk", 2))
	g, err := FlattenStream("t", p)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range g.Nodes {
		if node.Kind == NodeSplitter {
			if node.PopPort(0) != 2*n {
				t.Errorf("WRR splitter pop = %d, want %d", node.PopPort(0), 2*n)
			}
			if node.PushPort(0) != n || node.PushPort(1) != n {
				t.Errorf("WRR splitter pushes = %d,%d want %d,%d",
					node.PushPort(0), node.PushPort(1), n, n)
			}
		}
	}
}

func TestFlattenFeedbackLoop(t *testing.T) {
	// Fibonacci-style loop: joiner RR(0? no—1,1), body adds pairs.
	body := fir("loopbody", 1)
	fl := &FeedbackLoop{
		Name:  "loop",
		Join:  RoundRobin(1, 1),
		Body:  body,
		Split: Duplicate(),
		Delay: 2,
		InitPath: func(i int) float64 {
			return float64(i + 1)
		},
	}
	p := Pipe("main", srcFilter("src", 1), fl, sinkFilter("snk", 1))
	g, err := FlattenStream("t", p)
	if err != nil {
		t.Fatal(err)
	}
	var back *Edge
	for _, e := range g.Edges {
		if e.Back {
			back = e
		}
	}
	if back == nil {
		t.Fatal("no back edge marked")
	}
	if len(back.Initial) != 2 || back.Initial[0] != 1 || back.Initial[1] != 2 {
		t.Errorf("back edge initial items = %v, want [1 2]", back.Initial)
	}
	if _, err := g.TopoOrder(); err != nil {
		t.Errorf("topo order should succeed ignoring back edges: %v", err)
	}
}

func TestTypeMismatchRejected(t *testing.T) {
	bad := gain("bad", 1)
	bad.In = TypeInt
	p := Pipe("main", srcFilter("src", 1), bad, sinkFilter("snk", 1))
	if _, err := FlattenStream("t", p); err == nil {
		t.Fatal("expected type mismatch error")
	} else if !strings.Contains(err.Error(), "cannot connect") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSingleAppearanceRejected(t *testing.T) {
	f := gain("shared", 2)
	p := Pipe("main", srcFilter("src", 1), f, f, sinkFilter("snk", 1))
	if _, err := FlattenStream("t", p); err == nil {
		t.Fatal("expected single-appearance error")
	}
}

func TestWeightArityRejected(t *testing.T) {
	sj := SJ("sj", RoundRobin(1, 2, 3), RoundRobin(), gain("a", 1), gain("b", 1))
	p := Pipe("main", srcFilter("src", 1), sj, sinkFilter("snk", 2))
	if _, err := FlattenStream("t", p); err == nil {
		t.Fatal("expected weight arity error")
	}
}

func TestZeroWeightSourceBranch(t *testing.T) {
	// A branch whose filter consumes no input must have splitter weight 0
	// (appendix restriction 6) — and then flattening succeeds with no edge.
	sj := SJ("sj", RoundRobin(1, 0), RoundRobin(1, 1),
		gain("a", 1), srcFilter("gen", 1))
	p := Pipe("main", srcFilter("src", 1), sj, sinkFilter("snk", 2))
	g, err := FlattenStream("t", p)
	if err != nil {
		t.Fatal(err)
	}
	// The generator branch must have no input edge.
	gen := g.FilterNode[sj.Children[1].(*Filter)]
	if gen == nil || !gen.IsSource() {
		t.Error("generator branch should remain a source")
	}
	// Nonzero weight on a source branch is rejected.
	sj2 := SJ("sj2", RoundRobin(1, 1), RoundRobin(1, 1),
		gain("a2", 1), srcFilter("gen2", 1))
	p2 := Pipe("main2", srcFilter("src2", 1), sj2, sinkFilter("snk2", 2))
	if _, err := FlattenStream("t", p2); err == nil {
		t.Fatal("expected zero-weight restriction error")
	}
}

func TestDanglingIORejected(t *testing.T) {
	p := Pipe("main", srcFilter("src", 1), gain("g", 1))
	if _, err := FlattenStream("t", p); err == nil {
		t.Fatal("expected unconsumed-output error")
	}
	p2 := Pipe("main", gain("g2", 1), sinkFilter("snk", 1))
	if _, err := FlattenStream("t", p2); err == nil {
		t.Fatal("expected missing-input error")
	}
}

func TestComputeStats(t *testing.T) {
	sj := SJ("eq", Duplicate(), RoundRobin(),
		Pipe("b1", fir("f1", 8), gain("g1", 1)),
		gain("g2", 2))
	p := Pipe("main", srcFilter("src", 1), sj, sinkFilter("snk", 2))
	g, err := FlattenStream("t", p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := g.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Filters != 5 {
		t.Errorf("filters = %d, want 5", st.Filters)
	}
	if st.Peeking != 1 {
		t.Errorf("peeking = %d, want 1 (the FIR)", st.Peeking)
	}
	// Longest: src, f1, g1, snk = 4; shortest: src, g2, snk = 3.
	if st.LongestPath != 4 || st.ShortestPath != 3 {
		t.Errorf("paths = %d/%d, want 3/4", st.ShortestPath, st.LongestPath)
	}
}

func TestDownstream(t *testing.T) {
	p := Pipe("main", srcFilter("src", 1), gain("a", 1), gain("b", 1), sinkFilter("snk", 1))
	g, err := FlattenStream("t", p)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Downstream(g.Nodes[0], g.Nodes[3]) {
		t.Error("sink should be downstream of source")
	}
	if g.Downstream(g.Nodes[3], g.Nodes[0]) {
		t.Error("source should not be downstream of sink")
	}
}

func TestIdentityFilter(t *testing.T) {
	id := Identity(TypeFloat)
	out, err := wfunc.RunKernel(id.Kernel, []float64{3, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != 3 || out[2] != 4 {
		t.Errorf("identity output = %v", out)
	}
}

func TestRenderString(t *testing.T) {
	p := Pipe("main", srcFilter("src", 1), sinkFilter("snk", 1))
	s := String(p)
	if !strings.Contains(s, "pipeline main") || !strings.Contains(s, "filter src") {
		t.Errorf("render missing content:\n%s", s)
	}
}

func TestDotOutput(t *testing.T) {
	fl := &FeedbackLoop{
		Name:  "loop",
		Join:  RoundRobin(1, 1),
		Body:  fir("dotbody", 2),
		Split: Duplicate(),
		Delay: 3,
	}
	p := Pipe("main", srcFilter("dsrc", 1), fl, sinkFilter("dsnk", 1))
	g, err := FlattenStream("t", p)
	if err != nil {
		t.Fatal(err)
	}
	dot := g.Dot()
	for _, want := range []string{"digraph stream", "shape=box", "style=dashed", "delay 3", "peripheries=2"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
}
