package ir

import (
	"fmt"

	"streamit/internal/wfunc"
)

// NodeKind distinguishes flat-graph node types.
type NodeKind int

// Flat node kinds: filters execute kernels; splitters and joiners are the
// compiler-defined data routers of split-joins and feedback loops.
const (
	NodeFilter NodeKind = iota
	NodeSplitter
	NodeJoiner
)

func (k NodeKind) String() string {
	switch k {
	case NodeFilter:
		return "filter"
	case NodeSplitter:
		return "splitter"
	case NodeJoiner:
		return "joiner"
	}
	return "node?"
}

// Node is a vertex of the flattened stream graph.
type Node struct {
	ID   int
	Kind NodeKind
	Name string

	Filter *Filter // when Kind == NodeFilter
	SJ     SJSpec  // when Kind is NodeSplitter or NodeJoiner

	In  []*Edge // input edges in port order
	Out []*Edge // output edges in port order
}

// Edge is a data channel between two flat nodes.
type Edge struct {
	ID      int
	Src     *Node
	SrcPort int
	Dst     *Node
	DstPort int
	Type    string
	Initial []float64 // items pre-loaded on the channel (feedback delay)
	Back    bool      // closes a feedback cycle
}

func (e *Edge) String() string {
	return fmt.Sprintf("%s->%s", e.Src.Name, e.Dst.Name)
}

// Graph is the flattened stream graph.
type Graph struct {
	Name        string
	Nodes       []*Node
	Edges       []*Edge
	FilterNode  map[*Filter]*Node
	Portals     []*Portal
	Constraints []LatencyConstraint
}

// PopPort returns the items consumed per firing from input port p.
func (n *Node) PopPort(p int) int {
	switch n.Kind {
	case NodeFilter:
		return n.Filter.Kernel.Pop
	case NodeSplitter:
		if n.SJ.Kind == SJDuplicate {
			return 1
		}
		return sum(n.SJ.Weights)
	case NodeJoiner:
		return n.SJ.Weights[p]
	}
	return 0
}

// PeekPort returns the items that must be present on input port p to fire.
func (n *Node) PeekPort(p int) int {
	if n.Kind == NodeFilter {
		return n.Filter.Kernel.Peek
	}
	return n.PopPort(p)
}

// PushPort returns the items produced per firing on output port p.
func (n *Node) PushPort(p int) int {
	switch n.Kind {
	case NodeFilter:
		return n.Filter.Kernel.Push
	case NodeSplitter:
		if n.SJ.Kind == SJDuplicate {
			return 1
		}
		return n.SJ.Weights[p]
	case NodeJoiner:
		return sum(n.SJ.Weights)
	}
	return 0
}

// TotalPop returns the items consumed per firing across all input ports,
// based on declared rates (independent of whether edges are connected yet).
func (n *Node) TotalPop() int {
	switch n.Kind {
	case NodeFilter:
		return n.Filter.Kernel.Pop
	case NodeSplitter:
		if n.SJ.Kind == SJDuplicate {
			return 1
		}
		return sum(n.SJ.Weights)
	case NodeJoiner:
		return sum(n.SJ.Weights)
	}
	return 0
}

// TotalPush returns the items produced per firing across all output ports,
// based on declared rates.
func (n *Node) TotalPush() int {
	switch n.Kind {
	case NodeFilter:
		return n.Filter.Kernel.Push
	case NodeSplitter:
		if n.SJ.Kind == SJDuplicate {
			return len(n.Out)
		}
		return sum(n.SJ.Weights)
	case NodeJoiner:
		return sum(n.SJ.Weights)
	}
	return 0
}

// IsSource reports whether the node consumes no input.
func (n *Node) IsSource() bool { return len(n.In) == 0 }

// IsSink reports whether the node produces no output.
func (n *Node) IsSink() bool { return len(n.Out) == 0 }

// IsStateful reports whether the node carries mutable state across firings
// (its work function writes fields, or it has message handlers that do).
func (n *Node) IsStateful() bool {
	if n.Kind != NodeFilter {
		return false
	}
	k := n.Filter.Kernel
	if wfunc.WritesFields(k.Work) {
		return true
	}
	for _, h := range k.Handlers {
		if wfunc.WritesFields(h) {
			return true
		}
	}
	return false
}

// IsPeeking reports whether the node inspects more items than it consumes.
func (n *Node) IsPeeking() bool {
	return n.Kind == NodeFilter && n.Filter.Kernel.Peek > n.Filter.Kernel.Pop
}

func sum(w []int) int {
	t := 0
	for _, v := range w {
		t += v
	}
	return t
}

// flattener carries state through the recursive flattening.
type flattener struct {
	g    *Graph
	seen map[Stream]bool
}

// Flatten converts a program's hierarchical stream into the flat node/edge
// graph, performing the appendix's structural semantic checks along the
// way: connection type matching, single appearance of each stream,
// round-robin weight arity, feedback-loop port requirements, and
// zero-weight rules for source/sink branches of split-joins.
func Flatten(p *Program) (*Graph, error) {
	f := &flattener{
		g: &Graph{
			Name:        p.Name,
			FilterNode:  map[*Filter]*Node{},
			Portals:     p.Portals,
			Constraints: p.Constraints,
		},
		seen: map[Stream]bool{},
	}
	entry, exit, err := f.flatten(p.Top)
	if err != nil {
		return nil, err
	}
	if entry != nil && entry.TotalPop() > 0 {
		return nil, fmt.Errorf("top-level stream %s consumes external input; provide a source filter", p.Top.StreamName())
	}
	if exit != nil && exit.TotalPush() > 0 {
		return nil, fmt.Errorf("top-level stream %s produces unconsumed output; provide a sink filter", p.Top.StreamName())
	}
	for _, pt := range p.Portals {
		for _, r := range pt.Receivers {
			if f.g.FilterNode[r] == nil {
				return nil, fmt.Errorf("portal %s receiver %s is not in the stream graph", pt.Name, r.Kernel.Name)
			}
		}
	}
	return f.g, nil
}

// FlattenStream flattens a bare stream with no messaging declarations.
func FlattenStream(name string, s Stream) (*Graph, error) {
	return Flatten(&Program{Name: name, Top: s})
}

func (f *flattener) node(kind NodeKind, name string) *Node {
	n := &Node{ID: len(f.g.Nodes), Kind: kind, Name: fmt.Sprintf("%s#%d", name, len(f.g.Nodes))}
	f.g.Nodes = append(f.g.Nodes, n)
	return n
}

func (f *flattener) connect(src *Node, srcPort int, dst *Node, dstPort int, typ string) *Edge {
	e := &Edge{ID: len(f.g.Edges), Src: src, SrcPort: srcPort, Dst: dst, DstPort: dstPort, Type: typ}
	f.g.Edges = append(f.g.Edges, e)
	for len(src.Out) <= srcPort {
		src.Out = append(src.Out, nil)
	}
	src.Out[srcPort] = e
	for len(dst.In) <= dstPort {
		dst.In = append(dst.In, nil)
	}
	dst.In[dstPort] = e
	return e
}

// flatten returns the entry node (which receives the stream's input; nil if
// the stream consumes nothing) and exit node (which produces the stream's
// output; nil if it produces nothing).
func (f *flattener) flatten(s Stream) (entry, exit *Node, err error) {
	if f.seen[s] {
		return nil, nil, fmt.Errorf("stream %s appears more than once in the graph", s.StreamName())
	}
	f.seen[s] = true

	switch s := s.(type) {
	case *Filter:
		n := f.node(NodeFilter, s.Kernel.Name)
		n.Filter = s
		f.g.FilterNode[s] = n
		entry, exit = n, n
		// Dynamic-rate kernels declare hints, not rates; their connectivity
		// is determined by the declared types alone.
		if s.In == TypeVoid || (!s.Kernel.Dynamic && s.Kernel.Pop == 0 && s.Kernel.Peek == 0) {
			entry = nil
		}
		if s.Out == TypeVoid || (!s.Kernel.Dynamic && s.Kernel.Push == 0) {
			exit = nil
		}
		return entry, exit, nil

	case *Pipeline:
		if len(s.Children) == 0 {
			return nil, nil, fmt.Errorf("pipeline %s has no children", s.Name)
		}
		var prev *Node
		var prevType string
		for i, c := range s.Children {
			cEntry, cExit, err := f.flatten(c)
			if err != nil {
				return nil, nil, err
			}
			if i == 0 {
				entry = cEntry
			} else {
				switch {
				case prev != nil && cEntry != nil:
					it := InType(c)
					if prevType != it {
						return nil, nil, fmt.Errorf("pipeline %s: cannot connect %s output (%s) to %s input (%s)",
							s.Name, s.Children[i-1].StreamName(), prevType, c.StreamName(), it)
					}
					f.connect(prev, portOf(prev, true), cEntry, portOf(cEntry, false), it)
				case prev == nil && cEntry != nil:
					return nil, nil, fmt.Errorf("pipeline %s: %s needs input but %s produces none",
						s.Name, c.StreamName(), s.Children[i-1].StreamName())
				case prev != nil && cEntry == nil:
					return nil, nil, fmt.Errorf("pipeline %s: %s produces output but %s consumes none",
						s.Name, s.Children[i-1].StreamName(), c.StreamName())
				}
			}
			prev, prevType = cExit, OutType(c)
		}
		return entry, prev, nil

	case *SplitJoin:
		return f.flattenSplitJoin(s)

	case *FeedbackLoop:
		return f.flattenFeedback(s)
	}
	return nil, nil, fmt.Errorf("unknown stream type %T", s)
}

// portOf returns the free port index for connecting to node n. Splitters
// allocate output ports in order and joiners input ports in order, filling
// the first unconnected (nil) slot first — feedback loops pre-connect port
// 1 and leave port 0 for the external stream. Filters always use port 0.
func portOf(n *Node, out bool) int {
	if out {
		if n.Kind == NodeSplitter {
			for i, e := range n.Out {
				if e == nil {
					return i
				}
			}
			return len(n.Out)
		}
		return 0
	}
	if n.Kind == NodeJoiner {
		for i, e := range n.In {
			if e == nil {
				return i
			}
		}
		return len(n.In)
	}
	return 0
}

func normalizeWeights(spec SJSpec, nChildren int, what, name string) (SJSpec, error) {
	if spec.Kind == SJRoundRobin {
		if len(spec.Weights) == 0 {
			spec.Weights = make([]int, nChildren)
			for i := range spec.Weights {
				spec.Weights[i] = 1
			}
		}
		// roundrobin(w) with one weight broadcasts w to every child, as in
		// StreamIt.
		if len(spec.Weights) == 1 && nChildren > 1 {
			w := spec.Weights[0]
			spec.Weights = make([]int, nChildren)
			for i := range spec.Weights {
				spec.Weights[i] = w
			}
		}
		if len(spec.Weights) != nChildren {
			return spec, fmt.Errorf("%s %s: %d weights for %d children", what, name, len(spec.Weights), nChildren)
		}
		for _, w := range spec.Weights {
			if w < 0 {
				return spec, fmt.Errorf("%s %s: negative weight", what, name)
			}
		}
		if sum(spec.Weights) == 0 {
			return spec, fmt.Errorf("%s %s: all weights are zero", what, name)
		}
	}
	return spec, nil
}

func (f *flattener) flattenSplitJoin(s *SplitJoin) (entry, exit *Node, err error) {
	if len(s.Children) == 0 {
		return nil, nil, fmt.Errorf("splitjoin %s has no children", s.Name)
	}
	if s.Join.Kind == SJDuplicate {
		return nil, nil, fmt.Errorf("splitjoin %s: duplicate joiner is not executable; use a round-robin joiner", s.Name)
	}
	split, err := normalizeWeights(s.Split, len(s.Children), "splitter of", s.Name)
	if err != nil {
		return nil, nil, err
	}
	join, err := normalizeWeights(s.Join, len(s.Children), "joiner of", s.Name)
	if err != nil {
		return nil, nil, err
	}

	var sp, jn *Node
	if split.Kind != SJNull {
		sp = f.node(NodeSplitter, s.Name+".split")
		sp.SJ = split
	}
	if join.Kind != SJNull {
		jn = f.node(NodeJoiner, s.Name+".join")
		jn.SJ = join
	}

	for i, c := range s.Children {
		cEntry, cExit, err := f.flatten(c)
		if err != nil {
			return nil, nil, err
		}
		switch {
		case sp != nil && cEntry != nil:
			w := 1
			if split.Kind == SJRoundRobin {
				w = split.Weights[i]
			}
			if w == 0 {
				// Appendix restriction 6: zero-weight branches must consume
				// nothing; here the branch wants input.
				return nil, nil, fmt.Errorf("splitjoin %s: branch %d consumes input but splitter weight is 0", s.Name, i)
			}
			f.connect(sp, i, cEntry, portOf(cEntry, false), InType(c))
		case sp != nil && cEntry == nil:
			if split.Kind == SJRoundRobin && split.Weights[i] != 0 {
				return nil, nil, fmt.Errorf("splitjoin %s: branch %d consumes no input; splitter weight must be 0", s.Name, i)
			}
			if split.Kind == SJDuplicate {
				return nil, nil, fmt.Errorf("splitjoin %s: branch %d consumes no input under a duplicate splitter", s.Name, i)
			}
			// Zero-weight round-robin branch: no edge.
			f.padPort(sp, i)
		case sp == nil && cEntry != nil:
			return nil, nil, fmt.Errorf("splitjoin %s: branch %d consumes input but splitter is null", s.Name, i)
		}
		switch {
		case jn != nil && cExit != nil:
			w := 1
			if join.Kind == SJRoundRobin {
				w = join.Weights[i]
			}
			if w == 0 {
				return nil, nil, fmt.Errorf("splitjoin %s: branch %d produces output but joiner weight is 0", s.Name, i)
			}
			f.connect(cExit, portOf(cExit, true), jn, i, OutType(c))
		case jn != nil && cExit == nil:
			if join.Kind == SJRoundRobin && join.Weights[i] != 0 {
				return nil, nil, fmt.Errorf("splitjoin %s: branch %d produces no output; joiner weight must be 0", s.Name, i)
			}
			f.padInPort(jn, i)
		case jn == nil && cExit != nil:
			return nil, nil, fmt.Errorf("splitjoin %s: branch %d produces output but joiner is null", s.Name, i)
		}
	}
	f.pruneZeroPorts(sp, jn)
	return sp, jn, nil
}

// padPort/padInPort reserve a port position for zero-weight branches so
// weight indices stay aligned with port indices during construction.
func (f *flattener) padPort(n *Node, p int) {
	for len(n.Out) <= p {
		n.Out = append(n.Out, nil)
	}
}

func (f *flattener) padInPort(n *Node, p int) {
	for len(n.In) <= p {
		n.In = append(n.In, nil)
	}
}

// pruneZeroPorts removes nil (zero-weight) ports and their weights so that
// downstream consumers see dense port lists.
func (f *flattener) pruneZeroPorts(sp, jn *Node) {
	compact := func(edges []*Edge, n *Node, isOut bool) []*Edge {
		var out []*Edge
		var w []int
		for i, e := range edges {
			if e == nil {
				continue
			}
			if isOut {
				e.SrcPort = len(out)
			} else {
				e.DstPort = len(out)
			}
			out = append(out, e)
			if n.SJ.Kind == SJRoundRobin {
				w = append(w, n.SJ.Weights[i])
			}
		}
		if n.SJ.Kind == SJRoundRobin {
			n.SJ.Weights = w
		}
		return out
	}
	if sp != nil {
		sp.Out = compact(sp.Out, sp, true)
	}
	if jn != nil {
		jn.In = compact(jn.In, jn, false)
	}
}

func (f *flattener) flattenFeedback(s *FeedbackLoop) (entry, exit *Node, err error) {
	// Appendix restriction 8: the loop's splitter and joiner must be
	// non-null with exactly two ports.
	if s.Join.Kind == SJNull || s.Split.Kind == SJNull {
		return nil, nil, fmt.Errorf("feedbackloop %s: splitter and joiner must be non-null", s.Name)
	}
	if s.Body == nil {
		return nil, nil, fmt.Errorf("feedbackloop %s: missing body", s.Name)
	}
	join, err := normalizeWeights(s.Join, 2, "joiner of", s.Name)
	if err != nil {
		return nil, nil, err
	}
	split, err := normalizeWeights(s.Split, 2, "splitter of", s.Name)
	if err != nil {
		return nil, nil, err
	}
	if s.Join.Kind == SJDuplicate {
		return nil, nil, fmt.Errorf("feedbackloop %s: duplicate joiner is not executable", s.Name)
	}

	jn := f.node(NodeJoiner, s.Name+".join")
	jn.SJ = join
	sp := f.node(NodeSplitter, s.Name+".split")
	sp.SJ = split

	bEntry, bExit, err := f.flatten(s.Body)
	if err != nil {
		return nil, nil, err
	}
	if bEntry == nil || bExit == nil {
		return nil, nil, fmt.Errorf("feedbackloop %s: body must consume and produce items", s.Name)
	}
	bodyType := InType(s.Body)
	f.connect(jn, 0, bEntry, portOf(bEntry, false), bodyType)
	f.connect(bExit, portOf(bExit, true), sp, 0, OutType(s.Body))

	// Feedback path: splitter port 1 -> (loop stream) -> joiner port 1.
	var loopEdge *Edge
	if s.Loop != nil {
		lEntry, lExit, err := f.flatten(s.Loop)
		if err != nil {
			return nil, nil, err
		}
		if lEntry == nil || lExit == nil {
			return nil, nil, fmt.Errorf("feedbackloop %s: loop stream must consume and produce items", s.Name)
		}
		f.connect(sp, 1, lEntry, portOf(lEntry, false), InType(s.Loop))
		loopEdge = f.connect(lExit, portOf(lExit, true), jn, 1, OutType(s.Loop))
	} else {
		loopEdge = f.connect(sp, 1, jn, 1, OutType(s.Body))
	}
	loopEdge.Back = true
	if s.Delay > 0 {
		init := make([]float64, s.Delay)
		if s.InitPath != nil {
			for i := range init {
				init[i] = s.InitPath(i)
			}
		}
		loopEdge.Initial = init
	}
	// The loop's external input joins at port 0; external output leaves the
	// splitter at port 0. Entry is nil when the joiner draws nothing from
	// outside (weight 0 is rejected above, so entry is always the joiner).
	return jn, sp, nil
}

// InType returns the item type a stream consumes (TypeVoid if none).
func InType(s Stream) string {
	switch s := s.(type) {
	case *Filter:
		return s.In
	case *Pipeline:
		if len(s.Children) == 0 {
			return TypeVoid
		}
		return InType(s.Children[0])
	case *SplitJoin:
		if s.Split.Kind == SJNull {
			return TypeVoid
		}
		for _, c := range s.Children {
			if t := InType(c); t != TypeVoid {
				return t
			}
		}
		return TypeVoid
	case *FeedbackLoop:
		return InType(s.Body)
	}
	return TypeVoid
}

// OutType returns the item type a stream produces (TypeVoid if none).
func OutType(s Stream) string {
	switch s := s.(type) {
	case *Filter:
		return s.Out
	case *Pipeline:
		if len(s.Children) == 0 {
			return TypeVoid
		}
		return OutType(s.Children[len(s.Children)-1])
	case *SplitJoin:
		if s.Join.Kind == SJNull {
			return TypeVoid
		}
		for _, c := range s.Children {
			if t := OutType(c); t != TypeVoid {
				return t
			}
		}
		return TypeVoid
	case *FeedbackLoop:
		return OutType(s.Body)
	}
	return TypeVoid
}
