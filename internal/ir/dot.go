package ir

import (
	"fmt"
	"strings"
)

// Dot renders the flat graph in Graphviz DOT format: filters as boxes
// (peeking filters annotated, stateful filters shaded), splitters and
// joiners as small shapes, feedback back-edges dashed with their delay.
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("digraph stream {\n")
	b.WriteString("  rankdir=TB;\n  node [fontname=\"Helvetica\", fontsize=10];\n")
	for _, n := range g.Nodes {
		switch n.Kind {
		case NodeFilter:
			k := n.Filter.Kernel
			label := fmt.Sprintf("%s\\npeek %d pop %d push %d", k.Name, k.Peek, k.Pop, k.Push)
			attrs := "shape=box"
			if n.IsStateful() {
				attrs += ", style=filled, fillcolor=lightgrey"
			}
			if n.IsPeeking() {
				attrs += ", peripheries=2"
			}
			fmt.Fprintf(&b, "  n%d [label=\"%s\", %s];\n", n.ID, label, attrs)
		case NodeSplitter:
			fmt.Fprintf(&b, "  n%d [label=\"%s%v\", shape=triangle];\n", n.ID, n.SJ.Kind, weightsOf(n))
		case NodeJoiner:
			fmt.Fprintf(&b, "  n%d [label=\"%s%v\", shape=invtriangle];\n", n.ID, n.SJ.Kind, weightsOf(n))
		}
	}
	for _, e := range g.Edges {
		attrs := ""
		if e.Back {
			attrs = fmt.Sprintf(" [style=dashed, label=\"delay %d\"]", len(e.Initial))
		}
		fmt.Fprintf(&b, "  n%d -> n%d%s;\n", e.Src.ID, e.Dst.ID, attrs)
	}
	b.WriteString("}\n")
	return b.String()
}

func weightsOf(n *Node) []int {
	if n.SJ.Kind == SJRoundRobin {
		return n.SJ.Weights
	}
	return nil
}
