package ir

import (
	"fmt"

	"streamit/internal/wfunc"
)

// TopoOrder returns the nodes in a topological order of the acyclic graph
// obtained by ignoring feedback back-edges. It fails if a cycle remains,
// which indicates a malformed graph (cycles are only legal through
// FeedbackLoop constructs, whose closing edge is marked Back).
func (g *Graph) TopoOrder() ([]*Node, error) {
	indeg := make([]int, len(g.Nodes))
	for _, e := range g.Edges {
		if e.Back {
			continue
		}
		indeg[e.Dst.ID]++
	}
	var queue []*Node
	for _, n := range g.Nodes {
		if indeg[n.ID] == 0 {
			queue = append(queue, n)
		}
	}
	var order []*Node
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, e := range n.Out {
			if e == nil || e.Back {
				continue
			}
			indeg[e.Dst.ID]--
			if indeg[e.Dst.ID] == 0 {
				queue = append(queue, e.Dst)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("stream graph contains a cycle outside a feedback loop")
	}
	return order, nil
}

// Sources returns nodes with no inputs.
func (g *Graph) Sources() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.IsSource() {
			out = append(out, n)
		}
	}
	return out
}

// Sinks returns nodes with no outputs.
func (g *Graph) Sinks() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.IsSink() {
			out = append(out, n)
		}
	}
	return out
}

// Downstream reports whether b is reachable from a along data-flow edges
// (including back edges). The paper's min/max transfer functions are only
// defined for such pairs.
func (g *Graph) Downstream(a, b *Node) bool {
	if a == b {
		return false
	}
	seen := make([]bool, len(g.Nodes))
	stack := []*Node{a}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			if e == nil || seen[e.Dst.ID] {
				continue
			}
			if e.Dst == b {
				return true
			}
			seen[e.Dst.ID] = true
			stack = append(stack, e.Dst)
		}
	}
	return false
}

// Stats are the static per-program characteristics reported in the paper's
// benchmark table (Figure "benchchar").
type Stats struct {
	Filters      int // filter nodes (sources/sinks included, as in the paper)
	Peeking      int // filters with peek > pop
	Stateful     int // filters whose work writes fields
	ShortestPath int // nodes on the shortest source-to-sink path
	LongestPath  int // nodes on the longest source-to-sink path
}

// ComputeStats derives the static characteristics of the graph.
func (g *Graph) ComputeStats() (Stats, error) {
	var s Stats
	for _, n := range g.Nodes {
		if n.Kind != NodeFilter {
			continue
		}
		s.Filters++
		if n.IsPeeking() {
			s.Peeking++
		}
		// File readers/writers (sources and sinks) keep a position counter
		// but are not mapped to cores in the paper's evaluation; they do
		// not count as stateful computation.
		if n.IsStateful() && !n.IsSource() && !n.IsSink() {
			s.Stateful++
		}
	}
	order, err := g.TopoOrder()
	if err != nil {
		return s, err
	}
	const inf = int(1e9)
	shortest := make([]int, len(g.Nodes))
	longest := make([]int, len(g.Nodes))
	for i := range shortest {
		shortest[i] = inf
		longest[i] = -inf
	}
	weight := func(n *Node) int {
		if n.Kind == NodeFilter {
			return 1
		}
		return 0 // splitters/joiners don't count as path filters
	}
	for _, n := range order {
		if n.IsSource() {
			shortest[n.ID] = weight(n)
			longest[n.ID] = weight(n)
		}
		for _, e := range n.Out {
			if e == nil || e.Back {
				continue
			}
			d := e.Dst
			if shortest[n.ID]+weight(d) < shortest[d.ID] {
				shortest[d.ID] = shortest[n.ID] + weight(d)
			}
			if longest[n.ID] != -inf && longest[n.ID]+weight(d) > longest[d.ID] {
				longest[d.ID] = longest[n.ID] + weight(d)
			}
		}
	}
	s.ShortestPath, s.LongestPath = inf, 0
	for _, n := range g.Sinks() {
		if shortest[n.ID] < s.ShortestPath {
			s.ShortestPath = shortest[n.ID]
		}
		if longest[n.ID] > s.LongestPath {
			s.LongestPath = longest[n.ID]
		}
	}
	if s.ShortestPath == inf {
		s.ShortestPath = 0
	}
	return s, nil
}

// KernelOf returns the kernel a filter node executes, or nil.
func (n *Node) KernelOf() *wfunc.Kernel {
	if n.Kind != NodeFilter || n.Filter == nil {
		return nil
	}
	return n.Filter.Kernel
}

// InEdge returns the node's first connected input edge (filters and
// splitters have exactly one), or nil.
func (n *Node) InEdge() *Edge {
	for _, e := range n.In {
		if e != nil {
			return e
		}
	}
	return nil
}

// OutEdge returns the node's first connected output edge (filters and
// joiners have exactly one), or nil.
func (n *Node) OutEdge() *Edge {
	for _, e := range n.Out {
		if e != nil {
			return e
		}
	}
	return nil
}
