// Package ir defines the StreamIt stream graph intermediate representation:
// the hierarchical structures the programmer composes (filters, pipelines,
// split-joins, feedback loops), and the flat node/edge graph the compiler
// and runtime operate on.
//
// Every stream has a single input and a single output, so structures
// compose recursively — this is the central language design decision of the
// paper (§3): most of the expressiveness of a general dataflow graph while
// keeping a block-level abstraction the compiler can schedule.
package ir

import (
	"fmt"

	"streamit/internal/wfunc"
)

// Stream is a node of the hierarchical stream graph: a Filter, Pipeline,
// SplitJoin, or FeedbackLoop.
type Stream interface {
	StreamName() string
	isStream()
}

// Type names for stream items. All types lower onto float64 tapes; the
// names exist for connection checking (appendix restriction 2).
const (
	TypeVoid  = "void"
	TypeInt   = "int"
	TypeFloat = "float"
	TypeBit   = "bit"
)

// Filter is the basic unit of computation: single input, single output,
// with behaviour defined by a wfunc Kernel. A Filter value may appear at
// most once in a stream graph (appendix restriction 3).
type Filter struct {
	Kernel  *wfunc.Kernel
	In, Out string // item types; TypeVoid for sources/sinks

	// WorkFn, if set, replaces the kernel's IL work function with native Go
	// code. Native filters execute faster but are opaque to linear
	// analysis; the kernel still declares rates, and its IL (if any) is
	// used for work estimation.
	WorkFn func(in, out wfunc.Tape, state *wfunc.State)

	// Pure marks a native (WorkFn) filter whose output is a pure function
	// of its input window — no state carried across firings. The fusion
	// and fission transforms set it on the filters they synthesize so they
	// can legally compose further; IL filters are analyzed structurally
	// and ignore it.
	Pure bool
}

// StreamName implements Stream.
func (f *Filter) StreamName() string { return f.Kernel.Name }
func (*Filter) isStream()            {}

// Pipeline composes children in sequence: the output of child i feeds the
// input of child i+1.
type Pipeline struct {
	Name     string
	Children []Stream
}

// StreamName implements Stream.
func (p *Pipeline) StreamName() string { return p.Name }
func (*Pipeline) isStream()            {}

// Add appends a child and returns p for chaining.
func (p *Pipeline) Add(children ...Stream) *Pipeline {
	p.Children = append(p.Children, children...)
	return p
}

// SJKind enumerates splitter/joiner behaviours.
type SJKind int

// Splitter and joiner kinds. Null splitters deliver no items to children
// (for source-only children); weighted round-robin covers plain round-robin
// with equal weights; duplicate delivers every item to every child (only
// valid for splitters).
const (
	SJNull SJKind = iota
	SJRoundRobin
	SJDuplicate
)

func (k SJKind) String() string {
	switch k {
	case SJNull:
		return "null"
	case SJRoundRobin:
		return "roundrobin"
	case SJDuplicate:
		return "duplicate"
	}
	return "sjkind?"
}

// SJSpec configures a splitter or joiner.
type SJSpec struct {
	Kind    SJKind
	Weights []int // per-child weights for round-robin; ignored otherwise
}

// RoundRobin returns a weighted round-robin spec. With no arguments the
// weights default to 1 per child at flatten time.
func RoundRobin(weights ...int) SJSpec {
	return SJSpec{Kind: SJRoundRobin, Weights: weights}
}

// Duplicate returns a duplicating-splitter spec.
func Duplicate() SJSpec { return SJSpec{Kind: SJDuplicate} }

// Null returns a null splitter/joiner spec.
func Null() SJSpec { return SJSpec{Kind: SJNull} }

// SplitJoin runs children in parallel between a splitter and a joiner.
type SplitJoin struct {
	Name     string
	Split    SJSpec
	Children []Stream
	Join     SJSpec
}

// StreamName implements Stream.
func (s *SplitJoin) StreamName() string { return s.Name }
func (*SplitJoin) isStream()            {}

// Add appends a parallel child and returns s for chaining.
func (s *SplitJoin) Add(children ...Stream) *SplitJoin {
	s.Children = append(s.Children, children...)
	return s
}

// FeedbackLoop creates a cycle: input joins with the loop stream's output
// at the joiner, flows through the body to the splitter; one splitter
// branch is the loop's output, the other feeds back through the loop
// stream to the joiner. Delay items produced by InitPath pre-populate the
// feedback channel (the paper's initPath/setDelay).
type FeedbackLoop struct {
	Name     string
	Join     SJSpec
	Body     Stream
	Split    SJSpec
	Loop     Stream // nil means the feedback path is a plain channel
	Delay    int
	InitPath func(i int) float64 // nil means zeros
}

// StreamName implements Stream.
func (f *FeedbackLoop) StreamName() string { return f.Name }
func (*FeedbackLoop) isStream()            {}

// Portal names a teleport-messaging broadcast target: messages sent to the
// portal are delivered to every registered receiver filter, at a time
// governed by the information-wavefront semantics.
type Portal struct {
	ID        int
	Name      string
	Receivers []*Filter
}

// Register adds a receiver filter to the portal.
func (p *Portal) Register(f *Filter) { p.Receivers = append(p.Receivers, f) }

// LatencyConstraint is the MAX_LATENCY(A, B, n) directive: at any time, A
// may progress at most to the information wavefront that B will see after n
// further invocations of B's work function. It is treated as a message from
// B to upstream A with latency n.
type LatencyConstraint struct {
	Upstream   *Filter // A
	Downstream *Filter // B
	Latency    int
}

// Program bundles a top-level stream with its messaging declarations.
type Program struct {
	Name        string
	Top         Stream
	Portals     []*Portal
	Constraints []LatencyConstraint
	// Named maps "as"-declared instance names to their filters (filled by
	// the language front end; optional for builder-API programs).
	Named map[string]*Filter
}

// NewPortal allocates the program's next portal.
func (p *Program) NewPortal(name string) *Portal {
	pt := &Portal{ID: len(p.Portals), Name: name}
	p.Portals = append(p.Portals, pt)
	return pt
}

// Pipe is a convenience constructor for pipelines.
func Pipe(name string, children ...Stream) *Pipeline {
	return &Pipeline{Name: name, Children: children}
}

// SJ is a convenience constructor for split-joins.
func SJ(name string, split SJSpec, join SJSpec, children ...Stream) *SplitJoin {
	return &SplitJoin{Name: name, Split: split, Join: join, Children: children}
}

// Identity returns a fresh identity filter of the given type, as provided
// by the language's IDENTITY() built-in.
func Identity(typ string) *Filter {
	b := wfunc.NewKernel("Identity", 1, 1, 1)
	b.WorkBody(wfunc.Push1(wfunc.PopE()))
	return &Filter{Kernel: b.Build(), In: typ, Out: typ}
}

// String renders the hierarchical structure for diagnostics.
func String(s Stream) string {
	return render(s, "")
}

func render(s Stream, indent string) string {
	switch s := s.(type) {
	case *Filter:
		state := ""
		if wfunc.WritesFields(s.Kernel.Work) {
			state = " [stateful]"
		}
		return fmt.Sprintf("%sfilter %s (peek=%d pop=%d push=%d)%s\n",
			indent, s.Kernel.Name, s.Kernel.Peek, s.Kernel.Pop, s.Kernel.Push, state)
	case *Pipeline:
		out := fmt.Sprintf("%spipeline %s {\n", indent, s.Name)
		for _, c := range s.Children {
			out += render(c, indent+"  ")
		}
		return out + indent + "}\n"
	case *SplitJoin:
		out := fmt.Sprintf("%ssplitjoin %s split=%v%v join=%v%v {\n",
			indent, s.Name, s.Split.Kind, s.Split.Weights, s.Join.Kind, s.Join.Weights)
		for _, c := range s.Children {
			out += render(c, indent+"  ")
		}
		return out + indent + "}\n"
	case *FeedbackLoop:
		out := fmt.Sprintf("%sfeedbackloop %s delay=%d {\n", indent, s.Name, s.Delay)
		out += indent + " body:\n" + render(s.Body, indent+"  ")
		if s.Loop != nil {
			out += indent + " loop:\n" + render(s.Loop, indent+"  ")
		}
		return out + indent + "}\n"
	}
	return indent + "?\n"
}
