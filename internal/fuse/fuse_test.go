package fuse

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"streamit/internal/exec"
	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

// mkStateless builds a stateless filter: each output is a scaled window
// sum plus the output index.
func mkStateless(name string, peek, pop, push int, scale float64) *ir.Filter {
	b := wfunc.NewKernel(name, peek, pop, push)
	i := b.Local("i")
	s := b.Local("s")
	var body []wfunc.Stmt
	body = append(body, wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(peek),
		wfunc.Set(s, wfunc.AddX(s, wfunc.PeekX(i)))))
	for j := 0; j < push; j++ {
		body = append(body, wfunc.Push1(wfunc.AddX(wfunc.MulX(s, wfunc.C(scale)), wfunc.Ci(j))))
	}
	for j := 0; j < pop; j++ {
		body = append(body, wfunc.Pop1())
	}
	b.WorkBody(body...)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// mkStateful builds a consumer with persistent state: a running sum over
// everything it has consumed, emitted per firing with a peek-ahead term.
func mkStateful(name string, peek, pop, push int) *ir.Filter {
	b := wfunc.NewKernel(name, peek, pop, push)
	acc := b.Field("acc", 0)
	i := b.Local("i")
	s := b.Local("s")
	var body []wfunc.Stmt
	body = append(body, wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(peek),
		wfunc.Set(s, wfunc.AddX(s, wfunc.PeekX(i)))))
	body = append(body, wfunc.SetF(acc, wfunc.AddX(acc, s)))
	for j := 0; j < push; j++ {
		body = append(body, wfunc.Push1(wfunc.AddX(acc, wfunc.Ci(j))))
	}
	for j := 0; j < pop; j++ {
		body = append(body, wfunc.Pop1())
	}
	b.WorkBody(body...)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

func ramp(name string) *ir.Filter {
	b := wfunc.NewKernel(name, 0, 0, 1)
	n := b.Field("n", 0)
	b.WorkBody(
		wfunc.Push1(wfunc.Bin(wfunc.Mod, n, wfunc.C(97))),
		wfunc.SetF(n, wfunc.AddX(n, wfunc.C(1))),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeVoid, Out: ir.TypeFloat}
}

// TestConcurrentFusion fuses independent pipelines from concurrent
// goroutines: purity now lives on the fused filters themselves, so
// parallel compiles must share no mutable state (run under -race).
func TestConcurrentFusion(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				a := mkStateless("a", 2, 1, 2, 0.5)
				b := mkStateless("b", 2, 2, 1, 2)
				c := mkStateful("c", 1, 1, 1)
				ab, err := Pipeline("ab", a, b)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if !ab.Pure {
					t.Errorf("worker %d: fused stateless pair not marked pure", w)
					return
				}
				abc, err := Pipeline("abc", ab, c)
				if err != nil {
					t.Errorf("worker %d: refusing pure fused producer: %v", w, err)
					return
				}
				if abc.Pure {
					t.Errorf("worker %d: stateful-consumer fusion marked pure", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func outputsOf(t *testing.T, mid []ir.Stream, iters int) []float64 {
	t.Helper()
	snk, got := exec.SliceSink("snk")
	children := append([]ir.Stream{ramp("src")}, mid...)
	children = append(children, snk)
	prog := &ir.Program{Name: "t", Top: ir.Pipe("main", children...)}
	out, err := exec.RunCollect(prog, iters, got)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFusedMatchesPipeline: fusion preserves outputs for rate-changing,
// peeking, and stateful-consumer combinations.
func TestFusedMatchesPipeline(t *testing.T) {
	cases := []struct {
		name string
		a, b func() *ir.Filter
	}{
		{"simple", func() *ir.Filter { return mkStateless("A", 1, 1, 1, 2) },
			func() *ir.Filter { return mkStateless("B", 1, 1, 1, 3) }},
		{"rate-change", func() *ir.Filter { return mkStateless("A", 2, 2, 3, 0.5) },
			func() *ir.Filter { return mkStateless("B", 2, 2, 1, 1.5) }},
		{"peeking-consumer", func() *ir.Filter { return mkStateless("A", 1, 1, 1, 1) },
			func() *ir.Filter { return mkStateless("B", 5, 1, 1, 0.25) }},
		{"peeking-producer", func() *ir.Filter { return mkStateless("A", 4, 2, 1, 1) },
			func() *ir.Filter { return mkStateless("B", 1, 1, 2, 2) }},
		{"stateful-consumer", func() *ir.Filter { return mkStateless("A", 1, 1, 2, 1) },
			func() *ir.Filter { return mkStateful("B", 3, 2, 1) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			plain := outputsOf(t, []ir.Stream{c.a(), c.b()}, 64)
			fused, err := Pipeline("fused", c.a(), c.b())
			if err != nil {
				t.Fatal(err)
			}
			fusedOut := outputsOf(t, []ir.Stream{fused}, 64)
			n := min(len(plain), len(fusedOut))
			if n < 16 {
				t.Fatalf("too few outputs: %d", n)
			}
			for i := 0; i < n; i++ {
				if math.Abs(plain[i]-fusedOut[i]) > 1e-9 {
					t.Fatalf("output %d differs: pipeline %v, fused %v", i, plain[i], fusedOut[i])
				}
			}
		})
	}
}

// TestFuseRandomized: random rate combinations preserve semantics.
func TestFuseRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		aPop := rng.Intn(3) + 1
		aPush := rng.Intn(3) + 1
		aPeek := aPop + rng.Intn(3)
		bPop := rng.Intn(3) + 1
		bPush := rng.Intn(3) + 1
		bPeek := bPop + rng.Intn(4)
		mk := func() (*ir.Filter, *ir.Filter) {
			return mkStateless("A", aPeek, aPop, aPush, 0.5),
				mkStateful("B", bPeek, bPop, bPush)
		}
		a1, b1 := mk()
		plain := outputsOf(t, []ir.Stream{a1, b1}, 48)
		a2, b2 := mk()
		fused, err := Pipeline("fused", a2, b2)
		if err != nil {
			t.Fatalf("trial %d (a:%d/%d/%d b:%d/%d/%d): %v", trial, aPeek, aPop, aPush, bPeek, bPop, bPush, err)
		}
		fusedOut := outputsOf(t, []ir.Stream{fused}, 48)
		n := min(len(plain), len(fusedOut))
		if n < 8 {
			t.Fatalf("trial %d: too few outputs", trial)
		}
		for i := 0; i < n; i++ {
			if math.Abs(plain[i]-fusedOut[i]) > 1e-9 {
				t.Fatalf("trial %d output %d: pipeline %v, fused %v", trial, i, plain[i], fusedOut[i])
			}
		}
	}
}

// TestFuseRejections: stateful producers, handlers, and dynamic rates are
// rejected with clear errors.
func TestFuseRejections(t *testing.T) {
	stateful := mkStateful("S", 1, 1, 1)
	plain := mkStateless("P", 1, 1, 1, 1)
	if _, err := Pipeline("x", stateful, plain); err == nil {
		t.Error("stateful producer should be rejected")
	}
	dynB := wfunc.NewKernel("dyn", 1, 1, 1)
	dynB.Dynamic()
	dynB.WorkBody(wfunc.Push1(wfunc.PopE()))
	dyn := &ir.Filter{Kernel: dynB.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
	if _, err := Pipeline("x", plain, dyn); err == nil {
		t.Error("dynamic consumer should be rejected")
	}
}

// TestFusePipelineStream coarsens a whole pipeline and preserves output.
func TestFusePipelineStream(t *testing.T) {
	mk := func() []ir.Stream {
		return []ir.Stream{
			mkStateless("A", 1, 1, 2, 0.5),
			mkStateless("B", 2, 2, 1, 2),
			mkStateless("C", 3, 1, 1, 0.25),
		}
	}
	plain := outputsOf(t, mk(), 48)
	p := ir.Pipe("mid", mk()...)
	fp := FusePipelineStream(p)
	if len(fp.Children) != 1 {
		t.Fatalf("expected full coarsening to 1 filter, got %d", len(fp.Children))
	}
	fusedOut := outputsOf(t, []ir.Stream{fp}, 48)
	n := min(len(plain), len(fusedOut))
	for i := 0; i < n; i++ {
		if math.Abs(plain[i]-fusedOut[i]) > 1e-9 {
			t.Fatalf("output %d: %v vs %v", i, plain[i], fusedOut[i])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// BenchmarkFusionOverhead compares a three-filter pipeline against its
// fully fused form: fusion removes per-firing engine and channel overhead
// at the cost of re-deriving peek history.
func BenchmarkFusionOverhead(b *testing.B) {
	mk := func() []ir.Stream {
		return []ir.Stream{
			mkStateless("A", 1, 1, 1, 0.5),
			mkStateless("B", 3, 1, 1, 2),
			mkStateless("C", 1, 1, 1, 0.25),
		}
	}
	run := func(b *testing.B, mid []ir.Stream) {
		snk, _ := exec.SliceSink("snk")
		children := append([]ir.Stream{ramp("src")}, mid...)
		children = append(children, snk)
		prog := &ir.Program{Name: "t", Top: ir.Pipe("main", children...)}
		e, err := exec.New(prog)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.RunInit(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.RunSteady(1); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("unfused", func(b *testing.B) { run(b, mk()) })
	b.Run("fused", func(b *testing.B) {
		fp := FusePipelineStream(ir.Pipe("mid", mk()...))
		run(b, []ir.Stream{fp})
	})
}
