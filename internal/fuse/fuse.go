// Package fuse implements executable filter fusion: collapsing two
// pipelined filters into one, the granularity-coarsening transformation
// the paper's compiler applies before partitioning. (The partitioner
// models fusion abstractly for mapping; this package produces an actual
// runnable fused filter, used by tests and available to programs.)
//
// The fused filter re-derives the consumer's peek history from a wider
// input window instead of carrying it as state, exactly like the linear
// combiner: the producer must therefore be stateless (the paper's rule
// that fusing across a peeking boundary introduces state appears here as
// the recompute trade-off). The consumer may be stateful and peeking.
package fuse

import (
	"fmt"

	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

// Pipeline fuses filter a followed by filter b into a single filter with
// static rates:
//
//	pop  = mA * a.Pop            (mA = lcm(a.Push, b.Pop)/a.Push)
//	push = mB * b.Push           (mB = lcm(a.Push, b.Pop)/b.Pop)
//	peek = (mF-1)*a.Pop + a.Peek (mF covers b's peek margin re-derivation)
//
// a must be stateless (no field writes, no handlers) and both must have
// static rates and IL bodies.
func Pipeline(name string, a, b *ir.Filter) (*ir.Filter, error) {
	ka, kb := a.Kernel, b.Kernel
	if b.WorkFn != nil && !b.Pure {
		return nil, fmt.Errorf("fuse: native consumers cannot be fused")
	}
	if ka.Dynamic || kb.Dynamic {
		return nil, fmt.Errorf("fuse: dynamic-rate filters cannot be fused")
	}
	if !pureProducer(a) {
		return nil, fmt.Errorf("fuse: producer %s is stateful; its history cannot be re-derived", ka.Name)
	}
	if len(ka.Handlers) > 0 || len(kb.Handlers) > 0 {
		return nil, fmt.Errorf("fuse: message handlers cannot be fused")
	}
	if b.WorkFn == nil && wfunc.SendsMessages(kb.Work) {
		return nil, fmt.Errorf("fuse: message senders cannot be fused")
	}
	if ka.Push == 0 || kb.Pop == 0 {
		return nil, fmt.Errorf("fuse: %s -> %s is not a data-carrying boundary", ka.Name, kb.Name)
	}

	u := lcm(ka.Push, kb.Pop)
	mA := u / ka.Push
	mB := u / kb.Pop
	e2 := kb.Peek - kb.Pop
	nInter := u + e2
	mF := (nInter + ka.Push - 1) / ka.Push
	peek := (mF-1)*ka.Pop + ka.Peek
	pop := mA * ka.Pop
	push := mB * kb.Push
	if peek < pop {
		peek = pop
	}

	// Build the fused kernel shell: rates only; behaviour is the native
	// closure below driving the original IL bodies through adapter tapes.
	shell := wfunc.NewKernel(name, peek, pop, push)
	shell.Dynamic() // skip the static pop/push body check (body is a stub)
	shell.WorkBody()
	kern := shell.Build()
	kern.Dynamic = false
	kern.Peek, kern.Pop, kern.Push = peek, pop, push

	// Persistent consumer state and reusable frames.
	stateA := ka.NewState()
	if ka.Init != nil {
		env := wfunc.NewEnv(ka.Init)
		env.State = stateA
		if err := wfunc.Exec(ka.Init, env); err != nil {
			return nil, fmt.Errorf("fuse: init of %s: %w", ka.Name, err)
		}
	}
	stateB := kb.NewState()
	if kb.Init != nil {
		env := wfunc.NewEnv(kb.Init)
		env.State = stateB
		if err := wfunc.Exec(kb.Init, env); err != nil {
			return nil, fmt.Errorf("fuse: init of %s: %w", kb.Name, err)
		}
	}
	envA := wfunc.NewEnv(ka.Work)
	envA.State = stateA
	envB := wfunc.NewEnv(kb.Work)
	envB.State = stateB

	inter := &interTape{}
	reader := &windowTape{}

	// fireA executes one producer firing against the window; the producer
	// may itself be a fused (pure) native filter.
	fireA := func(in wfunc.Tape) {
		if a.WorkFn != nil {
			a.WorkFn(in, inter, nil)
			return
		}
		envA.Reset()
		envA.In, envA.Out = in, inter
		if err := wfunc.Exec(ka.Work, envA); err != nil {
			panic(fmt.Sprintf("fused %s: %v", ka.Name, err))
		}
	}
	fireB := func(out wfunc.Tape) {
		if b.WorkFn != nil {
			b.WorkFn(inter, out, nil)
			return
		}
		envB.Reset()
		envB.In, envB.Out = inter, out
		if err := wfunc.Exec(kb.Work, envB); err != nil {
			panic(fmt.Sprintf("fused %s: %v", kb.Name, err))
		}
	}

	workFn := func(in, out wfunc.Tape, state *wfunc.State) {
		// Phase 1: virtually fire the producer mF times over the peek
		// window (no real pops), collecting intermediates.
		inter.reset()
		reader.under = in
		reader.limit = peek
		for k := 0; k < mF; k++ {
			reader.base = k * ka.Pop
			reader.cursor = 0
			fireA(reader)
		}
		// Phase 2: fire the consumer mB times against the intermediates.
		for j := 0; j < mB; j++ {
			fireB(out)
		}
		// Phase 3: consume the fused filter's real input.
		for i := 0; i < pop; i++ {
			in.Pop()
		}
	}

	fused := &ir.Filter{Kernel: kern, In: a.In, Out: b.Out, WorkFn: workFn}
	// A fused filter is a pure function of its peek window when every
	// constituent is stateless; the flag makes it a legal producer (or
	// native consumer) for further fusion. Stored on the filter itself so
	// concurrent compiles share nothing and dropped filters are collectable.
	fused.Pure = b.WorkFn != nil && b.Pure || b.WorkFn == nil && !wfunc.WritesFields(kb.Work)
	return fused, nil
}

func pureProducer(f *ir.Filter) bool {
	if f.WorkFn != nil {
		return f.Pure
	}
	return !wfunc.WritesFields(f.Kernel.Work) && !wfunc.SendsMessages(f.Kernel.Work)
}

// FusePipelineStream fuses every adjacent fusable filter pair in a
// pipeline, left to right, returning a new pipeline (other children are
// kept as-is). It is a convenience for coarsening whole pipelines.
func FusePipelineStream(p *ir.Pipeline) *ir.Pipeline {
	out := &ir.Pipeline{Name: p.Name + "_fused"}
	for _, c := range p.Children {
		f, ok := c.(*ir.Filter)
		if !ok {
			out.Add(c)
			continue
		}
		if n := len(out.Children); n > 0 {
			if prev, ok := out.Children[n-1].(*ir.Filter); ok {
				if fused, err := Pipeline(prev.Kernel.Name+"+"+f.Kernel.Name, prev, f); err == nil {
					out.Children[n-1] = fused
					continue
				}
			}
		}
		out.Add(f)
	}
	return out
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

// windowTape presents a sliding sub-window of an underlying tape: peeks
// are offset by base+cursor and pops only advance the cursor, never
// consuming from the underlying tape. Reads past limit (the fused peek
// rate) panic with an error value so the engines' recover path wraps the
// fault as a structured ExecError instead of a raw index panic.
type windowTape struct {
	under  wfunc.Tape
	base   int
	cursor int
	limit  int
}

// Peek implements wfunc.Tape.
func (t *windowTape) Peek(i int) float64 {
	idx := t.base + t.cursor + i
	if i < 0 || idx >= t.limit {
		panic(fmt.Errorf("fuse: window peek(%d) at offset %d reads past the %d-item peek window", i, idx, t.limit))
	}
	return t.under.Peek(idx)
}

// Pop implements wfunc.Tape.
func (t *windowTape) Pop() float64 {
	idx := t.base + t.cursor
	if idx >= t.limit {
		panic(fmt.Errorf("fuse: window pop at offset %d reads past the %d-item peek window", idx, t.limit))
	}
	v := t.under.Peek(idx)
	t.cursor++
	return v
}

// Push is invalid on the window tape.
func (t *windowTape) Push(float64) { panic("fuse: producer input tape is read-only") }

// interTape buffers the intermediates between the fused halves.
type interTape struct {
	buf  []float64
	head int
}

func (t *interTape) reset() { t.buf = t.buf[:0]; t.head = 0 }

// Peek implements wfunc.Tape.
func (t *interTape) Peek(i int) float64 {
	if i < 0 || t.head+i >= len(t.buf) {
		panic(fmt.Errorf("fuse: intermediate peek(%d) underflows the %d buffered items", i, len(t.buf)-t.head))
	}
	return t.buf[t.head+i]
}

// Pop implements wfunc.Tape.
func (t *interTape) Pop() float64 {
	if t.head >= len(t.buf) {
		panic(fmt.Errorf("fuse: intermediate pop underflows an empty buffer"))
	}
	v := t.buf[t.head]
	t.head++
	return v
}

// Push implements wfunc.Tape.
func (t *interTape) Push(v float64) { t.buf = append(t.buf, v) }
