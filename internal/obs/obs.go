// Package obs is the observability layer shared by every execution engine
// and both work-function backends: a per-filter profiler (firings, tape
// traffic, work and stall time, buffer high-water marks), a Chrome
// trace_event recorder, and a stable JSON metrics schema for benchmark
// snapshots (BENCH_<app>.json).
//
// The paper's evaluation hinges on measuring where cycles go — per-filter
// work estimates drive partitioning and the Raw results report throughput
// and utilization per mapping — so this reproduction makes the same
// quantities observable at runtime. Everything here is designed for a
// zero-cost disabled path: engines hold nil pointers when observability is
// off, and every counter update is a single atomic add when it is on, so
// the profiler is safe under the concurrent engines without locks.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"text/tabwriter"
	"time"
)

// FilterStats is one node's live profile: lock-free atomic counters
// updated from the engine hot path. All engines and backends update the
// same counter set, which is what makes cross-engine conformance checkable
// (see the exec conformance suite).
type FilterStats struct {
	name    string
	firings atomic.Int64
	pushed  atomic.Int64
	popped  atomic.Int64
	peeked  atomic.Int64
	workNS  atomic.Int64
	stallNS atomic.Int64
	tapeHWM atomic.Int64
}

// Name returns the node name the stats belong to.
func (s *FilterStats) Name() string { return s.name }

// AddFiring counts one completed firing.
func (s *FilterStats) AddFiring() { s.firings.Add(1) }

// AddPush counts one item pushed to the output tape.
func (s *FilterStats) AddPush() { s.pushed.Add(1) }

// AddPop counts one item popped from the input tape.
func (s *FilterStats) AddPop() { s.popped.Add(1) }

// AddPushes counts n pushed items at once (splitter/joiner firings have
// static per-firing traffic, so engines credit it arithmetically).
func (s *FilterStats) AddPushes(n int64) { s.pushed.Add(n) }

// AddPops counts n popped items at once.
func (s *FilterStats) AddPops(n int64) { s.popped.Add(n) }

// AddPeek counts one peek at the input tape.
func (s *FilterStats) AddPeek() { s.peeked.Add(1) }

// AddWork accumulates time spent inside the work function.
func (s *FilterStats) AddWork(d time.Duration) { s.workNS.Add(int64(d)) }

// AddStall accumulates time spent blocked on a tape (waiting to receive
// input or to ship output). Always zero on the sequential engine.
func (s *FilterStats) AddStall(d time.Duration) { s.stallNS.Add(int64(d)) }

// StallNanos returns the stall time accumulated so far (engines whose
// work functions can block mid-firing subtract it from work measurements).
func (s *FilterStats) StallNanos() int64 { return s.stallNS.Load() }

// NoteOccupancy raises the output-tape occupancy high-water mark to n if
// it is higher than the current mark.
func (s *FilterStats) NoteOccupancy(n int64) {
	for {
		cur := s.tapeHWM.Load()
		if n <= cur || s.tapeHWM.CompareAndSwap(cur, n) {
			return
		}
	}
}

// FilterProfile is an immutable snapshot of one node's counters.
type FilterProfile struct {
	Name    string `json:"name"`
	Firings int64  `json:"firings"`
	Pushed  int64  `json:"pushed"`
	Popped  int64  `json:"popped"`
	Peeked  int64  `json:"peeked"`
	WorkNS  int64  `json:"work_ns"`
	StallNS int64  `json:"stall_ns"`
	TapeHWM int64  `json:"tape_hwm"`
}

// Profiler holds one FilterStats per graph node, indexed by node ID. It is
// shared between an engine and any helper engines it spawns (the parallel
// engine's init transient), so counters always cover the whole run.
type Profiler struct {
	stats []*FilterStats
}

// NewProfiler builds a profiler for the given node names (indexed by node
// ID, the engines' natural indexing).
func NewProfiler(names []string) *Profiler {
	p := &Profiler{stats: make([]*FilterStats, len(names))}
	for i, n := range names {
		p.stats[i] = &FilterStats{name: n}
	}
	return p
}

// At returns the stats cell for node id.
func (p *Profiler) At(id int) *FilterStats { return p.stats[id] }

// Snapshot returns every node's counters, sorted by name.
func (p *Profiler) Snapshot() []FilterProfile {
	out := make([]FilterProfile, 0, len(p.stats))
	for _, s := range p.stats {
		out = append(out, FilterProfile{
			Name:    s.name,
			Firings: s.firings.Load(),
			Pushed:  s.pushed.Load(),
			Popped:  s.popped.Load(),
			Peeked:  s.peeked.Load(),
			WorkNS:  s.workNS.Load(),
			StallNS: s.stallNS.Load(),
			TapeHWM: s.tapeHWM.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the snapshot keyed by node name (flattened instance names
// are unique within a graph).
func (p *Profiler) ByName() map[string]FilterProfile {
	out := make(map[string]FilterProfile, len(p.stats))
	for _, fp := range p.Snapshot() {
		out[fp.Name] = fp
	}
	return out
}

// WorkNSPerFiring returns each node's average measured work per firing in
// nanoseconds (nodes that never fired or recorded no work are omitted).
// This is the measured-work estimate the partitioner can consume in place
// of the static IL estimator.
func (p *Profiler) WorkNSPerFiring() map[string]int64 {
	out := map[string]int64{}
	for _, fp := range p.Snapshot() {
		if fp.Firings > 0 && fp.WorkNS > 0 {
			out[fp.Name] = fp.WorkNS / fp.Firings
		}
	}
	return out
}

// WorkWindow watches a Profiler over sliding windows: each Advance closes
// the current window and returns the per-node work and firing deltas
// accumulated inside it, indexed by node ID like the profiler itself.
// Whole-run averages dilute behaviour changes (a filter that got slow an
// hour in still looks fast on average); windowed deltas are what lets the
// elastic replan controller judge worker balance from *recent* firings, and
// see the effect of a re-plan in the very next window.
type WorkWindow struct {
	prof    *Profiler
	work    []int64
	firings []int64
}

// NewWorkWindow opens a window baseline at the profiler's current counters
// (so an init transient or earlier run is excluded from the first sample).
func NewWorkWindow(p *Profiler) *WorkWindow {
	w := &WorkWindow{prof: p,
		work:    make([]int64, len(p.stats)),
		firings: make([]int64, len(p.stats))}
	w.Advance()
	return w
}

// WindowSample holds one closed window's per-node deltas, indexed by node
// ID.
type WindowSample struct {
	WorkNS  []int64
	Firings []int64
}

// Advance closes the current window and starts the next, returning the
// closed window's deltas.
func (w *WorkWindow) Advance() WindowSample {
	ws := WindowSample{
		WorkNS:  make([]int64, len(w.work)),
		Firings: make([]int64, len(w.firings)),
	}
	for i, s := range w.prof.stats {
		wk, fi := s.workNS.Load(), s.firings.Load()
		ws.WorkNS[i] = wk - w.work[i]
		ws.Firings[i] = fi - w.firings[i]
		w.work[i], w.firings[i] = wk, fi
	}
	return ws
}

// PerFiring returns the sample's average work per firing in nanoseconds,
// keyed by node name (nodes that did not fire or recorded no work in the
// window are omitted) — the shape the partitioner's measured-work inputs
// consume.
func (ws WindowSample) PerFiring(names []string) map[string]int64 {
	out := map[string]int64{}
	for i, wk := range ws.WorkNS {
		if i < len(names) && ws.Firings[i] > 0 && wk > 0 {
			out[names[i]] = wk / ws.Firings[i]
		}
	}
	return out
}

// Table renders the per-filter profile as an aligned text table (the
// streamit-run -profile report). Nodes that never fired are omitted.
func (p *Profiler) Table() string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "filter\tfirings\tpushed\tpopped\tpeeked\twork\twork/firing\tstall\ttape hwm")
	for _, fp := range p.Snapshot() {
		if fp.Firings == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%v\t%v\t%v\t%d\n",
			fp.Name, fp.Firings, fp.Pushed, fp.Popped, fp.Peeked,
			time.Duration(fp.WorkNS).Round(time.Microsecond),
			time.Duration(fp.WorkNS/fp.Firings),
			time.Duration(fp.StallNS).Round(time.Microsecond),
			fp.TapeHWM)
	}
	tw.Flush()
	return b.String()
}
