package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFilterStatsCounters(t *testing.T) {
	p := NewProfiler([]string{"src", "fir", "sink"})
	st := p.At(1)
	if st.Name() != "fir" {
		t.Fatalf("At(1).Name() = %q, want fir", st.Name())
	}
	st.AddFiring()
	st.AddFiring()
	st.AddPush()
	st.AddPushes(3)
	st.AddPop()
	st.AddPops(5)
	st.AddPeek()
	st.AddWork(10 * time.Microsecond)
	st.AddStall(2 * time.Microsecond)

	fp := p.ByName()["fir"]
	want := FilterProfile{Name: "fir", Firings: 2, Pushed: 4, Popped: 6,
		Peeked: 1, WorkNS: 10000, StallNS: 2000}
	if fp != want {
		t.Errorf("profile = %+v, want %+v", fp, want)
	}
	if got := st.StallNanos(); got != 2000 {
		t.Errorf("StallNanos() = %d, want 2000", got)
	}
}

func TestNoteOccupancyIsMonotonic(t *testing.T) {
	var st FilterStats
	for _, n := range []int64{3, 7, 5, 7, 2} {
		st.NoteOccupancy(n)
	}
	if got := st.tapeHWM.Load(); got != 7 {
		t.Errorf("tape HWM = %d, want 7", got)
	}
}

func TestFilterStatsConcurrent(t *testing.T) {
	var st FilterStats
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				st.AddFiring()
				st.AddPush()
				st.NoteOccupancy(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got := st.firings.Load(); got != workers*per {
		t.Errorf("firings = %d, want %d", got, workers*per)
	}
	if got := st.tapeHWM.Load(); got != workers*per-1 {
		t.Errorf("tape HWM = %d, want %d", got, workers*per-1)
	}
}

func TestSnapshotSortedByName(t *testing.T) {
	p := NewProfiler([]string{"zeta", "alpha", "mid"})
	snap := p.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot length %d, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name > snap[i].Name {
			t.Errorf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
}

func TestWorkNSPerFiring(t *testing.T) {
	p := NewProfiler([]string{"idle", "busy"})
	busy := p.At(1)
	busy.AddFiring()
	busy.AddFiring()
	busy.AddWork(100 * time.Nanosecond)
	m := p.WorkNSPerFiring()
	if len(m) != 1 || m["busy"] != 50 {
		t.Errorf("WorkNSPerFiring() = %v, want map[busy:50]", m)
	}
}

func TestTableOmitsIdleNodes(t *testing.T) {
	p := NewProfiler([]string{"idle", "busy"})
	st := p.At(1)
	st.AddFiring()
	st.AddPush()
	st.AddWork(time.Millisecond)
	tab := p.Table()
	if !strings.Contains(tab, "busy") {
		t.Errorf("table missing fired node:\n%s", tab)
	}
	if strings.Contains(tab, "idle") {
		t.Errorf("table contains never-fired node:\n%s", tab)
	}
	if !strings.Contains(tab, "firings") {
		t.Errorf("table missing header:\n%s", tab)
	}
}
