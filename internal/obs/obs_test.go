package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFilterStatsCounters(t *testing.T) {
	p := NewProfiler([]string{"src", "fir", "sink"})
	st := p.At(1)
	if st.Name() != "fir" {
		t.Fatalf("At(1).Name() = %q, want fir", st.Name())
	}
	st.AddFiring()
	st.AddFiring()
	st.AddPush()
	st.AddPushes(3)
	st.AddPop()
	st.AddPops(5)
	st.AddPeek()
	st.AddWork(10 * time.Microsecond)
	st.AddStall(2 * time.Microsecond)

	fp := p.ByName()["fir"]
	want := FilterProfile{Name: "fir", Firings: 2, Pushed: 4, Popped: 6,
		Peeked: 1, WorkNS: 10000, StallNS: 2000}
	if fp != want {
		t.Errorf("profile = %+v, want %+v", fp, want)
	}
	if got := st.StallNanos(); got != 2000 {
		t.Errorf("StallNanos() = %d, want 2000", got)
	}
}

func TestNoteOccupancyIsMonotonic(t *testing.T) {
	var st FilterStats
	for _, n := range []int64{3, 7, 5, 7, 2} {
		st.NoteOccupancy(n)
	}
	if got := st.tapeHWM.Load(); got != 7 {
		t.Errorf("tape HWM = %d, want 7", got)
	}
}

func TestFilterStatsConcurrent(t *testing.T) {
	var st FilterStats
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				st.AddFiring()
				st.AddPush()
				st.NoteOccupancy(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got := st.firings.Load(); got != workers*per {
		t.Errorf("firings = %d, want %d", got, workers*per)
	}
	if got := st.tapeHWM.Load(); got != workers*per-1 {
		t.Errorf("tape HWM = %d, want %d", got, workers*per-1)
	}
}

func TestSnapshotSortedByName(t *testing.T) {
	p := NewProfiler([]string{"zeta", "alpha", "mid"})
	snap := p.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot length %d, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name > snap[i].Name {
			t.Errorf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
}

func TestWorkNSPerFiring(t *testing.T) {
	p := NewProfiler([]string{"idle", "busy"})
	busy := p.At(1)
	busy.AddFiring()
	busy.AddFiring()
	busy.AddWork(100 * time.Nanosecond)
	m := p.WorkNSPerFiring()
	if len(m) != 1 || m["busy"] != 50 {
		t.Errorf("WorkNSPerFiring() = %v, want map[busy:50]", m)
	}
}

func TestTableOmitsIdleNodes(t *testing.T) {
	p := NewProfiler([]string{"idle", "busy"})
	st := p.At(1)
	st.AddFiring()
	st.AddPush()
	st.AddWork(time.Millisecond)
	tab := p.Table()
	if !strings.Contains(tab, "busy") {
		t.Errorf("table missing fired node:\n%s", tab)
	}
	if strings.Contains(tab, "idle") {
		t.Errorf("table contains never-fired node:\n%s", tab)
	}
	if !strings.Contains(tab, "firings") {
		t.Errorf("table missing header:\n%s", tab)
	}
}

// TestWorkWindow: windows sample per-node deltas, not lifetime totals —
// the opening baseline excludes everything before NewWorkWindow, and each
// Advance resets the baseline for the next window.
func TestWorkWindow(t *testing.T) {
	p := NewProfiler([]string{"a", "b", "c"})
	p.At(0).AddFiring()
	p.At(0).AddWork(100 * time.Microsecond)

	w := NewWorkWindow(p) // baseline swallows the pre-window activity

	p.At(0).AddFiring()
	p.At(0).AddWork(10 * time.Microsecond)
	p.At(1).AddFiring()
	p.At(1).AddFiring()
	p.At(1).AddWork(30 * time.Microsecond)

	s1 := w.Advance()
	if got := s1.WorkNS[0]; got != int64(10*time.Microsecond) {
		t.Errorf("window 1 node a work = %d, want %d (lifetime total leaked in)", got, int64(10*time.Microsecond))
	}
	if s1.Firings[1] != 2 || s1.WorkNS[1] != int64(30*time.Microsecond) {
		t.Errorf("window 1 node b = %d firings / %d ns", s1.Firings[1], s1.WorkNS[1])
	}
	if s1.Firings[2] != 0 || s1.WorkNS[2] != 0 {
		t.Errorf("idle node c sampled %d firings / %d ns", s1.Firings[2], s1.WorkNS[2])
	}

	// Second window sees only what happened after the first Advance.
	p.At(2).AddFiring()
	p.At(2).AddWork(5 * time.Microsecond)
	s2 := w.Advance()
	if s2.Firings[0] != 0 || s2.WorkNS[0] != 0 {
		t.Errorf("node a leaked into window 2: %d firings / %d ns", s2.Firings[0], s2.WorkNS[0])
	}
	if s2.Firings[2] != 1 || s2.WorkNS[2] != int64(5*time.Microsecond) {
		t.Errorf("window 2 node c = %d firings / %d ns", s2.Firings[2], s2.WorkNS[2])
	}
}

// TestWindowSamplePerFiring: the per-firing view averages within the
// window and omits nodes that recorded no firings or no work.
func TestWindowSamplePerFiring(t *testing.T) {
	names := []string{"a", "b", "c"}
	p := NewProfiler(names)
	w := NewWorkWindow(p)
	p.At(0).AddFiring()
	p.At(0).AddFiring()
	p.At(0).AddWork(time.Microsecond)
	p.At(1).AddFiring() // fired but zero recorded work

	per := w.Advance().PerFiring(names)
	if got := per["a"]; got != 500 {
		t.Errorf("a = %d ns/firing, want 500", got)
	}
	if _, ok := per["b"]; ok {
		t.Error("zero-work node b present in per-firing map")
	}
	if _, ok := per["c"]; ok {
		t.Error("idle node c present in per-firing map")
	}
}
