package obs

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleBench() *BenchSnapshot {
	b := NewBench("FMRadio")
	b.Set("interp_items_per_sec", 1.25e6, "items/s")
	b.Set("vm_items_per_sec", 4.5e6, "items/s")
	b.Set("vm_speedup_x", 3.6, "x")
	return b
}

func TestBenchGolden(t *testing.T) {
	data, err := sampleBench().Encode()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "bench_golden.json", data)
	if err := ValidateBench(data); err != nil {
		t.Errorf("golden snapshot does not validate: %v", err)
	}
}

func TestBenchSetReplaces(t *testing.T) {
	b := sampleBench()
	b.Set("vm_speedup_x", 4.0, "x")
	if len(b.Metrics) != 3 {
		t.Fatalf("Set appended instead of replacing: %d metrics", len(b.Metrics))
	}
	if b.Metrics[2].Value != 4.0 {
		t.Errorf("metric not replaced: %+v", b.Metrics[2])
	}
}

func TestBenchEncodeRejections(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*BenchSnapshot)
		want string
	}{
		{"wrong schema", func(b *BenchSnapshot) { b.Schema = "streamit-bench/v0" }, "schema"},
		{"bad app name", func(b *BenchSnapshot) { b.App = "FM Radio" }, "app name"},
		{"empty app name", func(b *BenchSnapshot) { b.App = "" }, "app name"},
		{"no metrics", func(b *BenchSnapshot) { b.Metrics = nil }, "no metrics"},
		{"empty metric name", func(b *BenchSnapshot) { b.Metrics[0].Name = "" }, "empty name"},
		{"duplicate metric", func(b *BenchSnapshot) { b.Metrics[1].Name = b.Metrics[0].Name }, "duplicate"},
		{"nan metric", func(b *BenchSnapshot) { b.Metrics[0].Value = math.NaN() }, "not finite"},
		{"inf metric", func(b *BenchSnapshot) { b.Metrics[0].Value = math.Inf(1) }, "not finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := sampleBench()
			tc.mod(b)
			_, err := b.Encode()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Encode() error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestValidateBenchRejectsUnknownFields(t *testing.T) {
	data := []byte(`{"schema":"streamit-bench/v1","app":"X","metrics":[{"name":"m","value":1,"unit":"x"}],"extra":true}`)
	if err := ValidateBench(data); err == nil {
		t.Error("unknown top-level field accepted")
	}
	data = []byte(`{"schema":"streamit-bench/v1","app":"X","metrics":[{"name":"m","value":1,"unit":"x","nested":{}}]}`)
	if err := ValidateBench(data); err == nil {
		t.Error("unknown metric field accepted")
	}
	if err := ValidateBench([]byte(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestBenchWriteFile(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out")
	path, err := sampleBench().WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_FMRadio.json"); path != want {
		t.Errorf("path = %q, want %q", path, want)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBench(data); err != nil {
		t.Errorf("written file does not validate: %v", err)
	}
}

func TestBenchPath(t *testing.T) {
	if got := BenchPath("out", "DCT"); got != filepath.Join("out", "BENCH_DCT.json") {
		t.Errorf("BenchPath = %q", got)
	}
}
