package obs

import (
	"bufio"
	"io"
	"math"
	"os"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// Trace event phases (the subset of the Chrome trace_event format the
// recorder emits).
const (
	PhaseSlice   byte = 'X' // complete duration slice (TS + Dur)
	PhaseInstant byte = 'i' // instantaneous marker
	PhaseMeta    byte = 'M' // metadata (lane naming)
)

// Event is one trace record. Timestamps are microseconds since the
// recorder's epoch (Chrome's native unit); Tid selects the lane (one lane
// per filter or tile). Detail is an optional free-form annotation carried
// in args.
type Event struct {
	Name   string
	Cat    string
	Phase  byte
	TS     float64 // microseconds since epoch
	Dur    float64 // microseconds; PhaseSlice only
	Tid    int
	Detail string
}

// Recorder collects trace events from any number of goroutines. The zero
// cost path is a nil *Recorder held by the engines; with a recorder
// attached, each event is one short critical section. Synchronous OnEvent
// hooks let tests observe runtime events (fault injection, recovery,
// message delivery) deterministically instead of sleeping on timing.
type Recorder struct {
	mu     sync.Mutex
	clock  func() time.Duration // elapsed since epoch; swappable for tests
	events []Event
	hooks  []func(Event)
}

// NewRecorder starts a recorder whose epoch is now.
func NewRecorder() *Recorder {
	start := time.Now()
	return &Recorder{clock: func() time.Duration { return time.Since(start) }}
}

// SetClock replaces the elapsed-time source (deterministic tests).
func (r *Recorder) SetClock(clock func() time.Duration) {
	r.mu.Lock()
	r.clock = clock
	r.mu.Unlock()
}

// Stamp returns the elapsed time since the recorder's epoch.
func (r *Recorder) Stamp() time.Duration {
	r.mu.Lock()
	c := r.clock
	r.mu.Unlock()
	return c()
}

// OnEvent registers a hook invoked synchronously, in recording order, for
// every subsequent event. Hooks run on the recording goroutine (an engine
// worker): keep them short and do not call back into the recorder.
func (r *Recorder) OnEvent(h func(Event)) {
	r.mu.Lock()
	r.hooks = append(r.hooks, h)
	r.mu.Unlock()
}

// emit appends the event and fans it out to hooks.
func (r *Recorder) emit(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	hooks := r.hooks
	r.mu.Unlock()
	for _, h := range hooks {
		h(ev)
	}
}

// Lane names a lane (Chrome renders it as the thread name).
func (r *Recorder) Lane(tid int, name string) {
	r.emit(Event{Name: "thread_name", Phase: PhaseMeta, Tid: tid, Detail: name})
}

// Slice records a completed duration slice on a lane from two stamps
// (take them with Stamp before and after the work).
func (r *Recorder) Slice(tid int, name, cat string, start, end time.Duration) {
	r.emit(Event{
		Name: name, Cat: cat, Phase: PhaseSlice, Tid: tid,
		TS:  float64(start) / float64(time.Microsecond),
		Dur: float64(end-start) / float64(time.Microsecond),
	})
}

// Instant records an instantaneous marker on a lane at the current time.
func (r *Recorder) Instant(tid int, name, cat, detail string) {
	r.emit(Event{
		Name: name, Cat: cat, Phase: PhaseInstant, Tid: tid,
		TS: float64(r.Stamp()) / float64(time.Microsecond), Detail: detail,
	})
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len reports how many events have been recorded.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// WriteChromeTrace writes the recorded events as Chrome trace JSON.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, r.Events())
}

// WriteFile writes the Chrome trace to path (load via chrome://tracing or
// https://ui.perfetto.dev).
func (r *Recorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteChromeTrace encodes events in the Chrome trace_event JSON array
// format. The encoder is hand-rolled (no reflection, exact control over
// escaping and float formatting) so it is cheap, fuzzable, and always
// produces valid JSON: non-finite floats become 0, invalid UTF-8 becomes
// U+FFFD, and unknown phases are demoted to instants.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 256)
	bw.WriteString("[\n")
	for i, ev := range events {
		if i > 0 {
			bw.WriteString(",\n")
		}
		buf = appendChromeEvent(buf[:0], ev)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// appendChromeEvent serializes one event as a JSON object.
func appendChromeEvent(b []byte, ev Event) []byte {
	ph := ev.Phase
	if ph != PhaseSlice && ph != PhaseInstant && ph != PhaseMeta {
		ph = PhaseInstant
	}
	name := ev.Name
	if ph == PhaseMeta {
		name = "thread_name"
	}
	b = append(b, `{"name":`...)
	b = appendJSONString(b, name)
	if ev.Cat != "" && ph != PhaseMeta {
		b = append(b, `,"cat":`...)
		b = appendJSONString(b, ev.Cat)
	}
	b = append(b, `,"ph":"`...)
	b = append(b, ph, '"')
	if ph != PhaseMeta {
		b = append(b, `,"ts":`...)
		b = appendMicros(b, ev.TS)
		if ph == PhaseSlice {
			b = append(b, `,"dur":`...)
			b = appendMicros(b, ev.Dur)
		}
		if ph == PhaseInstant {
			b = append(b, `,"s":"t"`...) // thread-scoped instant
		}
	}
	b = append(b, `,"pid":0,"tid":`...)
	b = strconv.AppendInt(b, int64(ev.Tid), 10)
	switch {
	case ph == PhaseMeta:
		b = append(b, `,"args":{"name":`...)
		b = appendJSONString(b, ev.Detail)
		b = append(b, `}`...)
	case ev.Detail != "":
		b = append(b, `,"args":{"detail":`...)
		b = appendJSONString(b, ev.Detail)
		b = append(b, `}`...)
	}
	return append(b, '}')
}

// appendMicros formats a microsecond timestamp with nanosecond precision,
// mapping non-finite values to 0 so the output stays valid JSON.
func appendMicros(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	return strconv.AppendFloat(b, v, 'f', 3, 64)
}

const hexDigits = "0123456789abcdef"

// appendJSONString escapes s as a JSON string literal. Control characters
// are \u-escaped and invalid UTF-8 sequences become the replacement
// character, so arbitrary byte strings still encode to valid JSON.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
			i++
		case c < 0x20:
			switch c {
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			}
			i++
		case c < utf8.RuneSelf:
			b = append(b, c)
			i++
		default:
			r, size := utf8.DecodeRuneInString(s[i:])
			if r == utf8.RuneError && size == 1 {
				b = append(b, `�`...)
			} else {
				b = append(b, s[i:i+size]...)
			}
			i += size
		}
	}
	return append(b, '"')
}
