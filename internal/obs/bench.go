package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// BenchSchema identifies the benchmark snapshot format. Bump the suffix on
// incompatible changes; BENCH_*.json files carry it so downstream tooling
// (and the CI smoke job) can reject snapshots it does not understand.
const BenchSchema = "streamit-bench/v1"

// Metric is one named measurement inside a benchmark snapshot.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// BenchSnapshot is the stable on-disk form of one app's benchmark run,
// written as BENCH_<app>.json. It seeds the repo's perf trajectory: each
// CI run can emit snapshots and diff them against history.
type BenchSnapshot struct {
	Schema  string   `json:"schema"`
	App     string   `json:"app"`
	Metrics []Metric `json:"metrics"`
}

// NewBench starts a snapshot for one app.
func NewBench(app string) *BenchSnapshot {
	return &BenchSnapshot{Schema: BenchSchema, App: app}
}

// Set appends or replaces a metric by name.
func (b *BenchSnapshot) Set(name string, value float64, unit string) {
	for i := range b.Metrics {
		if b.Metrics[i].Name == name {
			b.Metrics[i] = Metric{Name: name, Value: value, Unit: unit}
			return
		}
	}
	b.Metrics = append(b.Metrics, Metric{Name: name, Value: value, Unit: unit})
}

// Encode renders the snapshot as indented JSON after validating it.
func (b *BenchSnapshot) Encode() ([]byte, error) {
	if err := b.check(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// check enforces the schema invariants shared by Encode and ValidateBench.
func (b *BenchSnapshot) check() error {
	if b.Schema != BenchSchema {
		return fmt.Errorf("bench snapshot: schema %q, want %q", b.Schema, BenchSchema)
	}
	if !validAppName(b.App) {
		return fmt.Errorf("bench snapshot: invalid app name %q", b.App)
	}
	if len(b.Metrics) == 0 {
		return fmt.Errorf("bench snapshot %s: no metrics", b.App)
	}
	seen := map[string]bool{}
	for _, m := range b.Metrics {
		if m.Name == "" {
			return fmt.Errorf("bench snapshot %s: metric with empty name", b.App)
		}
		if seen[m.Name] {
			return fmt.Errorf("bench snapshot %s: duplicate metric %q", b.App, m.Name)
		}
		seen[m.Name] = true
		if math.IsNaN(m.Value) || math.IsInf(m.Value, 0) {
			return fmt.Errorf("bench snapshot %s: metric %q is not finite", b.App, m.Name)
		}
	}
	return nil
}

// validAppName accepts names safe to embed in a BENCH_<app>.json filename.
func validAppName(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// ValidateBench checks that data is a well-formed benchmark snapshot:
// current schema, filename-safe app name, and a non-empty set of uniquely
// named finite metrics. Unknown fields are rejected so schema drift is
// caught rather than silently ignored.
func ValidateBench(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var b BenchSnapshot
	if err := dec.Decode(&b); err != nil {
		return fmt.Errorf("bench snapshot: %w", err)
	}
	return b.check()
}

// BenchPath returns the conventional file path for an app's snapshot.
func BenchPath(dir, app string) string {
	return filepath.Join(dir, "BENCH_"+app+".json")
}

// WriteFile validates and writes the snapshot to dir/BENCH_<app>.json,
// creating dir if needed, and returns the written path.
func (b *BenchSnapshot) WriteFile(dir string) (string, error) {
	data, err := b.Encode()
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := BenchPath(dir, b.App)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
