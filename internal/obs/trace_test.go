package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRecorder replays a fixed event sequence on a deterministic clock.
func goldenRecorder() *Recorder {
	r := NewRecorder()
	now := time.Duration(0)
	r.SetClock(func() time.Duration { return now })
	r.Lane(0, "source")
	r.Lane(1, "lowpass")
	r.Slice(0, "firing 0", "firing", 10*time.Microsecond, 35*time.Microsecond+500*time.Nanosecond)
	now = 40 * time.Microsecond
	r.Instant(1, "deliver setFreq", "teleport", "lowpass")
	r.Slice(1, "firing 0", "firing", 42*time.Microsecond, 61*time.Microsecond)
	now = 70 * time.Microsecond
	r.Instant(0, "fault: stall", "fault", "source")
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch (run with -update to regenerate)\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("trace is not valid JSON:\n%s", buf.String())
	}
	checkGolden(t, "trace_golden.json", buf.Bytes())
}

// TestChromeTraceStructure decodes the trace generically and checks the
// invariants Chrome's trace viewer relies on.
func TestChromeTraceStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6", len(events))
	}
	lanes := 0
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "M":
			lanes++
			if ev["name"] != "thread_name" {
				t.Errorf("metadata event named %v, want thread_name", ev["name"])
			}
			args, _ := ev["args"].(map[string]any)
			if args == nil || args["name"] == "" {
				t.Errorf("metadata event without args.name: %v", ev)
			}
		case "X":
			if _, ok := ev["dur"].(float64); !ok {
				t.Errorf("slice without dur: %v", ev)
			}
			fallthrough
		case "i":
			if _, ok := ev["ts"].(float64); !ok {
				t.Errorf("event without ts: %v", ev)
			}
			if ph == "i" && ev["s"] != "t" {
				t.Errorf("instant without thread scope: %v", ev)
			}
		default:
			t.Errorf("unexpected phase %q", ph)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Errorf("event without pid: %v", ev)
		}
		if _, ok := ev["tid"].(float64); !ok {
			t.Errorf("event without tid: %v", ev)
		}
	}
	if lanes != 2 {
		t.Errorf("got %d lane metadata events, want 2", lanes)
	}
}

func TestWriteChromeTraceHostileInput(t *testing.T) {
	events := []Event{
		{Name: "nan", Phase: PhaseSlice, TS: math.NaN(), Dur: math.Inf(1), Tid: -3},
		{Name: "bad\xffutf8\x00ctl\"quote\\slash", Cat: "c\nat", Phase: PhaseInstant, Detail: "d\tetail"},
		{Name: "unknown phase", Phase: 'q', TS: 1},
		{Name: "meta keeps detail", Phase: PhaseMeta, Detail: "lane \u2603"},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("hostile input produced invalid JSON:\n%s", buf.String())
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if ts := decoded[0]["ts"].(float64); ts != 0 {
		t.Errorf("NaN ts encoded as %v, want 0", ts)
	}
	if dur := decoded[0]["dur"].(float64); dur != 0 {
		t.Errorf("Inf dur encoded as %v, want 0", dur)
	}
	if ph := decoded[2]["ph"]; ph != "i" {
		t.Errorf("unknown phase encoded as %v, want demotion to i", ph)
	}
}

func TestRecorderOnEvent(t *testing.T) {
	r := NewRecorder()
	var got []Event
	r.OnEvent(func(ev Event) { got = append(got, ev) })
	r.Lane(0, "a")
	r.Instant(0, "fault: stall", "fault", "a")
	if len(got) != 2 {
		t.Fatalf("hook saw %d events, want 2", len(got))
	}
	if got[1].Cat != "fault" || got[1].Name != "fault: stall" {
		t.Errorf("hook saw %+v", got[1])
	}
	if r.Len() != 2 {
		t.Errorf("Len() = %d, want 2", r.Len())
	}
}

func TestRecorderWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := goldenRecorder().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Errorf("written trace is not valid JSON")
	}
}

// FuzzTraceEncoder feeds arbitrary event fields through the hand-rolled
// encoder and asserts the output is always valid JSON that decodes to the
// same number of records.
func FuzzTraceEncoder(f *testing.F) {
	f.Add("firing", "cat", "detail", byte('X'), 1.5, 2.5, 3)
	f.Add("bad\xffname", "", "d\x00", byte('M'), math.NaN(), math.Inf(-1), -1)
	f.Add("", "c", "", byte(0), 0.0, 0.0, 0)
	f.Fuzz(func(t *testing.T, name, cat, detail string, phase byte, ts, dur float64, tid int) {
		events := []Event{
			{Name: name, Cat: cat, Detail: detail, Phase: phase, TS: ts, Dur: dur, Tid: tid},
			{Name: name, Phase: PhaseMeta, Detail: detail, Tid: tid},
		}
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, events); err != nil {
			t.Fatalf("encode: %v", err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("invalid JSON for %+v:\n%s", events[0], buf.String())
		}
		var decoded []map[string]any
		if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(decoded) != len(events) {
			t.Fatalf("decoded %d events, want %d", len(decoded), len(events))
		}
	})
}
