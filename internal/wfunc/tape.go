package wfunc

import "fmt"

// SliceTape is a simple unbounded Tape backed by a slice. It is used by
// tests, by the linear-analysis verifier, and anywhere a filter must be run
// standalone outside the full execution engine.
type SliceTape struct {
	buf  []float64
	head int
}

// NewSliceTape returns a tape pre-loaded with items.
func NewSliceTape(items ...float64) *SliceTape {
	return &SliceTape{buf: append([]float64(nil), items...)}
}

// Peek implements Tape.
func (t *SliceTape) Peek(i int) float64 {
	ix := t.head + i
	if i < 0 || ix >= len(t.buf) {
		panic(fmt.Sprintf("tape peek(%d) beyond %d available items", i, t.Len()))
	}
	return t.buf[ix]
}

// Pop implements Tape.
func (t *SliceTape) Pop() float64 {
	if t.head >= len(t.buf) {
		panic("tape pop on empty tape")
	}
	v := t.buf[t.head]
	t.head++
	return v
}

// Push implements Tape.
func (t *SliceTape) Push(v float64) { t.buf = append(t.buf, v) }

// Len returns the number of unconsumed items.
func (t *SliceTape) Len() int { return len(t.buf) - t.head }

// Items returns the unconsumed items in order.
func (t *SliceTape) Items() []float64 {
	return append([]float64(nil), t.buf[t.head:]...)
}

// RunKernel executes a kernel standalone: it initializes fresh state, runs
// init, then fires work as many times as the input allows (leaving at least
// peek-pop items unconsumed), returning everything pushed. It is a
// convenience for testing filters in isolation.
func RunKernel(k *Kernel, input []float64) ([]float64, error) {
	in := NewSliceTape(input...)
	out := NewSliceTape()
	st := k.NewState()
	if k.Init != nil {
		env := NewEnv(k.Init)
		env.State = st
		if err := Exec(k.Init, env); err != nil {
			return nil, err
		}
	}
	env := NewEnv(k.Work)
	env.State = st
	env.In, env.Out = in, out
	for in.Len() >= k.Peek && (k.Pop > 0 || k.Peek > 0) {
		env.Reset()
		if err := Exec(k.Work, env); err != nil {
			return nil, err
		}
		if k.Pop == 0 {
			break // source-like kernel: one firing only
		}
	}
	return out.Items(), nil
}
