package wfunc

import "testing"

// BenchmarkInterpFIR measures the interpreter's cost per FIR output.
func BenchmarkInterpFIR(b *testing.B) {
	weights := make([]float64, 64)
	for i := range weights {
		weights[i] = float64(i)
	}
	n := len(weights)
	kb := NewKernel("FIR", n, 1, 1)
	w := kb.FieldArray("w", n, weights...)
	i := kb.Local("i")
	sum := kb.Local("sum")
	kb.WorkBody(
		Set(sum, C(0)),
		ForUp(i, Ci(0), Ci(n),
			Set(sum, AddX(sum, MulX(PeekX(i), FIdx(w, i))))),
		Pop1(),
		Push1(sum),
	)
	k := kb.Build()
	st := k.NewState()
	in := NewSliceTape()
	for j := 0; j < n+4; j++ {
		in.Push(float64(j))
	}
	out := NewSliceTape()
	env := NewEnv(k.Work)
	env.State = st
	env.In, env.Out = in, out
	b.ResetTimer()
	for j := 0; j < b.N; j++ {
		env.Reset()
		in.Push(float64(j)) // keep the window full
		if err := Exec(k.Work, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateKernel measures the static work estimator.
func BenchmarkEstimateKernel(b *testing.B) {
	kb := NewKernel("est", 32, 1, 1)
	w := kb.FieldArray("w", 32)
	i := kb.Local("i")
	sum := kb.Local("sum")
	kb.WorkBody(
		ForUp(i, Ci(0), Ci(32),
			Set(sum, AddX(sum, MulX(PeekX(i), FIdx(w, i))))),
		Pop1(), Push1(sum),
	)
	k := kb.Build()
	b.ResetTimer()
	for j := 0; j < b.N; j++ {
		EstimateKernel(k)
	}
}
