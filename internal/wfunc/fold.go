package wfunc

// FoldKernel applies constant folding and algebraic simplification to all
// of a kernel's functions, in place. The front end bakes stream parameters
// in as constants, so filter bodies are full of foldable subexpressions
// (e.g. weights[i * 2 + 0], gains of 1, branches on compile-time flags).
// Folding preserves semantics except that x*0 folds to 0 even when x could
// be Inf or NaN — the usual DSP-compiler liberty.
func FoldKernel(k *Kernel) {
	foldFunc(k.Init)
	foldFunc(k.Work)
	for _, h := range k.Handlers {
		foldFunc(h)
	}
}

func foldFunc(f *Func) {
	if f == nil {
		return
	}
	f.Body = foldBlock(f.Body)
}

func foldBlock(body []Stmt) []Stmt {
	var out []Stmt
	for _, s := range body {
		out = append(out, foldStmt(s)...)
	}
	return out
}

// foldStmt returns the simplified statement(s); a statement may disappear
// (dead branch) or be replaced by its simplified body.
func foldStmt(s Stmt) []Stmt {
	switch s := s.(type) {
	case *Assign:
		s.X = FoldExpr(s.X)
		if s.LHS.Index != nil {
			s.LHS.Index = FoldExpr(s.LHS.Index)
		}
		return []Stmt{s}
	case *PushStmt:
		s.X = FoldExpr(s.X)
		return []Stmt{s}
	case *If:
		s.C = FoldExpr(s.C)
		s.Then = foldBlock(s.Then)
		s.Else = foldBlock(s.Else)
		if c, ok := s.C.(*Const); ok && !hasIO(s.C) {
			if c.V != 0 {
				return s.Then
			}
			return s.Else
		}
		if len(s.Then) == 0 && len(s.Else) == 0 && !hasIO(s.C) {
			return nil
		}
		return []Stmt{s}
	case *For:
		s.From = FoldExpr(s.From)
		s.To = FoldExpr(s.To)
		if s.Step != nil {
			s.Step = FoldExpr(s.Step)
		}
		s.Body = foldBlock(s.Body)
		if trip, ok := ConstTrip(s); ok && trip == 0 {
			return nil
		}
		return []Stmt{s}
	case *While:
		s.C = FoldExpr(s.C)
		s.Body = foldBlock(s.Body)
		if c, ok := s.C.(*Const); ok && c.V == 0 {
			return nil
		}
		return []Stmt{s}
	case *Print:
		s.X = FoldExpr(s.X)
		return []Stmt{s}
	case *Send:
		for i, a := range s.Args {
			s.Args[i] = FoldExpr(a)
		}
		return []Stmt{s}
	default:
		return []Stmt{s}
	}
}

// hasIO reports whether evaluating e touches the tapes (such expressions
// cannot be discarded even when their value is unused).
func hasIO(e Expr) bool {
	switch e := e.(type) {
	case *Peek:
		return true
	case *PopExpr:
		return true
	case *Unary:
		return hasIO(e.X)
	case *Binary:
		return hasIO(e.A) || hasIO(e.B)
	case *Cond:
		return hasIO(e.C) || hasIO(e.A) || hasIO(e.B)
	case *LocalIndex:
		return hasIO(e.Index)
	case *FieldIndex:
		return hasIO(e.Index)
	default:
		return false
	}
}

// FoldExpr simplifies an expression tree bottom-up.
func FoldExpr(e Expr) Expr {
	switch e := e.(type) {
	case *Unary:
		e.X = FoldExpr(e.X)
		if c, ok := e.X.(*Const); ok {
			return &Const{V: EvalUnary(e.Op, c.V)}
		}
		// --x == x
		if e.Op == Neg {
			if inner, ok := e.X.(*Unary); ok && inner.Op == Neg {
				return inner.X
			}
		}
		return e
	case *Binary:
		e.A = FoldExpr(e.A)
		e.B = FoldExpr(e.B)
		ca, aConst := e.A.(*Const)
		cb, bConst := e.B.(*Const)
		// Never fold across short-circuit when the discarded side does IO.
		if aConst && bConst {
			return &Const{V: EvalBinary(e.Op, ca.V, cb.V)}
		}
		switch e.Op {
		case Add:
			if aConst && ca.V == 0 {
				return e.B
			}
			if bConst && cb.V == 0 {
				return e.A
			}
		case Sub:
			if bConst && cb.V == 0 {
				return e.A
			}
		case Mul:
			if aConst {
				if ca.V == 1 {
					return e.B
				}
				if ca.V == 0 && !hasIO(e.B) {
					return &Const{V: 0}
				}
			}
			if bConst {
				if cb.V == 1 {
					return e.A
				}
				if cb.V == 0 && !hasIO(e.A) {
					return &Const{V: 0}
				}
			}
		case Div:
			if bConst && cb.V == 1 {
				return e.A
			}
		case And:
			if aConst && ca.V == 0 {
				return &Const{V: 0}
			}
			if aConst && ca.V != 0 && !hasIO(e.B) {
				// boolean value of B
				return FoldExpr(&Binary{Op: Ne, A: e.B, B: &Const{V: 0}})
			}
		case Or:
			if aConst && ca.V != 0 {
				return &Const{V: 1}
			}
			if aConst && ca.V == 0 && !hasIO(e.B) {
				return FoldExpr(&Binary{Op: Ne, A: e.B, B: &Const{V: 0}})
			}
		}
		return e
	case *Cond:
		e.C = FoldExpr(e.C)
		e.A = FoldExpr(e.A)
		e.B = FoldExpr(e.B)
		if c, ok := e.C.(*Const); ok {
			if c.V != 0 {
				return e.A
			}
			return e.B
		}
		return e
	case *Peek:
		e.Index = FoldExpr(e.Index)
		return e
	case *LocalIndex:
		e.Index = FoldExpr(e.Index)
		return e
	case *FieldIndex:
		e.Index = FoldExpr(e.Index)
		return e
	default:
		return e
	}
}
