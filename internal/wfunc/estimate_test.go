package wfunc

import "testing"

func TestEstimateBranchTakesMax(t *testing.T) {
	cheap := []Stmt{Set(&LocalRef{Idx: 0}, C(1))}
	costly := []Stmt{
		Set(&LocalRef{Idx: 0}, Un(Sin, C(1))),
		Set(&LocalRef{Idx: 0}, Un(Cos, C(1))),
	}
	a := estimateStmt(IfElse(C(1), cheap, costly))
	b := estimateStmt(IfElse(C(1), costly, cheap))
	if a.Cycles != b.Cycles {
		t.Errorf("branch estimate should take the max arm: %d vs %d", a.Cycles, b.Cycles)
	}
	if a.Cycles < costMath {
		t.Errorf("estimate %d should include the expensive arm", a.Cycles)
	}
}

func TestEstimateWhileUsesDefaultTrip(t *testing.T) {
	body := []Stmt{Set(&LocalRef{Idx: 0}, AddX(&LocalRef{Idx: 0}, C(1)))}
	w := estimateStmt(&While{C: C(1), Body: body})
	single := estimateBlock(body)
	if w.Cycles < single.Cycles*DefaultTrip {
		t.Errorf("while estimate %d should assume %d iterations (%d each)",
			w.Cycles, DefaultTrip, single.Cycles)
	}
}

func TestEstimateNonConstLoopUsesDefault(t *testing.T) {
	// Loop bound from a local: trip unknown.
	f := &For{Var: 0, From: C(0), To: &LocalRef{Idx: 1},
		Body: []Stmt{Set(&LocalRef{Idx: 0}, C(1))}}
	c := estimateStmt(f)
	if c.Cycles < DefaultTrip {
		t.Errorf("non-constant loop estimate too small: %d", c.Cycles)
	}
}

func TestEstimateCondAndSend(t *testing.T) {
	cond := estimateExpr(&Cond{C: C(1), A: Un(Sin, C(1)), B: C(0)})
	if cond.Cycles < costMath {
		t.Errorf("cond estimate should include the expensive arm: %d", cond.Cycles)
	}
	send := estimateStmt(&Send{Portal: 0, Handler: "h", Args: []Expr{AddX(C(1), C(2))}})
	if send.Cycles < costSend {
		t.Errorf("send estimate too small: %d", send.Cycles)
	}
}

func TestEstimateFlopsCounting(t *testing.T) {
	// 3 multiplies + 1 add = 4 flops.
	e := AddX(MulX(C(1), C(2)), MulX(C(3), MulX(C(4), C(5))))
	c := estimateExpr(e)
	if c.Flops != 4 {
		t.Errorf("flops = %d, want 4", c.Flops)
	}
}

func TestSendsMessagesDetection(t *testing.T) {
	f := &Func{Body: []Stmt{
		IfS(C(1), &For{Var: 0, From: C(0), To: C(2), Body: []Stmt{
			&Send{Portal: 0, Handler: "h"},
		}}),
	}, NumLocals: 1}
	if !SendsMessages(f) {
		t.Error("nested send not detected")
	}
	if SendsMessages(nil) {
		t.Error("nil func should not send")
	}
}

func TestValidateHandlerParamBounds(t *testing.T) {
	k := &Kernel{
		Name: "k", Peek: 1, Pop: 1, Push: 1,
		Work:     &Func{Name: "w", Body: []Stmt{Push1(PopE())}},
		Handlers: map[string]*Func{"h": {Name: "h", NumParams: 3, NumLocals: 1}},
	}
	if err := Validate(k); err == nil {
		t.Error("expected handler param/local mismatch error")
	}
}

func TestValidateNegativeRates(t *testing.T) {
	k := &Kernel{Name: "k", Peek: 0, Pop: -1, Push: 0,
		Work: &Func{Name: "w"}}
	if err := Validate(k); err == nil {
		t.Error("expected negative-rate error")
	}
}

func TestConstTripEdgeCases(t *testing.T) {
	if trip, ok := ConstTrip(&For{From: C(5), To: C(5)}); !ok || trip != 0 {
		t.Errorf("empty range trip = %d,%v", trip, ok)
	}
	if trip, ok := ConstTrip(&For{From: C(0), To: C(10), Step: C(3)}); !ok || trip != 4 {
		t.Errorf("step-3 trip = %d,%v, want 4", trip, ok)
	}
	if _, ok := ConstTrip(&For{From: C(0), To: C(10), Step: C(-1)}); ok {
		t.Error("negative step should be unknown")
	}
	if _, ok := ConstTrip(&For{From: C(0), To: &LocalRef{Idx: 0}}); ok {
		t.Error("variable bound should be unknown")
	}
}
