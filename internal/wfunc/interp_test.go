package wfunc

import (
	"math"
	"testing"
	"testing/quick"
)

// firKernel builds an N-tap FIR with the given weights, mirroring the
// paper's FIR example: peek N, pop 1, push 1.
func firKernel(t *testing.T, weights []float64) *Kernel {
	t.Helper()
	n := len(weights)
	b := NewKernel("FIR", n, 1, 1)
	w := b.FieldArray("w", n, weights...)
	i := b.Local("i")
	sum := b.Local("sum")
	b.WorkBody(
		Set(sum, C(0)),
		ForUp(i, Ci(0), Ci(n),
			Set(sum, AddX(sum, MulX(PeekX(i), FIdx(w, i)))),
		),
		Pop1(),
		Push1(sum),
	)
	return b.Build()
}

func TestFIRKernel(t *testing.T) {
	k := firKernel(t, []float64{1, 2, 3})
	out, err := RunKernel(k, []float64{1, 0, 0, 0, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1*1 + 0*2 + 0*3, 0 + 0 + 0, 0 + 0 + 5*3}
	if len(out) != len(want) {
		t.Fatalf("got %d outputs, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestInitFunctionComputesWeights(t *testing.T) {
	// RFtoIF-style kernel: init fills a weight table with sine values.
	n := 4
	b := NewKernel("RFtoIF", 1, 1, 1)
	w := b.FieldArray("w", n)
	count := b.Field("count", 0)
	i := b.Local("i")
	b.InitBody(
		ForUp(i, Ci(0), Ci(n),
			SetFIdx(w, i, Un(Sin, MulX(i, C(math.Pi/float64(n))))),
		),
	)
	b.WorkBody(
		Push1(MulX(PopE(), FIdx(w, count))),
		SetF(count, Bin(Mod, AddX(count, C(1)), Ci(n))),
	)
	k := b.Build()
	out, err := RunKernel(k, []float64{1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		want := math.Sin(float64(i%n) * math.Pi / float64(n))
		if math.Abs(out[i]-want) > 1e-12 {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want)
		}
	}
}

func TestStatePersistsAcrossFirings(t *testing.T) {
	// Accumulator: out[n] = sum of first n+1 inputs.
	b := NewKernel("Acc", 1, 1, 1)
	acc := b.Field("acc", 0)
	b.WorkBody(
		SetF(acc, AddX(acc, PopE())),
		Push1(acc),
	)
	k := b.Build()
	out, err := RunKernel(k, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 6, 10}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestControlFlow(t *testing.T) {
	// abs-difference filter with branch: push |a-b|.
	b := NewKernel("AbsDiff", 2, 2, 1)
	a := b.Local("a")
	c := b.Local("c")
	b.WorkBody(
		Set(a, PopE()),
		Set(c, PopE()),
		IfElse(Bin(Gt, a, c),
			[]Stmt{Push1(SubX(a, c))},
			[]Stmt{Push1(SubX(c, a))},
		),
	)
	k := b.Build()
	out, err := RunKernel(k, []float64{5, 3, 2, 9})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != 7 {
		t.Errorf("got %v, want [2 7]", out)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	// Compute number of halvings to reach <= 1 (integer log2) via while.
	b := NewKernel("Log2", 1, 1, 1)
	x := b.Local("x")
	n := b.Local("n")
	b.WorkBody(
		Set(x, PopE()),
		&While{C: C(1), Body: []Stmt{
			IfS(Bin(Le, x, C(1)), &Break{}),
			Set(x, DivX(x, C(2))),
			Set(n, AddX(n, C(1))),
		}},
		Push1(n),
	)
	k := b.Build()
	out, err := RunKernel(k, []float64{8, 1, 32})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 0, 5}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestIntegerOps(t *testing.T) {
	cases := []struct {
		op   BinOp
		a, b float64
		want float64
	}{
		{Mod, 7, 3, 1},
		{Mod, -7, 3, -1},
		{BitAnd, 12, 10, 8},
		{BitOr, 12, 10, 14},
		{BitXor, 12, 10, 6},
		{Shl, 3, 2, 12},
		{Shr, 12, 2, 3},
		{Min, 3, -1, -1},
		{Max, 3, -1, 3},
		{Atan2, 1, 1, math.Pi / 4},
	}
	for _, c := range cases {
		got := EvalBinary(c.op, c.a, c.b)
		if got != c.want {
			t.Errorf("%v(%v,%v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
	if EvalUnary(BitNot, 0) != -1 {
		t.Errorf("bitnot 0 = %v, want -1", EvalUnary(BitNot, 0))
	}
}

func TestShortCircuit(t *testing.T) {
	// (x != 0) && (1/x > 0) must not divide when x == 0. Division by zero
	// yields +Inf (not a crash) but the comparison result would differ.
	b := NewKernel("SC", 1, 1, 1)
	x := b.Local("x")
	b.WorkBody(
		Set(x, PopE()),
		Push1(Bin(And, Bin(Ne, x, C(0)), Bin(Gt, DivX(C(1), x), C(0)))),
	)
	k := b.Build()
	out, err := RunKernel(k, []float64{0, 2, -2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestHandlerSetsField(t *testing.T) {
	b := NewKernel("Gain", 1, 1, 1)
	g := b.Field("gain", 1)
	v := b.Local("newGain")
	b.WorkBody(Push1(MulX(PopE(), g)))
	b.Handler("setGain", 1, SetF(g, v))
	k := b.Build()

	st := k.NewState()
	h := k.Handlers["setGain"]
	env := NewEnv(h)
	env.State = st
	env.SetArgs([]float64{2.5})
	if err := Exec(h, env); err != nil {
		t.Fatal(err)
	}
	if st.Scalars[0] != 2.5 {
		t.Fatalf("gain = %v, want 2.5", st.Scalars[0])
	}
}

func TestValidateRejectsBadRates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for push-count mismatch")
		}
	}()
	b := NewKernel("Bad", 1, 1, 2) // declares push 2 but pushes 1
	b.WorkBody(Push1(PopE()))
	b.Build()
}

func TestValidateRejectsPeekBeyondWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-window peek")
		}
	}()
	b := NewKernel("BadPeek", 2, 1, 1)
	b.WorkBody(Push1(PeekE(5)), Pop1())
	b.Build()
}

func TestCountIOBranches(t *testing.T) {
	// Balanced branches are statically known.
	c := CountIO([]Stmt{
		IfElse(C(1), []Stmt{Push1(PopE())}, []Stmt{Push1(PopE())}),
	})
	if !c.Known || c.Pops != 1 || c.Pushes != 1 {
		t.Errorf("balanced if: got %+v", c)
	}
	// Unbalanced branches are unknown.
	c = CountIO([]Stmt{
		IfElse(C(1), []Stmt{Push1(C(0))}, []Stmt{Push1(C(0)), Push1(C(0))}),
	})
	if c.Known {
		t.Errorf("unbalanced if should be unknown, got %+v", c)
	}
}

func TestEstimateLoopScaling(t *testing.T) {
	small := firKernel(t, make([]float64, 4))
	big := firKernel(t, make([]float64, 64))
	cs, cb := EstimateKernel(small), EstimateKernel(big)
	if cb.Cycles <= cs.Cycles*8 {
		t.Errorf("64-tap FIR (%d cyc) should cost >8x a 4-tap FIR (%d cyc)", cb.Cycles, cs.Cycles)
	}
	if cb.Flops < 128 {
		t.Errorf("64-tap FIR flops = %d, want >= 128", cb.Flops)
	}
}

func TestWritesFieldsDetection(t *testing.T) {
	k := firKernel(t, []float64{1, 2})
	if WritesFields(k.Work) {
		t.Error("FIR work should not write fields")
	}
	b := NewKernel("Counter", 0, 0, 1)
	cnt := b.Field("cnt", 0)
	b.WorkBody(SetF(cnt, AddX(cnt, C(1))), Push1(cnt))
	k2 := b.Build()
	if !WritesFields(k2.Work) {
		t.Error("Counter work should write fields")
	}
}

// Property: the interpreter's FIR matches a direct Go convolution for
// arbitrary weights and inputs.
func TestQuickFIRMatchesConvolution(t *testing.T) {
	f := func(wRaw []int8, inRaw []int8) bool {
		if len(wRaw) == 0 || len(wRaw) > 8 {
			return true
		}
		weights := make([]float64, len(wRaw))
		for i, v := range wRaw {
			weights[i] = float64(v)
		}
		input := make([]float64, len(inRaw))
		for i, v := range inRaw {
			input[i] = float64(v)
		}
		k := firKernel(t, weights)
		out, err := RunKernel(k, input)
		if err != nil {
			t.Log(err)
			return false
		}
		n := len(weights)
		wantLen := len(input) - n + 1
		if wantLen < 0 {
			wantLen = 0
		}
		if len(out) != wantLen {
			return false
		}
		for i := 0; i < wantLen; i++ {
			var sum float64
			for j := 0; j < n; j++ {
				sum += input[i+j] * weights[j]
			}
			if out[i] != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: state cloning is deep — mutating a clone never affects the
// original.
func TestQuickStateCloneIsDeep(t *testing.T) {
	f := func(scalars []float64, arr []float64) bool {
		if len(arr) == 0 {
			arr = []float64{1}
		}
		s := &State{Scalars: append([]float64(nil), scalars...), Arrays: [][]float64{append([]float64(nil), arr...)}}
		c := s.Clone()
		for i := range c.Scalars {
			c.Scalars[i] += 1
		}
		c.Arrays[0][0] += 1
		for i := range s.Scalars {
			if s.Scalars[i] != scalars[i] {
				return false
			}
		}
		return s.Arrays[0][0] == arr[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnvResetZeroesFrame(t *testing.T) {
	f := &Func{Name: "f", NumLocals: 2, ArraySizes: []int{3}}
	env := NewEnv(f)
	env.locals[1] = 7
	env.arrays[0][2] = 9
	env.Reset()
	if env.locals[1] != 0 || env.arrays[0][2] != 0 {
		t.Error("Reset did not zero the frame")
	}
}
