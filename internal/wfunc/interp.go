package wfunc

import (
	"fmt"
	"math"
)

// Tape is the runtime view of a filter's input and output channels. The
// interpreter reads via Peek/Pop and writes via Push; implementations are
// provided by the execution engine.
type Tape interface {
	// Peek returns the item i slots from the read end without consuming
	// (Peek(0) is what Pop would return next).
	Peek(i int) float64
	// Pop consumes and returns the next item.
	Pop() float64
	// Push appends an item at the write end.
	Push(v float64)
}

// Messenger delivers teleport messages sent from a work function. The
// runtime implements it; a nil messenger makes Send statements errors.
type Messenger interface {
	// Send dispatches args to handler on all receivers of portal, with
	// information-wavefront latency in [minLat, maxLat] work executions of
	// the sender, or best-effort timing when bestEffort is set.
	Send(portal int, handler string, args []float64, minLat, maxLat int, bestEffort bool) error
}

// Env is the evaluation environment for one function invocation. Frames may
// be reused across invocations via Reset to avoid per-firing allocation.
type Env struct {
	In    Tape // nil for init and handlers
	Out   Tape // nil for init and handlers
	State *State
	Msg   Messenger
	// Print receives println values; nil discards them.
	Print func(float64)

	locals []float64
	arrays [][]float64
}

// NewEnv allocates a frame sized for f.
func NewEnv(f *Func) *Env {
	e := &Env{locals: make([]float64, f.NumLocals)}
	e.arrays = make([][]float64, len(f.ArraySizes))
	for i, n := range f.ArraySizes {
		e.arrays[i] = make([]float64, n)
	}
	return e
}

// Reset zeroes the frame for reuse; required between invocations because
// IL semantics give locals a zero initial value.
func (e *Env) Reset() {
	for i := range e.locals {
		e.locals[i] = 0
	}
	for _, a := range e.arrays {
		for i := range a {
			a[i] = 0
		}
	}
}

// SetArgs fills the leading parameter locals (for message handlers).
func (e *Env) SetArgs(args []float64) {
	copy(e.locals, args)
}

type ctl int

const (
	ctlNone ctl = iota
	ctlBreak
	ctlContinue
)

// Exec runs f's body in env. Errors indicate IL bugs (out-of-range array
// access, missing messenger) or arithmetic problems surfaced by the program.
func Exec(f *Func, env *Env) error {
	c, err := execBlock(f.Body, env)
	if err != nil {
		return fmt.Errorf("%s: %w", f.Name, err)
	}
	if c != ctlNone {
		return fmt.Errorf("%s: break/continue outside loop", f.Name)
	}
	return nil
}

func execBlock(body []Stmt, env *Env) (ctl, error) {
	for _, s := range body {
		c, err := execStmt(s, env)
		if err != nil || c != ctlNone {
			return c, err
		}
	}
	return ctlNone, nil
}

func execStmt(s Stmt, env *Env) (ctl, error) {
	switch s := s.(type) {
	case *Assign:
		v, err := eval(s.X, env)
		if err != nil {
			return ctlNone, err
		}
		return ctlNone, store(&s.LHS, v, env)
	case *PushStmt:
		v, err := eval(s.X, env)
		if err != nil {
			return ctlNone, err
		}
		if env.Out == nil {
			return ctlNone, fmt.Errorf("push outside work function")
		}
		env.Out.Push(v)
		return ctlNone, nil
	case *PopStmt:
		if env.In == nil {
			return ctlNone, fmt.Errorf("pop outside work function")
		}
		env.In.Pop()
		return ctlNone, nil
	case *If:
		c, err := eval(s.C, env)
		if err != nil {
			return ctlNone, err
		}
		if c != 0 {
			return execBlock(s.Then, env)
		}
		return execBlock(s.Else, env)
	case *For:
		from, err := eval(s.From, env)
		if err != nil {
			return ctlNone, err
		}
		env.locals[s.Var] = from
		for {
			to, err := eval(s.To, env)
			if err != nil {
				return ctlNone, err
			}
			if !(env.locals[s.Var] < to) {
				return ctlNone, nil
			}
			c, err := execBlock(s.Body, env)
			if err != nil {
				return ctlNone, err
			}
			if c == ctlBreak {
				return ctlNone, nil
			}
			step := 1.0
			if s.Step != nil {
				if step, err = eval(s.Step, env); err != nil {
					return ctlNone, err
				}
			}
			env.locals[s.Var] += step
		}
	case *While:
		for {
			c, err := eval(s.C, env)
			if err != nil {
				return ctlNone, err
			}
			if c == 0 {
				return ctlNone, nil
			}
			cc, err := execBlock(s.Body, env)
			if err != nil {
				return ctlNone, err
			}
			if cc == ctlBreak {
				return ctlNone, nil
			}
		}
	case *Break:
		return ctlBreak, nil
	case *Continue:
		return ctlContinue, nil
	case *Print:
		v, err := eval(s.X, env)
		if err != nil {
			return ctlNone, err
		}
		if env.Print != nil {
			env.Print(v)
		}
		return ctlNone, nil
	case *Send:
		if env.Msg == nil {
			return ctlNone, fmt.Errorf("message send with no messenger attached")
		}
		args := make([]float64, len(s.Args))
		for i, a := range s.Args {
			v, err := eval(a, env)
			if err != nil {
				return ctlNone, err
			}
			args[i] = v
		}
		return ctlNone, env.Msg.Send(s.Portal, s.Handler, args, s.MinLatency, s.MaxLatency, s.BestEffort)
	default:
		return ctlNone, fmt.Errorf("unknown statement %T", s)
	}
}

func store(lv *LValue, v float64, env *Env) error {
	switch lv.Kind {
	case LVLocal:
		env.locals[lv.Idx] = v
	case LVField:
		env.State.Scalars[lv.Idx] = v
	case LVLocalArr:
		ix, err := evalIndex(lv.Index, env, len(env.arrays[lv.Idx]))
		if err != nil {
			return err
		}
		env.arrays[lv.Idx][ix] = v
	case LVFieldArr:
		ix, err := evalIndex(lv.Index, env, len(env.State.Arrays[lv.Idx]))
		if err != nil {
			return err
		}
		env.State.Arrays[lv.Idx][ix] = v
	}
	return nil
}

func evalIndex(e Expr, env *Env, n int) (int, error) {
	v, err := eval(e, env)
	if err != nil {
		return 0, err
	}
	ix := int(v)
	if ix < 0 || ix >= n {
		return 0, fmt.Errorf("array index %d out of range [0,%d)", ix, n)
	}
	return ix, nil
}

func eval(e Expr, env *Env) (float64, error) {
	switch e := e.(type) {
	case *Const:
		return e.V, nil
	case *LocalRef:
		return env.locals[e.Idx], nil
	case *FieldRef:
		return env.State.Scalars[e.Idx], nil
	case *LocalIndex:
		ix, err := evalIndex(e.Index, env, len(env.arrays[e.Arr]))
		if err != nil {
			return 0, err
		}
		return env.arrays[e.Arr][ix], nil
	case *FieldIndex:
		ix, err := evalIndex(e.Index, env, len(env.State.Arrays[e.Arr]))
		if err != nil {
			return 0, err
		}
		return env.State.Arrays[e.Arr][ix], nil
	case *Peek:
		v, err := eval(e.Index, env)
		if err != nil {
			return 0, err
		}
		if env.In == nil {
			return 0, fmt.Errorf("peek outside work function")
		}
		return env.In.Peek(int(v)), nil
	case *PopExpr:
		if env.In == nil {
			return 0, fmt.Errorf("pop outside work function")
		}
		return env.In.Pop(), nil
	case *Unary:
		x, err := eval(e.X, env)
		if err != nil {
			return 0, err
		}
		return EvalUnary(e.Op, x), nil
	case *Binary:
		a, err := eval(e.A, env)
		if err != nil {
			return 0, err
		}
		// Short-circuit logical operators.
		switch e.Op {
		case And:
			if a == 0 {
				return 0, nil
			}
		case Or:
			if a != 0 {
				return 1, nil
			}
		}
		b, err := eval(e.B, env)
		if err != nil {
			return 0, err
		}
		return EvalBinary(e.Op, a, b), nil
	case *Cond:
		c, err := eval(e.C, env)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return eval(e.A, env)
		}
		return eval(e.B, env)
	default:
		return 0, fmt.Errorf("unknown expression %T", e)
	}
}

// EvalUnary applies a unary operator to a value. It is the single source
// of truth for IL unary-operator semantics, shared by the interpreter, the
// constant folder, and the bytecode VM (which must be bit-identical).
func EvalUnary(op UnOp, x float64) float64 {
	switch op {
	case Neg:
		return -x
	case Not:
		if x == 0 {
			return 1
		}
		return 0
	case BitNot:
		return float64(^int64(x))
	case Trunc:
		return math.Trunc(x)
	case Abs:
		return math.Abs(x)
	case Sin:
		return math.Sin(x)
	case Cos:
		return math.Cos(x)
	case Tan:
		return math.Tan(x)
	case Asin:
		return math.Asin(x)
	case Acos:
		return math.Acos(x)
	case Atan:
		return math.Atan(x)
	case Exp:
		return math.Exp(x)
	case Log:
		return math.Log(x)
	case Sqrt:
		return math.Sqrt(x)
	case Floor:
		return math.Floor(x)
	case Ceil:
		return math.Ceil(x)
	case Round:
		return math.Round(x)
	}
	return math.NaN()
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// EvalBinary applies a binary operator to two values with the IL's exact
// float64 semantics (integer truncation for %, shifts masked to 63 bits,
// NaN on modulo by zero). Like EvalUnary it is shared by every execution
// substrate so results are bit-identical across backends.
func EvalBinary(op BinOp, a, b float64) float64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case Div:
		return a / b
	case Mod:
		bi := int64(b)
		if bi == 0 {
			return math.NaN()
		}
		return float64(int64(a) % bi)
	case Pow:
		return math.Pow(a, b)
	case Atan2:
		return math.Atan2(a, b)
	case Min:
		return math.Min(a, b)
	case Max:
		return math.Max(a, b)
	case And:
		return boolVal(a != 0 && b != 0)
	case Or:
		return boolVal(a != 0 || b != 0)
	case BitAnd:
		return float64(int64(a) & int64(b))
	case BitOr:
		return float64(int64(a) | int64(b))
	case BitXor:
		return float64(int64(a) ^ int64(b))
	case Shl:
		return float64(int64(a) << (uint64(b) & 63))
	case Shr:
		return float64(int64(a) >> (uint64(b) & 63))
	case Eq:
		return boolVal(a == b)
	case Ne:
		return boolVal(a != b)
	case Lt:
		return boolVal(a < b)
	case Le:
		return boolVal(a <= b)
	case Gt:
		return boolVal(a > b)
	case Ge:
		return boolVal(a >= b)
	}
	return math.NaN()
}
