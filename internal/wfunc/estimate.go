package wfunc

// Cost is a static execution-cost estimate for one invocation of a
// function, in the style of the StreamIt work estimator: abstract cycles on
// a single-issue in-order core, plus the number of floating-point
// operations (for MFLOPS accounting).
type Cost struct {
	Cycles int64
	Flops  int64
}

// Add accumulates other into c.
func (c *Cost) Add(other Cost) {
	c.Cycles += other.Cycles
	c.Flops += other.Flops
}

func (c Cost) scale(n int64) Cost {
	return Cost{Cycles: c.Cycles * n, Flops: c.Flops * n}
}

// Per-operation cycle costs. These follow the spirit of the StreamIt work
// estimator for the Raw tile processor: single-cycle ALU ops, pipelined
// FPU multiplies, slow divides, and library-call costs for transcendental
// functions. Absolute values only matter relative to each other.
const (
	costALU      = 1  // add/sub/compare/logic/bit
	costMul      = 2  //
	costDiv      = 12 //
	costMath     = 30 // trig/exp/log/sqrt via software libm
	costPow      = 45
	costTapeOp   = 3 // push/pop/peek touch the channel buffer
	costArrayRef = 2 // address arithmetic + load/store
	costVarRef   = 1
	costAssign   = 1
	costBranch   = 2
	costLoopIter = 2 // induction update + backwards branch
	costSend     = 20
	// DefaultTrip is assumed for loops whose bounds are not statically
	// constant.
	DefaultTrip = 8
	// flopsMath approximates the FP work inside a software libm call.
	flopsMath = 20
)

// EstimateKernel returns the cost of one work-function execution of k.
func EstimateKernel(k *Kernel) Cost {
	return EstimateFunc(k.Work)
}

// EstimateFunc returns the static cost estimate for one invocation of f.
func EstimateFunc(f *Func) Cost {
	if f == nil {
		return Cost{}
	}
	return estimateBlock(f.Body)
}

func estimateBlock(body []Stmt) Cost {
	var c Cost
	for _, s := range body {
		c.Add(estimateStmt(s))
	}
	return c
}

func estimateStmt(s Stmt) Cost {
	switch s := s.(type) {
	case *Assign:
		c := estimateExpr(s.X)
		c.Cycles += costAssign
		if s.LHS.Kind == LVLocalArr || s.LHS.Kind == LVFieldArr {
			c.Cycles += costArrayRef
			c.Add(estimateExpr(s.LHS.Index))
		}
		return c
	case *PushStmt:
		c := estimateExpr(s.X)
		c.Cycles += costTapeOp
		return c
	case *PopStmt:
		return Cost{Cycles: costTapeOp}
	case *If:
		c := estimateExpr(s.C)
		c.Cycles += costBranch
		t := estimateBlock(s.Then)
		e := estimateBlock(s.Else)
		// Take the more expensive arm: utilization estimates are meant to
		// bound the steady-state critical path.
		if e.Cycles > t.Cycles {
			t = e
		}
		c.Add(t)
		return c
	case *For:
		trip, ok := ConstTrip(s)
		if !ok {
			trip = DefaultTrip
		}
		body := estimateBlock(s.Body)
		body.Cycles += costLoopIter
		c := estimateExpr(s.From)
		c.Add(estimateExpr(s.To))
		c.Add(body.scale(int64(trip)))
		return c
	case *While:
		body := estimateBlock(s.Body)
		body.Cycles += costLoopIter
		c := estimateExpr(s.C)
		c.Add(body.scale(DefaultTrip))
		return c
	case *Print:
		c := estimateExpr(s.X)
		c.Cycles += costSend // I/O call
		return c
	case *Send:
		c := Cost{Cycles: costSend}
		for _, a := range s.Args {
			c.Add(estimateExpr(a))
		}
		return c
	default:
		return Cost{}
	}
}

func estimateExpr(e Expr) Cost {
	switch e := e.(type) {
	case *Const:
		return Cost{}
	case *LocalRef, *FieldRef:
		return Cost{Cycles: costVarRef}
	case *LocalIndex:
		c := estimateExpr(e.Index)
		c.Cycles += costArrayRef
		return c
	case *FieldIndex:
		c := estimateExpr(e.Index)
		c.Cycles += costArrayRef
		return c
	case *Peek:
		c := estimateExpr(e.Index)
		c.Cycles += costTapeOp
		return c
	case *PopExpr:
		return Cost{Cycles: costTapeOp}
	case *Unary:
		c := estimateExpr(e.X)
		switch e.Op {
		case Neg, Not, BitNot, Trunc, Floor, Ceil, Round:
			c.Cycles += costALU
			if e.Op == Neg {
				c.Flops++
			}
		case Abs:
			c.Cycles += costALU
			c.Flops++
		default: // transcendentals
			c.Cycles += costMath
			c.Flops += flopsMath
		}
		return c
	case *Binary:
		c := estimateExpr(e.A)
		c.Add(estimateExpr(e.B))
		switch e.Op {
		case Mul:
			c.Cycles += costMul
			c.Flops++
		case Div, Mod:
			c.Cycles += costDiv
			c.Flops++
		case Pow, Atan2:
			c.Cycles += costPow
			c.Flops += flopsMath
		case Add, Sub, Min, Max:
			c.Cycles += costALU
			c.Flops++
		default:
			c.Cycles += costALU
		}
		return c
	case *Cond:
		c := estimateExpr(e.C)
		c.Cycles += costBranch
		a := estimateExpr(e.A)
		b := estimateExpr(e.B)
		if b.Cycles > a.Cycles {
			a = b
		}
		c.Add(a)
		return c
	default:
		return Cost{}
	}
}

// WritesFields reports whether any statement in f assigns to a field
// (scalar or array). A filter whose work function writes fields carries
// mutable state across firings: it cannot be data-parallelized (fissed)
// and is not a candidate for linear extraction.
func WritesFields(f *Func) bool {
	if f == nil {
		return false
	}
	return blockWritesFields(f.Body)
}

func blockWritesFields(body []Stmt) bool {
	for _, s := range body {
		switch s := s.(type) {
		case *Assign:
			if s.LHS.Kind == LVField || s.LHS.Kind == LVFieldArr {
				return true
			}
		case *If:
			if blockWritesFields(s.Then) || blockWritesFields(s.Else) {
				return true
			}
		case *For:
			if blockWritesFields(s.Body) {
				return true
			}
		case *While:
			if blockWritesFields(s.Body) {
				return true
			}
		}
	}
	return false
}

// SendsMessages reports whether f contains any teleport Send statement.
func SendsMessages(f *Func) bool {
	if f == nil {
		return false
	}
	return blockSends(f.Body)
}

func blockSends(body []Stmt) bool {
	for _, s := range body {
		switch s := s.(type) {
		case *Send:
			return true
		case *If:
			if blockSends(s.Then) || blockSends(s.Else) {
				return true
			}
		case *For:
			if blockSends(s.Body) {
				return true
			}
		case *While:
			if blockSends(s.Body) {
				return true
			}
		}
	}
	return false
}
