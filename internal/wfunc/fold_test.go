package wfunc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFoldConstants(t *testing.T) {
	e := FoldExpr(AddX(MulX(C(3), C(4)), C(5)))
	c, ok := e.(*Const)
	if !ok || c.V != 17 {
		t.Fatalf("3*4+5 folded to %#v", e)
	}
}

func TestFoldIdentities(t *testing.T) {
	x := &LocalRef{Idx: 0}
	cases := []struct {
		in   Expr
		want Expr
	}{
		{MulX(x, C(1)), x},
		{MulX(C(1), x), x},
		{AddX(x, C(0)), x},
		{AddX(C(0), x), x},
		{SubX(x, C(0)), x},
		{DivX(x, C(1)), x},
		{Un(Neg, Un(Neg, x)), x},
	}
	for i, c := range cases {
		if got := FoldExpr(c.in); got != c.want {
			t.Errorf("case %d: folded to %#v, want the bare local", i, got)
		}
	}
	// x*0 folds to 0 for pure x...
	if got, ok := FoldExpr(MulX(x, C(0))).(*Const); !ok || got.V != 0 {
		t.Error("x*0 should fold to 0")
	}
	// ...but never when the operand pops (IO must be preserved).
	if _, ok := FoldExpr(MulX(PopE(), C(0))).(*Const); ok {
		t.Error("pop()*0 must not be folded away")
	}
}

func TestFoldPrunesBranches(t *testing.T) {
	k := func(cond float64) *Kernel {
		b := NewKernel("k", 1, 1, 1)
		b.WorkBody(
			IfElse(C(cond),
				[]Stmt{Push1(MulX(PopE(), C(2)))},
				[]Stmt{Push1(MulX(PopE(), C(3)))}),
		)
		return b.Build()
	}
	k1 := k(1)
	FoldKernel(k1)
	if len(k1.Work.Body) != 1 {
		t.Fatalf("then-branch should replace the if: %#v", k1.Work.Body)
	}
	if _, ok := k1.Work.Body[0].(*PushStmt); !ok {
		t.Fatalf("expected the push, got %T", k1.Work.Body[0])
	}
	// The folded kernel computes the same outputs.
	out, err := RunKernel(k1, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 10 {
		t.Errorf("folded kernel output %v, want 10", out[0])
	}
}

func TestFoldDropsEmptyLoops(t *testing.T) {
	b := NewKernel("k", 1, 1, 1)
	i := b.Local("i")
	b.WorkBody(
		ForUp(i, Ci(0), Ci(0), Set(i, C(9))), // zero-trip
		Push1(PopE()),
	)
	kk := b.Build()
	FoldKernel(kk)
	if len(kk.Work.Body) != 1 {
		t.Fatalf("zero-trip loop should be removed: %#v", kk.Work.Body)
	}
}

// Property: folding preserves evaluation for randomly generated pure
// expression trees over locals.
func TestQuickFoldPreservesEval(t *testing.T) {
	var gen func(rng *rand.Rand, depth int) Expr
	ops := []BinOp{Add, Sub, Mul, Div, Min, Max, Lt, Le, Eq, And, Or}
	uops := []UnOp{Neg, Abs, Floor, Trunc, Not}
	gen = func(rng *rand.Rand, depth int) Expr {
		if depth <= 0 || rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				return &Const{V: float64(rng.Intn(9) - 4)}
			}
			return &LocalRef{Idx: rng.Intn(3)}
		}
		if rng.Intn(4) == 0 {
			return &Unary{Op: uops[rng.Intn(len(uops))], X: gen(rng, depth-1)}
		}
		return &Binary{Op: ops[rng.Intn(len(ops))], A: gen(rng, depth-1), B: gen(rng, depth-1)}
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := gen(rng, 5)
		locals := []float64{float64(rng.Intn(7) - 3), float64(rng.Intn(7) - 3), float64(rng.Intn(7) - 3)}
		env := &Env{locals: append([]float64(nil), locals...)}
		before, err1 := eval(e, env)
		folded := FoldExpr(e)
		after, err2 := eval(folded, env)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		// Division by zero yields NaN/Inf; the documented x*0 -> 0 liberty
		// means folding may turn such values finite. Accept any folded
		// result when the original is not finite; otherwise require exact
		// agreement (NaN is impossible here by construction).
		if before != before || before > 1e308 || before < -1e308 {
			return true
		}
		if before != after {
			t.Logf("seed %d: %v vs %v", seed, before, after)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestFoldReducesEstimate(t *testing.T) {
	b := NewKernel("k", 1, 1, 1)
	b.WorkBody(Push1(MulX(PopE(), MulX(C(2), C(3)))))
	k := b.Build()
	before := EstimateKernel(k)
	FoldKernel(k)
	after := EstimateKernel(k)
	if after.Cycles >= before.Cycles {
		t.Errorf("folding should reduce the estimate: %d -> %d", before.Cycles, after.Cycles)
	}
}
