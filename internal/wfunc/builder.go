package wfunc

import "fmt"

// KernelBuilder constructs Kernels with named fields and locals. It is the
// programmatic front end used by the builder API and by the language
// elaborator; names are resolved to slot indices at build time.
type KernelBuilder struct {
	k         *Kernel
	fieldIdx  map[string]int // scalar field name -> index
	fieldArr  map[string]int // array field name -> index
	localIdx  map[string]int // scalar local name -> index
	localArr  map[string]int
	arrSizes  []int
	numLocals int
	err       error
}

// NewKernel starts building a kernel with the given name and rates.
func NewKernel(name string, peek, pop, push int) *KernelBuilder {
	if peek < pop {
		peek = pop
	}
	return &KernelBuilder{
		k: &Kernel{
			Name: name, Peek: peek, Pop: pop, Push: push,
			Handlers: map[string]*Func{},
		},
		fieldIdx: map[string]int{},
		fieldArr: map[string]int{},
		localIdx: map[string]int{},
		localArr: map[string]int{},
	}
}

func (b *KernelBuilder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("kernel %s: %s", b.k.Name, fmt.Sprintf(format, args...))
	}
}

// Field declares a scalar field with an initial value and returns a
// reference expression for it.
func (b *KernelBuilder) Field(name string, init float64) *FieldRef {
	if _, dup := b.fieldIdx[name]; dup {
		b.fail("duplicate field %q", name)
	}
	idx := 0
	for _, f := range b.k.Fields {
		if f.Size == 0 {
			idx++
		}
	}
	b.fieldIdx[name] = idx
	b.k.Fields = append(b.k.Fields, FieldSpec{Name: name, Init: init})
	return &FieldRef{Idx: idx}
}

// FieldArray declares an array field of the given size, optionally with
// initial values, and returns its array slot index.
func (b *KernelBuilder) FieldArray(name string, size int, init ...float64) int {
	if _, dup := b.fieldArr[name]; dup {
		b.fail("duplicate array field %q", name)
	}
	if size <= 0 {
		b.fail("array field %q has non-positive size %d", name, size)
	}
	if len(init) > size {
		b.fail("array field %q: %d initial values for size %d", name, len(init), size)
	}
	idx := 0
	for _, f := range b.k.Fields {
		if f.Size > 0 {
			idx++
		}
	}
	b.fieldArr[name] = idx
	b.k.Fields = append(b.k.Fields, FieldSpec{Name: name, Size: size, InitA: init})
	return idx
}

// Local declares (or returns) a scalar local variable shared by all of the
// kernel's functions.
func (b *KernelBuilder) Local(name string) *LocalRef {
	if idx, ok := b.localIdx[name]; ok {
		return &LocalRef{Idx: idx}
	}
	idx := b.numLocals
	b.numLocals++
	b.localIdx[name] = idx
	return &LocalRef{Idx: idx}
}

// LocalArray declares a local array of the given size and returns its slot.
func (b *KernelBuilder) LocalArray(name string, size int) int {
	if idx, ok := b.localArr[name]; ok {
		return idx
	}
	if size <= 0 {
		b.fail("local array %q has non-positive size %d", name, size)
	}
	idx := len(b.arrSizes)
	b.arrSizes = append(b.arrSizes, size)
	b.localArr[name] = idx
	return idx
}

func (b *KernelBuilder) newFunc(name string, body []Stmt, numParams int) *Func {
	return &Func{
		Name:       name,
		Body:       body,
		NumLocals:  b.numLocals,
		ArraySizes: append([]int(nil), b.arrSizes...),
		NumParams:  numParams,
	}
}

// Dynamic marks the kernel as having data-dependent rates; the declared
// rates become minimum hints and the static pop/push count check is
// skipped.
func (b *KernelBuilder) Dynamic() *KernelBuilder {
	b.k.Dynamic = true
	return b
}

// InitBody sets the kernel's init function body. Declare all locals before
// calling Build; frames are sized at build time.
func (b *KernelBuilder) InitBody(body ...Stmt) *KernelBuilder {
	b.k.Init = &Func{Name: b.k.Name + ".init", Body: body}
	return b
}

// WorkBody sets the kernel's work function body.
func (b *KernelBuilder) WorkBody(body ...Stmt) *KernelBuilder {
	b.k.Work = &Func{Name: b.k.Name + ".work", Body: body}
	return b
}

// Handler registers a teleport message handler. The handler's first
// numParams scalar locals receive the message arguments. Parameter locals
// must be declared with Local before the handler body references them.
func (b *KernelBuilder) Handler(name string, numParams int, body ...Stmt) *KernelBuilder {
	if _, dup := b.k.Handlers[name]; dup {
		b.fail("duplicate handler %q", name)
	}
	b.k.Handlers[name] = &Func{Name: b.k.Name + "." + name, Body: body, NumParams: numParams}
	return b
}

// Build finalizes the kernel, sizing every function's frame and validating
// the IL. It panics on construction errors: kernels are built from program
// text or Go code, so errors are programming bugs, not runtime conditions.
func (b *KernelBuilder) Build() *Kernel {
	if b.err != nil {
		panic(b.err)
	}
	if b.k.Work == nil {
		panic(fmt.Errorf("kernel %s: missing work function", b.k.Name))
	}
	size := func(f *Func) {
		if f == nil {
			return
		}
		f.NumLocals = b.numLocals
		f.ArraySizes = append([]int(nil), b.arrSizes...)
	}
	size(b.k.Init)
	size(b.k.Work)
	for _, h := range b.k.Handlers {
		size(h)
	}
	if err := Validate(b.k); err != nil {
		panic(err)
	}
	return b.k
}

// Expression constructors. These keep application code terse; they are pure
// functions building AST nodes.

// C is a constant literal.
func C(v float64) *Const { return &Const{V: v} }

// Ci is an integer constant literal.
func Ci(v int) *Const { return &Const{V: float64(v)} }

// PeekE peeks at a constant offset.
func PeekE(i int) *Peek { return &Peek{Index: Ci(i)} }

// PeekX peeks at a computed offset.
func PeekX(ix Expr) *Peek { return &Peek{Index: ix} }

// PopE consumes one input item as an expression.
func PopE() *PopExpr { return &PopExpr{} }

// Un applies a unary operator.
func Un(op UnOp, x Expr) *Unary { return &Unary{Op: op, X: x} }

// Bin applies a binary operator.
func Bin(op BinOp, a, b Expr) *Binary { return &Binary{Op: op, A: a, B: b} }

// AddX returns a+b (+c...).
func AddX(a, b Expr, rest ...Expr) Expr {
	e := Expr(&Binary{Op: Add, A: a, B: b})
	for _, r := range rest {
		e = &Binary{Op: Add, A: e, B: r}
	}
	return e
}

// SubX returns a-b.
func SubX(a, b Expr) Expr { return &Binary{Op: Sub, A: a, B: b} }

// MulX returns a*b (*c...).
func MulX(a, b Expr, rest ...Expr) Expr {
	e := Expr(&Binary{Op: Mul, A: a, B: b})
	for _, r := range rest {
		e = &Binary{Op: Mul, A: e, B: r}
	}
	return e
}

// DivX returns a/b.
func DivX(a, b Expr) Expr { return &Binary{Op: Div, A: a, B: b} }

// LIdx reads local array arr at index ix.
func LIdx(arr int, ix Expr) *LocalIndex { return &LocalIndex{Arr: arr, Index: ix} }

// FIdx reads field array arr at index ix.
func FIdx(arr int, ix Expr) *FieldIndex { return &FieldIndex{Arr: arr, Index: ix} }

// Statement constructors.

// Set assigns to a scalar local.
func Set(l *LocalRef, x Expr) *Assign {
	return &Assign{LHS: LValue{Kind: LVLocal, Idx: l.Idx}, X: x}
}

// SetF assigns to a scalar field.
func SetF(f *FieldRef, x Expr) *Assign {
	return &Assign{LHS: LValue{Kind: LVField, Idx: f.Idx}, X: x}
}

// SetLIdx assigns to an element of a local array.
func SetLIdx(arr int, ix, x Expr) *Assign {
	return &Assign{LHS: LValue{Kind: LVLocalArr, Idx: arr, Index: ix}, X: x}
}

// SetFIdx assigns to an element of a field array.
func SetFIdx(arr int, ix, x Expr) *Assign {
	return &Assign{LHS: LValue{Kind: LVFieldArr, Idx: arr, Index: ix}, X: x}
}

// Push1 pushes x.
func Push1(x Expr) *PushStmt { return &PushStmt{X: x} }

// Pop1 pops and discards one item.
func Pop1() *PopStmt { return &PopStmt{} }

// IfS builds an if statement with no else branch.
func IfS(c Expr, then ...Stmt) *If { return &If{C: c, Then: then} }

// IfElse builds an if/else statement.
func IfElse(c Expr, then, els []Stmt) *If { return &If{C: c, Then: then, Else: els} }

// ForUp builds a counted loop over [from, to) with step 1 using local v.
func ForUp(v *LocalRef, from, to Expr, body ...Stmt) *For {
	return &For{Var: v.Idx, From: from, To: to, Body: body}
}
