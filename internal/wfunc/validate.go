package wfunc

import "fmt"

// Validate checks a kernel's IL for well-formedness: slot indices in range,
// declared rates consistent, and — where statically determinable — that the
// work function pops and pushes exactly the declared number of items on
// every path (the StreamIt 1.0 static-rate requirement).
func Validate(k *Kernel) error {
	if k.Pop < 0 || k.Push < 0 || k.Peek < k.Pop {
		return fmt.Errorf("kernel %s: bad rates peek=%d pop=%d push=%d", k.Name, k.Peek, k.Pop, k.Push)
	}
	nScalar, nArr := 0, 0
	for _, f := range k.Fields {
		if f.Size == 0 {
			nScalar++
		} else {
			nArr++
		}
	}
	v := &validator{k: k, nScalar: nScalar, nArr: nArr}
	if k.Init != nil {
		if err := v.checkFunc(k.Init, false); err != nil {
			return err
		}
	}
	if k.Work == nil {
		return fmt.Errorf("kernel %s: missing work function", k.Name)
	}
	if err := v.checkFunc(k.Work, true); err != nil {
		return err
	}
	for _, h := range k.Handlers {
		if h.NumParams > h.NumLocals {
			return fmt.Errorf("kernel %s: handler %s has %d params but %d locals", k.Name, h.Name, h.NumParams, h.NumLocals)
		}
		if err := v.checkFunc(h, false); err != nil {
			return err
		}
	}
	// Static rate check on the work function (dynamic kernels exempt).
	io := CountIO(k.Work.Body)
	if io.Known && !k.Dynamic {
		if io.Pops != k.Pop {
			return fmt.Errorf("kernel %s: work pops %d items but declares pop %d", k.Name, io.Pops, k.Pop)
		}
		if io.Pushes != k.Push {
			return fmt.Errorf("kernel %s: work pushes %d items but declares push %d", k.Name, io.Pushes, k.Push)
		}
	}
	return nil
}

type validator struct {
	k             *Kernel
	nScalar, nArr int
	fn            *Func
	allowTapes    bool
}

func (v *validator) checkFunc(f *Func, tapes bool) error {
	v.fn, v.allowTapes = f, tapes
	if err := v.block(f.Body); err != nil {
		return fmt.Errorf("kernel %s, %s: %w", v.k.Name, f.Name, err)
	}
	return nil
}

func (v *validator) block(body []Stmt) error {
	for _, s := range body {
		if err := v.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (v *validator) stmt(s Stmt) error {
	switch s := s.(type) {
	case *Assign:
		if err := v.lvalue(&s.LHS); err != nil {
			return err
		}
		return v.expr(s.X)
	case *PushStmt:
		if !v.allowTapes {
			return fmt.Errorf("push outside work function")
		}
		return v.expr(s.X)
	case *PopStmt:
		if !v.allowTapes {
			return fmt.Errorf("pop outside work function")
		}
		return nil
	case *If:
		if err := v.expr(s.C); err != nil {
			return err
		}
		if err := v.block(s.Then); err != nil {
			return err
		}
		return v.block(s.Else)
	case *For:
		if err := v.localOK(s.Var); err != nil {
			return err
		}
		for _, e := range []Expr{s.From, s.To, s.Step} {
			if e != nil {
				if err := v.expr(e); err != nil {
					return err
				}
			}
		}
		return v.block(s.Body)
	case *While:
		if err := v.expr(s.C); err != nil {
			return err
		}
		return v.block(s.Body)
	case *Break, *Continue:
		return nil
	case *Print:
		return v.expr(s.X)
	case *Send:
		for _, a := range s.Args {
			if err := v.expr(a); err != nil {
				return err
			}
		}
		if !s.BestEffort && s.MinLatency > s.MaxLatency {
			return fmt.Errorf("send %s: min latency %d > max latency %d", s.Handler, s.MinLatency, s.MaxLatency)
		}
		return nil
	default:
		return fmt.Errorf("unknown statement %T", s)
	}
}

func (v *validator) localOK(idx int) error {
	if idx < 0 || idx >= v.fn.NumLocals {
		return fmt.Errorf("local %d out of range [0,%d)", idx, v.fn.NumLocals)
	}
	return nil
}

func (v *validator) lvalue(lv *LValue) error {
	switch lv.Kind {
	case LVLocal:
		return v.localOK(lv.Idx)
	case LVField:
		if lv.Idx < 0 || lv.Idx >= v.nScalar {
			return fmt.Errorf("field %d out of range [0,%d)", lv.Idx, v.nScalar)
		}
		return nil
	case LVLocalArr:
		if lv.Idx < 0 || lv.Idx >= len(v.fn.ArraySizes) {
			return fmt.Errorf("local array %d out of range", lv.Idx)
		}
		return v.expr(lv.Index)
	case LVFieldArr:
		if lv.Idx < 0 || lv.Idx >= v.nArr {
			return fmt.Errorf("field array %d out of range", lv.Idx)
		}
		return v.expr(lv.Index)
	}
	return fmt.Errorf("unknown lvalue kind %d", lv.Kind)
}

func (v *validator) expr(e Expr) error {
	switch e := e.(type) {
	case *Const:
		return nil
	case *LocalRef:
		return v.localOK(e.Idx)
	case *FieldRef:
		if e.Idx < 0 || e.Idx >= v.nScalar {
			return fmt.Errorf("field %d out of range [0,%d)", e.Idx, v.nScalar)
		}
		return nil
	case *LocalIndex:
		if e.Arr < 0 || e.Arr >= len(v.fn.ArraySizes) {
			return fmt.Errorf("local array %d out of range", e.Arr)
		}
		return v.expr(e.Index)
	case *FieldIndex:
		if e.Arr < 0 || e.Arr >= v.nArr {
			return fmt.Errorf("field array %d out of range", e.Arr)
		}
		return v.expr(e.Index)
	case *Peek:
		if !v.allowTapes {
			return fmt.Errorf("peek outside work function")
		}
		if c, ok := e.Index.(*Const); ok && !v.k.Dynamic {
			if int(c.V) < 0 || int(c.V) >= v.k.Peek {
				return fmt.Errorf("peek(%d) out of declared peek window %d", int(c.V), v.k.Peek)
			}
		}
		return v.expr(e.Index)
	case *PopExpr:
		if !v.allowTapes {
			return fmt.Errorf("pop outside work function")
		}
		return nil
	case *Unary:
		return v.expr(e.X)
	case *Binary:
		if err := v.expr(e.A); err != nil {
			return err
		}
		return v.expr(e.B)
	case *Cond:
		if err := v.expr(e.C); err != nil {
			return err
		}
		if err := v.expr(e.A); err != nil {
			return err
		}
		return v.expr(e.B)
	default:
		return fmt.Errorf("unknown expression %T", e)
	}
}

// IOCount is the result of static pop/push counting over a statement list.
type IOCount struct {
	Pops, Pushes int
	Known        bool // false when counts are data-dependent
}

// CountIO statically counts pops and pushes along the (unique) execution
// path of a statement list. Counts are Known only when control flow is
// rate-invariant: counted loops with constant bounds, and branches whose
// arms perform identical I/O.
func CountIO(body []Stmt) IOCount {
	c := IOCount{Known: true}
	for _, s := range body {
		sc := countStmtIO(s)
		c.Pops += sc.Pops
		c.Pushes += sc.Pushes
		c.Known = c.Known && sc.Known
	}
	return c
}

func countStmtIO(s Stmt) IOCount {
	switch s := s.(type) {
	case *Assign:
		return exprIO(s.X)
	case *PushStmt:
		c := exprIO(s.X)
		c.Pushes++
		return c
	case *PopStmt:
		return IOCount{Pops: 1, Known: true}
	case *If:
		t := CountIO(s.Then)
		e := CountIO(s.Else)
		cond := exprIO(s.C)
		if t.Known && e.Known && t == e {
			return IOCount{Pops: t.Pops + cond.Pops, Pushes: t.Pushes + cond.Pushes, Known: cond.Known}
		}
		if t.Pops == 0 && t.Pushes == 0 && e.Pops == 0 && e.Pushes == 0 && t.Known && e.Known {
			return cond
		}
		return IOCount{Known: false}
	case *For:
		b := CountIO(s.Body)
		if b.Pops == 0 && b.Pushes == 0 && b.Known {
			return IOCount{Known: true}
		}
		trip, ok := ConstTrip(s)
		if !ok || !b.Known {
			return IOCount{Known: false}
		}
		return IOCount{Pops: b.Pops * trip, Pushes: b.Pushes * trip, Known: true}
	case *While:
		b := CountIO(s.Body)
		if b.Pops == 0 && b.Pushes == 0 && b.Known {
			return exprIO(s.C)
		}
		return IOCount{Known: false}
	case *Print:
		return exprIO(s.X)
	case *Send:
		c := IOCount{Known: true}
		for _, a := range s.Args {
			ac := exprIO(a)
			c.Pops += ac.Pops
			c.Pushes += ac.Pushes
			c.Known = c.Known && ac.Known
		}
		return c
	default:
		return IOCount{Known: true}
	}
}

func exprIO(e Expr) IOCount {
	switch e := e.(type) {
	case *PopExpr:
		return IOCount{Pops: 1, Known: true}
	case *Unary:
		return exprIO(e.X)
	case *Binary:
		a, b := exprIO(e.A), exprIO(e.B)
		return IOCount{Pops: a.Pops + b.Pops, Pushes: 0, Known: a.Known && b.Known}
	case *Cond:
		c, a, b := exprIO(e.C), exprIO(e.A), exprIO(e.B)
		if a == b && a.Known {
			return IOCount{Pops: c.Pops + a.Pops, Known: c.Known}
		}
		if a.Pops == 0 && b.Pops == 0 && a.Known && b.Known {
			return c
		}
		return IOCount{Known: false}
	case *Peek:
		return exprIO(e.Index)
	case *LocalIndex:
		return exprIO(e.Index)
	case *FieldIndex:
		return exprIO(e.Index)
	default:
		return IOCount{Known: true}
	}
}

// ConstTrip returns the statically-known trip count of a counted loop,
// when From, To and Step are constants.
func ConstTrip(f *For) (int, bool) {
	from, ok1 := f.From.(*Const)
	to, ok2 := f.To.(*Const)
	if !ok1 || !ok2 {
		return 0, false
	}
	step := 1.0
	if f.Step != nil {
		sc, ok := f.Step.(*Const)
		if !ok || sc.V <= 0 {
			return 0, false
		}
		step = sc.V
	}
	if to.V <= from.V {
		return 0, true
	}
	return int((to.V - from.V + step - 1) / step), true
}
