// Package wfunc defines the intermediate language (IL) for StreamIt filter
// bodies: the work function, the init function, and message handlers.
//
// The IL is a small, typed statement/expression tree with explicit stream
// operations (push, pop, peek) and teleport message sends. A single IL
// representation feeds three consumers:
//
//   - the interpreter (package exec runs filters by walking the tree),
//   - the static work estimator (cycle and FLOP counts per firing), and
//   - the linear extraction analysis (package linear detects filters whose
//     outputs are affine combinations of their inputs).
//
// All runtime values are float64; the front end's int/float/bit types all
// lower onto float64 tapes (exact for integers up to 2^53). Integer
// operators (%, <<, >>, &, |, ^) truncate their operands to int64 first.
package wfunc

// UnOp is a unary operator.
type UnOp int

// Unary operators.
const (
	Neg UnOp = iota // arithmetic negation
	Not             // logical not: 0 -> 1, nonzero -> 0
	BitNot
	Trunc // truncate toward zero (int cast)
	Abs
	Sin
	Cos
	Tan
	Asin
	Acos
	Atan
	Exp
	Log
	Sqrt
	Floor
	Ceil
	Round
)

var unOpNames = [...]string{
	Neg: "neg", Not: "not", BitNot: "bitnot", Trunc: "trunc", Abs: "abs",
	Sin: "sin", Cos: "cos", Tan: "tan", Asin: "asin", Acos: "acos",
	Atan: "atan", Exp: "exp", Log: "log", Sqrt: "sqrt", Floor: "floor",
	Ceil: "ceil", Round: "round",
}

func (op UnOp) String() string {
	if int(op) < len(unOpNames) {
		return unOpNames[op]
	}
	return "unop?"
}

// BinOp is a binary operator.
type BinOp int

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Mod // integer modulo
	Pow
	Atan2
	Min
	Max
	And // logical and (operands already 0/1-ish; nonzero is true)
	Or
	BitAnd
	BitOr
	BitXor
	Shl
	Shr
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
)

var binOpNames = [...]string{
	Add: "+", Sub: "-", Mul: "*", Div: "/", Mod: "%", Pow: "pow",
	Atan2: "atan2", Min: "min", Max: "max", And: "&&", Or: "||",
	BitAnd: "&", BitOr: "|", BitXor: "^", Shl: "<<", Shr: ">>",
	Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
}

func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return "binop?"
}

// Expr is an IL expression node. Expressions evaluate to float64.
type Expr interface{ isExpr() }

// Const is a floating-point literal (ints are represented exactly).
type Const struct{ V float64 }

// LocalRef reads scalar local variable Idx of the enclosing function frame.
type LocalRef struct{ Idx int }

// FieldRef reads scalar filter field Idx.
type FieldRef struct{ Idx int }

// LocalIndex reads element [Index] of local array Arr.
type LocalIndex struct {
	Arr   int
	Index Expr
}

// FieldIndex reads element [Index] of field array Arr.
type FieldIndex struct {
	Arr   int
	Index Expr
}

// Peek reads the input tape at offset Index without consuming
// (peek(0) is the next item that pop would return).
type Peek struct{ Index Expr }

// PopExpr consumes and returns the next input item.
type PopExpr struct{}

// Unary applies a unary operator.
type Unary struct {
	Op UnOp
	X  Expr
}

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	A, B Expr
}

// Cond is the ternary operator: if C != 0 then A else B.
type Cond struct{ C, A, B Expr }

func (*Const) isExpr()      {}
func (*LocalRef) isExpr()   {}
func (*FieldRef) isExpr()   {}
func (*LocalIndex) isExpr() {}
func (*FieldIndex) isExpr() {}
func (*Peek) isExpr()       {}
func (*PopExpr) isExpr()    {}
func (*Unary) isExpr()      {}
func (*Binary) isExpr()     {}
func (*Cond) isExpr()       {}

// LVKind distinguishes assignment targets.
type LVKind int

// Assignment target kinds.
const (
	LVLocal LVKind = iota
	LVField
	LVLocalArr
	LVFieldArr
)

// LValue is an assignment target: a scalar local/field, or an element of a
// local/field array (Index used only for the array kinds).
type LValue struct {
	Kind  LVKind
	Idx   int
	Index Expr
}

// Stmt is an IL statement node.
type Stmt interface{ isStmt() }

// Assign stores X into LHS.
type Assign struct {
	LHS LValue
	X   Expr
}

// PushStmt pushes X onto the output tape.
type PushStmt struct{ X Expr }

// PopStmt consumes one input item and discards it.
type PopStmt struct{}

// If executes Then when C != 0, else Else.
type If struct {
	C          Expr
	Then, Else []Stmt
}

// For is a counted loop: for Var := From; Var < To; Var += Step { Body }.
// Var is a scalar local index. Step must be a positive constant at build
// time for the loop to be statically analyzable; the interpreter evaluates
// it each iteration regardless.
type For struct {
	Var      int
	From, To Expr
	Step     Expr // nil means 1
	Body     []Stmt
}

// While loops while C != 0. While loops are opaque to the linear analysis
// and get a default trip-count in the work estimator.
type While struct {
	C    Expr
	Body []Stmt
}

// Break exits the innermost loop.
type Break struct{}

// Continue advances the innermost loop.
type Continue struct{}

// Print emits a value to the runtime's print hook (the language's
// println); with no hook attached it is a no-op.
type Print struct{ X Expr }

// Send is a teleport message: invoke Handler on every receiver registered
// with Portal, with the given latency range (in units of the sender's work
// executions, per the information-wavefront semantics). BestEffort messages
// are delivered at the runtime's convenience with no timing guarantee.
type Send struct {
	Portal     int
	Handler    string
	Args       []Expr
	MinLatency int
	MaxLatency int
	BestEffort bool
}

func (*Assign) isStmt()   {}
func (*PushStmt) isStmt() {}
func (*PopStmt) isStmt()  {}
func (*If) isStmt()       {}
func (*For) isStmt()      {}
func (*While) isStmt()    {}
func (*Break) isStmt()    {}
func (*Continue) isStmt() {}
func (*Send) isStmt()     {}
func (*Print) isStmt()    {}

// Func is a compiled IL function body plus its frame requirements.
type Func struct {
	Name       string
	Body       []Stmt
	NumLocals  int   // scalar locals
	ArraySizes []int // local array sizes, indexed by array slot
	NumParams  int   // leading scalar locals filled from message args
}

// FieldSpec declares one filter field (scalar or fixed-size array).
type FieldSpec struct {
	Name  string
	Size  int       // 0 for scalar, >0 for array length
	Init  float64   // scalar initial value
	InitA []float64 // optional array initial values (len <= Size)
}

// Kernel is the complete IL definition of a filter: its I/O rates, fields,
// and functions. Kernels are immutable after construction and shared by all
// runtime instances of the filter; mutable state lives in State.
type Kernel struct {
	Name string

	// Static data rates per work execution. For Dynamic kernels these are
	// hints only (the declared minimums); the work function may consume
	// and produce varying amounts per firing.
	Peek, Pop, Push int

	// Dynamic marks a filter with data-dependent rates — the paper's
	// stated future work. Dynamic kernels cannot be statically scheduled;
	// they run on the demand-driven dynamic engine.
	Dynamic bool

	Fields   []FieldSpec
	Init     *Func // optional; runs once before the first work execution
	Work     *Func
	Handlers map[string]*Func // teleport message handlers by name
}

// State is the mutable per-instance storage for a kernel's fields.
type State struct {
	Scalars []float64
	Arrays  [][]float64
}

// NewState allocates and initializes field storage for k.
func (k *Kernel) NewState() *State {
	st := &State{}
	for _, f := range k.Fields {
		if f.Size == 0 {
			st.Scalars = append(st.Scalars, f.Init)
		} else {
			a := make([]float64, f.Size)
			copy(a, f.InitA)
			st.Arrays = append(st.Arrays, a)
		}
	}
	return st
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c := &State{Scalars: append([]float64(nil), s.Scalars...)}
	c.Arrays = make([][]float64, len(s.Arrays))
	for i, a := range s.Arrays {
		c.Arrays[i] = append([]float64(nil), a...)
	}
	return c
}
