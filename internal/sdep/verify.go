package sdep

import (
	"fmt"

	"streamit/internal/ir"
	"streamit/internal/sched"
)

// Verify performs the paper's static program-verification checks on a flat
// graph:
//
//   - Overflow detection: split-join branches (and feedback cycles) whose
//     production rates differ by more than O(1) per steady state make some
//     buffer grow without bound. This surfaces as inconsistent balance
//     equations.
//
//   - Deadlock detection: a feedback loop whose delay is insufficient for
//     the information wavefront around the loop (maxloop(x) < x + delay)
//     starves the feedback joiner.
//
// On success it returns the schedule so callers don't recompute it.
func Verify(g *ir.Graph) (*sched.Schedule, error) {
	s, err := sched.Compute(g)
	if err != nil {
		return nil, fmt.Errorf("program verification failed: %w", err)
	}
	return s, nil
}

// MaxLoop computes the information wavefront around a feedback loop using
// the simulation-based transfer functions: maxloop(x) = ma{I2->O}(ma{O->I2}(x)),
// where O is the feedback joiner's output tape and I2 the loop (back) edge.
// For a well-formed loop maxloop(x) = x + delay: the loop neither deadlocks
// (maxloop < x+delay) nor overflows (maxloop > x+delay).
func MaxLoop(c *Calc, g *ir.Graph, back *ir.Edge, x int64) (int64, error) {
	if !back.Back {
		return 0, fmt.Errorf("edge %s is not a feedback back edge", back)
	}
	joiner := back.Dst
	if joiner.Kind != ir.NodeJoiner || len(joiner.Out) == 0 || joiner.Out[0] == nil {
		return 0, fmt.Errorf("back edge %s does not terminate at a connected joiner", back)
	}
	out := joiner.Out[0]
	onBack, err := c.Ma(out, back, x)
	if err != nil {
		return 0, err
	}
	// The initial delay items are already counted in Pushed for the back
	// edge; the wavefront through the joiner sees them plus what arrived.
	return c.Ma(back, out, onBack)
}

// CheckFeedback validates every feedback loop of g against the maxloop
// criterion at several sample points.
func CheckFeedback(g *ir.Graph, s *sched.Schedule) error {
	c := NewCalc(g, s)
	for _, e := range g.Edges {
		if !e.Back {
			continue
		}
		out := e.Dst.Out[0]
		base := int64(len(e.Initial)) + int64(s.InitReps[out.Src.ID]*out.Src.PushPort(out.SrcPort))
		for _, x := range []int64{base + 1, base + int64(s.ItemsPerSteady(out)), base + 2*int64(s.ItemsPerSteady(out))} {
			got, err := MaxLoop(c, g, e, x)
			if err != nil {
				return err
			}
			if got < x {
				return fmt.Errorf("feedback loop at %s deadlocks: wavefront around the loop loses %d items", e, x-got)
			}
		}
	}
	return nil
}

// InfoLatency measures latency in information wavefronts (the paper's
// "new method for measuring latency in a stream graph"): given tapes a
// (upstream) and b, it returns how many items must appear on a before the
// x-th item can appear on b, minus the items b already accounts for — the
// pipeline's end-to-end information delay at position x.
func InfoLatency(c *Calc, a, b *ir.Edge, x int64) (int64, error) {
	need, err := c.Mi(a, b, x)
	if err != nil {
		return 0, err
	}
	return need - x, nil
}
