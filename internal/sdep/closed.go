// Package sdep implements the paper's information-wavefront analysis: the
// max/min transfer functions between tapes of a stream graph.
//
// Two implementations are provided and cross-checked:
//
//   - Closed forms for the primitive constructs (filters, round-robin and
//     duplicate splitters/joiners, feedback joiners) and their composition
//     over pipelines, exactly as derived in the paper.
//
//   - A simulation-based computation over the flat graph (a pull schedule
//     for min, a capped eager schedule for max) that handles the cases the
//     paper leaves open: weighted round robins and arbitrary topologies.
//
// The runtime uses these functions to time teleport message delivery and to
// enforce MAX_LATENCY constraints; the compiler uses them for deadlock and
// overflow detection.
package sdep

// FilterMax computes ma{I_A->O_A}(x) for a filter with the given rates: the
// maximum number of items that can appear on the output tape given x items
// on the input tape.
//
//	ma(x) = push * floor((x - (peek-pop)) / pop)   for x >= peek-pop
//	ma(x) = 0                                      otherwise
func FilterMax(peek, pop, push int, x int64) int64 {
	e := int64(peek - pop)
	if x < e || pop == 0 {
		if x >= e && pop == 0 {
			// A source-like filter is unconstrained by its input; the
			// transfer function is undefined. Treat as unbounded.
			return int64(1) << 62
		}
		return 0
	}
	return int64(push) * ((x - e) / int64(pop))
}

// FilterMin computes mi{I_A->O_A}(x): the minimum number of items that must
// appear on the input tape for x items to appear on the output tape.
//
//	mi(x) = ceil(x / push) * pop + (peek - pop)
func FilterMin(peek, pop, push int, x int64) int64 {
	if x <= 0 {
		return 0
	}
	if push == 0 {
		return int64(1) << 62
	}
	firings := (x + int64(push) - 1) / int64(push)
	return firings*int64(pop) + int64(peek-pop)
}

// Fn is a transfer function on item counts.
type Fn func(x int64) int64

// ComposeMax composes max transfer functions along a pipeline: with a
// upstream of y upstream of z, ma{x->z} = ma{y->z} ∘ ma{x->y}.
func ComposeMax(inner, outer Fn) Fn {
	return func(x int64) int64 { return outer(inner(x)) }
}

// ComposeMin composes min transfer functions along a pipeline:
// mi{x->z} = mi{x->y} ∘ mi{y->z}.
func ComposeMin(inner, outer Fn) Fn {
	return func(x int64) int64 { return inner(outer(x)) }
}

// Round-robin splitter transfer functions (2-way, unit weights), paper §
// "SplitJoins". The first item goes to output tape 1.

// RRSplitMax1 is ma{I_S->O1_S}(x) = ceil(x/2).
func RRSplitMax1(x int64) int64 { return (x + 1) / 2 }

// RRSplitMax2 is ma{I_S->O2_S}(x) = floor(x/2).
func RRSplitMax2(x int64) int64 { return x / 2 }

// RRSplitMin is mi{I_S->(O1_S,O2_S)}(x1,x2) = MIN(2*x1-1, 2*x2).
func RRSplitMin(x1, x2 int64) int64 {
	a, b := 2*x1-1, 2*x2
	if x1 == 0 {
		a = 0
	}
	if a < b {
		return a
	}
	return b
}

// RRJoinMin1 is mi{I1_J->O_J}(x) = ceil(x/2).
func RRJoinMin1(x int64) int64 { return (x + 1) / 2 }

// RRJoinMin2 is mi{I2_J->O_J}(x) = floor(x/2).
func RRJoinMin2(x int64) int64 { return x / 2 }

// RRJoinMax is ma{(I1_J,I2_J)->O_J}(x1,x2) = MIN(2*x1-1, 2*x2)... the
// joiner can emit items alternately starting from input 1, so with x1
// items on input 1 and x2 on input 2 it emits at most min(2*x1-1+1, 2*x2+1)
// considering the final partial pair; the paper states MIN(2*x1-1, 2*x2).
func RRJoinMax(x1, x2 int64) int64 {
	return RRSplitMin(x1, x2)
}

// DupSplitMax is ma{I_S->Oi_S}(x) = x for a duplicate splitter.
func DupSplitMax(x int64) int64 { return x }

// DupSplitMin is mi{I_S->(O1_S,O2_S)}(x1,x2) = MIN(x1,x2).
func DupSplitMin(x1, x2 int64) int64 {
	if x1 < x2 {
		return x1
	}
	return x2
}

// FeedbackJoinMin2 shifts the loop-input min function by the n initial
// delay items: mi{I2_FJ->O_FJ}(x) = mi{I2_J->O_J}(x) - n.
func FeedbackJoinMin2(base Fn, n int64) Fn {
	return func(x int64) int64 {
		v := base(x) - n
		if v < 0 {
			return 0
		}
		return v
	}
}

// FeedbackJoinMax shifts the loop-input max function by the n initial delay
// items: ma{(I1,I2)->O}(x1, x2) = ma_J(x1, x2+n).
func FeedbackJoinMax(base func(x1, x2 int64) int64, n int64) func(x1, x2 int64) int64 {
	return func(x1, x2 int64) int64 { return base(x1, x2+n) }
}
