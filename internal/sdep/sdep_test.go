package sdep

import (
	"testing"
	"testing/quick"

	"streamit/internal/ir"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

func filter(name string, peek, pop, push int) *ir.Filter {
	b := wfunc.NewKernel(name, peek, pop, push)
	var body []wfunc.Stmt
	for i := 0; i < pop; i++ {
		body = append(body, wfunc.Pop1())
	}
	for i := 0; i < push; i++ {
		body = append(body, wfunc.Push1(wfunc.C(0)))
	}
	b.WorkBody(body...)
	in, out := ir.TypeFloat, ir.TypeFloat
	if pop == 0 && peek == 0 {
		in = ir.TypeVoid
	}
	if push == 0 {
		out = ir.TypeVoid
	}
	return &ir.Filter{Kernel: b.Build(), In: in, Out: out}
}

func build(t *testing.T, s ir.Stream) (*ir.Graph, *sched.Schedule, *Calc) {
	t.Helper()
	g, err := ir.FlattenStream("t", s)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, sc, NewCalc(g, sc)
}

func edgeInto(g *ir.Graph, name string) *ir.Edge {
	for _, e := range g.Edges {
		if e.Dst.Kind == ir.NodeFilter && e.Dst.Filter.Kernel.Name == name {
			return e
		}
	}
	return nil
}

func edgeFrom(g *ir.Graph, name string) *ir.Edge {
	for _, e := range g.Edges {
		if e.Src.Kind == ir.NodeFilter && e.Src.Filter.Kernel.Name == name {
			return e
		}
	}
	return nil
}

// TestFilterClosedForms checks the paper's filter equations directly.
func TestFilterClosedForms(t *testing.T) {
	// peek 3, pop 2, push 2 (the paper's Figure "tapes" example).
	peek, pop, push := 3, 2, 2
	cases := []struct{ x, maxWant, minArg, minWant int64 }{
		{0, 0, 0, 0},
		{1, 0, 1, 3}, // one output item needs 1 firing: 2 pops + 1 extra peek
		{2, 0, 2, 3}, // first firing needs peek=3 items
		{3, 2, 3, 5}, // 3 items -> 1 firing -> 2 outputs
		{5, 4, 4, 5}, //
		{7, 6, 6, 7}, //
		{11, 10, 10, 11},
	}
	for _, c := range cases {
		if got := FilterMax(peek, pop, push, c.x); got != c.maxWant {
			t.Errorf("FilterMax(%d) = %d, want %d", c.x, got, c.maxWant)
		}
		if got := FilterMin(peek, pop, push, c.minArg); got != c.minWant {
			t.Errorf("FilterMin(%d) = %d, want %d", c.minArg, got, c.minWant)
		}
	}
}

// Property: FilterMax and FilterMin are adjoint-ish: producing exactly
// FilterMax(x) outputs needs at most x inputs, and FilterMin(y) inputs
// suffice for y outputs.
func TestQuickFilterMinMaxAdjoint(t *testing.T) {
	f := func(peekR, popR, pushR uint8, xR uint16) bool {
		pop := int(popR%8) + 1
		peek := pop + int(peekR%8)
		push := int(pushR%8) + 1
		x := int64(xR % 1000)
		y := FilterMax(peek, pop, push, x)
		if y > 0 && FilterMin(peek, pop, push, y) > x {
			return false
		}
		// And min is tight: one fewer input item yields fewer outputs.
		yy := int64(1 + xR%50)
		need := FilterMin(peek, pop, push, yy)
		return FilterMax(peek, pop, push, need) >= yy &&
			FilterMax(peek, pop, push, need-1) < yy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSimMatchesFilterClosedForm cross-checks the simulation-based Calc
// against the closed forms across a single filter.
func TestSimMatchesFilterClosedForm(t *testing.T) {
	peek, pop, push := 5, 2, 3
	p := ir.Pipe("main",
		filter("src", 0, 0, 1),
		filter("A", peek, pop, push),
		filter("snk", 1, 1, 0),
	)
	g, sc, c := build(t, p)
	in := edgeInto(g, "A")
	out := edgeFrom(g, "A")
	_ = sc
	for x := int64(1); x <= 40; x++ {
		want := FilterMax(peek, pop, push, x)
		got, err := c.Ma(in, out, x)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Ma(in,out)(%d) = %d, closed form %d", x, got, want)
		}
		wantMin := FilterMin(peek, pop, push, x)
		gotMin, err := c.Mi(in, out, x)
		if err != nil {
			t.Fatal(err)
		}
		if gotMin != wantMin {
			t.Errorf("Mi(in,out)(%d) = %d, closed form %d", x, gotMin, wantMin)
		}
	}
}

// TestPipelineComposition checks the composition law across two filters:
// ma{x->z} = ma{y->z} ∘ ma{x->y} and mi{x->z} = mi{x->y} ∘ mi{y->z}.
func TestPipelineComposition(t *testing.T) {
	p := ir.Pipe("main",
		filter("src", 0, 0, 1),
		filter("A", 3, 2, 3),
		filter("B", 4, 4, 1),
		filter("snk", 1, 1, 0),
	)
	g, _, c := build(t, p)
	x := edgeInto(g, "A")
	y := edgeInto(g, "B")
	z := edgeFrom(g, "B")
	for v := int64(1); v <= 60; v++ {
		xy, _ := c.Ma(x, y, v)
		yz, _ := c.Ma(y, z, xy)
		xz, _ := c.Ma(x, z, v)
		if yz != xz {
			t.Errorf("max composition fails at %d: composed %d, direct %d", v, yz, xz)
		}
		zy, _ := c.Mi(y, z, v)
		yx, _ := c.Mi(x, y, zy)
		zx, _ := c.Mi(x, z, v)
		if yx != zx {
			t.Errorf("min composition fails at %d: composed %d, direct %d", v, yx, zx)
		}
	}
}

// TestRRSplitClosedForms checks the 2-way round-robin splitter equations
// against simulation.
func TestRRSplitClosedForms(t *testing.T) {
	sj := ir.SJ("sj", ir.RoundRobin(1, 1), ir.RoundRobin(1, 1),
		filter("a", 1, 1, 1), filter("b", 1, 1, 1))
	p := ir.Pipe("main", filter("src", 0, 0, 1), sj, filter("snk", 2, 2, 0))
	g, _, c := build(t, p)
	in := edgeFrom(g, "src") // splitter input
	outA := edgeInto(g, "a")
	outB := edgeInto(g, "b")
	for x := int64(1); x <= 30; x++ {
		gotA, _ := c.Ma(in, outA, x)
		gotB, _ := c.Ma(in, outB, x)
		if gotA != RRSplitMax1(x) {
			t.Errorf("split max1(%d) = %d, want %d", x, gotA, RRSplitMax1(x))
		}
		if gotB != RRSplitMax2(x) {
			t.Errorf("split max2(%d) = %d, want %d", x, gotB, RRSplitMax2(x))
		}
	}
}

// TestDuplicateSplitClosedForms checks the duplicate splitter's identity
// max function against simulation.
func TestDuplicateSplitClosedForms(t *testing.T) {
	sj := ir.SJ("sj", ir.Duplicate(), ir.RoundRobin(1, 1),
		filter("a", 1, 1, 1), filter("b", 1, 1, 1))
	p := ir.Pipe("main", filter("src", 0, 0, 1), sj, filter("snk", 2, 2, 0))
	g, _, c := build(t, p)
	in := edgeFrom(g, "src")
	outA := edgeInto(g, "a")
	for x := int64(1); x <= 30; x++ {
		got, _ := c.Ma(in, outA, x)
		if got != DupSplitMax(x) {
			t.Errorf("dup max(%d) = %d, want %d", x, got, x)
		}
	}
}

// TestJoinerWavefront: the joiner's output given items on one input is
// limited by the other branch, which here stays in lockstep.
func TestJoinerWavefront(t *testing.T) {
	sj := ir.SJ("sj", ir.RoundRobin(1, 1), ir.RoundRobin(1, 1),
		filter("a", 1, 1, 1), filter("b", 1, 1, 1))
	p := ir.Pipe("main", filter("src", 0, 0, 1), sj, filter("snk", 2, 2, 0))
	g, _, c := build(t, p)
	aOut := edgeFrom(g, "a") // joiner input 1
	joinOut := edgeInto(g, "snk")
	// With x items from branch a, branch b can deliver up to x as well
	// (driven by the shared source), so the joiner emits up to 2x.
	for x := int64(1); x <= 20; x++ {
		got, _ := c.Ma(aOut, joinOut, x)
		if got != 2*x {
			t.Errorf("joiner ma(%d) = %d, want %d", x, got, 2*x)
		}
	}
}

// TestSdepPeriodicity: tables extend periodically; large arguments match
// brute-force expectations for a rate-changing pipeline.
func TestSdepPeriodicity(t *testing.T) {
	p := ir.Pipe("main",
		filter("src", 0, 0, 2),
		filter("A", 3, 3, 5),
		filter("snk", 2, 2, 0),
	)
	g, _, c := build(t, p)
	in := edgeInto(g, "A")
	out := edgeFrom(g, "A")
	// Closed form with peek=pop=3, push=5. The producer (src) pushes 2 per
	// firing, so Ma arguments must be granule-aligned (even) to match the
	// closed form exactly, and Mi results are rounded up to the items that
	// physically appear on the tape (the realizable delivery point).
	for _, x := range []int64{100, 1000, 12346} {
		got, _ := c.Ma(in, out, x)
		want := FilterMax(3, 3, 5, x)
		if got != want {
			t.Errorf("Ma(%d) = %d, want %d", x, got, want)
		}
		gotMin, _ := c.Mi(in, out, x)
		wantMin := FilterMin(3, 3, 5, x)
		wantMin = (wantMin + 1) / 2 * 2 // quantize to src's push granule
		if gotMin != wantMin {
			t.Errorf("Mi(%d) = %d, want %d", x, gotMin, wantMin)
		}
	}
}

// TestMiMonotone: property — Mi and Ma are monotone non-decreasing.
func TestQuickMonotone(t *testing.T) {
	p := ir.Pipe("main",
		filter("src", 0, 0, 3),
		filter("A", 4, 2, 3),
		filter("B", 3, 3, 2),
		filter("snk", 1, 1, 0),
	)
	g, _, c := build(t, p)
	a := edgeInto(g, "A")
	b := edgeFrom(g, "B")
	f := func(x1, x2 uint16) bool {
		lo, hi := int64(x1%2000), int64(x2%2000)
		if lo > hi {
			lo, hi = hi, lo
		}
		m1, err1 := c.Mi(a, b, lo)
		m2, err2 := c.Mi(a, b, hi)
		M1, err3 := c.Ma(a, b, lo)
		M2, err4 := c.Ma(a, b, hi)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return m1 <= m2 && M1 <= M2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUpstreamOrdering(t *testing.T) {
	p := ir.Pipe("main",
		filter("src", 0, 0, 1),
		filter("A", 1, 1, 1),
		filter("B", 1, 1, 1),
		filter("snk", 1, 1, 0),
	)
	g, _, c := build(t, p)
	a := edgeInto(g, "A")
	b := edgeInto(g, "snk")
	if !c.Upstream(a, b) {
		t.Error("a should be upstream of b")
	}
	if c.Upstream(b, a) {
		t.Error("b should not be upstream of a")
	}
	if _, err := c.Mi(b, a, 1); err == nil {
		t.Error("Mi with reversed tapes should error")
	}
}

// TestFeedbackMaxLoop: a balanced loop's wavefront satisfies
// maxloop(x) >= x (no deadlock); CheckFeedback passes.
func TestFeedbackMaxLoop(t *testing.T) {
	body := filter("body", 2, 2, 2)
	fl := &ir.FeedbackLoop{
		Name:  "loop",
		Join:  ir.RoundRobin(1, 1),
		Body:  body,
		Split: ir.RoundRobin(1, 1),
		Delay: 2,
	}
	p := ir.Pipe("main", filter("src", 0, 0, 1), fl, filter("snk", 1, 1, 0))
	g, sc, _ := build(t, p)
	if err := CheckFeedback(g, sc); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyEndToEnd(t *testing.T) {
	p := ir.Pipe("main",
		filter("src", 0, 0, 1),
		filter("A", 2, 1, 1),
		filter("snk", 1, 1, 0),
	)
	g, err := ir.FlattenStream("t", p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(g); err != nil {
		t.Fatal(err)
	}
}

// TestInfoLatency: a chain of peeking filters accumulates information
// latency equal to the sum of its peek margins (for unit-rate filters).
func TestInfoLatency(t *testing.T) {
	p := ir.Pipe("main",
		filter("src", 0, 0, 1),
		filter("A", 5, 1, 1), // margin 4
		filter("B", 3, 1, 1), // margin 2
		filter("snk", 1, 1, 0),
	)
	g, _, c := build(t, p)
	a := edgeInto(g, "A")
	b := edgeInto(g, "snk")
	lat, err := InfoLatency(c, a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 6 {
		t.Errorf("information latency = %d, want 6 (sum of peek margins)", lat)
	}
}

// Property: Ma and Mi form a Galois-like connection on realizable counts:
// with Mi(a,b,x) items on a, at least x items can appear on b.
func TestQuickGaloisConnection(t *testing.T) {
	p := ir.Pipe("main",
		filter("src", 0, 0, 2),
		filter("A", 5, 3, 4),
		filter("snk", 2, 2, 0),
	)
	g, _, c := build(t, p)
	a := edgeInto(g, "A")
	b := edgeFrom(g, "A")
	f := func(xr uint16) bool {
		x := int64(xr%500) + 1
		need, err := c.Mi(a, b, x)
		if err != nil {
			return false
		}
		got, err := c.Ma(a, b, need)
		if err != nil {
			return false
		}
		return got >= x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
