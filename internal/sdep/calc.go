package sdep

import (
	"fmt"

	"streamit/internal/ir"
	"streamit/internal/sched"
)

// Calc computes simulation-based min/max transfer functions between tapes
// (edges) of a flat graph. Results are tabulated over the initialization
// transient plus several steady-state periods and extended periodically:
// mi(x + k*S_b) = mi(x) + k*S_a, where S_t is the items pushed onto tape t
// per steady-state iteration.
//
// The simulation models the paper's tape semantics exactly for splitters
// and joiners: they route items one at a time around their weight cycle
// (so e.g. a round-robin splitter's first output tape receives ceil(x/2) of
// x input items). Filters fire atomically, so transfer functions are
// quantized to filter granularity: Mi returns the count that physically
// appears on tape a (a multiple of its producer's push granule), which for
// message timing is exactly the realizable delivery point. At
// granule-aligned arguments the results coincide with the closed forms.
type Calc struct {
	g   *ir.Graph
	sch *sched.Schedule

	mi map[[2]int]*table
	ma map[[2]int]*table
}

// table holds sampled values of a transfer function for x = 1..len(vals),
// plus the periodic extension parameters.
type table struct {
	vals    []int64
	periodX int64 // period in the argument (items on the query tape)
	periodY int64 // growth per period in the result
}

func (t *table) at(x int64) int64 {
	if x <= 0 {
		return 0
	}
	var shift int64
	if x > int64(len(t.vals)) {
		over := x - int64(len(t.vals))
		k := (over + t.periodX - 1) / t.periodX
		x -= k * t.periodX
		shift = k * t.periodY
	}
	return t.vals[x-1] + shift
}

// tabPeriods is the number of steady-state periods tabulated beyond the
// initialization transient.
const tabPeriods = 3

// NewCalc prepares a calculator for g using its schedule (for period
// information).
func NewCalc(g *ir.Graph, sch *sched.Schedule) *Calc {
	return &Calc{g: g, sch: sch, mi: map[[2]int]*table{}, ma: map[[2]int]*table{}}
}

// Mi returns mi{a->b}(x): the minimum number of items that must appear on
// tape a for x items to appear on tape b. a must be upstream of b.
func (c *Calc) Mi(a, b *ir.Edge, x int64) (int64, error) {
	t, err := c.miTable(a, b)
	if err != nil {
		return 0, err
	}
	return t.at(x), nil
}

// Ma returns ma{a->b}(x): the maximum number of items that can appear on
// tape b given x items on tape a. a must be upstream of b.
func (c *Calc) Ma(a, b *ir.Edge, x int64) (int64, error) {
	t, err := c.maTable(a, b)
	if err != nil {
		return 0, err
	}
	return t.at(x), nil
}

func (c *Calc) steadyItems(e *ir.Edge) int64 {
	return int64(c.sch.ItemsPerSteady(e))
}

func (c *Calc) initItems(e *ir.Edge) int64 {
	return int64(len(e.Initial) + c.sch.InitReps[e.Src.ID]*e.Src.PushPort(e.SrcPort))
}

// microSim simulates the graph at tape-item granularity: filters fire
// atomically; splitters and joiners move one item per micro-step, cycling
// through their weight sequence.
type microSim struct {
	g      *ir.Graph
	items  []int // per edge: buffered items
	pushed []int64
	steps  []int // per node: micro-firings (for budgets)
	pos    []int // per SJ node: index into the weight cycle
	cyc    [][]int
}

func newMicroSim(g *ir.Graph) *microSim {
	s := &microSim{
		g:      g,
		items:  make([]int, len(g.Edges)),
		pushed: make([]int64, len(g.Edges)),
		steps:  make([]int, len(g.Nodes)),
		pos:    make([]int, len(g.Nodes)),
		cyc:    make([][]int, len(g.Nodes)),
	}
	for _, e := range g.Edges {
		s.items[e.ID] = len(e.Initial)
		s.pushed[e.ID] = int64(len(e.Initial))
	}
	for _, n := range g.Nodes {
		if n.Kind == ir.NodeFilter || n.SJ.Kind != ir.SJRoundRobin {
			continue
		}
		// Expand the weight cycle into a per-item port sequence.
		var seq []int
		var ports int
		if n.Kind == ir.NodeSplitter {
			ports = len(n.Out)
		} else {
			ports = len(n.In)
		}
		for p := 0; p < ports; p++ {
			for k := 0; k < n.SJ.Weights[p]; k++ {
				seq = append(seq, p)
			}
		}
		s.cyc[n.ID] = seq
	}
	return s
}

// canStep reports whether node n can take one micro-step.
func (s *microSim) canStep(n *ir.Node) bool {
	switch n.Kind {
	case ir.NodeFilter:
		e := n.InEdge()
		if e == nil {
			return true
		}
		return s.items[e.ID] >= n.Filter.Kernel.Peek
	case ir.NodeSplitter:
		e := n.InEdge()
		return e != nil && s.items[e.ID] >= 1
	case ir.NodeJoiner:
		p := s.currentPort(n)
		e := n.In[p]
		return e != nil && s.items[e.ID] >= 1
	}
	return false
}

func (s *microSim) currentPort(n *ir.Node) int {
	if n.SJ.Kind == ir.SJRoundRobin {
		return s.cyc[n.ID][s.pos[n.ID]]
	}
	return 0
}

func (s *microSim) advance(n *ir.Node) {
	if n.SJ.Kind == ir.SJRoundRobin {
		s.pos[n.ID] = (s.pos[n.ID] + 1) % len(s.cyc[n.ID])
	}
}

// step executes one micro-firing of n. Caller must check canStep.
func (s *microSim) step(n *ir.Node) {
	s.steps[n.ID]++
	switch n.Kind {
	case ir.NodeFilter:
		if e := n.InEdge(); e != nil {
			s.items[e.ID] -= n.Filter.Kernel.Pop
		}
		if e := n.OutEdge(); e != nil {
			s.items[e.ID] += n.Filter.Kernel.Push
			s.pushed[e.ID] += int64(n.Filter.Kernel.Push)
		}
	case ir.NodeSplitter:
		in := n.InEdge()
		s.items[in.ID]--
		if n.SJ.Kind == ir.SJDuplicate {
			for _, e := range n.Out {
				if e != nil {
					s.items[e.ID]++
					s.pushed[e.ID]++
				}
			}
			return
		}
		p := s.currentPort(n)
		if e := n.Out[p]; e != nil {
			s.items[e.ID]++
			s.pushed[e.ID]++
		}
		s.advance(n)
	case ir.NodeJoiner:
		p := s.currentPort(n)
		s.items[n.In[p].ID]--
		if e := n.OutEdge(); e != nil {
			s.items[e.ID]++
			s.pushed[e.ID]++
		}
		s.advance(n)
	}
}

// deficientInput returns the upstream node blocking n, or nil.
func (s *microSim) deficientInput(n *ir.Node) *ir.Node {
	switch n.Kind {
	case ir.NodeFilter, ir.NodeSplitter:
		e := n.InEdge()
		if e != nil && s.items[e.ID] < n.PeekPort(0) {
			return e.Src
		}
	case ir.NodeJoiner:
		p := s.currentPort(n)
		if e := n.In[p]; e != nil && s.items[e.ID] < 1 {
			return e.Src
		}
	}
	return nil
}

// fireBound limits simulation work; exceeding it indicates divergence.
func (c *Calc) fireBound() int {
	total := 0
	for i, r := range c.sch.Reps {
		scale := 1
		n := c.g.Nodes[i]
		if n.Kind != ir.NodeFilter {
			scale = n.TotalPop() + n.TotalPush() + 1
		}
		total += (r + c.sch.InitReps[i]) * scale
	}
	return (tabPeriods + 4) * (total + 64)
}

// miTable builds mi{a->b} by pull simulation: items on b are demanded one
// at a time; every upstream micro-firing happens only when needed, so the
// recorded count on a is minimal.
func (c *Calc) miTable(a, b *ir.Edge) (*table, error) {
	key := [2]int{a.ID, b.ID}
	if t, ok := c.mi[key]; ok {
		return t, nil
	}
	if !c.upstream(a, b) {
		return nil, fmt.Errorf("sdep: tape %s is not upstream of %s", a, b)
	}
	xMax := c.initItems(b) + tabPeriods*c.steadyItems(b)
	sim := newMicroSim(c.g)
	bound := c.fireBound()
	fired := 0

	vals := make([]int64, 0, xMax)
	for x := int64(1); x <= xMax; x++ {
		for sim.pushed[b.ID] < x {
			if err := pullFire(sim, b.Src, &fired, bound); err != nil {
				return nil, err
			}
		}
		vals = append(vals, sim.pushed[a.ID])
	}
	t := &table{vals: vals, periodX: c.steadyItems(b), periodY: c.steadyItems(a)}
	c.mi[key] = t
	return t, nil
}

// pullFire micro-fires target once, lazily firing upstream producers.
func pullFire(sim *microSim, target *ir.Node, fired *int, bound int) error {
	stack := []*ir.Node{target}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		if sim.canStep(n) {
			sim.step(n)
			*fired++
			if *fired > bound {
				return fmt.Errorf("sdep: pull simulation diverged (deadlocked graph?)")
			}
			stack = stack[:len(stack)-1]
			continue
		}
		up := sim.deficientInput(n)
		if up == nil {
			return fmt.Errorf("sdep: node %s cannot fire and has no deficient input", n.Name)
		}
		stack = append(stack, up)
		if len(stack) > 8*len(sim.g.Nodes)+32 {
			return fmt.Errorf("sdep: demand cycle detected at %s (feedback loop lacks delay)", n.Name)
		}
	}
	return nil
}

// maTable builds ma{a->b} by capped eager simulation: with at most x items
// permitted on tape a, everything fires as much as possible; the resulting
// count on b is maximal. Per-node budgets bound the work; they are generous
// enough that b's growth is limited only by the cap on a within the
// tabulated horizon.
func (c *Calc) maTable(a, b *ir.Edge) (*table, error) {
	key := [2]int{a.ID, b.ID}
	if t, ok := c.ma[key]; ok {
		return t, nil
	}
	if !c.upstream(a, b) {
		return nil, fmt.Errorf("sdep: tape %s is not upstream of %s", a, b)
	}
	xMax := c.initItems(a) + tabPeriods*c.steadyItems(a)
	order, err := c.g.TopoOrder()
	if err != nil {
		return nil, err
	}
	budget := make([]int, len(c.g.Nodes))
	for _, n := range c.g.Nodes {
		scale := 1
		if n.Kind != ir.NodeFilter {
			scale = n.TotalPop() + n.TotalPush() + 1
		}
		budget[n.ID] = (c.sch.InitReps[n.ID] + (tabPeriods+3)*c.sch.Reps[n.ID] + 4) * scale
	}

	sim := newMicroSim(c.g)
	vals := make([]int64, 0, xMax)
	for x := int64(1); x <= xMax; x++ {
		for {
			progress := false
			for _, n := range order {
				for sim.steps[n.ID] < budget[n.ID] && sim.canStep(n) {
					if capped(n, a, sim, x) {
						break
					}
					sim.step(n)
					progress = true
				}
			}
			if !progress {
				break
			}
		}
		vals = append(vals, sim.pushed[b.ID])
	}
	t := &table{vals: vals, periodX: c.steadyItems(a), periodY: c.steadyItems(b)}
	c.ma[key] = t
	return t, nil
}

// capped reports whether micro-firing n would push tape a beyond x items.
func capped(n *ir.Node, a *ir.Edge, sim *microSim, x int64) bool {
	if n != a.Src {
		return false
	}
	var delta int64
	switch n.Kind {
	case ir.NodeFilter:
		delta = int64(n.Filter.Kernel.Push)
	case ir.NodeSplitter:
		if n.SJ.Kind == ir.SJDuplicate {
			delta = 1
		} else if sim.currentPort(n) == a.SrcPort {
			delta = 1
		} else {
			return false
		}
	case ir.NodeJoiner:
		delta = 1
	}
	return sim.pushed[a.ID]+delta > x
}

// upstream reports whether tape a is upstream of tape b: there is a
// directed path from a's consumer to b's producer, or they share that node.
func (c *Calc) upstream(a, b *ir.Edge) bool {
	if a == b {
		return false
	}
	if a.Dst == b.Src {
		return true
	}
	return c.g.Downstream(a.Dst, b.Src)
}

// Upstream is the exported form of the tape ordering test.
func (c *Calc) Upstream(a, b *ir.Edge) bool { return c.upstream(a, b) }
