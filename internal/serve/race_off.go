//go:build !race

package serve

// raceEnabled reports whether the race detector is compiled in; the soak
// test scales its session count down under -race (the detector multiplies
// memory and time per goroutine by an order of magnitude).
const raceEnabled = false
