package serve

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"streamit/internal/apps"
	"streamit/internal/core"
	"streamit/internal/exec"
	"streamit/internal/faults"
	"streamit/internal/ir"
	"streamit/internal/obs"
	"streamit/internal/wfunc"
)

// supervisedStandalone runs the program sequentially under the same
// supervision options a session would get and returns the sink's values —
// the bit-identical reference for a recovered session.
func supervisedStandalone(t *testing.T, p *ir.Program, iters int, opts exec.Options) []float64 {
	t.Helper()
	c, err := core.Compile(p, core.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	sh, err := c.Shared(exec.BackendVM)
	if err != nil {
		t.Fatalf("Shared: %v", err)
	}
	eng, err := sh.NewEngine(opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	var sinkName string
	for _, n := range c.Graph.Nodes {
		if n.Kind == ir.NodeFilter && n.IsSink() {
			sinkName = n.Name
		}
	}
	var got []float64
	if err := eng.TapSink(sinkName, func(v float64) { got = append(got, v) }); err != nil {
		t.Fatalf("TapSink: %v", err)
	}
	if err := eng.Run(iters); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return got
}

// TestSessionRecoveryPolicies: a session whose kernel panics mid-run under
// a skip/retry/restart policy recovers (firing rollback inside the shared
// engine) and its output is bit-identical to a supervised standalone run
// of the same program, faults, and policy.
func TestSessionRecoveryPolicies(t *testing.T) {
	for _, policy := range []string{"skip", "retry:2", "restart"} {
		t.Run(policy, func(t *testing.T) {
			srv := newTestServer(t, Config{Workers: 2})
			loadTest(t, srv, "t", 2.0)
			plan, err := faults.ParsePlan("panic:g@5")
			if err != nil {
				t.Fatalf("ParsePlan: %v", err)
			}
			ps, err := faults.ParsePolicies("g=" + policy)
			if err != nil {
				t.Fatalf("ParsePolicies: %v", err)
			}
			s, err := srv.NewSession(SessionOptions{Program: "t", Faults: plan, OnError: ps})
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}
			const iters = 20
			if err := s.Run(iters); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := s.WaitDone(iters, 5*time.Second); err != nil {
				t.Fatalf("WaitDone: %v", err)
			}
			got := s.Drain(0)

			refPlan, _ := faults.ParsePlan("panic:g@5")
			want := supervisedStandalone(t, testProgram(2.0), iters,
				exec.Options{Faults: refPlan, OnError: ps})
			if len(got) != len(want) {
				t.Fatalf("drained %d items, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("item %d: got %v, want %v (not bit-identical)", i, got[i], want[i])
				}
			}
		})
	}
}

// TestSessionPanicQuarantinesOnlySession is the acceptance check for
// supervision: an injected kernel panic quarantines exactly the faulty
// session — every other tenant's session completes unaffected with
// bit-identical output — and the quarantine is attributed in stats.
func TestSessionPanicQuarantinesOnlySession(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 4})
	loadTest(t, srv, "t", 2.0)
	const healthy = 30
	const iters = 16

	plan, err := faults.ParsePlan("panic:g@5")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	bad, err := srv.NewSession(SessionOptions{Program: "t", Tenant: "bad-tenant", Faults: plan})
	if err != nil {
		t.Fatalf("NewSession(bad): %v", err)
	}
	var good []*Session
	for i := 0; i < healthy; i++ {
		s, err := srv.NewSession(SessionOptions{Program: "t", Tenant: fmt.Sprintf("tenant-%d", i%5)})
		if err != nil {
			t.Fatalf("NewSession(%d): %v", i, err)
		}
		good = append(good, s)
	}
	if err := bad.Run(iters); err != nil {
		t.Fatalf("Run(bad): %v", err)
	}
	for _, s := range good {
		if err := s.Run(iters); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}

	err = bad.WaitDone(iters, 5*time.Second)
	var ee *exec.ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("bad session: err = %v, want *exec.ExecError", err)
	}
	if !strings.Contains(ee.Filter, "g") {
		t.Fatalf("ExecError names filter %q, want the faulty gain", ee.Filter)
	}
	if !bad.Quarantined() {
		t.Fatal("faulty session not marked quarantined")
	}

	want := standaloneRun(t, testProgram(2.0), iters, nil)
	for i, s := range good {
		if err := s.WaitDone(iters, 5*time.Second); err != nil {
			t.Fatalf("healthy session %d: %v", i, err)
		}
		got := s.Drain(0)
		if len(got) != len(want) {
			t.Fatalf("healthy session %d drained %d items, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("healthy session %d item %d: got %v, want %v", i, j, got[j], want[j])
			}
		}
	}

	st := srv.Stats()
	if st.Sessions.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Sessions.Quarantined)
	}
	if q := st.Tenants["bad-tenant"].Quarantined; q != 1 {
		t.Fatalf("tenant quarantines = %d, want 1", q)
	}
	// The dead session's backlog must not pollute queue depth.
	if st.Iterations.Queued != 0 {
		t.Fatalf("Queued = %d, want 0 (quarantined backlog excluded)", st.Iterations.Queued)
	}
}

// panicEngine is a fake engineRunner whose steady-state run panics with a
// raw value (not an ExecError): the case where a bug escapes the engine's
// own recovery and only the runBatch containment stands between one bad
// session and the whole process.
type panicEngine struct{ after int }

func (p *panicEngine) RunInit() error { return nil }
func (p *panicEngine) RunSteady(int) error {
	if p.after <= 0 {
		panic("engine bug: escaped the kernel recovery")
	}
	p.after--
	return nil
}
func (p *panicEngine) Profile() *obs.Profiler                 { return nil }
func (p *panicEngine) WriteCheckpoint(io.Writer, int64) error { return nil }
func (p *panicEngine) RestoreCheckpoint([]byte) (int64, error) {
	return 0, fmt.Errorf("fake engine")
}

// TestRunBatchPanicContainment: a panic that escapes the engine entirely
// is contained at the pool-worker boundary — the session quarantines with
// a structured error and the same worker keeps serving other sessions.
func TestRunBatchPanicContainment(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1}) // one worker: it must survive
	loadTest(t, srv, "t", 2.0)

	victim, err := srv.NewSession(SessionOptions{Program: "t", Tenant: "victim"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	victim.mu.Lock()
	victim.eng = &panicEngine{after: 3}
	victim.mu.Unlock()

	if err := victim.Run(16); err != nil {
		t.Fatalf("Run: %v", err)
	}
	err = victim.WaitDone(16, 5*time.Second)
	var ee *exec.ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want *exec.ExecError", err)
	}
	if ee.Op != "contained panic" {
		t.Fatalf("ExecError.Op = %q, want %q", ee.Op, "contained panic")
	}
	if !victim.Quarantined() {
		t.Fatal("session not quarantined after contained panic")
	}

	// The single pool worker must still be alive to serve this session.
	s, err := srv.NewSession(SessionOptions{Program: "t"})
	if err != nil {
		t.Fatalf("NewSession after panic: %v", err)
	}
	if err := s.Run(8); err != nil {
		t.Fatalf("Run after panic: %v", err)
	}
	if err := s.WaitDone(8, 5*time.Second); err != nil {
		t.Fatalf("worker did not survive the contained panic: %v", err)
	}
}

// TestStagingPanicContainment: a staging-accounting bug (popping an empty
// input ring while holding the session lock) quarantines the session
// without poisoning the lock or the worker.
func TestStagingPanicContainment(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1})
	loadTest(t, srv, "t", 2.0)
	s, err := srv.NewSession(SessionOptions{Program: "t", Source: "src"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	// Corrupt the invariant staging relies on: make the input ring lie
	// about its depth. dispatchableLocked sees 4 items, pop() finds none
	// and panics inside beginBatch while s.mu is held.
	s.mu.Lock()
	s.input.size = 4
	s.mu.Unlock()
	if err := s.Run(2); err != nil {
		t.Fatalf("Run: %v", err)
	}
	err = s.WaitDone(2, 5*time.Second)
	var ee *exec.ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want contained *exec.ExecError", err)
	}
	// Session lock must still be healthy (a panic with s.mu held would
	// deadlock here) and the worker alive.
	if !s.Quarantined() {
		t.Fatal("session not quarantined")
	}
	probe, err := srv.NewSession(SessionOptions{Program: "t"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if err := probe.Run(4); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := probe.WaitDone(4, 5*time.Second); err != nil {
		t.Fatalf("worker did not survive staging panic: %v", err)
	}
}

// blockingProgram returns src -> block -> sink where block's native work
// function parks on the returned channel: close it to unwedge. The
// genuinely-stuck batch the watchdog exists for.
func blockingProgram(release chan struct{}) *ir.Program {
	b := wfunc.NewKernel("block", 1, 1, 1)
	b.WorkBody(wfunc.Push1(wfunc.PopE()))
	blk := &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat,
		WorkFn: func(in, out wfunc.Tape, st *wfunc.State) {
			<-release
			out.Push(in.Pop())
		}}
	return &ir.Program{Name: "B", Top: ir.Pipe("BP",
		apps.Source("src"), blk, apps.Sink("out", 1))}
}

// TestStuckSessionWatchdog: a kernel that never returns wedges one pool
// worker; the watchdog declares the session stuck with a worker-attributed
// StuckError, spawns a replacement worker, and the remaining sessions keep
// serving to completion.
func TestStuckSessionWatchdog(t *testing.T) {
	release := make(chan struct{})
	t.Cleanup(func() { close(release) }) // unwedge the kernel so its goroutine exits

	srv := newTestServer(t, Config{Workers: 2, BatchTimeout: 50 * time.Millisecond})
	if _, err := srv.LoadProgram("blocky", blockingProgram(release)); err != nil {
		t.Fatalf("LoadProgram: %v", err)
	}
	loadTest(t, srv, "t", 2.0)

	stuck, err := srv.NewSession(SessionOptions{Program: "blocky", Tenant: "wedged"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if err := stuck.Run(4); err != nil {
		t.Fatalf("Run: %v", err)
	}

	err = stuck.WaitDone(4, 5*time.Second)
	var se *StuckError
	if !errors.As(err, &se) {
		t.Fatalf("stuck session: err = %v, want *StuckError", err)
	}
	if se.SessionID != stuck.ID || se.Tenant != "wedged" || se.Program != "blocky" {
		t.Fatalf("StuckError attribution = %+v", se)
	}
	if se.Elapsed < 50*time.Millisecond {
		t.Fatalf("StuckError.Elapsed = %v, want >= BatchTimeout", se.Elapsed)
	}
	if !stuck.Quarantined() {
		t.Fatal("stuck session not quarantined")
	}

	// The pool must be back at full strength: healthy sessions complete.
	want := standaloneRun(t, testProgram(2.0), 12, nil)
	for i := 0; i < 4; i++ {
		s, err := srv.NewSession(SessionOptions{Program: "t"})
		if err != nil {
			t.Fatalf("NewSession(%d): %v", i, err)
		}
		if err := s.Run(12); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := s.WaitDone(12, 5*time.Second); err != nil {
			t.Fatalf("healthy session %d after stuck verdict: %v", i, err)
		}
		got := s.Drain(0)
		if len(got) != len(want) {
			t.Fatalf("healthy session %d: %d items, want %d", i, len(got), len(want))
		}
		s.Close()
	}

	st := srv.Stats()
	if st.Sessions.Stuck != 1 {
		t.Fatalf("Stats.Sessions.Stuck = %d, want 1", st.Sessions.Stuck)
	}
	if st.Pool.Lost != 1 || st.Pool.Replaced != 1 {
		t.Fatalf("Pool lost/replaced = %d/%d, want 1/1", st.Pool.Lost, st.Pool.Replaced)
	}
	if st.Pool.Workers != 2 {
		t.Fatalf("live workers = %d, want 2 (replacement keeps strength)", st.Pool.Workers)
	}
	if q := st.Tenants["wedged"].Quarantined; q != 1 {
		t.Fatalf("wedged tenant quarantines = %d, want 1", q)
	}
}

// TestLostSessionAccounting: a session that errors mid-batch while other
// work is queued is dropped by its worker without losing accounting — the
// quarantine is counted, its backlog leaves the queue-depth gauge, its
// pre-error output stays drainable, and the session stays inspectable.
func TestLostSessionAccounting(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 2, Batch: 4})
	loadTest(t, srv, "t", 2.0)
	plan, err := faults.ParsePlan("panic:g@9")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	s, err := srv.NewSession(SessionOptions{Program: "t", Tenant: "lossy", Faults: plan})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	const goal = 64 // far beyond the failure point: a real backlog is lost
	if err := s.Run(goal); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.WaitDone(goal, 5*time.Second); err == nil {
		t.Fatal("WaitDone succeeded past an injected panic")
	}
	done, g := s.Progress()
	if g != goal || done >= goal || done < 1 {
		t.Fatalf("progress %d/%d after mid-batch error", done, g)
	}
	// Iterations completed before the failing firing produced output; it
	// must still be drainable after quarantine.
	if got := s.Drain(0); int64(len(got)) != done {
		t.Fatalf("drained %d items, want %d (one per completed iteration)", len(got), done)
	}
	st := srv.Stats()
	if st.Sessions.Quarantined != 1 || st.Tenants["lossy"].Quarantined != 1 {
		t.Fatalf("quarantine accounting: %+v", st.Sessions)
	}
	if st.Iterations.Queued != 0 {
		t.Fatalf("Queued = %d, want 0: the lost backlog must leave the gauge", st.Iterations.Queued)
	}
	if st.Iterations.Completed != done {
		t.Fatalf("Completed = %d, want %d", st.Iterations.Completed, done)
	}
	// The session slot frees normally.
	s.Close()
	if srv.Session(s.ID) != nil {
		t.Fatal("quarantined session still resolvable after Close")
	}
}
