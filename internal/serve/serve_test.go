package serve

import (
	"errors"
	"strings"
	"testing"
	"time"

	"streamit/internal/apps"
	"streamit/internal/core"
	"streamit/internal/exec"
	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

// testProgram is a tiny source -> gain -> sink pipeline whose output per
// steady iteration is one item.
func testProgram(gain float64) *ir.Program {
	return &ir.Program{Name: "T", Top: ir.Pipe("TP",
		apps.Source("src"),
		apps.Gain("g", gain),
		apps.Sink("out", 1))}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv := New(cfg)
	t.Cleanup(srv.Close)
	return srv
}

func loadTest(t *testing.T, srv *Server, name string, gain float64) {
	t.Helper()
	if _, err := srv.LoadProgram(name, testProgram(gain)); err != nil {
		t.Fatalf("LoadProgram: %v", err)
	}
}

// standaloneRun executes the same program sequentially and returns the
// values its sink consumed — the reference a served session must match
// bit-for-bit.
func standaloneRun(t *testing.T, p *ir.Program, iters int, feed []float64) []float64 {
	t.Helper()
	c, err := core.Compile(p, core.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	sh, err := c.Shared(exec.BackendVM)
	if err != nil {
		t.Fatalf("Shared: %v", err)
	}
	eng, err := sh.NewEngine(exec.Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// Resolve the flattened instance names of the source and sink.
	var srcName, sinkName string
	for _, n := range c.Graph.Nodes {
		if n.Kind != ir.NodeFilter {
			continue
		}
		if n.IsSource() {
			srcName = n.Name
		}
		if n.IsSink() {
			sinkName = n.Name
		}
	}
	if feed != nil {
		pos := 0
		if err := eng.OverrideWork(srcName, func(_, out wfunc.Tape) {
			out.Push(feed[pos])
			pos++
		}); err != nil {
			t.Fatalf("OverrideWork: %v", err)
		}
	}
	var got []float64
	if err := eng.TapSink(sinkName, func(v float64) { got = append(got, v) }); err != nil {
		t.Fatalf("TapSink: %v", err)
	}
	if err := eng.Run(iters); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return got
}

func TestSessionLifecycle(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 2})
	loadTest(t, srv, "t", 2.0)

	s, err := srv.NewSession(SessionOptions{Program: "t"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if err := s.Run(20); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.WaitDone(20, 5*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	got := s.Drain(0)
	want := standaloneRun(t, testProgram(2.0), 20, nil)
	if len(got) != len(want) {
		t.Fatalf("drained %d items, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("item %d: got %v, want %v (not bit-identical)", i, got[i], want[i])
		}
	}
	s.Close()
	if err := s.Run(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run on closed session: err = %v, want ErrClosed", err)
	}
	if srv.Session(s.ID) != nil {
		t.Fatal("closed session still resolvable")
	}
	s.Close() // idempotent
}

func TestFedSessionBitIdentical(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 2})
	loadTest(t, srv, "t", 3.0)

	const iters = 50
	feed := make([]float64, iters+8) // init prework may consume some
	for i := range feed {
		feed[i] = float64(i) * 0.125
	}
	s, err := srv.NewSession(SessionOptions{Program: "t", Source: "src"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if n, err := s.Feed(feed); err != nil || n != len(feed) {
		t.Fatalf("Feed: accepted %d, err %v", n, err)
	}
	if err := s.Run(iters); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.WaitDone(iters, 5*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	got := s.Drain(0)
	want := standaloneRun(t, testProgram(3.0), iters, feed)
	if len(got) != len(want) {
		t.Fatalf("drained %d items, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("item %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAdmissionSessionLimit(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1, MaxSessions: 2})
	loadTest(t, srv, "t", 1.0)

	s1, err := srv.NewSession(SessionOptions{Program: "t"})
	if err != nil {
		t.Fatalf("session 1: %v", err)
	}
	if _, err := srv.NewSession(SessionOptions{Program: "t"}); err != nil {
		t.Fatalf("session 2: %v", err)
	}
	if _, err := srv.NewSession(SessionOptions{Program: "t"}); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("session 3: err = %v, want ErrSessionLimit", err)
	}
	if got := srv.Stats().Sessions.RejectedSessions; got != 1 {
		t.Fatalf("rejected_sessions = %d, want 1", got)
	}
	s1.Close()
	if _, err := srv.NewSession(SessionOptions{Program: "t"}); err != nil {
		t.Fatalf("session after close: %v", err)
	}
}

func TestAdmissionIterBacklog(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1, MaxQueuedIters: 10})
	loadTest(t, srv, "t", 1.0)

	// A fed session with no input cannot progress, so requested iterations
	// stay queued and the backlog cap is reachable deterministically.
	s, err := srv.NewSession(SessionOptions{Program: "t", Source: "src"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if err := s.Run(10); err != nil {
		t.Fatalf("Run within budget: %v", err)
	}
	if err := s.Run(1); !errors.Is(err, ErrIterBacklog) {
		t.Fatalf("Run past budget: err = %v, want ErrIterBacklog", err)
	}
	if got := srv.Stats().Sessions.RejectedIters; got != 1 {
		t.Fatalf("rejected_iters = %d, want 1", got)
	}
}

func TestUnknownProgramAndSource(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1})
	loadTest(t, srv, "t", 1.0)
	if _, err := srv.NewSession(SessionOptions{Program: "nope"}); err == nil {
		t.Fatal("unknown program accepted")
	}
	if _, err := srv.NewSession(SessionOptions{Program: "t", Source: "nope"}); err == nil {
		t.Fatal("unknown source filter accepted")
	}
	if _, err := srv.NewSession(SessionOptions{Program: "t", Source: "out"}); err == nil {
		t.Fatal("sink accepted as fed source")
	}
}

func TestBackpressureIsolation(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 2, MaxBufferedOut: 16, MaxQueuedIters: 4096})
	loadTest(t, srv, "t", 1.0)

	slow, err := srv.NewSession(SessionOptions{Program: "t"})
	if err != nil {
		t.Fatalf("slow session: %v", err)
	}
	fast, err := srv.NewSession(SessionOptions{Program: "t"})
	if err != nil {
		t.Fatalf("fast session: %v", err)
	}
	// Both request far more output than one buffer holds. The slow
	// consumer never drains; the fast one drains concurrently.
	if err := slow.Run(1000); err != nil {
		t.Fatalf("slow.Run: %v", err)
	}
	if err := fast.Run(1000); err != nil {
		t.Fatalf("fast.Run: %v", err)
	}
	fastDone := 0
	deadline := time.Now().Add(10 * time.Second)
	for fastDone < 1000 {
		if time.Now().After(deadline) {
			t.Fatalf("fast session starved: drained %d of 1000 (backpressure not isolated)", fastDone)
		}
		fastDone += len(fast.Drain(0))
		time.Sleep(time.Millisecond)
	}
	// The slow session must have stalled at its buffer cap, not run ahead.
	done, _ := slow.Progress()
	if done > 16 {
		t.Fatalf("slow session completed %d iterations with a full output buffer (cap 16)", done)
	}
	if done == 0 {
		t.Fatal("slow session made no progress at all")
	}
	// Draining the slow session un-stalls it.
	slow.Drain(0)
	if err := slow.WaitDone(32, 5*time.Second); err != nil {
		t.Fatalf("slow session did not resume after drain: %v", err)
	}
}

func TestHotReloadDraining(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 2})
	loadTest(t, srv, "t", 2.0)

	s1, err := srv.NewSession(SessionOptions{Program: "t"})
	if err != nil {
		t.Fatalf("session on v1: %v", err)
	}
	// Reload with different constants: new version for new sessions.
	c5, err := core.Compile(testProgram(5.0), core.Options{})
	if err != nil {
		t.Fatalf("compile v2: %v", err)
	}
	if _, err := srv.LoadCompiled("t", c5); err != nil {
		t.Fatalf("reload: %v", err)
	}
	s2, err := srv.NewSession(SessionOptions{Program: "t"})
	if err != nil {
		t.Fatalf("session on v2: %v", err)
	}
	if s1.ver.num == s2.ver.num {
		t.Fatalf("both sessions on version %d; reload did not create a new version", s1.ver.num)
	}

	// v1 must be draining while s1 lives.
	progs := srv.Programs()
	if len(progs) != 2 {
		t.Fatalf("got %d program versions, want 2 (draining + active): %+v", len(progs), progs)
	}
	if !progs[0].Draining || progs[1].Draining {
		t.Fatalf("want v1 draining and v2 active, got %+v", progs)
	}

	// Old session keeps old semantics; new session gets new ones.
	for s, gain := range map[*Session]float64{s1: 2.0, s2: 5.0} {
		if err := s.Run(10); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := s.WaitDone(10, 5*time.Second); err != nil {
			t.Fatalf("WaitDone: %v", err)
		}
		got := s.Drain(0)
		want := standaloneRun(t, testProgram(gain), 10, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("gain-%v session item %d: got %v, want %v", gain, i, got[i], want[i])
			}
		}
	}

	// Closing the last v1 session retires the draining version.
	s1.Close()
	progs = srv.Programs()
	if len(progs) != 1 || progs[0].Draining {
		t.Fatalf("after drain, want single active version, got %+v", progs)
	}

	// Reloading the same compiled program (what the source cache returns
	// for unchanged text) is a no-op, not a new version.
	v, err := srv.LoadCompiled("t", c5)
	if err != nil {
		t.Fatalf("identical reload: %v", err)
	}
	if v != s2.ver.num {
		t.Fatalf("identical reload made version %d, want %d", v, s2.ver.num)
	}
}

func TestFeedBounded(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1, MaxBufferedIn: 8})
	loadTest(t, srv, "t", 1.0)
	s, err := srv.NewSession(SessionOptions{Program: "t", Source: "src"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	n, err := s.Feed(make([]float64, 20))
	if err != nil {
		t.Fatalf("Feed: %v", err)
	}
	if n != 8 {
		t.Fatalf("accepted %d items, want 8 (MaxBufferedIn)", n)
	}
	// Unfed plain session rejects Feed.
	p, err := srv.NewSession(SessionOptions{Program: "t"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if _, err := p.Feed([]float64{1}); err == nil {
		t.Fatal("Feed on session without Source succeeded")
	}
}

func TestStatsDocument(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 2})
	loadTest(t, srv, "t", 1.0)
	s, err := srv.NewSession(SessionOptions{Program: "t", Tenant: "acme"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if err := s.Run(25); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.WaitDone(25, 5*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	st := srv.Stats()
	if st.Schema != StatsSchema {
		t.Fatalf("schema = %q, want %q", st.Schema, StatsSchema)
	}
	if st.Sessions.Open != 1 || st.Sessions.Created != 1 {
		t.Fatalf("session counters off: %+v", st.Sessions)
	}
	if st.Iterations.Completed != 25 {
		t.Fatalf("iterations completed = %d, want 25", st.Iterations.Completed)
	}
	if st.LatencyNS.Count != 25 || st.LatencyNS.P99 == 0 || st.LatencyNS.Max == 0 {
		t.Fatalf("latency summary off: %+v", st.LatencyNS)
	}
	if st.LatencyNS.P50 > st.LatencyNS.P99 || st.LatencyNS.P99 > 2*st.LatencyNS.Max {
		t.Fatalf("latency quantiles inconsistent: %+v", st.LatencyNS)
	}
	if tn, ok := st.Tenants["acme"]; !ok || tn.Sessions != 1 || tn.Iterations != 25 {
		t.Fatalf("tenant stats off: %+v", st.Tenants)
	}
	if len(st.Programs) != 1 || !st.Programs[0].Active {
		t.Fatalf("program stats off: %+v", st.Programs)
	}
}

func TestSessionProfile(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1})
	loadTest(t, srv, "t", 1.0)
	s, err := srv.NewSession(SessionOptions{Program: "t", Profile: true})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if err := s.Run(5); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.WaitDone(5, 5*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	p := s.Profile()
	if p == nil {
		t.Fatal("Profile() = nil with Profile option set")
	}
	var firings int64 = -1
	for name, fp := range p.ByName() {
		if strings.HasPrefix(name, "g#") {
			firings = fp.Firings
		}
	}
	if firings != 5 {
		t.Fatalf("profiled firings for g = %d, want 5", firings)
	}
}
