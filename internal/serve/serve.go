// Package serve is a multi-tenant streaming server: it compiles StreamIt
// programs once, then multiplexes thousands of cheap per-tenant sessions
// of those programs onto one work-stealing worker pool sized to the
// machine. Sessions share the program's immutable artifacts (graph,
// schedule, VM bytecode, init-state prototypes — see exec.Shared) and own
// only their tapes, filter state, and VM frames, so an idle session costs
// a few kilobytes. Admission control bounds sessions and per-session
// iteration backlog; backpressure from a slow consumer throttles only its
// own session; reloading a program's source hot-swaps new sessions onto
// the new version while old sessions drain on the version they pinned.
package serve

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"streamit/internal/core"
	"streamit/internal/exec"
	"streamit/internal/ir"
)

// maxBatch caps Config.Batch; it bounds the worker's stack-allocated
// latency staging.
const maxBatch = 64

// Config sizes the server. Zero values select the documented defaults.
type Config struct {
	// Workers is the pool size; 0 selects GOMAXPROCS.
	Workers int
	// MaxSessions bounds concurrently open sessions (default 16384).
	MaxSessions int
	// MaxQueuedIters bounds undone iterations per session (default 4096).
	MaxQueuedIters int
	// MaxBufferedIn bounds fed-but-unconsumed items per session
	// (default 65536).
	MaxBufferedIn int
	// MaxBufferedOut bounds produced-but-undrained items per session
	// (default 8192); a full output buffer stalls only that session.
	MaxBufferedOut int
	// Batch is how many steady iterations a worker runs per dispatch
	// (default 8, max 64). Larger batches amortize scheduling; smaller
	// ones reduce per-session latency jitter.
	Batch int
	// Backend selects the work-function substrate for all sessions.
	Backend exec.Backend
	// BatchTimeout arms the stuck-session watchdog: a single batch holding
	// one pool worker longer than this marks its session stuck (a
	// worker-attributed *StuckError), rescues the worker's queued sessions,
	// and spawns a replacement worker so the pool keeps serving at full
	// strength. 0 disables the watchdog.
	BatchTimeout time.Duration
	// SnapshotDir is the default directory for Snapshot/Restore, used by
	// the HTTP /v1/snapshot endpoint when the request names none.
	SnapshotDir string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 16384
	}
	if c.MaxQueuedIters <= 0 {
		c.MaxQueuedIters = 4096
	}
	if c.MaxBufferedIn <= 0 {
		c.MaxBufferedIn = 65536
	}
	if c.MaxBufferedOut <= 0 {
		c.MaxBufferedOut = 8192
	}
	if c.Batch <= 0 {
		c.Batch = 8
	}
	if c.Batch > maxBatch {
		c.Batch = maxBatch
	}
	return c
}

// Server multiplexes sessions of loaded programs onto a shared worker
// pool. All methods are safe for concurrent use.
type Server struct {
	cfg   Config
	pool  *pool
	cache *core.Cache
	start time.Time

	mu          sync.Mutex
	programs    map[string]*program
	sessions    map[uint64]*Session
	tenantIters map[string]int64
	nextSID     uint64
	peak        int

	// qmu is a leaf lock: noteQuarantine runs under a Session's mutex, so
	// the quarantine counters cannot share srv.mu (Stats orders srv.mu
	// before s.mu).
	qmu               sync.Mutex
	tenantQuarantines map[string]int64

	draining         atomic.Bool
	created          atomic.Int64
	closedCount      atomic.Int64
	rejectedSessions atomic.Int64
	rejectedIters    atomic.Int64
	itersDone        atomic.Int64
	quarantinedCount atomic.Int64
	stuckCount       atomic.Int64
	snapshotsTaken   atomic.Int64
	restoredCount    atomic.Int64
	lat              latHist
}

// program is a named entry in the registry; versions accumulate on reload
// and retire once drained.
type program struct {
	name     string
	versions []*version
}

// version is one immutable compiled edition of a program. Sessions pin the
// version current at their creation; a superseded version survives,
// draining, until its last session closes.
type version struct {
	name   string
	num    int
	fp     uint64
	shared *exec.Shared

	// Output geometry: items every sink pops per steady iteration and
	// during init (what a session's output buffer fills at).
	outPerIter int
	outPerInit int
	sinks      []string

	active atomic.Int64
}

// New starts a server with its worker pool running.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:               cfg,
		pool:              newPool(cfg.Workers, cfg.BatchTimeout),
		cache:             core.NewCache(),
		start:             time.Now(),
		programs:          map[string]*program{},
		sessions:          map[uint64]*Session{},
		tenantIters:       map[string]int64{},
		tenantQuarantines: map[string]int64{},
	}
}

// Close stops the worker pool. Open sessions stop making progress; their
// buffered output stays drainable.
func (srv *Server) Close() { srv.pool.close() }

// LoadSource compiles src (cached by source hash) and loads it under name.
// Loading an already-present name with a different compiled fingerprint is
// a hot reload: a new version becomes current for future sessions while
// existing sessions drain on theirs. Returns the current version number.
func (srv *Server) LoadSource(name, src, top string) (int, error) {
	c, _, err := srv.cache.CompileSource(src, top, core.Options{})
	if err != nil {
		return 0, err
	}
	return srv.LoadCompiled(name, c)
}

// LoadProgram compiles an in-memory IR program and loads it under name.
func (srv *Server) LoadProgram(name string, p *ir.Program) (int, error) {
	c, err := core.Compile(p, core.Options{})
	if err != nil {
		return 0, err
	}
	return srv.LoadCompiled(name, c)
}

// LoadCompiled registers a compiled program under name. Reload identity is
// the compiled object itself: loading the same *Compiled again (which is
// what the source cache returns for unchanged source text) is a no-op,
// while any fresh compilation — even one that happens to share the
// structural fingerprint — becomes a new version. The structural
// fingerprint deliberately ignores work-function bodies (it names
// checkpoint-compatible shapes), so it cannot tell a constant tweak from
// no change at all; object identity can.
func (srv *Server) LoadCompiled(name string, c *core.Compiled) (int, error) {
	sh, err := c.Shared(srv.cfg.Backend)
	if err != nil {
		return 0, err
	}
	v := &version{name: name, fp: sh.Fingerprint(), shared: sh}
	for _, n := range sh.G.Nodes {
		if n.Kind == ir.NodeFilter && n.IsSink() {
			v.sinks = append(v.sinks, n.Name)
			v.outPerIter += sh.Sch.Reps[n.ID] * n.TotalPop()
			v.outPerInit += sh.Sch.InitReps[n.ID] * n.TotalPop()
		}
	}
	sort.Strings(v.sinks)

	srv.mu.Lock()
	defer srv.mu.Unlock()
	p := srv.programs[name]
	if p == nil {
		p = &program{name: name}
		srv.programs[name] = p
	}
	if n := len(p.versions); n > 0 && p.versions[n-1].shared == sh {
		return p.versions[n-1].num, nil // identical program: no new version
	}
	v.num = len(p.versions) + 1
	if n := len(p.versions); n > 0 {
		v.num = p.versions[n-1].num + 1
	}
	p.versions = append(p.versions, v)
	srv.pruneLocked(p)
	return v.num, nil
}

// pruneLocked drops superseded versions with no remaining sessions.
// Callers hold srv.mu.
func (srv *Server) pruneLocked(p *program) {
	if len(p.versions) <= 1 {
		return
	}
	kept := p.versions[:0]
	for i, v := range p.versions {
		if i == len(p.versions)-1 || v.active.Load() > 0 {
			kept = append(kept, v)
		}
	}
	p.versions = kept
}

// Programs lists loaded program versions, sorted by name then version.
func (srv *Server) Programs() []ProgramStats {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	var out []ProgramStats
	for _, p := range srv.programs {
		latest := p.versions[len(p.versions)-1]
		for _, v := range p.versions {
			out = append(out, ProgramStats{
				Name:        p.name,
				Version:     v.num,
				Fingerprint: fingerprintString(v.fp),
				Sessions:    v.active.Load(),
				Active:      v == latest,
				Draining:    v != latest,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	return out
}

// NewSession opens a session of the named program's current version.
// Construction stamps an engine from the version's shared artifacts —
// allocation-light by design, which is what makes 10k-session fan-out
// practical. The session is idle until Run requests iterations.
func (srv *Server) NewSession(opt SessionOptions) (*Session, error) {
	if srv.draining.Load() {
		return nil, ErrDraining
	}
	srv.mu.Lock()
	if len(srv.sessions) >= srv.cfg.MaxSessions {
		srv.mu.Unlock()
		srv.rejectedSessions.Add(1)
		return nil, fmt.Errorf("%w (%d open)", ErrSessionLimit, srv.cfg.MaxSessions)
	}
	p := srv.programs[opt.Program]
	if p == nil {
		srv.mu.Unlock()
		return nil, fmt.Errorf("serve: unknown program %q", opt.Program)
	}
	ver := p.versions[len(p.versions)-1]
	srv.nextSID++
	sid := srv.nextSID
	srv.mu.Unlock()

	s, err := srv.buildSession(ver, opt)
	if err != nil {
		return nil, err
	}
	s.ID = sid

	srv.mu.Lock()
	if len(srv.sessions) >= srv.cfg.MaxSessions {
		srv.mu.Unlock()
		srv.rejectedSessions.Add(1)
		return nil, fmt.Errorf("%w (%d open)", ErrSessionLimit, srv.cfg.MaxSessions)
	}
	srv.sessions[sid] = s
	if len(srv.sessions) > srv.peak {
		srv.peak = len(srv.sessions)
	}
	ver.active.Add(1)
	srv.mu.Unlock()
	srv.created.Add(1)
	return s, nil
}

// buildSession stamps an engine from the version's shared artifacts and
// wires the session's source override, sink taps, and supervision options.
// The caller registers the result (and assigns its ID) under srv.mu.
func (srv *Server) buildSession(ver *version, opt SessionOptions) (*Session, error) {
	s := &Session{srv: srv, ver: ver, opt: opt, waitCh: make(chan struct{})}
	engOpts := exec.Options{
		Profile: opt.Profile,
		Faults:  opt.Faults,
		OnError: opt.OnError,
	}
	eng, err := ver.shared.NewEngine(engOpts)
	if err != nil {
		return nil, err
	}
	if opt.Source != "" {
		srcName, err := feedRates(ver.shared, opt.Source, s)
		if err != nil {
			return nil, err
		}
		if err := eng.OverrideWork(srcName, s.sourceOverride()); err != nil {
			return nil, err
		}
	}
	for _, sink := range ver.sinks {
		if err := eng.TapSink(sink, func(v float64) { s.stageOut = append(s.stageOut, v) }); err != nil {
			return nil, err
		}
	}
	s.eng = eng
	s.prof = eng.Profile()
	return s, nil
}

// noteQuarantine counts a terminally failed session server-wide and per
// tenant. Runs under the session's mutex, hence the leaf lock.
func (srv *Server) noteQuarantine(tenant string) {
	srv.quarantinedCount.Add(1)
	srv.qmu.Lock()
	srv.tenantQuarantines[tenant]++
	srv.qmu.Unlock()
}

// Drain stops session admission (new sessions fail with ErrDraining) and
// waits for every open session's in-flight work to finish — each session
// either reaches its requested goal, stalls on missing input or a full
// output buffer, fails, or closes. Returns ErrTimeout if the pool has not
// gone quiet by the deadline; already-admitted sessions keep running
// either way. Draining is one-way: it is the first phase of shutdown.
func (srv *Server) Drain(timeout time.Duration) error {
	srv.draining.Store(true)
	deadline := time.Now().Add(timeout)
	for {
		if srv.quiet() {
			return nil
		}
		if time.Now().After(deadline) {
			return ErrTimeout
		}
		time.Sleep(time.Millisecond)
	}
}

// Draining reports whether Drain has stopped session admission.
func (srv *Server) Draining() bool { return srv.draining.Load() }

// quiet reports whether no session has dispatchable or in-flight work.
func (srv *Server) quiet() bool {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	for _, s := range srv.sessions {
		s.mu.Lock()
		busy := s.scheduled || (s.err == nil && !s.closed && s.dispatchableLocked() > 0)
		s.mu.Unlock()
		if busy {
			return false
		}
	}
	return true
}

// feedRates validates that name resolves to a pushing source filter of the
// bundle's graph, fills the session's input geometry, and returns the
// filter's flattened instance name.
func feedRates(sh *exec.Shared, name string, s *Session) (string, error) {
	n, err := findFilter(sh.G, name)
	if err != nil {
		return "", err
	}
	if !n.IsSource() || n.TotalPush() == 0 {
		return "", fmt.Errorf("serve: filter %q is not a pushing source", name)
	}
	s.inPerFiring = n.TotalPush()
	s.inPerIter = sh.Sch.Reps[n.ID] * s.inPerFiring
	s.inPerInit = sh.Sch.InitReps[n.ID] * s.inPerFiring
	return n.Name, nil
}

// findFilter resolves a filter by flattened instance name ("src#0") or by
// the bare kernel name the user wrote ("src"), rejecting ambiguous bare
// names — flattening suffixes every instance with "#<id>".
func findFilter(g *ir.Graph, name string) (*ir.Node, error) {
	var found *ir.Node
	for _, n := range g.Nodes {
		if n.Kind != ir.NodeFilter {
			continue
		}
		if n.Name == name {
			return n, nil
		}
		if baseName(n.Name) == name {
			if found != nil {
				return nil, fmt.Errorf("serve: filter name %q is ambiguous (instances %s, %s)", name, found.Name, n.Name)
			}
			found = n
		}
	}
	if found == nil {
		return nil, fmt.Errorf("serve: no filter named %q in program", name)
	}
	return found, nil
}

// baseName strips every flattening suffix: builder graphs mangle one
// instance counter ("src#0"), lang-elaborated graphs two ("Mic#2#0").
func baseName(s string) string {
	if i := strings.IndexByte(s, '#'); i >= 0 {
		return s[:i]
	}
	return s
}

// Session looks up an open session by ID.
func (srv *Server) Session(id uint64) *Session {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.sessions[id]
}

// closeSession implements Session.Close.
func (srv *Server) closeSession(s *Session) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.notifyLocked()
	s.mu.Unlock()

	srv.mu.Lock()
	delete(srv.sessions, s.ID)
	s.ver.active.Add(-1)
	if p := srv.programs[s.ver.name]; p != nil {
		srv.pruneLocked(p)
	}
	srv.mu.Unlock()
	srv.closedCount.Add(1)
}

// recordIters folds a finished batch into the server-wide latency
// histogram and counters.
func (srv *Server) recordIters(tenant string, latNS []int64) {
	for _, ns := range latNS {
		srv.lat.record(ns)
	}
	srv.itersDone.Add(int64(len(latNS)))
	srv.mu.Lock()
	srv.tenantIters[tenant] += int64(len(latNS))
	srv.mu.Unlock()
}

// CacheStats exposes the server's compile-cache counters.
func (srv *Server) CacheStats() (entries int, hits, misses int64) {
	return srv.cache.Stats()
}

func fingerprintString(fp uint64) string { return fmt.Sprintf("%016x", fp) }
