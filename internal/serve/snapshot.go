package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"streamit/internal/faults"
)

// Session checkpoint envelope: the engine's fingerprinted image (the PR 5
// format, byte-portable across backends) wrapped with everything else a
// session owns — identity, fed-input ring, undrained output, progress
// counters, and recovery policies — so a restored server resumes exactly
// where the snapshot cut, bit-identical to a run that never stopped.
const (
	sessMagic    = "STRMSESS"
	sessVersion  = 1
	manifestName = "MANIFEST.json"
)

// checkpointQuiesce bounds how long Checkpoint waits for an in-flight
// batch to leave the session. Generous: a batch is Config.Batch steady
// iterations; only a genuinely wedged kernel exceeds this.
const checkpointQuiesce = 30 * time.Second

// Checkpoint quiesces the session (pausing dispatch and waiting out any
// in-flight batch) and writes its complete resumable state to w. The
// session resumes serving afterwards. Quarantined and closed sessions are
// not checkpointable: their state is terminal, not resumable.
func (s *Session) Checkpoint(w io.Writer) error {
	// Reject terminal sessions before quiescing: a stuck session's lost
	// worker never releases it, so waiting out the quiesce would stall the
	// whole snapshot sweep on state that can't be persisted anyway.
	if err := s.Err(); err != nil {
		return fmt.Errorf("serve: session %d is quarantined: %w", s.ID, err)
	}
	s.pause()
	defer s.resume()
	if err := s.waitUnscheduled(checkpointQuiesce); err != nil {
		return fmt.Errorf("serve: session %d did not quiesce for checkpoint: %w", s.ID, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.err != nil {
		return fmt.Errorf("serve: session %d is quarantined: %w", s.ID, s.err)
	}
	var eng bytes.Buffer
	if err := s.eng.WriteCheckpoint(&eng, s.done); err != nil {
		return err
	}
	c := &sessWriter{w: w}
	c.bytes([]byte(sessMagic))
	c.u32(sessVersion)
	c.u64(s.ver.fp)
	c.u64(s.ID)
	c.str(s.ver.name)
	c.str(s.opt.Source)
	c.str(s.opt.Tenant)
	c.str(policiesSpec(s.opt.OnError))
	c.bool(s.opt.Profile)
	c.bool(s.inited)
	c.i64(s.goal)
	c.i64(s.done)
	c.floats(s.input.items())
	c.floats(s.output.items())
	c.u32(uint32(eng.Len()))
	c.bytes(eng.Bytes())
	return c.err
}

// policiesSpec renders recovery policies back into the ParsePolicies spec
// form, so they survive a checkpoint round-trip. Fault-injection plans are
// deliberately not persisted: re-injecting the same faults after a restore
// would double-fault a session that already absorbed them.
func policiesSpec(ps faults.Policies) string {
	var parts []string
	if ps.Default != (faults.Policy{}) {
		parts = append(parts, "default="+ps.Default.String())
	}
	names := make([]string, 0, len(ps.PerFilter))
	for n := range ps.PerFilter {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		parts = append(parts, n+"="+ps.PerFilter[n].String())
	}
	return strings.Join(parts, ",")
}

// sessImage is a decoded session checkpoint envelope.
type sessImage struct {
	fp            uint64
	id            uint64
	program       string
	source        string
	tenant        string
	onError       string
	profile       bool
	inited        bool
	goal, done    int64
	input, output []float64
	eng           []byte
}

func decodeSession(data []byte) (*sessImage, error) {
	c := &sessReader{data: data}
	magic, err := c.take(len(sessMagic))
	if err != nil {
		return nil, err
	}
	if string(magic) != sessMagic {
		return nil, fmt.Errorf("serve: not a session checkpoint (bad magic)")
	}
	version, err := c.u32()
	if err != nil {
		return nil, err
	}
	if version != sessVersion {
		return nil, fmt.Errorf("serve: session checkpoint version %d not supported (want %d)", version, sessVersion)
	}
	img := &sessImage{}
	if img.fp, err = c.u64(); err != nil {
		return nil, err
	}
	if img.id, err = c.u64(); err != nil {
		return nil, err
	}
	if img.program, err = c.str("program name"); err != nil {
		return nil, err
	}
	if img.source, err = c.str("source name"); err != nil {
		return nil, err
	}
	if img.tenant, err = c.str("tenant"); err != nil {
		return nil, err
	}
	if img.onError, err = c.str("policy spec"); err != nil {
		return nil, err
	}
	if img.profile, err = c.bool(); err != nil {
		return nil, err
	}
	if img.inited, err = c.bool(); err != nil {
		return nil, err
	}
	if img.goal, err = c.i64(); err != nil {
		return nil, err
	}
	if img.done, err = c.i64(); err != nil {
		return nil, err
	}
	if img.input, err = c.floats("input ring"); err != nil {
		return nil, err
	}
	if img.output, err = c.floats("output ring"); err != nil {
		return nil, err
	}
	n, err := c.count(1, "engine image")
	if err != nil {
		return nil, err
	}
	if img.eng, err = c.take(n); err != nil {
		return nil, err
	}
	if c.remaining() != 0 {
		return nil, fmt.Errorf("serve: %d trailing bytes after session checkpoint", c.remaining())
	}
	if img.done < 0 || img.goal < img.done {
		return nil, fmt.Errorf("serve: session checkpoint progress counters out of range (done %d, goal %d)", img.done, img.goal)
	}
	return img, nil
}

// SnapshotSummary reports what Server.Snapshot persisted.
type SnapshotSummary struct {
	Dir      string `json:"dir"`
	Sessions int    `json:"sessions"`
	Skipped  int    `json:"skipped"` // quarantined/closed sessions: terminal, not resumable
	Bytes    int64  `json:"bytes"`
}

// snapshotManifest is the MANIFEST.json written next to the session files.
type snapshotManifest struct {
	Schema   string   `json:"schema"`
	Sessions int      `json:"sessions"`
	Skipped  int      `json:"skipped"`
	Files    []string `json:"files"`
}

// SnapshotSchema tags the snapshot manifest document.
const SnapshotSchema = "streamit-serve-snapshot/v1"

// Snapshot persists every resident session's checkpoint into dir (one
// session-<id>.ckpt per session plus a manifest), quiescing each session
// in turn — the server keeps serving throughout. Quarantined sessions are
// skipped and counted. Stale session files from an earlier snapshot are
// removed after the new cut lands, so dir always holds exactly one
// coherent restore set. An empty dir selects Config.SnapshotDir.
func (srv *Server) Snapshot(dir string) (SnapshotSummary, error) {
	if dir == "" {
		dir = srv.cfg.SnapshotDir
	}
	if dir == "" {
		return SnapshotSummary{}, fmt.Errorf("serve: no snapshot directory configured")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return SnapshotSummary{}, err
	}
	stale := map[string]bool{}
	if old, err := filepath.Glob(filepath.Join(dir, "session-*.ckpt")); err == nil {
		for _, f := range old {
			stale[f] = true
		}
	}

	srv.mu.Lock()
	sessions := make([]*Session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		sessions = append(sessions, s)
	}
	srv.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].ID < sessions[j].ID })

	sum := SnapshotSummary{Dir: dir}
	man := snapshotManifest{Schema: SnapshotSchema}
	for _, s := range sessions {
		var buf bytes.Buffer
		if err := s.Checkpoint(&buf); err != nil {
			sum.Skipped++
			continue
		}
		name := fmt.Sprintf("session-%d.ckpt", s.ID)
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			return sum, err
		}
		delete(stale, path)
		sum.Sessions++
		sum.Bytes += int64(buf.Len())
		man.Files = append(man.Files, name)
	}
	for f := range stale {
		_ = os.Remove(f)
	}
	man.Sessions, man.Skipped = sum.Sessions, sum.Skipped
	mb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return sum, err
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), mb, 0o644); err != nil {
		return sum, err
	}
	srv.snapshotsTaken.Add(1)
	return sum, nil
}

// RestoreSummary reports what Server.Restore rebuilt.
type RestoreSummary struct {
	Dir      string   `json:"dir"`
	Restored int      `json:"restored"`
	Failed   []string `json:"failed,omitempty"` // per-file "name: reason"
}

// Restore rebuilds sessions from a Snapshot directory onto this server.
// Programs must already be loaded (the compile cache makes reloading the
// same source cheap and fingerprint-stable); each session is validated
// against the current version's structural fingerprint, stamped through
// the normal engine path, and resumes — with its original ID, fed input,
// undrained output, and remaining iteration goal — as if the process had
// never died. Individual session failures (unknown program, fingerprint
// mismatch, ID collision) are reported per file; the rest restore.
func (srv *Server) Restore(dir string) (RestoreSummary, error) {
	if dir == "" {
		dir = srv.cfg.SnapshotDir
	}
	if dir == "" {
		return RestoreSummary{}, fmt.Errorf("serve: no snapshot directory configured")
	}
	files, err := filepath.Glob(filepath.Join(dir, "session-*.ckpt"))
	if err != nil {
		return RestoreSummary{}, err
	}
	sort.Strings(files)
	sum := RestoreSummary{Dir: dir}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err == nil {
			err = srv.restoreSession(data)
		}
		if err != nil {
			sum.Failed = append(sum.Failed, fmt.Sprintf("%s: %v", filepath.Base(f), err))
			continue
		}
		sum.Restored++
	}
	return sum, nil
}

// restoreSession rebuilds one session from its checkpoint envelope.
func (srv *Server) restoreSession(data []byte) error {
	img, err := decodeSession(data)
	if err != nil {
		return err
	}
	var onError faults.Policies
	if img.onError != "" {
		if onError, err = faults.ParsePolicies(img.onError); err != nil {
			return err
		}
	}

	srv.mu.Lock()
	p := srv.programs[img.program]
	if p == nil {
		srv.mu.Unlock()
		return fmt.Errorf("serve: unknown program %q (load it before restoring)", img.program)
	}
	ver := p.versions[len(p.versions)-1]
	if ver.fp != img.fp {
		srv.mu.Unlock()
		return fmt.Errorf("serve: program %q fingerprint %016x does not match checkpoint %016x", img.program, ver.fp, img.fp)
	}
	if _, dup := srv.sessions[img.id]; dup {
		srv.mu.Unlock()
		return fmt.Errorf("serve: session id %d already open", img.id)
	}
	if len(srv.sessions) >= srv.cfg.MaxSessions {
		srv.mu.Unlock()
		srv.rejectedSessions.Add(1)
		return fmt.Errorf("%w (%d open)", ErrSessionLimit, srv.cfg.MaxSessions)
	}
	srv.mu.Unlock()

	s, err := srv.buildSession(ver, SessionOptions{
		Program: img.program,
		Source:  img.source,
		Tenant:  img.tenant,
		Profile: img.profile,
		OnError: onError,
	})
	if err != nil {
		return err
	}
	s.ID = img.id
	it, err := s.eng.RestoreCheckpoint(img.eng)
	if err != nil {
		return err
	}
	if it != img.done {
		return fmt.Errorf("serve: engine image iteration %d disagrees with session progress %d", it, img.done)
	}
	s.inited = img.inited
	s.goal, s.done = img.goal, img.done
	for _, v := range img.input {
		s.input.push(v)
	}
	for _, v := range img.output {
		s.output.push(v)
	}

	srv.mu.Lock()
	if _, dup := srv.sessions[s.ID]; dup {
		srv.mu.Unlock()
		return fmt.Errorf("serve: session id %d already open", s.ID)
	}
	if len(srv.sessions) >= srv.cfg.MaxSessions {
		srv.mu.Unlock()
		srv.rejectedSessions.Add(1)
		return fmt.Errorf("%w (%d open)", ErrSessionLimit, srv.cfg.MaxSessions)
	}
	srv.sessions[s.ID] = s
	if len(srv.sessions) > srv.peak {
		srv.peak = len(srv.sessions)
	}
	if s.ID > srv.nextSID {
		srv.nextSID = s.ID
	}
	ver.active.Add(1)
	srv.mu.Unlock()
	srv.restoredCount.Add(1)

	s.mu.Lock()
	s.kickLocked() // resume any iterations that were still owed
	s.mu.Unlock()
	return nil
}

// sessWriter serializes the envelope; the first write error sticks.
type sessWriter struct {
	w   io.Writer
	err error
}

func (c *sessWriter) bytes(b []byte) {
	if c.err == nil {
		_, c.err = c.w.Write(b)
	}
}

func (c *sessWriter) u8(v byte) { c.bytes([]byte{v}) }

func (c *sessWriter) bool(v bool) {
	if v {
		c.u8(1)
	} else {
		c.u8(0)
	}
}

func (c *sessWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	c.bytes(b[:])
}

func (c *sessWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.bytes(b[:])
}

func (c *sessWriter) i64(v int64)   { c.u64(uint64(v)) }
func (c *sessWriter) f64(v float64) { c.u64(math.Float64bits(v)) }

func (c *sessWriter) floats(vs []float64) {
	c.u32(uint32(len(vs)))
	for _, v := range vs {
		c.f64(v)
	}
}

func (c *sessWriter) str(s string) {
	c.u32(uint32(len(s)))
	c.bytes([]byte(s))
}

// sessReader consumes the envelope with hard bounds checks, mirroring the
// engine checkpoint decoder: every length is validated against the bytes
// that actually follow, so corrupt input fails cleanly instead of
// allocating.
type sessReader struct {
	data []byte
	off  int
}

func (c *sessReader) remaining() int { return len(c.data) - c.off }

func (c *sessReader) take(n int) ([]byte, error) {
	if n < 0 || c.remaining() < n {
		return nil, fmt.Errorf("serve: session checkpoint truncated at offset %d (want %d more bytes, have %d)", c.off, n, c.remaining())
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (c *sessReader) u8() (byte, error) {
	b, err := c.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (c *sessReader) bool() (bool, error) {
	v, err := c.u8()
	if err != nil {
		return false, err
	}
	if v > 1 {
		return false, fmt.Errorf("serve: session checkpoint flag %d out of range", v)
	}
	return v == 1, nil
}

func (c *sessReader) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (c *sessReader) u64() (uint64, error) {
	b, err := c.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (c *sessReader) i64() (int64, error) {
	v, err := c.u64()
	return int64(v), err
}

func (c *sessReader) f64() (float64, error) {
	v, err := c.u64()
	return math.Float64frombits(v), err
}

// count reads a u32 length and checks it against the bytes that must
// follow, so a corrupt length cannot trigger a huge allocation.
func (c *sessReader) count(elemSize int, what string) (int, error) {
	v, err := c.u32()
	if err != nil {
		return 0, err
	}
	n := int(v)
	if n*elemSize > c.remaining() {
		return 0, fmt.Errorf("serve: session checkpoint %s count %d exceeds remaining data", what, n)
	}
	return n, nil
}

func (c *sessReader) floats(what string) ([]float64, error) {
	n, err := c.count(8, what)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		if out[i], err = c.f64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (c *sessReader) str(what string) (string, error) {
	n, err := c.count(1, what)
	if err != nil {
		return "", err
	}
	b, err := c.take(n)
	return string(b), err
}
