package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// pool is the shared work-stealing worker pool every session's steady-state
// iterations run on. Each worker owns a deque: it pushes sessions that still
// have runnable work to its own tail (LIFO, cache-warm) and steals from the
// head of a victim's deque when its own runs dry. Newly runnable sessions
// enter through a global FIFO so admission order is roughly fair across
// tenants. Workers park on a condition variable when the whole pool is dry;
// a version counter closes the race between a failed scan and the park, so
// no submit is ever lost.
//
// With a batch timeout set, a watchdog goroutine samples every worker's
// heartbeat: a batch that overstays its deadline gets its session declared
// stuck, its worker written off as lost, and a replacement worker spawned —
// the pool keeps serving at full strength around a wedged kernel.
type pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	global  []*Session
	version uint64
	idle    int
	closed  bool
	nextID  int

	workers []*worker // live and lost; readers snapshot under mu

	timeout  time.Duration // batch deadline; 0 disables the watchdog
	watchQ   chan struct{} // closed to stop the watchdog
	watchWG  sync.WaitGroup
	stuck    atomic.Int64
	replaced atomic.Int64

	steals atomic.Int64
	parks  atomic.Int64
}

type worker struct {
	id   int
	p    *pool
	dq   deque
	hb   heartbeat
	lost atomic.Bool   // written off by the watchdog; exits after its batch
	done chan struct{} // closed when the scheduling loop returns
}

// heartbeat is the watchdog's view of what a worker is doing right now:
// the session whose batch it is running and since when. begin/end bracket
// runBatch; sample is the watchdog's racing read.
type heartbeat struct {
	mu    sync.Mutex
	s     *Session
	since time.Time
}

func (h *heartbeat) begin(s *Session) {
	h.mu.Lock()
	h.s, h.since = s, time.Now()
	h.mu.Unlock()
}

func (h *heartbeat) end() {
	h.mu.Lock()
	h.s = nil
	h.mu.Unlock()
}

func (h *heartbeat) sample() (*Session, time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.s == nil {
		return nil, 0
	}
	return h.s, time.Since(h.since)
}

// deque is a mutex-based work-stealing deque. The owner pushes and pops at
// the tail; thieves take from the head. Contention is negligible: the owner
// touches it once per batch and thieves only appear when their own deques
// are empty.
type deque struct {
	mu    sync.Mutex
	items []*Session
}

func (d *deque) pushTail(s *Session) {
	d.mu.Lock()
	d.items = append(d.items, s)
	d.mu.Unlock()
}

func (d *deque) popTail() *Session {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return nil
	}
	s := d.items[n-1]
	d.items[n-1] = nil
	d.items = d.items[:n-1]
	return s
}

func (d *deque) stealHead() *Session {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return nil
	}
	s := d.items[0]
	copy(d.items, d.items[1:])
	d.items[len(d.items)-1] = nil
	d.items = d.items[:len(d.items)-1]
	return s
}

func newPool(workers int, timeout time.Duration) *pool {
	p := &pool{timeout: timeout}
	p.cond = sync.NewCond(&p.mu)
	// Workers start consuming p.workers (via workerList) the moment the
	// first one spawns, so even construction appends need the lock.
	p.mu.Lock()
	for i := 0; i < workers; i++ {
		p.spawnLocked()
	}
	p.mu.Unlock()
	if timeout > 0 {
		p.watchQ = make(chan struct{})
		p.watchWG.Add(1)
		go p.watch()
	}
	return p
}

// spawnLocked starts one worker. Callers hold p.mu.
func (p *pool) spawnLocked() {
	w := &worker{id: p.nextID, p: p, done: make(chan struct{})}
	p.nextID++
	p.workers = append(p.workers, w)
	go func() {
		defer close(w.done)
		p.run(w)
	}()
}

// workerList snapshots the worker slice. Appends only ever replace the
// slice header under p.mu, so a snapshot stays valid while new workers
// land.
func (p *pool) workerList() []*worker {
	p.mu.Lock()
	ws := p.workers
	p.mu.Unlock()
	return ws
}

// submit enqueues a session that just became runnable. The caller must hold
// the session's scheduled flag (see Session.kick): a session is in at most
// one place — the global queue or one worker's deque — at any time.
func (p *pool) submit(s *Session) {
	p.mu.Lock()
	p.global = append(p.global, s)
	p.version++
	if p.idle > 0 {
		p.cond.Signal()
	}
	p.mu.Unlock()
}

// bump advertises that some worker's deque gained an item, waking a parked
// worker to come steal it.
func (p *pool) bump() {
	p.mu.Lock()
	p.version++
	if p.idle > 0 {
		p.cond.Signal()
	}
	p.mu.Unlock()
}

// close stops the watchdog and joins every worker that is not written off
// as lost. A lost worker is wedged inside a kernel by definition; its
// goroutine exits on its own if the kernel ever returns.
func (p *pool) close() {
	if p.watchQ != nil {
		close(p.watchQ)
		p.watchWG.Wait()
	}
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	ws := p.workers
	p.mu.Unlock()
	for _, w := range ws {
		if w.lost.Load() {
			continue
		}
		<-w.done
	}
}

// steal scans the other workers round-robin from w's successor and takes
// the head of the first non-empty deque. Lost workers' deques are empty —
// the watchdog rescued them — but are scanned harmlessly regardless.
func (p *pool) steal(w *worker) *Session {
	ws := p.workerList()
	n := len(ws)
	start := w.id % n
	for i := 1; i < n; i++ {
		v := ws[(start+i)%n]
		if v == w {
			continue
		}
		if s := v.dq.stealHead(); s != nil {
			p.steals.Add(1)
			return s
		}
	}
	return nil
}

// run is one worker's scheduling loop: global queue, own deque, steal,
// park. The version counter read at the top of each pass makes parking
// sound — if any submit or bump landed between the scan and the re-lock,
// the version moved and the worker rescans instead of sleeping.
func (p *pool) run(w *worker) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		v := p.version
		var s *Session
		if len(p.global) > 0 {
			s = p.global[0]
			copy(p.global, p.global[1:])
			p.global[len(p.global)-1] = nil
			p.global = p.global[:len(p.global)-1]
		}
		p.mu.Unlock()

		if s == nil {
			s = w.dq.popTail()
		}
		if s == nil {
			s = p.steal(w)
		}
		if s == nil {
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				return
			}
			if p.version == v && len(p.global) == 0 {
				p.idle++
				p.parks.Add(1)
				p.cond.Wait()
				p.idle--
			}
			p.mu.Unlock()
			continue
		}

		w.hb.begin(s)
		runnable := s.runBatch()
		w.hb.end()

		if w.lost.Load() {
			// The watchdog wrote this worker off while the batch overstayed
			// its deadline (the session is already marked stuck, so runnable
			// is false for it) — but if a replacement raced us here with a
			// healthy session, hand it back rather than strand it.
			if runnable {
				p.submit(s)
			}
			return
		}
		if runnable {
			// Still runnable: back on our own tail. Advertise it so an idle
			// worker can steal if we are the bottleneck.
			w.dq.pushTail(s)
			p.bump()
		}
	}
}
