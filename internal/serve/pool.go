package serve

import (
	"sync"
	"sync/atomic"
)

// pool is the shared work-stealing worker pool every session's steady-state
// iterations run on. Each worker owns a deque: it pushes sessions that still
// have runnable work to its own tail (LIFO, cache-warm) and steals from the
// head of a victim's deque when its own runs dry. Newly runnable sessions
// enter through a global FIFO so admission order is roughly fair across
// tenants. Workers park on a condition variable when the whole pool is dry;
// a version counter closes the race between a failed scan and the park, so
// no submit is ever lost.
type pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	global  []*Session
	version uint64
	idle    int
	closed  bool

	workers []*worker
	wg      sync.WaitGroup

	steals atomic.Int64
	parks  atomic.Int64
}

type worker struct {
	id int
	p  *pool
	dq deque
}

// deque is a mutex-based work-stealing deque. The owner pushes and pops at
// the tail; thieves take from the head. Contention is negligible: the owner
// touches it once per batch and thieves only appear when their own deques
// are empty.
type deque struct {
	mu    sync.Mutex
	items []*Session
}

func (d *deque) pushTail(s *Session) {
	d.mu.Lock()
	d.items = append(d.items, s)
	d.mu.Unlock()
}

func (d *deque) popTail() *Session {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return nil
	}
	s := d.items[n-1]
	d.items[n-1] = nil
	d.items = d.items[:n-1]
	return s
}

func (d *deque) stealHead() *Session {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return nil
	}
	s := d.items[0]
	copy(d.items, d.items[1:])
	d.items[len(d.items)-1] = nil
	d.items = d.items[:len(d.items)-1]
	return s
}

func newPool(workers int) *pool {
	p := &pool{}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		w := &worker{id: i, p: p}
		p.workers = append(p.workers, w)
	}
	for _, w := range p.workers {
		p.wg.Add(1)
		go func(w *worker) {
			defer p.wg.Done()
			p.run(w)
		}(w)
	}
	return p
}

// submit enqueues a session that just became runnable. The caller must hold
// the session's scheduled flag (see Session.kick): a session is in at most
// one place — the global queue or one worker's deque — at any time.
func (p *pool) submit(s *Session) {
	p.mu.Lock()
	p.global = append(p.global, s)
	p.version++
	if p.idle > 0 {
		p.cond.Signal()
	}
	p.mu.Unlock()
}

// bump advertises that some worker's deque gained an item, waking a parked
// worker to come steal it.
func (p *pool) bump() {
	p.mu.Lock()
	p.version++
	if p.idle > 0 {
		p.cond.Signal()
	}
	p.mu.Unlock()
}

func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// steal scans the other workers round-robin from w's successor and takes
// the head of the first non-empty deque.
func (p *pool) steal(w *worker) *Session {
	n := len(p.workers)
	for i := 1; i < n; i++ {
		v := p.workers[(w.id+i)%n]
		if s := v.dq.stealHead(); s != nil {
			p.steals.Add(1)
			return s
		}
	}
	return nil
}

// run is one worker's scheduling loop: global queue, own deque, steal,
// park. The version counter read at the top of each pass makes parking
// sound — if any submit or bump landed between the scan and the re-lock,
// the version moved and the worker rescans instead of sleeping.
func (p *pool) run(w *worker) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		v := p.version
		var s *Session
		if len(p.global) > 0 {
			s = p.global[0]
			copy(p.global, p.global[1:])
			p.global[len(p.global)-1] = nil
			p.global = p.global[:len(p.global)-1]
		}
		p.mu.Unlock()

		if s == nil {
			s = w.dq.popTail()
		}
		if s == nil {
			s = p.steal(w)
		}
		if s == nil {
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				return
			}
			if p.version == v && len(p.global) == 0 {
				p.idle++
				p.parks.Add(1)
				p.cond.Wait()
				p.idle--
			}
			p.mu.Unlock()
			continue
		}

		if s.runBatch() {
			// Still runnable: back on our own tail. Advertise it so an idle
			// worker can steal if we are the bottleneck.
			w.dq.pushTail(s)
			p.bump()
		}
	}
}
