package serve

import (
	"errors"
	"fmt"
	"io"
	"time"

	"streamit/internal/exec"
	"streamit/internal/faults"
	"streamit/internal/obs"
	"streamit/internal/wfunc"

	"sync"
)

// Serving errors. The HTTP layer maps these onto status codes (429 for
// admission, 409 for closed, 503 for draining).
var (
	// ErrSessionLimit rejects session creation past Config.MaxSessions.
	ErrSessionLimit = errors.New("serve: session limit reached")
	// ErrIterBacklog rejects Run calls that would exceed
	// Config.MaxQueuedIters outstanding iterations on one session.
	ErrIterBacklog = errors.New("serve: iteration backlog limit reached")
	// ErrClosed reports an operation on a closed session.
	ErrClosed = errors.New("serve: session closed")
	// ErrTimeout reports a WaitDone deadline expiry.
	ErrTimeout = errors.New("serve: wait timed out")
	// ErrDraining rejects session creation while Server.Drain is stopping
	// admission for a graceful shutdown.
	ErrDraining = errors.New("serve: server is draining")
)

// SessionOptions configures one session at creation.
type SessionOptions struct {
	// Program names a loaded program; the session pins its latest version.
	Program string
	// Source optionally names a source filter whose work is replaced by
	// the session's fed input queue: each firing pushes the filter's push
	// rate worth of items fed via Feed. Empty runs the program
	// self-contained (its own sources generate data).
	Source string
	// Tenant tags the session for per-tenant stats aggregation.
	Tenant string
	// Profile attaches a per-session obs profiler.
	Profile bool
	// Faults schedules deterministic fault injection inside this session's
	// engine (nil: none). Injection plans are test harnesses; they are not
	// persisted across Checkpoint/Restore.
	Faults *faults.Plan
	// OnError maps this session's filters to recovery policies (retry /
	// skip / restart with firing rollback). The zero value fails: the
	// first kernel error quarantines the session. Policies survive
	// Checkpoint/Restore.
	OnError faults.Policies
}

// Session is one tenant's independent instance of a compiled program:
// private tapes, filter state, and VM frames stamped from the program
// version's shared artifact bundle, plus bounded input/output queues. A
// session costs a few KB idle; the server multiplexes thousands onto the
// worker pool. All exported methods are safe for concurrent use.
type Session struct {
	// ID is the server-unique session identifier.
	ID  uint64
	srv *Server
	ver *version
	opt SessionOptions

	// Input geometry when opt.Source is set: items consumed per source
	// firing, per steady iteration, and by the init schedule.
	inPerFiring int
	inPerIter   int
	inPerInit   int

	mu          sync.Mutex
	eng         engineRunner
	inited      bool
	input       ringf // fed items awaiting consumption
	output      ringf // produced items awaiting drain
	goal        int64 // steady iterations requested
	done        int64 // steady iterations completed
	scheduled   bool  // true while queued or running on the pool
	paused      int   // pause requests (checkpoint quiesce); >0 blocks dispatch
	closed      bool
	quarantined bool // terminal error counted in server quarantine stats
	err         error
	waitCh      chan struct{} // closed and remade on every state change

	// Worker-local staging. Only the worker running a batch touches these,
	// and the scheduled flag guarantees one worker at a time.
	stage    []float64 // inputs for the in-flight batch
	stagePos int
	stageOut []float64 // outputs captured by sink taps during the batch

	prof *obs.Profiler
}

// engineRunner is the slice of *exec.Engine a session drives. Narrowed to
// an interface only to keep session logic testable.
type engineRunner interface {
	RunInit() error
	RunSteady(iters int) error
	Profile() *obs.Profiler
	WriteCheckpoint(w io.Writer, iteration int64) error
	RestoreCheckpoint(data []byte) (int64, error)
}

// ringf is a growable float64 ring buffer (FIFO).
type ringf struct {
	buf  []float64
	head int
	size int
}

func (r *ringf) len() int { return r.size }

func (r *ringf) push(v float64) {
	if r.size == len(r.buf) {
		next := make([]float64, max(8, 2*len(r.buf)))
		for i := 0; i < r.size; i++ {
			next[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = next
		r.head = 0
	}
	r.buf[(r.head+r.size)%len(r.buf)] = v
	r.size++
}

func (r *ringf) pop() float64 {
	v := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.size--
	return v
}

// items copies the buffered values in FIFO order without consuming them.
func (r *ringf) items() []float64 {
	out := make([]float64, r.size)
	for i := range out {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}

// Run requests n more steady-state iterations. Admission control bounds the
// backlog: if the session would hold more than MaxQueuedIters undone
// iterations, the request is rejected whole with ErrIterBacklog.
func (s *Session) Run(n int) error {
	if n <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.err != nil {
		return s.err
	}
	if s.goal-s.done+int64(n) > int64(s.srv.cfg.MaxQueuedIters) {
		s.srv.rejectedIters.Add(int64(n))
		return fmt.Errorf("%w (%d queued, max %d)", ErrIterBacklog, s.goal-s.done, s.srv.cfg.MaxQueuedIters)
	}
	s.goal += int64(n)
	s.kickLocked()
	return nil
}

// Feed appends input items for the session's overridden source, returning
// how many were accepted; the rest are the caller's to retry once the
// session consumes some (bounded by Config.MaxBufferedIn).
func (s *Session) Feed(vals []float64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.opt.Source == "" {
		return 0, fmt.Errorf("serve: session %d has no fed source", s.ID)
	}
	room := s.srv.cfg.MaxBufferedIn - s.input.len()
	n := min(room, len(vals))
	for _, v := range vals[:n] {
		s.input.push(v)
	}
	if n > 0 {
		s.kickLocked()
	}
	return n, nil
}

// Drain removes and returns up to max buffered output items (max <= 0
// drains everything buffered). Freeing output room can unblock the
// session's backpressure, so Drain reschedules it.
func (s *Session) Drain(max int) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.output.len()
	if max > 0 && max < n {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = s.output.pop()
	}
	s.kickLocked()
	return out
}

// Buffered reports the current input and output queue depths.
func (s *Session) Buffered() (in, out int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.input.len(), s.output.len()
}

// Progress reports completed and requested steady iterations.
func (s *Session) Progress() (done, goal int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done, s.goal
}

// Err returns the session's terminal execution error, if any.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Quarantined reports whether the session hit a terminal error and was
// isolated from the pool. Its buffered output stays drainable.
func (s *Session) Quarantined() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// failLocked records a terminal session error (the first one wins — a
// stuck verdict must not be overwritten by the batch eventually limping
// home) and counts the quarantine once. Callers hold s.mu.
func (s *Session) failLocked(err error) {
	if s.err == nil {
		s.err = err
	}
	if !s.quarantined {
		s.quarantined = true
		s.srv.noteQuarantine(s.opt.Tenant)
	}
	s.notifyLocked()
}

// Profile returns the session's profiler (nil unless Profile was set).
func (s *Session) Profile() *obs.Profiler { return s.prof }

// Close tears the session down: it stops scheduling, unpins its program
// version (letting a draining version retire), and frees its slot.
// Buffered output is discarded. Idempotent.
func (s *Session) Close() { s.srv.closeSession(s) }

// WaitDone blocks until the session has completed at least n steady
// iterations, failed, closed, or the timeout elapses.
func (s *Session) WaitDone(n int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		switch {
		case s.done >= n:
			s.mu.Unlock()
			return nil
		case s.err != nil:
			err := s.err
			s.mu.Unlock()
			return err
		case s.closed:
			s.mu.Unlock()
			return ErrClosed
		}
		ch := s.waitCh
		s.mu.Unlock()
		rem := time.Until(deadline)
		if rem <= 0 {
			return ErrTimeout
		}
		t := time.NewTimer(rem)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			return ErrTimeout
		}
	}
}

// notifyLocked wakes every WaitDone waiter. Callers hold s.mu.
func (s *Session) notifyLocked() {
	close(s.waitCh)
	s.waitCh = make(chan struct{})
}

// kickLocked schedules the session onto the pool if it has dispatchable
// work and is not already queued or running. Callers hold s.mu.
func (s *Session) kickLocked() {
	if s.scheduled || s.closed || s.err != nil || s.paused > 0 {
		return
	}
	if s.dispatchableLocked() == 0 {
		return
	}
	s.scheduled = true
	s.srv.pool.submit(s)
}

// dispatchableLocked reports how many steady iterations could run right
// now, bounded by the requested goal, available fed input, and output
// buffer room (backpressure: a slow consumer throttles only this session).
// Callers hold s.mu.
func (s *Session) dispatchableLocked() int {
	pending := s.goal - s.done
	if pending <= 0 {
		return 0
	}
	k := int(pending)
	if s.opt.Source != "" {
		avail := s.input.len()
		if !s.inited {
			avail -= s.inPerInit
		}
		if s.inPerIter > 0 {
			k = min(k, avail/s.inPerIter)
		} else if avail < 0 {
			k = 0
		}
	}
	if s.ver.outPerIter > 0 {
		room := s.srv.cfg.MaxBufferedOut - s.output.len()
		if !s.inited {
			room -= s.ver.outPerInit
		}
		k = min(k, room/s.ver.outPerIter)
	}
	return max(k, 0)
}

// runBatch executes up to Config.Batch dispatchable iterations on the
// calling pool worker and reports whether the session is still runnable
// (in which case the worker requeues it). The scheduled flag is the
// exclusivity token: exactly one worker runs a session at a time, so the
// engine — single-owner by design — needs no lock of its own.
//
// Failure containment: engine errors (including kernel panics the engine
// already converts to *exec.ExecError) and any panic that escapes the
// engine or the staging bookkeeping quarantine this one session; the pool
// worker survives to serve every other tenant.
func (s *Session) runBatch() bool {
	k, runInit, ok := s.beginBatch()
	if !ok {
		return false
	}

	var lat [maxBatch]int64
	completed, initDone, err := s.runEngine(runInit, k, &lat)

	s.mu.Lock()
	if initDone {
		s.inited = true
	}
	if err != nil {
		s.failLocked(err)
	}
	if !s.closed && len(s.stageOut) > 0 {
		for _, v := range s.stageOut {
			s.output.push(v)
		}
	}
	s.stageOut = s.stageOut[:0]
	s.done += int64(completed)
	runnable := s.err == nil && !s.closed && s.paused == 0 && s.dispatchableLocked() > 0
	if !runnable {
		s.scheduled = false
	}
	s.notifyLocked()
	s.mu.Unlock()

	if completed > 0 {
		s.srv.recordIters(s.opt.Tenant, lat[:completed])
	}
	return runnable
}

// beginBatch claims up to Config.Batch dispatchable iterations and stages
// their fed input under the session lock. ok=false means there is nothing
// to run and the scheduled flag has been released. A panic out of the
// staging bookkeeping (a session-accounting bug) is contained here: it
// quarantines the session instead of killing the pool worker while the
// lock is held.
func (s *Session) beginBatch() (k int, runInit bool, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil || s.paused > 0 {
		s.scheduled = false
		s.notifyLocked() // waitUnscheduled blocks on this transition
		return 0, false, false
	}
	k = min(s.dispatchableLocked(), s.srv.cfg.Batch)
	if k == 0 {
		s.scheduled = false
		s.notifyLocked()
		return 0, false, false
	}
	runInit = !s.inited
	var stageErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				stageErr = containedPanic(r)
			}
		}()
		if s.opt.Source != "" {
			want := k * s.inPerIter
			if runInit {
				want += s.inPerInit
			}
			s.stage = s.stage[:0]
			for i := 0; i < want; i++ {
				s.stage = append(s.stage, s.input.pop())
			}
			s.stagePos = 0
		}
	}()
	if stageErr != nil {
		s.failLocked(stageErr) // notifies: waitUnscheduled waiters see the transition
		s.scheduled = false
		return 0, false, false
	}
	return k, runInit, true
}

// runEngine drives the engine for one claimed batch without holding the
// session lock, recovering any panic that escapes the engine into a
// structured error (last-resort containment — the engine already converts
// kernel panics into *exec.ExecError, so anything caught here is a bug in
// a native work function's surroundings or the tap/override plumbing).
func (s *Session) runEngine(runInit bool, k int, lat *[maxBatch]int64) (completed int, initDone bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = containedPanic(r)
		}
	}()
	if runInit {
		if err = s.eng.RunInit(); err != nil {
			return
		}
		initDone = true
	}
	for completed < k {
		t0 := time.Now()
		if err = s.eng.RunSteady(1); err != nil {
			return
		}
		lat[completed] = int64(time.Since(t0))
		completed++
	}
	return
}

// containedPanic converts a recovered panic value into the structured
// error the session surfaces via Err, stats, and the HTTP API.
func containedPanic(r any) error {
	switch v := r.(type) {
	case *exec.ExecError:
		return v
	case error:
		return &exec.ExecError{Op: "contained panic", Err: v}
	default:
		return &exec.ExecError{Op: "contained panic", Err: fmt.Errorf("%v", v)}
	}
}

// pause blocks future dispatch of the session (counted, so concurrent
// pausers compose); resume re-enables it and reschedules pending work.
func (s *Session) pause() {
	s.mu.Lock()
	s.paused++
	s.mu.Unlock()
}

func (s *Session) resume() {
	s.mu.Lock()
	s.paused--
	s.kickLocked()
	s.mu.Unlock()
}

// waitUnscheduled blocks until no pool worker holds the session (the
// quiesce point a paused session converges to) or the timeout elapses.
func (s *Session) waitUnscheduled(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		if !s.scheduled {
			s.mu.Unlock()
			return nil
		}
		ch := s.waitCh
		s.mu.Unlock()
		rem := time.Until(deadline)
		if rem <= 0 {
			return ErrTimeout
		}
		t := time.NewTimer(rem)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			return ErrTimeout
		}
	}
}

// sourceOverride returns the work-function replacement for the session's
// fed source: each firing pushes inPerFiring staged items. The batch
// staging in runBatch guarantees the stage holds exactly enough.
func (s *Session) sourceOverride() func(in, out wfunc.Tape) {
	return func(_, out wfunc.Tape) {
		for i := 0; i < s.inPerFiring; i++ {
			out.Push(s.stage[s.stagePos])
			s.stagePos++
		}
	}
}
