package serve

import (
	"fmt"
	"time"
)

// StuckError is a session's terminal error when the stuck-session watchdog
// declares one of its batches wedged: a single dispatch held a pool worker
// past Config.BatchTimeout. The diagnosis is worker-attributed, like the
// exec watchdog's blocked-state snapshots: it names which worker was lost
// to the batch and for how long, so an operator can tell a wedged kernel
// from a merely slow one.
type StuckError struct {
	Worker    int           // pool worker the batch wedged
	SessionID uint64        // session whose batch overstayed
	Program   string        // program the session runs
	Tenant    string        // tenant tag, for attribution in stats
	Elapsed   time.Duration // how long the batch had been running at detection
	Timeout   time.Duration // the configured BatchTimeout it exceeded
}

func (e *StuckError) Error() string {
	return fmt.Sprintf("serve: session %d (%s, tenant %q) stuck: batch held worker %d for %v (timeout %v)",
		e.SessionID, e.Program, e.Tenant, e.Worker, e.Elapsed.Round(time.Millisecond), e.Timeout)
}

// markOverdue is the watchdog's atomic check-and-claim: if the worker is
// still inside a batch that has outlived timeout, it is written off as
// lost and the wedged session returned. Holding h.mu across the claim
// closes the race with a batch that completes between sample and verdict —
// end() and markOverdue serialize on the same lock, so a worker declared
// lost is provably still inside the overdue batch.
func (h *heartbeat) markOverdue(w *worker, timeout time.Duration) (*Session, time.Duration, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.s == nil {
		return nil, 0, false
	}
	elapsed := time.Since(h.since)
	if elapsed < timeout {
		return nil, 0, false
	}
	if !w.lost.CompareAndSwap(false, true) {
		return nil, 0, false
	}
	return h.s, elapsed, true
}

// watch is the stuck-session watchdog loop: it samples every worker's
// heartbeat a few times per timeout window and writes off any worker whose
// batch has overstayed.
func (p *pool) watch() {
	defer p.watchWG.Done()
	tick := p.timeout / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-p.watchQ:
			return
		case <-t.C:
		}
		for _, w := range p.workerList() {
			if w.lost.Load() {
				continue
			}
			if s, elapsed, ok := w.hb.markOverdue(w, p.timeout); ok {
				p.declareStuck(w, s, elapsed)
			}
		}
	}
}

// declareStuck quarantines the wedged session, rescues the lost worker's
// queued sessions back onto the global queue, and spawns a replacement
// worker so the pool keeps its configured parallelism. The lost worker's
// goroutine exits on its own if its kernel ever returns.
func (p *pool) declareStuck(w *worker, s *Session, elapsed time.Duration) {
	s.markStuck(w.id, elapsed, p.timeout)
	for {
		q := w.dq.stealHead()
		if q == nil {
			break
		}
		p.submit(q)
	}
	p.stuck.Add(1)
	p.mu.Lock()
	if !p.closed {
		p.spawnLocked()
		p.replaced.Add(1)
	}
	p.mu.Unlock()
}

// markStuck records the watchdog's verdict as the session's terminal
// error. First error wins: if the batch later limps home with its own
// error, the stuck diagnosis stands.
func (s *Session) markStuck(worker int, elapsed, timeout time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.srv.stuckCount.Add(1)
	s.failLocked(&StuckError{
		Worker:    worker,
		SessionID: s.ID,
		Program:   s.ver.name,
		Tenant:    s.opt.Tenant,
		Elapsed:   elapsed,
		Timeout:   timeout,
	})
}
