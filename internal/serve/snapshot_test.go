package serve

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"streamit/internal/apps"
	"streamit/internal/faults"
	"streamit/internal/ir"
)

// restartCycle snapshots srv to dir, closes it (the "kill"), builds a new
// server with the same config, reloads via load, and restores. It returns
// the new server, already registered for cleanup.
func restartCycle(t *testing.T, srv *Server, cfg Config, dir string, load func(*Server)) *Server {
	t.Helper()
	sum, err := srv.Snapshot(dir)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if sum.Skipped != 0 {
		t.Fatalf("Snapshot skipped %d sessions", sum.Skipped)
	}
	srv.Close()
	srv2 := newTestServer(t, cfg)
	load(srv2)
	rs, err := srv2.Restore(dir)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if len(rs.Failed) > 0 {
		t.Fatalf("Restore failed sessions: %v", rs.Failed)
	}
	if rs.Restored != sum.Sessions {
		t.Fatalf("restored %d of %d snapshotted sessions", rs.Restored, sum.Sessions)
	}
	return srv2
}

// TestCheckpointRestoreBitIdentical is the core kill/restart proof for a
// fed session: run half the iterations, snapshot, kill the server, restore
// on a fresh one, run the rest — the concatenated output must be
// bit-identical to an uninterrupted standalone run over the same feed.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	const iters = 24
	feed := make([]float64, iters)
	for i := range feed {
		feed[i] = float64(i)*1.25 - 7
	}
	cfg := Config{Workers: 2}
	dir := t.TempDir()

	srv := New(cfg)
	loadTest(t, srv, "t", 3.0)
	s, err := srv.NewSession(SessionOptions{Program: "t", Source: "src", Tenant: "acme"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if _, err := s.Feed(feed[:iters/2+3]); err != nil { // 3 fed-but-unrun items must survive
		t.Fatalf("Feed: %v", err)
	}
	if err := s.Run(iters / 2); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.WaitDone(iters/2, 5*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	firstHalf := s.Drain(4) // leave undrained output in the buffer too
	id := s.ID

	srv2 := restartCycle(t, srv, cfg, dir, func(sv *Server) { loadTest(t, sv, "t", 3.0) })
	s2 := srv2.Session(id)
	if s2 == nil {
		t.Fatal("restored session not resolvable by its old ID")
	}
	if s2.opt.Tenant != "acme" || s2.opt.Source != "src" {
		t.Fatalf("restored options lost: tenant=%q source=%q", s2.opt.Tenant, s2.opt.Source)
	}
	if _, err := s2.Feed(feed[iters/2+3:]); err != nil {
		t.Fatalf("Feed after restore: %v", err)
	}
	if err := s2.Run(iters - iters/2); err != nil {
		t.Fatalf("Run after restore: %v", err)
	}
	if err := s2.WaitDone(iters, 5*time.Second); err != nil {
		t.Fatalf("WaitDone after restore: %v", err)
	}
	got := append(firstHalf, s2.Drain(0)...)

	want := standaloneRun(t, testProgram(3.0), iters, feed)
	if len(got) != len(want) {
		t.Fatalf("got %d items, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("item %d: got %v, want %v (not bit-identical across restart)", i, got[i], want[i])
		}
	}
}

// TestKillRestartMatrix is the acceptance proof at suite scale: one
// session per benchmark app, snapshotted UNDER LOAD (iterations still
// queued, workers mid-flight), the server killed, a fresh server restoring
// all twelve — and every session's full output bit-identical to an
// uninterrupted sequential run.
func TestKillRestartMatrix(t *testing.T) {
	suite := apps.Suite()
	const iters = 12
	cfg := Config{Workers: 4, MaxBufferedOut: 1 << 20}
	dir := t.TempDir()

	load := func(sv *Server) {
		t.Helper()
		for _, a := range suite {
			if _, err := sv.LoadProgram(a.Name, a.Build()); err != nil {
				t.Fatalf("LoadProgram(%s): %v", a.Name, err)
			}
		}
	}
	srv := New(cfg)
	load(srv)

	ids := make(map[string]uint64, len(suite))
	for _, a := range suite {
		s, err := srv.NewSession(SessionOptions{Program: a.Name, Tenant: a.Name})
		if err != nil {
			t.Fatalf("NewSession(%s): %v", a.Name, err)
		}
		ids[a.Name] = s.ID
		// Request the FULL goal and snapshot while the pool is still
		// chewing: Checkpoint quiesces each session mid-flight.
		if err := s.Run(iters); err != nil {
			t.Fatalf("Run(%s): %v", a.Name, err)
		}
	}

	srv2 := restartCycle(t, srv, cfg, dir, load)
	if got := srv2.Stats().Sessions.Restored; got != int64(len(suite)) {
		t.Fatalf("Restored counter = %d, want %d", got, len(suite))
	}
	for _, a := range suite {
		s := srv2.Session(ids[a.Name])
		if s == nil {
			t.Fatalf("%s: session lost across restart", a.Name)
		}
		// The goal is part of the checkpoint: restored sessions resume on
		// their own, no new Run needed.
		if err := s.WaitDone(iters, 30*time.Second); err != nil {
			t.Fatalf("%s: WaitDone after restore: %v", a.Name, err)
		}
		got := s.Drain(0)
		want := standaloneRun(t, a.Build(), iters, nil)
		if len(got) != len(want) {
			t.Fatalf("%s: %d items, want %d", a.Name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s item %d: got %v, want %v (not bit-identical)", a.Name, i, got[i], want[i])
			}
		}
	}
}

// TestRestoreFingerprintMismatch: a checkpoint only restores into a
// structurally identical program. A same-named program with a different
// graph must be rejected per-file, not corrupt the session.
func TestRestoreFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1}
	srv := New(cfg)
	loadTest(t, srv, "t", 2.0)
	s, err := srv.NewSession(SessionOptions{Program: "t"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if err := s.Run(4); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.WaitDone(4, 5*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	if _, err := srv.Snapshot(dir); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	srv.Close()

	// Same name, structurally different graph (extra gain stage). The
	// fingerprint ignores constants, so a changed gain VALUE would match —
	// a changed TOPOLOGY must not.
	srv2 := newTestServer(t, cfg)
	other := &ir.Program{Name: "T", Top: ir.Pipe("TP",
		apps.Source("src"), apps.Gain("g", 2.0), apps.Gain("g2", 1.0), apps.Sink("out", 1))}
	if _, err := srv2.LoadProgram("t", other); err != nil {
		t.Fatalf("LoadProgram: %v", err)
	}
	rs, err := srv2.Restore(dir)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if rs.Restored != 0 || len(rs.Failed) != 1 {
		t.Fatalf("Restored=%d Failed=%v, want the mismatch rejected", rs.Restored, rs.Failed)
	}
	if !strings.Contains(rs.Failed[0], "fingerprint") {
		t.Fatalf("failure reason %q does not name the fingerprint", rs.Failed[0])
	}
}

// TestSnapshotSkipsQuarantined: a quarantined session has no coherent
// engine state to persist — Snapshot must skip it and say so, while
// healthy sessions in the same sweep are written.
func TestSnapshotSkipsQuarantined(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, Config{Workers: 2})
	loadTest(t, srv, "t", 2.0)
	plan, err := faults.ParsePlan("panic:g@3")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	bad, err := srv.NewSession(SessionOptions{Program: "t", Faults: plan})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	good, err := srv.NewSession(SessionOptions{Program: "t"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if err := bad.Run(8); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := good.Run(8); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := bad.WaitDone(8, 5*time.Second); err == nil {
		t.Fatal("faulty session completed")
	}
	if err := good.WaitDone(8, 5*time.Second); err != nil {
		t.Fatalf("healthy session: %v", err)
	}
	sum, err := srv.Snapshot(dir)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if sum.Sessions != 1 || sum.Skipped != 1 {
		t.Fatalf("Sessions=%d Skipped=%d, want 1/1", sum.Sessions, sum.Skipped)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "session-*.ckpt"))
	if len(files) != 1 {
		t.Fatalf("%d checkpoint files on disk, want 1: %v", len(files), files)
	}
	if want := fmt.Sprintf("session-%d.ckpt", good.ID); filepath.Base(files[0]) != want {
		t.Fatalf("wrote %s, want %s", filepath.Base(files[0]), want)
	}
}

// TestDrain covers the graceful-shutdown primitive: it completes once the
// fleet is quiet, rejects new sessions while draining, and times out if a
// session can never finish.
func TestDrain(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 2})
	loadTest(t, srv, "t", 2.0)
	s, err := srv.NewSession(SessionOptions{Program: "t"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if err := s.Run(64); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := srv.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if done, goal := s.Progress(); done != goal {
		t.Fatalf("Drain returned with %d/%d iterations done", done, goal)
	}
	if !srv.Draining() {
		t.Fatal("server not marked draining")
	}
	if _, err := srv.NewSession(SessionOptions{Program: "t"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("NewSession while draining: err = %v, want ErrDraining", err)
	}
	if !srv.Stats().Draining {
		t.Fatal("Stats.Draining = false")
	}
}

func TestDrainTimeout(t *testing.T) {
	release := make(chan struct{})
	srv := newTestServer(t, Config{Workers: 2})
	// Registered after newTestServer: LIFO cleanup unwedges the kernel
	// before srv.Close joins its (not-lost, no watchdog) worker.
	t.Cleanup(func() { close(release) })
	if _, err := srv.LoadProgram("blocky", blockingProgram(release)); err != nil {
		t.Fatalf("LoadProgram: %v", err)
	}
	// A session wedged inside a kernel (no watchdog armed) never goes
	// quiet: Drain must give up at the deadline, not hang.
	s, err := srv.NewSession(SessionOptions{Program: "blocky"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if err := s.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := srv.Drain(50 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Drain = %v, want ErrTimeout", err)
	}
}

// TestSnapshotStaleFileRemoval: checkpoints for sessions that no longer
// exist are removed by the next sweep, so a restore never resurrects a
// closed session.
func TestSnapshotStaleFileRemoval(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, Config{Workers: 1})
	loadTest(t, srv, "t", 2.0)
	s1, err := srv.NewSession(SessionOptions{Program: "t"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s2, err := srv.NewSession(SessionOptions{Program: "t"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if _, err := srv.Snapshot(dir); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	s1.Close()
	sum, err := srv.Snapshot(dir)
	if err != nil {
		t.Fatalf("second Snapshot: %v", err)
	}
	if sum.Sessions != 1 {
		t.Fatalf("Sessions = %d, want 1", sum.Sessions)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "session-*.ckpt"))
	if len(files) != 1 || filepath.Base(files[0]) != fmt.Sprintf("session-%d.ckpt", s2.ID) {
		t.Fatalf("stale checkpoint not removed: %v", files)
	}
}

// TestDecodeSessionTruncation fuzzes the envelope decoder with every
// truncation prefix and a corrupted header: each must produce an error —
// never a panic, never a silently half-restored session.
func TestDecodeSessionTruncation(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1})
	loadTest(t, srv, "t", 2.0)
	s, err := srv.NewSession(SessionOptions{Program: "t", Source: "src", Tenant: "x"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if _, err := s.Feed([]float64{1, 2, 3, 4}); err != nil {
		t.Fatalf("Feed: %v", err)
	}
	if err := s.Run(2); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.WaitDone(2, 5*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	data := buf.Bytes()
	if _, err := decodeSession(data); err != nil {
		t.Fatalf("intact envelope rejected: %v", err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := decodeSession(data[:n]); err == nil {
			t.Fatalf("truncation at %d of %d bytes accepted", n, len(data))
		}
	}
	// Trailing garbage must be rejected too (a concatenated/corrupt file).
	if _, err := decodeSession(append(append([]byte{}, data...), 0xEE)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	bad := append([]byte{}, data...)
	bad[0] ^= 0xFF
	if _, err := decodeSession(bad); err == nil {
		t.Fatal("corrupted magic accepted")
	}
}

// TestRestoreOnBootDir: Config.SnapshotDir is the implicit target for both
// Snapshot("") and the operator's restore-on-start flow.
func TestRestoreOnBootDir(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, SnapshotDir: dir}
	srv := New(cfg)
	loadTest(t, srv, "t", 2.0)
	s, err := srv.NewSession(SessionOptions{Program: "t"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if err := s.Run(4); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.WaitDone(4, 5*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	if _, err := srv.Snapshot(""); err != nil { // falls back to cfg.SnapshotDir
		t.Fatalf("Snapshot(\"\"): %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("manifest not written to cfg.SnapshotDir: %v", err)
	}
	srv.Close()

	srv2 := newTestServer(t, cfg)
	loadTest(t, srv2, "t", 2.0)
	rs, err := srv2.Restore(dir)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if rs.Restored != 1 {
		t.Fatalf("Restored = %d, want 1 (failed: %v)", rs.Restored, rs.Failed)
	}
	// No-dir server with no cfg fallback must refuse rather than guess.
	srv3 := newTestServer(t, Config{Workers: 1})
	if _, err := srv3.Snapshot(""); err == nil {
		t.Fatal("Snapshot with no directory configured succeeded")
	}
}
