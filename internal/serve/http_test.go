package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// httpJSON performs one API call and decodes the JSON response.
func httpJSON(t *testing.T, client *http.Client, method, url string, body any, wantCode int) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatalf("encode body: %v", err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decode: %v", method, url, err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: status %d, want %d (body %v)", method, url, resp.StatusCode, wantCode, out)
	}
	return out
}

func TestHTTPAPI(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 2, MaxSessions: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := ts.Client()

	src, err := os.ReadFile("../../examples/strprogs/fmradio.str")
	if err != nil {
		t.Fatalf("read fmradio.str: %v", err)
	}

	// Load a program from source over the wire.
	resp := httpJSON(t, cl, "POST", ts.URL+"/v1/programs",
		map[string]string{"name": "fm", "source": string(src), "top": "Main"}, http.StatusOK)
	if resp["version"].(float64) != 1 {
		t.Fatalf("load: version = %v, want 1", resp["version"])
	}

	// Listing shows it active.
	resp = httpJSON(t, cl, "GET", ts.URL+"/v1/programs", nil, http.StatusOK)
	progs := resp["programs"].([]any)
	if len(progs) != 1 || progs[0].(map[string]any)["name"] != "fm" {
		t.Fatalf("programs listing: %v", progs)
	}

	// Create a session, run it, wait via status polling, drain output.
	resp = httpJSON(t, cl, "POST", ts.URL+"/v1/sessions",
		map[string]any{"program": "fm", "tenant": "acme"}, http.StatusCreated)
	id := fmt.Sprintf("%.0f", resp["id"].(float64))
	sURL := ts.URL + "/v1/sessions/" + id

	httpJSON(t, cl, "POST", sURL+"/run", map[string]int{"iterations": 10}, http.StatusOK)
	for {
		resp = httpJSON(t, cl, "GET", sURL, nil, http.StatusOK)
		if resp["done"].(float64) >= 10 {
			break
		}
	}
	resp = httpJSON(t, cl, "GET", sURL+"/drain?max=5", nil, http.StatusOK)
	if n := len(resp["values"].([]any)); n != 5 {
		t.Fatalf("drain max=5 returned %d values", n)
	}

	// Admission: session limit answers 429.
	httpJSON(t, cl, "POST", ts.URL+"/v1/sessions",
		map[string]any{"program": "fm"}, http.StatusCreated)
	httpJSON(t, cl, "POST", ts.URL+"/v1/sessions",
		map[string]any{"program": "fm"}, http.StatusTooManyRequests)

	// Stats document is well-formed.
	resp = httpJSON(t, cl, "GET", ts.URL+"/v1/stats", nil, http.StatusOK)
	if resp["schema"] != StatsSchema {
		t.Fatalf("stats schema = %v", resp["schema"])
	}

	// Close; further use answers 404.
	httpJSON(t, cl, "DELETE", sURL, nil, http.StatusOK)
	httpJSON(t, cl, "GET", sURL, nil, http.StatusNotFound)
	httpJSON(t, cl, "GET", ts.URL+"/v1/sessions/99999", nil, http.StatusNotFound)

	// Unknown program and malformed body are 400s.
	httpJSON(t, cl, "POST", ts.URL+"/v1/sessions",
		map[string]any{"program": "nope"}, http.StatusBadRequest)
	httpJSON(t, cl, "POST", ts.URL+"/v1/programs",
		map[string]string{"name": "x"}, http.StatusBadRequest)
}

func TestHTTPHotReload(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := ts.Client()

	prog := func(gain float64) map[string]string {
		src := fmt.Sprintf(`
void->float filter Src() { float n; work push 1 { push(n); n = n + 1; } }
float->float filter Amp() { work pop 1 push 1 { push(pop() * %g); } }
float->void filter Out() { work pop 1 { pop(); } }
void->void pipeline Main() { add Src(); add Amp(); add Out(); }
`, gain)
		return map[string]string{"name": "amp", "source": src, "top": "Main"}
	}

	resp := httpJSON(t, cl, "POST", ts.URL+"/v1/programs", prog(2), http.StatusOK)
	if resp["version"].(float64) != 1 {
		t.Fatalf("first load: version %v", resp["version"])
	}
	// Same source text: cache returns the same compiled object, no new
	// version.
	resp = httpJSON(t, cl, "POST", ts.URL+"/v1/programs", prog(2), http.StatusOK)
	if resp["version"].(float64) != 1 {
		t.Fatalf("identical reload: version %v, want 1", resp["version"])
	}
	// Changed constant: hot reload to version 2.
	resp = httpJSON(t, cl, "POST", ts.URL+"/v1/programs", prog(3), http.StatusOK)
	if resp["version"].(float64) != 2 {
		t.Fatalf("changed reload: version %v, want 2", resp["version"])
	}
}

// TestHTTPQuarantineBody: every session endpoint answers a quarantined
// session with 500 and the same structured error body — the terminal
// error, its filter/op/firing attribution, and "quarantined":true — and
// drain still hands over the output buffered before the failure.
func TestHTTPQuarantineBody(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 2})
	loadTest(t, srv, "t", 2.0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := ts.Client()

	resp := httpJSON(t, cl, "POST", ts.URL+"/v1/sessions",
		map[string]any{"program": "t", "tenant": "acme", "faults": "panic:g@3"}, http.StatusCreated)
	id := fmt.Sprintf("%.0f", resp["id"].(float64))
	sURL := ts.URL + "/v1/sessions/" + id

	httpJSON(t, cl, "POST", sURL+"/run", map[string]any{"iterations": 8}, http.StatusOK)
	s := srv.Session(uint64(resp["id"].(float64)))
	if err := s.WaitDone(8, 5*time.Second); err == nil {
		t.Fatal("injected panic did not fail the session")
	}

	checkBody := func(body map[string]any, where string) {
		t.Helper()
		if body["quarantined"] != true {
			t.Fatalf("%s: body lacks quarantined=true: %v", where, body)
		}
		if f, _ := body["filter"].(string); !strings.Contains(f, "g") {
			t.Fatalf("%s: filter attribution = %v", where, body["filter"])
		}
		if body["error"] == nil || body["firing"] == nil {
			t.Fatalf("%s: incomplete error body: %v", where, body)
		}
	}
	// Status keeps 200 (the session exists; the error is part of its state).
	checkBody(httpJSON(t, cl, "GET", sURL, nil, http.StatusOK), "status")
	checkBody(httpJSON(t, cl, "POST", sURL+"/run",
		map[string]any{"iterations": 1}, http.StatusInternalServerError), "run")
	checkBody(httpJSON(t, cl, "POST", sURL+"/feed",
		map[string]any{"values": []float64{1}}, http.StatusInternalServerError), "feed")
	drained := httpJSON(t, cl, "GET", sURL+"/drain", nil, http.StatusInternalServerError)
	checkBody(drained, "drain")
	// Iterations before the failing firing produced output: still drainable.
	if vals, ok := drained["values"].([]any); !ok || len(vals) == 0 {
		t.Fatalf("drain returned no pre-failure output: %v", drained["values"])
	}
}

// TestHTTPSnapshotEndpoint drives a full checkpoint/restore cycle over the
// wire: POST /v1/snapshot persists the fleet, a second server restores it,
// and a draining server refuses new sessions with 503.
func TestHTTPSnapshotEndpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 2, SnapshotDir: dir}
	srv := New(cfg)
	loadTest(t, srv, "t", 2.0)
	ts := httptest.NewServer(srv.Handler())
	cl := ts.Client()

	resp := httpJSON(t, cl, "POST", ts.URL+"/v1/sessions",
		map[string]any{"program": "t"}, http.StatusCreated)
	id := uint64(resp["id"].(float64))
	sURL := fmt.Sprintf("%s/v1/sessions/%d", ts.URL, id)
	httpJSON(t, cl, "POST", sURL+"/run", map[string]any{"iterations": 6}, http.StatusOK)
	if err := srv.Session(id).WaitDone(6, 5*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}

	// No body: snapshots to the configured directory.
	resp = httpJSON(t, cl, "POST", ts.URL+"/v1/snapshot", nil, http.StatusOK)
	if resp["sessions"].(float64) != 1 {
		t.Fatalf("snapshot = %v, want 1 session", resp)
	}
	// Stats reflect the sweep and drain state.
	st := httpJSON(t, cl, "GET", ts.URL+"/v1/stats", nil, http.StatusOK)
	if snaps := st["snapshots"].(map[string]any); snaps["taken"].(float64) != 1 {
		t.Fatalf("stats.snapshots = %v", snaps)
	}

	// Draining server: admission answers 503 with a structured error.
	if err := srv.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	resp = httpJSON(t, cl, "POST", ts.URL+"/v1/sessions",
		map[string]any{"program": "t"}, http.StatusServiceUnavailable)
	if resp["error"] == nil {
		t.Fatalf("503 without error body: %v", resp)
	}
	ts.Close()
	srv.Close()

	srv2 := newTestServer(t, cfg)
	loadTest(t, srv2, "t", 2.0)
	if _, err := srv2.Restore(dir); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	status := httpJSON(t, ts2.Client(), "GET",
		fmt.Sprintf("%s/v1/sessions/%d", ts2.URL, id), nil, http.StatusOK)
	if status["done"].(float64) != 6 {
		t.Fatalf("restored session status = %v, want done=6", status)
	}
}

// TestHTTPBadFaultSpecs: malformed fault/policy specs on session creation
// are a client error, not a server fault.
func TestHTTPBadFaultSpecs(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1})
	loadTest(t, srv, "t", 2.0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := ts.Client()
	httpJSON(t, cl, "POST", ts.URL+"/v1/sessions",
		map[string]any{"program": "t", "faults": "explode:g@nope"}, http.StatusBadRequest)
	httpJSON(t, cl, "POST", ts.URL+"/v1/sessions",
		map[string]any{"program": "t", "on_error": "g=fly-to-the-moon"}, http.StatusBadRequest)
}
