package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
)

// httpJSON performs one API call and decodes the JSON response.
func httpJSON(t *testing.T, client *http.Client, method, url string, body any, wantCode int) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatalf("encode body: %v", err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decode: %v", method, url, err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: status %d, want %d (body %v)", method, url, resp.StatusCode, wantCode, out)
	}
	return out
}

func TestHTTPAPI(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 2, MaxSessions: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := ts.Client()

	src, err := os.ReadFile("../../examples/strprogs/fmradio.str")
	if err != nil {
		t.Fatalf("read fmradio.str: %v", err)
	}

	// Load a program from source over the wire.
	resp := httpJSON(t, cl, "POST", ts.URL+"/v1/programs",
		map[string]string{"name": "fm", "source": string(src), "top": "Main"}, http.StatusOK)
	if resp["version"].(float64) != 1 {
		t.Fatalf("load: version = %v, want 1", resp["version"])
	}

	// Listing shows it active.
	resp = httpJSON(t, cl, "GET", ts.URL+"/v1/programs", nil, http.StatusOK)
	progs := resp["programs"].([]any)
	if len(progs) != 1 || progs[0].(map[string]any)["name"] != "fm" {
		t.Fatalf("programs listing: %v", progs)
	}

	// Create a session, run it, wait via status polling, drain output.
	resp = httpJSON(t, cl, "POST", ts.URL+"/v1/sessions",
		map[string]any{"program": "fm", "tenant": "acme"}, http.StatusCreated)
	id := fmt.Sprintf("%.0f", resp["id"].(float64))
	sURL := ts.URL + "/v1/sessions/" + id

	httpJSON(t, cl, "POST", sURL+"/run", map[string]int{"iterations": 10}, http.StatusOK)
	for {
		resp = httpJSON(t, cl, "GET", sURL, nil, http.StatusOK)
		if resp["done"].(float64) >= 10 {
			break
		}
	}
	resp = httpJSON(t, cl, "GET", sURL+"/drain?max=5", nil, http.StatusOK)
	if n := len(resp["values"].([]any)); n != 5 {
		t.Fatalf("drain max=5 returned %d values", n)
	}

	// Admission: session limit answers 429.
	httpJSON(t, cl, "POST", ts.URL+"/v1/sessions",
		map[string]any{"program": "fm"}, http.StatusCreated)
	httpJSON(t, cl, "POST", ts.URL+"/v1/sessions",
		map[string]any{"program": "fm"}, http.StatusTooManyRequests)

	// Stats document is well-formed.
	resp = httpJSON(t, cl, "GET", ts.URL+"/v1/stats", nil, http.StatusOK)
	if resp["schema"] != StatsSchema {
		t.Fatalf("stats schema = %v", resp["schema"])
	}

	// Close; further use answers 404.
	httpJSON(t, cl, "DELETE", sURL, nil, http.StatusOK)
	httpJSON(t, cl, "GET", sURL, nil, http.StatusNotFound)
	httpJSON(t, cl, "GET", ts.URL+"/v1/sessions/99999", nil, http.StatusNotFound)

	// Unknown program and malformed body are 400s.
	httpJSON(t, cl, "POST", ts.URL+"/v1/sessions",
		map[string]any{"program": "nope"}, http.StatusBadRequest)
	httpJSON(t, cl, "POST", ts.URL+"/v1/programs",
		map[string]string{"name": "x"}, http.StatusBadRequest)
}

func TestHTTPHotReload(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := ts.Client()

	prog := func(gain float64) map[string]string {
		src := fmt.Sprintf(`
void->float filter Src() { float n; work push 1 { push(n); n = n + 1; } }
float->float filter Amp() { work pop 1 push 1 { push(pop() * %g); } }
float->void filter Out() { work pop 1 { pop(); } }
void->void pipeline Main() { add Src(); add Amp(); add Out(); }
`, gain)
		return map[string]string{"name": "amp", "source": src, "top": "Main"}
	}

	resp := httpJSON(t, cl, "POST", ts.URL+"/v1/programs", prog(2), http.StatusOK)
	if resp["version"].(float64) != 1 {
		t.Fatalf("first load: version %v", resp["version"])
	}
	// Same source text: cache returns the same compiled object, no new
	// version.
	resp = httpJSON(t, cl, "POST", ts.URL+"/v1/programs", prog(2), http.StatusOK)
	if resp["version"].(float64) != 1 {
		t.Fatalf("identical reload: version %v, want 1", resp["version"])
	}
	// Changed constant: hot reload to version 2.
	resp = httpJSON(t, cl, "POST", ts.URL+"/v1/programs", prog(3), http.StatusOK)
	if resp["version"].(float64) != 2 {
		t.Fatalf("changed reload: version %v, want 2", resp["version"])
	}
}
