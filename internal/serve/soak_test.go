package serve

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"streamit/internal/apps"
	"streamit/internal/core"
	"streamit/internal/ir"
)

// soakSessions picks the concurrent-session count for TestServeSoak:
// 10000 by default (the acceptance floor for one process), scaled down
// under the race detector and -short, and overridable with
// STREAMIT_SERVE_SOAK_SESSIONS for CI.
func soakSessions(t *testing.T) int {
	if env := os.Getenv("STREAMIT_SERVE_SOAK_SESSIONS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			t.Fatalf("bad STREAMIT_SERVE_SOAK_SESSIONS %q", env)
		}
		return n
	}
	if raceEnabled {
		return 1000
	}
	if testing.Short() {
		return 2000
	}
	return 10000
}

// TestServeSoak opens thousands of concurrent sessions — half a
// self-contained FMRadio, half a fed pipeline with per-session inputs —
// runs them all to completion on the shared pool, and verifies every
// session's output count plus bit-identical output for a sample of
// sessions against standalone sequential runs of the same program and
// inputs.
func TestServeSoak(t *testing.T) {
	sessions := soakSessions(t)
	const iters = 24

	srv := newTestServer(t, Config{MaxSessions: sessions + 8, MaxBufferedOut: 1 << 16})
	fm := apps.FMRadio(4, 16)
	if _, err := srv.LoadProgram("fm", fm); err != nil {
		t.Fatalf("load fm: %v", err)
	}
	loadTest(t, srv, "fed", 2.5)

	// Reference outputs. The self-contained FMRadio is identical for every
	// session; fed sessions get per-session inputs, so references for the
	// sampled ones are computed on demand below.
	fmWant := standaloneRun(t, apps.FMRadio(4, 16), iters, nil)

	feedFor := func(id int) []float64 {
		// Deterministic per-session input stream.
		vals := make([]float64, iters+8)
		for i := range vals {
			vals[i] = float64(id)*0.001 + float64(i)*0.25
		}
		return vals
	}

	// Phase 1: make every session resident before any finishes, so the
	// process genuinely holds `sessions` concurrent sessions at once.
	all := make([]*Session, sessions)
	isFed := make([]bool, sessions)
	for i := 0; i < sessions; i++ {
		fed := i%2 == 1
		opt := SessionOptions{Program: "fm", Tenant: fmt.Sprintf("tenant%d", i%7)}
		if fed {
			opt = SessionOptions{Program: "fed", Source: "src", Tenant: opt.Tenant}
		}
		s, err := srv.NewSession(opt)
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		all[i], isFed[i] = s, fed
	}
	if open := srv.Stats().Sessions.Open; open != sessions {
		t.Fatalf("%d sessions open after creation, want %d", open, sessions)
	}

	// Phase 2: feed and start all of them (concurrently, to mix admission
	// with execution), then collect.
	type result struct {
		id  int
		fed bool
		out []float64
		err error
	}
	results := make([]result, sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for i, s := range all {
		wg.Add(1)
		go func(i int, s *Session, fed bool) {
			defer wg.Done()
			r := result{id: i, fed: fed}
			defer func() { results[i] = r }()
			if fed {
				if _, r.err = s.Feed(feedFor(i)); r.err != nil {
					return
				}
			}
			if r.err = s.Run(iters); r.err != nil {
				return
			}
			if r.err = s.WaitDone(iters, 300*time.Second); r.err != nil {
				return
			}
			r.out = s.Drain(0)
			s.Close()
		}(i, s, isFed[i])
	}
	wg.Wait()
	t.Logf("%d sessions x %d iterations in %v", sessions, iters, time.Since(start).Round(time.Millisecond))

	// Every session completed with the right output volume.
	fedWantLen := len(standaloneRun(t, testProgram(2.5), iters, feedFor(1)))
	for i := range results {
		r := &results[i]
		if r.err != nil {
			t.Fatalf("session %d: %v", r.id, r.err)
		}
		wantLen := len(fmWant)
		if r.fed {
			wantLen = fedWantLen
		}
		if len(r.out) != wantLen {
			t.Fatalf("session %d: drained %d items, want %d", r.id, len(r.out), wantLen)
		}
	}

	// Sampled sessions are bit-identical to standalone sequential runs.
	step := sessions / 50
	if step == 0 {
		step = 1
	}
	for i := 0; i < sessions; i += step {
		r := &results[i]
		want := fmWant
		if r.fed {
			want = standaloneRun(t, testProgram(2.5), iters, feedFor(i))
		}
		for j := range want {
			if r.out[j] != want[j] {
				t.Fatalf("session %d item %d: got %v, want %v (not bit-identical)", i, j, r.out[j], want[j])
			}
		}
	}

	st := srv.Stats()
	if st.Sessions.Peak < sessions {
		t.Fatalf("peak sessions %d, want >= %d concurrent", st.Sessions.Peak, sessions)
	}
	if st.Sessions.Open != 0 {
		t.Fatalf("%d sessions still open after soak", st.Sessions.Open)
	}
	if got := st.Iterations.Completed; got != int64(sessions*iters) {
		t.Fatalf("completed %d iterations, want %d", got, sessions*iters)
	}
	if st.LatencyNS.P99 == 0 || st.LatencyNS.P50 > st.LatencyNS.P99 {
		t.Fatalf("latency histogram inconsistent: %+v", st.LatencyNS)
	}
}

// TestSharedArtifactsAcrossSessions pins the resource story the server
// depends on: sessions of one program version share VM programs and the
// compiled graph, and idle session construction stays cheap.
func TestSharedArtifactsAcrossSessions(t *testing.T) {
	c, err := core.Compile(apps.FMRadio(4, 16), core.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	srv := newTestServer(t, Config{Workers: 1})
	if _, err := srv.LoadCompiled("fm", c); err != nil {
		t.Fatalf("load: %v", err)
	}
	a, err := srv.NewSession(SessionOptions{Program: "fm"})
	if err != nil {
		t.Fatalf("session a: %v", err)
	}
	b, err := srv.NewSession(SessionOptions{Program: "fm"})
	if err != nil {
		t.Fatalf("session b: %v", err)
	}
	if a.ver != b.ver || a.ver.shared != b.ver.shared {
		t.Fatal("sessions of one version do not share the artifact bundle")
	}
	var g *ir.Graph = a.ver.shared.G
	if g != c.Graph {
		t.Fatal("shared bundle does not reference the compiled graph")
	}
}
