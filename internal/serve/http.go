package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"streamit/internal/exec"
	"streamit/internal/faults"
)

// Handler returns the server's HTTP API:
//
//	POST   /v1/programs            {"name","source","top"}     load / hot-reload
//	GET    /v1/programs                                        list versions
//	POST   /v1/sessions            {"program","source",...}    create session
//	GET    /v1/sessions/{id}                                   session status
//	POST   /v1/sessions/{id}/run   {"iterations":n}            request iterations
//	POST   /v1/sessions/{id}/feed  {"values":[...]}            feed source input
//	GET    /v1/sessions/{id}/drain?max=n                       take output
//	GET    /v1/sessions/{id}/profile                           per-session profile
//	DELETE /v1/sessions/{id}                                   close session
//	POST   /v1/snapshot            {"dir"?}                    checkpoint all sessions
//	GET    /v1/stats                                           streamit-serve/v1 stats
//
// Admission rejections answer 429, unknown IDs 404, closed sessions 409,
// a draining server 503. A quarantined session answers 500 with the same
// structured error body on run, feed, and drain alike: the terminal
// error, its filter/op/firing attribution (engine failures) or worker
// attribution (stuck verdicts), and "quarantined":true.
func (srv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/programs", srv.handleLoad)
	mux.HandleFunc("GET /v1/programs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"programs": srv.Programs()})
	})
	mux.HandleFunc("POST /v1/sessions", srv.handleNewSession)
	mux.HandleFunc("GET /v1/sessions/{id}", srv.withSession(srv.handleStatus))
	mux.HandleFunc("POST /v1/sessions/{id}/run", srv.withSession(srv.handleRun))
	mux.HandleFunc("POST /v1/sessions/{id}/feed", srv.withSession(srv.handleFeed))
	mux.HandleFunc("GET /v1/sessions/{id}/drain", srv.withSession(srv.handleDrain))
	mux.HandleFunc("GET /v1/sessions/{id}/profile", srv.withSession(srv.handleProfile))
	mux.HandleFunc("DELETE /v1/sessions/{id}", srv.withSession(func(w http.ResponseWriter, r *http.Request, s *Session) {
		s.Close()
		writeJSON(w, http.StatusOK, map[string]any{"closed": true})
	}))
	mux.HandleFunc("POST /v1/snapshot", srv.handleSnapshot)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, srv.Stats())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrSessionLimit), errors.Is(err, ErrIterBacklog):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		code = http.StatusConflict
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// quarantineBody renders a session's terminal error as the structured body
// every endpoint returns for a quarantined session.
func quarantineBody(err error) map[string]any {
	body := map[string]any{"error": err.Error(), "quarantined": true}
	var ee *exec.ExecError
	if errors.As(err, &ee) {
		body["filter"] = ee.Filter
		body["op"] = ee.Op
		body["firing"] = ee.Iteration
	}
	var se *StuckError
	if errors.As(err, &se) {
		body["worker"] = se.Worker
		body["stuck_ms"] = se.Elapsed.Milliseconds()
	}
	return body
}

// failIfQuarantined answers 500 with the structured error body when the
// session is terminally failed, reporting whether it wrote a response.
func failIfQuarantined(w http.ResponseWriter, s *Session) bool {
	err := s.Err()
	if err == nil {
		return false
	}
	writeJSON(w, http.StatusInternalServerError, quarantineBody(err))
	return true
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// withSession resolves the {id} path segment before invoking h.
func (srv *Server) withSession(h func(http.ResponseWriter, *http.Request, *Session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad session id"})
			return
		}
		s := srv.Session(id)
		if s == nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such session"})
			return
		}
		h(w, r, s)
	}
}

func (srv *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name   string `json:"name"`
		Source string `json:"source"`
		Top    string `json:"top"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.Name == "" || req.Source == "" || req.Top == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "name, source, and top are required"})
		return
	}
	ver, err := srv.LoadSource(req.Name, req.Source, req.Top)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": req.Name, "version": ver})
}

func (srv *Server) handleNewSession(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Program string `json:"program"`
		Source  string `json:"source"`
		Tenant  string `json:"tenant"`
		Profile bool   `json:"profile"`
		Faults  string `json:"faults"`
		OnError string `json:"on_error"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	opt := SessionOptions{
		Program: req.Program, Source: req.Source, Tenant: req.Tenant, Profile: req.Profile,
	}
	if req.Faults != "" {
		plan, err := faults.ParsePlan(req.Faults)
		if err != nil {
			writeErr(w, err)
			return
		}
		opt.Faults = plan
	}
	if req.OnError != "" {
		ps, err := faults.ParsePolicies(req.OnError)
		if err != nil {
			writeErr(w, err)
			return
		}
		opt.OnError = ps
	}
	s, err := srv.NewSession(opt)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"id": s.ID, "program": req.Program, "version": s.ver.num,
	})
}

func (srv *Server) handleStatus(w http.ResponseWriter, r *http.Request, s *Session) {
	done, goal := s.Progress()
	in, out := s.Buffered()
	resp := map[string]any{
		"id": s.ID, "program": s.ver.name, "version": s.ver.num,
		"tenant": s.opt.Tenant,
		"done":   done, "goal": goal,
		"buffered_in": in, "buffered_out": out,
	}
	if err := s.Err(); err != nil {
		for k, v := range quarantineBody(err) {
			resp[k] = v
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (srv *Server) handleRun(w http.ResponseWriter, r *http.Request, s *Session) {
	var req struct {
		Iterations int `json:"iterations"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if failIfQuarantined(w, s) {
		return
	}
	if err := s.Run(req.Iterations); err != nil {
		if s.Err() != nil {
			writeJSON(w, http.StatusInternalServerError, quarantineBody(err))
			return
		}
		writeErr(w, err)
		return
	}
	done, goal := s.Progress()
	writeJSON(w, http.StatusOK, map[string]any{"done": done, "goal": goal})
}

func (srv *Server) handleFeed(w http.ResponseWriter, r *http.Request, s *Session) {
	var req struct {
		Values []float64 `json:"values"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if failIfQuarantined(w, s) {
		return
	}
	n, err := s.Feed(req.Values)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"accepted": n})
}

func (srv *Server) handleDrain(w http.ResponseWriter, r *http.Request, s *Session) {
	max := 0
	if q := r.URL.Query().Get("max"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad max"})
			return
		}
		max = v
	}
	vals := s.Drain(max)
	if vals == nil {
		vals = []float64{}
	}
	// A quarantined session's buffered output stays drainable, but the
	// terminal error rides along so a polling client cannot miss it.
	if err := s.Err(); err != nil {
		body := quarantineBody(err)
		body["values"] = vals
		writeJSON(w, http.StatusInternalServerError, body)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"values": vals})
}

func (srv *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Dir string `json:"dir"`
	}
	if r.ContentLength != 0 {
		if err := decode(r, &req); err != nil {
			writeErr(w, err)
			return
		}
	}
	sum, err := srv.Snapshot(req.Dir)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

func (srv *Server) handleProfile(w http.ResponseWriter, r *http.Request, s *Session) {
	p := s.Profile()
	if p == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "session was created without profile"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"filters": p.Snapshot()})
}
