package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"streamit/internal/exec"
	"streamit/internal/faults"
)

// chaosSessions picks the fleet size for TestServeChaosSoak, scaled down
// under the race detector and -short, overridable with
// STREAMIT_SERVE_CHAOS_SESSIONS for CI.
func chaosSessions(t *testing.T) int {
	if env := os.Getenv("STREAMIT_SERVE_CHAOS_SESSIONS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			t.Fatalf("bad STREAMIT_SERVE_CHAOS_SESSIONS %q", env)
		}
		return n
	}
	if raceEnabled {
		return 40
	}
	if testing.Short() {
		return 60
	}
	return 120
}

// TestServeChaosSoak is the resilience soak: a session fleet seasoned with
// fixed-seed randomized kernel panics and stalls (some supervised by
// recovery policies, some fatal), one genuinely wedged session caught by
// the watchdog, and the whole server killed and restored from snapshot
// between every round. At the end, every surviving session's output must
// be bit-identical to an uninterrupted supervised run, fatal sessions must
// be quarantined and gone after the first restart, and no accounting may
// leak.
func TestServeChaosSoak(t *testing.T) {
	sessions := chaosSessions(t)
	const (
		rounds   = 3
		perRound = 10
		iters    = rounds * perRound
	)
	rng := rand.New(rand.NewSource(0xC0FFEE))
	dir := t.TempDir()
	cfg := Config{
		Workers:        4,
		MaxSessions:    sessions + 8,
		BatchTimeout:   100 * time.Millisecond,
		MaxBufferedOut: 1 << 16,
	}

	release := make(chan struct{})
	t.Cleanup(func() { close(release) }) // after everything: wedged goroutines park until then
	load := func(sv *Server) {
		t.Helper()
		loadTest(t, sv, "t", 2.0)
		if _, err := sv.LoadProgram("blocky", blockingProgram(release)); err != nil {
			t.Fatalf("LoadProgram: %v", err)
		}
	}

	// Roll the fleet: ~1/4 recoverable faults (panic or stall at a random
	// firing inside round one, supervised by a random policy), ~1/12 fatal
	// (same faults, no policy — quarantine expected), rest healthy; half
	// the healthy sessions are fed per-session input streams.
	type plan struct {
		spec    string // fault spec, "" = healthy
		policy  string // "" = unsupervised
		fed     bool
		wedged  bool
		id      uint64
		feed    []float64
		lastErr error
	}
	policies := []string{"skip", "retry:2", "restart"}
	kinds := []string{"panic", "stall"}
	fleet := make([]*plan, sessions)
	for i := range fleet {
		p := &plan{}
		switch roll := rng.Intn(12); {
		case roll < 3:
			p.spec = fmt.Sprintf("%s:g@%d", kinds[rng.Intn(len(kinds))], 1+rng.Intn(perRound-2))
			p.policy = policies[rng.Intn(len(policies))]
		case roll == 3:
			p.spec = fmt.Sprintf("%s:g@%d", kinds[rng.Intn(len(kinds))], 1+rng.Intn(perRound-2))
		default:
			p.fed = rng.Intn(2) == 0
		}
		if p.fed {
			p.feed = make([]float64, iters)
			for j := range p.feed {
				p.feed[j] = float64(i)*0.001 + float64(j)*0.25
			}
		}
		fleet[i] = p
	}
	fleet[0] = &plan{wedged: true} // one batch that never returns

	srv := New(cfg)
	load(srv)
	for i, p := range fleet {
		opt := SessionOptions{Program: "t", Tenant: fmt.Sprintf("tenant%d", i%7)}
		if p.wedged {
			opt.Program = "blocky"
		}
		if p.fed {
			opt.Source = "src"
		}
		if p.spec != "" {
			fp, err := faults.ParsePlan(p.spec)
			if err != nil {
				t.Fatalf("ParsePlan(%s): %v", p.spec, err)
			}
			opt.Faults = fp
		}
		if p.policy != "" {
			ps, err := faults.ParsePolicies("g=" + p.policy)
			if err != nil {
				t.Fatalf("ParsePolicies: %v", err)
			}
			opt.OnError = ps
		}
		s, err := srv.NewSession(opt)
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		p.id = s.ID
		if p.fed {
			if _, err := s.Feed(p.feed); err != nil {
				t.Fatalf("Feed(%d): %v", i, err)
			}
		}
	}

	expectFatal := func(p *plan) bool { return p.wedged || (p.spec != "" && p.policy == "") }

	for round := 1; round <= rounds; round++ {
		for i, p := range fleet {
			if p.lastErr != nil {
				continue // quarantined in an earlier round: gone from the fleet
			}
			s := srv.Session(p.id)
			if s == nil {
				t.Fatalf("round %d: session %d lost without a recorded error", round, i)
			}
			if err := s.Run(perRound); err != nil {
				t.Fatalf("round %d Run(%d): %v", round, i, err)
			}
		}
		if round == 1 {
			// Every fault is scheduled inside round one (checkpoints do not
			// persist pending fault plans, by design), so round one must
			// settle — completion or quarantine — before the first snapshot.
			for i, p := range fleet {
				err := srv.Session(p.id).WaitDone(int64(round*perRound), 30*time.Second)
				if expectFatal(p) {
					if err == nil {
						t.Fatalf("session %d (%s) survived an unsupervised fault", i, p.spec)
					}
					p.lastErr = err
					if p.wedged {
						var se *StuckError
						if !errors.As(err, &se) {
							t.Fatalf("wedged session: err = %v, want *StuckError", err)
						}
					} else {
						var ee *exec.ExecError
						if !errors.As(err, &ee) {
							t.Fatalf("session %d: err = %v, want *exec.ExecError", i, err)
						}
					}
				} else if err != nil {
					t.Fatalf("round 1 session %d (spec=%q policy=%q): %v", i, p.spec, p.policy, err)
				}
			}
		}
		// Kill/restart: snapshot (under load after round one), tear the
		// server down, restore the fleet on a fresh one.
		sum, err := srv.Snapshot(dir)
		if err != nil {
			t.Fatalf("round %d Snapshot: %v", round, err)
		}
		fatal := 0
		for _, p := range fleet {
			if p.lastErr != nil {
				fatal++
			}
		}
		// Round one skips exactly the quarantined sessions; later rounds
		// (quarantined already gone) must skip nothing — a skip here means
		// a healthy session failed to quiesce and would be silently lost.
		if round == 1 && sum.Skipped != fatal {
			t.Fatalf("round 1: skipped %d sessions, want %d quarantined", sum.Skipped, fatal)
		}
		if round > 1 && sum.Skipped != 0 {
			t.Fatalf("round %d: snapshot skipped %d healthy sessions", round, sum.Skipped)
		}
		srv.Close()
		srv = New(cfg)
		load(srv)
		rs, err := srv.Restore(dir)
		if err != nil {
			t.Fatalf("round %d Restore: %v", round, err)
		}
		if len(rs.Failed) > 0 || rs.Restored != sum.Sessions {
			t.Fatalf("round %d: restored %d/%d, failed %v", round, rs.Restored, sum.Sessions, rs.Failed)
		}
	}
	defer srv.Close()

	// Survivors finish their full goal and match uninterrupted references.
	quarantined := 0
	for i, p := range fleet {
		if p.lastErr != nil {
			quarantined++
			if srv.Session(p.id) != nil {
				t.Fatalf("quarantined session %d resurrected by restore", i)
			}
			continue
		}
		s := srv.Session(p.id)
		if s == nil {
			t.Fatalf("session %d missing after final restore", i)
		}
		if err := s.WaitDone(iters, 30*time.Second); err != nil {
			t.Fatalf("session %d (spec=%q policy=%q): %v", i, p.spec, p.policy, err)
		}
		got := s.Drain(0)
		var want []float64
		switch {
		case p.spec != "":
			fp, _ := faults.ParsePlan(p.spec)
			ps, _ := faults.ParsePolicies("g=" + p.policy)
			want = supervisedStandalone(t, testProgram(2.0), iters,
				exec.Options{Faults: fp, OnError: ps})
		default:
			want = standaloneRun(t, testProgram(2.0), iters, p.feed)
		}
		if len(got) != len(want) {
			t.Fatalf("session %d: %d items, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("session %d item %d: got %v, want %v (not bit-identical after %d restarts)",
					i, j, got[j], want[j], rounds)
			}
		}
	}
	if quarantined == 0 {
		t.Fatal("chaos rolled zero fatal sessions: seed no longer exercises quarantine")
	}
	st := srv.Stats()
	if st.Sessions.Restored != int64(sessions-quarantined) {
		t.Fatalf("Restored = %d, want %d", st.Sessions.Restored, sessions-quarantined)
	}
	if st.Iterations.Queued != 0 {
		t.Fatalf("Queued = %d after chaos, want 0", st.Iterations.Queued)
	}
	t.Logf("chaos: %d sessions, %d quarantined, %d restarts, all survivors bit-identical",
		sessions, quarantined, rounds)
}
