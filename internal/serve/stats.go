package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latHist is a lock-free log-bucketed histogram of per-iteration latencies
// in nanoseconds. Values below 16 get exact buckets; above that each
// power-of-two octave splits into 8 sub-buckets, bounding quantile error at
// ~6%. Recording is two atomic adds plus a CAS loop for the max — cheap
// enough to sit on the per-iteration hot path of every worker.
type latHist struct {
	buckets [16 + 8*59]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

func latIndex(v int64) int {
	if v < 16 {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	msb := bits.Len64(uint64(v)) - 1
	return 16 + (msb-4)*8 + int((v>>(msb-3))&7)
}

// latValue returns a representative (midpoint) value for bucket idx.
func latValue(idx int) int64 {
	if idx < 16 {
		return int64(idx)
	}
	msb := 4 + (idx-16)/8
	sub := int64((idx - 16) % 8)
	lo := int64(1)<<msb | sub<<(msb-3)
	return lo + int64(1)<<(msb-3)/2
}

func (h *latHist) record(ns int64) {
	h.buckets[latIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// quantile returns the approximate q-quantile (0 < q <= 1) in nanoseconds.
func (h *latHist) quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			return latValue(i)
		}
	}
	return h.max.Load()
}

// Stats is the server's observable state, serialized as the
// streamit-serve/v1 JSON document by the /v1/stats endpoint.
type Stats struct {
	Schema     string                 `json:"schema"`
	UptimeMS   int64                  `json:"uptime_ms"`
	Draining   bool                   `json:"draining"`
	Sessions   SessionCounters        `json:"sessions"`
	Iterations IterCounters           `json:"iterations"`
	LatencyNS  LatencySummary         `json:"latency_ns"`
	Pool       PoolCounters           `json:"pool"`
	Snapshots  SnapshotCounters       `json:"snapshots"`
	Programs   []ProgramStats         `json:"programs"`
	Tenants    map[string]TenantStats `json:"tenants,omitempty"`
}

// StatsSchema is the schema tag of the stats document.
const StatsSchema = "streamit-serve/v1"

// SessionCounters counts session lifecycle events since server start.
type SessionCounters struct {
	Open             int   `json:"open"`
	Peak             int   `json:"peak"`
	Created          int64 `json:"created"`
	Closed           int64 `json:"closed"`
	RejectedSessions int64 `json:"rejected_sessions"`
	RejectedIters    int64 `json:"rejected_iters"`
	// Quarantined counts sessions terminally failed and isolated from the
	// pool (engine errors, contained panics, stuck verdicts).
	Quarantined int64 `json:"quarantined"`
	// Stuck counts the subset of quarantines declared by the batch-timeout
	// watchdog.
	Stuck int64 `json:"stuck"`
	// Restored counts sessions rebuilt from snapshot checkpoints.
	Restored int64 `json:"restored"`
}

// IterCounters counts steady-state iteration flow.
type IterCounters struct {
	Completed int64 `json:"completed"`
	Queued    int64 `json:"queued"`
}

// LatencySummary summarizes the per-iteration latency histogram.
type LatencySummary struct {
	Count int64 `json:"count"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
	Max   int64 `json:"max"`
}

// PoolCounters reports worker-pool scheduling activity.
type PoolCounters struct {
	// Workers is the live worker count: configured size plus replacements,
	// minus workers lost to stuck batches.
	Workers int   `json:"workers"`
	Steals  int64 `json:"steals"`
	Parks   int64 `json:"parks"`
	// Lost counts workers written off by the stuck-session watchdog;
	// Replaced counts the fresh workers spawned to take their slots.
	Lost     int64 `json:"lost"`
	Replaced int64 `json:"replaced"`
}

// SnapshotCounters reports checkpoint/restore lifecycle activity.
type SnapshotCounters struct {
	// Taken counts completed Server.Snapshot calls.
	Taken int64 `json:"taken"`
	// SessionsRestored counts sessions rebuilt by Server.Restore.
	SessionsRestored int64 `json:"sessions_restored"`
}

// ProgramStats describes one loaded program version. Draining versions are
// superseded ones still pinned by open sessions.
type ProgramStats struct {
	Name        string `json:"name"`
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	Sessions    int64  `json:"sessions"`
	Active      bool   `json:"active"`
	Draining    bool   `json:"draining"`
}

// TenantStats aggregates per-tenant usage.
type TenantStats struct {
	Sessions    int   `json:"sessions"`
	Iterations  int64 `json:"iterations"`
	Quarantined int64 `json:"quarantined,omitempty"`
}

// Stats snapshots the server's counters. Safe to call concurrently with
// serving traffic; counters are read atomically but not as one consistent
// cut.
func (srv *Server) Stats() Stats {
	lost := srv.pool.stuck.Load()
	st := Stats{
		Schema:   StatsSchema,
		UptimeMS: time.Since(srv.start).Milliseconds(),
		Draining: srv.draining.Load(),
		Sessions: SessionCounters{
			Created:          srv.created.Load(),
			Closed:           srv.closedCount.Load(),
			RejectedSessions: srv.rejectedSessions.Load(),
			RejectedIters:    srv.rejectedIters.Load(),
			Quarantined:      srv.quarantinedCount.Load(),
			Stuck:            srv.stuckCount.Load(),
			Restored:         srv.restoredCount.Load(),
		},
		Iterations: IterCounters{Completed: srv.itersDone.Load()},
		LatencyNS: LatencySummary{
			Count: srv.lat.count.Load(),
			P50:   srv.lat.quantile(0.50),
			P90:   srv.lat.quantile(0.90),
			P99:   srv.lat.quantile(0.99),
			Max:   srv.lat.max.Load(),
		},
		Pool: PoolCounters{
			Workers:  len(srv.pool.workerList()) - int(lost),
			Steals:   srv.pool.steals.Load(),
			Parks:    srv.pool.parks.Load(),
			Lost:     lost,
			Replaced: srv.pool.replaced.Load(),
		},
		Snapshots: SnapshotCounters{
			Taken:            srv.snapshotsTaken.Load(),
			SessionsRestored: srv.restoredCount.Load(),
		},
		Tenants: map[string]TenantStats{},
	}
	srv.mu.Lock()
	st.Sessions.Open = len(srv.sessions)
	st.Sessions.Peak = srv.peak
	var queued int64
	for _, s := range srv.sessions {
		s.mu.Lock()
		// A quarantined session's backlog is dead work, not queue depth.
		if s.err == nil {
			queued += s.goal - s.done
		}
		tenant := s.opt.Tenant
		s.mu.Unlock()
		t := st.Tenants[tenant]
		t.Sessions++
		st.Tenants[tenant] = t
	}
	for name, iters := range srv.tenantIters {
		t := st.Tenants[name]
		t.Iterations = iters
		st.Tenants[name] = t
	}
	srv.qmu.Lock()
	for name, q := range srv.tenantQuarantines {
		t := st.Tenants[name]
		t.Quarantined = q
		st.Tenants[name] = t
	}
	srv.qmu.Unlock()
	for _, p := range srv.programs {
		latest := p.versions[len(p.versions)-1]
		for _, v := range p.versions {
			st.Programs = append(st.Programs, ProgramStats{
				Name:        p.name,
				Version:     v.num,
				Fingerprint: fingerprintString(v.fp),
				Sessions:    v.active.Load(),
				Active:      v == latest,
				Draining:    v != latest,
			})
		}
	}
	srv.mu.Unlock()
	st.Iterations.Queued = queued
	return st
}
