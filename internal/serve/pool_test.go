package serve

import (
	"sync"
	"testing"
	"time"
)

// TestPoolManySessions drives enough concurrent sessions through a small
// pool that work stealing and parking both exercise, and checks every
// session completes its goal.
func TestPoolManySessions(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 4, MaxSessions: 1024})
	loadTest(t, srv, "t", 1.5)

	const sessions = 200
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		s, err := srv.NewSession(SessionOptions{Program: "t"})
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			// Request in two chunks so sessions re-enter the pool mid-run,
			// and drain as we go so output backpressure never caps progress.
			if err := s.Run(iters / 2); err != nil {
				errs <- err
				return
			}
			for {
				done, _ := s.Progress()
				s.Drain(0)
				if done >= iters/2 {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if err := s.Run(iters / 2); err != nil {
				errs <- err
				return
			}
			if err := s.WaitDone(iters, 20*time.Second); err != nil {
				errs <- err
			}
			s.Drain(0)
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("session error: %v", err)
	}
	st := srv.Stats()
	if st.Iterations.Completed != sessions*iters {
		t.Fatalf("completed %d iterations, want %d", st.Iterations.Completed, sessions*iters)
	}
	if st.Pool.Parks == 0 {
		t.Error("pool never parked an idle worker")
	}
}

// TestPoolNoLostWakeup hammers the submit/park race: one session at a
// time, long idle gaps, many rounds. A lost wakeup shows up as a WaitDone
// timeout.
func TestPoolNoLostWakeup(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 2})
	loadTest(t, srv, "t", 1.0)
	s, err := srv.NewSession(SessionOptions{Program: "t"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	for round := 1; round <= 300; round++ {
		if err := s.Run(1); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := s.WaitDone(int64(round), 10*time.Second); err != nil {
			t.Fatalf("round %d: %v (lost wakeup?)", round, err)
		}
		s.Drain(0)
	}
}

// TestDequeStealPopInterleaving hammers the owner/thief protocol: one
// owner pushing and popping at the tail while several thieves rip from the
// head. Every pushed session must come out exactly once — a double-serve
// would break the scheduled-flag exclusivity token, a lost one strands a
// session forever.
func TestDequeStealPopInterleaving(t *testing.T) {
	const total = 20000
	const thieves = 4
	d := &deque{}
	sessions := make([]*Session, total)
	for i := range sessions {
		sessions[i] = &Session{ID: uint64(i)}
	}

	var mu sync.Mutex
	seen := make(map[*Session]int, total)
	count := func(s *Session) {
		mu.Lock()
		seen[s]++
		mu.Unlock()
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if s := d.stealHead(); s != nil {
					count(s)
					continue
				}
				select {
				case <-stop:
					// Queue may refill after we saw it empty: one last sweep.
					for s := d.stealHead(); s != nil; s = d.stealHead() {
						count(s)
					}
					return
				default:
				}
			}
		}()
	}
	// The owner interleaves pushes with tail pops, like a worker requeueing
	// its own session and immediately claiming the next batch.
	for i, s := range sessions {
		d.pushTail(s)
		if i%3 == 0 {
			if s := d.popTail(); s != nil {
				count(s)
			}
		}
	}
	close(stop)
	wg.Wait()
	for s := d.popTail(); s != nil; s = d.popTail() {
		count(s)
	}

	if len(seen) != total {
		t.Fatalf("%d distinct sessions came out, want %d", len(seen), total)
	}
	for s, n := range seen {
		if n != 1 {
			t.Fatalf("session %d served %d times, want exactly once", s.ID, n)
		}
	}
}

// TestDequeFIFOSteals pins the ordering contract: thieves take the oldest
// work (head), the owner the newest (tail), so a stolen session is always
// the one that waited longest.
func TestDequeFIFOSteals(t *testing.T) {
	d := &deque{}
	a, b, c := &Session{ID: 1}, &Session{ID: 2}, &Session{ID: 3}
	d.pushTail(a)
	d.pushTail(b)
	d.pushTail(c)
	if got := d.stealHead(); got != a {
		t.Fatalf("stealHead = %v, want oldest (ID 1)", got.ID)
	}
	if got := d.popTail(); got != c {
		t.Fatalf("popTail = %v, want newest (ID 3)", got.ID)
	}
	if got := d.stealHead(); got != b {
		t.Fatalf("stealHead = %v, want remaining (ID 2)", got.ID)
	}
	if d.stealHead() != nil || d.popTail() != nil {
		t.Fatal("drained deque still yields sessions")
	}
}
