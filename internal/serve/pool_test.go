package serve

import (
	"sync"
	"testing"
	"time"
)

// TestPoolManySessions drives enough concurrent sessions through a small
// pool that work stealing and parking both exercise, and checks every
// session completes its goal.
func TestPoolManySessions(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 4, MaxSessions: 1024})
	loadTest(t, srv, "t", 1.5)

	const sessions = 200
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		s, err := srv.NewSession(SessionOptions{Program: "t"})
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			// Request in two chunks so sessions re-enter the pool mid-run,
			// and drain as we go so output backpressure never caps progress.
			if err := s.Run(iters / 2); err != nil {
				errs <- err
				return
			}
			for {
				done, _ := s.Progress()
				s.Drain(0)
				if done >= iters/2 {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if err := s.Run(iters / 2); err != nil {
				errs <- err
				return
			}
			if err := s.WaitDone(iters, 20*time.Second); err != nil {
				errs <- err
			}
			s.Drain(0)
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("session error: %v", err)
	}
	st := srv.Stats()
	if st.Iterations.Completed != sessions*iters {
		t.Fatalf("completed %d iterations, want %d", st.Iterations.Completed, sessions*iters)
	}
	if st.Pool.Parks == 0 {
		t.Error("pool never parked an idle worker")
	}
}

// TestPoolNoLostWakeup hammers the submit/park race: one session at a
// time, long idle gaps, many rounds. A lost wakeup shows up as a WaitDone
// timeout.
func TestPoolNoLostWakeup(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 2})
	loadTest(t, srv, "t", 1.0)
	s, err := srv.NewSession(SessionOptions{Program: "t"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	for round := 1; round <= 300; round++ {
		if err := s.Run(1); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := s.WaitDone(int64(round), 10*time.Second); err != nil {
			t.Fatalf("round %d: %v (lost wakeup?)", round, err)
		}
		s.Drain(0)
	}
}
