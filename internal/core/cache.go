// Compiled-program cache: source text in, reusable compiled artifacts out.
// Compilation (parse, elaborate, flatten, schedule) and backend lowering
// (VM bytecode per kernel, init-state prototypes) both run once per
// distinct program; everything downstream — engines, mapped plans,
// server sessions — shares the immutable results. The streaming server
// leans on this for session fan-out and hot reload, and streamit-run's
// -repeat flag demonstrates the same reuse from the CLI.
package core

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"streamit/internal/exec"
)

// Cache memoizes CompileSource results by source text, top-level stream,
// and compile options. It is safe for concurrent use. Entries are never
// evicted: a cache holds one entry per distinct program a process serves,
// which is small by construction.
type Cache struct {
	mu sync.Mutex
	m  map[cacheKey]*cacheEntry
	// hits and misses are the cache's lifetime counters (see Stats).
	hits, misses int64
}

type cacheKey struct {
	srcHash [sha256.Size]byte
	top     string
	opts    string
}

type cacheEntry struct {
	once sync.Once
	c    *Compiled
	err  error
}

// NewCache returns an empty compiled-program cache.
func NewCache() *Cache { return &Cache{m: map[cacheKey]*cacheEntry{}} }

// DefaultCache is the process-wide cache used by CachedCompileSource.
var DefaultCache = NewCache()

// optsKey canonicalizes Options into a comparable cache-key component.
func optsKey(opts Options) string {
	lin := "nil"
	if opts.Linear != nil {
		lin = fmt.Sprintf("%+v", *opts.Linear)
	}
	return fmt.Sprintf("linear=%s maxlive=%d feedback=%t", lin, opts.MaxLiveItems, opts.CheckFeedback)
}

// CompileSource returns the compiled form of src, compiling at most once
// per distinct (source, top, options) triple even under concurrent
// callers. The second result reports whether this call hit the cache.
func (cc *Cache) CompileSource(src, top string, opts Options) (*Compiled, bool, error) {
	key := cacheKey{srcHash: sha256.Sum256([]byte(src)), top: top, opts: optsKey(opts)}
	cc.mu.Lock()
	e, hit := cc.m[key]
	if !hit {
		e = &cacheEntry{}
		cc.m[key] = e
	}
	if hit {
		cc.hits++
	} else {
		cc.misses++
	}
	cc.mu.Unlock()
	e.once.Do(func() { e.c, e.err = CompileSource(src, top, opts) })
	if e.err != nil {
		return nil, hit, e.err
	}
	return e.c, hit, nil
}

// Stats returns the cache's lifetime entry, hit, and miss counts.
func (cc *Cache) Stats() (entries int, hits, misses int64) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.m), cc.hits, cc.misses
}

// CachedCompileSource is Cache.CompileSource on the process-wide
// DefaultCache.
func CachedCompileSource(src, top string, opts Options) (*Compiled, bool, error) {
	return DefaultCache.CompileSource(src, top, opts)
}

// Fingerprint hashes the compiled graph and schedule structure — the same
// fingerprint execution checkpoints embed, so a cache entry, a checkpoint
// image, and a server program version can all be matched to one another.
func (c *Compiled) Fingerprint() uint64 { return exec.GraphFingerprint(c.Graph, c.Schedule) }

// Shared returns the compiled program's reusable execution-artifact
// bundle for the given backend (VM bytecode per kernel, init-state
// prototypes, ring geometry), building it on first use. Engines stamped
// from the bundle share all immutable artifacts; EngineOpts goes through
// here, so repeated engine construction over one Compiled never recompiles
// work functions.
func (c *Compiled) Shared(backend exec.Backend) (*exec.Shared, error) {
	c.sharedMu.Lock()
	defer c.sharedMu.Unlock()
	if c.shared == nil {
		c.shared = map[exec.Backend]*exec.Shared{}
	}
	if sh, ok := c.shared[backend]; ok {
		return sh, nil
	}
	sh, err := exec.NewShared(c.Graph, c.Schedule, backend)
	if err != nil {
		return nil, err
	}
	c.shared[backend] = sh
	return sh, nil
}
