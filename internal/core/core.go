// Package core is the StreamIt compiler driver: it ties the front end,
// analyses, optimizations, scheduler, and backends together behind one
// entry point. This is the library's primary public surface — build or
// parse a program, Compile it, then execute it sequentially or map it onto
// the simulated multicore.
package core

import (
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"streamit/internal/exec"
	"streamit/internal/faults"
	"streamit/internal/ir"
	"streamit/internal/lang"
	"streamit/internal/linear"
	"streamit/internal/machine"
	"streamit/internal/obs"
	"streamit/internal/partition"
	"streamit/internal/sched"
	"streamit/internal/sdep"
	"streamit/internal/wfunc"
)

// Options configure compilation.
type Options struct {
	// Linear enables the linear-optimization pass with these settings.
	Linear *linear.Options
	// MaxLiveItems bounds total buffered items in the schedule (0 = off).
	MaxLiveItems int
	// CheckFeedback additionally verifies feedback loops against the
	// closed-form maxloop criterion (the scheduler always detects deadlock
	// and rate inconsistencies).
	CheckFeedback bool
}

// RunOptions configure execution-engine construction.
type RunOptions struct {
	// Backend selects the work-function execution substrate. The zero
	// value is the bytecode VM (exec.BackendVM); exec.BackendInterp forces
	// the tree-walking interpreter.
	Backend exec.Backend
	// Faults schedules deterministic fault injection for robustness
	// testing (nil: none). Build one with faults.ParsePlan, e.g.
	// "panic:LowPassFilter@100".
	Faults *faults.Plan
	// OnError maps filters to recovery policies (fail, retry, skip,
	// restart); the zero value fails fast. Build with
	// faults.ParsePolicies. The dynamic engine rejects non-fail policies.
	OnError faults.Policies
	// Watchdog is the no-progress window after which the parallel and
	// dynamic engines abort with a *exec.DeadlockError naming the blocked
	// filters and wait-cycle. 0 selects exec.DefaultWatchdogInterval;
	// negative disables detection.
	Watchdog time.Duration
	// Profile enables the per-filter profiler (firings, tape traffic,
	// work/stall time, buffer high-water marks). Read the results from the
	// engine's Profile method; render a table with Profile().Table().
	Profile bool
	// TracePath enables the runtime trace recorder; after the run, write
	// the Chrome trace with engine.TraceRecorder().WriteFile(TracePath)
	// (cmd/streamit-run does this for its -trace flag).
	TracePath string
	// Workers is the mapped engine's worker-core count (0 selects
	// runtime.GOMAXPROCS).
	Workers int
	// MapStrategy selects the mapped engine's graph rewrite: task (no
	// rewrite), fine-grained data (replicate every stateless filter),
	// task+data (fuse stateless regions, then judicious fission), or the
	// pipelined forms task+swp (no rewrite, stage-skewed execution) and
	// task+data+swp (rewrite plus stage skew). The zero value is task+data.
	MapStrategy partition.Strategy
	// MeasuredWorkNS feeds profiled per-firing work (see ProfileWork) back
	// into the mapped rewrite and worker assignment in place of the static
	// IL estimates.
	MeasuredWorkNS map[string]int64
	// QueueDepth bounds the mapped engine's cross-worker channels, in
	// batches (0 selects exec.DefaultQueueDepth). The backpressure bound:
	// a producer runs at most QueueDepth iterations ahead of a consumer.
	QueueDepth int
	// CheckpointEvery makes the mapped engine take a coordinated
	// checkpoint every N steady iterations — the rollback target for
	// worker-crash recovery. 0 checkpoints only when a worker fault is
	// scheduled (then every iteration).
	CheckpointEvery int
	// Elastic enables the mapped engine's runtime replan controller:
	// windowed per-worker busy time from the profiler trips a re-plan of
	// the same elaborated graph from live measured work, applied at a
	// checkpoint barrier with no restart and bit-identical output. Implies
	// Profile on the mapped engine.
	Elastic bool
	// ElasticWindow is the imbalance-observation window in steady
	// iterations (macro-cycles on pipelined plans); 0 selects
	// exec.DefaultElasticWindow.
	ElasticWindow int
	// ElasticThreshold is the max/mean per-worker busy ratio that trips a
	// re-plan; 0 selects exec.DefaultElasticThreshold.
	ElasticThreshold float64
	// ResizeAt/ResizeTo schedule a one-shot elastic worker-count change:
	// at the first barrier at or past iteration ResizeAt the engine
	// re-plans onto ResizeTo workers. Zero values disable it; requires
	// Elastic.
	ResizeAt int64
	ResizeTo int
	// Log receives driver notes (engine fallbacks and the like). Nil logs
	// through the standard logger.
	Log func(format string, args ...any)
}

func (o RunOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
		return
	}
	log.Printf(format, args...)
}

// execOptions lowers driver-level run options to the engine layer.
func (o RunOptions) execOptions() exec.Options {
	opts := exec.Options{
		Backend:          o.Backend,
		Faults:           o.Faults,
		OnError:          o.OnError,
		Watchdog:         o.Watchdog,
		Profile:          o.Profile,
		QueueDepth:       o.QueueDepth,
		CheckpointEvery:  o.CheckpointEvery,
		Elastic:          o.Elastic,
		ElasticWindow:    o.ElasticWindow,
		ElasticThreshold: o.ElasticThreshold,
		ResizeAt:         o.ResizeAt,
		ResizeTo:         o.ResizeTo,
	}
	if o.TracePath != "" {
		opts.Trace = obs.NewRecorder()
	}
	return opts
}

// ParseBackend maps the user-facing backend names ("vm", "interp") onto
// exec.Backend values; see the -backend flag of cmd/streamit-run.
func ParseBackend(s string) (exec.Backend, error) { return exec.ParseBackend(s) }

// Compiled is the result of compilation: the (possibly optimized) program,
// its flat graph, and its schedule.
type Compiled struct {
	Program  *ir.Program
	Graph    *ir.Graph
	Schedule *sched.Schedule
	Linear   *linear.Report
	Stats    ir.Stats

	// shared memoizes the per-backend execution-artifact bundles (see
	// Shared); engines stamped from one Compiled never recompile kernels.
	sharedMu sync.Mutex
	shared   map[exec.Backend]*exec.Shared
}

// Compile verifies and schedules prog, applying the optional linear
// optimization first. The input program is not modified.
func Compile(prog *ir.Program, opts Options) (*Compiled, error) {
	c := &Compiled{Program: prog}
	if opts.Linear != nil {
		rep := &linear.Report{}
		top, err := linear.Optimize(prog.Top, *opts.Linear, rep)
		if err != nil {
			return nil, fmt.Errorf("linear optimization: %w", err)
		}
		c.Program = &ir.Program{
			Name: prog.Name, Top: top,
			Portals: prog.Portals, Constraints: prog.Constraints,
		}
		c.Linear = rep
	}
	g, err := ir.Flatten(c.Program)
	if err != nil {
		return nil, err
	}
	s, err := sched.ComputeOpts(g, sched.Options{MaxLiveItems: opts.MaxLiveItems})
	if err != nil {
		return nil, err
	}
	if opts.CheckFeedback {
		if err := sdep.CheckFeedback(g, s); err != nil {
			return nil, err
		}
	}
	st, err := g.ComputeStats()
	if err != nil {
		return nil, err
	}
	c.Graph, c.Schedule, c.Stats = g, s, st
	return c, nil
}

// CompileSource parses, elaborates (from the stream named top, typically
// "Main"), and compiles a textual StreamIt program.
func CompileSource(src, top string, opts Options) (*Compiled, error) {
	prog, err := lang.ParseAndElaborate(src, top)
	if err != nil {
		return nil, err
	}
	return Compile(prog, opts)
}

// Engine builds a sequential execution engine for the compiled program on
// the default (VM) backend.
func (c *Compiled) Engine() (*exec.Engine, error) {
	return c.EngineOpts(RunOptions{})
}

// EngineOpts is Engine with explicit run options. Construction goes
// through the compiled program's shared artifact bundle, so building many
// engines from one Compiled compiles each work function exactly once.
func (c *Compiled) EngineOpts(opts RunOptions) (*exec.Engine, error) {
	sh, err := c.Shared(opts.Backend)
	if err != nil {
		return nil, err
	}
	return sh.NewEngine(opts.execOptions())
}

// ParallelEngine builds the goroutine-per-filter backend (no teleport
// messaging or feedback loops; see exec.NewParallel).
func (c *Compiled) ParallelEngine() (*exec.ParallelEngine, error) {
	return c.ParallelEngineOpts(RunOptions{})
}

// ParallelEngineOpts is ParallelEngine with explicit run options.
func (c *Compiled) ParallelEngineOpts(opts RunOptions) (*exec.ParallelEngine, error) {
	return exec.NewParallelOpts(c.Graph, c.Schedule, opts.execOptions())
}

// MappedEngine builds the host-mapped engine with default options: the
// graph is rewritten by fusion and executable fission (task+data) and the
// partitions run one goroutine per worker core.
func (c *Compiled) MappedEngine() (*exec.MappedEngine, error) {
	return c.MappedEngineOpts(RunOptions{})
}

// MappedEngineOpts rewrites the compiled graph with the configured
// strategy (RunOptions.MapStrategy), assigns the result to worker cores,
// and builds the mapped engine. The rewrite is bit-identical: the mapped
// engine produces exactly the sequential engine's output streams.
func (c *Compiled) MappedEngineOpts(opts RunOptions) (*exec.MappedEngine, error) {
	strat := opts.MapStrategy
	if strat == "" {
		strat = partition.StratCoarseData
	}
	plan, err := partition.BuildExecPlan(c.Program, c.Graph, c.Schedule, partition.ExecPlanOptions{
		Strategy:       strat,
		Workers:        opts.Workers,
		MeasuredWorkNS: opts.MeasuredWorkNS,
	})
	if err != nil {
		return nil, err
	}
	g2, err := ir.Flatten(plan.Program)
	if err != nil {
		return nil, fmt.Errorf("core: flattening mapped rewrite: %w", err)
	}
	s2, err := sched.Compute(g2)
	if err != nil {
		return nil, fmt.Errorf("core: scheduling mapped rewrite: %w", err)
	}
	eopts := opts.execOptions()
	if plan.Pipelined {
		st, err := partition.PipelineStages(g2)
		if err != nil {
			return nil, fmt.Errorf("core: staging mapped rewrite: %w", err)
		}
		eopts.Stages = st.Levels
		eopts.StageClusters = st.Clusters
	}
	me, err := exec.NewMappedOpts(g2, s2, plan.Assign(g2, s2), plan.Workers, eopts)
	if err != nil {
		return nil, err
	}
	// Crash recovery re-packs the same rewritten graph onto the surviving
	// workers; the rewrite itself is never redone (its fission factor — and
	// with it the graph and checkpoint fingerprint — depends on the worker
	// count, so recovery must only re-assign).
	me.Replan = func(workers int) []int { return plan.AssignN(g2, s2, workers) }
	// The elastic controller re-packs from live measured work. The profile
	// it hands over is keyed by the rewritten graph's node names, which is
	// exactly the key space AssignMeasured expects — no demangling here
	// (contrast MeasuredWorkFromMapped, which crosses back to the original
	// flat names for a fresh compile).
	me.ReplanMeasured = func(workers int, perFiringNS map[string]int64) []int {
		return plan.AssignMeasured(g2, s2, workers, perFiringNS)
	}
	return me, nil
}

// MeasuredWorkFromMapped translates a work profile taken on a mapped
// engine's rewritten graph back onto this program's flat filter names — the
// key space RunOptions.MeasuredWorkNS consumes. The mapped engine runs the
// plan's rewritten program, so its Profiler.WorkNSPerFiring keys are fused
// segments and fission replicas ("lowpass+demod/f2#5"); feeding those
// directly into MeasuredWorkNS silently matches nothing. This closes the
// profile→partition feedback loop for mapped runs: fused segments are split
// among their constituents, replicas summed, and everything re-expressed as
// nanoseconds per original-node firing. strat and workers must match the
// run that produced the profile.
func (c *Compiled) MeasuredWorkFromMapped(strat partition.Strategy, workers int, perFiringNS map[string]int64) (map[string]int64, error) {
	if strat == "" {
		strat = partition.StratCoarseData
	}
	plan, err := partition.BuildExecPlan(c.Program, c.Graph, c.Schedule, partition.ExecPlanOptions{
		Strategy: strat,
		Workers:  workers,
	})
	if err != nil {
		return nil, err
	}
	g2, err := ir.Flatten(plan.Program)
	if err != nil {
		return nil, fmt.Errorf("core: flattening mapped rewrite: %w", err)
	}
	s2, err := sched.Compute(g2)
	if err != nil {
		return nil, fmt.Errorf("core: scheduling mapped rewrite: %w", err)
	}
	return partition.MeasuredFromMapped(c.Graph, c.Schedule, g2, s2, perFiringNS), nil
}

// EngineKind names an execution engine family for Runner.
type EngineKind string

const (
	EngineSequential EngineKind = "sequential"
	EngineParallel   EngineKind = "parallel"
	EngineMapped     EngineKind = "mapped"
)

// ParseEngine maps user-facing engine names onto EngineKind values.
func ParseEngine(s string) (EngineKind, error) {
	switch EngineKind(s) {
	case EngineSequential, EngineParallel, EngineMapped:
		return EngineKind(s), nil
	}
	return "", fmt.Errorf("core: unknown engine %q (want sequential, parallel, or mapped)", s)
}

// Runner is the execution surface shared by the sequential, parallel, and
// mapped engines: run a number of steady-state iterations and expose the
// observability hooks.
type Runner interface {
	Run(iters int) error
	Profile() *obs.Profiler
	TraceRecorder() *obs.Recorder
	SupervisionReport() string
	Degraded() map[string]exec.DegradedStats
}

// concurrencyBlocker reports why the compiled program cannot run on the
// concurrent engines, or "" when it can: feedback loops and teleport
// messaging both need the sequential runtime's global firing order.
func (c *Compiled) concurrencyBlocker() string {
	for _, e := range c.Graph.Edges {
		if e.Back {
			return "feedback loop"
		}
	}
	if len(c.Graph.Portals) > 0 || len(c.Graph.Constraints) > 0 {
		return "teleport messaging"
	}
	for _, n := range c.Graph.Nodes {
		if n.Kind == ir.NodeFilter && n.Filter.WorkFn == nil && wfunc.SendsMessages(n.Filter.Kernel.Work) {
			return "message-sending filter " + n.Name
		}
	}
	return ""
}

// Runner builds the requested engine. Programs whose features the
// concurrent engines cannot execute (feedback loops, teleport messaging)
// are detected up front and fall back to the sequential engine with a
// logged note instead of failing engine construction. The mapped engine
// under a pipelined strategy (RunOptions.MapStrategy task+swp or
// task+data+swp) hosts both features in stage clusters, so it never falls
// back.
func (c *Compiled) Runner(kind EngineKind, opts RunOptions) (Runner, error) {
	if kind != EngineSequential && !(kind == EngineMapped && opts.MapStrategy.Pipelined()) {
		if why := c.concurrencyBlocker(); why != "" {
			opts.logf("core: %s engine unavailable for %s (%s); falling back to sequential", kind, c.Program.Name, why)
			kind = EngineSequential
		}
	}
	switch kind {
	case EngineSequential:
		return c.EngineOpts(opts)
	case EngineParallel:
		return c.ParallelEngineOpts(opts)
	case EngineMapped:
		return c.MappedEngineOpts(opts)
	}
	return nil, fmt.Errorf("core: unknown engine kind %q", kind)
}

// Run builds the requested engine (falling back to sequential when the
// program demands it, see Runner) and runs iters steady-state iterations,
// returning the engine for inspection of profiles and reports.
func (c *Compiled) Run(kind EngineKind, iters int, opts RunOptions) (Runner, error) {
	r, err := c.Runner(kind, opts)
	if err != nil {
		return nil, err
	}
	return r, r.Run(iters)
}

// CompileDynamic parses and flattens a program with dynamic-rate filters
// (no static schedule exists) and returns the demand-driven engine.
func CompileDynamic(prog *ir.Program) (*exec.DynamicEngine, error) {
	return CompileDynamicOpts(prog, RunOptions{})
}

// CompileDynamicOpts is CompileDynamic with explicit run options.
func CompileDynamicOpts(prog *ir.Program, opts RunOptions) (*exec.DynamicEngine, error) {
	g, err := ir.Flatten(prog)
	if err != nil {
		return nil, err
	}
	return exec.NewDynamicOpts(g, opts.execOptions())
}

// CompileSourceDynamic is CompileDynamic over textual source.
func CompileSourceDynamic(src, top string) (*exec.DynamicEngine, error) {
	return CompileSourceDynamicOpts(src, top, RunOptions{})
}

// CompileSourceDynamicOpts is CompileSourceDynamic with explicit run
// options.
func CompileSourceDynamicOpts(src, top string, opts RunOptions) (*exec.DynamicEngine, error) {
	prog, err := lang.ParseAndElaborate(src, top)
	if err != nil {
		return nil, err
	}
	return CompileDynamicOpts(prog, opts)
}

// MapOnto partitions the program for the simulated multicore with the
// given strategy and simulates iters steady-state iterations.
func (c *Compiled) MapOnto(strat partition.Strategy, cfg machine.Config, iters int) (*machine.Result, error) {
	pg, err := partition.Build(c.Graph, c.Schedule)
	if err != nil {
		return nil, err
	}
	plan, err := pg.Map(strat, cfg.Tiles())
	if err != nil {
		return nil, err
	}
	return plan.Simulate(cfg, iters)
}

// MapOntoTraced is MapOnto plus a Chrome trace JSON written to tracePath.
func (c *Compiled) MapOntoTraced(strat partition.Strategy, cfg machine.Config, iters int, tracePath string) (*machine.Result, error) {
	pg, err := partition.Build(c.Graph, c.Schedule)
	if err != nil {
		return nil, err
	}
	plan, err := pg.Map(strat, cfg.Tiles())
	if err != nil {
		return nil, err
	}
	res, events, err := machine.SimulateTrace(plan.Graph, plan.Mapping, cfg, iters)
	if err != nil {
		return nil, err
	}
	if plan.Scale > 1 {
		res.CyclesPerIter /= float64(plan.Scale)
		res.ItersPerSec *= float64(plan.Scale)
	}
	f, err := os.Create(tracePath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := machine.WriteChromeTrace(f, events); err != nil {
		return nil, err
	}
	return res, nil
}

// ProfileWork runs iters steady-state iterations on a profiled sequential
// engine and returns each filter's measured average work per firing in
// nanoseconds — the measured-work estimate MapOntoMeasured (and
// partition.BuildOptions.MeasuredWorkNS) consume in place of the static IL
// estimator.
func (c *Compiled) ProfileWork(iters int) (map[string]int64, error) {
	e, err := c.EngineOpts(RunOptions{Profile: true})
	if err != nil {
		return nil, err
	}
	if err := e.Run(iters); err != nil {
		return nil, err
	}
	return e.Profile().WorkNSPerFiring(), nil
}

// ProfileWorkMapped is ProfileWork on the mapped engine itself: it runs
// iters steady-state iterations under the given strategy with profiling on,
// then demangles the rewritten-graph profile back to flat filter names via
// MeasuredWorkFromMapped. Use it when the deployment target is the mapped
// engine — measuring on the topology that will actually run captures
// fusion/fission overheads the sequential profile cannot see.
func (c *Compiled) ProfileWorkMapped(strat partition.Strategy, workers, iters int) (map[string]int64, error) {
	me, err := c.MappedEngineOpts(RunOptions{Profile: true, MapStrategy: strat, Workers: workers})
	if err != nil {
		return nil, err
	}
	if err := me.Run(iters); err != nil {
		return nil, err
	}
	return c.MeasuredWorkFromMapped(strat, workers, me.Profile().WorkNSPerFiring())
}

// MapOntoMeasured is MapOnto with profiler-measured per-firing work (see
// ProfileWork) replacing the static work estimates during partitioning.
func (c *Compiled) MapOntoMeasured(strat partition.Strategy, cfg machine.Config, iters int, workNS map[string]int64) (*machine.Result, error) {
	pg, err := partition.BuildOpts(c.Graph, c.Schedule, partition.BuildOptions{MeasuredWorkNS: workNS})
	if err != nil {
		return nil, err
	}
	plan, err := pg.Map(strat, cfg.Tiles())
	if err != nil {
		return nil, err
	}
	return plan.Simulate(cfg, iters)
}

// Report renders a human-readable compilation report: structure, rates,
// characteristics, and per-filter linear analysis.
func (c *Compiled) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", c.Program.Name)
	fmt.Fprintf(&b, "  filters: %d (peeking %d, stateful %d)\n",
		c.Stats.Filters, c.Stats.Peeking, c.Stats.Stateful)
	fmt.Fprintf(&b, "  source-to-sink paths: shortest %d, longest %d\n",
		c.Stats.ShortestPath, c.Stats.LongestPath)
	fmt.Fprintf(&b, "  steady state: %d firings\n", c.Schedule.TotalFirings())
	fmt.Fprintf(&b, "  init schedule: %d firings\n", totalInit(c.Schedule))
	if c.Linear != nil {
		fmt.Fprintf(&b, "  linear optimization: %d/%d filters linear, %d combined away, %d matrix kernels, %d frequency kernels\n",
			c.Linear.LinearFilters, c.Linear.TotalFilters,
			c.Linear.Combined, c.Linear.MatrixReplaced, c.Linear.FreqTranslated)
	}
	b.WriteString("\nstructure:\n")
	b.WriteString(ir.String(c.Program.Top))

	// Per-node schedule summary.
	b.WriteString("\nsteady-state repetitions:\n")
	type row struct {
		name string
		reps int
	}
	var rows []row
	for _, n := range c.Graph.Nodes {
		rows = append(rows, row{n.Name, c.Schedule.Reps[n.ID]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-32s x%d\n", r.name, r.reps)
	}

	// Linear analysis of the (pre-optimization) program.
	lin := linear.Analyze(c.Program.Top)
	if len(lin) > 0 {
		b.WriteString("\nlinear filters (out = A*peeks + b):\n")
		var names []string
		for name := range lin {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			r := lin[name]
			fmt.Fprintf(&b, "  %-32s peek=%d pop=%d push=%d, %d nonzero coefficients\n",
				name, r.Peek, r.Pop, r.Push, r.NonZeros())
		}
	}
	return b.String()
}

func totalInit(s *sched.Schedule) int {
	t := 0
	for _, r := range s.InitReps {
		t += r
	}
	return t
}

// SdepTable renders the information-wavefront transfer functions between
// two named instances (declared with "as" in the source): for x = 1..n,
// the columns are ma{a->b}(x) and mi{a->b}(x) over the instances' output
// tapes. This is the paper's sdep made inspectable.
func (c *Compiled) SdepTable(aName, bName string, n int) (string, error) {
	a := c.Program.Named[aName]
	b := c.Program.Named[bName]
	if a == nil || b == nil {
		return "", fmt.Errorf("sdep: both instances must be declared with \"as\" (have %v)", keysOf(c.Program.Named))
	}
	na, nb := c.Graph.FilterNode[a], c.Graph.FilterNode[b]
	if na == nil || nb == nil {
		return "", fmt.Errorf("sdep: instances not present in the flattened graph")
	}
	ea, eb := na.OutEdge(), nb.OutEdge()
	if ea == nil {
		ea = na.InEdge()
	}
	if eb == nil {
		eb = nb.InEdge()
	}
	if ea == nil || eb == nil {
		return "", fmt.Errorf("sdep: instances have no tapes")
	}
	calc := sdep.NewCalc(c.Graph, c.Schedule)
	if !calc.Upstream(ea, eb) {
		return "", fmt.Errorf("sdep: %s is not upstream of %s", aName, bName)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "sdep between %s and %s (tapes %s -> %s)\n", aName, bName, ea, eb)
	fmt.Fprintf(&sb, "%6s %12s %12s\n", "x", "ma(x)", "mi(x)")
	for x := int64(1); x <= int64(n); x++ {
		ma, err := calc.Ma(ea, eb, x)
		if err != nil {
			return "", err
		}
		mi, err := calc.Mi(ea, eb, x)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%6d %12d %12d\n", x, ma, mi)
	}
	return sb.String(), nil
}

func keysOf(m map[string]*ir.Filter) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
