package core

import (
	"strings"
	"sync"
	"testing"

	"streamit/internal/exec"
)

const cacheTestSrc = `
void->float filter Src() { float n; work push 1 { push(n); n = n + 1; } }
float->void filter Out() { work pop 1 { pop(); } }
void->void pipeline Main() { add Src(); add Out(); }
`

func TestCacheHitReturnsSameCompiled(t *testing.T) {
	cc := NewCache()
	a, hit, err := cc.CompileSource(cacheTestSrc, "Main", Options{})
	if err != nil {
		t.Fatalf("first compile: %v", err)
	}
	if hit {
		t.Fatal("first compile reported a cache hit")
	}
	b, hit, err := cc.CompileSource(cacheTestSrc, "Main", Options{})
	if err != nil {
		t.Fatalf("second compile: %v", err)
	}
	if !hit {
		t.Fatal("second compile missed the cache")
	}
	if a != b {
		t.Fatal("cache hit returned a different *Compiled")
	}
	if entries, hits, misses := cc.Stats(); entries != 1 || hits != 1 || misses != 1 {
		t.Fatalf("stats = (%d, %d, %d), want (1, 1, 1)", entries, hits, misses)
	}
}

func TestCacheKeyedByTopAndOptions(t *testing.T) {
	cc := NewCache()
	a, _, err := cc.CompileSource(cacheTestSrc, "Main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, hit, err := cc.CompileSource(cacheTestSrc, "Main", Options{MaxLiveItems: 999})
	if err != nil {
		t.Fatal(err)
	}
	if hit || a == b {
		t.Fatal("different options shared one cache entry")
	}
	if entries, _, _ := cc.Stats(); entries != 2 {
		t.Fatalf("entries = %d, want 2", entries)
	}
}

func TestCacheRemembersErrors(t *testing.T) {
	cc := NewCache()
	_, _, err := cc.CompileSource("void->void pipeline Main() {}", "Main", Options{})
	if err == nil {
		t.Fatal("empty pipeline compiled")
	}
	_, hit, err2 := cc.CompileSource("void->void pipeline Main() {}", "Main", Options{})
	if err2 == nil || !hit {
		t.Fatalf("second attempt: hit=%v err=%v; want cached error", hit, err2)
	}
	if err.Error() != err2.Error() {
		t.Fatalf("cached error %q differs from original %q", err2, err)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	cc := NewCache()
	const goroutines = 32
	results := make([]*Compiled, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, _, err := cc.CompileSource(cacheTestSrc, "Main", Options{})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			results[i] = c
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent callers got different *Compiled objects")
		}
	}
	if entries, _, misses := cc.Stats(); entries != 1 || misses != 1 {
		t.Fatalf("entries=%d misses=%d, want 1 each (single-flight)", entries, misses)
	}
}

func TestCompiledSharedMemo(t *testing.T) {
	cc := NewCache()
	c, _, err := cc.CompileSource(cacheTestSrc, "Main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Shared(exec.BackendVM)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Shared(exec.BackendVM)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Shared rebuilt the bundle for the same backend")
	}
	iv, err := c.Shared(exec.BackendInterp)
	if err != nil {
		t.Fatal(err)
	}
	if iv == a {
		t.Fatal("different backends share one bundle")
	}
	if c.Fingerprint() != a.Fingerprint() {
		t.Fatal("Compiled and Shared fingerprints disagree")
	}
}

func TestCachedCompileSourceDefault(t *testing.T) {
	// Distinct source text so the process-wide DefaultCache cannot collide
	// with other tests.
	src := strings.Replace(cacheTestSrc, "n + 1", "n + 2", 1)
	a, _, err := CachedCompileSource(src, "Main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, hit, err := CachedCompileSource(src, "Main", Options{})
	if err != nil || !hit || a != b {
		t.Fatalf("DefaultCache reuse failed: hit=%v err=%v same=%v", hit, err, a == b)
	}
}
