package core

import (
	"fmt"

	"errors"
	"streamit/internal/ir"
	"strings"
	"testing"

	"streamit/internal/apps"
	"streamit/internal/exec"
	"streamit/internal/faults"
	"streamit/internal/linear"
	"streamit/internal/machine"
	"streamit/internal/partition"
)

const firSrc = `
void->float filter Ramp() {
    float n;
    work push 1 { push(n); n = n + 1; }
}
float->float filter Smooth(int N) {
    work peek N pop 1 push 1 {
        float s = 0;
        for (int i = 0; i < N; i++) s += peek(i);
        pop();
        push(s / N);
    }
}
float->float filter Smooth2(int N) {
    work peek N pop 1 push 1 {
        float s = 0;
        for (int i = 0; i < N; i++) s += peek(i);
        pop();
        push(s / N);
    }
}
float->void filter Out() { work pop 1 { pop(); } }
void->void pipeline Main() {
    add Ramp();
    add Smooth(8);
    add Smooth2(4);
    add Out();
}
`

func TestCompileSourceAndRun(t *testing.T) {
	c, err := CompileSource(firSrc, "Main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := c.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(16); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	for _, want := range []string{"filters: 4", "linear filters", "Smooth"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestCompileWithLinearOptimization(t *testing.T) {
	opt := linear.Options{Combine: true, Force: true}
	c, err := CompileSource(firSrc, "Main", Options{Linear: &opt})
	if err != nil {
		t.Fatal(err)
	}
	if c.Linear == nil || c.Linear.Combined < 1 {
		t.Fatalf("expected the two Smooth filters to combine, report %+v", c.Linear)
	}
	e, err := c.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(8); err != nil {
		t.Fatal(err)
	}
}

func TestMapOnto(t *testing.T) {
	prog := apps.FMRadio(4, 16)
	c, err := Compile(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	seq, err := c.MapOnto(partition.StratSequential, cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	par, err := c.MapOnto(partition.StratCombined, cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	if par.Speedup(seq) < 2 {
		t.Errorf("combined mapping speedup = %.2f, want >= 2", par.Speedup(seq))
	}
}

func TestCompileChecksFeedback(t *testing.T) {
	src := `
void->float filter Src() { float n; work push 1 { push(n); n = n + 1; } }
float->float filter Body() { work pop 2 push 1 { push(pop() + pop()); } }
float->void filter Out() { work pop 1 { pop(); } }
float->float feedbackloop Loop() {
    join roundrobin(1, 1);
    body Body();
    split duplicate;
    enqueue 1.0;
}
void->void pipeline Main() { add Src(); add Loop(); add Out(); }
`
	if _, err := CompileSource(src, "Main", Options{CheckFeedback: true}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxLiveItemsOption(t *testing.T) {
	c, err := CompileSource(firSrc, "Main", Options{MaxLiveItems: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, cap := range c.Schedule.BufCap {
		if cap > 64 {
			t.Errorf("buffer cap %d exceeds MaxLiveItems", cap)
		}
	}
}

func TestSdepTableTool(t *testing.T) {
	src := `
void->float filter Src() { float n; work push 1 { push(n); n = n + 1; } }
float->float filter Mid() { work peek 3 pop 1 push 1 { push(peek(2)); pop(); } }
float->void filter Out() { work pop 1 { pop(); } }
void->void pipeline Main() { add Src() as src; add Mid() as mid; add Out() as out; }
`
	c, err := CompileSource(src, "Main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := c.SdepTable("src", "mid", 8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl, "ma(x)") || !strings.Contains(tbl, "mi(x)") {
		t.Errorf("table missing columns:\n%s", tbl)
	}
	// Reversed order errors.
	if _, err := c.SdepTable("mid", "src", 4); err == nil {
		t.Error("expected upstream-order error")
	}
	// Unknown names error and list the available ones.
	if _, err := c.SdepTable("nope", "mid", 4); err == nil || !strings.Contains(err.Error(), "src") {
		t.Errorf("expected helpful unknown-name error, got %v", err)
	}
}

// TestRunOptionsSupervision: the driver threads fault plans, recovery
// policies, and the watchdog interval down to all three engines.
func TestRunOptionsSupervision(t *testing.T) {
	c, err := CompileSource(firSrc, "Main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.ParsePlan("panic:Smooth@3")
	if err != nil {
		t.Fatal(err)
	}
	pols, err := faults.ParsePolicies("Smooth=retry")
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOptions{Faults: plan, OnError: pols}

	e, err := c.EngineOpts(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(16); err != nil {
		t.Fatalf("retry policy should survive the injected panic: %v", err)
	}
	st := e.Degraded()["Smooth"]
	if st.Injected != 1 || st.Retries != 1 {
		t.Fatalf("degraded stats = %+v, want 1 injection / 1 retry", st)
	}

	pe, err := c.ParallelEngineOpts(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := pe.Run(16); err != nil {
		t.Fatalf("parallel retry failed: %v", err)
	}
	if pst := pe.Degraded()["Smooth"]; pst.Injected != 1 {
		t.Fatalf("parallel degraded stats = %+v", pst)
	}

	// The dynamic engine has no rollback point; recovery policies are a
	// construction-time error, surfaced through the driver.
	if _, err := CompileSourceDynamicOpts(firSrc, "Main", opts); err == nil {
		t.Fatal("dynamic engine accepted a recovery policy")
	}
}

// TestRunOptionsWatchdogDisabled: a negative watchdog interval reaches the
// parallel engine (the run fails via the fault, not a DeadlockError).
func TestRunOptionsWatchdogDisabled(t *testing.T) {
	c, err := CompileSource(firSrc, "Main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.ParsePlan("panic:Smooth@2")
	if err != nil {
		t.Fatal(err)
	}
	pe, err := c.ParallelEngineOpts(RunOptions{Faults: plan, Watchdog: -1})
	if err != nil {
		t.Fatal(err)
	}
	err = pe.Run(16)
	var ee *exec.ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want the injected *exec.ExecError", err)
	}
	if faults.BaseName(ee.Filter) != "Smooth" {
		t.Fatalf("error names %q, want Smooth", ee.Filter)
	}
}

// TestRunnerFeedbackFallback: programs with feedback loops cannot run on
// the concurrent engines; Runner must detect that up front and fall back
// to the sequential engine with a logged note, never a hard failure.
func TestRunnerFeedbackFallback(t *testing.T) {
	prog := &ir.Program{Name: "loop", Top: ir.Pipe("main",
		apps.Source("s"),
		&ir.FeedbackLoop{
			Name: "fl", Join: ir.RoundRobin(1, 1),
			Body:  apps.Adder("add", 2),
			Split: ir.Duplicate(), Delay: 1,
		},
		apps.Sink("k", 1),
	)}
	c, err := Compile(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []EngineKind{EngineParallel, EngineMapped} {
		var notes []string
		opts := RunOptions{Log: func(format string, args ...any) {
			notes = append(notes, fmt.Sprintf(format, args...))
		}}
		r, err := c.Run(kind, 8, opts)
		if err != nil {
			t.Fatalf("%s: fallback run failed: %v", kind, err)
		}
		if _, ok := r.(*exec.Engine); !ok {
			t.Fatalf("%s: runner is %T, want the sequential *exec.Engine", kind, r)
		}
		if len(notes) != 1 || !strings.Contains(notes[0], "feedback loop") {
			t.Fatalf("%s: fallback note not logged: %v", kind, notes)
		}
	}
}

// TestRunnerPipelinedNoFallback: under a pipelined mapped strategy the
// fallback is lifted — feedback-loop and teleport-messaging programs run
// on the real *exec.MappedEngine with no fallback note logged. (Value
// conformance for these workloads lives in the exec package's
// TestMappedPipelinedFeedback/Teleport.)
func TestRunnerPipelinedNoFallback(t *testing.T) {
	cases := []struct {
		name  string
		build func() *ir.Program
	}{
		{"feedback", func() *ir.Program { return apps.Reverb(4, 0.5) }},
		{"teleport", func() *ir.Program { return apps.FreqHoppingRadio(true) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Compile(tc.build(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, strat := range []partition.Strategy{partition.StratSWP, partition.StratCombined} {
				var notes []string
				r, err := c.Run(EngineMapped, 4, RunOptions{
					Workers: 3, MapStrategy: strat,
					Log: func(format string, args ...any) {
						notes = append(notes, fmt.Sprintf(format, args...))
					}})
				if err != nil {
					t.Fatalf("%s: pipelined mapped run failed: %v", strat, err)
				}
				if _, ok := r.(*exec.MappedEngine); !ok {
					t.Fatalf("%s: runner is %T, want *exec.MappedEngine", strat, r)
				}
				if len(notes) != 0 {
					t.Fatalf("%s: unexpected fallback notes: %v", strat, notes)
				}
			}
		})
	}
}

// TestRunnerKinds: each engine kind constructs its own engine type when the
// program supports it, and runs produce no error.
func TestRunnerKinds(t *testing.T) {
	c, err := CompileSource(firSrc, "Main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		kind EngineKind
		want string
	}{
		{EngineSequential, "*exec.Engine"},
		{EngineParallel, "*exec.ParallelEngine"},
		{EngineMapped, "*exec.MappedEngine"},
	}
	for _, tc := range cases {
		r, err := c.Run(tc.kind, 8, RunOptions{Workers: 2, Log: func(string, ...any) {
			t.Errorf("%s: unexpected fallback note", tc.kind)
		}})
		if err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		if got := fmt.Sprintf("%T", r); got != tc.want {
			t.Fatalf("kind %s built %s, want %s", tc.kind, got, tc.want)
		}
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Fatal("ParseEngine accepted an unknown engine")
	}
}

// TestMappedEngineRuns: the driver-level mapped construction rewrites the
// graph (task+data by default), runs it, and delivers the sink a whole
// multiple of the sequential engine's items per iteration count. (Exact
// value conformance across all apps and strategies is asserted by the
// exec package's TestMappedConformance.)
func TestMappedEngineRuns(t *testing.T) {
	build := func() *ir.Program { return apps.FMRadio(4, 16) }
	iters := 4

	cSeq, err := Compile(build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq := sinkPopped(t, cSeq, EngineSequential, iters)
	cMap, err := Compile(build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mapped := sinkPopped(t, cMap, EngineMapped, iters)
	if seq <= 0 || mapped < seq || mapped%seq != 0 {
		t.Fatalf("mapped sink saw %d items, want a positive whole multiple of the sequential %d", mapped, seq)
	}
}

// sinkPopped runs iters iterations on the given engine kind with profiling
// enabled and returns the items popped by the program's sink.
func sinkPopped(t *testing.T, c *Compiled, kind EngineKind, iters int) int64 {
	t.Helper()
	r, err := c.Run(kind, iters, RunOptions{Workers: 2, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	var popped int64
	for _, st := range r.Profile().Snapshot() {
		if strings.HasPrefix(st.Name, "speaker") {
			popped += st.Popped
		}
	}
	return popped
}

// TestMappedCrashRecoveryDriver: a worker-crash fault plan threaded
// through the driver completes on the surviving workers, with the crash
// visible in the degradation stats and the supervision report. (Bit-exact
// recovery is asserted at the exec layer; here we prove the driver wires
// CheckpointEvery, worker faults, and the re-planning hook together.)
func TestMappedCrashRecoveryDriver(t *testing.T) {
	c, err := Compile(apps.FMRadio(4, 16), Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.ParsePlan("crash:worker1@2")
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(EngineMapped, 6, RunOptions{
		Workers: 3, MapStrategy: partition.StratCoarseData,
		Faults: plan, CheckpointEvery: 1, QueueDepth: 2,
	})
	if err != nil {
		t.Fatalf("mapped run did not recover from the worker crash: %v", err)
	}
	me, ok := r.(*exec.MappedEngine)
	if !ok {
		t.Fatalf("runner is %T, want *exec.MappedEngine", r)
	}
	if me.Workers != 2 {
		t.Errorf("engine degraded to %d workers, want 2", me.Workers)
	}
	if me.Replan == nil {
		t.Error("driver did not install the partition re-planning hook")
	}
	st := me.Degraded()["worker1"]
	if st.Injected != 1 || st.Crashes != 1 {
		t.Errorf("worker1 stats = %+v, want 1 injection and 1 crash", st)
	}
	if rep := me.SupervisionReport(); !strings.Contains(rep, "crashes=1") {
		t.Errorf("supervision report does not count the crash:\n%s", rep)
	}
}

// TestMappedProfileFeedback: the profile→partition feedback loop closes for
// mapped runs. A mapped engine profiles the REWRITTEN graph — its counters
// are keyed by fused-segment and fission-replica names — so before
// ProfileWorkMapped existed, feeding a mapped profile into MeasuredWorkNS
// silently matched no flat node and the measured bias was dropped.
func TestMappedProfileFeedback(t *testing.T) {
	c, err := Compile(apps.FMRadio(4, 16), Options{})
	if err != nil {
		t.Fatal(err)
	}
	const strat = partition.StratCoarseData
	work, err := c.ProfileWorkMapped(strat, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(work) == 0 {
		t.Fatal("mapped profile translated to no measurements")
	}
	flat := map[string]bool{}
	for _, n := range c.Graph.Nodes {
		flat[n.Name] = true
	}
	for name, ns := range work {
		if !flat[name] {
			t.Errorf("translated key %q is not a flat node name of the original graph", name)
		}
		if ns < 1 {
			t.Errorf("translated work for %s = %d, want >= 1", name, ns)
		}
	}
	// The translated profile must be consumable end to end: the next
	// compile's mapped engine builds (and runs) with it installed.
	r, err := c.Run(EngineMapped, 2, RunOptions{
		Workers: 3, MapStrategy: strat, MeasuredWorkNS: work,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.(*exec.MappedEngine); !ok {
		t.Fatalf("runner is %T, want *exec.MappedEngine", r)
	}
}

// TestMappedElasticDriver: the driver lowers the elastic options and wires
// the measured re-plan hook; a scheduled mid-run resize lands on the target
// worker count.
func TestMappedElasticDriver(t *testing.T) {
	c, err := Compile(apps.FMRadio(4, 16), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(EngineMapped, 20, RunOptions{
		Workers: 4, MapStrategy: partition.StratCoarseData,
		Elastic: true, CheckpointEvery: 4, ResizeAt: 8, ResizeTo: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	me, ok := r.(*exec.MappedEngine)
	if !ok {
		t.Fatalf("runner is %T, want *exec.MappedEngine", r)
	}
	if me.ReplanMeasured == nil {
		t.Error("driver did not install the measured re-planning hook")
	}
	if me.Workers != 2 {
		t.Errorf("Workers = %d after scheduled resize, want 2", me.Workers)
	}
	if me.Replans() < 1 {
		t.Error("scheduled resize never re-planned")
	}
}
