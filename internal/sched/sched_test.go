package sched

import (
	"testing"
	"testing/quick"

	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

func filter(name string, peek, pop, push int) *ir.Filter {
	b := wfunc.NewKernel(name, peek, pop, push)
	var body []wfunc.Stmt
	for i := 0; i < pop; i++ {
		body = append(body, wfunc.Pop1())
	}
	for i := 0; i < push; i++ {
		body = append(body, wfunc.Push1(wfunc.C(0)))
	}
	b.WorkBody(body...)
	in, out := ir.TypeFloat, ir.TypeFloat
	if pop == 0 && peek == 0 {
		in = ir.TypeVoid
	}
	if push == 0 {
		out = ir.TypeVoid
	}
	return &ir.Filter{Kernel: b.Build(), In: in, Out: out}
}

func mustFlatten(t *testing.T, s ir.Stream) *ir.Graph {
	t.Helper()
	g, err := ir.FlattenStream("t", s)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSteadyRepsPipeline(t *testing.T) {
	// src ->(3) A: pop 2 push 3 -> B: pop 1 push 1 -> sink pop 2
	p := ir.Pipe("main",
		filter("src", 0, 0, 3),
		filter("A", 2, 2, 3),
		filter("B", 1, 1, 1),
		filter("snk", 2, 2, 0),
	)
	g := mustFlatten(t, p)
	reps, err := SteadyReps(g)
	if err != nil {
		t.Fatal(err)
	}
	// Balance: src*3 = A*2; A*3 = B*1; B*1 = snk*2.
	// Minimal: src=2, A=3, B=9, snk... B pushes 9, snk pops 2 -> no:
	// snk*2 = B*1 -> B must be even: src=4, A=6, B=18, snk=9.
	want := map[string]int{"src": 4, "A": 6, "B": 18, "snk": 9}
	for _, n := range g.Nodes {
		base := n.Filter.Kernel.Name
		if reps[n.ID] != want[base] {
			t.Errorf("reps[%s] = %d, want %d", base, reps[n.ID], want[base])
		}
	}
}

func TestSteadyRepsSplitJoin(t *testing.T) {
	sj := ir.SJ("sj", ir.RoundRobin(2, 1), ir.RoundRobin(1, 1),
		filter("a", 2, 2, 1), filter("b", 1, 1, 1))
	p := ir.Pipe("main", filter("src", 0, 0, 1), sj, filter("snk", 1, 1, 0))
	g := mustFlatten(t, p)
	reps, err := SteadyReps(g)
	if err != nil {
		t.Fatal(err)
	}
	// Splitter: pops 3, pushes 2|1 per firing. a fires 1x per split (2 in,
	// 1 out); b 1x. Joiner RR(1,1) pops 1+1 pushes 2. Balance gives
	// split=1, a=1, b=1, join=1, src=3, snk=2.
	for _, n := range g.Nodes {
		var want int
		switch {
		case n.Kind == ir.NodeSplitter, n.Kind == ir.NodeJoiner:
			want = 1
		case n.Filter.Kernel.Name == "src":
			want = 3
		case n.Filter.Kernel.Name == "snk":
			want = 2
		default:
			want = 1
		}
		if reps[n.ID] != want {
			t.Errorf("reps[%s] = %d, want %d", n.Name, reps[n.ID], want)
		}
	}
}

func TestInconsistentRatesDetected(t *testing.T) {
	// Branches of a splitjoin producing at mismatched rates: overflow.
	sj := ir.SJ("sj", ir.RoundRobin(1, 1), ir.RoundRobin(1, 1),
		filter("a", 1, 1, 2), filter("b", 1, 1, 1))
	p := ir.Pipe("main", filter("src", 0, 0, 1), sj, filter("snk", 1, 1, 0))
	g := mustFlatten(t, p)
	if _, err := SteadyReps(g); err == nil {
		t.Fatal("expected inconsistent-rate error")
	}
}

func TestInitScheduleForPeeking(t *testing.T) {
	// A peeks 4 pops 1: upstream must prime 3 extra items before steady.
	p := ir.Pipe("main",
		filter("src", 0, 0, 1),
		filter("A", 4, 1, 1),
		filter("snk", 1, 1, 0),
	)
	g := mustFlatten(t, p)
	s, err := Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	var srcNode *ir.Node
	for _, n := range g.Nodes {
		if n.Kind == ir.NodeFilter && n.Filter.Kernel.Name == "src" {
			srcNode = n
		}
	}
	if s.InitReps[srcNode.ID] != 3 {
		t.Errorf("src init reps = %d, want 3", s.InitReps[srcNode.ID])
	}
	// Execute init+steady symbolically and verify the peeker always sees
	// its full window.
	sim := NewSim(g)
	run := func(entries []Entry) {
		for _, en := range entries {
			for i := 0; i < en.Count; i++ {
				if !sim.CanFire(en.Node) {
					t.Fatalf("schedule fires %s when it cannot fire", en.Node.Name)
				}
				sim.Fire(en.Node)
			}
		}
	}
	run(s.Init)
	for k := 0; k < 5; k++ {
		run(s.Steady)
	}
}

func TestFeedbackLoopSchedulable(t *testing.T) {
	// Echo-style loop: joiner RR(1,1), body consumes 2 produces 2,
	// splitter RR(1,1), delay 1 on the feedback path.
	body := filter("body", 2, 2, 2)
	fl := &ir.FeedbackLoop{
		Name:  "loop",
		Join:  ir.RoundRobin(1, 1),
		Body:  body,
		Split: ir.RoundRobin(1, 1),
		Delay: 1,
	}
	p := ir.Pipe("main", filter("src", 0, 0, 1), fl, filter("snk", 1, 1, 0))
	g := mustFlatten(t, p)
	s, err := Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalFirings() == 0 {
		t.Fatal("empty steady schedule")
	}
}

func TestFeedbackLoopDeadlockDetected(t *testing.T) {
	// Same loop with no delay: the joiner can never fire (starved loop
	// input) — the paper's deadlock condition maxloop(x) < x + delay.
	body := filter("body", 2, 2, 2)
	fl := &ir.FeedbackLoop{
		Name:  "loop",
		Join:  ir.RoundRobin(1, 1),
		Body:  body,
		Split: ir.RoundRobin(1, 1),
		Delay: 0,
	}
	p := ir.Pipe("main", filter("src", 0, 0, 1), fl, filter("snk", 1, 1, 0))
	g := mustFlatten(t, p)
	if _, err := Compute(g); err == nil {
		t.Fatal("expected deadlock error for zero-delay feedback loop")
	}
}

func TestBufferBoundsRespectSchedule(t *testing.T) {
	p := ir.Pipe("main",
		filter("src", 0, 0, 7),
		filter("A", 3, 3, 2),
		filter("snk", 5, 5, 0),
	)
	g := mustFlatten(t, p)
	s, err := Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges {
		if s.BufCap[e.ID] <= 0 {
			t.Errorf("edge %s has zero buffer bound", e)
		}
		if s.BufCap[e.ID] > 1000 {
			t.Errorf("edge %s has implausible bound %d", e, s.BufCap[e.ID])
		}
	}
}

func TestMaxLiveItemsBoundsBuffers(t *testing.T) {
	// A bursty source: without constraint the greedy schedule buffers all
	// 12 items; with MAXITEMS it interleaves.
	p := ir.Pipe("main",
		filter("src", 0, 0, 12),
		filter("A", 1, 1, 1),
		filter("snk", 1, 1, 0),
	)
	g := mustFlatten(t, p)
	unconstrained, err := Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := ComputeOpts(g, Options{MaxLiveItems: 14})
	if err != nil {
		t.Fatal(err)
	}
	maxCap := func(s *Schedule) int {
		m := 0
		for _, c := range s.BufCap {
			if c > m {
				m = c
			}
		}
		return m
	}
	if maxCap(bounded) > 14 {
		t.Errorf("bounded schedule peak %d exceeds MAXITEMS", maxCap(bounded))
	}
	if maxCap(unconstrained) < maxCap(bounded) {
		t.Errorf("unconstrained peak %d below bounded peak %d", maxCap(unconstrained), maxCap(bounded))
	}
	// An infeasible bound is reported, not silently violated.
	if _, err := ComputeOpts(g, Options{MaxLiveItems: 5}); err == nil {
		t.Error("expected infeasible MAXITEMS bound to error")
	}
}

func TestSteadyStateIsPeriodic(t *testing.T) {
	// After init, executing the steady schedule returns every channel to
	// the same occupancy — checked internally by Compute, exercised here
	// over a nontrivial graph.
	sj := ir.SJ("sj", ir.Duplicate(), ir.RoundRobin(2, 3),
		filter("a", 1, 1, 2), filter("b", 1, 1, 3))
	p := ir.Pipe("main", filter("src", 0, 0, 1), sj, filter("snk", 5, 5, 0))
	g := mustFlatten(t, p)
	if _, err := Compute(g); err != nil {
		t.Fatal(err)
	}
}

// Property: for random rate pipelines, the balance equations hold exactly:
// reps[u]*push == reps[v]*pop on every edge, and reps is minimal (gcd 1).
func TestQuickBalanceEquations(t *testing.T) {
	f := func(rates []uint8) bool {
		if len(rates) < 4 {
			return true
		}
		if len(rates) > 12 {
			rates = rates[:12]
		}
		var children []ir.Stream
		children = append(children, filter("src", 0, 0, int(rates[0]%5)+1))
		prev := int(rates[0]%5) + 1
		for i := 1; i+1 < len(rates); i++ {
			pop := int(rates[i]%4) + 1
			push := int(rates[i+1]%4) + 1
			children = append(children, filter("f", pop, pop, push))
			prev = push
		}
		children = append(children, filter("snk", prev, prev, 0))
		g, err := ir.FlattenStream("q", ir.Pipe("main", children...))
		if err != nil {
			return true // duplicate-name single appearance etc.
		}
		reps, err := SteadyReps(g)
		if err != nil {
			return false
		}
		gcdAll := 0
		for _, e := range g.Edges {
			lhs := reps[e.Src.ID] * e.Src.PushPort(e.SrcPort)
			rhs := reps[e.Dst.ID] * e.Dst.PopPort(e.DstPort)
			if lhs != rhs {
				return false
			}
		}
		for _, r := range reps {
			gcdAll = int(gcd(int64(gcdAll), int64(r)))
		}
		return gcdAll == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestItemsPerSteady(t *testing.T) {
	p := ir.Pipe("main",
		filter("src", 0, 0, 3),
		filter("A", 2, 2, 1),
		filter("snk", 1, 1, 0),
	)
	g := mustFlatten(t, p)
	s, err := Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges {
		items := s.ItemsPerSteady(e)
		if items != s.Reps[e.Dst.ID]*e.Dst.PopPort(e.DstPort) {
			t.Errorf("edge %s: produced %d != consumed %d per steady", e, items, s.Reps[e.Dst.ID]*e.Dst.PopPort(e.DstPort))
		}
	}
}
