package sched

import (
	"testing"

	"streamit/internal/apps"
	"streamit/internal/ir"
)

// BenchmarkComputeSchedule measures full schedule construction (balance
// equations, init fixpoint, ordering, buffer bounds) on a real benchmark.
func BenchmarkComputeSchedule(b *testing.B) {
	g, err := ir.Flatten(apps.FMRadio(10, 64))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteadyReps measures just the balance-equation solver.
func BenchmarkSteadyReps(b *testing.B) {
	g, err := ir.Flatten(apps.DES(16))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SteadyReps(g); err != nil {
			b.Fatal(err)
		}
	}
}
