// Package sched computes execution schedules for flattened stream graphs:
// the steady-state repetition vector (from the synchronous-dataflow balance
// equations), the initialization schedule that primes peeking filters and
// feedback loops, an ordered steady-state schedule, and per-channel buffer
// bounds. It also implements the paper's operational-semantics extensions:
// the MAXITEMS live-item bound on the transition rule, and deadlock
// detection for under-delayed feedback loops.
package sched

import (
	"fmt"

	"streamit/internal/ir"
)

// Entry is a run of consecutive firings of one node in a schedule.
type Entry struct {
	Node  *ir.Node
	Count int
}

// Schedule is the complete execution plan for a graph.
type Schedule struct {
	Graph *ir.Graph
	// Reps[n.ID] is the number of firings of n per steady-state iteration.
	Reps []int
	// InitReps[n.ID] is the number of firings during initialization.
	InitReps []int
	// Init and Steady are ordered firing sequences; executing Init once and
	// then Steady repeatedly is a legal execution of the program.
	Init   []Entry
	Steady []Entry
	// BufCap[e.ID] is the maximum channel occupancy (in items) observed
	// over initialization plus two steady-state iterations; it bounds the
	// buffer requirement of this schedule.
	BufCap []int
}

// Options adjust schedule construction.
type Options struct {
	// MaxLiveItems, when positive, constrains the scheduler to never exceed
	// this many total un-popped items across all channels (the paper's
	// MAXITEMS transition-rule condition). Zero means unconstrained.
	MaxLiveItems int
}

// Compute builds the schedule for g with default options.
func Compute(g *ir.Graph) (*Schedule, error) {
	return ComputeOpts(g, Options{})
}

// ComputeOpts builds the schedule for g.
func ComputeOpts(g *ir.Graph, opt Options) (*Schedule, error) {
	reps, err := SteadyReps(g)
	if err != nil {
		return nil, err
	}
	initReps, err := initReps(g, reps)
	if err != nil {
		return nil, err
	}
	s := &Schedule{Graph: g, Reps: reps, InitReps: initReps}
	if err := s.order(opt); err != nil {
		return nil, err
	}
	return s, nil
}

// rational is an exact non-negative rational with small-term reduction.
type rational struct{ num, den int64 }

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

func (r rational) reduce() rational {
	g := gcd(r.num, r.den)
	if g == 0 {
		return rational{0, 1}
	}
	return rational{r.num / g, r.den / g}
}

func (r rational) mulFrac(num, den int64) (rational, error) {
	// Reduce eagerly to avoid overflow on deep graphs.
	g1 := gcd(r.num, den)
	g2 := gcd(num, r.den)
	if g1 == 0 {
		g1 = 1
	}
	if g2 == 0 {
		g2 = 1
	}
	n := (r.num / g1) * (num / g2)
	d := (r.den / g2) * (den / g1)
	if d == 0 {
		return rational{}, fmt.Errorf("zero denominator in rate computation")
	}
	if n < 0 || d < 0 || n > 1<<40 || d > 1<<40 {
		return rational{}, fmt.Errorf("repetition rates overflow; graph rates are badly matched")
	}
	return rational{n, d}.reduce(), nil
}

// SteadyReps solves the balance equations: for every edge u->v,
// reps[u]*push == reps[v]*pop. It returns the minimal positive integer
// solution, or an error when the rates are inconsistent (which manifests at
// runtime as unbounded buffer growth — the paper's overflow condition for
// mismatched split-join branches).
func SteadyReps(g *ir.Graph) ([]int, error) {
	if len(g.Nodes) == 0 {
		return nil, fmt.Errorf("empty graph")
	}
	for _, n := range g.Nodes {
		if k := n.KernelOf(); k != nil && k.Dynamic {
			return nil, fmt.Errorf("filter %s has dynamic rates; static scheduling requires constant rates (use the dynamic engine)", n.Name)
		}
	}
	rate := make([]rational, len(g.Nodes))
	visited := make([]bool, len(g.Nodes))

	for _, start := range g.Nodes {
		if visited[start.ID] {
			continue
		}
		rate[start.ID] = rational{1, 1}
		visited[start.ID] = true
		queue := []*ir.Node{start}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			check := func(other *ir.Node, want rational, e *ir.Edge) error {
				if !visited[other.ID] {
					rate[other.ID] = want
					visited[other.ID] = true
					queue = append(queue, other)
					return nil
				}
				have := rate[other.ID]
				if have.num*want.den != want.num*have.den {
					return fmt.Errorf("inconsistent data rates at channel %s: split-join branches produce items at different rates (steady-state buffer would grow without bound)", e)
				}
				return nil
			}
			for p, e := range n.Out {
				if e == nil {
					continue
				}
				push := int64(n.PushPort(p))
				pop := int64(e.Dst.PopPort(e.DstPort))
				if push == 0 || pop == 0 {
					return nil, fmt.Errorf("channel %s has a zero rate", e)
				}
				want, err := rate[n.ID].mulFrac(push, pop)
				if err != nil {
					return nil, err
				}
				if err := check(e.Dst, want, e); err != nil {
					return nil, err
				}
			}
			for p, e := range n.In {
				if e == nil {
					continue
				}
				pop := int64(n.PopPort(p))
				push := int64(e.Src.PushPort(e.SrcPort))
				if push == 0 || pop == 0 {
					return nil, fmt.Errorf("channel %s has a zero rate", e)
				}
				want, err := rate[n.ID].mulFrac(pop, push)
				if err != nil {
					return nil, err
				}
				if err := check(e.Src, want, e); err != nil {
					return nil, err
				}
			}
		}
	}

	// Scale to the minimal integer vector: multiply by lcm of denominators,
	// divide by gcd of numerators.
	var lcm int64 = 1
	for _, r := range rate {
		g := gcd(lcm, r.den)
		lcm = lcm / g * r.den
		if lcm > 1<<40 {
			return nil, fmt.Errorf("repetition rates overflow")
		}
	}
	var g0 int64
	nums := make([]int64, len(rate))
	for i, r := range rate {
		nums[i] = r.num * (lcm / r.den)
		g0 = gcd(g0, nums[i])
	}
	if g0 == 0 {
		g0 = 1
	}
	reps := make([]int, len(rate))
	for i := range reps {
		v := nums[i] / g0
		if v <= 0 || v > 1<<31 {
			return nil, fmt.Errorf("node %s has invalid repetition count %d", g.Nodes[i].Name, v)
		}
		reps[i] = int(v)
	}
	return reps, nil
}

// peekMargin is the number of items a node must keep buffered on its input
// beyond what it pops: peek-pop for filters, 0 for splitters/joiners.
func peekMargin(n *ir.Node) int {
	if n.Kind != ir.NodeFilter {
		return 0
	}
	k := n.Filter.Kernel
	return k.Peek - k.Pop
}

// initReps computes the initialization firing counts: after init, every
// channel into a peeking filter holds at least its peek-pop margin, so the
// steady state can repeat forever. The computation is a backwards fixpoint;
// feedback loops whose delay cannot satisfy the requirement diverge, which
// is reported as deadlock (the paper's deadlock-detection condition).
func initReps(g *ir.Graph, reps []int) ([]int, error) {
	init := make([]int, len(g.Nodes))
	// Divergence bound: a legal init schedule never fires a node more than
	// a few steady periods plus the firings needed to prime every peek
	// window in the graph. Feedback loops that keep demanding beyond this
	// are deadlocked.
	totalMargin := 0
	for _, n := range g.Nodes {
		totalMargin += peekMargin(n)
	}
	limit := func(n *ir.Node) int { return 10*reps[n.ID] + 2*totalMargin + 10 }

	changed := true
	for pass := 0; changed; pass++ {
		if pass > 4*len(g.Nodes)+16 {
			return nil, fmt.Errorf("deadlock: initialization requirements do not converge (feedback loop needs more delay)")
		}
		changed = false
		for _, v := range g.Nodes {
			for p, e := range v.In {
				if e == nil {
					continue
				}
				needed := init[v.ID]*v.PopPort(p) + marginOnEdge(v, p)
				req := needed - len(e.Initial)
				if req <= 0 {
					continue
				}
				u := e.Src
				push := u.PushPort(e.SrcPort)
				needFirings := (req + push - 1) / push
				if needFirings > init[u.ID] {
					if needFirings > limit(u) {
						return nil, fmt.Errorf("deadlock detected: %s would need %d init firings (feedback loop lacks sufficient delay)", u.Name, needFirings)
					}
					init[u.ID] = needFirings
					changed = true
				}
			}
		}
	}
	return init, nil
}

// marginOnEdge gives the post-init buffered-item requirement for input port
// p of node v. Filters have a single input carrying the peek margin.
func marginOnEdge(v *ir.Node, p int) int {
	if p == 0 {
		return peekMargin(v)
	}
	return 0
}

// Sim tracks item counts during abstract (value-free) execution of a graph.
// It is shared by the scheduler, the sdep computation, and verification.
type Sim struct {
	G *ir.Graph
	// Items[e.ID] is the current number of items buffered on edge e.
	Items []int
	// Fired[n.ID] counts total firings of node n.
	Fired []int
	// Pushed[e.ID] counts total items ever pushed onto edge e — the paper's
	// n(t) for tape t (initial feedback items count as pushed).
	Pushed []int64
}

// NewSim returns a fresh simulation state with feedback delays loaded.
func NewSim(g *ir.Graph) *Sim {
	s := &Sim{
		G:      g,
		Items:  make([]int, len(g.Edges)),
		Fired:  make([]int, len(g.Nodes)),
		Pushed: make([]int64, len(g.Edges)),
	}
	for _, e := range g.Edges {
		s.Items[e.ID] = len(e.Initial)
		s.Pushed[e.ID] = int64(len(e.Initial))
	}
	return s
}

// CanFire reports whether n has enough input available (peek-aware).
func (s *Sim) CanFire(n *ir.Node) bool {
	for p, e := range n.In {
		if e == nil {
			continue
		}
		if s.Items[e.ID] < n.PeekPort(p) {
			return false
		}
	}
	return true
}

// Fire updates counts for one firing of n. The caller must ensure CanFire.
func (s *Sim) Fire(n *ir.Node) {
	for p, e := range n.In {
		if e == nil {
			continue
		}
		s.Items[e.ID] -= n.PopPort(p)
	}
	for p, e := range n.Out {
		if e == nil {
			continue
		}
		s.Items[e.ID] += n.PushPort(p)
		s.Pushed[e.ID] += int64(n.PushPort(p))
	}
	s.Fired[n.ID]++
}

// Live returns the total number of buffered items across all channels.
func (s *Sim) Live() int {
	t := 0
	for _, v := range s.Items {
		t += v
	}
	return t
}

// order generates the Init and Steady entry sequences by simulating
// firings, and records buffer high-water marks.
func (s *Schedule) order(opt Options) error {
	g := s.Graph
	order, err := g.TopoOrder()
	if err != nil {
		return err
	}
	sim := NewSim(g)
	high := make([]int, len(g.Edges))
	note := func() {
		for i, v := range sim.Items {
			if v > high[i] {
				high[i] = v
			}
		}
	}
	note()

	// runPhase fires each node until it reaches target[n], sweeping in
	// topological order; peeking and feedback make multiple sweeps
	// necessary. A sweep with no progress means deadlock.
	runPhase := func(target []int, out *[]Entry, phase string) error {
		remaining := 0
		for _, n := range g.Nodes {
			remaining += target[n.ID] - sim.Fired[n.ID]
		}
		for remaining > 0 {
			progress := 0
			for _, n := range order {
				count := 0
				for sim.Fired[n.ID] < target[n.ID] && sim.CanFire(n) {
					if opt.MaxLiveItems > 0 && sim.Live()-n.TotalPop()+n.TotalPush() > opt.MaxLiveItems {
						break
					}
					sim.Fire(n)
					note()
					count++
				}
				if count > 0 {
					*out = append(*out, Entry{Node: n, Count: count})
					progress += count
				}
			}
			if progress == 0 {
				if opt.MaxLiveItems > 0 {
					return fmt.Errorf("no valid %s schedule within MAXITEMS=%d live items", phase, opt.MaxLiveItems)
				}
				return fmt.Errorf("deadlock during %s schedule: no node can fire (starved input channel)", phase)
			}
			remaining -= progress
		}
		return nil
	}

	// Init phase.
	target := make([]int, len(g.Nodes))
	copy(target, s.InitReps)
	if err := runPhase(target, &s.Init, "initialization"); err != nil {
		return err
	}

	// Two steady phases: the first is recorded as the steady schedule, the
	// second verifies periodicity and captures cross-period buffer peaks.
	after := append([]int(nil), sim.Items...)
	for i, n := range g.Nodes {
		target[i] = sim.Fired[n.ID] + s.Reps[n.ID]
	}
	if err := runPhase(target, &s.Steady, "steady-state"); err != nil {
		return err
	}
	for e := range g.Edges {
		if sim.Items[e] != after[e] {
			return fmt.Errorf("internal error: steady state did not return channel %s to its post-init occupancy", g.Edges[e])
		}
	}
	var scratch []Entry
	for i, n := range g.Nodes {
		target[i] = sim.Fired[n.ID] + s.Reps[n.ID]
	}
	if err := runPhase(target, &scratch, "steady-state verification"); err != nil {
		return err
	}
	s.BufCap = high
	return nil
}

// TotalFirings returns the number of firings in one steady iteration.
func (s *Schedule) TotalFirings() int {
	t := 0
	for _, r := range s.Reps {
		t += r
	}
	return t
}

// RepsOf returns the steady repetition count for a node.
func (s *Schedule) RepsOf(n *ir.Node) int { return s.Reps[n.ID] }

// ItemsPerSteady returns the number of items crossing edge e per steady
// iteration.
func (s *Schedule) ItemsPerSteady(e *ir.Edge) int {
	return s.Reps[e.Src.ID] * e.Src.PushPort(e.SrcPort)
}
