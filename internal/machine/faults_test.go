package machine

import (
	"strings"
	"testing"
)

// TestTileFaultStrandsNodes: a node mapped to a tile that dies mid-run has
// nowhere to go; the simulation reports the stranded nodes instead of
// completing.
func TestTileFaultStrandsNodes(t *testing.T) {
	g := chainGraph(4, 1000, 10)
	m := seqMapping(g)
	for i := range m.Tile {
		m.Tile[i] = i
	}
	fp := &FaultPlan{Tiles: []TileFault{{Tile: 2, AtCycle: 100}}}
	_, err := SimulateFaults(g, m, DefaultConfig(), 20, fp)
	if err == nil {
		t.Fatal("expected a stranded-node error")
	}
	if !strings.Contains(err.Error(), "tile 2") || !strings.Contains(err.Error(), "stranded") {
		t.Fatalf("error %q does not name the failed tile and stranded nodes", err)
	}
}

// TestTileFaultBarriered: the same detection holds in barriered mode.
func TestTileFaultBarriered(t *testing.T) {
	g := chainGraph(2, 1000, 10)
	m := seqMapping(g)
	m.Mode = ModeBarriered
	m.Tile = []int{0, 1}
	fp := &FaultPlan{Tiles: []TileFault{{Tile: 1, AtCycle: 0}}}
	if _, err := SimulateFaults(g, m, DefaultConfig(), 8, fp); err == nil {
		t.Fatal("expected a stranded-node error in barriered mode")
	}
}

// TestTileFaultNeverReached: a failure scheduled after the run finishes is
// never observed; the result is identical to the fault-free simulation.
func TestTileFaultNeverReached(t *testing.T) {
	g := chainGraph(3, 500, 8)
	m := seqMapping(g)
	m.Tile = []int{0, 1, 2}
	clean, err := Simulate(g, m, DefaultConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	fp := &FaultPlan{Tiles: []TileFault{{Tile: 1, AtCycle: 1 << 40}}}
	faulty, err := SimulateFaults(g, m, DefaultConfig(), 8, fp)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.CyclesPerIter != clean.CyclesPerIter || faulty.Elapsed != clean.Elapsed {
		t.Fatalf("unreached fault changed the simulation: %v vs %v", faulty, clean)
	}
}

// TestLinkFaultReroutesYX: tile 0 -> tile 5 differs in both dimensions, so
// severing the XY route's first link (0->1) leaves the YX route (0->4->5)
// alive: the run completes.
func TestLinkFaultReroutesYX(t *testing.T) {
	g := chainGraph(2, 100, 50)
	m := seqMapping(g)
	m.Tile = []int{0, 5}
	fp := &FaultPlan{Links: []LinkFault{{FromTile: 0, ToTile: 1, AtCycle: 0}}}
	res, err := SimulateFaults(g, m, DefaultConfig(), 8, fp)
	if err != nil {
		t.Fatalf("YX reroute should survive a single severed link: %v", err)
	}
	if res.CyclesPerIter <= 0 {
		t.Fatalf("bad result after reroute: %v", res)
	}
}

// TestLinkFaultBothRoutesSevered: severing the first hop of both the XY
// (0->1) and YX (0->4) routes isolates the producer tile; the transfer is a
// hard failure.
func TestLinkFaultBothRoutesSevered(t *testing.T) {
	g := chainGraph(2, 100, 50)
	m := seqMapping(g)
	m.Tile = []int{0, 5}
	fp := &FaultPlan{Links: []LinkFault{
		{FromTile: 0, ToTile: 1, AtCycle: 0},
		{FromTile: 0, ToTile: 4, AtCycle: 0},
	}}
	_, err := SimulateFaults(g, m, DefaultConfig(), 8, fp)
	if err == nil {
		t.Fatal("expected a communication failure with both routes severed")
	}
	if !strings.Contains(err.Error(), "routes") {
		t.Fatalf("error %q does not describe the severed routes", err)
	}
}

// TestLinkFaultSameRow: for tiles in the same row the XY and YX routes
// coincide, so one severed row link is already fatal.
func TestLinkFaultSameRow(t *testing.T) {
	g := chainGraph(2, 100, 50)
	m := seqMapping(g)
	m.Tile = []int{0, 3}
	fp := &FaultPlan{Links: []LinkFault{{FromTile: 1, ToTile: 2, AtCycle: 0}}}
	if _, err := SimulateFaults(g, m, DefaultConfig(), 8, fp); err == nil {
		t.Fatal("expected a communication failure: same-row routes coincide")
	}
}

// TestFaultPlanValidation: malformed plans are rejected up front.
func TestFaultPlanValidation(t *testing.T) {
	g := chainGraph(2, 100, 10)
	m := seqMapping(g)
	cases := []*FaultPlan{
		{Tiles: []TileFault{{Tile: 99, AtCycle: 0}}},
		{Tiles: []TileFault{{Tile: 0, AtCycle: -1}}},
		{Links: []LinkFault{{FromTile: 0, ToTile: 2, AtCycle: 0}}}, // not adjacent
		{Links: []LinkFault{{FromTile: 0, ToTile: 16, AtCycle: 0}}},
	}
	for i, fp := range cases {
		if _, err := SimulateFaults(g, m, DefaultConfig(), 8, fp); err == nil {
			t.Errorf("case %d: malformed plan accepted", i)
		}
	}
}

// TestEmptyFaultPlan: a nil or empty plan is exactly Simulate.
func TestEmptyFaultPlan(t *testing.T) {
	g := chainGraph(3, 500, 8)
	m := seqMapping(g)
	m.Tile = []int{0, 1, 2}
	clean, err := Simulate(g, m, DefaultConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range []*FaultPlan{nil, {}} {
		if !fp.Empty() {
			t.Fatal("plan should report empty")
		}
		res, err := SimulateFaults(g, m, DefaultConfig(), 8, fp)
		if err != nil {
			t.Fatal(err)
		}
		if res.CyclesPerIter != clean.CyclesPerIter {
			t.Fatalf("empty plan changed the simulation: %v vs %v", res, clean)
		}
	}
}
