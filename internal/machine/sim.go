package machine

import "fmt"

// link identifies one directional mesh link by its endpoints.
type link struct {
	fromX, fromY, toX, toY int
}

// sim holds the mutable state of one simulation run.
type sim struct {
	cfg      Config
	g        *WGraph
	m        *Mapping
	order    []*WNode
	inEdges  [][]*WEdge
	outEdges [][]*WEdge
	hook     func(TraceEvent)
	iter     int

	tileFree []int64
	linkFree map[link]int64
	portFree []int64
	busy     []int64

	// Fault-injection state: cycle each tile/link dies (MaxInt64 = never),
	// plus the first fault-induced error, latched by fail().
	tileDownAt []int64
	linkDownAt map[link]int64
	err        error

	// done[n] is the completion time of node n in the current iteration;
	// prevDone[n] in the previous iteration (for pipelined lag-1 deps).
	done, prevDone []int64
}

// Simulate executes iters steady-state iterations of g under mapping m and
// returns throughput and utilization metrics. Warmup iterations (pipeline
// fill) are excluded from the cycles-per-iteration measurement.
func Simulate(g *WGraph, m *Mapping, cfg Config, iters int) (*Result, error) {
	return simulateHooked(g, m, cfg, iters, nil, nil)
}

func simulateHooked(g *WGraph, m *Mapping, cfg Config, iters int, fp *FaultPlan, hook func(TraceEvent)) (*Result, error) {
	if err := fp.validate(cfg); err != nil {
		return nil, err
	}
	if len(m.Tile) != len(g.Nodes) {
		return nil, fmt.Errorf("machine: mapping covers %d nodes, graph has %d", len(m.Tile), len(g.Nodes))
	}
	for n, t := range m.Tile {
		if t < 0 || t >= cfg.Tiles() {
			return nil, fmt.Errorf("machine: node %d mapped to invalid tile %d", n, t)
		}
	}
	if iters < 4 {
		iters = 4
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	s := &sim{
		cfg: cfg, g: g, m: m, order: order, hook: hook,
		inEdges:  make([][]*WEdge, len(g.Nodes)),
		outEdges: make([][]*WEdge, len(g.Nodes)),
		tileFree: make([]int64, cfg.Tiles()),
		linkFree: map[link]int64{},
		portFree: make([]int64, cfg.DRAMPorts),
		busy:     make([]int64, cfg.Tiles()),
		done:     make([]int64, len(g.Nodes)),
		prevDone: make([]int64, len(g.Nodes)),
	}
	for _, e := range g.Edges {
		s.inEdges[e.Dst] = append(s.inEdges[e.Dst], e)
		s.outEdges[e.Src] = append(s.outEdges[e.Src], e)
	}
	s.applyFaultPlan(fp)

	warm := iters / 2
	var warmEnd, end int64
	for it := 0; it < iters; it++ {
		s.iter = it
		if m.Mode == ModeBarriered {
			end = s.runBarriered()
		} else {
			end = s.runPipelined()
		}
		if s.err != nil {
			return nil, s.err
		}
		if it == warm-1 {
			warmEnd = end
		}
	}
	measured := float64(end-warmEnd) / float64(iters-warm)
	var busyTotal int64
	for _, b := range s.busy {
		busyTotal += b
	}
	util := float64(busyTotal) / (float64(cfg.Tiles()) * float64(end))
	secondsPerIter := measured / (cfg.ClockMHz * 1e6)
	res := &Result{
		CyclesPerIter: measured,
		ItersPerSec:   1 / secondsPerIter,
		Utilization:   util,
		MFLOPS:        float64(g.TotalFlops()) / measured * cfg.ClockMHz,
		TileBusy:      s.busy,
		Elapsed:       end,
		Iters:         iters - warm,
	}
	return res, nil
}

func (s *sim) tileXY(t int) (int, int) { return t % s.cfg.Cols, t / s.cfg.Cols }

// record emits a trace event for one node execution interval.
func (s *sim) record(n *WNode, start, end int64) {
	if s.hook != nil {
		s.hook(TraceEvent{Node: n.Name, Tile: s.m.Tile[n.ID], Iter: s.iter, Start: start, End: end})
	}
}

// routeNoC reserves a route between two tiles for w words starting no
// earlier than ready, and returns the arrival time of the last word. The
// default route is dimension-ordered XY; if a link on it has failed, the
// YX route is tried, and if both are severed the transfer is a hard
// communication failure (recorded via fail, the run aborts).
func (s *sim) routeNoC(from, to int, w int64, ready int64) int64 {
	if w == 0 {
		return ready
	}
	// Check routes against failed links before reserving anything, so a
	// doomed transfer does not pollute link reservations.
	hops := s.pathXY(from, to)
	if s.pathBlocked(hops, ready) {
		hops = s.pathYX(from, to)
		if s.pathBlocked(hops, ready) {
			s.fail(fmt.Errorf("machine: transfer from tile %d to tile %d at cycle %d: both XY and YX routes cross failed links", from, to, ready))
			return ready
		}
	}
	t := ready
	for _, l := range hops {
		start := t
		if s.linkFree[l] > start {
			start = s.linkFree[l]
		}
		s.linkFree[l] = start + w
		t = start + 1 // head-word latency; the stream is pipelined
	}
	// Arrival of the last word: head latency accumulated in t, plus the
	// stream length behind the head.
	return t + w - 1
}

// routeDRAM reserves a store-then-load through the nearest DRAM port and
// returns availability at the consumer.
func (s *sim) routeDRAM(from, to int, w int64, ready int64) int64 {
	if w == 0 {
		return ready
	}
	port := s.nearestPort(from)
	start := ready
	if s.portFree[port] > start {
		start = s.portFree[port]
	}
	s.portFree[port] = start + w // write stream
	t := start + w
	port2 := s.nearestPort(to)
	if s.portFree[port2] > t {
		t = s.portFree[port2]
	}
	s.portFree[port2] = t + w // read stream
	return t + w
}

func (s *sim) nearestPort(tile int) int {
	// Ports sit on the grid's north edge, one per port, spread across
	// columns; a tile uses the port nearest its column.
	x, _ := s.tileXY(tile)
	p := x * s.cfg.DRAMPorts / s.cfg.Cols
	if p >= s.cfg.DRAMPorts {
		p = s.cfg.DRAMPorts - 1
	}
	return p
}

func sign(v int) int {
	if v < 0 {
		return -1
	}
	return 1
}

// commOverhead is the tile-side cost of moving a node's I/O.
func (s *sim) commOverhead(n *WNode) int64 {
	var words int64
	for _, e := range s.inEdges[n.ID] {
		if s.m.Tile[e.Src] != s.m.Tile[n.ID] {
			words += e.Items * s.wordCostRecv()
		} else {
			words += e.Items * s.cfg.LocalCost
		}
	}
	for _, e := range s.outEdges[n.ID] {
		if s.m.Tile[e.Dst] != s.m.Tile[n.ID] {
			words += e.Items * s.wordCostSend()
		} else {
			words += e.Items * s.cfg.LocalCost
		}
	}
	return words
}

func (s *sim) wordCostSend() int64 {
	if s.m.Comm == CommDRAM {
		return s.cfg.DRAMCost
	}
	return s.cfg.SendCost
}

func (s *sim) wordCostRecv() int64 {
	if s.m.Comm == CommDRAM {
		return s.cfg.DRAMCost
	}
	return s.cfg.RecvCost
}

// transfer reserves the communication path for edge e whose data became
// available at avail, returning arrival time at the consumer tile.
func (s *sim) transfer(e *WEdge, avail int64) int64 {
	ft, tt := s.m.Tile[e.Src], s.m.Tile[e.Dst]
	if ft == tt {
		return avail
	}
	if s.m.Comm == CommDRAM {
		return s.routeDRAM(ft, tt, e.Items, avail)
	}
	return s.routeNoC(ft, tt, e.Items, avail)
}

// runBarriered executes one steady iteration stage by stage with global
// barriers (fork/join task- and data-parallel models). Returns the
// iteration completion time.
func (s *sim) runBarriered() int64 {
	maxStage := 0
	for _, st := range s.m.Stage {
		if st > maxStage {
			maxStage = st
		}
	}
	base := int64(0)
	for _, f := range s.tileFree {
		if f > base {
			base = f
		}
	}
	for st := 0; st <= maxStage; st++ {
		stageEnd := base
		for _, n := range s.order {
			if s.m.Stage[n.ID] != st {
				continue
			}
			tile := s.m.Tile[n.ID]
			start := base
			if s.tileFree[tile] > start {
				start = s.tileFree[tile]
			}
			for _, e := range s.inEdges[n.ID] {
				arr := s.transfer(e, s.done[e.Src])
				if arr > start {
					start = arr
				}
			}
			if !s.checkTile(n, tile, start) {
				return base
			}
			cost := n.Work + s.commOverhead(n)
			s.done[n.ID] = start + cost
			s.record(n, start, s.done[n.ID])
			s.tileFree[tile] = s.done[n.ID]
			s.busy[tile] += n.Work
			if s.done[n.ID] > stageEnd {
				stageEnd = s.done[n.ID]
			}
		}
		base = stageEnd + s.cfg.BarrierCost
		for t := range s.tileFree {
			if s.tileFree[t] < base {
				s.tileFree[t] = base
			}
		}
	}
	return base
}

// runPipelined executes one steady iteration with producer/consumer
// decoupling across iterations: node n at iteration t consumes the data its
// cross-tile producers made available at iteration t-1 (double buffering),
// so after the pipeline fills, throughput is set by the bottleneck tile or
// wire. Returns the iteration completion time.
func (s *sim) runPipelined() int64 {
	copy(s.prevDone, s.done)
	var end int64
	for _, n := range s.order {
		tile := s.m.Tile[n.ID]
		start := s.tileFree[tile]
		for _, e := range s.inEdges[n.ID] {
			var avail int64
			if s.m.Tile[e.Src] == tile {
				avail = s.done[e.Src] // same tile: produced this iteration
			} else {
				avail = s.transfer(e, s.prevDone[e.Src])
			}
			if avail > start {
				start = avail
			}
		}
		if !s.checkTile(n, tile, start) {
			return end
		}
		cost := n.Work + s.commOverhead(n)
		s.done[n.ID] = start + cost
		s.record(n, start, s.done[n.ID])
		s.tileFree[tile] = s.done[n.ID]
		s.busy[tile] += n.Work
		if s.done[n.ID] > end {
			end = s.done[n.ID]
		}
	}
	return end
}
