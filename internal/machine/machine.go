// Package machine simulates a Raw-like tiled multicore: a grid of
// single-issue in-order tiles connected by a nearest-neighbour mesh network
// (one word per link per cycle, XY dimension-ordered routing, FIFO link
// arbitration) with DRAM ports on the grid edge. It executes a mapped
// steady-state task graph and reports throughput, per-tile utilization, and
// MFLOPS — the quantities of the paper's evaluation figures.
//
// The simulation is event-driven at the granularity of one node's
// steady-state block (all firings of a node in one steady iteration):
// coarse enough to be fast, fine enough that load imbalance, pipeline
// fill, synchronization barriers, and link/DRAM contention all shape the
// results.
package machine

import (
	"fmt"
)

// Config describes the simulated machine.
type Config struct {
	Rows, Cols int     // grid dimensions (paper: 4x4 = 16 tiles)
	ClockMHz   float64 // paper: 450 MHz, 16 tiles => 7200 peak MFLOPS

	SendCost    int64 // tile-side cycles per word injected into the NoC
	RecvCost    int64 // tile-side cycles per word received
	DRAMCost    int64 // tile-side cycles per word to issue a DRAM transfer
	BarrierCost int64 // cycles to synchronize all tiles (fork/join models)
	LocalCost   int64 // cycles per word for same-tile producer/consumer
	DRAMPorts   int   // independent DRAM ports on the grid edge
}

// DefaultConfig is the 16-tile machine used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		Rows: 4, Cols: 4, ClockMHz: 450,
		SendCost: 1, RecvCost: 1, DRAMCost: 4,
		BarrierCost: 64, LocalCost: 1, DRAMPorts: 8,
	}
}

// Tiles returns the tile count.
func (c Config) Tiles() int { return c.Rows * c.Cols }

// PeakMFLOPS returns the machine's peak floating-point rate (1 FLOP per
// tile per cycle).
func (c Config) PeakMFLOPS() float64 { return c.ClockMHz * float64(c.Tiles()) }

// WNode is one task of the weighted steady-state graph: a (possibly fused
// or fissed) filter, splitter, or joiner, with its statically-estimated
// compute cost per steady iteration.
type WNode struct {
	ID       int
	Name     string
	Work     int64 // cycles per steady iteration
	Flops    int64 // floating-point ops per steady iteration
	Stateful bool
}

// WEdge carries Items words per steady iteration from Src to Dst.
type WEdge struct {
	Src, Dst int
	Items    int64
}

// WGraph is the weighted steady-state task graph.
type WGraph struct {
	Nodes []*WNode
	Edges []*WEdge
}

// AddNode appends a node and returns it.
func (g *WGraph) AddNode(name string, work, flops int64, stateful bool) *WNode {
	n := &WNode{ID: len(g.Nodes), Name: name, Work: work, Flops: flops, Stateful: stateful}
	g.Nodes = append(g.Nodes, n)
	return n
}

// AddEdge connects two nodes.
func (g *WGraph) AddEdge(src, dst *WNode, items int64) *WEdge {
	e := &WEdge{Src: src.ID, Dst: dst.ID, Items: items}
	g.Edges = append(g.Edges, e)
	return e
}

// TotalWork sums compute cycles per steady iteration.
func (g *WGraph) TotalWork() int64 {
	var t int64
	for _, n := range g.Nodes {
		t += n.Work
	}
	return t
}

// TotalFlops sums floating-point work per steady iteration.
func (g *WGraph) TotalFlops() int64 {
	var t int64
	for _, n := range g.Nodes {
		t += n.Flops
	}
	return t
}

// TopoOrder returns nodes in dependency order (the weighted graph is
// acyclic: feedback loops are folded into single nodes by the mappers).
func (g *WGraph) TopoOrder() ([]*WNode, error) {
	indeg := make([]int, len(g.Nodes))
	adj := make([][]int, len(g.Nodes))
	for _, e := range g.Edges {
		indeg[e.Dst]++
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	var q []int
	for i, d := range indeg {
		if d == 0 {
			q = append(q, i)
		}
	}
	var order []*WNode
	for len(q) > 0 {
		n := q[0]
		q = q[1:]
		order = append(order, g.Nodes[n])
		for _, m := range adj[n] {
			indeg[m]--
			if indeg[m] == 0 {
				q = append(q, m)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("machine: weighted task graph has a cycle")
	}
	return order, nil
}

// Mode selects the execution discipline of a mapping.
type Mode int

// Execution modes.
const (
	// ModeBarriered executes the graph stage by stage within each steady
	// iteration, with a global barrier between stages — the fork/join
	// discipline of the task-parallel and data-parallel models.
	ModeBarriered Mode = iota
	// ModePipelined decouples producers and consumers across iterations
	// (coarse-grained software pipelining / space multiplexing): after the
	// pipeline fills, every node works on a different iteration.
	ModePipelined
)

// CommKind selects how cross-tile channels move data.
type CommKind int

// Communication substrates.
const (
	// CommNoC streams words over the mesh (the space-multiplexed backend).
	CommNoC CommKind = iota
	// CommDRAM stores and re-loads through edge DRAM ports (the software-
	// pipelined backend, which buffers steady-state data in memory).
	CommDRAM
)

// Mapping assigns each weighted node to a tile and fixes the execution
// discipline.
type Mapping struct {
	Tile  []int // per node
	Stage []int // per node; used by ModeBarriered (usually topo levels)
	Mode  Mode
	Comm  CommKind
}

// Stages computes topo-level stages for barriered execution.
func Stages(g *WGraph) ([]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	stage := make([]int, len(g.Nodes))
	in := make([][]int, len(g.Nodes))
	for _, e := range g.Edges {
		in[e.Dst] = append(in[e.Dst], e.Src)
	}
	for _, n := range order {
		s := 0
		for _, p := range in[n.ID] {
			if stage[p]+1 > s {
				s = stage[p] + 1
			}
		}
		stage[n.ID] = s
	}
	return stage, nil
}

// Result reports the outcome of a simulation.
type Result struct {
	CyclesPerIter float64
	// Throughput in steady iterations per second at the configured clock.
	ItersPerSec float64
	// Utilization is busy compute cycles / (tiles * elapsed).
	Utilization float64
	MFLOPS      float64
	TileBusy    []int64
	Elapsed     int64
	Iters       int
}

// Speedup returns other's cycles/iter divided by r's (how much faster r is).
func (r *Result) Speedup(base *Result) float64 {
	if r.CyclesPerIter == 0 {
		return 0
	}
	return base.CyclesPerIter / r.CyclesPerIter
}
