package machine

import "testing"

// BenchmarkSimulatePipelined measures the discrete-event simulator on a
// 64-node graph for 24 iterations.
func BenchmarkSimulatePipelined(b *testing.B) {
	g := &WGraph{}
	var prev *WNode
	for i := 0; i < 64; i++ {
		n := g.AddNode("n", int64(500+i*7), 100, false)
		if prev != nil {
			g.AddEdge(prev, n, 32)
		}
		prev = n
	}
	st, err := Stages(g)
	if err != nil {
		b.Fatal(err)
	}
	m := &Mapping{Tile: make([]int, len(g.Nodes)), Stage: st, Mode: ModePipelined, Comm: CommDRAM}
	for i := range m.Tile {
		m.Tile[i] = i % 16
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(g, m, DefaultConfig(), 24); err != nil {
			b.Fatal(err)
		}
	}
}
