package machine

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceEvent records one node execution interval during simulation, in
// simulated cycles.
type TraceEvent struct {
	Node  string
	Tile  int
	Iter  int
	Start int64
	End   int64
}

// SimulateTrace runs Simulate while recording per-node execution intervals
// (compute time only; transfers appear as gaps). The event list is ordered
// by issue time per tile.
func SimulateTrace(g *WGraph, m *Mapping, cfg Config, iters int) (*Result, []TraceEvent, error) {
	events := make([]TraceEvent, 0, iters*len(g.Nodes))
	res, err := simulateHooked(g, m, cfg, iters, nil, func(ev TraceEvent) {
		events = append(events, ev)
	})
	if err != nil {
		return nil, nil, err
	}
	return res, events, nil
}

// WriteChromeTrace renders events in the Chrome tracing JSON array format
// (load in chrome://tracing or Perfetto): one row per tile, one slice per
// node execution.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	type chromeEvent struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
	}
	out := make([]chromeEvent, 0, len(events))
	for _, ev := range events {
		out = append(out, chromeEvent{
			Name: fmt.Sprintf("%s (iter %d)", ev.Node, ev.Iter),
			Cat:  "compute",
			Ph:   "X",
			// One simulated cycle = one microsecond of trace time keeps
			// viewers happy.
			Ts:  float64(ev.Start),
			Dur: float64(ev.End - ev.Start),
			Pid: 0,
			Tid: ev.Tile,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
