package machine

import (
	"fmt"
	"io"
	"sort"

	"streamit/internal/obs"
)

// TraceEvent records one node execution interval during simulation, in
// simulated cycles.
type TraceEvent struct {
	Node  string
	Tile  int
	Iter  int
	Start int64
	End   int64
}

// SimulateTrace runs Simulate while recording per-node execution intervals
// (compute time only; transfers appear as gaps). The event list is ordered
// by issue time per tile.
func SimulateTrace(g *WGraph, m *Mapping, cfg Config, iters int) (*Result, []TraceEvent, error) {
	events := make([]TraceEvent, 0, iters*len(g.Nodes))
	res, err := simulateHooked(g, m, cfg, iters, nil, func(ev TraceEvent) {
		events = append(events, ev)
	})
	if err != nil {
		return nil, nil, err
	}
	return res, events, nil
}

// WriteChromeTrace renders events in the Chrome tracing JSON array format
// (load in chrome://tracing or Perfetto): one row per tile, one slice per
// node execution. Simulator events convert onto the shared internal/obs
// event stream, so NoC traces and runtime-engine traces use one encoder
// and one file format.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	tiles := map[int]bool{}
	for _, ev := range events {
		tiles[ev.Tile] = true
	}
	ids := make([]int, 0, len(tiles))
	for t := range tiles {
		ids = append(ids, t)
	}
	sort.Ints(ids)
	out := make([]obs.Event, 0, len(events)+len(ids))
	for _, t := range ids {
		out = append(out, obs.Event{Name: "thread_name", Phase: obs.PhaseMeta,
			Tid: t, Detail: fmt.Sprintf("tile %d", t)})
	}
	for _, ev := range events {
		out = append(out, obs.Event{
			Name:  fmt.Sprintf("%s (iter %d)", ev.Node, ev.Iter),
			Cat:   "compute",
			Phase: obs.PhaseSlice,
			// One simulated cycle = one microsecond of trace time keeps
			// viewers happy.
			TS:  float64(ev.Start),
			Dur: float64(ev.End - ev.Start),
			Tid: ev.Tile,
		})
	}
	return obs.WriteChromeTrace(w, out)
}
