package machine

import (
	"fmt"
	"math"
)

// TileFault takes one tile offline at a simulated cycle. The machine model
// has no spare tiles and no migration, so any node mapped to the tile that
// still needs to execute at or after AtCycle strands the computation: the
// simulation reports an error naming the stranded nodes rather than
// silently completing. (A run whose nodes finish before AtCycle never
// observes the fault.)
type TileFault struct {
	Tile    int
	AtCycle int64
}

// LinkFault severs the mesh link between two adjacent tiles (both
// directions) from AtCycle on. Routes that used the link fall back from
// dimension-ordered XY to YX routing; a transfer whose XY and YX routes
// are both severed is a hard communication failure.
type LinkFault struct {
	FromTile, ToTile int
	AtCycle          int64
}

// FaultPlan schedules tile and link failures for SimulateFaults.
type FaultPlan struct {
	Tiles []TileFault
	Links []LinkFault
}

// Empty reports whether the plan injects nothing.
func (p *FaultPlan) Empty() bool {
	return p == nil || (len(p.Tiles) == 0 && len(p.Links) == 0)
}

// validate checks every fault against the machine shape.
func (p *FaultPlan) validate(cfg Config) error {
	if p == nil {
		return nil
	}
	for _, tf := range p.Tiles {
		if tf.Tile < 0 || tf.Tile >= cfg.Tiles() {
			return fmt.Errorf("machine: tile fault on tile %d, machine has %d tiles", tf.Tile, cfg.Tiles())
		}
		if tf.AtCycle < 0 {
			return fmt.Errorf("machine: tile fault cycle %d is negative", tf.AtCycle)
		}
	}
	for _, lf := range p.Links {
		for _, t := range []int{lf.FromTile, lf.ToTile} {
			if t < 0 || t >= cfg.Tiles() {
				return fmt.Errorf("machine: link fault endpoint tile %d, machine has %d tiles", t, cfg.Tiles())
			}
		}
		x1, y1 := lf.FromTile%cfg.Cols, lf.FromTile/cfg.Cols
		x2, y2 := lf.ToTile%cfg.Cols, lf.ToTile/cfg.Cols
		if abs(x1-x2)+abs(y1-y2) != 1 {
			return fmt.Errorf("machine: link fault %d-%d does not name adjacent tiles", lf.FromTile, lf.ToTile)
		}
		if lf.AtCycle < 0 {
			return fmt.Errorf("machine: link fault cycle %d is negative", lf.AtCycle)
		}
	}
	return nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// SimulateFaults is Simulate with a fault plan: the simulation proceeds
// normally until a scheduled failure is actually exercised, then either
// reroutes around it (link failures with a live alternate route) or
// reports a structured error (stranded nodes, severed communication).
func SimulateFaults(g *WGraph, m *Mapping, cfg Config, iters int, fp *FaultPlan) (*Result, error) {
	return simulateHooked(g, m, cfg, iters, fp, nil)
}

// applyFaultPlan precomputes per-tile and per-link failure times.
func (s *sim) applyFaultPlan(fp *FaultPlan) {
	s.tileDownAt = make([]int64, s.cfg.Tiles())
	for i := range s.tileDownAt {
		s.tileDownAt[i] = math.MaxInt64
	}
	s.linkDownAt = map[link]int64{}
	if fp == nil {
		return
	}
	for _, tf := range fp.Tiles {
		if tf.AtCycle < s.tileDownAt[tf.Tile] {
			s.tileDownAt[tf.Tile] = tf.AtCycle
		}
	}
	for _, lf := range fp.Links {
		x1, y1 := s.tileXY(lf.FromTile)
		x2, y2 := s.tileXY(lf.ToTile)
		for _, l := range []link{{x1, y1, x2, y2}, {x2, y2, x1, y1}} {
			if down, ok := s.linkDownAt[l]; !ok || lf.AtCycle < down {
				s.linkDownAt[l] = lf.AtCycle
			}
		}
	}
}

// fail records the first fault-induced error; the run aborts at the next
// iteration boundary.
func (s *sim) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// checkTile verifies the tile executing n is still alive at start.
func (s *sim) checkTile(n *WNode, tile int, start int64) bool {
	down := s.tileDownAt[tile]
	if start < down {
		return true
	}
	var stranded []string
	for id, t := range s.m.Tile {
		if t == tile {
			stranded = append(stranded, s.g.Nodes[id].Name)
		}
	}
	s.fail(fmt.Errorf("machine: tile %d failed at cycle %d; nodes stranded with no spare tile: %v (first hit: %s at cycle %d)",
		tile, down, stranded, n.Name, start))
	return false
}

// linkDown reports whether l is severed for a use starting at t.
func (s *sim) linkDown(l link, t int64) bool {
	down, ok := s.linkDownAt[l]
	return ok && t >= down
}

// pathXY returns the dimension-ordered (X then Y) hop list.
func (s *sim) pathXY(from, to int) []link {
	x1, y1 := s.tileXY(from)
	x2, y2 := s.tileXY(to)
	var hops []link
	for x1 != x2 {
		nx := x1 + sign(x2-x1)
		hops = append(hops, link{x1, y1, nx, y1})
		x1 = nx
	}
	for y1 != y2 {
		ny := y1 + sign(y2-y1)
		hops = append(hops, link{x1, y1, x1, ny})
		y1 = ny
	}
	return hops
}

// pathYX returns the Y-then-X hop list (the fallback route under link
// failures; deadlock-freedom is not modeled at this granularity).
func (s *sim) pathYX(from, to int) []link {
	x1, y1 := s.tileXY(from)
	x2, y2 := s.tileXY(to)
	var hops []link
	for y1 != y2 {
		ny := y1 + sign(y2-y1)
		hops = append(hops, link{x1, y1, x1, ny})
		y1 = ny
	}
	for x1 != x2 {
		nx := x1 + sign(x2-x1)
		hops = append(hops, link{x1, y1, nx, y1})
		x1 = nx
	}
	return hops
}

// pathBlocked reports whether any hop is severed for a route starting at
// ready.
func (s *sim) pathBlocked(hops []link, ready int64) bool {
	for _, l := range hops {
		if s.linkDown(l, ready) {
			return true
		}
	}
	return false
}
