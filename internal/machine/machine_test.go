package machine

import (
	"bytes"
	"testing"
)

// chainGraph builds a linear chain of n nodes with equal work and unit
// traffic.
func chainGraph(n int, work int64, items int64) *WGraph {
	g := &WGraph{}
	var prev *WNode
	for i := 0; i < n; i++ {
		node := g.AddNode("n", work, work/2, false)
		if prev != nil {
			g.AddEdge(prev, node, items)
		}
		prev = node
	}
	return g
}

func seqMapping(g *WGraph) *Mapping {
	m := &Mapping{Tile: make([]int, len(g.Nodes)), Mode: ModePipelined, Comm: CommNoC}
	st, _ := Stages(g)
	m.Stage = st
	return m
}

func TestSequentialBaseline(t *testing.T) {
	g := chainGraph(4, 1000, 10)
	m := seqMapping(g) // all on tile 0
	res, err := Simulate(g, m, DefaultConfig(), 20)
	if err != nil {
		t.Fatal(err)
	}
	// All work serializes on one tile: >= 4000 cycles/iter.
	if res.CyclesPerIter < 4000 {
		t.Errorf("single-tile chain = %.0f cycles/iter, want >= 4000", res.CyclesPerIter)
	}
	if res.Utilization > 1.0001 || res.Utilization < 0 {
		t.Errorf("utilization %v out of range", res.Utilization)
	}
}

func TestPipelinedSpeedup(t *testing.T) {
	g := chainGraph(4, 1000, 10)
	seq := seqMapping(g)
	seqRes, err := Simulate(g, seq, DefaultConfig(), 20)
	if err != nil {
		t.Fatal(err)
	}
	par := seqMapping(g)
	for i := range par.Tile {
		par.Tile[i] = i // one node per tile
	}
	parRes, err := Simulate(g, par, DefaultConfig(), 20)
	if err != nil {
		t.Fatal(err)
	}
	sp := parRes.Speedup(seqRes)
	if sp < 3.0 || sp > 4.2 {
		t.Errorf("pipelined chain speedup = %.2f, want ~4 (3.0..4.2)", sp)
	}
}

func TestBarrieredChainGetsNoSpeedup(t *testing.T) {
	// A chain has no task parallelism: barriered execution on 4 tiles is no
	// faster than one tile (and pays barriers).
	g := chainGraph(4, 1000, 10)
	seq := seqMapping(g)
	seqRes, _ := Simulate(g, seq, DefaultConfig(), 20)
	bar := seqMapping(g)
	bar.Mode = ModeBarriered
	for i := range bar.Tile {
		bar.Tile[i] = i
	}
	barRes, err := Simulate(g, bar, DefaultConfig(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if barRes.Speedup(seqRes) > 1.05 {
		t.Errorf("barriered chain speedup = %.2f, want <= ~1", barRes.Speedup(seqRes))
	}
}

func TestBarrieredForkJoinSpeedup(t *testing.T) {
	// Wide fork/join: source -> 8 parallel workers -> sink. Task
	// parallelism helps here even with barriers.
	g := &WGraph{}
	src := g.AddNode("src", 10, 0, false)
	snk := g.AddNode("snk", 10, 0, false)
	for i := 0; i < 8; i++ {
		w := g.AddNode("w", 8000, 4000, false)
		g.AddEdge(src, w, 4)
		g.AddEdge(w, snk, 4)
	}
	st, _ := Stages(g)
	seq := &Mapping{Tile: make([]int, len(g.Nodes)), Stage: st, Mode: ModeBarriered, Comm: CommNoC}
	seqRes, _ := Simulate(g, seq, DefaultConfig(), 20)
	par := &Mapping{Tile: make([]int, len(g.Nodes)), Stage: st, Mode: ModeBarriered, Comm: CommNoC}
	for i, n := range g.Nodes {
		if n.Name == "w" {
			par.Tile[i] = (i) % 16
		}
	}
	parRes, err := Simulate(g, par, DefaultConfig(), 20)
	if err != nil {
		t.Fatal(err)
	}
	sp := parRes.Speedup(seqRes)
	if sp < 5.0 {
		t.Errorf("fork/join speedup = %.2f, want >= 5", sp)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	// Two producer->consumer pairs forced across the same mesh column: with
	// huge traffic, contention must reduce throughput versus disjoint
	// routes.
	mk := func(shareRoute bool) float64 {
		g := &WGraph{}
		p1 := g.AddNode("p1", 100, 0, false)
		c1 := g.AddNode("c1", 100, 0, false)
		p2 := g.AddNode("p2", 100, 0, false)
		c2 := g.AddNode("c2", 100, 0, false)
		g.AddEdge(p1, c1, 4000)
		g.AddEdge(p2, c2, 4000)
		st, _ := Stages(g)
		m := &Mapping{Stage: st, Mode: ModePipelined, Comm: CommNoC}
		if shareRoute {
			// Both streams traverse the top row eastward: p1 at (0,0),
			// c1 at (3,0); p2 at (1,0)... route (0,0)->(3,0) and
			// (0,0)->(2,0) share links.
			m.Tile = []int{0, 3, 0, 2}
		} else {
			// Disjoint rows.
			m.Tile = []int{0, 3, 12, 15}
		}
		res, err := Simulate(g, m, DefaultConfig(), 20)
		if err != nil {
			t.Fatal(err)
		}
		return res.CyclesPerIter
	}
	shared := mk(true)
	disjoint := mk(false)
	if shared <= disjoint*1.2 {
		t.Errorf("shared-route cycles %.0f should exceed disjoint %.0f by >20%%", shared, disjoint)
	}
}

func TestDRAMCommCostsMoreThanNoC(t *testing.T) {
	g := chainGraph(3, 100, 2000)
	noc := seqMapping(g)
	noc.Tile = []int{0, 1, 2}
	nocRes, _ := Simulate(g, noc, DefaultConfig(), 20)
	dram := seqMapping(g)
	dram.Tile = []int{0, 1, 2}
	dram.Comm = CommDRAM
	dramRes, err := Simulate(g, dram, DefaultConfig(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if dramRes.CyclesPerIter <= nocRes.CyclesPerIter {
		t.Errorf("DRAM comm (%.0f) should cost more than NoC (%.0f) for heavy traffic",
			dramRes.CyclesPerIter, nocRes.CyclesPerIter)
	}
}

func TestStagesAreTopoLevels(t *testing.T) {
	g := &WGraph{}
	a := g.AddNode("a", 1, 0, false)
	b := g.AddNode("b", 1, 0, false)
	c := g.AddNode("c", 1, 0, false)
	d := g.AddNode("d", 1, 0, false)
	g.AddEdge(a, b, 1)
	g.AddEdge(a, c, 1)
	g.AddEdge(b, d, 1)
	g.AddEdge(c, d, 1)
	st, err := Stages(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2}
	for i := range want {
		if st[i] != want[i] {
			t.Errorf("stage[%d] = %d, want %d", i, st[i], want[i])
		}
	}
}

func TestCycleRejected(t *testing.T) {
	g := &WGraph{}
	a := g.AddNode("a", 1, 0, false)
	b := g.AddNode("b", 1, 0, false)
	g.AddEdge(a, b, 1)
	g.AddEdge(b, a, 1)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestMFLOPSAccounting(t *testing.T) {
	g := chainGraph(2, 450, 5) // 450 flops... work=450 cycles, flops=225/node
	m := seqMapping(g)
	res, err := Simulate(g, m, DefaultConfig(), 20)
	if err != nil {
		t.Fatal(err)
	}
	// flops/iter = 450; cycles/iter >= 900 => MFLOPS <= 0.5*450MHz = 225.
	if res.MFLOPS <= 0 || res.MFLOPS > DefaultConfig().PeakMFLOPS() {
		t.Errorf("MFLOPS = %v out of range (peak %v)", res.MFLOPS, DefaultConfig().PeakMFLOPS())
	}
}

func TestInvalidMappingRejected(t *testing.T) {
	g := chainGraph(2, 1, 1)
	m := seqMapping(g)
	m.Tile[0] = 99
	if _, err := Simulate(g, m, DefaultConfig(), 8); err == nil {
		t.Fatal("expected invalid-tile error")
	}
}

func TestSimulateTrace(t *testing.T) {
	g := chainGraph(3, 500, 8)
	m := seqMapping(g)
	m.Tile = []int{0, 1, 2}
	res, events, err := SimulateTrace(g, m, DefaultConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.CyclesPerIter <= 0 {
		t.Fatal("bad result")
	}
	if len(events) != 8*3 {
		t.Fatalf("got %d events, want 24", len(events))
	}
	for _, ev := range events {
		if ev.End <= ev.Start {
			t.Errorf("event %+v has non-positive duration", ev)
		}
		if ev.Tile < 0 || ev.Tile > 2 {
			t.Errorf("event on unexpected tile: %+v", ev)
		}
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 100 {
		t.Error("trace JSON looks empty")
	}
}
