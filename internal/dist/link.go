package dist

import (
	"bufio"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"streamit/internal/exec"
	"streamit/internal/ir"
)

// The data plane: each unordered pair of live shards that shares at least
// one cross-shard edge holds exactly one TCP connection, carrying batch
// frames in both directions. The lower live index dials the higher one's
// data listener; the dialer identifies itself with a linkHello naming the
// generation, and retries (the acceptor may not have installed the
// generation yet) until acked. Batches multiplex over the pair's
// connection by edge ID with a per-edge sequence number, landing in
// per-edge inboxes whose capacity mirrors the engine's queue depth — the
// same backpressure bound as the in-memory channels they replace. A
// teardown (abort or peer failure) closes the down channel so every
// worker blocked in Send/Recv unwinds immediately.

// acceptedConn hands an inbound peer connection (and the buffered reader
// that already consumed its linkHello) from the shard's acceptor to the
// generation's linkSet.
type acceptedConn struct {
	c net.Conn
	r *bufio.Reader
}

// peerLink is the single bidirectional connection to one live peer.
type peerLink struct {
	idx  int
	conn net.Conn
	r    *bufio.Reader
	wmu  sync.Mutex
	seq  map[int]uint64 // per out-edge send sequence, guarded by wmu
}

// linkSet is one generation's data plane on one shard. It implements the
// engine's RemoteHooks: Send ships a local producer's batch to the
// consuming peer, Recv delivers a remote producer's batch to a local
// consumer.
type linkSet struct {
	gen     uint32
	myIdx   int
	wto     time.Duration
	peers   map[int]*peerLink
	outPeer map[int]*peerLink         // out-edge ID → carrying link
	inbox   map[int]chan []float64    // in-edge ID → delivery channel
	inPeer  map[int]int               // in-edge ID → producing peer index
	expSeq  map[int]*uint64           // in-edge ID → next expected sequence
	waiting map[int]chan acceptedConn // peer index → inbound-conn handoff
	blocked []atomic.Int32            // per live index: Recvs blocked on that peer

	down  chan struct{}
	once  sync.Once
	errMu sync.Mutex
	err   error
}

// newLinkSet classifies the generation's edges against the assignment:
// edges whose producer and consumer land on different shards become
// remote, and each remote peer gets one link. Worker w runs on shard
// w/perShard, matching partition.AssignSharded's numbering.
func newLinkSet(g2 *ir.Graph, assign []int, perShard, myIdx, liveCount int, gen uint32, depth int, wto time.Duration) *linkSet {
	ls := &linkSet{
		gen:     gen,
		myIdx:   myIdx,
		wto:     wto,
		peers:   make(map[int]*peerLink),
		outPeer: make(map[int]*peerLink),
		inbox:   make(map[int]chan []float64),
		inPeer:  make(map[int]int),
		expSeq:  make(map[int]*uint64),
		waiting: make(map[int]chan acceptedConn),
		blocked: make([]atomic.Int32, liveCount),
		down:    make(chan struct{}),
	}
	peer := func(idx int) *peerLink {
		pl := ls.peers[idx]
		if pl == nil {
			pl = &peerLink{idx: idx, seq: make(map[int]uint64)}
			ls.peers[idx] = pl
			if myIdx > idx {
				ls.waiting[idx] = make(chan acceptedConn, 1)
			}
		}
		return pl
	}
	for _, e := range g2.Edges {
		si, di := assign[e.Src.ID]/perShard, assign[e.Dst.ID]/perShard
		if si == di {
			continue
		}
		if si == myIdx {
			ls.outPeer[e.ID] = peer(di)
		}
		if di == myIdx {
			peer(si)
			ls.inbox[e.ID] = make(chan []float64, depth)
			ls.inPeer[e.ID] = si
			ls.expSeq[e.ID] = new(uint64)
		}
	}
	return ls
}

func (ls *linkSet) hooks() *exec.RemoteHooks {
	return &exec.RemoteHooks{Send: ls.Send, Recv: ls.Recv}
}

// expectsAccept reports whether this linkSet is waiting for an inbound
// connection from the given peer.
func (ls *linkSet) expectsAccept(from int) bool { return ls.waiting[from] != nil }

// offer hands an accepted inbound connection to the linkSet. It returns
// false (caller closes the conn) when the peer is unexpected or a
// connection was already delivered.
func (ls *linkSet) offer(from int, c net.Conn, r *bufio.Reader) bool {
	ch := ls.waiting[from]
	if ch == nil {
		return false
	}
	select {
	case ch <- acceptedConn{c, r}:
		return true
	default:
		return false
	}
}

// connect establishes every peer link — dialing lower-index side, waiting
// for the acceptor otherwise — then starts the readers. On any failure
// the whole set tears down.
func (ls *linkSet) connect(peerAddrs []string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	errs := make(chan error, len(ls.peers))
	var wg sync.WaitGroup
	for idx, pl := range ls.peers {
		wg.Add(1)
		go func(idx int, pl *peerLink) {
			defer wg.Done()
			if ls.myIdx < idx {
				errs <- ls.dialPeer(pl, peerAddrs[idx], deadline)
			} else {
				errs <- ls.awaitPeer(pl, deadline)
			}
		}(idx, pl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			ls.teardown()
			return err
		}
	}
	for _, pl := range ls.peers {
		go ls.reader(pl)
	}
	return nil
}

// dialPeer dials a higher-index peer's data listener until the linkHello
// is acked. The acceptor rejects (closes) hellos for generations it has
// not installed yet, so the dialer retries with jittered backoff — the
// normal install race, not an error.
func (ls *linkSet) dialPeer(pl *peerLink, addr string, deadline time.Time) error {
	delay := 10 * time.Millisecond
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return fmt.Errorf("dist: link to peer %d (%s) not established in time", pl.idx, addr)
		}
		if c := ls.tryDial(addr, remaining); c != nil {
			pl.conn = c.c
			pl.r = c.r
			return nil
		}
		select {
		case <-ls.down:
			return fmt.Errorf("dist: link set torn down while dialing peer %d", pl.idx)
		case <-time.After(delay/2 + time.Duration(rand.Int64N(int64(delay)))):
		}
		if delay < 500*time.Millisecond {
			delay *= 2
		}
	}
}

// tryDial makes one dial + hello + ack attempt; nil means retry.
func (ls *linkSet) tryDial(addr string, remaining time.Duration) *acceptedConn {
	attempt := remaining
	if attempt > 2*time.Second {
		attempt = 2 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, attempt)
	if err != nil {
		return nil
	}
	c.SetWriteDeadline(time.Now().Add(attempt))
	if writeFrame(c, mtLinkHello, (&linkHelloMsg{From: uint32(ls.myIdx), Gen: ls.gen}).encode()) != nil {
		c.Close()
		return nil
	}
	r := bufio.NewReaderSize(c, 64<<10)
	c.SetReadDeadline(time.Now().Add(attempt))
	t, p, err := readFrame(r)
	if err != nil || t != mtLinkHello {
		c.Close()
		return nil
	}
	ack, err := decodeLinkHello(p)
	if err != nil || ack.Gen != ls.gen {
		c.Close()
		return nil
	}
	c.SetReadDeadline(time.Time{})
	c.SetWriteDeadline(time.Time{})
	return &acceptedConn{c, r}
}

func (ls *linkSet) awaitPeer(pl *peerLink, deadline time.Time) error {
	t := time.NewTimer(time.Until(deadline))
	defer t.Stop()
	select {
	case ac := <-ls.waiting[pl.idx]:
		pl.conn = ac.c
		pl.r = ac.r
		return nil
	case <-ls.down:
		return fmt.Errorf("dist: link set torn down while awaiting peer %d", pl.idx)
	case <-t.C:
		return fmt.Errorf("dist: no link from peer %d in time", pl.idx)
	}
}

// reader drains one peer connection, routing batches to their edge
// inboxes and verifying the per-edge sequence.
func (ls *linkSet) reader(pl *peerLink) {
	for {
		t, p, err := readFrame(pl.r)
		if err != nil {
			ls.fail(fmt.Errorf("dist: link from peer %d: %w", pl.idx, err))
			return
		}
		if t != mtBatch {
			ls.fail(fmt.Errorf("dist: link from peer %d: unexpected %s frame", pl.idx, t))
			return
		}
		m, err := decodeBatch(p)
		if err != nil {
			ls.fail(fmt.Errorf("dist: link from peer %d: %w", pl.idx, err))
			return
		}
		edge := int(m.Edge)
		ch := ls.inbox[edge]
		if ch == nil || ls.inPeer[edge] != pl.idx {
			ls.fail(fmt.Errorf("dist: peer %d sent batch for edge %d it does not feed", pl.idx, edge))
			return
		}
		// expSeq entries are per-edge pointers and each edge has exactly
		// one producing peer, so only this reader touches this counter.
		sp := ls.expSeq[edge]
		if m.Seq != *sp {
			ls.fail(fmt.Errorf("dist: edge %d batch out of sequence: got %d, want %d", edge, m.Seq, *sp))
			return
		}
		*sp++
		select {
		case ch <- m.Items:
		case <-ls.down:
			return
		}
	}
}

// Send ships one local producer batch to the consuming peer
// (exec.RemoteHooks.Send).
func (ls *linkSet) Send(edge int, batch []float64, stop <-chan struct{}) error {
	pl := ls.outPeer[edge]
	if pl == nil {
		return fmt.Errorf("dist: edge %d is not a remote output", edge)
	}
	select {
	case <-ls.down:
		return ls.takeErr()
	case <-stop:
		return exec.ErrRemoteStopped
	default:
	}
	pl.wmu.Lock()
	seq := pl.seq[edge]
	pl.seq[edge] = seq + 1
	pl.conn.SetWriteDeadline(time.Now().Add(ls.wto))
	err := writeFrame(pl.conn, mtBatch, (&batchMsg{Edge: uint32(edge), Seq: seq, Items: batch}).encode())
	pl.wmu.Unlock()
	if err != nil {
		select {
		case <-ls.down:
			return ls.takeErr()
		case <-stop:
			return exec.ErrRemoteStopped
		default:
		}
		err = fmt.Errorf("dist: send to peer %d: %w", pl.idx, err)
		ls.fail(err)
		return err
	}
	return nil
}

// Recv delivers one remote producer batch to a local consumer
// (exec.RemoteHooks.Recv).
func (ls *linkSet) Recv(edge int, stop <-chan struct{}) ([]float64, error) {
	ch := ls.inbox[edge]
	if ch == nil {
		return nil, fmt.Errorf("dist: edge %d is not a remote input", edge)
	}
	select {
	case b := <-ch:
		return b, nil
	default:
	}
	// Record who we are blocked on: the shard's heartbeats report this,
	// and the coordinator's wait-graph uses it to tell a wedged shard
	// from its starved downstream victims.
	src := ls.inPeer[edge]
	ls.blocked[src].Add(1)
	defer ls.blocked[src].Add(-1)
	select {
	case b := <-ch:
		return b, nil
	case <-ls.down:
		return nil, ls.takeErr()
	case <-stop:
		return nil, exec.ErrRemoteStopped
	}
}

// blockedPeers returns the live indices of peers some local worker is
// currently blocked receiving from.
func (ls *linkSet) blockedPeers() []int {
	var out []int
	for i := range ls.blocked {
		if ls.blocked[i].Load() > 0 {
			out = append(out, i)
		}
	}
	return out
}

// fail records the first transport error and tears the set down.
func (ls *linkSet) fail(err error) {
	ls.errMu.Lock()
	if ls.err == nil {
		ls.err = err
	}
	ls.errMu.Unlock()
	ls.teardown()
}

// failure returns the recorded transport error, if any.
func (ls *linkSet) failure() error {
	ls.errMu.Lock()
	defer ls.errMu.Unlock()
	return ls.err
}

// takeErr maps a closed-down linkSet to its cause: the recorded transport
// error, or the quiet stop sentinel for a deliberate teardown.
func (ls *linkSet) takeErr() error {
	if err := ls.failure(); err != nil {
		return err
	}
	return exec.ErrRemoteStopped
}

// teardown closes the down channel and every peer connection, unwinding
// all blocked workers and readers. Idempotent.
func (ls *linkSet) teardown() {
	ls.once.Do(func() {
		close(ls.down)
		for _, pl := range ls.peers {
			if pl.conn != nil {
				pl.conn.Close()
			}
		}
		// Inbound conns delivered but never collected by awaitPeer.
		for _, ch := range ls.waiting {
			select {
			case ac := <-ch:
				ac.c.Close()
			default:
			}
		}
	})
}
