package dist

import (
	"streamit/internal/apps"
	"streamit/internal/ir"
)

// SuiteRegistry maps every benchmark app name to its builder — the
// registry a coordinator and its shards share when the program is named
// by app rather than shipped as source.
func SuiteRegistry() map[string]func() *ir.Program {
	m := make(map[string]func() *ir.Program)
	for _, a := range apps.Suite() {
		m[a.Name] = a.Build
	}
	return m
}
