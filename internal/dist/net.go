package dist

import (
	"bufio"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"
)

// fconn wraps a TCP connection with the wire framing: sends are locked
// single Writes under a per-message deadline (a wedged peer cannot hold
// the sender forever), reads come off a buffered frame reader.
type fconn struct {
	c   net.Conn
	r   *bufio.Reader
	wmu sync.Mutex
	wto time.Duration
}

func newFConn(c net.Conn, writeTimeout time.Duration) *fconn {
	return &fconn{c: c, r: bufio.NewReaderSize(c, 64<<10), wto: writeTimeout}
}

func (f *fconn) send(t msgType, payload []byte) error {
	f.wmu.Lock()
	defer f.wmu.Unlock()
	if f.wto > 0 {
		f.c.SetWriteDeadline(time.Now().Add(f.wto))
	}
	return writeFrame(f.c, t, payload)
}

// recv reads one frame; a zero timeout blocks indefinitely.
func (f *fconn) recv(timeout time.Duration) (msgType, []byte, error) {
	if timeout > 0 {
		f.c.SetReadDeadline(time.Now().Add(timeout))
	} else {
		f.c.SetReadDeadline(time.Time{})
	}
	return readFrame(f.r)
}

func (f *fconn) close() { f.c.Close() }

// dialRetry dials addr until it connects or the budget runs out, backing
// off exponentially with jitter between attempts so a herd of shards
// joining one coordinator (or re-dialing one recovering peer) does not
// stampede in lockstep.
func dialRetry(addr string, budget time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(budget)
	delay := 20 * time.Millisecond
	var lastErr error
	for {
		attempt := time.Until(deadline)
		if attempt <= 0 {
			return nil, fmt.Errorf("dist: dial %s: budget exhausted: %w", addr, lastErr)
		}
		if attempt > 2*time.Second {
			attempt = 2 * time.Second
		}
		c, err := net.DialTimeout("tcp", addr, attempt)
		if err == nil {
			return c, nil
		}
		lastErr = err
		// Jitter the backoff into [delay/2, 3*delay/2).
		sleep := delay/2 + time.Duration(rand.Int64N(int64(delay)))
		if time.Now().Add(sleep).After(deadline) {
			return nil, fmt.Errorf("dist: dial %s: budget exhausted: %w", addr, lastErr)
		}
		time.Sleep(sleep)
		if delay < time.Second {
			delay *= 2
		}
	}
}
