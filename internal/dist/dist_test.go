package dist

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"streamit/internal/exec"
	"streamit/internal/partition"
)

// testConfig returns a Config tuned for fast in-process tests: tight
// heartbeats, short deadlines.
func testConfig(shards int) Config {
	return Config{
		Shards:           shards,
		PerShard:         2,
		Strategy:         partition.StratCoarseData,
		Epoch:            4,
		TapSinks:         true,
		Heartbeat:        20 * time.Millisecond,
		HeartbeatTimeout: 300 * time.Millisecond,
		EpochTimeout:     5 * time.Second,
		WriteTimeout:     2 * time.Second,
		JoinTimeout:      10 * time.Second,
		Log:              func(string, ...any) {},
	}
}

func testShardOptions(name string) ShardOptions {
	return ShardOptions{
		Name:         name,
		Heartbeat:    20 * time.Millisecond,
		WriteTimeout: 2 * time.Second,
		JoinTimeout:  10 * time.Second,
		LinkTimeout:  3 * time.Second,
		CrashFn:      func() {}, // in-process shards must not exit the test binary
		Log:          func(string, ...any) {},
	}
}

// runDist drives one full distributed run with in-process shards over
// loopback TCP and returns the result. Shard errors are expected for
// injected faults and demotions; they are logged, not fatal.
func runDist(t *testing.T, spec Spec, cfg Config, total int, mut ...func(*ShardOptions)) *Result {
	t.Helper()
	co, err := NewCoordinator(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := co.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < cfg.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := testShardOptions(fmt.Sprintf("w%d", i))
			for _, m := range mut {
				m(&opts)
			}
			if err := Join(addr, opts); err != nil {
				t.Logf("shard %d exited: %v", i, err)
			}
		}(i)
	}
	res, err := co.Run(total)
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	wg.Wait()
	return res
}

// refRun executes the same plan in a single-process mapped engine with
// identical sink taps — the bit-identity reference. (The mapped engine
// itself is proven bit-identical to the sequential engine by the exec
// conformance suite.)
func refRun(t *testing.T, spec Spec, cfg Config, total int) (map[string][]float64, []byte) {
	t.Helper()
	prog, err := buildProgram(spec, SuiteRegistry())
	if err != nil {
		t.Fatal(err)
	}
	jp, err := buildJobPlan(prog, cfg.Strategy, cfg.Shards*cfg.PerShard)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := jp.plan.AssignSharded(jp.g2, jp.s2, cfg.Shards, cfg.PerShard, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := exec.NewMappedOpts(jp.g2, jp.s2, assign, cfg.Shards*cfg.PerShard, exec.Options{
		Backend: cfg.Backend, QueueDepth: cfg.QueueDepth,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := make([]bool, cfg.Shards*cfg.PerShard)
	for i := range all {
		all[i] = true
	}
	taps, err := tapSinks(eng, jp.g2, assign, all)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(total); err != nil {
		t.Fatal(err)
	}
	outs := make(map[string][]float64)
	for id, buf := range taps {
		outs[jp.g2.Nodes[id].Name] = buf.items
	}
	var img sliceBuffer
	if err := eng.WriteCheckpoint(&img, int64(total)); err != nil {
		t.Fatal(err)
	}
	return outs, img
}

func sameOutputs(t *testing.T, what string, got, want map[string][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d sinks, want %d", what, len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("%s: sink %s missing", what, name)
		}
		if len(g) == 0 && len(w) == 0 {
			continue
		}
		if !reflect.DeepEqual(g, w) {
			n := len(g)
			if len(w) < n {
				n = len(w)
			}
			for i := 0; i < n; i++ {
				if g[i] != w[i] {
					t.Fatalf("%s: sink %s diverges at item %d: %v vs %v (lengths %d vs %d)",
						what, name, i, g[i], w[i], len(g), len(w))
				}
			}
			t.Fatalf("%s: sink %s length %d, want %d (equal prefix)", what, name, len(g), len(w))
		}
	}
}

// TestDistBitIdentical: a clean 2-shard run over loopback TCP produces
// exactly the single-process mapped engine's sink streams, and its final
// barrier image is byte-identical to the single-process checkpoint at the
// same iteration.
func TestDistBitIdentical(t *testing.T) {
	spec := Spec{App: "FMRadio"}
	cfg := testConfig(2)
	const total = 12
	res := runDist(t, spec, cfg, total)
	if res.Iterations != total {
		t.Fatalf("committed %d iterations, want %d", res.Iterations, total)
	}
	if res.Recoveries != 0 || len(res.Lost) != 0 {
		t.Fatalf("clean run recovered %d times, lost %v", res.Recoveries, res.Lost)
	}
	want, wantImg := refRun(t, spec, cfg, total)
	sameOutputs(t, "distributed vs single-process", res.Outputs, want)
	if string(res.FinalImage) != string(wantImg) {
		t.Fatalf("final barrier image differs from the single-process checkpoint: %d vs %d bytes",
			len(res.FinalImage), len(wantImg))
	}
}

// TestDistSingleShard: the degenerate one-shard run (no remote edges at
// all) still speaks the full protocol.
func TestDistSingleShard(t *testing.T) {
	spec := Spec{App: "DCT"}
	cfg := testConfig(1)
	const total = 8
	res := runDist(t, spec, cfg, total)
	if res.Iterations != total {
		t.Fatalf("committed %d iterations, want %d", res.Iterations, total)
	}
	want, _ := refRun(t, spec, cfg, total)
	sameOutputs(t, "single-shard vs single-process", res.Outputs, want)
}

// TestDistCrashRecovery: shard 1 crashes mid-run (connections severed,
// no protocol goodbye — kill -9 semantics). The survivors roll back to
// the last barrier image, absorb its partitions, and the committed output
// is still bit-identical.
func TestDistCrashRecovery(t *testing.T) {
	spec := Spec{App: "FMRadio"}
	cfg := testConfig(3)
	cfg.Faults = "crash:shard1@6"
	const total = 16
	res := runDist(t, spec, cfg, total)
	if res.Iterations != total {
		t.Fatalf("committed %d iterations, want %d", res.Iterations, total)
	}
	if res.Recoveries < 1 {
		t.Fatalf("crash caused %d recoveries, want >= 1", res.Recoveries)
	}
	if !reflect.DeepEqual(res.Lost, []int{1}) {
		t.Fatalf("lost shards %v, want [1]", res.Lost)
	}
	want, _ := refRun(t, spec, cfg, total)
	sameOutputs(t, "post-crash vs single-process", res.Outputs, want)
}

// TestDistStallRecovery: shard 0 wedges without dropping its connection
// or heartbeats. Only the wait-graph can finger it: the shards it starves
// keep reporting they are blocked on shard 0, so the barrier deadline
// demotes shard 0 alone and the run completes bit-identically.
func TestDistStallRecovery(t *testing.T) {
	spec := Spec{App: "FMRadio"}
	cfg := testConfig(3)
	cfg.Faults = "stall:shard0@5"
	cfg.EpochTimeout = 2 * time.Second
	const total = 16
	res := runDist(t, spec, cfg, total)
	if res.Iterations != total {
		t.Fatalf("committed %d iterations, want %d", res.Iterations, total)
	}
	if res.Recoveries < 1 {
		t.Fatalf("stall caused %d recoveries, want >= 1", res.Recoveries)
	}
	for _, id := range res.Lost {
		if id != 0 {
			t.Fatalf("wait-graph demoted %v; only the stalled shard 0 should go", res.Lost)
		}
	}
	want, _ := refRun(t, spec, cfg, total)
	sameOutputs(t, "post-stall vs single-process", res.Outputs, want)
}

// TestDistPartitionRecovery: shard 2 stops heartbeating while its TCP
// connections stay up (a one-way partition). Heartbeat staleness demotes
// it and the survivors resume bit-identically.
func TestDistPartitionRecovery(t *testing.T) {
	spec := Spec{App: "FMRadio"}
	cfg := testConfig(3)
	cfg.Faults = "partition:shard2@7"
	const total = 16
	res := runDist(t, spec, cfg, total)
	if res.Iterations != total {
		t.Fatalf("committed %d iterations, want %d", res.Iterations, total)
	}
	if res.Recoveries < 1 {
		t.Fatalf("partition caused %d recoveries, want >= 1", res.Recoveries)
	}
	found := false
	for _, id := range res.Lost {
		if id == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("lost %v does not include the partitioned shard 2", res.Lost)
	}
	want, _ := refRun(t, spec, cfg, total)
	sameOutputs(t, "post-partition vs single-process", res.Outputs, want)
}

// TestDistSuiteConformance: every app in the benchmark suite runs sharded
// over loopback TCP bit-identically to the single-process mapped engine.
func TestDistSuiteConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite conformance is not a -short test")
	}
	for _, name := range suiteNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec := Spec{App: name}
			cfg := testConfig(2)
			const total = 8
			res := runDist(t, spec, cfg, total)
			if res.Iterations != total {
				t.Fatalf("committed %d iterations, want %d", res.Iterations, total)
			}
			want, wantImg := refRun(t, spec, cfg, total)
			sameOutputs(t, "distributed vs single-process", res.Outputs, want)
			if string(res.FinalImage) != string(wantImg) {
				t.Fatal("final barrier image differs from the single-process checkpoint")
			}
		})
	}
}

func suiteNames() []string {
	var names []string
	for name := range SuiteRegistry() {
		names = append(names, name)
	}
	return names
}

// sliceBuffer mirrors exec's test helper: an io.Writer onto a byte slice.
type sliceBuffer []byte

func (b *sliceBuffer) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}
