package dist

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"streamit/internal/apps"
	"streamit/internal/exec"
	"streamit/internal/ir"
	"streamit/internal/partition"
	"streamit/internal/wfunc"
)

// Checkpoint interchange: the distributed runtime's barrier images use the
// exact same on-disk format as the sequential and mapped engines, so a
// distributed run can resume a single-process checkpoint and vice versa.
// The fixed point is the committed golden image in the exec package: a
// distributed run over the same program must reproduce it byte for byte.

// collectSink mirrors the exec conformance suite's collector: a native
// filter with the sink's input rates that records every popped item.
func collectSink(f *ir.Filter, outs *[]*[]float64) *ir.Filter {
	k := f.Kernel
	peek := k.Peek
	if peek < k.Pop {
		peek = k.Pop
	}
	b := wfunc.NewKernel(k.Name, peek, k.Pop, 0)
	b.Dynamic() // stub body; behaviour is the native closure
	b.WorkBody()
	kc := b.Build()
	kc.Dynamic = false
	kc.Peek, kc.Pop, kc.Push = peek, k.Pop, 0
	got := &[]float64{}
	*outs = append(*outs, got)
	return &ir.Filter{
		Kernel: kc,
		In:     f.In,
		Out:    ir.TypeVoid,
		WorkFn: func(in, out wfunc.Tape, _ *wfunc.State) {
			for i := 0; i < kc.Pop; i++ {
				*got = append(*got, in.Pop())
			}
		},
	}
}

func swapAllSinks(s ir.Stream, outs *[]*[]float64) ir.Stream {
	switch s := s.(type) {
	case *ir.Filter:
		if s.Kernel.Push == 0 && s.Kernel.Pop > 0 && !s.Kernel.Dynamic {
			return collectSink(s, outs)
		}
		return s
	case *ir.Pipeline:
		for i, c := range s.Children {
			s.Children[i] = swapAllSinks(c, outs)
		}
		return s
	case *ir.SplitJoin:
		for i, c := range s.Children {
			s.Children[i] = swapAllSinks(c, outs)
		}
		return s
	case *ir.FeedbackLoop:
		s.Body = swapAllSinks(s.Body, outs)
		if s.Loop != nil {
			s.Loop = swapAllSinks(s.Loop, outs)
		}
		return s
	}
	return s
}

// goldenProgram builds the exact program behind the exec package's golden
// mapped checkpoint: FMRadio(2, 8) with its sink swapped for a collector.
func goldenProgram(outs *[]*[]float64) *ir.Program {
	prog := apps.FMRadio(2, 8)
	prog.Top = swapAllSinks(prog.Top, outs)
	return prog
}

// goldenRegistry lets a coordinator and its shards compile the swapped
// program by name. Every build gets fresh collector buffers.
func goldenRegistry() map[string]func() *ir.Program {
	return map[string]func() *ir.Program{
		"FMRadioCollect": func() *ir.Program {
			var outs []*[]float64
			return goldenProgram(&outs)
		},
	}
}

const goldenPath = "../exec/testdata/mapped_fmradio_taskdata.ckpt"

// goldenConfig matches the golden image's plan: StratCoarseData over 4
// workers (here 2 shards × 2), barrier exactly at iteration 2.
func goldenConfig() Config {
	cfg := testConfig(2)
	cfg.Strategy = partition.StratCoarseData
	cfg.Epoch = 2
	cfg.TapSinks = false
	cfg.Registry = goldenRegistry()
	return cfg
}

func withRegistry(reg map[string]func() *ir.Program) func(*ShardOptions) {
	return func(o *ShardOptions) { o.Registry = reg }
}

// TestDistGoldenImage: a 2-shard distributed run over the golden program
// assembles a final barrier image byte-identical to the committed mapped
// golden checkpoint — the distributed, mapped, and sequential engines all
// speak one image format over one canonical state.
func TestDistGoldenImage(t *testing.T) {
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden checkpoint missing: %v", err)
	}
	cfg := goldenConfig()
	res := runDist(t, Spec{App: "FMRadioCollect"}, cfg, 2, withRegistry(cfg.Registry))
	if res.Iterations != 2 {
		t.Fatalf("committed %d iterations, want 2", res.Iterations)
	}
	if !bytes.Equal(res.FinalImage, golden) {
		t.Fatalf("distributed barrier image (%d bytes) is not byte-identical to the golden mapped checkpoint (%d bytes)",
			len(res.FinalImage), len(golden))
	}
}

// TestDistImageToSequential: a shard-produced barrier image restores into
// a plain sequential engine, which resumes bit-identically — verified
// against an uninterrupted sequential run of the same program.
func TestDistImageToSequential(t *testing.T) {
	cfg := goldenConfig()
	res := runDist(t, Spec{App: "FMRadioCollect"}, cfg, 2, withRegistry(cfg.Registry))

	// Uninterrupted sequential reference: init + 4 steady iterations.
	var refOuts []*[]float64
	refJP, err := buildJobPlan(goldenProgram(&refOuts), cfg.Strategy, 4)
	if err != nil {
		t.Fatal(err)
	}
	refEng, err := exec.NewFromGraphBackend(refJP.g2, refJP.s2, cfg.Backend)
	if err != nil {
		t.Fatal(err)
	}
	if err := refEng.Run(4); err != nil {
		t.Fatal(err)
	}

	// Resume the distributed image on a fresh sequential engine.
	var resOuts []*[]float64
	resJP, err := buildJobPlan(goldenProgram(&resOuts), cfg.Strategy, 4)
	if err != nil {
		t.Fatal(err)
	}
	resEng, err := exec.NewFromGraphBackend(resJP.g2, resJP.s2, cfg.Backend)
	if err != nil {
		t.Fatal(err)
	}
	iter, err := resEng.RestoreCheckpoint(res.FinalImage)
	if err != nil {
		t.Fatalf("sequential engine rejects the distributed image: %v", err)
	}
	if iter != 2 {
		t.Fatalf("image restored at iteration %d, want 2", iter)
	}
	if err := resEng.RunSteady(2); err != nil {
		t.Fatalf("sequential resume from distributed image: %v", err)
	}

	if len(refOuts) != len(resOuts) || len(refOuts) == 0 {
		t.Fatalf("%d reference collectors vs %d resumed", len(refOuts), len(resOuts))
	}
	for i := range refOuts {
		ref, got := *refOuts[i], *resOuts[i]
		if len(got) == 0 || len(got) > len(ref) {
			t.Fatalf("collector %d: resumed run emitted %d items, reference %d", i, len(got), len(ref))
		}
		if !reflect.DeepEqual(got, ref[len(ref)-len(got):]) {
			t.Fatalf("collector %d: sequential resume from the distributed image diverges from the uninterrupted run", i)
		}
	}
}

// TestSequentialImageToDist: the reverse direction — a checkpoint written
// by the sequential engine seeds a distributed run via Config.StartImage,
// and the sharded continuation is bit-identical to continuing the
// sequential engine in place.
func TestSequentialImageToDist(t *testing.T) {
	cfg := goldenConfig()
	cfg.TapSinks = true

	// Sequential run to iteration 2, checkpointed.
	var seqOuts []*[]float64
	jp, err := buildJobPlan(goldenProgram(&seqOuts), cfg.Strategy, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := exec.NewFromGraphBackend(jp.g2, jp.s2, cfg.Backend)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(2); err != nil {
		t.Fatal(err)
	}
	var img sliceBuffer
	if err := eng.WriteCheckpoint(&img, 2); err != nil {
		t.Fatal(err)
	}

	// Distributed continuation from the sequential image.
	cfg.StartImage = img
	cfg.StartIter = 2
	res := runDist(t, Spec{App: "FMRadioCollect"}, cfg, 6, withRegistry(cfg.Registry))
	if res.Iterations != 6 {
		t.Fatalf("committed %d iterations, want 6", res.Iterations)
	}

	// Sequential continuation in place: 4 more steady iterations; the new
	// items are the reference for what the shards should have produced.
	pre := make([]int, len(seqOuts))
	for i, o := range seqOuts {
		pre[i] = len(*o)
	}
	if err := eng.RunSteady(4); err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != len(seqOuts) || len(seqOuts) == 0 {
		t.Fatalf("%d distributed sinks vs %d sequential collectors", len(res.Outputs), len(seqOuts))
	}
	for i, o := range seqOuts {
		want := (*o)[pre[i]:]
		var got []float64
		found := false
		for _, stream := range res.Outputs {
			if reflect.DeepEqual(stream, want) {
				found = true
				break
			}
			got = stream
		}
		if !found {
			n := len(got)
			if len(want) < n {
				n = len(want)
			}
			for k := 0; k < n; k++ {
				if got[k] != want[k] {
					t.Fatalf("collector %d: distributed continuation diverges at item %d: %v vs %v",
						i, k, got[k], want[k])
				}
			}
			t.Fatalf("collector %d: distributed continuation emitted %d items, sequential %d",
				i, len(got), len(want))
		}
	}
}
