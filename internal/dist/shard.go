package dist

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"sync/atomic"
	"time"

	"streamit/internal/exec"
	"streamit/internal/faults"
	"streamit/internal/ir"
	"streamit/internal/partition"
	"streamit/internal/wfunc"
)

// ShardOptions configure one shard worker.
type ShardOptions struct {
	// Name is the shard's display name in coordinator logs.
	Name string
	// Registry resolves job app names (default SuiteRegistry).
	Registry map[string]func() *ir.Program
	// DataAddr is the listen address for peer data links (default
	// "127.0.0.1:0").
	DataAddr string
	// Heartbeat is the liveness interval (default 100ms).
	Heartbeat time.Duration
	// WriteTimeout bounds every blocking network write (default 10s).
	WriteTimeout time.Duration
	// JoinTimeout bounds the coordinator dial, with backoff and jitter
	// (default 30s).
	JoinTimeout time.Duration
	// LinkTimeout bounds one generation's peer-link establishment
	// (default 10s).
	LinkTimeout time.Duration
	// CrashFn is what an injected crash fault does after the shard severs
	// its connections. The default exits the process with status 137 —
	// indistinguishable from kill -9. In-process tests install a no-op.
	CrashFn func()
	// Log receives shard progress notes (default: standard logger).
	Log func(format string, args ...any)
}

func (o *ShardOptions) defaults() {
	if o.Registry == nil {
		o.Registry = SuiteRegistry()
	}
	if o.DataAddr == "" {
		o.DataAddr = "127.0.0.1:0"
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 100 * time.Millisecond
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.JoinTimeout <= 0 {
		o.JoinTimeout = 30 * time.Second
	}
	if o.LinkTimeout <= 0 {
		o.LinkTimeout = 10 * time.Second
	}
	if o.CrashFn == nil {
		o.CrashFn = func() { os.Exit(137) }
	}
	if o.Log == nil {
		o.Log = log.Printf
	}
}

// errWedged marks an epoch that ended because an injected stall or
// partition fault wedged it (and teardown later unblocked it); the
// generation is discarded quietly.
var errWedged = errors.New("dist: epoch wedged by injected fault")

// generation is one installed topology on a shard: the sharded engine,
// its data links, and the sink-capture buffers.
type generation struct {
	gen   uint32
	live  []uint32 // stable shard IDs by live index
	myIdx int
	eng   *exec.MappedEngine
	links *linkSet
	sinks map[int]*sinkBuf // g2 node ID → capture buffer
}

// sinkBuf captures one locally-owned sink's input stream during an epoch.
type sinkBuf struct {
	items []float64
}

// shard is one worker process of a distributed run.
type shard struct {
	opts    ShardOptions
	fc      *fconn
	ln      net.Listener
	job     *jobMsg
	jp      *jobPlan
	pending []faults.ShardFault // this shard's unconsumed injected faults

	curMu   atomic.Pointer[generation] // read by the acceptor and heartbeat goroutines
	hbPause atomic.Bool
	quit    chan struct{}

	epochDone    chan error
	epochRunning bool
	aborting     bool
	abortToken   uint32
}

// Join connects to a coordinator, compiles the job it receives (verifying
// the graph fingerprint), and serves generations until the coordinator
// says bye or the connection dies. It is the shard worker's whole
// lifetime: streamit-run's --join mode is a Join call.
func Join(coordAddr string, opts ShardOptions) error {
	opts.defaults()
	c, err := dialRetry(coordAddr, opts.JoinTimeout)
	if err != nil {
		return err
	}
	sh := &shard{
		opts:      opts,
		fc:        newFConn(c, opts.WriteTimeout),
		quit:      make(chan struct{}),
		epochDone: make(chan error, 1),
	}
	defer sh.fc.close()
	defer close(sh.quit)
	defer func() {
		if g := sh.curMu.Load(); g != nil {
			g.links.teardown()
		}
	}()

	sh.ln, err = net.Listen("tcp", opts.DataAddr)
	if err != nil {
		return err
	}
	defer sh.ln.Close()

	if err := sh.handshake(); err != nil {
		return err
	}
	go sh.acceptLoop()
	go sh.heartbeatLoop()
	return sh.serve()
}

// handshake sends hello, receives and compiles the job, and verifies the
// fingerprint.
func (sh *shard) handshake() error {
	hello := &helloMsg{Proto: protoVersion, Name: sh.opts.Name, DataAddr: sh.ln.Addr().String()}
	if err := sh.fc.send(mtHello, hello.encode()); err != nil {
		return err
	}
	t, p, err := sh.fc.recv(sh.opts.JoinTimeout)
	if err != nil {
		return fmt.Errorf("dist: waiting for job: %w", err)
	}
	if t != mtJob {
		return fmt.Errorf("dist: expected job, got %s", t)
	}
	if sh.job, err = decodeJob(p); err != nil {
		return err
	}
	prog, err := buildProgram(Spec{App: sh.job.App, Source: sh.job.Source, Top: sh.job.Top}, sh.opts.Registry)
	if err != nil {
		sh.fc.send(mtError, (&textMsg{Text: err.Error()}).encode())
		return err
	}
	jp, err := buildJobPlan(prog, partition.Strategy(sh.job.Strategy), int(sh.job.Shards)*int(sh.job.PerShard))
	if err != nil {
		sh.fc.send(mtError, (&textMsg{Text: err.Error()}).encode())
		return err
	}
	if jp.fp != sh.job.Fingerprint {
		err := fmt.Errorf("dist: local graph fingerprint %#x does not match the coordinator's %#x — build skew",
			jp.fp, sh.job.Fingerprint)
		sh.fc.send(mtError, (&textMsg{Code: jp.fp, Text: err.Error()}).encode())
		return err
	}
	sh.jp = jp
	if sh.job.Faults != "" {
		plan, err := faults.ParsePlan(sh.job.Faults)
		if err != nil {
			sh.fc.send(mtError, (&textMsg{Text: err.Error()}).encode())
			return err
		}
		// Only shard faults aimed at this shard's stable ID apply here;
		// filter- and worker-level faults are single-process concerns.
		for _, f := range plan.ShardFaults {
			if f.Shard == int(sh.job.ShardID) {
				sh.pending = append(sh.pending, f)
			}
		}
	}
	return sh.fc.send(mtJobOK, (&textMsg{Code: jp.fp}).encode())
}

// acceptLoop serves the data listener: every inbound peer connection
// identifies itself with a linkHello, and is handed to the current
// generation's linkSet — or closed if the named generation is not (yet)
// installed. The dialer retries, so a close during an install race is
// recoverable by design.
func (sh *shard) acceptLoop() {
	for {
		c, err := sh.ln.Accept()
		if err != nil {
			return // listener closed: shard is exiting
		}
		go sh.acceptLink(c)
	}
}

func (sh *shard) acceptLink(c net.Conn) {
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	r := bufio.NewReaderSize(c, 64<<10)
	t, p, err := readFrame(r)
	if err != nil || t != mtLinkHello {
		c.Close()
		return
	}
	m, err := decodeLinkHello(p)
	if err != nil {
		c.Close()
		return
	}
	g := sh.curMu.Load()
	if g == nil || g.links.gen != m.Gen || !g.links.expectsAccept(int(m.From)) {
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	if !g.links.offer(int(m.From), c, r) {
		c.Close()
		return
	}
	// Ack after the handoff: the dialer proceeds only once its conn is
	// actually registered. A failed ack write just dies with the conn.
	c.SetWriteDeadline(time.Now().Add(sh.opts.WriteTimeout))
	writeFrame(c, mtLinkHello, (&linkHelloMsg{From: uint32(g.myIdx), Gen: m.Gen}).encode())
	c.SetWriteDeadline(time.Time{})
}

// heartbeatLoop reports liveness plus the set of shards local workers are
// blocked receiving from (the coordinator's wait-graph input). A
// partition fault pauses it without stopping the shard.
func (sh *shard) heartbeatLoop() {
	t := time.NewTicker(sh.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-sh.quit:
			return
		case <-t.C:
		}
		if sh.hbPause.Load() {
			continue
		}
		var waits []uint32
		if g := sh.curMu.Load(); g != nil {
			for _, idx := range g.links.blockedPeers() {
				waits = append(waits, g.live[idx])
			}
		}
		// Best-effort: a dead control conn surfaces in the serve loop.
		sh.fc.send(mtHeartbeat, (&beatMsg{WaitingOn: waits}).encode())
	}
}

type ctrlEv struct {
	t   msgType
	p   []byte
	err error
}

// serve is the control loop: reads coordinator messages off a reader
// goroutine and epoch completions off the epoch goroutine.
func (sh *shard) serve() error {
	ctrl := make(chan ctrlEv, 8)
	go func() {
		for {
			t, p, err := sh.fc.recv(0)
			ev := ctrlEv{t, p, err}
			select {
			case ctrl <- ev:
			case <-sh.quit:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	for {
		select {
		case ev := <-ctrl:
			if ev.err != nil {
				return fmt.Errorf("dist: coordinator connection: %w", ev.err)
			}
			switch ev.t {
			case mtAssign:
				if err := sh.handleAssign(ev.p); err != nil {
					return err
				}
			case mtRun:
				if err := sh.handleRun(ev.p); err != nil {
					return err
				}
			case mtAbort:
				if err := sh.handleAbort(ev.p); err != nil {
					return err
				}
			case mtBye:
				sh.destroyGen()
				return nil
			default:
				return fmt.Errorf("dist: unexpected %s frame on the control connection", ev.t)
			}
		case err := <-sh.epochDone:
			if err2 := sh.finishEpoch(err); err2 != nil {
				return err2
			}
		}
	}
}

// handleAssign installs one generation: build the sharded engine over the
// job's graph, restore the barrier image (or replay initialization),
// connect the peer links, and report ready. Local build failures are
// reported as errors; link failures stay quiet — they are almost always
// another shard's death, which the coordinator detects on its own and
// resolves with a new generation.
func (sh *shard) handleAssign(p []byte) error {
	m, err := decodeAssign(p)
	if err != nil {
		return err
	}
	sh.destroyGen() // the coordinator aborts before reassigning, but be safe
	myIdx := -1
	for i, id := range m.LiveShards {
		if id == sh.job.ShardID {
			myIdx = i
		}
	}
	if myIdx < 0 {
		return fmt.Errorf("dist: assign for generation %d does not include this shard", m.Gen)
	}
	if len(m.Peers) != len(m.LiveShards) {
		return fmt.Errorf("dist: assign lists %d peers for %d shards", len(m.Peers), len(m.LiveShards))
	}
	perShard := int(sh.job.PerShard)
	workers := len(m.LiveShards) * perShard
	assign := make([]int, len(m.Assign))
	local := make([]bool, workers)
	for i, w := range m.Assign {
		assign[i] = int(w)
	}
	for w := range local {
		local[w] = w/perShard == myIdx
	}
	depth := int(sh.job.QueueDepth)
	if depth <= 0 {
		depth = exec.DefaultQueueDepth
	}
	links := newLinkSet(sh.jp.g2, assign, perShard, myIdx, len(m.LiveShards), m.Gen, depth, sh.opts.WriteTimeout)
	eng, err := exec.NewMappedOpts(sh.jp.g2, sh.jp.s2, assign, workers, exec.Options{
		Backend:      exec.Backend(sh.job.Backend),
		QueueDepth:   depth,
		Watchdog:     -1, // blocking on a remote peer is not a deadlock
		LocalWorkers: local,
		Remote:       links.hooks(),
	})
	if err != nil {
		sh.fc.send(mtError, (&textMsg{Text: err.Error()}).encode())
		return nil
	}
	g := &generation{gen: m.Gen, live: m.LiveShards, myIdx: myIdx, eng: eng, links: links}
	if sh.job.TapSinks {
		if g.sinks, err = tapSinks(eng, sh.jp.g2, assign, local); err != nil {
			sh.fc.send(mtError, (&textMsg{Text: err.Error()}).encode())
			return nil
		}
	}
	if len(m.Image) > 0 {
		_, err = eng.RestoreCheckpoint(m.Image)
	} else {
		err = eng.Prepare()
	}
	if err != nil {
		sh.fc.send(mtError, (&textMsg{Text: err.Error()}).encode())
		return nil
	}
	// Publish before connecting: peers dial this shard's acceptor, which
	// routes by the current generation.
	sh.curMu.Store(g)
	peers := make([]string, len(m.Peers))
	copy(peers, m.Peers)
	if err := links.connect(peers, sh.opts.LinkTimeout); err != nil {
		sh.opts.Log("dist shard %d: generation %d links failed: %v", sh.job.ShardID, m.Gen, err)
		sh.destroyGen()
		return nil
	}
	return sh.fc.send(mtReady, (&genMsg{Gen: m.Gen}).encode())
}

// tapSinks overrides every locally-owned sink filter to capture its input
// stream instead of running its kernel. Sinks push nothing, so upstream
// state and the captured values are unaffected by the substitution.
func tapSinks(eng *exec.MappedEngine, g2 *ir.Graph, assign []int, local []bool) (map[int]*sinkBuf, error) {
	sinks := make(map[int]*sinkBuf)
	for _, n := range g2.Nodes {
		if n.Kind != ir.NodeFilter || !n.IsSink() || n.IsSource() {
			continue
		}
		if !local[assign[n.ID]] {
			continue
		}
		buf := &sinkBuf{}
		pop := n.TotalPop()
		if err := eng.OverrideWork(n.Name, func(in, out wfunc.Tape) {
			for i := 0; i < pop; i++ {
				buf.items = append(buf.items, in.Pop())
			}
		}); err != nil {
			return nil, fmt.Errorf("dist: tap sink %s: %w", n.Name, err)
		}
		sinks[n.ID] = buf
	}
	return sinks, nil
}

// handleRun starts one epoch on the current generation.
func (sh *shard) handleRun(p []byte) error {
	m, err := decodeGen(p)
	if err != nil {
		return err
	}
	g := sh.curMu.Load()
	if g == nil || g.gen != m.Gen || sh.epochRunning {
		// A stale run that crossed an abort in flight; the coordinator's
		// new generation supersedes it.
		return nil
	}
	sh.epochRunning = true
	go func() {
		sh.epochDone <- sh.runEpoch(g, int(m.Iters))
	}()
	return nil
}

// runEpoch drives the engine through one epoch, splitting it at injected
// shard-fault iterations.
func (sh *shard) runEpoch(g *generation, n int) error {
	start := g.eng.Iteration()
	end := start + int64(n)
	for start < end {
		f := sh.takeFault(start, end)
		if f == nil {
			if err := g.eng.StepEpoch(int(end - start)); err != nil {
				return err
			}
			return nil
		}
		if pre := int(f.Iter - start); pre > 0 {
			if err := g.eng.StepEpoch(pre); err != nil {
				return err
			}
			start = f.Iter
		}
		return sh.fire(g, *f)
	}
	return nil
}

// takeFault consumes the earliest pending shard fault in [start, end).
// Consumption is permanent: after a rollback the same iteration replays
// without re-firing the fault, so recovery converges.
func (sh *shard) takeFault(start, end int64) *faults.ShardFault {
	best := -1
	for i, f := range sh.pending {
		if f.Iter >= start && f.Iter < end && (best < 0 || f.Iter < sh.pending[best].Iter) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	f := sh.pending[best]
	sh.pending = append(sh.pending[:best], sh.pending[best+1:]...)
	return &f
}

// fire executes one injected shard fault at an iteration boundary.
func (sh *shard) fire(g *generation, f faults.ShardFault) error {
	sh.opts.Log("dist shard %d: firing injected %s at iteration %d", sh.job.ShardID, f.Kind, f.Iter)
	switch f.Kind {
	case faults.Crash:
		// Sever everything abruptly — no abort protocol, no flush — then
		// run the crash hook (default: exit 137, like kill -9).
		sh.fc.close()
		sh.ln.Close()
		g.links.teardown()
		sh.opts.CrashFn()
	case faults.Partition:
		// Silence heartbeats; the epoch wedges below. The coordinator
		// sees a live TCP connection but no liveness — heartbeat loss.
		sh.hbPause.Store(true)
	case faults.Stall:
		// Keep heartbeats; just never reach the barrier. Only the
		// wait-graph can tell this shard from the peers it starves.
	}
	select {
	case <-sh.quit:
	case <-g.links.down:
	}
	return errWedged
}

// finishEpoch handles an epoch goroutine's completion on the serve loop.
func (sh *shard) finishEpoch(err error) error {
	sh.epochRunning = false
	g := sh.curMu.Load()
	if sh.aborting {
		sh.aborting = false
		sh.destroyGen()
		return sh.fc.send(mtAborted, (&genMsg{Gen: sh.abortToken}).encode())
	}
	if g == nil {
		return nil
	}
	if err != nil {
		// Quiet failures: a deliberate teardown, an injected wedge, or a
		// transport error whose root cause is a peer the coordinator will
		// detect itself. Anything else is this shard's own fault — say so.
		quiet := errors.Is(err, errWedged) || errors.Is(err, exec.ErrRemoteStopped) || g.links.failure() != nil
		sh.opts.Log("dist shard %d: generation %d epoch failed: %v", sh.job.ShardID, g.gen, err)
		sh.destroyGen()
		if !quiet {
			return sh.fc.send(mtError, (&textMsg{Text: err.Error()}).encode())
		}
		return nil
	}
	st, err := g.eng.ExportShard()
	if err != nil {
		sh.destroyGen()
		return sh.fc.send(mtError, (&textMsg{Text: err.Error()}).encode())
	}
	var chunks []sinkChunk
	for id, buf := range g.sinks {
		chunks = append(chunks, sinkChunk{Node: uint32(id), Items: buf.items})
		buf.items = nil
	}
	bar := &barrierMsg{Gen: g.gen, Iter: g.eng.Iteration(), State: st, Sinks: chunks}
	return sh.fc.send(mtBarrier, bar.encode())
}

// handleAbort tears down the current generation. If an epoch is running
// the links unblock it first; the aborted ack goes out once it unwinds.
func (sh *shard) handleAbort(p []byte) error {
	m, err := decodeText(p)
	if err != nil {
		return err
	}
	sh.abortToken = uint32(m.Code)
	if sh.epochRunning {
		sh.aborting = true
		if g := sh.curMu.Load(); g != nil {
			g.links.teardown()
		}
		return nil
	}
	sh.destroyGen()
	return sh.fc.send(mtAborted, (&genMsg{Gen: sh.abortToken}).encode())
}

// destroyGen tears down and forgets the current generation.
func (sh *shard) destroyGen() {
	if g := sh.curMu.Load(); g != nil {
		g.links.teardown()
		sh.curMu.Store((*generation)(nil))
	}
}
