package dist

import (
	"fmt"
	"log"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"streamit/internal/exec"
	"streamit/internal/ir"
	"streamit/internal/partition"
	"streamit/internal/sched"
)

// Config configures a distributed run.
type Config struct {
	// Shards is the number of worker processes the run starts with.
	Shards int
	// PerShard is the number of engine workers each shard runs
	// (default 2). The initial plan is sized for Shards × PerShard
	// global workers; recovery re-packs the same graph onto the
	// survivors' workers.
	PerShard int
	// Strategy selects the graph rewrite (default task+data). Pipelined
	// strategies are rejected — lockstep epochs are the barrier protocol.
	Strategy partition.Strategy
	// Backend selects the kernel substrate on every shard.
	Backend exec.Backend
	// Epoch is the iterations per coordinated barrier (default 8) — the
	// rollback granularity.
	Epoch int
	// QueueDepth bounds cross-worker and cross-shard buffering in
	// batches (default exec.DefaultQueueDepth).
	QueueDepth int
	// TapSinks makes shards capture sink input streams and ship them at
	// barriers; Result.Outputs collects them per sink.
	TapSinks bool
	// Faults forwards a fault-injection spec to the shards (see
	// faults.ParsePlan); only shard-level targets fire there.
	Faults string
	// Registry resolves Spec.App on the coordinator side (default
	// SuiteRegistry).
	Registry map[string]func() *ir.Program
	// StartImage resumes the run from a previously committed checkpoint
	// image — one written by the sequential engine, the mapped engine, or
	// a prior distributed run's FinalImage — instead of a cold start.
	// StartIter is the steady iteration the image was taken at.
	StartImage []byte
	StartIter  int64
	// Heartbeat is the shard liveness interval (default 100ms);
	// HeartbeatTimeout the staleness bound declaring a shard dead
	// (default 8 × Heartbeat).
	Heartbeat        time.Duration
	HeartbeatTimeout time.Duration
	// EpochTimeout bounds one epoch barrier and one generation install
	// (default 30s). At the deadline the wait-graph from heartbeats
	// picks the wedged shards.
	EpochTimeout time.Duration
	// WriteTimeout bounds every blocking network write (default 10s).
	WriteTimeout time.Duration
	// JoinTimeout bounds the initial shard rendezvous (default 30s).
	JoinTimeout time.Duration
	// OnBarrier, when set, runs after every committed epoch barrier with
	// the committed iteration count — a deterministic hook for tests and
	// progress reporting.
	OnBarrier func(iter int64)
	// Log receives coordinator progress notes (default: standard logger).
	Log func(format string, args ...any)
}

func (c *Config) defaults() error {
	if c.Shards < 1 {
		return fmt.Errorf("dist: %d shards", c.Shards)
	}
	if c.PerShard == 0 {
		c.PerShard = 2
	}
	if c.PerShard < 1 {
		return fmt.Errorf("dist: %d workers per shard", c.PerShard)
	}
	if c.Strategy == "" {
		c.Strategy = partition.StratCoarseData
	}
	if c.Epoch <= 0 {
		c.Epoch = 8
	}
	if c.Registry == nil {
		c.Registry = SuiteRegistry()
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 100 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 8 * c.Heartbeat
	}
	if c.EpochTimeout <= 0 {
		c.EpochTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.JoinTimeout <= 0 {
		c.JoinTimeout = 30 * time.Second
	}
	if c.Log == nil {
		c.Log = log.Printf
	}
	return nil
}

// Result is what a completed distributed run hands back.
type Result struct {
	// Iterations is the number of committed steady iterations.
	Iterations int64
	// Recoveries counts generation rollbacks forced by shard failures.
	Recoveries int
	// Lost lists the stable IDs of shards removed by failure.
	Lost []int
	// Outputs maps each sink node's name to its captured stream
	// (TapSinks mode), exactly-once across recoveries: chunks commit
	// only with their epoch's barrier.
	Outputs map[string][]float64
	// FinalImage is the last committed barrier image — restorable by a
	// sequential or mapped engine over the same program.
	FinalImage []byte
	// Generations is the number of topologies installed (1 + aborts).
	Generations int
}

// shardConn is the coordinator's handle on one shard worker.
type shardConn struct {
	id       int // stable shard ID
	name     string
	dataAddr string
	fc       *fconn

	lastBeat atomic.Int64 // UnixNano of the last heartbeat
	waitMu   sync.Mutex
	waitsOn  []uint32 // stable IDs from the last heartbeat

	dead       bool // owned by the coordinator loop
	readyGen   uint32
	abortedGen uint32
	barrier    *barrierMsg
}

func (sc *shardConn) String() string {
	if sc.name != "" {
		return fmt.Sprintf("shard %d (%s)", sc.id, sc.name)
	}
	return fmt.Sprintf("shard %d", sc.id)
}

// coEvent is one control-plane happening: a message from a shard, or its
// connection dying.
type coEvent struct {
	sc  *shardConn
	t   msgType
	p   []byte
	err error
}

// shardFailure names the shards a wait declared dead; the coordinator
// demotes them and installs a new generation on the survivors.
type shardFailure struct {
	scs    []*shardConn
	reason string
}

func (e *shardFailure) Error() string {
	names := make([]string, len(e.scs))
	for i, sc := range e.scs {
		names[i] = sc.String()
	}
	return fmt.Sprintf("dist: %s: %s", strings.Join(names, ", "), e.reason)
}

// Coordinator drives one distributed run: it owns the program's plan, the
// shard control connections, the epoch barriers, and crash recovery.
type Coordinator struct {
	spec Spec
	cfg  Config
	jp   *jobPlan

	ln     net.Listener
	shards []*shardConn // by stable ID
	live   []*shardConn // current generation, in live-index order
	events chan coEvent
	done   chan struct{}

	gen        uint32
	iter       int64
	lastImg    []byte
	outputs    map[string][]float64
	recoveries int
	lost       []int
}

// NewCoordinator compiles the spec and prepares a run; Listen then Run
// drive it.
func NewCoordinator(spec Spec, cfg Config) (*Coordinator, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	prog, err := buildProgram(spec, cfg.Registry)
	if err != nil {
		return nil, err
	}
	jp, err := buildJobPlan(prog, cfg.Strategy, cfg.Shards*cfg.PerShard)
	if err != nil {
		return nil, err
	}
	return &Coordinator{
		spec:    spec,
		cfg:     cfg,
		jp:      jp,
		events:  make(chan coEvent, 16*cfg.Shards),
		done:    make(chan struct{}),
		outputs: make(map[string][]float64),
	}, nil
}

// Fingerprint is the rewritten graph's fingerprint every shard must
// reproduce.
func (co *Coordinator) Fingerprint() uint64 { return co.jp.fp }

// Graph exposes the rewritten graph and schedule (for interchange tests
// and output bookkeeping).
func (co *Coordinator) Graph() (*ir.Graph, *sched.Schedule) { return co.jp.g2, co.jp.s2 }

// Listen opens the control listener and returns the address shards join.
func (co *Coordinator) Listen(addr string) (string, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	co.ln = ln
	return ln.Addr().String(), nil
}

// Close releases the listener and every shard connection.
func (co *Coordinator) Close() {
	select {
	case <-co.done:
	default:
		close(co.done)
	}
	if co.ln != nil {
		co.ln.Close()
	}
	for _, sc := range co.shards {
		sc.fc.close()
	}
}

// Run rendezvouses with the shards, then drives epochs until total
// steady iterations commit, surviving shard failures by rolling the
// survivors back to the last barrier image under a re-packed assignment.
func (co *Coordinator) Run(total int) (*Result, error) {
	if co.ln == nil {
		return nil, fmt.Errorf("dist: call Listen before Run")
	}
	defer co.Close()
	if err := co.rendezvous(); err != nil {
		return nil, err
	}
	co.live = append([]*shardConn(nil), co.shards...)
	if len(co.cfg.StartImage) > 0 {
		co.lastImg = append([]byte(nil), co.cfg.StartImage...)
		co.iter = co.cfg.StartIter
	}
	installed := false
	for {
		if !installed {
			co.gen++
			if err := co.install(); err != nil {
				if !co.demote(err) {
					return nil, err
				}
				continue
			}
			installed = true
		}
		if co.iter >= int64(total) {
			break
		}
		n := co.cfg.Epoch
		if rem := int(int64(total) - co.iter); n > rem {
			n = rem
		}
		if err := co.epoch(n); err != nil {
			if !co.demote(err) {
				return nil, err
			}
			co.recoveries++
			installed = false
			continue
		}
	}
	for _, sc := range co.live {
		sc.fc.send(mtBye, nil)
	}
	return &Result{
		Iterations:  co.iter,
		Recoveries:  co.recoveries,
		Lost:        append([]int(nil), co.lost...),
		Outputs:     co.outputs,
		FinalImage:  append([]byte(nil), co.lastImg...),
		Generations: int(co.gen),
	}, nil
}

// rendezvous accepts every shard, ships the job, and verifies each local
// compile reproduced the fingerprint.
func (co *Coordinator) rendezvous() error {
	deadline := time.Now().Add(co.cfg.JoinTimeout)
	for id := 0; id < co.cfg.Shards; id++ {
		if tl, ok := co.ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		c, err := co.ln.Accept()
		if err != nil {
			return fmt.Errorf("dist: waiting for shard %d of %d: %w", id, co.cfg.Shards, err)
		}
		sc := &shardConn{id: id, fc: newFConn(c, co.cfg.WriteTimeout)}
		if err := co.handshake(sc); err != nil {
			sc.fc.close()
			return err
		}
		sc.lastBeat.Store(time.Now().UnixNano())
		co.shards = append(co.shards, sc)
		go co.readShard(sc)
		co.cfg.Log("dist: %s joined from %s", sc, sc.dataAddr)
	}
	return nil
}

func (co *Coordinator) handshake(sc *shardConn) error {
	t, p, err := sc.fc.recv(co.cfg.JoinTimeout)
	if err != nil {
		return fmt.Errorf("dist: shard %d hello: %w", sc.id, err)
	}
	if t != mtHello {
		return fmt.Errorf("dist: shard %d sent %s instead of hello", sc.id, t)
	}
	hello, err := decodeHello(p)
	if err != nil {
		return err
	}
	if hello.Proto != protoVersion {
		return fmt.Errorf("dist: shard %d speaks protocol %d, want %d", sc.id, hello.Proto, protoVersion)
	}
	sc.name, sc.dataAddr = hello.Name, hello.DataAddr
	job := &jobMsg{
		ShardID:     uint32(sc.id),
		App:         co.spec.App,
		Source:      co.spec.Source,
		Top:         co.spec.Top,
		Strategy:    string(co.cfg.Strategy),
		Backend:     uint8(co.cfg.Backend),
		Shards:      uint32(co.cfg.Shards),
		PerShard:    uint32(co.cfg.PerShard),
		Epoch:       uint32(co.cfg.Epoch),
		QueueDepth:  uint32(co.cfg.QueueDepth),
		TapSinks:    co.cfg.TapSinks,
		Faults:      co.cfg.Faults,
		Fingerprint: co.jp.fp,
	}
	if err := sc.fc.send(mtJob, job.encode()); err != nil {
		return err
	}
	if t, p, err = sc.fc.recv(co.cfg.EpochTimeout); err != nil {
		return fmt.Errorf("dist: %s compiling job: %w", sc, err)
	}
	switch t {
	case mtJobOK:
		ok, err := decodeText(p)
		if err != nil {
			return err
		}
		if ok.Code != co.jp.fp {
			return fmt.Errorf("dist: %s fingerprint %#x does not match %#x", sc, ok.Code, co.jp.fp)
		}
		return nil
	case mtError:
		if em, err := decodeText(p); err == nil {
			return fmt.Errorf("dist: %s rejected job: %s", sc, em.Text)
		}
		return fmt.Errorf("dist: %s rejected job", sc)
	default:
		return fmt.Errorf("dist: %s answered job with %s", sc, t)
	}
}

// readShard drains one shard's control connection: heartbeats update the
// liveness record in place, everything else (including the final error)
// becomes an event for the coordinator loop.
func (co *Coordinator) readShard(sc *shardConn) {
	for {
		t, p, err := sc.fc.recv(0)
		if err == nil && t == mtHeartbeat {
			if hb, herr := decodeBeat(p); herr == nil {
				sc.lastBeat.Store(time.Now().UnixNano())
				sc.waitMu.Lock()
				sc.waitsOn = hb.WaitingOn
				sc.waitMu.Unlock()
				continue
			}
			err = fmt.Errorf("dist: %s sent a malformed heartbeat", sc)
		}
		select {
		case co.events <- coEvent{sc: sc, t: t, p: p, err: err}:
		case <-co.done:
			return
		}
		if err != nil {
			return
		}
	}
}

// demote removes the failed shards from the live set. False means the run
// cannot continue (a non-failure error, or nobody left).
func (co *Coordinator) demote(err error) bool {
	sf, ok := err.(*shardFailure)
	if !ok {
		return false
	}
	co.cfg.Log("dist: recovering: %v", sf)
	for _, dead := range sf.scs {
		dead.dead = true
		dead.fc.close()
		co.lost = append(co.lost, dead.id)
	}
	var live []*shardConn
	for _, sc := range co.live {
		if !sc.dead {
			live = append(live, sc)
		}
	}
	co.live = live
	sort.Ints(co.lost)
	return len(co.live) > 0
}

// install aborts whatever generation the survivors are running, re-packs
// the graph onto them, and brings the new generation up: assign (+ the
// rollback image), then ready from everyone.
func (co *Coordinator) install() error {
	if co.gen > 1 {
		if err := co.abortAll(); err != nil {
			return err
		}
	}
	assign, err := co.jp.plan.AssignSharded(co.jp.g2, co.jp.s2, len(co.live), co.cfg.PerShard, nil)
	if err != nil {
		return err
	}
	ids := make([]uint32, len(co.live))
	addrs := make([]string, len(co.live))
	for i, sc := range co.live {
		ids[i] = uint32(sc.id)
		addrs[i] = sc.dataAddr
	}
	wire := make([]uint32, len(assign))
	for i, w := range assign {
		wire[i] = uint32(w)
	}
	msg := &assignMsg{Gen: co.gen, StartIter: co.iter, LiveShards: ids, Peers: addrs, Assign: wire, Image: co.lastImg}
	payload := msg.encode()
	for _, sc := range co.live {
		sc.readyGen = 0
		if err := sc.fc.send(mtAssign, payload); err != nil {
			return &shardFailure{[]*shardConn{sc}, fmt.Sprintf("assign send failed: %v", err)}
		}
	}
	co.cfg.Log("dist: generation %d: %d shards from iteration %d", co.gen, len(co.live), co.iter)
	return co.collect("install",
		func(sc *shardConn) bool { return sc.readyGen != co.gen },
		func(sc *shardConn, t msgType, p []byte) error {
			if t != mtReady {
				return nil // stale barrier/aborted from the old generation
			}
			m, err := decodeGen(p)
			if err != nil {
				return err
			}
			if m.Gen == co.gen {
				sc.readyGen = co.gen
			}
			return nil
		})
}

// abortAll tears the previous generation down on every survivor. The
// token echoed back is the NEW generation number.
func (co *Coordinator) abortAll() error {
	payload := (&textMsg{Code: uint64(co.gen), Text: "new generation"}).encode()
	for _, sc := range co.live {
		sc.abortedGen = 0
		if err := sc.fc.send(mtAbort, payload); err != nil {
			return &shardFailure{[]*shardConn{sc}, fmt.Sprintf("abort send failed: %v", err)}
		}
	}
	return co.collect("abort",
		func(sc *shardConn) bool { return sc.abortedGen != co.gen },
		func(sc *shardConn, t msgType, p []byte) error {
			if t != mtAborted {
				return nil
			}
			m, err := decodeGen(p)
			if err != nil {
				return err
			}
			if m.Gen == co.gen {
				sc.abortedGen = co.gen
			}
			return nil
		})
}

// epoch drives one barrier: run on every live shard, barriers from all of
// them, then merge into the canonical image and commit the sink chunks.
func (co *Coordinator) epoch(n int) error {
	for _, sc := range co.live {
		sc.barrier = nil
	}
	payload := (&genMsg{Gen: co.gen, Iters: uint32(n)}).encode()
	for _, sc := range co.live {
		if err := sc.fc.send(mtRun, payload); err != nil {
			return &shardFailure{[]*shardConn{sc}, fmt.Sprintf("run send failed: %v", err)}
		}
	}
	want := co.iter + int64(n)
	err := co.collect("barrier",
		func(sc *shardConn) bool { return sc.barrier == nil },
		func(sc *shardConn, t msgType, p []byte) error {
			if t != mtBarrier {
				return nil
			}
			m, err := decodeBarrier(p)
			if err != nil {
				return err
			}
			if m.Gen != co.gen {
				return nil // stale barrier racing an abort
			}
			if m.Iter != want {
				return fmt.Errorf("barrier at iteration %d, want %d", m.Iter, want)
			}
			sc.barrier = m
			return nil
		})
	if err != nil {
		return err
	}
	parts := make([]*exec.ShardState, len(co.live))
	for i, sc := range co.live {
		parts[i] = sc.barrier.State
	}
	img, err := exec.AssembleShardImage(co.jp.g2, co.jp.s2, want, parts)
	if err != nil {
		return err // structural: a bug, not a crash — fail the run
	}
	co.lastImg = img
	co.iter = want
	for _, sc := range co.live {
		for _, chunk := range sc.barrier.Sinks {
			if int(chunk.Node) >= len(co.jp.g2.Nodes) {
				return fmt.Errorf("dist: %s reported sink chunk for node %d", sc, chunk.Node)
			}
			name := co.jp.g2.Nodes[chunk.Node].Name
			co.outputs[name] = append(co.outputs[name], chunk.Items...)
		}
		sc.barrier = nil
	}
	if co.cfg.OnBarrier != nil {
		co.cfg.OnBarrier(co.iter)
	}
	return nil
}

// collect waits until no live shard still owes the current phase its
// message. Connection errors and explicit error reports fail that shard
// immediately; stale heartbeats fail silent shards; at the deadline the
// wait-graph (who is blocked receiving from whom) separates wedged shards
// from the peers they starve, and only the roots are declared dead.
func (co *Coordinator) collect(phase string, needs func(*shardConn) bool, on func(*shardConn, msgType, []byte) error) error {
	deadline := time.NewTimer(co.cfg.EpochTimeout)
	defer deadline.Stop()
	tick := time.NewTicker(co.cfg.Heartbeat)
	defer tick.Stop()
	for {
		pending := false
		for _, sc := range co.live {
			if needs(sc) {
				pending = true
				break
			}
		}
		if !pending {
			return nil
		}
		select {
		case ev := <-co.events:
			if ev.sc.dead {
				continue
			}
			if ev.err != nil {
				return &shardFailure{[]*shardConn{ev.sc}, fmt.Sprintf("connection lost during %s: %v", phase, ev.err)}
			}
			if ev.t == mtError {
				reason := "reported an error"
				if em, err := decodeText(ev.p); err == nil {
					reason = em.Text
				}
				return &shardFailure{[]*shardConn{ev.sc}, reason}
			}
			if err := on(ev.sc, ev.t, ev.p); err != nil {
				return &shardFailure{[]*shardConn{ev.sc}, err.Error()}
			}
		case <-tick.C:
			now := time.Now().UnixNano()
			var stale []*shardConn
			for _, sc := range co.live {
				if now-sc.lastBeat.Load() > int64(co.cfg.HeartbeatTimeout) {
					stale = append(stale, sc)
				}
			}
			if len(stale) > 0 {
				return &shardFailure{stale, fmt.Sprintf("heartbeat lost during %s", phase)}
			}
		case <-deadline.C:
			var missing []*shardConn
			missingIDs := make(map[uint32]bool)
			for _, sc := range co.live {
				if needs(sc) {
					missing = append(missing, sc)
					missingIDs[uint32(sc.id)] = true
				}
			}
			roots := waitGraphRoots(missing, missingIDs)
			return &shardFailure{roots, fmt.Sprintf("%s deadline after %v", phase, co.cfg.EpochTimeout)}
		}
	}
}

// waitGraphRoots picks, among the shards that missed a deadline, the ones
// not blocked on another missing shard — the wedged root causes. A shard
// starved by a dead upstream waits on it and is spared; if everyone waits
// on someone (a cycle, or no wait info), all of them go.
func waitGraphRoots(missing []*shardConn, missingIDs map[uint32]bool) []*shardConn {
	var roots []*shardConn
	for _, sc := range missing {
		sc.waitMu.Lock()
		waits := append([]uint32(nil), sc.waitsOn...)
		sc.waitMu.Unlock()
		blockedOnMissing := false
		for _, id := range waits {
			if missingIDs[id] {
				blockedOnMissing = true
				break
			}
		}
		if !blockedOnMissing {
			roots = append(roots, sc)
		}
	}
	if len(roots) == 0 {
		return missing
	}
	return roots
}
