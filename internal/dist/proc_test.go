package dist

import (
	"fmt"
	"math/rand/v2"
	"os"
	osexec "os/exec"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"
)

// The process tests re-exec this test binary as real shard workers: when
// STREAMIT_DIST_HELPER names a coordinator address, TestMain becomes a
// shard process — it joins, serves, and exits without ever running tests.
// Crashes are then genuine: kill -9 takes out an OS process, a crash
// fault exits with status 137, and the coordinator recovers over real
// severed sockets.

func TestMain(m *testing.M) {
	if addr := os.Getenv("STREAMIT_DIST_HELPER"); addr != "" {
		opts := ShardOptions{
			Name: os.Getenv("STREAMIT_DIST_NAME"),
			Log:  func(string, ...any) {},
		}
		if ms, err := strconv.Atoi(os.Getenv("STREAMIT_DIST_HB_MS")); err == nil && ms > 0 {
			opts.Heartbeat = time.Duration(ms) * time.Millisecond
		}
		if err := Join(addr, opts); err != nil {
			fmt.Fprintf(os.Stderr, "shard %s: %v\n", opts.Name, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// procConfig tunes a Config to the helper processes' default cadence.
func procConfig(shards int) Config {
	cfg := testConfig(shards)
	cfg.Heartbeat = 50 * time.Millisecond
	cfg.HeartbeatTimeout = time.Second
	cfg.EpochTimeout = 10 * time.Second
	cfg.JoinTimeout = 30 * time.Second
	return cfg
}

// spawnShards re-execs the test binary as n shard worker processes joined
// to addr, and guarantees they are reaped at test end.
func spawnShards(t *testing.T, addr string, n int) []*osexec.Cmd {
	t.Helper()
	cmds := make([]*osexec.Cmd, n)
	for i := range cmds {
		cmd := osexec.Command(os.Args[0], "-test.run=^$")
		cmd.Env = append(os.Environ(),
			"STREAMIT_DIST_HELPER="+addr,
			fmt.Sprintf("STREAMIT_DIST_NAME=proc%d", i),
			"STREAMIT_DIST_HB_MS=50",
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawning shard process %d: %v", i, err)
		}
		cmds[i] = cmd
	}
	t.Cleanup(func() {
		for _, cmd := range cmds {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmds
}

// TestDistProcesses: a clean sharded run across real OS processes over
// loopback TCP is bit-identical to the single-process mapped engine,
// final image included.
func TestDistProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("process tests are not -short tests")
	}
	spec := Spec{App: "FMRadio"}
	cfg := procConfig(2)
	co, err := NewCoordinator(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := co.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	spawnShards(t, addr, 2)
	const total = 12
	res, err := co.Run(total)
	if err != nil {
		t.Fatalf("distributed run over processes: %v", err)
	}
	if res.Iterations != total || res.Recoveries != 0 {
		t.Fatalf("committed %d iterations with %d recoveries, want %d clean", res.Iterations, res.Recoveries, total)
	}
	want, wantImg := refRun(t, spec, cfg, total)
	sameOutputs(t, "processes vs single-process", res.Outputs, want)
	if string(res.FinalImage) != string(wantImg) {
		t.Fatal("final barrier image differs from the single-process checkpoint")
	}
}

// TestDistProcessKill9: one shard process is killed with SIGKILL mid-run
// — no goodbye, no flush, a reset socket. The coordinator rolls the
// survivors back to the last barrier and the committed output is still
// bit-identical.
func TestDistProcessKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("process tests are not -short tests")
	}
	spec := Spec{App: "FMRadio"}
	cfg := procConfig(3)
	var (
		killMu sync.Mutex
		cmds   []*osexec.Cmd
		killed bool
	)
	cfg.OnBarrier = func(iter int64) {
		killMu.Lock()
		defer killMu.Unlock()
		if !killed && iter >= 8 && len(cmds) > 1 {
			cmds[1].Process.Kill()
			killed = true
		}
	}
	co, err := NewCoordinator(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := co.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	started := spawnShards(t, addr, 3)
	killMu.Lock()
	cmds = started
	killMu.Unlock()
	const total = 24
	res, err := co.Run(total)
	if err != nil {
		t.Fatalf("distributed run did not survive kill -9: %v", err)
	}
	if res.Iterations != total {
		t.Fatalf("committed %d iterations, want %d", res.Iterations, total)
	}
	if res.Recoveries < 1 || len(res.Lost) != 1 {
		t.Fatalf("kill -9 caused %d recoveries and lost %v, want >= 1 recovery of exactly one shard",
			res.Recoveries, res.Lost)
	}
	want, _ := refRun(t, spec, cfg, total)
	sameOutputs(t, "post-kill vs single-process", res.Outputs, want)
}

// TestDistProcessCrashFault: the injected crash fault in a real shard
// process uses the default CrashFn — os.Exit(137), kill -9 semantics from
// the inside. Recovery is bit-identical and names the right shard.
func TestDistProcessCrashFault(t *testing.T) {
	if testing.Short() {
		t.Skip("process tests are not -short tests")
	}
	spec := Spec{App: "FMRadio"}
	cfg := procConfig(3)
	cfg.Faults = "crash:shard1@6"
	co, err := NewCoordinator(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := co.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	spawnShards(t, addr, 3)
	const total = 16
	res, err := co.Run(total)
	if err != nil {
		t.Fatalf("distributed run did not survive the crash fault: %v", err)
	}
	if res.Iterations != total {
		t.Fatalf("committed %d iterations, want %d", res.Iterations, total)
	}
	if res.Recoveries < 1 || !reflect.DeepEqual(res.Lost, []int{1}) {
		t.Fatalf("crash fault caused %d recoveries and lost %v, want shard 1 exactly", res.Recoveries, res.Lost)
	}
	want, _ := refRun(t, spec, cfg, total)
	sameOutputs(t, "post-crash-fault vs single-process", res.Outputs, want)
}

// TestDistChaosSoak: seeded rounds of randomized fault plans — kind,
// victim, and trigger iteration all drawn from a fixed PCG stream — each
// of which must recover bit-identically. The seed makes failures
// reproducible.
func TestDistChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("the chaos soak is not a -short test")
	}
	kinds := []string{"crash", "stall", "partition"}
	programs := []string{"FMRadio", "FilterBank", "DCT"}
	rng := rand.New(rand.NewPCG(0xC0FFEE, 0xD15C0))
	const rounds = 4
	for round := 0; round < rounds; round++ {
		kind := kinds[rng.IntN(len(kinds))]
		app := programs[rng.IntN(len(programs))]
		victim := rng.IntN(3)
		at := 3 + rng.IntN(6)
		t.Run(fmt.Sprintf("%d_%s_%s_shard%d_at%d", round, kind, app, victim, at), func(t *testing.T) {
			spec := Spec{App: app}
			cfg := testConfig(3)
			cfg.Faults = fmt.Sprintf("%s:shard%d@%d", kind, victim, at)
			if kind == "stall" {
				cfg.EpochTimeout = 2 * time.Second
			}
			const total = 16
			res := runDist(t, spec, cfg, total)
			if res.Iterations != total {
				t.Fatalf("committed %d iterations, want %d", res.Iterations, total)
			}
			if res.Recoveries < 1 {
				t.Fatalf("fault %q caused no recovery", cfg.Faults)
			}
			found := false
			for _, id := range res.Lost {
				if id == victim {
					found = true
				}
			}
			if !found {
				t.Fatalf("lost %v does not include the faulted shard %d", res.Lost, victim)
			}
			want, _ := refRun(t, spec, cfg, total)
			sameOutputs(t, "post-chaos vs single-process", res.Outputs, want)
		})
	}
}
