// Package dist executes one mapped ExecPlan across OS processes: a
// coordinator compiles the program, fingerprints the rewritten graph, and
// drives shard workers over TCP — each shard compiles the same source
// locally (verifying the fingerprint, so the graph never crosses the wire
// twice), runs its slice of the worker set as a sharded MappedEngine, and
// exchanges cross-shard edge batches directly with its peers. Epoch
// barriers reuse the coordinated-checkpoint machinery: every shard
// exports the state it owns, the coordinator assembles the canonical
// byte-interchangeable image, and a shard crash (process kill, socket
// reset, heartbeat loss, wedged barrier) rolls the survivors back to that
// image and re-plans the dead shard's partitions onto them — the
// fingerprint never changes, so the stream resumes bit-identical.
package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Wire framing: every message is
//
//	u32 magic "STRW" | u8 type | u32 payload length | payload | u32 CRC
//
// little-endian, CRC-32C (Castagnoli) over type + length + payload. The
// length is validated against MaxFrame BEFORE any payload allocation, so
// a torn or hostile header cannot trigger a huge allocation; the CRC
// rejects corrupted frames before their payload is parsed. Payloads use
// the same hand-rolled little-endian encoding style as the checkpoint
// image format (bounds-checked reader, no reflection).

const (
	frameMagic = 0x57525453 // "STRW" little-endian

	// MaxFrame caps a frame's payload; larger length prefixes are
	// rejected before allocation. Checkpoint images for the app suite are
	// tens of kilobytes; 64 MiB leaves room for very large graphs.
	MaxFrame = 64 << 20

	// frameHdrLen is magic + type + payload length.
	frameHdrLen = 4 + 1 + 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// msgType enumerates the frame types.
type msgType byte

const (
	mtInvalid   msgType = iota
	mtHello             // shard -> coordinator: join (name, data address)
	mtJob               // coordinator -> shard: program + plan options + fingerprint
	mtJobOK             // shard -> coordinator: local compile verified the fingerprint
	mtAssign            // coordinator -> shard: generation topology (+ optional restore image)
	mtReady             // shard -> coordinator: engine built, links up, restored
	mtRun               // coordinator -> shard: run one epoch
	mtBarrier           // shard -> coordinator: owned slice of the barrier state
	mtAbort             // coordinator -> shard: tear down the generation
	mtAborted           // shard -> coordinator: teardown complete
	mtHeartbeat         // shard -> coordinator: liveness
	mtBye               // coordinator -> shard: clean shutdown
	mtError             // either direction: fatal error report
	mtLinkHello         // shard -> shard on a data connection: identify + generation
	mtBatch             // shard -> shard: one edge's per-iteration batch
)

func (t msgType) String() string {
	names := [...]string{"invalid", "hello", "job", "jobok", "assign", "ready", "run",
		"barrier", "abort", "aborted", "heartbeat", "bye", "error", "linkhello", "batch"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("type(%d)", byte(t))
}

// frameCRC computes the frame checksum over type + length + payload.
func frameCRC(t msgType, payload []byte) uint32 {
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, hdr[:])
	return crc32.Update(crc, castagnoli, payload)
}

// EncodeFrame assembles one wire frame.
func EncodeFrame(t msgType, payload []byte) []byte {
	b := make([]byte, 0, frameHdrLen+len(payload)+4)
	b = binary.LittleEndian.AppendUint32(b, frameMagic)
	b = append(b, byte(t))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	b = binary.LittleEndian.AppendUint32(b, frameCRC(t, payload))
	return b
}

// DecodeFrame parses one frame from the front of b, returning the frame
// type, its payload (aliasing b), and the total bytes consumed. Oversized
// length prefixes, bad magic, truncation, and CRC mismatches all fail —
// and the length check precedes any payload access, so a hostile prefix
// cannot drive allocation.
func DecodeFrame(b []byte) (msgType, []byte, int, error) {
	if len(b) < frameHdrLen {
		return 0, nil, 0, fmt.Errorf("dist: truncated frame header: %d of %d bytes", len(b), frameHdrLen)
	}
	if m := binary.LittleEndian.Uint32(b); m != frameMagic {
		return 0, nil, 0, fmt.Errorf("dist: bad frame magic %#x", m)
	}
	t := msgType(b[4])
	n := binary.LittleEndian.Uint32(b[5:])
	if n > MaxFrame {
		return 0, nil, 0, fmt.Errorf("dist: frame payload of %d bytes exceeds the %d-byte cap", n, MaxFrame)
	}
	total := frameHdrLen + int(n) + 4
	if len(b) < total {
		return 0, nil, 0, fmt.Errorf("dist: truncated frame: %d of %d bytes", len(b), total)
	}
	payload := b[frameHdrLen : frameHdrLen+int(n)]
	crc := binary.LittleEndian.Uint32(b[frameHdrLen+int(n):])
	if crc != frameCRC(t, payload) {
		return 0, nil, 0, fmt.Errorf("dist: frame CRC mismatch on %s frame", t)
	}
	return t, payload, total, nil
}

// writeFrame ships one frame in a single Write.
func writeFrame(w io.Writer, t msgType, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("dist: refusing to send %d-byte %s payload (cap %d)", len(payload), t, MaxFrame)
	}
	_, err := w.Write(EncodeFrame(t, payload))
	return err
}

// readFrame reads one frame from a buffered reader. The length prefix is
// validated against MaxFrame before the payload buffer is allocated.
func readFrame(r *bufio.Reader) (msgType, []byte, error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if m := binary.LittleEndian.Uint32(hdr[:]); m != frameMagic {
		return 0, nil, fmt.Errorf("dist: bad frame magic %#x", m)
	}
	t := msgType(hdr[4])
	n := binary.LittleEndian.Uint32(hdr[5:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("dist: frame payload of %d bytes exceeds the %d-byte cap", n, MaxFrame)
	}
	body := make([]byte, int(n)+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	payload := body[:n]
	crc := binary.LittleEndian.Uint32(body[n:])
	if crc != frameCRC(t, payload) {
		return 0, nil, fmt.Errorf("dist: frame CRC mismatch on %s frame", t)
	}
	return t, payload, nil
}

// wbuf is the append-based payload encoder.
type wbuf []byte

func (b *wbuf) u8(v byte)     { *b = append(*b, v) }
func (b *wbuf) u32(v uint32)  { *b = binary.LittleEndian.AppendUint32(*b, v) }
func (b *wbuf) u64(v uint64)  { *b = binary.LittleEndian.AppendUint64(*b, v) }
func (b *wbuf) i64(v int64)   { b.u64(uint64(v)) }
func (b *wbuf) f64(v float64) { b.u64(math.Float64bits(v)) }
func (b *wbuf) str(s string) {
	b.u32(uint32(len(s)))
	*b = append(*b, s...)
}
func (b *wbuf) bytes(p []byte) {
	b.u32(uint32(len(p)))
	*b = append(*b, p...)
}
func (b *wbuf) floats(vs []float64) {
	b.u32(uint32(len(vs)))
	for _, v := range vs {
		b.f64(v)
	}
}

// rbuf is the bounds-checked payload decoder. Every count is validated
// against the remaining bytes before the backing slice is allocated, the
// same discipline as the checkpoint reader.
type rbuf struct {
	b   []byte
	off int
}

func (r *rbuf) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, fmt.Errorf("dist: truncated payload: want %d bytes at offset %d of %d", n, r.off, len(r.b))
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, nil
}

// count validates a declared element count against the bytes remaining.
func (r *rbuf) count(elemSize int, what string) (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if int64(n)*int64(elemSize) > int64(len(r.b)-r.off) {
		return 0, fmt.Errorf("dist: payload declares %d %s but only %d bytes remain", n, what, len(r.b)-r.off)
	}
	return int(n), nil
}

func (r *rbuf) u8() (byte, error) {
	v, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return v[0], nil
}
func (r *rbuf) u32() (uint32, error) {
	v, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(v), nil
}
func (r *rbuf) u64() (uint64, error) {
	v, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(v), nil
}
func (r *rbuf) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}
func (r *rbuf) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}
func (r *rbuf) str() (string, error) {
	n, err := r.count(1, "string bytes")
	if err != nil {
		return "", err
	}
	v, err := r.take(n)
	return string(v), err
}
func (r *rbuf) bytes() ([]byte, error) {
	n, err := r.count(1, "bytes")
	if err != nil {
		return nil, err
	}
	v, err := r.take(n)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), v...), nil
}
func (r *rbuf) floats() ([]float64, error) {
	n, err := r.count(8, "floats")
	if err != nil {
		return nil, err
	}
	vs := make([]float64, n)
	for i := range vs {
		if vs[i], err = r.f64(); err != nil {
			return nil, err
		}
	}
	return vs, nil
}
func (r *rbuf) done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("dist: %d trailing bytes after payload", len(r.b)-r.off)
	}
	return nil
}
