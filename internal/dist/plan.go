package dist

import (
	"fmt"

	"streamit/internal/exec"
	"streamit/internal/ir"
	"streamit/internal/lang"
	"streamit/internal/partition"
	"streamit/internal/sched"
)

// Spec names the program a distributed run executes: either textual
// StreamIt source (shipped in the job message) or the name of a program
// in the registry both sides share. The coordinator and every shard
// compile the spec independently; the rewritten graph's fingerprint
// proves they agree, so the elaborated graph itself never crosses the
// wire.
type Spec struct {
	// App names a registry program (see SuiteRegistry).
	App string
	// Source is textual StreamIt source; Top is the stream to elaborate
	// (default "Main").
	Source string
	Top    string
}

// buildProgram materializes a spec into an IR program.
func buildProgram(spec Spec, registry map[string]func() *ir.Program) (*ir.Program, error) {
	switch {
	case spec.Source != "":
		top := spec.Top
		if top == "" {
			top = "Main"
		}
		return lang.ParseAndElaborate(spec.Source, top)
	case spec.App != "":
		build := registry[spec.App]
		if build == nil {
			return nil, fmt.Errorf("dist: app %q is not in the registry", spec.App)
		}
		return build(), nil
	}
	return nil, fmt.Errorf("dist: spec names neither an app nor source text")
}

// jobPlan is the compile artifact both sides derive independently: the
// rewritten graph, its schedule, the exec plan that produced it, and the
// fingerprint that proves two builds agree.
type jobPlan struct {
	prog *ir.Program
	g2   *ir.Graph
	s2   *sched.Schedule
	plan *partition.ExecPlan
	fp   uint64
}

// buildJobPlan compiles and rewrites a program for a distributed run.
// workers is the TOTAL initial worker count (shards × perShard): the
// rewrite is sized once for the full fleet and never rebuilt — recovery
// re-packs the same graph onto fewer shards, keeping the fingerprint.
func buildJobPlan(prog *ir.Program, strategy partition.Strategy, workers int) (*jobPlan, error) {
	if strategy == "" {
		strategy = partition.StratCoarseData
	}
	g, err := ir.Flatten(prog)
	if err != nil {
		return nil, err
	}
	s, err := sched.Compute(g)
	if err != nil {
		return nil, err
	}
	plan, err := partition.BuildExecPlan(prog, g, s, partition.ExecPlanOptions{
		Strategy: strategy, Workers: workers,
	})
	if err != nil {
		return nil, err
	}
	if plan.Pipelined {
		return nil, fmt.Errorf("dist: strategy %q produces a pipelined plan; distributed execution wants lockstep", strategy)
	}
	g2, err := ir.Flatten(plan.Program)
	if err != nil {
		return nil, err
	}
	s2, err := sched.Compute(g2)
	if err != nil {
		return nil, err
	}
	return &jobPlan{prog: prog, g2: g2, s2: s2, plan: plan, fp: exec.GraphFingerprint(g2, s2)}, nil
}
