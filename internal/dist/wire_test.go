package dist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"streamit/internal/exec"
	"streamit/internal/wfunc"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("the quick brown fox")
	b := EncodeFrame(mtBarrier, payload)
	typ, got, n, err := DecodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if typ != mtBarrier || !bytes.Equal(got, payload) || n != len(b) {
		t.Fatalf("round trip: type %v payload %q consumed %d", typ, got, n)
	}
	// The streaming reader agrees with the slice decoder.
	rt, rp, err := readFrame(bufio.NewReader(bytes.NewReader(b)))
	if err != nil {
		t.Fatal(err)
	}
	if rt != mtBarrier || !bytes.Equal(rp, payload) {
		t.Fatalf("readFrame: type %v payload %q", rt, rp)
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	b := EncodeFrame(mtRun, []byte{1, 2, 3, 4})

	// Truncation at every length short of a full frame.
	for n := 0; n < len(b); n++ {
		if _, _, _, err := DecodeFrame(b[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded", n, len(b))
		}
	}
	// A flipped bit anywhere breaks either the magic, the length bound, or
	// the CRC.
	for i := 0; i < len(b); i++ {
		c := append([]byte(nil), b...)
		c[i] ^= 0x40
		if _, _, _, err := DecodeFrame(c); err == nil {
			t.Fatalf("bit flip at byte %d decoded", i)
		}
	}
	// An oversized length prefix is rejected before allocation: the error
	// must be the cap error even though the declared payload is absent.
	huge := EncodeFrame(mtRun, nil)
	binary.LittleEndian.PutUint32(huge[5:], MaxFrame+1)
	if _, _, _, err := DecodeFrame(huge); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("oversized prefix: %v", err)
	}
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(huge))); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("oversized prefix via reader: %v", err)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	hello := &helloMsg{Proto: protoVersion, Name: "shard-a", DataAddr: "127.0.0.1:9999"}
	h2, err := decodeHello(hello.encode())
	if err != nil || !reflect.DeepEqual(hello, h2) {
		t.Fatalf("hello: %v %+v", err, h2)
	}

	job := &jobMsg{ShardID: 2, App: "FMRadio", Top: "Main", Strategy: "task+data",
		Backend: 1, Shards: 3, PerShard: 2, Epoch: 4, QueueDepth: 2, TapSinks: true,
		Faults: "crash:shard1@8", Fingerprint: 0xdeadbeefcafe}
	j2, err := decodeJob(job.encode())
	if err != nil || !reflect.DeepEqual(job, j2) {
		t.Fatalf("job: %v %+v", err, j2)
	}

	asg := &assignMsg{Gen: 3, StartIter: 42, LiveShards: []uint32{0, 2},
		Peers: []string{"127.0.0.1:1", "127.0.0.1:2"}, Assign: []uint32{0, 1, 2, 3, 0},
		Image: []byte{9, 8, 7}}
	a2, err := decodeAssign(asg.encode())
	if err != nil || !reflect.DeepEqual(asg, a2) {
		t.Fatalf("assign: %v %+v", err, a2)
	}

	bar := &barrierMsg{Gen: 1, Iter: 8, State: &exec.ShardState{
		Iteration: 8,
		Nodes: []exec.ShardNodeState{
			{ID: 0, Fired: 16},
			{ID: 3, Fired: 8, State: &wfunc.State{Scalars: []float64{1.5}, Arrays: [][]float64{{2, 3}, nil}}},
		},
		Edges: []exec.ShardEdgeState{{ID: 1, Items: []float64{0.25, -4}}},
	}, Sinks: []sinkChunk{{Node: 7, Items: []float64{1, 2, 3}}}}
	b2, err := decodeBarrier(bar.encode())
	if err != nil {
		t.Fatalf("barrier: %v", err)
	}
	// Empty float slices decode as empty-not-nil; normalize before compare.
	if b2.State.Nodes[1].State.Arrays[1] != nil && len(b2.State.Nodes[1].State.Arrays[1]) == 0 {
		b2.State.Nodes[1].State.Arrays[1] = nil
	}
	if !reflect.DeepEqual(bar, b2) {
		t.Fatalf("barrier round trip:\n got %+v\nwant %+v", b2, bar)
	}

	batch := &batchMsg{Edge: 12, Seq: 900, Items: []float64{1, 2, 3.5}}
	bt2, err := decodeBatch(batch.encode())
	if err != nil || !reflect.DeepEqual(batch, bt2) {
		t.Fatalf("batch: %v %+v", err, bt2)
	}

	lh := &linkHelloMsg{From: 4, Gen: 9}
	lh2, err := decodeLinkHello(lh.encode())
	if err != nil || !reflect.DeepEqual(lh, lh2) {
		t.Fatalf("linkhello: %v %+v", err, lh2)
	}

	hb := &beatMsg{WaitingOn: []uint32{0, 3}}
	hb2, err := decodeBeat(hb.encode())
	if err != nil || !reflect.DeepEqual(hb, hb2) {
		t.Fatalf("beat: %v %+v", err, hb2)
	}
	if hb2, err = decodeBeat((&beatMsg{}).encode()); err != nil || hb2.WaitingOn != nil {
		t.Fatalf("empty beat: %v %+v", err, hb2)
	}

	gm := &genMsg{Gen: 5, Iters: 16}
	gm2, err := decodeGen(gm.encode())
	if err != nil || !reflect.DeepEqual(gm, gm2) {
		t.Fatalf("gen: %v %+v", err, gm2)
	}

	tm := &textMsg{Code: 0xfeed, Text: "shard 2 heartbeat lost"}
	tm2, err := decodeText(tm.encode())
	if err != nil || !reflect.DeepEqual(tm, tm2) {
		t.Fatalf("text: %v %+v", err, tm2)
	}
}

func TestMessageDecodersRejectTruncation(t *testing.T) {
	bar := &barrierMsg{Gen: 1, Iter: 8, State: &exec.ShardState{
		Nodes: []exec.ShardNodeState{{ID: 3, Fired: 8, State: &wfunc.State{Scalars: []float64{1.5}}}},
		Edges: []exec.ShardEdgeState{{ID: 1, Items: []float64{0.25}}},
	}}
	p := bar.encode()
	for n := 0; n < len(p); n++ {
		if _, err := decodeBarrier(p[:n]); err == nil {
			t.Fatalf("barrier truncated to %d of %d bytes decoded", n, len(p))
		}
	}
	if _, err := decodeBarrier(append(p, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// A hostile count cannot drive allocation: declare 2^32-1 floats in a
	// tiny payload.
	var b wbuf
	b.u32(2)
	b.u64(7)
	b.u32(0xffffffff)
	if _, err := decodeBatch(b); err == nil {
		t.Fatal("hostile float count accepted")
	}
}

// FuzzWireFrame drives the frame decoder and every payload decoder with
// arbitrary bytes: no panic, no huge allocation (the length cap precedes
// allocation), and every frame EncodeFrame produces must round-trip.
func FuzzWireFrame(f *testing.F) {
	f.Add(EncodeFrame(mtHeartbeat, (&beatMsg{WaitingOn: []uint32{1}}).encode()))
	f.Add(EncodeFrame(mtBatch, (&batchMsg{Edge: 1, Seq: 2, Items: []float64{3}}).encode()))
	f.Add(EncodeFrame(mtBarrier, (&barrierMsg{State: &exec.ShardState{}}).encode()))
	f.Add(EncodeFrame(mtJob, (&jobMsg{App: "DCT"}).encode()))
	f.Add(EncodeFrame(mtAssign, (&assignMsg{Assign: []uint32{0}}).encode()))
	f.Add([]byte("not a frame at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Whatever decodes must re-encode to an identical frame.
		re := EncodeFrame(typ, payload)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode differs: %x vs %x", re, data[:n])
		}
		// Payload decoders must be total: error or success, never panic.
		_ = decodeAny(typ, payload)
	})
}
