package dist

import (
	"fmt"

	"streamit/internal/exec"
	"streamit/internal/wfunc"
)

// helloMsg is a shard's join handshake: its display name and the address
// its data-plane listener accepts peer links on.
type helloMsg struct {
	Proto    uint32
	Name     string
	DataAddr string
}

// protoVersion guards against skew between coordinator and shard builds.
const protoVersion = 1

func (m *helloMsg) encode() []byte {
	var b wbuf
	b.u32(m.Proto)
	b.str(m.Name)
	b.str(m.DataAddr)
	return b
}

func decodeHello(p []byte) (*helloMsg, error) {
	r := &rbuf{b: p}
	m := &helloMsg{}
	var err error
	if m.Proto, err = r.u32(); err != nil {
		return nil, err
	}
	if m.Name, err = r.str(); err != nil {
		return nil, err
	}
	if m.DataAddr, err = r.str(); err != nil {
		return nil, err
	}
	return m, r.done()
}

// jobMsg carries everything a shard needs to rebuild the coordinator's
// exec plan locally: the program (source text, or a registered app name),
// the plan options, and the fingerprint of the rewritten graph the local
// compile must reproduce. ShardID is the shard's stable logical identity
// — it survives re-plans, so fault targeting and logs stay coherent.
type jobMsg struct {
	ShardID     uint32
	App         string
	Source      string
	Top         string
	Strategy    string
	Backend     uint8
	Shards      uint32
	PerShard    uint32
	Epoch       uint32
	QueueDepth  uint32
	TapSinks    bool
	Faults      string
	Fingerprint uint64
}

func (m *jobMsg) encode() []byte {
	var b wbuf
	b.u32(m.ShardID)
	b.str(m.App)
	b.str(m.Source)
	b.str(m.Top)
	b.str(m.Strategy)
	b.u8(m.Backend)
	b.u32(m.Shards)
	b.u32(m.PerShard)
	b.u32(m.Epoch)
	b.u32(m.QueueDepth)
	if m.TapSinks {
		b.u8(1)
	} else {
		b.u8(0)
	}
	b.str(m.Faults)
	b.u64(m.Fingerprint)
	return b
}

func decodeJob(p []byte) (*jobMsg, error) {
	r := &rbuf{b: p}
	m := &jobMsg{}
	var err error
	if m.ShardID, err = r.u32(); err != nil {
		return nil, err
	}
	if m.App, err = r.str(); err != nil {
		return nil, err
	}
	if m.Source, err = r.str(); err != nil {
		return nil, err
	}
	if m.Top, err = r.str(); err != nil {
		return nil, err
	}
	if m.Strategy, err = r.str(); err != nil {
		return nil, err
	}
	if m.Backend, err = r.u8(); err != nil {
		return nil, err
	}
	if m.Shards, err = r.u32(); err != nil {
		return nil, err
	}
	if m.PerShard, err = r.u32(); err != nil {
		return nil, err
	}
	if m.Epoch, err = r.u32(); err != nil {
		return nil, err
	}
	if m.QueueDepth, err = r.u32(); err != nil {
		return nil, err
	}
	tap, err := r.u8()
	if err != nil {
		return nil, err
	}
	m.TapSinks = tap != 0
	if m.Faults, err = r.str(); err != nil {
		return nil, err
	}
	if m.Fingerprint, err = r.u64(); err != nil {
		return nil, err
	}
	return m, r.done()
}

// assignMsg installs one generation's topology on a shard: the live shard
// IDs in shard-index order, their data addresses, the node→global-worker
// assignment, the iteration to resume from, and (after a recovery or for
// late joiners) the barrier image to restore.
type assignMsg struct {
	Gen        uint32
	StartIter  int64
	LiveShards []uint32
	Peers      []string
	Assign     []uint32
	Image      []byte
}

func (m *assignMsg) encode() []byte {
	var b wbuf
	b.u32(m.Gen)
	b.i64(m.StartIter)
	b.u32(uint32(len(m.LiveShards)))
	for _, s := range m.LiveShards {
		b.u32(s)
	}
	b.u32(uint32(len(m.Peers)))
	for _, p := range m.Peers {
		b.str(p)
	}
	b.u32(uint32(len(m.Assign)))
	for _, w := range m.Assign {
		b.u32(w)
	}
	b.bytes(m.Image)
	return b
}

func decodeAssign(p []byte) (*assignMsg, error) {
	r := &rbuf{b: p}
	m := &assignMsg{}
	var err error
	if m.Gen, err = r.u32(); err != nil {
		return nil, err
	}
	if m.StartIter, err = r.i64(); err != nil {
		return nil, err
	}
	n, err := r.count(4, "live shards")
	if err != nil {
		return nil, err
	}
	m.LiveShards = make([]uint32, n)
	for i := range m.LiveShards {
		if m.LiveShards[i], err = r.u32(); err != nil {
			return nil, err
		}
	}
	if n, err = r.count(4, "peers"); err != nil {
		return nil, err
	}
	m.Peers = make([]string, n)
	for i := range m.Peers {
		if m.Peers[i], err = r.str(); err != nil {
			return nil, err
		}
	}
	if n, err = r.count(4, "assignments"); err != nil {
		return nil, err
	}
	m.Assign = make([]uint32, n)
	for i := range m.Assign {
		if m.Assign[i], err = r.u32(); err != nil {
			return nil, err
		}
	}
	if m.Image, err = r.bytes(); err != nil {
		return nil, err
	}
	return m, r.done()
}

// sinkChunk is one epoch's captured output of one locally-owned sink.
type sinkChunk struct {
	Node  uint32
	Items []float64
}

// barrierMsg is a shard's report at an epoch barrier: its generation and
// iteration, the owned slice of the coordinated image, and the sink
// output captured during the epoch (TapSinks mode).
type barrierMsg struct {
	Gen   uint32
	Iter  int64
	State *exec.ShardState
	Sinks []sinkChunk
}

func (m *barrierMsg) encode() []byte {
	var b wbuf
	b.u32(m.Gen)
	b.i64(m.Iter)
	b.i64(m.State.Iteration)
	b.u32(uint32(len(m.State.Nodes)))
	for _, ns := range m.State.Nodes {
		b.u32(uint32(ns.ID))
		b.i64(ns.Fired)
		if ns.State == nil {
			b.u8(0)
			continue
		}
		b.u8(1)
		b.floats(ns.State.Scalars)
		b.u32(uint32(len(ns.State.Arrays)))
		for _, arr := range ns.State.Arrays {
			b.floats(arr)
		}
	}
	b.u32(uint32(len(m.State.Edges)))
	for _, es := range m.State.Edges {
		b.u32(uint32(es.ID))
		b.floats(es.Items)
	}
	b.u32(uint32(len(m.Sinks)))
	for _, sc := range m.Sinks {
		b.u32(sc.Node)
		b.floats(sc.Items)
	}
	return b
}

func decodeBarrier(p []byte) (*barrierMsg, error) {
	r := &rbuf{b: p}
	m := &barrierMsg{State: &exec.ShardState{}}
	var err error
	if m.Gen, err = r.u32(); err != nil {
		return nil, err
	}
	if m.Iter, err = r.i64(); err != nil {
		return nil, err
	}
	if m.State.Iteration, err = r.i64(); err != nil {
		return nil, err
	}
	n, err := r.count(13, "nodes")
	if err != nil {
		return nil, err
	}
	m.State.Nodes = make([]exec.ShardNodeState, n)
	for i := range m.State.Nodes {
		ns := &m.State.Nodes[i]
		id, err := r.u32()
		if err != nil {
			return nil, err
		}
		ns.ID = int(id)
		if ns.Fired, err = r.i64(); err != nil {
			return nil, err
		}
		has, err := r.u8()
		if err != nil {
			return nil, err
		}
		if has == 0 {
			continue
		}
		st := &wfunc.State{}
		if st.Scalars, err = r.floats(); err != nil {
			return nil, err
		}
		na, err := r.count(4, "state arrays")
		if err != nil {
			return nil, err
		}
		st.Arrays = make([][]float64, na)
		for k := range st.Arrays {
			if st.Arrays[k], err = r.floats(); err != nil {
				return nil, err
			}
		}
		ns.State = st
	}
	if n, err = r.count(8, "edges"); err != nil {
		return nil, err
	}
	m.State.Edges = make([]exec.ShardEdgeState, n)
	for i := range m.State.Edges {
		id, err := r.u32()
		if err != nil {
			return nil, err
		}
		m.State.Edges[i].ID = int(id)
		if m.State.Edges[i].Items, err = r.floats(); err != nil {
			return nil, err
		}
	}
	if n, err = r.count(8, "sinks"); err != nil {
		return nil, err
	}
	m.Sinks = make([]sinkChunk, n)
	for i := range m.Sinks {
		if m.Sinks[i].Node, err = r.u32(); err != nil {
			return nil, err
		}
		if m.Sinks[i].Items, err = r.floats(); err != nil {
			return nil, err
		}
	}
	return m, r.done()
}

// batchMsg is one cross-shard edge's per-iteration batch on a data link.
// Seq numbers batches per edge so a torn reconnect cannot silently skip
// or replay one.
type batchMsg struct {
	Edge  uint32
	Seq   uint64
	Items []float64
}

func (m *batchMsg) encode() []byte {
	var b wbuf
	b.u32(m.Edge)
	b.u64(m.Seq)
	b.floats(m.Items)
	return b
}

func decodeBatch(p []byte) (*batchMsg, error) {
	r := &rbuf{b: p}
	m := &batchMsg{}
	var err error
	if m.Edge, err = r.u32(); err != nil {
		return nil, err
	}
	if m.Seq, err = r.u64(); err != nil {
		return nil, err
	}
	if m.Items, err = r.floats(); err != nil {
		return nil, err
	}
	return m, r.done()
}

// linkHelloMsg identifies a dialing shard on a fresh data connection.
type linkHelloMsg struct {
	From uint32
	Gen  uint32
}

func (m *linkHelloMsg) encode() []byte {
	var b wbuf
	b.u32(m.From)
	b.u32(m.Gen)
	return b
}

func decodeLinkHello(p []byte) (*linkHelloMsg, error) {
	r := &rbuf{b: p}
	m := &linkHelloMsg{}
	var err error
	if m.From, err = r.u32(); err != nil {
		return nil, err
	}
	if m.Gen, err = r.u32(); err != nil {
		return nil, err
	}
	return m, r.done()
}

// beatMsg is a shard heartbeat: WaitingOn lists the stable IDs of shards
// some local worker is currently blocked receiving from. At a barrier
// deadline the coordinator builds the wait-graph from these, so a wedged
// shard (waiting on nobody) is told apart from the downstream shards it
// starved — only the root cause is declared dead.
type beatMsg struct {
	WaitingOn []uint32
}

func (m *beatMsg) encode() []byte {
	var b wbuf
	b.u32(uint32(len(m.WaitingOn)))
	for _, s := range m.WaitingOn {
		b.u32(s)
	}
	return b
}

func decodeBeat(p []byte) (*beatMsg, error) {
	r := &rbuf{b: p}
	m := &beatMsg{}
	n, err := r.count(4, "waiting-on shards")
	if err != nil {
		return nil, err
	}
	if n > 0 {
		m.WaitingOn = make([]uint32, n)
		for i := range m.WaitingOn {
			if m.WaitingOn[i], err = r.u32(); err != nil {
				return nil, err
			}
		}
	}
	return m, r.done()
}

// genMsg is the shared shape of the small control acks that carry only a
// generation (ready, aborted) or a generation plus a count (run).
type genMsg struct {
	Gen   uint32
	Iters uint32
}

func (m *genMsg) encode() []byte {
	var b wbuf
	b.u32(m.Gen)
	b.u32(m.Iters)
	return b
}

func decodeGen(p []byte) (*genMsg, error) {
	r := &rbuf{b: p}
	m := &genMsg{}
	var err error
	if m.Gen, err = r.u32(); err != nil {
		return nil, err
	}
	if m.Iters, err = r.u32(); err != nil {
		return nil, err
	}
	return m, r.done()
}

// textMsg carries jobOK's fingerprint echo, abort reasons, and error
// reports.
type textMsg struct {
	Code uint64
	Text string
}

func (m *textMsg) encode() []byte {
	var b wbuf
	b.u64(m.Code)
	b.str(m.Text)
	return b
}

func decodeText(p []byte) (*textMsg, error) {
	r := &rbuf{b: p}
	m := &textMsg{}
	var err error
	if m.Code, err = r.u64(); err != nil {
		return nil, err
	}
	if m.Text, err = r.str(); err != nil {
		return nil, err
	}
	return m, r.done()
}

// decodeAny re-parses a frame's payload by type — the fuzz target's hook
// into every payload decoder. Returns an error for types whose payloads
// are free-form (heartbeat, bye) only when bytes are present.
func decodeAny(t msgType, p []byte) error {
	var err error
	switch t {
	case mtHello:
		_, err = decodeHello(p)
	case mtJob:
		_, err = decodeJob(p)
	case mtAssign:
		_, err = decodeAssign(p)
	case mtBarrier:
		_, err = decodeBarrier(p)
	case mtBatch:
		_, err = decodeBatch(p)
	case mtLinkHello:
		_, err = decodeLinkHello(p)
	case mtReady, mtRun, mtAborted, mtAbort:
		if t == mtAbort {
			_, err = decodeText(p)
		} else {
			_, err = decodeGen(p)
		}
	case mtJobOK, mtError:
		_, err = decodeText(p)
	case mtHeartbeat:
		_, err = decodeBeat(p)
	case mtBye:
		if len(p) != 0 {
			err = fmt.Errorf("dist: %s frames carry no payload", t)
		}
	default:
		err = fmt.Errorf("dist: unknown frame type %s", t)
	}
	return err
}
