package lang

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"streamit/internal/exec"
	"streamit/internal/ir"
	"streamit/internal/linear"
	"streamit/internal/sched"
)

func newDetRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func load(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`float->float filter F(int N) { work pop 1 { push(3.5e2); } } // c`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.Kind != TokEOF {
			texts = append(texts, tk.Text)
		}
	}
	joined := strings.Join(texts, " ")
	for _, want := range []string{"float -> float filter F", "3.5e2", "work pop 1"} {
		if !strings.Contains(joined, want) {
			t.Errorf("token stream missing %q:\n%s", want, joined)
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("filter @"); err == nil {
		t.Error("expected error for @")
	}
	if _, err := Lex("/* unterminated"); err == nil {
		t.Error("expected error for unterminated comment")
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	_, err := Parse("float->float banana F() {}")
	if err == nil || !strings.Contains(err.Error(), "1:") {
		t.Errorf("expected positioned parse error, got %v", err)
	}
	_, err = Parse("float->float filter F() { work pop 1 { push( } }")
	if err == nil {
		t.Error("expected parse error for bad expression")
	}
}

// elaborateAndRun compiles a testdata program and runs it, returning the
// engine for inspection.
func elaborateAndRun(t *testing.T, file string, iters int) *exec.Engine {
	t.Helper()
	prog, err := ParseAndElaborate(load(t, file), "Main")
	if err != nil {
		t.Fatal(err)
	}
	e, err := exec.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(iters); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFIRProgramRuns(t *testing.T) {
	e := elaborateAndRun(t, "fir.str", 16)
	if e.Firings == 0 {
		t.Fatal("no firings")
	}
}

func TestFIRProgramValues(t *testing.T) {
	// Replace the sink with a collector by rebuilding the pipeline by hand
	// around the parsed MovingAvg filter.
	prog, err := ParseAndElaborate(load(t, "fir.str"), "Main")
	if err != nil {
		t.Fatal(err)
	}
	// Find MovingAvg's kernel via the flattened graph and check linearity.
	g, err := ir.Flatten(prog)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range g.Nodes {
		if n.Kind == ir.NodeFilter && strings.HasPrefix(n.Filter.Kernel.Name, "MovingAvg") {
			found = true
			rep, err := linear.Extract(n.Filter.Kernel)
			if err != nil {
				t.Fatalf("MovingAvg should be linear: %v", err)
			}
			for i := 0; i < 4; i++ {
				if math.Abs(rep.A[0][i]-0.25) > 1e-12 {
					t.Errorf("coeff %d = %v, want 0.25", i, rep.A[0][i])
				}
			}
		}
	}
	if !found {
		t.Fatal("MovingAvg filter not found in graph")
	}
}

func TestCompileTimeLoopBuildsSplitJoin(t *testing.T) {
	prog, err := ParseAndElaborate(load(t, "eq.str"), "Main")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ir.Flatten(prog)
	if err != nil {
		t.Fatal(err)
	}
	gains := 0
	for _, n := range g.Nodes {
		if n.Kind == ir.NodeFilter && strings.HasPrefix(n.Filter.Kernel.Name, "Gain") {
			gains++
		}
	}
	if gains != 3 {
		t.Errorf("expected 3 Gain instances from the compile-time loop, got %d", gains)
	}
	// And the program runs.
	e, err := exec.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(4); err != nil {
		t.Fatal(err)
	}
}

func TestFeedbackEcho(t *testing.T) {
	prog, err := ParseAndElaborate(load(t, "echo.str"), "Main")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ir.Flatten(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Compute(g); err != nil {
		t.Fatal(err)
	}
	e, err := exec.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(8); err != nil {
		t.Fatal(err)
	}
}

func TestTeleportProgram(t *testing.T) {
	prog, err := ParseAndElaborate(load(t, "freqhop.str"), "Main")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Portals) != 1 || len(prog.Portals[0].Receivers) != 1 {
		t.Fatalf("portal registration failed: %+v", prog.Portals)
	}
	e, err := exec.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(200); err != nil {
		t.Fatal(err)
	}
	// The handler must have fired: the mixer's freq field should be 2.
	mixer := prog.Portals[0].Receivers[0]
	st := e.State(mixer)
	// freq is the second scalar field (count, freq).
	if st.Scalars[1] != 2 {
		t.Errorf("mixer freq = %v, want 2 (handler never delivered?)", st.Scalars[1])
	}
}

func TestElaborationErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown stream", `void->void pipeline Main() { add Nope(); }`, "unknown stream"},
		{"bad arity", `
			float->float filter F(int N) { work pop 1 push 1 { push(pop()); } }
			void->void pipeline Main() { add F(); }`, "parameters"},
		{"missing work", `float->float filter F() { }`, "no work function"},
		{"undefined var", `
			float->float filter F() { work pop 1 push 1 { push(zzz); } }
			void->void pipeline Main() { add F(); }`, "undefined"},
		{"missing split", `
			float->float splitjoin SJ() { add Identity(); join roundrobin; }
			void->void pipeline Main() { add SJ(); }`, "split"},
		{"rate mismatch", `
			void->float filter Src() { work push 2 { push(1.0); } }
			void->void pipeline Main() { add Src(); }`, "push"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseAndElaborate(c.src, "Main")
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestOpAssignAndIncrement(t *testing.T) {
	src := `
		void->float filter Counter() {
			float n;
			work push 1 {
				n += 2;
				n--;
				push(n);
			}
		}
		float->void filter Out() { work pop 1 { pop(); } }
		void->void pipeline Main() { add Counter(); add Out(); }
	`
	prog, err := ParseAndElaborate(src, "Main")
	if err != nil {
		t.Fatal(err)
	}
	e, err := exec.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(3); err != nil {
		t.Fatal(err)
	}
	// n goes 1, 2, 3, ...
	var counter *ir.Filter
	for f := range e.G.FilterNode {
		if strings.HasPrefix(f.Kernel.Name, "Counter") {
			counter = f
		}
	}
	if counter == nil {
		t.Fatal("counter not found")
	}
	if got := e.State(counter).Scalars[0]; got != 3 {
		t.Errorf("counter state = %v, want 3", got)
	}
}

func TestWhileLoopInFilter(t *testing.T) {
	src := `
		void->float filter Src() {
			float n;
			work push 1 {
				float x = n;
				float steps = 0;
				while (x > 1) { x = x / 2; steps += 1; }
				push(steps);
				n = n + 1;
			}
		}
		float->void filter Out() { work pop 1 { pop(); } }
		void->void pipeline Main() { add Src(); add Out(); }
	`
	prog, err := ParseAndElaborate(src, "Main")
	if err != nil {
		t.Fatal(err)
	}
	e, err := exec.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
}

func TestTernaryAndBitOps(t *testing.T) {
	src := `
		void->int filter Bits() {
			int n;
			work push 1 {
				push((n & 3) == 3 ? 1 : 0);
				n = n + 1;
			}
		}
		int->void filter Out() { work pop 1 { pop(); } }
		void->void pipeline Main() { add Bits(); add Out(); }
	`
	if _, err := ParseAndElaborate(src, "Main"); err != nil {
		t.Fatal(err)
	}
}

// TestMaxLatencyDirective parses and enforces the paper's MAX_LATENCY:
// the upstream filter may not run ahead of the sink by more than n of the
// sink's executions.
func TestMaxLatencyDirective(t *testing.T) {
	src := `
void->float filter Src() { float n; work push 1 { push(n); n = n + 1; } }
float->float filter Mid() { work pop 1 push 1 { push(pop()); } }
float->void filter Out() { work pop 1 { pop(); } }
void->void pipeline Main() {
    add Src();
    add Mid() as mid;
    add Out() as out;
    maxlatency(mid, out, 5);
}
`
	prog, err := ParseAndElaborate(src, "Main")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Constraints) != 1 || prog.Constraints[0].Latency != 5 {
		t.Fatalf("constraints = %+v", prog.Constraints)
	}
	e, err := exec.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(50); err != nil {
		t.Fatal(err)
	}
	mid := prog.Constraints[0].Upstream
	node := e.G.FilterNode[mid]
	if buffered := e.ChannelLen(node.OutEdge()); buffered > 5 {
		t.Errorf("mid ran %d items ahead; MAX_LATENCY allows 5", buffered)
	}
}

// TestMaxLatencyUnknownName is an elaboration error.
func TestMaxLatencyUnknownName(t *testing.T) {
	src := `
void->float filter Src() { work push 1 { push(1.0); } }
float->void filter Out() { work pop 1 { pop(); } }
void->void pipeline Main() {
    add Src();
    add Out();
    maxlatency(a, b, 3);
}
`
	if _, err := ParseAndElaborate(src, "Main"); err == nil {
		t.Fatal("expected error for unknown instance names")
	}
}

// TestPrintln wires the language's println through the engine's printer.
func TestPrintln(t *testing.T) {
	src := `
void->float filter Src() {
    float n;
    work push 1 {
        println(n * 10);
        push(n);
        n = n + 1;
    }
}
float->void filter Out() { work pop 1 { pop(); } }
void->void pipeline Main() { add Src(); add Out(); }
`
	prog, err := ParseAndElaborate(src, "Main")
	if err != nil {
		t.Fatal(err)
	}
	e, err := exec.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	var printed []float64
	e.Printer = func(node string, v float64) { printed = append(printed, v) }
	if err := e.Run(3); err != nil {
		t.Fatal(err)
	}
	if len(printed) < 3 || printed[0] != 0 || printed[1] != 10 || printed[2] != 20 {
		t.Errorf("printed = %v", printed)
	}
}

// TestParserGrammarErrors sweeps malformed programs; each must produce a
// positioned, comprehensible error rather than a panic or silence.
func TestParserGrammarErrors(t *testing.T) {
	cases := []string{
		`float->float filter F() { work pop 1 push 1 { push(pop() } }`,
		`float->float filter F() { work pop 1 push 1 { push(pop()); } `,
		`float->float pipeline P() { add ; }`,
		`float->float splitjoin S() { split banana; }`,
		`portal ;`,
		`float->float filter F(int) { work pop 1 push 1 { push(pop()); } }`,
		`float->float filter F() { float[, x; work pop 1 push 1 { push(pop()); } }`,
		`float->float filter F() { work pop 1 push 1 { for (;;) } }`,
		`float->float filter F() { work pop 1 push 1 { x += ; } }`,
		`float->float filter F() { work pop 1 push 1 { send p.h(1) latency; } }`,
		`void->void pipeline Main() { maxlatency(a); }`,
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: expected parse error for %q", i, src)
		}
	}
}

// TestParserAcceptsFullGrammar exercises remaining syntax corners in one
// program: ternary, bit ops, op-assign, while/break/continue, boolean
// params, block comments, scientific literals.
func TestParserAcceptsFullGrammar(t *testing.T) {
	src := `
/* block comment
   spanning lines */
portal ctl;

void->int filter Gen(boolean fancy) {
    int n;
    work push 2 {
        int v = fancy ? (n & 7) : (n | 1);
        push(v << 1);
        push(v >> 1);
        n += 1;
        while (v > 100) { v /= 2; if (v == 50) break; else continue; }
    }
}

int->void filter Eat() {
    work pop 2 { pop(); pop(); }
}

void->void pipeline Main() {
    add Gen(true);
    add Eat();
}
`
	prog, err := ParseAndElaborate(src, "Main")
	if err != nil {
		t.Fatal(err)
	}
	e, err := exec.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(4); err != nil {
		t.Fatal(err)
	}
}

// TestScientificLiterals parse as floats.
func TestScientificLiterals(t *testing.T) {
	toks, err := Lex("3.5e2 1e-3 2E+4 7")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokFloat, TokFloat, TokFloat, TokInt, TokEOF}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d (%q) kind = %v, want %v", i, toks[i].Text, toks[i].Kind, k)
		}
	}
}

// TestNestedCompositeElaboration: splitjoins of pipelines of splitjoins.
func TestNestedCompositeElaboration(t *testing.T) {
	src := `
void->float filter Src() { float n; work push 1 { push(n); n = n + 1; } }
float->float filter G(float g) { work pop 1 push 1 { push(pop() * g); } }
float->float splitjoin Inner(float base) {
    split roundrobin;
    add G(base);
    add G(base + 1);
    join roundrobin;
}
float->float pipeline Branch(float base) {
    add G(0.5);
    add Inner(base);
}
float->float splitjoin Outer() {
    split duplicate;
    add Branch(1.0);
    add Branch(3.0);
    join roundrobin(2, 2);
}
float->void filter Out() { work pop 4 { for (int i = 0; i < 4; i++) pop(); } }
void->void pipeline Main() { add Src(); add Outer(); add Out(); }
`
	prog, err := ParseAndElaborate(src, "Main")
	if err != nil {
		t.Fatal(err)
	}
	e, err := exec.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(6); err != nil {
		t.Fatal(err)
	}
	g := e.G
	gains := 0
	for _, n := range g.Nodes {
		if n.Kind == ir.NodeFilter && strings.HasPrefix(n.Filter.Kernel.Name, "G#") {
			gains++
		}
	}
	if gains != 6 {
		t.Errorf("expected 6 G instances, got %d", gains)
	}
}

// TestParserRobustness mutates a valid program by deleting random spans;
// every mutation must either parse or produce an error — never panic.
func TestParserRobustness(t *testing.T) {
	base := load(t, "fir.str")
	rng := newDetRand(17)
	for trial := 0; trial < 200; trial++ {
		src := base
		for cut := 0; cut < 1+trial%3; cut++ {
			if len(src) < 10 {
				break
			}
			start := rng.Intn(len(src) - 5)
			end := start + 1 + rng.Intn(5)
			if end > len(src) {
				end = len(src)
			}
			src = src[:start] + src[end:]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: parser panicked: %v\nsource:\n%s", trial, r, src)
				}
			}()
			_, _ = ParseAndElaborate(src, "Main")
		}()
	}
}
