package lang

import (
	"math"
	"testing"

	"streamit/internal/exec"
	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

// TestStrMatchesBuilderOutputs compiles the same program twice — once from
// .str source, once through the Go builder API — and compares the exact
// output streams. This pins the front end's semantics against the
// builder's.
func TestStrMatchesBuilderOutputs(t *testing.T) {
	src := `
void->float filter Ramp() {
    float n;
    work push 1 { push(n); n = n + 1; }
}
float->float filter Fir() {
    float[5] w;
    init { for (int i = 0; i < 5; i++) w[i] = sin(i + 1.0); }
    work peek 5 pop 1 push 1 {
        float s = 0;
        for (int i = 0; i < 5; i++) s += peek(i) * w[i];
        pop();
        push(s);
    }
}
float->float splitjoin Two() {
    split duplicate;
    add Scale(2.0);
    add Scale(-1.0);
    join roundrobin;
}
float->float filter Scale(float g) {
    work pop 1 push 1 { push(pop() * g); }
}
float->void filter Out() { work pop 2 { pop(); pop(); } }
void->void pipeline Main() {
    add Ramp();
    add Fir();
    add Two();
    add Out();
}
`
	prog, err := ParseAndElaborate(src, "Main")
	if err != nil {
		t.Fatal(err)
	}
	strOut := captureOutputs(t, prog, 32)

	// The same program via the builder API.
	ramp := func() *ir.Filter {
		b := wfunc.NewKernel("Ramp", 0, 0, 1)
		n := b.Field("n", 0)
		b.WorkBody(wfunc.Push1(n), wfunc.SetF(n, wfunc.AddX(n, wfunc.C(1))))
		return &ir.Filter{Kernel: b.Build(), In: ir.TypeVoid, Out: ir.TypeFloat}
	}()
	fir := func() *ir.Filter {
		b := wfunc.NewKernel("Fir", 5, 1, 1)
		w := b.FieldArray("w", 5)
		i := b.Local("i")
		s := b.Local("s")
		b.InitBody(wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(5),
			wfunc.SetFIdx(w, i, wfunc.Un(wfunc.Sin, wfunc.AddX(i, wfunc.C(1))))))
		b.WorkBody(
			wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(5),
				wfunc.Set(s, wfunc.AddX(s, wfunc.MulX(wfunc.PeekX(i), wfunc.FIdx(w, i))))),
			wfunc.Pop1(),
			wfunc.Push1(s),
		)
		return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
	}()
	scale := func(name string, g float64) *ir.Filter {
		b := wfunc.NewKernel(name, 1, 1, 1)
		b.WorkBody(wfunc.Push1(wfunc.MulX(wfunc.PopE(), wfunc.C(g))))
		return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
	}
	snk, got := exec.SliceSink("out")
	builderProg := &ir.Program{Name: "builder", Top: ir.Pipe("Main",
		ramp, fir,
		ir.SJ("Two", ir.Duplicate(), ir.RoundRobin(), scale("s2", 2), scale("sm1", -1)),
		snk,
	)}
	builderOut, err := exec.RunCollect(builderProg, 64, got)
	if err != nil {
		t.Fatal(err)
	}

	n := len(strOut)
	if len(builderOut) < n {
		n = len(builderOut)
	}
	if n < 32 {
		t.Fatalf("too few outputs to compare: %d", n)
	}
	for i := 0; i < n; i++ {
		if math.Abs(strOut[i]-builderOut[i]) > 1e-9 {
			t.Fatalf("output %d differs: .str %v vs builder %v", i, strOut[i], builderOut[i])
		}
	}
}

// captureOutputs replaces the final sink of an elaborated pipeline with a
// collecting sink and runs the program.
func captureOutputs(t *testing.T, prog *ir.Program, iters int) []float64 {
	t.Helper()
	pipe, ok := prog.Top.(*ir.Pipeline)
	if !ok || len(pipe.Children) == 0 {
		t.Fatal("top-level stream is not a pipeline")
	}
	last, ok := pipe.Children[len(pipe.Children)-1].(*ir.Filter)
	if !ok || last.Kernel.Push != 0 {
		t.Fatal("last child is not a sink filter")
	}
	snk, got := exec.SliceSink("capture")
	pipe.Children[len(pipe.Children)-1] = snk
	out, err := exec.RunCollect(prog, iters*last.Kernel.Pop, got)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStrTypeMismatchRejected: connecting a bit producer to a float
// consumer is a compile error, as in the appendix's restrictions.
func TestStrTypeMismatchRejected(t *testing.T) {
	src := `
void->bit filter Bits() { work push 1 { push(1); } }
float->void filter Out() { work pop 1 { pop(); } }
void->void pipeline Main() { add Bits(); add Out(); }
`
	prog, err := ParseAndElaborate(src, "Main")
	if err != nil {
		t.Fatal(err)
	}
	// Connection typing is checked at flatten time.
	if _, err := ir.Flatten(prog); err == nil {
		t.Fatal("expected type mismatch error")
	}
}

// TestStrDeadlockDetected: a zero-delay feedback loop is a compile error.
func TestStrDeadlockDetected(t *testing.T) {
	src := `
void->float filter Src() { float n; work push 1 { push(n); n = n + 1; } }
float->float filter Body() { work pop 2 push 1 { push(pop() + pop()); } }
float->void filter Out() { work pop 1 { pop(); } }
float->float feedbackloop Loop() {
    join roundrobin(1, 1);
    body Body();
    split duplicate;
}
void->void pipeline Main() { add Src(); add Loop(); add Out(); }
`
	prog, err := ParseAndElaborate(src, "Main")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.New(prog); err == nil {
		t.Fatal("expected deadlock error for zero-delay loop")
	}
}
