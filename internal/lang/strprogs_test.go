package lang

import (
	"os"
	"path/filepath"
	"testing"

	"streamit/internal/exec"
	"streamit/internal/ir"
	"streamit/internal/linear"
)

// hasDynamic reports whether any filter in the program has dynamic rates.
func hasDynamic(prog *ir.Program) bool {
	found := false
	var walk func(ir.Stream)
	walk = func(s ir.Stream) {
		switch s := s.(type) {
		case *ir.Filter:
			if s.Kernel.Dynamic {
				found = true
			}
		case *ir.Pipeline:
			for _, c := range s.Children {
				walk(c)
			}
		case *ir.SplitJoin:
			for _, c := range s.Children {
				walk(c)
			}
		case *ir.FeedbackLoop:
			walk(s.Body)
			if s.Loop != nil {
				walk(s.Loop)
			}
		}
	}
	walk(prog.Top)
	return found
}

// TestExampleProgramsCompileAndRun is the front-end integration test: every
// shipped .str program parses, elaborates, schedules, and executes.
func TestExampleProgramsCompileAndRun(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "strprogs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected at least 3 example programs, found %d", len(entries))
	}
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) != ".str" {
			continue
		}
		ent := ent
		t.Run(ent.Name(), func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(dir, ent.Name()))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := ParseAndElaborate(string(src), "Main")
			if err != nil {
				t.Fatal(err)
			}
			if hasDynamic(prog) {
				g, err := ir.Flatten(prog)
				if err != nil {
					t.Fatal(err)
				}
				d, err := exec.NewDynamic(g)
				if err != nil {
					t.Fatal(err)
				}
				if err := d.Run(50); err != nil {
					t.Fatal(err)
				}
				return
			}
			e, err := exec.New(prog)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Run(10); err != nil {
				t.Fatal(err)
			}
			if e.Firings == 0 {
				t.Error("no firings")
			}
		})
	}
}

// TestExamplesAreOptimizable: the filter-bank .str program exposes linear
// filters to the optimizer and still runs correctly after optimization.
func TestExamplesAreOptimizable(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "strprogs", "filterbank.str"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ParseAndElaborate(string(src), "Main")
	if err != nil {
		t.Fatal(err)
	}
	lin := linear.Analyze(prog.Top)
	if len(lin) < 4 {
		t.Fatalf("expected several linear filters, found %d", len(lin))
	}
	rep := &linear.Report{}
	top, err := linear.Optimize(prog.Top, linear.Options{Combine: true}, rep)
	if err != nil {
		t.Fatal(err)
	}
	prog.Top = top
	e, err := exec.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(4); err != nil {
		t.Fatal(err)
	}
}
