package lang

import (
	"os"
	"path/filepath"
	"testing"
)

// BenchmarkParseAndElaborate measures the front end end to end.
func BenchmarkParseAndElaborate(b *testing.B) {
	src, err := os.ReadFile(filepath.Join("testdata", "fir.str"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseAndElaborate(string(src), "Main"); err != nil {
			b.Fatal(err)
		}
	}
}
