package lang

// File is a parsed source file: portal declarations plus stream
// declarations.
type File struct {
	Portals []string
	Streams []*StreamDecl
}

// Param is a parameter of a stream or handler declaration.
type Param struct {
	Type string
	Name string
}

// StreamDecl declares a parameterized stream: a filter or a composite
// (pipeline, splitjoin, feedbackloop).
type StreamDecl struct {
	Kind    string // "filter", "pipeline", "splitjoin", "feedbackloop"
	InType  string
	OutType string
	Name    string
	Params  []Param
	Line    int

	// Filter members.
	Fields   []*FieldDecl
	Init     []Stmt
	Work     *WorkDecl
	Handlers []*HandlerDecl

	// Composite body (elaborated at compile time).
	Body []Stmt
}

// FieldDecl declares filter state: a scalar or array field.
type FieldDecl struct {
	Type string
	Name string
	Size Expr // nil for scalar
	Init Expr // nil for zero
}

// WorkDecl is a filter's work function with declared rates. Dynamic is set
// when any rate is declared as * (data-dependent).
type WorkDecl struct {
	Peek, Pop, Push Expr // nil when unspecified
	Dynamic         bool
	Body            []Stmt
}

// HandlerDecl is a teleport message handler.
type HandlerDecl struct {
	Name   string
	Params []Param
	Body   []Stmt
}

// Stmt is a statement node. Work-function statements compile to wfunc IL;
// composite-body statements are interpreted during elaboration.
type Stmt interface{ stmtNode() }

// DeclStmt declares a local variable (or compile-time variable in a
// composite body).
type DeclStmt struct {
	Type string
	Name string
	Size Expr // array when non-nil
	Init Expr
}

// AssignStmt assigns to a scalar or array element with = or an op-assign.
type AssignStmt struct {
	Name  string
	Index Expr   // nil for scalar
	Op    string // "=", "+=", "-=", "*=", "/=", "%="
	Value Expr
}

// IfStmt is a conditional.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// ForStmt is a C-style loop.
type ForStmt struct {
	Init Stmt // DeclStmt or AssignStmt, may be nil
	Cond Expr
	Post Stmt // AssignStmt, may be nil
	Body []Stmt
}

// WhileStmt loops while the condition holds.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{}

// ContinueStmt advances the innermost loop.
type ContinueStmt struct{}

// ExprStmt evaluates an expression for effect (push(x); pop();).
type ExprStmt struct{ X Expr }

// AddStmt adds a child stream in a composite body, optionally naming the
// instance (for MAX_LATENCY references) and registering it with a portal.
type AddStmt struct {
	Call     *CallExpr
	As       string
	Register string
}

// SplitStmt / JoinStmt configure a splitjoin or feedbackloop.
type SplitStmt struct {
	Kind    string // "duplicate" or "roundrobin"
	Weights []Expr
}

// JoinStmt configures the joiner.
type JoinStmt struct {
	Kind    string
	Weights []Expr
}

// BodyStmt sets a feedbackloop's body stream.
type BodyStmt struct{ Call *CallExpr }

// LoopStmt sets a feedbackloop's loop stream.
type LoopStmt struct{ Call *CallExpr }

// EnqueueStmt appends one initial item on a feedbackloop's loop channel.
type EnqueueStmt struct{ X Expr }

// MaxLatencyStmt is the paper's MAX_LATENCY(A, B, n) directive over named
// instances: A may run at most n of B's work executions ahead.
type MaxLatencyStmt struct {
	A, B string
	N    Expr
}

// SendStmt sends a teleport message: send portal.handler(args) latency n;
type SendStmt struct {
	Portal     string
	Handler    string
	Args       []Expr
	Latency    Expr // nil with BestEffort
	BestEffort bool
}

func (*DeclStmt) stmtNode()       {}
func (*AssignStmt) stmtNode()     {}
func (*IfStmt) stmtNode()         {}
func (*ForStmt) stmtNode()        {}
func (*WhileStmt) stmtNode()      {}
func (*BreakStmt) stmtNode()      {}
func (*ContinueStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()       {}
func (*AddStmt) stmtNode()        {}
func (*SplitStmt) stmtNode()      {}
func (*JoinStmt) stmtNode()       {}
func (*BodyStmt) stmtNode()       {}
func (*LoopStmt) stmtNode()       {}
func (*EnqueueStmt) stmtNode()    {}
func (*MaxLatencyStmt) stmtNode() {}
func (*SendStmt) stmtNode()       {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// NumLit is a numeric literal.
type NumLit struct {
	Val   float64
	IsInt bool
}

// Ident references a variable, parameter, or field.
type Ident struct{ Name string }

// IndexExpr references an array element.
type IndexExpr struct {
	Name  string
	Index Expr
}

// CallExpr invokes a builtin (sin, peek, ...) or names a stream with
// arguments (in add statements).
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

// UnaryExpr applies -, !, or ~.
type UnaryExpr struct {
	Op string
	X  Expr
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// CondExpr is the ternary operator.
type CondExpr struct{ C, A, B Expr }

func (*NumLit) exprNode()     {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CondExpr) exprNode()   {}
