// Package lang implements the textual StreamIt front end: a lexer, a
// recursive-descent parser, and an elaborator that instantiates the
// hierarchical stream graph (ir.Program) from parameterized stream
// declarations. The syntax follows the StreamIt 2.x style:
//
//	float->float filter Gain(float g) {
//	    work pop 1 push 1 { push(pop() * g); }
//	}
//
//	void->void pipeline Main() {
//	    add Source();
//	    add Gain(2.0);
//	    add Sink();
//	}
//
// Composite bodies (pipeline/splitjoin/feedbackloop) execute at compile
// time, so loops and conditionals can build parameterized graphs; filter
// work/init/handler bodies compile to the wfunc IL.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokString
	TokPunct // operators and punctuation
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.Text)
}

// Keywords of the language. Identifiers matching these parse as keywords
// contextually; the parser checks Text directly.
var keywords = map[string]bool{
	"filter": true, "pipeline": true, "splitjoin": true, "feedbackloop": true,
	"portal": true, "work": true, "init": true, "handler": true,
	"peek": true, "pop": true, "push": true,
	"split": true, "join": true, "body": true, "loop": true, "delay": true,
	"enqueue": true, "duplicate": true, "roundrobin": true,
	"add": true, "register": true, "send": true, "latency": true,
	"as": true, "maxlatency": true,
	"besteffort": true, "if": true, "else": true, "for": true, "while": true,
	"break": true, "continue": true,
	"int": true, "float": true, "bit": true, "void": true, "boolean": true,
	"true": true, "false": true, "pi": true,
}

// multi-character operators, longest first.
var operators = []string{
	"->", "<=", ">=", "==", "!=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "++", "--",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
	"(", ")", "{", "}", "[", "]", ",", ";", ".", "?", ":",
}

// Lex tokenizes src, reporting the first lexical error with its position.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if i+k < len(src) && src[i+k] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			start := Token{Line: line, Col: col}
			advance(2)
			for {
				if i+1 >= len(src) {
					return nil, fmt.Errorf("%d:%d: unterminated block comment", start.Line, start.Col)
				}
				if src[i] == '*' && src[i+1] == '/' {
					advance(2)
					break
				}
				advance(1)
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			tok := Token{Kind: TokIdent, Line: line, Col: col}
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				advance(1)
			}
			tok.Text = src[start:i]
			toks = append(toks, tok)
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < len(src) && unicode.IsDigit(rune(src[i+1]))):
			start := i
			tok := Token{Kind: TokInt, Line: line, Col: col}
			seenDot, seenExp := false, false
			for i < len(src) {
				d := src[i]
				if unicode.IsDigit(rune(d)) {
					advance(1)
				} else if d == '.' && !seenDot && !seenExp {
					seenDot = true
					tok.Kind = TokFloat
					advance(1)
				} else if (d == 'e' || d == 'E') && !seenExp && i+1 < len(src) &&
					(unicode.IsDigit(rune(src[i+1])) || src[i+1] == '-' || src[i+1] == '+') {
					seenExp = true
					tok.Kind = TokFloat
					advance(1)
					if src[i] == '-' || src[i] == '+' {
						advance(1)
					}
				} else {
					break
				}
			}
			tok.Text = src[start:i]
			toks = append(toks, tok)
		case c == '"':
			tok := Token{Kind: TokString, Line: line, Col: col}
			advance(1)
			start := i
			for i < len(src) && src[i] != '"' {
				advance(1)
			}
			if i >= len(src) {
				return nil, fmt.Errorf("%d:%d: unterminated string", tok.Line, tok.Col)
			}
			tok.Text = src[start:i]
			advance(1)
			toks = append(toks, tok)
		default:
			matched := false
			for _, op := range operators {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, Token{Kind: TokPunct, Text: op, Line: line, Col: col})
					advance(len(op))
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("%d:%d: unexpected character %q", line, col, c)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}
