package lang

import (
	"fmt"

	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

// buildFilter compiles a filter declaration with bound parameters into an
// ir.Filter whose behaviour is wfunc IL.
func (e *elab) buildFilter(d *StreamDecl, env *cenv) (ir.Stream, error) {
	kb := wfuncBuilderFor(d, e.inst)
	fc := &filterComp{
		e:      e,
		d:      d,
		env:    env,
		kb:     kb,
		fields: map[string]*wfunc.FieldRef{},
		farr:   map[string]int{},
		locals: map[string]*wfunc.LocalRef{},
		larr:   map[string]int{},
	}

	// Rates.
	pop, err := fc.rate(d.Work.Pop, 0)
	if err != nil {
		return nil, err
	}
	push, err := fc.rate(d.Work.Push, 0)
	if err != nil {
		return nil, err
	}
	peek, err := fc.rate(d.Work.Peek, pop)
	if err != nil {
		return nil, err
	}
	b := wfunc.NewKernel(kb, peek, pop, push)
	if d.Work.Dynamic {
		b.Dynamic()
	}
	fc.b = b

	// Handler parameters must occupy the leading local slots (SetArgs
	// fills locals 0..n), so allocate them before anything else. Handlers
	// may reuse the same slots.
	maxParams := 0
	for _, h := range d.Handlers {
		if len(h.Params) > maxParams {
			maxParams = len(h.Params)
		}
	}
	argRefs := make([]*wfunc.LocalRef, maxParams)
	for i := range argRefs {
		argRefs[i] = b.Local(fmt.Sprintf("__arg%d", i))
	}

	// Fields.
	for _, fd := range d.Fields {
		if fd.Size != nil {
			n, err := e.constExpr(fd.Size, env)
			if err != nil {
				return nil, fmt.Errorf("filter %s, field %s: %w", d.Name, fd.Name, err)
			}
			if err := checkArraySize(fd.Name, n); err != nil {
				return nil, fmt.Errorf("filter %s: %w", d.Name, err)
			}
			fc.farr[fd.Name] = b.FieldArray(fd.Name, int(n))
		} else {
			init := 0.0
			if fd.Init != nil {
				if init, err = e.constExpr(fd.Init, env); err != nil {
					return nil, fmt.Errorf("filter %s, field %s: %w", d.Name, fd.Name, err)
				}
			}
			fc.fields[fd.Name] = b.Field(fd.Name, init)
		}
	}

	// Bodies.
	if d.Init != nil {
		body, err := fc.stmts(d.Init, false)
		if err != nil {
			return nil, fmt.Errorf("filter %s init: %w", d.Name, err)
		}
		b.InitBody(body...)
	}
	work, err := fc.stmts(d.Work.Body, true)
	if err != nil {
		return nil, fmt.Errorf("filter %s work: %w", d.Name, err)
	}
	b.WorkBody(work...)
	for _, h := range d.Handlers {
		// Map handler params onto the leading arg slots.
		saved := fc.locals
		fc.locals = map[string]*wfunc.LocalRef{}
		for k, v := range saved {
			fc.locals[k] = v
		}
		for i, p := range h.Params {
			fc.locals[p.Name] = argRefs[i]
		}
		body, err := fc.stmts(h.Body, false)
		if err != nil {
			return nil, fmt.Errorf("filter %s handler %s: %w", d.Name, h.Name, err)
		}
		b.Handler(h.Name, len(h.Params), body...)
		fc.locals = saved
	}

	var kern *wfunc.Kernel
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("filter %s: %v", d.Name, r)
			}
		}()
		kern = b.Build()
	}()
	if err != nil {
		return nil, err
	}
	// Stream parameters were baked in as constants; fold them through.
	wfunc.FoldKernel(kern)
	return &ir.Filter{Kernel: kern, In: d.InType, Out: d.OutType}, nil
}

func wfuncBuilderFor(d *StreamDecl, inst int) string {
	return fmt.Sprintf("%s#%d", d.Name, inst)
}

// filterComp compiles filter statements/expressions to IL.
type filterComp struct {
	e      *elab
	d      *StreamDecl
	env    *cenv // parameters (compile-time constants)
	kb     string
	b      *wfunc.KernelBuilder
	fields map[string]*wfunc.FieldRef
	farr   map[string]int
	locals map[string]*wfunc.LocalRef
	larr   map[string]int
}

func (fc *filterComp) rate(x Expr, dflt int) (int, error) {
	if x == nil {
		return dflt, nil
	}
	v, err := fc.e.constExpr(x, fc.env)
	if err != nil {
		return 0, fmt.Errorf("filter %s: rate must be a compile-time constant: %w", fc.d.Name, err)
	}
	return int(v), nil
}

func (fc *filterComp) stmts(in []Stmt, inWork bool) ([]wfunc.Stmt, error) {
	var out []wfunc.Stmt
	for _, s := range in {
		c, err := fc.stmt(s, inWork)
		if err != nil {
			return nil, err
		}
		if c != nil {
			out = append(out, c...)
		}
	}
	return out, nil
}

func (fc *filterComp) stmt(s Stmt, inWork bool) ([]wfunc.Stmt, error) {
	switch s := s.(type) {
	case *DeclStmt:
		if s.Size != nil {
			n, err := fc.e.constExpr(s.Size, fc.env)
			if err != nil {
				return nil, fmt.Errorf("array %s size: %w", s.Name, err)
			}
			if err := checkArraySize(s.Name, n); err != nil {
				return nil, err
			}
			fc.larr[s.Name] = fc.b.LocalArray(s.Name, int(n))
			return nil, nil
		}
		ref := fc.b.Local(s.Name)
		fc.locals[s.Name] = ref
		if s.Init != nil {
			x, err := fc.expr(s.Init)
			if err != nil {
				return nil, err
			}
			return []wfunc.Stmt{wfunc.Set(ref, x)}, nil
		}
		// IL locals are zeroed per firing, matching a zero initializer.
		return nil, nil

	case *AssignStmt:
		return fc.assign(s)

	case *IfStmt:
		c, err := fc.expr(s.Cond)
		if err != nil {
			return nil, err
		}
		then, err := fc.stmts(s.Then, inWork)
		if err != nil {
			return nil, err
		}
		els, err := fc.stmts(s.Else, inWork)
		if err != nil {
			return nil, err
		}
		return []wfunc.Stmt{wfunc.IfElse(c, then, els)}, nil

	case *ForStmt:
		return fc.forStmt(s, inWork)

	case *WhileStmt:
		c, err := fc.expr(s.Cond)
		if err != nil {
			return nil, err
		}
		body, err := fc.stmts(s.Body, inWork)
		if err != nil {
			return nil, err
		}
		return []wfunc.Stmt{&wfunc.While{C: c, Body: body}}, nil

	case *BreakStmt:
		return []wfunc.Stmt{&wfunc.Break{}}, nil
	case *ContinueStmt:
		return []wfunc.Stmt{&wfunc.Continue{}}, nil

	case *SendStmt:
		p := fc.e.portals[s.Portal]
		if p == nil {
			return nil, fmt.Errorf("unknown portal %q", s.Portal)
		}
		var args []wfunc.Expr
		for _, a := range s.Args {
			x, err := fc.expr(a)
			if err != nil {
				return nil, err
			}
			args = append(args, x)
		}
		snd := &wfunc.Send{Portal: p.ID, Handler: s.Handler, Args: args, BestEffort: s.BestEffort}
		if s.Latency != nil {
			lat, err := fc.e.constExpr(s.Latency, fc.env)
			if err != nil {
				return nil, fmt.Errorf("send latency must be a compile-time constant: %w", err)
			}
			snd.MinLatency, snd.MaxLatency = int(lat), int(lat)
			snd.BestEffort = false
		}
		return []wfunc.Stmt{snd}, nil

	case *ExprStmt:
		// push(x); pop(); println(x); or a bare call with side effects.
		if call, ok := s.X.(*CallExpr); ok {
			switch call.Name {
			case "println", "print":
				if len(call.Args) != 1 {
					return nil, fmt.Errorf("println takes one argument")
				}
				x, err := fc.expr(call.Args[0])
				if err != nil {
					return nil, err
				}
				return []wfunc.Stmt{&wfunc.Print{X: x}}, nil
			case "push":
				if len(call.Args) != 1 {
					return nil, fmt.Errorf("push takes one argument")
				}
				x, err := fc.expr(call.Args[0])
				if err != nil {
					return nil, err
				}
				return []wfunc.Stmt{wfunc.Push1(x)}, nil
			case "pop":
				return []wfunc.Stmt{wfunc.Pop1()}, nil
			}
		}
		return nil, fmt.Errorf("expression statement has no effect")

	default:
		return nil, fmt.Errorf("statement %T is not allowed inside a filter", s)
	}
}

func (fc *filterComp) assign(s *AssignStmt) ([]wfunc.Stmt, error) {
	rhs, err := fc.expr(s.Value)
	if err != nil {
		return nil, err
	}
	// Resolve the target.
	var lv wfunc.LValue
	var read wfunc.Expr
	switch {
	case s.Index != nil:
		ix, err := fc.expr(s.Index)
		if err != nil {
			return nil, err
		}
		if arr, ok := fc.larr[s.Name]; ok {
			lv = wfunc.LValue{Kind: wfunc.LVLocalArr, Idx: arr, Index: ix}
			read = wfunc.LIdx(arr, ix)
		} else if arr, ok := fc.farr[s.Name]; ok {
			lv = wfunc.LValue{Kind: wfunc.LVFieldArr, Idx: arr, Index: ix}
			read = wfunc.FIdx(arr, ix)
		} else {
			return nil, fmt.Errorf("unknown array %q", s.Name)
		}
	case fc.locals[s.Name] != nil:
		ref := fc.locals[s.Name]
		lv = wfunc.LValue{Kind: wfunc.LVLocal, Idx: ref.Idx}
		read = ref
	case fc.fields[s.Name] != nil:
		ref := fc.fields[s.Name]
		lv = wfunc.LValue{Kind: wfunc.LVField, Idx: ref.Idx}
		read = ref
	default:
		return nil, fmt.Errorf("undefined variable %q", s.Name)
	}
	if s.Op != "=" {
		var op wfunc.BinOp
		switch s.Op {
		case "+=":
			op = wfunc.Add
		case "-=":
			op = wfunc.Sub
		case "*=":
			op = wfunc.Mul
		case "/=":
			op = wfunc.Div
		case "%=":
			op = wfunc.Mod
		}
		rhs = wfunc.Bin(op, read, rhs)
	}
	return []wfunc.Stmt{&wfunc.Assign{LHS: lv, X: rhs}}, nil
}

// forStmt recognizes counted loops (for (int i = a; i < b; i++)) and emits
// the analyzable IL For; everything else lowers to init+While.
func (fc *filterComp) forStmt(s *ForStmt, inWork bool) ([]wfunc.Stmt, error) {
	var pre []wfunc.Stmt
	var loopVar *wfunc.LocalRef
	var from wfunc.Expr

	if d, ok := s.Init.(*DeclStmt); ok && d.Size == nil {
		ref := fc.b.Local(d.Name)
		fc.locals[d.Name] = ref
		loopVar = ref
		if d.Init != nil {
			x, err := fc.expr(d.Init)
			if err != nil {
				return nil, err
			}
			from = x
		} else {
			from = wfunc.C(0)
		}
	} else if a, ok := s.Init.(*AssignStmt); ok && a.Index == nil && a.Op == "=" {
		if ref := fc.locals[a.Name]; ref != nil {
			loopVar = ref
			x, err := fc.expr(a.Value)
			if err != nil {
				return nil, err
			}
			from = x
		}
	}

	// Pattern: cond is "i < bound" (or <=) and post is i++/i += step.
	if loopVar != nil {
		if cond, ok := s.Cond.(*BinaryExpr); ok && (cond.Op == "<" || cond.Op == "<=") {
			if id, ok := cond.L.(*Ident); ok && fc.locals[id.Name] == loopVar {
				if post, ok := s.Post.(*AssignStmt); ok && post.Index == nil && post.Op == "+=" &&
					fc.locals[post.Name] == loopVar {
					to, err := fc.expr(cond.R)
					if err != nil {
						return nil, err
					}
					if cond.Op == "<=" {
						to = wfunc.AddX(to, wfunc.C(1))
					}
					step, err := fc.expr(post.Value)
					if err != nil {
						return nil, err
					}
					body, err := fc.stmts(s.Body, inWork)
					if err != nil {
						return nil, err
					}
					f := &wfunc.For{Var: loopVar.Idx, From: from, To: to, Step: step, Body: body}
					return append(pre, f), nil
				}
			}
		}
	}

	// General lowering: { init; while (cond) { body; post } }.
	if s.Init != nil {
		st, err := fc.stmt(s.Init, inWork)
		if err != nil {
			return nil, err
		}
		pre = append(pre, st...)
	}
	cond := wfunc.Expr(wfunc.C(1))
	if s.Cond != nil {
		c, err := fc.expr(s.Cond)
		if err != nil {
			return nil, err
		}
		cond = c
	}
	body, err := fc.stmts(s.Body, inWork)
	if err != nil {
		return nil, err
	}
	if s.Post != nil {
		st, err := fc.stmt(s.Post, inWork)
		if err != nil {
			return nil, err
		}
		body = append(body, st...)
	}
	return append(pre, &wfunc.While{C: cond, Body: body}), nil
}

func (fc *filterComp) expr(x Expr) (wfunc.Expr, error) {
	switch x := x.(type) {
	case *NumLit:
		return wfunc.C(x.Val), nil
	case *Ident:
		if ref, ok := fc.locals[x.Name]; ok {
			return ref, nil
		}
		if ref, ok := fc.fields[x.Name]; ok {
			return ref, nil
		}
		if v := fc.env.lookup(x.Name); v != nil && !v.isArr {
			return wfunc.C(v.scalar), nil // parameter: baked constant
		}
		return nil, fmt.Errorf("undefined variable %q", x.Name)
	case *IndexExpr:
		ix, err := fc.expr(x.Index)
		if err != nil {
			return nil, err
		}
		if arr, ok := fc.larr[x.Name]; ok {
			return wfunc.LIdx(arr, ix), nil
		}
		if arr, ok := fc.farr[x.Name]; ok {
			return wfunc.FIdx(arr, ix), nil
		}
		return nil, fmt.Errorf("unknown array %q", x.Name)
	case *UnaryExpr:
		v, err := fc.expr(x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			return wfunc.Un(wfunc.Neg, v), nil
		case "!":
			return wfunc.Un(wfunc.Not, v), nil
		case "~":
			return wfunc.Un(wfunc.BitNot, v), nil
		}
		return nil, fmt.Errorf("unknown unary operator %q", x.Op)
	case *BinaryExpr:
		l, err := fc.expr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := fc.expr(x.R)
		if err != nil {
			return nil, err
		}
		op, ok := ilBinOps[x.Op]
		if !ok {
			return nil, fmt.Errorf("unknown operator %q", x.Op)
		}
		return wfunc.Bin(op, l, r), nil
	case *CondExpr:
		c, err := fc.expr(x.C)
		if err != nil {
			return nil, err
		}
		a, err := fc.expr(x.A)
		if err != nil {
			return nil, err
		}
		b, err := fc.expr(x.B)
		if err != nil {
			return nil, err
		}
		return &wfunc.Cond{C: c, A: a, B: b}, nil
	case *CallExpr:
		switch x.Name {
		case "peek":
			if len(x.Args) != 1 {
				return nil, fmt.Errorf("peek takes one argument")
			}
			ix, err := fc.expr(x.Args[0])
			if err != nil {
				return nil, err
			}
			return wfunc.PeekX(ix), nil
		case "pop":
			return wfunc.PopE(), nil
		}
		if op, ok := unOpFor[x.Name]; ok {
			if len(x.Args) != 1 {
				return nil, fmt.Errorf("%s takes one argument", x.Name)
			}
			v, err := fc.expr(x.Args[0])
			if err != nil {
				return nil, err
			}
			return wfunc.Un(op, v), nil
		}
		if op, ok := binOpFor[x.Name]; ok {
			if len(x.Args) != 2 {
				return nil, fmt.Errorf("%s takes two arguments", x.Name)
			}
			a, err := fc.expr(x.Args[0])
			if err != nil {
				return nil, err
			}
			b, err := fc.expr(x.Args[1])
			if err != nil {
				return nil, err
			}
			return wfunc.Bin(op, a, b), nil
		}
		return nil, fmt.Errorf("unknown function %q", x.Name)
	}
	return nil, fmt.Errorf("unsupported expression %T", x)
}

var ilBinOps = map[string]wfunc.BinOp{
	"+": wfunc.Add, "-": wfunc.Sub, "*": wfunc.Mul, "/": wfunc.Div,
	"%": wfunc.Mod,
	"<": wfunc.Lt, "<=": wfunc.Le, ">": wfunc.Gt, ">=": wfunc.Ge,
	"==": wfunc.Eq, "!=": wfunc.Ne,
	"&&": wfunc.And, "||": wfunc.Or,
	"&": wfunc.BitAnd, "|": wfunc.BitOr, "^": wfunc.BitXor,
	"<<": wfunc.Shl, ">>": wfunc.Shr,
}
