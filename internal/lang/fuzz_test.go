package lang

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse drives the lexer and parser with arbitrary input, seeded with
// the five example programs. The parser's contract is errors, never
// panics, on malformed source; anything the parser accepts must also
// survive elaboration attempts without crashing (elaboration errors are
// fine — undefined top-level streams, bad rates — but not panics).
func FuzzParse(f *testing.F) {
	dir := filepath.Join("..", "..", "examples", "strprogs")
	names, err := os.ReadDir(dir)
	if err != nil {
		f.Fatal(err)
	}
	for _, de := range names {
		if filepath.Ext(de.Name()) != ".str" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	// Hand-picked slivers that exercise corners the examples miss.
	f.Add("float->float filter F { work push 1 pop 1 { push(pop()); } }")
	f.Add("void->void pipeline Main { add A; add B; }")
	f.Add("float->float splitjoin S { split duplicate; join roundrobin(2,1); }")
	f.Add("portal<F> p; int x = 1 + 2 * 3;")
	f.Add("float->float feedbackloop L { join roundrobin; body B; loop C; split duplicate; enqueue 0.0; }")

	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil || file == nil {
			return
		}
		// Elaborate every declared stream; panics are bugs, errors are not.
		for _, d := range file.Streams {
			_, _ = ParseAndElaborate(src, d.Name)
		}
	})
}
