package lang

import (
	"fmt"
	"math"
	"strconv"
)

// Parse lexes and parses a source file.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.file()
	if err != nil {
		return nil, err
	}
	return f, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) is(text string) bool { return p.cur().Text == text && p.cur().Kind != TokString }

func (p *parser) accept(text string) bool {
	if p.is(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		t := p.cur()
		return fmt.Errorf("%d:%d: expected %q, found %s", t.Line, t.Col, text, t)
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("%d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return "", p.errf("expected identifier, found %s", t)
	}
	p.pos++
	return t.Text, nil
}

func isType(s string) bool {
	return s == "int" || s == "float" || s == "bit" || s == "void" || s == "boolean"
}

func (p *parser) file() (*File, error) {
	f := &File{}
	for p.cur().Kind != TokEOF {
		switch {
		case p.is("portal"):
			p.next()
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			f.Portals = append(f.Portals, name)
		default:
			d, err := p.streamDecl()
			if err != nil {
				return nil, err
			}
			f.Streams = append(f.Streams, d)
		}
	}
	return f, nil
}

// streamDecl := type "->" type kind IDENT "(" params ")" "{" ... "}"
func (p *parser) streamDecl() (*StreamDecl, error) {
	d := &StreamDecl{Line: p.cur().Line}
	t := p.cur()
	if !isType(t.Text) {
		return nil, p.errf("expected stream declaration (e.g. \"float->float filter Name\"), found %s", t)
	}
	d.InType = p.next().Text
	if err := p.expect("->"); err != nil {
		return nil, err
	}
	if !isType(p.cur().Text) {
		return nil, p.errf("expected output type, found %s", p.cur())
	}
	d.OutType = p.next().Text
	switch {
	case p.is("filter"), p.is("pipeline"), p.is("splitjoin"), p.is("feedbackloop"):
		d.Kind = p.next().Text
	default:
		return nil, p.errf("expected filter, pipeline, splitjoin, or feedbackloop, found %s", p.cur())
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d.Name = name
	if p.is("(") {
		params, err := p.params()
		if err != nil {
			return nil, err
		}
		d.Params = params
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	if d.Kind == "filter" {
		if err := p.filterBody(d); err != nil {
			return nil, err
		}
	} else {
		body, err := p.stmtList("}")
		if err != nil {
			return nil, err
		}
		d.Body = body
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) params() ([]Param, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var out []Param
	for !p.is(")") {
		if len(out) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		if !isType(p.cur().Text) {
			return nil, p.errf("expected parameter type, found %s", p.cur())
		}
		typ := p.next().Text
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, Param{Type: typ, Name: name})
	}
	p.next() // ")"
	return out, nil
}

// filterBody := (fieldDecl | initFn | workFn | handler)*
func (p *parser) filterBody(d *StreamDecl) error {
	for !p.is("}") && p.cur().Kind != TokEOF {
		switch {
		case p.is("init"):
			p.next()
			if err := p.expect("{"); err != nil {
				return err
			}
			body, err := p.stmtList("}")
			if err != nil {
				return err
			}
			if err := p.expect("}"); err != nil {
				return err
			}
			d.Init = body
		case p.is("work"):
			p.next()
			w := &WorkDecl{}
			for {
				switch {
				case p.is("peek"):
					p.next()
					if p.accept("*") {
						w.Dynamic = true
						break
					}
					e, err := p.expr()
					if err != nil {
						return err
					}
					w.Peek = e
				case p.is("pop"):
					p.next()
					if p.accept("*") {
						w.Dynamic = true
						break
					}
					e, err := p.expr()
					if err != nil {
						return err
					}
					w.Pop = e
				case p.is("push"):
					p.next()
					if p.accept("*") {
						w.Dynamic = true
						break
					}
					e, err := p.expr()
					if err != nil {
						return err
					}
					w.Push = e
				default:
					goto rates
				}
			}
		rates:
			if err := p.expect("{"); err != nil {
				return err
			}
			body, err := p.stmtList("}")
			if err != nil {
				return err
			}
			if err := p.expect("}"); err != nil {
				return err
			}
			w.Body = body
			d.Work = w
		case p.is("handler"):
			p.next()
			name, err := p.ident()
			if err != nil {
				return err
			}
			params, err := p.params()
			if err != nil {
				return err
			}
			if err := p.expect("{"); err != nil {
				return err
			}
			body, err := p.stmtList("}")
			if err != nil {
				return err
			}
			if err := p.expect("}"); err != nil {
				return err
			}
			d.Handlers = append(d.Handlers, &HandlerDecl{Name: name, Params: params, Body: body})
		case isType(p.cur().Text):
			fd, err := p.fieldDecl()
			if err != nil {
				return err
			}
			d.Fields = append(d.Fields, fd)
		default:
			return p.errf("expected field, init, work, or handler in filter body, found %s", p.cur())
		}
	}
	if d.Work == nil {
		return fmt.Errorf("filter %s (line %d) has no work function", d.Name, d.Line)
	}
	return nil
}

// fieldDecl := type [ "[" expr "]" ] IDENT [ "=" expr ] ";"
func (p *parser) fieldDecl() (*FieldDecl, error) {
	fd := &FieldDecl{Type: p.next().Text}
	if p.accept("[") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		fd.Size = e
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	fd.Name = name
	if p.accept("=") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		fd.Init = e
	}
	return fd, p.expect(";")
}

// stmtList parses statements until the given closer (not consumed).
func (p *parser) stmtList(closer string) ([]Stmt, error) {
	var out []Stmt
	for !p.is(closer) && p.cur().Kind != TokEOF {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) block() ([]Stmt, error) {
	if p.accept("{") {
		body, err := p.stmtList("}")
		if err != nil {
			return nil, err
		}
		return body, p.expect("}")
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

func (p *parser) stmt() (Stmt, error) {
	switch {
	case p.is("if"):
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.accept("else") {
			if els, err = p.block(); err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els}, nil

	case p.is("for"):
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var init Stmt
		if !p.is(";") {
			s, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			init = s
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		var cond Expr
		if !p.is(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			cond = e
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		var post Stmt
		if !p.is(")") {
			s, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			post = s
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Init: init, Cond: cond, Post: post, Body: body}, nil

	case p.is("while"):
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil

	case p.is("break"):
		p.next()
		return &BreakStmt{}, p.expect(";")
	case p.is("continue"):
		p.next()
		return &ContinueStmt{}, p.expect(";")

	case p.is("add"):
		p.next()
		call, err := p.streamCall()
		if err != nil {
			return nil, err
		}
		s := &AddStmt{Call: call}
		if p.accept("as") {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.As = name
		}
		if p.accept("register") {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.Register = name
		}
		return s, p.expect(";")

	case p.is("split"), p.is("join"):
		isSplit := p.next().Text == "split"
		kind := ""
		var weights []Expr
		switch {
		case p.accept("duplicate"):
			kind = "duplicate"
		case p.accept("roundrobin"):
			kind = "roundrobin"
			if p.accept("(") {
				for !p.is(")") {
					if len(weights) > 0 {
						if err := p.expect(","); err != nil {
							return nil, err
						}
					}
					e, err := p.expr()
					if err != nil {
						return nil, err
					}
					weights = append(weights, e)
				}
				p.next()
			}
		default:
			return nil, p.errf("expected duplicate or roundrobin, found %s", p.cur())
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		if isSplit {
			return &SplitStmt{Kind: kind, Weights: weights}, nil
		}
		return &JoinStmt{Kind: kind, Weights: weights}, nil

	case p.is("maxlatency"):
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		bb, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		n, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &MaxLatencyStmt{A: a, B: bb, N: n}, p.expect(";")

	case p.is("body"):
		p.next()
		call, err := p.streamCall()
		if err != nil {
			return nil, err
		}
		return &BodyStmt{Call: call}, p.expect(";")
	case p.is("loop"):
		p.next()
		call, err := p.streamCall()
		if err != nil {
			return nil, err
		}
		return &LoopStmt{Call: call}, p.expect(";")
	case p.is("enqueue"):
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &EnqueueStmt{X: e}, p.expect(";")

	case p.is("send"):
		p.next()
		portal, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("."); err != nil {
			return nil, err
		}
		handler, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var args []Expr
		for !p.is(")") {
			if len(args) > 0 {
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
		}
		p.next()
		s := &SendStmt{Portal: portal, Handler: handler, Args: args}
		switch {
		case p.accept("latency"):
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Latency = e
		case p.accept("besteffort"):
			s.BestEffort = true
		default:
			s.BestEffort = true
		}
		return s, p.expect(";")

	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		return s, p.expect(";")
	}
}

// simpleStmt := decl | assignment | expr (no trailing semicolon)
func (p *parser) simpleStmt() (Stmt, error) {
	if isType(p.cur().Text) && p.cur().Text != "void" {
		d := &DeclStmt{Type: p.next().Text}
		if p.accept("[") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Size = e
			if err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		d.Name = name
		if p.accept("=") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		return d, nil
	}
	// assignment or expression statement: parse an expression first.
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-=", "*=", "/=", "%="} {
		if p.is(op) {
			p.next()
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			switch lhs := e.(type) {
			case *Ident:
				return &AssignStmt{Name: lhs.Name, Op: op, Value: v}, nil
			case *IndexExpr:
				return &AssignStmt{Name: lhs.Name, Index: lhs.Index, Op: op, Value: v}, nil
			default:
				return nil, p.errf("invalid assignment target")
			}
		}
	}
	if p.is("++") || p.is("--") {
		op := "+="
		if p.next().Text == "--" {
			op = "-="
		}
		one := &NumLit{Val: 1, IsInt: true}
		switch lhs := e.(type) {
		case *Ident:
			return &AssignStmt{Name: lhs.Name, Op: op, Value: one}, nil
		case *IndexExpr:
			return &AssignStmt{Name: lhs.Name, Index: lhs.Index, Op: op, Value: one}, nil
		default:
			return nil, p.errf("invalid increment target")
		}
	}
	return &ExprStmt{X: e}, nil
}

// streamCall := IDENT [ "(" args ")" ]
func (p *parser) streamCall() (*CallExpr, error) {
	line := p.cur().Line
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	call := &CallExpr{Name: name, Line: line}
	if p.accept("(") {
		for !p.is(")") {
			if len(call.Args) > 0 {
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, e)
		}
		p.next()
	}
	return call, nil
}

// Expression parsing with precedence climbing.

var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expr() (Expr, error) {
	e, err := p.binary(1)
	if err != nil {
		return nil, err
	}
	if p.accept("?") {
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		b, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &CondExpr{C: e, A: a, B: b}, nil
	}
	return e, nil
}

func (p *parser) binary(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().Text
		prec, ok := binPrec[op]
		if p.cur().Kind != TokPunct || !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op, L: lhs, R: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	switch {
	case p.is("-"), p.is("!"), p.is("~"):
		op := p.next().Text
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal %q", t.Text)
		}
		return &NumLit{Val: float64(v), IsInt: true}, nil
	case t.Kind == TokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad float literal %q", t.Text)
		}
		return &NumLit{Val: v}, nil
	case p.is("true"):
		p.next()
		return &NumLit{Val: 1, IsInt: true}, nil
	case p.is("false"):
		p.next()
		return &NumLit{Val: 0, IsInt: true}, nil
	case p.is("pi"):
		p.next()
		return &NumLit{Val: math.Pi}, nil
	case p.is("("):
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	case t.Kind == TokIdent:
		p.next()
		name := t.Text
		if p.is("(") {
			p.next()
			call := &CallExpr{Name: name, Line: t.Line}
			for !p.is(")") {
				if len(call.Args) > 0 {
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, e)
			}
			p.next()
			return call, nil
		}
		if p.is("[") {
			p.next()
			ix, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: name, Index: ix}, nil
		}
		return &Ident{Name: name}, nil
	}
	return nil, p.errf("expected expression, found %s", t)
}
