package lang

import (
	"fmt"
	"math"

	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

// Elaborate instantiates the stream named top (conventionally "Main",
// which must consume and produce void) and returns the executable program.
// Composite bodies run at elaboration time with their parameters bound, so
// graphs may be built with loops and conditionals; filter bodies compile
// to wfunc IL with parameters baked in as constants.
func Elaborate(f *File, top string) (*ir.Program, error) {
	e := &elab{
		file:    f,
		decls:   map[string]*StreamDecl{},
		prog:    &ir.Program{Name: top},
		portals: map[string]*ir.Portal{},
		named:   map[string]*ir.Filter{},
		fuel:    elabFuel,
	}
	for _, d := range f.Streams {
		if e.decls[d.Name] != nil {
			return nil, fmt.Errorf("stream %s declared twice", d.Name)
		}
		e.decls[d.Name] = d
	}
	for _, name := range f.Portals {
		e.portals[name] = e.prog.NewPortal(name)
	}
	d := e.decls[top]
	if d == nil {
		return nil, fmt.Errorf("no stream named %s", top)
	}
	if len(d.Params) != 0 {
		return nil, fmt.Errorf("top-level stream %s must take no parameters", top)
	}
	s, err := e.instantiate(d, nil)
	if err != nil {
		return nil, err
	}
	e.prog.Top = s
	e.prog.Named = e.named
	return e.prog, nil
}

// ParseAndElaborate is the one-call front end.
func ParseAndElaborate(src, top string) (*ir.Program, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Elaborate(f, top)
}

type elab struct {
	file    *File
	decls   map[string]*StreamDecl
	prog    *ir.Program
	portals map[string]*ir.Portal
	named   map[string]*ir.Filter // instances named with "as"
	inst    int
	depth   int
	fuel    int
}

// maxElabDepth bounds nested stream instantiation. Recursion with a
// compile-time base case (add Sort(n/2) under if (n > 1)) is legitimate
// StreamIt; a stream that adds itself unconditionally is not, and without
// this bound it would elaborate forever.
const maxElabDepth = 500

// elabFuel bounds the total compile-time statements executed across one
// elaboration. Per-loop iteration caps alone don't terminate nested
// non-terminating loops (they multiply), nor exponential instantiation
// trees; a single global budget covers every such shape. Real programs
// use a few thousand statements; ~1M keeps even adversarial inputs
// (fuzzing) sub-second while leaving orders of magnitude of headroom.
const elabFuel = 1 << 20

// maxArraySize bounds declared array lengths (compile-time and filter
// state). Sizes are program text, so an absurd one is a program error,
// and allocating it eagerly (as the elaborator does for compile-time
// arrays) must not take down the compiler.
const maxArraySize = 1 << 24

func checkArraySize(name string, n float64) error {
	if !(n >= 1 && n <= maxArraySize) {
		return fmt.Errorf("array %s: size %g out of range [1,%d]", name, n, maxArraySize)
	}
	return nil
}

// value is a compile-time value: a scalar or an array.
type value struct {
	scalar float64
	arr    []float64
	isArr  bool
}

// cenv is the compile-time environment for composite bodies and constant
// expressions.
type cenv struct {
	vars   map[string]*value
	parent *cenv
}

func newCenv(parent *cenv) *cenv { return &cenv{vars: map[string]*value{}, parent: parent} }

func (c *cenv) lookup(name string) *value {
	for e := c; e != nil; e = e.parent {
		if v, ok := e.vars[name]; ok {
			return v
		}
	}
	return nil
}

func (e *elab) instantiate(d *StreamDecl, args []float64) (ir.Stream, error) {
	if len(args) != len(d.Params) {
		return nil, fmt.Errorf("stream %s takes %d parameters, got %d", d.Name, len(d.Params), len(args))
	}
	e.depth++
	defer func() { e.depth-- }()
	if e.depth > maxElabDepth {
		return nil, fmt.Errorf("stream %s: instantiation deeper than %d levels (unbounded recursion?)", d.Name, maxElabDepth)
	}
	env := newCenv(nil)
	for i, p := range d.Params {
		env.vars[p.Name] = &value{scalar: args[i]}
	}
	e.inst++
	switch d.Kind {
	case "filter":
		return e.buildFilter(d, env)
	case "pipeline":
		b := &compositeBuilder{kind: "pipeline", decl: d}
		if err := e.runBody(d.Body, env, b); err != nil {
			return nil, err
		}
		if len(b.children) == 0 {
			return nil, fmt.Errorf("pipeline %s added no children", d.Name)
		}
		return ir.Pipe(fmt.Sprintf("%s#%d", d.Name, e.inst), b.children...), nil
	case "splitjoin":
		b := &compositeBuilder{kind: "splitjoin", decl: d}
		if err := e.runBody(d.Body, env, b); err != nil {
			return nil, err
		}
		if b.split == nil || b.join == nil {
			return nil, fmt.Errorf("splitjoin %s needs both split and join declarations", d.Name)
		}
		return ir.SJ(fmt.Sprintf("%s#%d", d.Name, e.inst), *b.split, *b.join, b.children...), nil
	case "feedbackloop":
		b := &compositeBuilder{kind: "feedbackloop", decl: d}
		if err := e.runBody(d.Body, env, b); err != nil {
			return nil, err
		}
		if b.split == nil || b.join == nil || b.body == nil {
			return nil, fmt.Errorf("feedbackloop %s needs join, body, and split declarations", d.Name)
		}
		vals := append([]float64(nil), b.enqueued...)
		fl := &ir.FeedbackLoop{
			Name:  fmt.Sprintf("%s#%d", d.Name, e.inst),
			Join:  *b.join,
			Body:  b.body,
			Split: *b.split,
			Loop:  b.loop,
			Delay: len(vals),
		}
		if len(vals) > 0 {
			fl.InitPath = func(i int) float64 { return vals[i] }
		}
		return fl, nil
	}
	return nil, fmt.Errorf("unknown stream kind %q", d.Kind)
}

// compositeBuilder accumulates the structural effects of a composite body.
type compositeBuilder struct {
	kind     string
	decl     *StreamDecl
	children []ir.Stream
	split    *ir.SJSpec
	join     *ir.SJSpec
	body     ir.Stream
	loop     ir.Stream
	enqueued []float64
}

type ctlFlow int

const (
	flowNone ctlFlow = iota
	flowBreak
	flowContinue
)

// runBody interprets a composite body at elaboration time.
func (e *elab) runBody(body []Stmt, env *cenv, b *compositeBuilder) error {
	fl, err := e.runStmts(body, env, b)
	if err != nil {
		return err
	}
	if fl != flowNone {
		return fmt.Errorf("%s %s: break/continue outside loop", b.kind, b.decl.Name)
	}
	return nil
}

func (e *elab) runStmts(body []Stmt, env *cenv, b *compositeBuilder) (ctlFlow, error) {
	for _, s := range body {
		fl, err := e.runStmt(s, env, b)
		if err != nil || fl != flowNone {
			return fl, err
		}
	}
	return flowNone, nil
}

func (e *elab) runStmt(s Stmt, env *cenv, b *compositeBuilder) (ctlFlow, error) {
	e.fuel--
	if e.fuel < 0 {
		return flowNone, fmt.Errorf("elaboration exceeded %d compile-time statements (non-terminating loop or unbounded recursion?)", elabFuel)
	}
	switch s := s.(type) {
	case *DeclStmt:
		v := &value{}
		if s.Size != nil {
			n, err := e.constExpr(s.Size, env)
			if err != nil {
				return flowNone, err
			}
			if err := checkArraySize(s.Name, n); err != nil {
				return flowNone, err
			}
			v.isArr = true
			v.arr = make([]float64, int(n))
		} else if s.Init != nil {
			x, err := e.constExpr(s.Init, env)
			if err != nil {
				return flowNone, err
			}
			v.scalar = x
		}
		env.vars[s.Name] = v
		return flowNone, nil
	case *AssignStmt:
		return flowNone, e.runAssign(s, env)
	case *IfStmt:
		c, err := e.constExpr(s.Cond, env)
		if err != nil {
			return flowNone, err
		}
		if c != 0 {
			return e.runStmts(s.Then, newCenv(env), b)
		}
		return e.runStmts(s.Else, newCenv(env), b)
	case *ForStmt:
		loopEnv := newCenv(env)
		if s.Init != nil {
			if _, err := e.runStmt(s.Init, loopEnv, b); err != nil {
				return flowNone, err
			}
		}
		for iter := 0; ; iter++ {
			if iter > 1<<22 {
				return flowNone, fmt.Errorf("compile-time for loop did not terminate")
			}
			if s.Cond != nil {
				c, err := e.constExpr(s.Cond, loopEnv)
				if err != nil {
					return flowNone, err
				}
				if c == 0 {
					break
				}
			}
			fl, err := e.runStmts(s.Body, newCenv(loopEnv), b)
			if err != nil {
				return flowNone, err
			}
			if fl == flowBreak {
				break
			}
			if s.Post != nil {
				if _, err := e.runStmt(s.Post, loopEnv, b); err != nil {
					return flowNone, err
				}
			}
		}
		return flowNone, nil
	case *WhileStmt:
		for iter := 0; ; iter++ {
			if iter > 1<<22 {
				return flowNone, fmt.Errorf("compile-time while loop did not terminate")
			}
			c, err := e.constExpr(s.Cond, env)
			if err != nil {
				return flowNone, err
			}
			if c == 0 {
				return flowNone, nil
			}
			fl, err := e.runStmts(s.Body, newCenv(env), b)
			if err != nil {
				return flowNone, err
			}
			if fl == flowBreak {
				return flowNone, nil
			}
		}
	case *BreakStmt:
		return flowBreak, nil
	case *ContinueStmt:
		return flowContinue, nil
	case *AddStmt:
		if b.kind == "feedbackloop" {
			return flowNone, fmt.Errorf("feedbackloop %s: use body/loop, not add", b.decl.Name)
		}
		child, err := e.resolveStream(s.Call, env, b)
		if err != nil {
			return flowNone, err
		}
		if s.As != "" {
			filt, ok := child.(*ir.Filter)
			if !ok {
				return flowNone, fmt.Errorf("as %s: only filter instances can be named", s.As)
			}
			if e.named[s.As] != nil {
				return flowNone, fmt.Errorf("instance name %q used twice", s.As)
			}
			e.named[s.As] = filt
		}
		if s.Register != "" {
			p := e.portals[s.Register]
			if p == nil {
				return flowNone, fmt.Errorf("unknown portal %q", s.Register)
			}
			filt, ok := child.(*ir.Filter)
			if !ok {
				return flowNone, fmt.Errorf("register %s: only filters can receive messages", s.Register)
			}
			p.Register(filt)
		}
		b.children = append(b.children, child)
		return flowNone, nil
	case *SplitStmt:
		spec, err := e.sjSpec(s.Kind, s.Weights, env)
		if err != nil {
			return flowNone, err
		}
		b.split = &spec
		return flowNone, nil
	case *JoinStmt:
		spec, err := e.sjSpec(s.Kind, s.Weights, env)
		if err != nil {
			return flowNone, err
		}
		b.join = &spec
		return flowNone, nil
	case *BodyStmt:
		child, err := e.resolveStream(s.Call, env, b)
		if err != nil {
			return flowNone, err
		}
		b.body = child
		return flowNone, nil
	case *LoopStmt:
		child, err := e.resolveStream(s.Call, env, b)
		if err != nil {
			return flowNone, err
		}
		b.loop = child
		return flowNone, nil
	case *EnqueueStmt:
		v, err := e.constExpr(s.X, env)
		if err != nil {
			return flowNone, err
		}
		b.enqueued = append(b.enqueued, v)
		return flowNone, nil
	case *MaxLatencyStmt:
		a := e.named[s.A]
		bf := e.named[s.B]
		if a == nil || bf == nil {
			return flowNone, fmt.Errorf("maxlatency(%s, %s): both instances must be named with \"as\" before this statement", s.A, s.B)
		}
		n, err := e.constExpr(s.N, env)
		if err != nil {
			return flowNone, err
		}
		e.prog.Constraints = append(e.prog.Constraints, ir.LatencyConstraint{
			Upstream: a, Downstream: bf, Latency: int(n),
		})
		return flowNone, nil
	case *ExprStmt:
		_, err := e.constExpr(s.X, env)
		return flowNone, err
	default:
		return flowNone, fmt.Errorf("statement %T is not allowed in a composite body", s)
	}
}

func (e *elab) runAssign(s *AssignStmt, env *cenv) error {
	v := env.lookup(s.Name)
	if v == nil {
		return fmt.Errorf("undefined variable %q", s.Name)
	}
	x, err := e.constExpr(s.Value, env)
	if err != nil {
		return err
	}
	apply := func(old float64) float64 {
		switch s.Op {
		case "=":
			return x
		case "+=":
			return old + x
		case "-=":
			return old - x
		case "*=":
			return old * x
		case "/=":
			return old / x
		case "%=":
			return float64(int64(old) % int64(x))
		}
		return x
	}
	if s.Index != nil {
		if !v.isArr {
			return fmt.Errorf("%q is not an array", s.Name)
		}
		ix, err := e.constExpr(s.Index, env)
		if err != nil {
			return err
		}
		i := int(ix)
		if i < 0 || i >= len(v.arr) {
			return fmt.Errorf("index %d out of range for %q", i, s.Name)
		}
		v.arr[i] = apply(v.arr[i])
		return nil
	}
	v.scalar = apply(v.scalar)
	return nil
}

func (e *elab) sjSpec(kind string, weights []Expr, env *cenv) (ir.SJSpec, error) {
	if kind == "duplicate" {
		return ir.Duplicate(), nil
	}
	var w []int
	for _, we := range weights {
		v, err := e.constExpr(we, env)
		if err != nil {
			return ir.SJSpec{}, err
		}
		w = append(w, int(v))
	}
	return ir.RoundRobin(w...), nil
}

// resolveStream instantiates a child stream reference (including the
// built-in Identity).
func (e *elab) resolveStream(call *CallExpr, env *cenv, b *compositeBuilder) (ir.Stream, error) {
	if call.Name == "Identity" {
		typ := b.decl.OutType
		if typ == ir.TypeVoid {
			typ = b.decl.InType
		}
		if typ == ir.TypeVoid {
			typ = ir.TypeFloat
		}
		return ir.Identity(typ), nil
	}
	d := e.decls[call.Name]
	if d == nil {
		return nil, fmt.Errorf("line %d: unknown stream %q", call.Line, call.Name)
	}
	args := make([]float64, len(call.Args))
	for i, a := range call.Args {
		v, err := e.constExpr(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return e.instantiate(d, args)
}

// constExpr evaluates a compile-time expression.
func (e *elab) constExpr(x Expr, env *cenv) (float64, error) {
	switch x := x.(type) {
	case *NumLit:
		return x.Val, nil
	case *Ident:
		v := env.lookup(x.Name)
		if v == nil {
			return 0, fmt.Errorf("undefined variable %q", x.Name)
		}
		if v.isArr {
			return 0, fmt.Errorf("%q is an array", x.Name)
		}
		return v.scalar, nil
	case *IndexExpr:
		v := env.lookup(x.Name)
		if v == nil || !v.isArr {
			return 0, fmt.Errorf("%q is not an array", x.Name)
		}
		ix, err := e.constExpr(x.Index, env)
		if err != nil {
			return 0, err
		}
		i := int(ix)
		if i < 0 || i >= len(v.arr) {
			return 0, fmt.Errorf("index %d out of range for %q", i, x.Name)
		}
		return v.arr[i], nil
	case *UnaryExpr:
		v, err := e.constExpr(x.X, env)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "-":
			return -v, nil
		case "!":
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		case "~":
			return float64(^int64(v)), nil
		}
	case *BinaryExpr:
		l, err := e.constExpr(x.L, env)
		if err != nil {
			return 0, err
		}
		r, err := e.constExpr(x.R, env)
		if err != nil {
			return 0, err
		}
		return evalBinOp(x.Op, l, r)
	case *CondExpr:
		c, err := e.constExpr(x.C, env)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return e.constExpr(x.A, env)
		}
		return e.constExpr(x.B, env)
	case *CallExpr:
		if fn, ok := mathBuiltins[x.Name]; ok {
			args := make([]float64, len(x.Args))
			for i, a := range x.Args {
				v, err := e.constExpr(a, env)
				if err != nil {
					return 0, err
				}
				args[i] = v
			}
			return fn(args)
		}
		return 0, fmt.Errorf("line %d: %q is not usable in a compile-time expression", x.Line, x.Name)
	}
	return 0, fmt.Errorf("unsupported compile-time expression %T", x)
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func evalBinOp(op string, l, r float64) (float64, error) {
	switch op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, fmt.Errorf("division by zero in compile-time expression")
		}
		return l / r, nil
	case "%":
		if int64(r) == 0 {
			return 0, fmt.Errorf("modulo by zero in compile-time expression")
		}
		return float64(int64(l) % int64(r)), nil
	case "<":
		return boolF(l < r), nil
	case "<=":
		return boolF(l <= r), nil
	case ">":
		return boolF(l > r), nil
	case ">=":
		return boolF(l >= r), nil
	case "==":
		return boolF(l == r), nil
	case "!=":
		return boolF(l != r), nil
	case "&&":
		return boolF(l != 0 && r != 0), nil
	case "||":
		return boolF(l != 0 || r != 0), nil
	case "&":
		return float64(int64(l) & int64(r)), nil
	case "|":
		return float64(int64(l) | int64(r)), nil
	case "^":
		return float64(int64(l) ^ int64(r)), nil
	case "<<":
		return float64(int64(l) << (uint64(r) & 63)), nil
	case ">>":
		return float64(int64(l) >> (uint64(r) & 63)), nil
	}
	return 0, fmt.Errorf("unknown operator %q", op)
}

var mathBuiltins = map[string]func([]float64) (float64, error){
	"sin":   unary1(math.Sin),
	"cos":   unary1(math.Cos),
	"tan":   unary1(math.Tan),
	"asin":  unary1(math.Asin),
	"acos":  unary1(math.Acos),
	"atan":  unary1(math.Atan),
	"exp":   unary1(math.Exp),
	"log":   unary1(math.Log),
	"sqrt":  unary1(math.Sqrt),
	"abs":   unary1(math.Abs),
	"floor": unary1(math.Floor),
	"ceil":  unary1(math.Ceil),
	"round": unary1(math.Round),
	"pow":   binary1(math.Pow),
	"atan2": binary1(math.Atan2),
	"min":   binary1(math.Min),
	"max":   binary1(math.Max),
}

func unary1(f func(float64) float64) func([]float64) (float64, error) {
	return func(args []float64) (float64, error) {
		if len(args) != 1 {
			return 0, fmt.Errorf("builtin takes 1 argument, got %d", len(args))
		}
		return f(args[0]), nil
	}
}

func binary1(f func(float64, float64) float64) func([]float64) (float64, error) {
	return func(args []float64) (float64, error) {
		if len(args) != 2 {
			return 0, fmt.Errorf("builtin takes 2 arguments, got %d", len(args))
		}
		return f(args[0], args[1]), nil
	}
}

// unOpFor maps builtin names to IL unary ops for filter compilation.
var unOpFor = map[string]wfunc.UnOp{
	"sin": wfunc.Sin, "cos": wfunc.Cos, "tan": wfunc.Tan,
	"asin": wfunc.Asin, "acos": wfunc.Acos, "atan": wfunc.Atan,
	"exp": wfunc.Exp, "log": wfunc.Log, "sqrt": wfunc.Sqrt,
	"abs": wfunc.Abs, "floor": wfunc.Floor, "ceil": wfunc.Ceil,
	"round": wfunc.Round,
}

var binOpFor = map[string]wfunc.BinOp{
	"pow": wfunc.Pow, "atan2": wfunc.Atan2, "min": wfunc.Min, "max": wfunc.Max,
}
