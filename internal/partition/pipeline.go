package partition

import (
	"fmt"
	"sort"

	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

// StagePlan is the coarse-grained software-pipelining stage map of a
// flattened graph: a topological stage level per node plus the clusters
// of nodes that must fire together on one worker. Feedback cycles and
// teleport-messaging hulls form clusters — their latency coupling cannot
// tolerate pipeline skew — while everything else pipelines freely: a
// producer at level l runs iteration i+1 while its consumer at level l+1
// still works on iteration i.
type StagePlan struct {
	// Levels holds each node's stage level, indexed by node ID. Every
	// forward edge between different clusters strictly increases the
	// level; nodes of one cluster share theirs.
	Levels []int
	// NumLevels is max(Levels)+1.
	NumLevels int
	// Clusters lists the multi-node groups as sorted node IDs, ordered by
	// first member. Singleton nodes are not listed.
	Clusters [][]int
	// ClusterOf maps node ID to an index into Clusters, -1 for singletons.
	ClusterOf []int
}

// PipelineStages computes the software-pipelining stage map of a flat
// graph. Clusters are grown from two seeds and closed under convexity
// (any node on a forward path between two cluster members joins it, so
// contracting a cluster can never create a cycle):
//
//   - every feedback back edge s->d pulls in {s, d} and every node on a
//     forward path d ~> n ~> s — the loop body must interleave at firing
//     granularity, which only a single worker provides;
//   - all teleport-messaging endpoints (senders, portal receivers, and
//     MAX_LATENCY constraint endpoints) plus every node between any two
//     of them — sdep delivery windows are relative to live progress
//     counters, so the whole hull shares one stage.
//
// Levels are longest paths over the cluster contraction of the forward
// DAG. An error is returned only if contraction yields a cycle, which a
// convex closure cannot produce; the check guards future graph kinds.
func PipelineStages(g *ir.Graph) (*StagePlan, error) {
	n := len(g.Nodes)
	fwd := make([][]int, n)
	rev := make([][]int, n)
	for _, e := range g.Edges {
		if e.Back {
			continue
		}
		fwd[e.Src.ID] = append(fwd[e.Src.ID], e.Dst.ID)
		rev[e.Dst.ID] = append(rev[e.Dst.ID], e.Src.ID)
	}
	reach := func(adj [][]int, from []int) []bool {
		seen := make([]bool, n)
		stack := append([]int(nil), from...)
		for _, v := range from {
			seen[v] = true
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		return seen
	}

	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	// Feedback clusters: the back edge's endpoints and the loop body
	// between them.
	for _, e := range g.Edges {
		if !e.Back {
			continue
		}
		s, d := e.Src.ID, e.Dst.ID
		union(s, d)
		down, up := reach(fwd, []int{d}), reach(rev, []int{s})
		for v := 0; v < n; v++ {
			if down[v] && up[v] {
				union(v, d)
			}
		}
	}

	// Messaging hull: all endpoints and everything between two of them.
	var seeds []int
	for _, nd := range g.Nodes {
		if nd.Kind != ir.NodeFilter || nd.Filter == nil {
			continue
		}
		k := nd.Filter.Kernel
		if k != nil && nd.Filter.WorkFn == nil && k.Work != nil && wfunc.SendsMessages(k.Work) {
			seeds = append(seeds, nd.ID)
		}
	}
	endpoint := func(f *ir.Filter) {
		if nd := g.FilterNode[f]; nd != nil {
			seeds = append(seeds, nd.ID)
		}
	}
	for _, p := range g.Portals {
		for _, r := range p.Receivers {
			endpoint(r)
		}
	}
	for _, c := range g.Constraints {
		endpoint(c.Upstream)
		endpoint(c.Downstream)
	}
	if len(seeds) > 0 {
		from, to := reach(fwd, seeds), reach(rev, seeds)
		for v := 0; v < n; v++ {
			if from[v] && to[v] {
				union(v, seeds[0])
			}
		}
	}

	// Convex closure: merged clusters may not be convex, so pull in any
	// node lying on a forward path between two members until stable.
	for changed := true; changed; {
		changed = false
		groups := map[int][]int{}
		for v := 0; v < n; v++ {
			r := find(v)
			groups[r] = append(groups[r], v)
		}
		for r, members := range groups {
			if len(members) < 2 {
				continue
			}
			down, up := reach(fwd, members), reach(rev, members)
			for v := 0; v < n; v++ {
				if down[v] && up[v] && find(v) != r {
					union(v, r)
					changed = true
				}
			}
		}
	}

	// Longest-path levels over the cluster contraction.
	comp := make([]int, n)
	compID := map[int]int{}
	for v := 0; v < n; v++ {
		r := find(v)
		if _, ok := compID[r]; !ok {
			compID[r] = len(compID)
		}
		comp[v] = compID[r]
	}
	m := len(compID)
	sadj := make([]map[int]bool, m)
	indeg := make([]int, m)
	for _, e := range g.Edges {
		if e.Back {
			continue
		}
		a, b := comp[e.Src.ID], comp[e.Dst.ID]
		if a == b {
			continue
		}
		if sadj[a] == nil {
			sadj[a] = map[int]bool{}
		}
		if !sadj[a][b] {
			sadj[a][b] = true
			indeg[b]++
		}
	}
	level := make([]int, m)
	var queue []int
	for c := 0; c < m; c++ {
		if indeg[c] == 0 {
			queue = append(queue, c)
		}
	}
	done := 0
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		done++
		for d := range sadj[c] {
			if level[c]+1 > level[d] {
				level[d] = level[c] + 1
			}
			if indeg[d]--; indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if done != m {
		return nil, fmt.Errorf("partition: stage contraction of %s left a cycle (%d of %d components ordered)", g.Name, done, m)
	}

	sp := &StagePlan{Levels: make([]int, n), ClusterOf: make([]int, n)}
	for v := 0; v < n; v++ {
		sp.Levels[v] = level[comp[v]]
		if sp.Levels[v]+1 > sp.NumLevels {
			sp.NumLevels = sp.Levels[v] + 1
		}
		sp.ClusterOf[v] = -1
	}
	byRoot := map[int][]int{}
	for v := 0; v < n; v++ {
		r := find(v)
		byRoot[r] = append(byRoot[r], v)
	}
	for _, members := range byRoot {
		if len(members) >= 2 {
			sort.Ints(members)
			sp.Clusters = append(sp.Clusters, members)
		}
	}
	sort.Slice(sp.Clusters, func(i, j int) bool { return sp.Clusters[i][0] < sp.Clusters[j][0] })
	for ci, members := range sp.Clusters {
		for _, v := range members {
			sp.ClusterOf[v] = ci
		}
	}
	return sp, nil
}
