package partition

import (
	"testing"

	"streamit/internal/apps"
	"streamit/internal/ir"
	"streamit/internal/sched"
)

func buildShardedPlan(t *testing.T, strat Strategy, workers int) (*ExecPlan, *ir.Graph, *sched.Schedule) {
	t.Helper()
	prog := apps.FMRadio(4, 16)
	g, err := ir.Flatten(prog)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildExecPlan(prog, g, s, ExecPlanOptions{Strategy: strat, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ir.Flatten(plan.Program)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sched.Compute(g2)
	if err != nil {
		t.Fatal(err)
	}
	return plan, g2, s2
}

// TestAssignSharded: every node lands in a valid global worker slot, both
// shards get real work, and the second level actually spreads a shard's
// nodes over its local workers.
func TestAssignSharded(t *testing.T) {
	plan, g2, s2 := buildShardedPlan(t, StratCoarseData, 4)
	const shards, perShard = 2, 2
	assign, err := plan.AssignSharded(g2, s2, shards, perShard, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != len(g2.Nodes) {
		t.Fatalf("assignment covers %d of %d nodes", len(assign), len(g2.Nodes))
	}
	perWorker := make([]int, shards*perShard)
	perShardN := make([]int, shards)
	for id, w := range assign {
		if w < 0 || w >= shards*perShard {
			t.Fatalf("node %d assigned to worker %d of %d", id, w, shards*perShard)
		}
		perWorker[w]++
		perShardN[w/perShard]++
	}
	for sh, n := range perShardN {
		if n == 0 {
			t.Fatalf("shard %d received no nodes: per-worker %v", sh, perWorker)
		}
	}
	busyWorkers := 0
	for _, n := range perWorker {
		if n > 0 {
			busyWorkers++
		}
	}
	if busyWorkers < shards+1 {
		t.Fatalf("second-level packing left work on only %d workers: %v", busyWorkers, perWorker)
	}

	// Determinism: the distributed shards each compute this locally and
	// must agree with the coordinator.
	again, err := plan.AssignSharded(g2, s2, shards, perShard, nil)
	if err != nil {
		t.Fatal(err)
	}
	for id := range assign {
		if assign[id] != again[id] {
			t.Fatalf("sharded assignment not deterministic at node %d: %d vs %d", id, assign[id], again[id])
		}
	}
}

// TestAssignShardedMeasured: live measurements steer the shard-level
// packing — a node measured as the dominant cost ends up alone against
// the rest, and the call stays valid.
func TestAssignShardedMeasured(t *testing.T) {
	plan, g2, s2 := buildShardedPlan(t, StratTask, 4)
	// Find a mid-graph filter and declare it overwhelmingly expensive.
	var hot string
	for _, n := range g2.Nodes {
		if n.Kind == ir.NodeFilter && !n.IsSource() && !n.IsSink() {
			hot = n.Name
			break
		}
	}
	if hot == "" {
		t.Fatal("no interior filter found")
	}
	measured := map[string]int64{hot: 1_000_000}
	assign, err := plan.AssignSharded(g2, s2, 2, 2, measured)
	if err != nil {
		t.Fatal(err)
	}
	var hotShard int
	for _, n := range g2.Nodes {
		if n.Name == hot {
			hotShard = assign[n.ID] / 2
		}
	}
	// The hot node's shard should carry fewer peers than the other shard.
	counts := []int{0, 0}
	for _, w := range assign {
		counts[w/2]++
	}
	other := 1 - hotShard
	if counts[hotShard] > counts[other] {
		t.Fatalf("hot filter %s's shard %d carries %d nodes vs %d on the other; measured weights ignored",
			hot, hotShard, counts[hotShard], counts[other])
	}
}

// TestAssignShardedRejects: pipelined plans and degenerate shapes fail
// loudly.
func TestAssignShardedRejects(t *testing.T) {
	plan, g2, s2 := buildShardedPlan(t, StratCoarseData, 4)
	if _, err := plan.AssignSharded(g2, s2, 0, 2, nil); err == nil {
		t.Fatal("0 shards should be rejected")
	}
	if _, err := plan.AssignSharded(g2, s2, 2, 0, nil); err == nil {
		t.Fatal("0 workers per shard should be rejected")
	}
	swp, g2p, s2p := buildShardedPlan(t, StratSWP, 4)
	if !swp.Pipelined {
		t.Skip("SWP strategy produced a lockstep plan")
	}
	if _, err := swp.AssignSharded(g2p, s2p, 2, 2, nil); err == nil {
		t.Fatal("pipelined plans should be rejected")
	}
}
