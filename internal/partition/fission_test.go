package partition

import (
	"fmt"
	"strings"
	"testing"
)

// chainPG builds a synthetic linear PGraph with the given per-node works,
// bypassing the IR so the fission heuristics can be probed directly.
func chainPG(works ...int64) *PGraph {
	p := &PGraph{nodes: map[int]*pnode{}, edges: map[[2]int]int64{}}
	for i, w := range works {
		p.nodes[i] = &pnode{id: i, name: fmt.Sprintf("n%d", i), work: w, count: 1}
		if i > 0 {
			p.edges[[2]int{i - 1, i}] = 16
		}
	}
	p.nextID = len(works)
	return p
}

// replicas counts the fission replicas ("base/fN") of a node.
func replicas(p *PGraph, base string) int {
	c := 0
	for _, n := range p.nodes {
		if strings.HasPrefix(n.name, base+"/f") {
			c++
		}
	}
	return c
}

func TestFissAllOneTileIsIdentity(t *testing.T) {
	p := chainPG(100000, 100000, 100000)
	if err := p.fissAll(1); err != nil {
		t.Fatal(err)
	}
	if len(p.nodes) != 3 {
		t.Fatalf("fissAll(1) changed the node count: %d", len(p.nodes))
	}
	for _, n := range p.nodes {
		if strings.Contains(n.name, "/f") {
			t.Fatalf("fissAll(1) created replica %s", n.name)
		}
	}
}

func TestFissAllSkipsZeroAndLightWork(t *testing.T) {
	// total = 100100; the light node (100) is below the total/(4*tiles)
	// threshold and the zero-work node is not fissable at all.
	p := chainPG(0, 100, 100000)
	if err := p.fissAll(4); err != nil {
		t.Fatal(err)
	}
	if p.nodes[0] == nil || p.nodes[1] == nil {
		t.Fatal("zero/light-work nodes should survive fissAll unchanged")
	}
	if p.nodes[2] != nil {
		t.Fatal("heavy node should have been replaced by replicas")
	}
	if got := replicas(p, "n2"); got != 4 {
		t.Fatalf("heavy node replicas = %d, want tiles = 4", got)
	}
}

func TestFissAllHalvesReplicationForModestWork(t *testing.T) {
	// 1100 cycles over 8 tiles is 137/replica — under the 256-cycle floor.
	// The heuristic halves k until each replica carries meaningful work:
	// k=4 gives 275 >= 256.
	p := chainPG(1100)
	if err := p.fissAll(8); err != nil {
		t.Fatal(err)
	}
	if got := replicas(p, "n0"); got != 4 {
		t.Fatalf("replicas = %d, want k halved 8 -> 4", got)
	}
	for _, n := range p.nodes {
		if n.work != 1100/4 {
			t.Fatalf("replica %s work = %d, want %d", n.name, n.work, 1100/4)
		}
	}
}

func TestFissAllKeepsTinyWorkWhole(t *testing.T) {
	// 300 cycles passes the share threshold (it is the whole graph) but
	// halving lands at k=1 (300/2 = 150 < 256): no fission at all.
	p := chainPG(300)
	if err := p.fissAll(8); err != nil {
		t.Fatal(err)
	}
	if len(p.nodes) != 1 || p.nodes[0] == nil {
		t.Fatalf("tiny node should stay whole, nodes = %d", len(p.nodes))
	}
}

func TestFissionPlanScaleMatchesReplicas(t *testing.T) {
	const tiles = 4
	p := statelessChain(t)
	for _, strat := range []Strategy{StratFineData, StratCoarseData} {
		plan, err := p.Map(strat, tiles)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if plan.Scale != 8*tiles {
			t.Fatalf("%s: Scale = %d, want %d", strat, plan.Scale, 8*tiles)
		}
		// Every fission group in the emitted graph holds at most tiles
		// replicas, and replica indices never reach the tile count.
		groups := map[string]int{}
		for _, n := range plan.Graph.Nodes {
			base, idx, ok := strings.Cut(n.Name, "/f")
			if !ok {
				continue
			}
			groups[base]++
			var r int
			fmt.Sscanf(idx, "%d", &r)
			if r >= tiles {
				t.Fatalf("%s: replica index %s out of range", strat, n.Name)
			}
		}
		if len(groups) == 0 {
			t.Fatalf("%s: no fission replicas emitted for stateless chain", strat)
		}
		for base, k := range groups {
			if k > tiles {
				t.Fatalf("%s: %s has %d replicas, more than %d tiles", strat, base, k, tiles)
			}
		}
	}
	// Task parallelism never fisses and therefore reports no scaling.
	plan, err := p.Map(StratTask, tiles)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Scale != 0 {
		t.Fatalf("task plan Scale = %d, want 0", plan.Scale)
	}
	for _, n := range plan.Graph.Nodes {
		if strings.Contains(n.Name, "/f") {
			t.Fatalf("task plan emitted replica %s", n.Name)
		}
	}
}
