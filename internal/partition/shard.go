package partition

import (
	"fmt"
	"sort"

	"streamit/internal/ir"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

// Shard-aware assignment: the distributed runtime packs one exec plan
// onto shards × perShard workers in two LPT levels — nodes onto shards
// first (minimizing the per-shard bottleneck, which is what bounds a
// lockstep epoch), then each shard's nodes onto its local workers.
// Worker numbering is global and contiguous per shard: worker w runs on
// shard w/perShard, so the same assignment drives every shard's engine
// (each masks its own worker range via Options.LocalWorkers) and the
// coordinator's bookkeeping. Like AssignN/AssignMeasured this re-packs
// the SAME rewritten graph — the fingerprint never changes, which is what
// lets crash recovery move a dead shard's partitions onto survivors and
// restore the last barrier image unchanged.

// nodeWeights estimates per-node steady-iteration work for LPT packing:
// plan work estimates (or kernel cost estimates) scaled by repetitions
// for filters, router cost for splitters/joiners, and — when live
// measurements are supplied — measured per-firing nanoseconds rescaled
// into the static estimate's unit so measured and unmeasured nodes stay
// comparable. Every node weighs at least 1 so zero-work endpoints still
// spread across workers.
func (p *ExecPlan) nodeWeights(g2 *ir.Graph, s2 *sched.Schedule, perFiringNS map[string]int64) []int64 {
	nodeW := make([]int64, len(g2.Nodes))
	for _, n := range g2.Nodes {
		var w int64
		switch n.Kind {
		case ir.NodeFilter:
			if n.IsSource() || n.IsSink() {
				w = 0
			} else if pf, ok := p.Work[n.Filter]; ok {
				w = pf * int64(s2.Reps[n.ID])
			} else {
				c := wfunc.EstimateKernel(n.Filter.Kernel)
				w = c.Cycles * int64(s2.Reps[n.ID])
			}
		default:
			items := int64(n.TotalPop()+n.TotalPush()) * int64(s2.Reps[n.ID]) / 2
			w = items * routerCost
		}
		if w < 1 {
			w = 1 // zero-work endpoints still spread across workers
		}
		nodeW[n.ID] = w
	}
	if len(perFiringNS) > 0 {
		var sumStatic, sumNS float64
		for _, n := range g2.Nodes {
			if n.Kind != ir.NodeFilter || n.IsSource() || n.IsSink() {
				continue
			}
			if ns, ok := perFiringNS[n.Name]; ok && ns > 0 {
				sumStatic += float64(nodeW[n.ID])
				sumNS += float64(ns) * float64(s2.Reps[n.ID])
			}
		}
		if sumStatic > 0 && sumNS > 0 {
			scale := sumStatic / sumNS
			for _, n := range g2.Nodes {
				if n.Kind != ir.NodeFilter || n.IsSource() || n.IsSink() {
					continue
				}
				if ns, ok := perFiringNS[n.Name]; ok && ns > 0 {
					w := int64(float64(ns) * float64(s2.Reps[n.ID]) * scale)
					if w < 1 {
						w = 1
					}
					nodeW[n.ID] = w
				}
			}
		}
	}
	return nodeW
}

// AssignSharded packs the rewritten graph onto shards × perShard global
// workers in two LPT levels (shards first, then each shard's local
// workers), optionally weighting by live measured work. Only lockstep
// plans shard — pipelined stage skew would need cross-shard cycle gating.
func (p *ExecPlan) AssignSharded(g2 *ir.Graph, s2 *sched.Schedule, shards, perShard int, perFiringNS map[string]int64) ([]int, error) {
	if p.Pipelined {
		return nil, fmt.Errorf("partition: pipelined plans cannot shard; use a lockstep strategy")
	}
	if shards < 1 || perShard < 1 {
		return nil, fmt.Errorf("partition: sharded assignment wants >= 1 shards and workers per shard, got %d x %d", shards, perShard)
	}
	// Level 1: nodes onto shards. AssignMeasured's LPT minimizes the
	// heaviest shard, which bounds the lockstep epoch's critical path.
	byShard := p.AssignMeasured(g2, s2, shards, perFiringNS)
	nodeW := p.nodeWeights(g2, s2, perFiringNS)

	// Level 2: within each shard, the same LPT over its own nodes.
	assign := make([]int, len(g2.Nodes))
	for sh := 0; sh < shards; sh++ {
		var ids []int
		for id, s := range byShard {
			if s == sh {
				ids = append(ids, id)
			}
		}
		sort.SliceStable(ids, func(i, j int) bool { return nodeW[ids[i]] > nodeW[ids[j]] })
		loads := make([]int64, perShard)
		for _, id := range ids {
			best := 0
			for w := 1; w < perShard; w++ {
				if loads[w] < loads[best] {
					best = w
				}
			}
			assign[id] = sh*perShard + best
			loads[best] += nodeW[id]
		}
	}
	return assign, nil
}
