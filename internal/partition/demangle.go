package partition

import (
	"streamit/internal/faults"
	"streamit/internal/ir"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

// MeasuredFromMapped translates a work profile taken on a rewritten mapped
// graph back onto the original flat graph's node names — the key space
// BuildOptions.MeasuredWorkNS consumes.
//
// A mapped engine runs the ExecPlan's rewritten program, so its profiler
// keys counters by fused-segment and fission-replica instance names
// ("lowpass+demod/f2#5"); feeding those into MeasuredWorkNS, which matches
// against the original flattening's names ("lowpass#3"), silently matches
// nothing and drops the measured-work bias. This function closes that
// loop: it resolves each rewritten instance back to its source-level
// constituents (the same base-name/constituent resolution fault plans use),
// splits each fused segment's measured time among its constituent filters
// in proportion to their static work share inside one segment firing, sums
// fission replicas, and re-expresses everything as nanoseconds per
// original-node firing.
//
// g/s are the original program's flattening and schedule, g2/s2 the
// rewritten plan's, and perFiringNS a profile of the rewritten graph (e.g.
// Profiler.WorkNSPerFiring from a mapped run). Original nodes not covered
// by the profile are absent from the result; BuildExecPlan's measured-work
// blend handles partial coverage.
func MeasuredFromMapped(g *ir.Graph, s *sched.Schedule, g2 *ir.Graph, s2 *sched.Schedule, perFiringNS map[string]int64) map[string]int64 {
	// Original filters by source-level name. Identically-named instances
	// (splitjoin branches flattened from one template) share each base's
	// attribution — they are the same kernel, so the same per-firing cost.
	type origSet struct {
		nodes   []*ir.Node
		firings float64 // per steady iteration, summed over instances
		est     float64 // static per-firing cycle estimate
	}
	origs := map[string]*origSet{}
	for _, n := range g.Nodes {
		if n.Kind != ir.NodeFilter {
			continue
		}
		pre := faults.BaseName(n.Name)
		o := origs[pre]
		if o == nil {
			est := wfunc.EstimateKernel(n.Filter.Kernel)
			o = &origSet{est: float64(est.Cycles)}
			if o.est < 1 {
				o.est = 1
			}
			origs[pre] = o
		}
		o.nodes = append(o.nodes, n)
		o.firings += float64(s.Reps[n.ID])
	}

	// Walk the rewritten graph, splitting each instance's measured time per
	// steady iteration among its constituents. Within one segment firing a
	// constituent c fires localReps(c) = origFirings(c)/segFirings times, so
	// its share of the segment's time is est(c)·origFirings(c) over the sum
	// — the segment-firing totals cancel.
	totalNS := map[string]float64{}
	for _, m := range g2.Nodes {
		if m.Kind != ir.NodeFilter {
			continue
		}
		ns, ok := perFiringNS[m.Name]
		if !ok || ns <= 0 {
			continue
		}
		parts := faults.SplitConstituents(faults.BaseName(m.Name))
		var wsum float64
		for _, pre := range parts {
			if o := origs[pre]; o != nil {
				wsum += o.est * o.firings
			}
		}
		if wsum <= 0 {
			continue
		}
		segNS := float64(ns) * float64(s2.Reps[m.ID])
		for _, pre := range parts {
			if o := origs[pre]; o != nil {
				totalNS[pre] += segNS * (o.est * o.firings) / wsum
			}
		}
	}

	// The rewritten graph's steady iteration may cover an integer multiple
	// of the original's (fission scales repetition counts). totalNS was
	// accumulated per s2-steady iteration while origFirings counts per
	// s-steady iteration, so divide the multiplier back out. Any base that
	// survived the rewrite unfused (standalone or as pure fission replicas)
	// reveals it as the ratio of its firing totals; if everything was fused
	// into one segment the multiplier is unrecoverable, but then the result
	// is a single packing unit and only ratios matter anyway.
	firings2 := map[string]float64{}
	for _, m := range g2.Nodes {
		if m.Kind != ir.NodeFilter {
			continue
		}
		if parts := faults.SplitConstituents(faults.BaseName(m.Name)); len(parts) == 1 {
			firings2[parts[0]] += float64(s2.Reps[m.ID])
		}
	}
	mult := 1.0
	for _, n := range g.Nodes {
		if n.Kind != ir.NodeFilter {
			continue
		}
		pre := faults.BaseName(n.Name)
		if o := origs[pre]; o != nil && o.firings > 0 && firings2[pre] > 0 {
			mult = firings2[pre] / o.firings
			break
		}
	}

	out := map[string]int64{}
	for pre, nsTotal := range totalNS {
		o := origs[pre]
		if o == nil || o.firings <= 0 {
			continue
		}
		per := int64(nsTotal / (o.firings * mult))
		if per < 1 {
			per = 1
		}
		for _, n := range o.nodes {
			out[n.Name] = per
		}
	}
	return out
}
