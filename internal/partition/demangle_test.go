package partition

import (
	"strings"
	"testing"

	"streamit/internal/faults"
	"streamit/internal/ir"
	"streamit/internal/sched"
)

// demanglePlan compiles a stateless pipeline and rewrites it with the given
// strategy, returning both name spaces: the original flattening (g, s) and
// the plan's rewritten flattening (g2, s2).
func demanglePlan(t *testing.T, strat Strategy, workers int) (prog *ir.Program, g *ir.Graph, s *sched.Schedule, plan *ExecPlan, g2 *ir.Graph, s2 *sched.Schedule) {
	t.Helper()
	// The stateful filter in the middle splits the stateless regions, so
	// coarse-grained fusion produces at least two separate segments (one
	// per flank) instead of swallowing the whole pipeline.
	prog = &ir.Program{Name: "dm", Top: ir.Pipe("main",
		heavyFilter("src", 4, 0, 0, 1),
		heavyFilter("a", 300, 1, 1, 1),
		heavyFilter("b", 300, 1, 1, 1),
		statefulFilter("mid", 100),
		heavyFilter("c", 300, 1, 1, 1),
		heavyFilter("d", 300, 1, 1, 1),
		heavyFilter("snk", 4, 1, 1, 0))}
	var err error
	g, err = ir.Flatten(prog)
	if err != nil {
		t.Fatal(err)
	}
	s, err = sched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	plan, err = BuildExecPlan(prog, g, s, ExecPlanOptions{Strategy: strat, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	g2, err = ir.Flatten(plan.Program)
	if err != nil {
		t.Fatal(err)
	}
	s2, err = sched.Compute(g2)
	if err != nil {
		t.Fatal(err)
	}
	return
}

// flatNames collects a graph's filter-node names.
func flatNames(g *ir.Graph) map[string]bool {
	out := map[string]bool{}
	for _, n := range g.Nodes {
		if n.Kind == ir.NodeFilter {
			out[n.Name] = true
		}
	}
	return out
}

// TestMeasuredFromMappedTaskIdentity: under StratTask the plan runs the
// original graph unrewritten, so the translation is the identity — every
// profiled name maps straight back and per-firing values are preserved.
func TestMeasuredFromMappedTaskIdentity(t *testing.T) {
	_, g, s, _, g2, s2 := demanglePlan(t, StratTask, 4)
	per := map[string]int64{}
	for _, n := range g2.Nodes {
		if n.Kind == ir.NodeFilter {
			per[n.Name] = int64(100 * (n.ID + 1))
		}
	}
	got := MeasuredFromMapped(g, s, g2, s2, per)
	if len(got) != len(per) {
		t.Fatalf("translated %d filters, profiled %d", len(got), len(per))
	}
	for name, ns := range per {
		if got[name] != ns {
			t.Errorf("%s: %d ns/firing, want identity %d", name, got[name], ns)
		}
	}
}

// TestMeasuredFromMappedRoundTrip: this is the profile→partition feedback
// regression. A mapped profile is keyed by the REWRITTEN graph's fused and
// fissioned instance names; fed raw into MeasuredWorkNS it matches nothing
// and the measured-work bias silently evaporates. Routed through
// MeasuredFromMapped it must land on the original flat names — and actually
// change the plan the next compile produces.
func TestMeasuredFromMappedRoundTrip(t *testing.T) {
	_, g, s, _, g2, s2 := demanglePlan(t, StratCoarseData, 4)
	orig := flatNames(g)

	// Precondition of the bug: the rewrite mangled at least some names, so
	// the raw profile would not land on the flat name space.
	mangled := 0
	per := map[string]int64{}
	hot := ""
	for _, n := range g2.Nodes {
		if n.Kind != ir.NodeFilter {
			continue
		}
		if !orig[n.Name] {
			mangled++
		}
		ns := int64(1000)
		for _, part := range faults.SplitConstituents(faults.BaseName(n.Name)) {
			if part == "c" {
				// Whatever instance filter c ended up in runs 50x hot.
				ns, hot = 50000, n.Name
			}
		}
		per[n.Name] = ns
	}
	if mangled == 0 {
		t.Fatal("rewrite left every name intact; round-trip test needs fusion/fission")
	}
	if hot == "" {
		t.Fatal("filter c missing from rewritten graph")
	}

	got := MeasuredFromMapped(g, s, g2, s2, per)
	if len(got) == 0 {
		t.Fatal("translation produced no measurements")
	}
	for name := range got {
		if !orig[name] {
			t.Errorf("translated key %q is not an original flat node name", name)
		}
	}

	// The raw (mangled) profile leaves the plan at its static estimates —
	// the silent no-op this fixes. The translated profile must not.
	static, err := Build(g, s)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := BuildOpts(g, s, BuildOptions{MeasuredWorkNS: per})
	if err != nil {
		t.Fatal(err)
	}
	translated, err := BuildOpts(g, s, BuildOptions{MeasuredWorkNS: got})
	if err != nil {
		t.Fatal(err)
	}
	sw, rw, tw := nodeWork(static), nodeWork(raw), nodeWork(translated)
	for name, w := range sw {
		if rw[name] != w {
			t.Errorf("raw mangled profile moved %s: %d -> %d (keys should have matched nothing)", name, w, rw[name])
		}
	}
	moved := 0
	for name, w := range sw {
		if tw[name] != w {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("translated profile left the plan identical to the static one")
	}
}

// TestMeasuredFromMappedFission: fission replicas of one filter ("x/f0",
// "x/f1", ...) fold back onto the one original filter; a uniform replica
// profile preserves the per-firing cost exactly.
func TestMeasuredFromMappedFission(t *testing.T) {
	_, g, s, _, g2, s2 := demanglePlan(t, StratFineData, 4)
	replicas := 0
	per := map[string]int64{}
	for _, n := range g2.Nodes {
		if n.Kind != ir.NodeFilter {
			continue
		}
		if strings.Contains(n.Name, "/f") {
			replicas++
		}
		per[n.Name] = 2000
	}
	if replicas == 0 {
		t.Skip("fine-grained data strategy produced no replicas here")
	}
	got := MeasuredFromMapped(g, s, g2, s2, per)
	for name := range flatNames(g) {
		ns, ok := got[name]
		if !ok {
			t.Errorf("original filter %s missing from translation", name)
			continue
		}
		if ns != 2000 {
			t.Errorf("%s: %d ns/firing, want 2000 (uniform replica profile)", name, ns)
		}
	}
}
