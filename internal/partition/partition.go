// Package partition implements the parallelization compiler of the paper's
// evaluation: static work estimation, filter fusion (coarsening), stateless
// filter fission (data parallelism, peek-aware), and the mapping strategies
// compared in the experiments —
//
//   - task parallelism (fork/join over split-join children),
//   - fine-grained data parallelism (replicate every stateless filter),
//   - coarse-grained data parallelism (fuse stateless regions, then fiss),
//   - coarse-grained software pipelining (selective fusion + bin-packing),
//   - the combination of data parallelism and software pipelining, and
//   - the prior work's space multiplexing (fuse to one filter per tile).
//
// Each mapper produces a weighted steady-state task graph plus a tile
// mapping for the machine simulator.
package partition

import (
	"fmt"
	"sort"

	"streamit/internal/ir"
	"streamit/internal/machine"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

// routerCost is the estimated cycles a splitter/joiner spends per item
// routed (address bookkeeping plus a word copy).
const routerCost = 3

// applyMeasuredWork swaps static filter work estimates for profiled ones.
// Measured nanoseconds are rescaled so that the covered filters' total
// work in cycles is unchanged — only the distribution between filters
// shifts to the measured proportions. IO endpoints keep zero work and
// unmeasured filters keep their static estimate.
func applyMeasuredWork(p *PGraph, g *ir.Graph, s *sched.Schedule, measured map[string]int64) {
	var sumStatic, sumNS int64
	for _, n := range g.Nodes {
		pn := p.nodes[n.ID]
		if n.Kind != ir.NodeFilter || pn.io {
			continue
		}
		ns, ok := measured[n.Name]
		if !ok || ns <= 0 {
			continue
		}
		sumStatic += pn.work
		sumNS += ns * int64(s.Reps[n.ID])
	}
	if sumStatic <= 0 || sumNS <= 0 {
		return
	}
	scale := float64(sumStatic) / float64(sumNS)
	for _, n := range g.Nodes {
		pn := p.nodes[n.ID]
		if n.Kind != ir.NodeFilter || pn.io {
			continue
		}
		ns, ok := measured[n.Name]
		if !ok || ns <= 0 {
			continue
		}
		w := int64(float64(ns*int64(s.Reps[n.ID])) * scale)
		if w < 1 {
			w = 1
		}
		pn.work = w
	}
}

// pnode is a mutable partitioning node: one or more original flat-graph
// nodes (fusion) or a replica slice of one (fission).
type pnode struct {
	id       int
	name     string
	work     int64 // cycles per steady iteration
	flops    int64
	stateful bool
	peeking  bool
	io       bool  // unfusable, unfissable endpoint (file reader/writer)
	router   bool  // splitter/joiner
	margin   int64 // extra words duplicated per replica when fissed
	count    int   // original filters folded in
}

// PGraph is the mutable weighted partitioning graph.
type PGraph struct {
	nodes  map[int]*pnode
	edges  map[[2]int]int64 // (src,dst) -> words per steady iteration
	nextID int
}

// BuildOptions tune how the weighted steady-state graph is derived.
type BuildOptions struct {
	// MeasuredWorkNS maps flat node names to profiled work per firing in
	// nanoseconds (from obs.Profiler.WorkNSPerFiring). When non-empty,
	// measured values replace the static IL estimate for the filters they
	// cover, rescaled so the total filter work stays on the static
	// estimator's cycle scale — the machine model's compute/communication
	// calibration is preserved while relative filter weights become
	// measured rather than estimated. Filters without a measurement keep
	// their static estimate; flops always stay static.
	MeasuredWorkNS map[string]int64
}

// Build derives the weighted steady-state graph from a scheduled flat
// graph. Work estimates come from the IL work estimator scaled by the
// steady repetition counts; splitters and joiners are charged per item
// routed.
func Build(g *ir.Graph, s *sched.Schedule) (*PGraph, error) {
	return BuildOpts(g, s, BuildOptions{})
}

// BuildOpts is Build with explicit options.
func BuildOpts(g *ir.Graph, s *sched.Schedule, opts BuildOptions) (*PGraph, error) {
	p := &PGraph{nodes: map[int]*pnode{}, edges: map[[2]int]int64{}}
	for _, n := range g.Nodes {
		pn := &pnode{id: n.ID, name: n.Name, count: 1}
		reps := int64(s.Reps[n.ID])
		switch n.Kind {
		case ir.NodeFilter:
			k := n.Filter.Kernel
			c := wfunc.EstimateKernel(k)
			pn.work = c.Cycles * reps
			pn.flops = c.Flops * reps
			pn.stateful = n.IsStateful()
			pn.peeking = n.IsPeeking()
			pn.margin = int64(k.Peek - k.Pop)
			pn.io = n.IsSource() || n.IsSink()
			if pn.io {
				// File readers/writers stream from the DRAM ports in the
				// paper's setup; they are not mapped to compute tiles and
				// contribute traffic but no cycles.
				pn.work, pn.flops = 0, 0
				pn.stateful = false
			}
		default:
			items := int64(n.TotalPop()+n.TotalPush()) * reps / 2
			pn.work = items * routerCost
			pn.router = true
		}
		p.nodes[n.ID] = pn
		if n.ID >= p.nextID {
			p.nextID = n.ID + 1
		}
	}
	if len(opts.MeasuredWorkNS) > 0 {
		applyMeasuredWork(p, g, s, opts.MeasuredWorkNS)
	}
	for _, e := range g.Edges {
		items := int64(s.ItemsPerSteady(e))
		p.edges[[2]int{e.Src.ID, e.Dst.ID}] += items
	}
	// Collapse feedback loops into single (stateful) nodes: the weighted
	// task graph must be acyclic, and a loop's iterations are serialized by
	// its data dependence anyway, so it executes on one tile.
	alias := map[int]int{}
	find := func(id int) int {
		for {
			a, ok := alias[id]
			if !ok {
				return id
			}
			id = a
		}
	}
	for _, e := range g.Edges {
		if !e.Back {
			continue
		}
		members := []int{e.Dst.ID, e.Src.ID}
		for _, n := range g.Nodes {
			if n.ID == e.Dst.ID || n.ID == e.Src.ID {
				continue
			}
			if g.Downstream(e.Dst, n) && g.Downstream(n, e.Src) {
				members = append(members, n.ID)
			}
		}
		target := find(members[0])
		for _, id := range members[1:] {
			b := find(id)
			if b == target {
				continue
			}
			p.absorb(target, b)
			alias[b] = target
		}
		p.nodes[target].stateful = true
		p.nodes[target].name = "loop(" + p.nodes[target].name + ")"
	}
	return p, nil
}

// absorb merges node b into node a unconditionally, dropping any resulting
// self edges (used to collapse feedback cycles).
func (p *PGraph) absorb(a, b int) {
	na, nb := p.nodes[a], p.nodes[b]
	na.work += nb.work
	na.flops += nb.flops
	na.stateful = na.stateful || nb.stateful
	na.peeking = na.peeking || nb.peeking
	na.io = na.io || nb.io
	na.router = na.router && nb.router
	na.count += nb.count
	for k, v := range p.edges {
		if k[0] != b && k[1] != b {
			continue
		}
		delete(p.edges, k)
		src, dst := k[0], k[1]
		if src == b {
			src = a
		}
		if dst == b {
			dst = a
		}
		if src != dst {
			p.edges[[2]int{src, dst}] += v
		}
	}
	delete(p.nodes, b)
}

// scaleSteady multiplies every node's work and every edge's traffic by f:
// the graph then represents f original steady-state iterations as one
// macro-iteration, so fission always has whole items to distribute.
func (p *PGraph) scaleSteady(f int64) {
	for _, n := range p.nodes {
		n.work *= f
		n.flops *= f
	}
	for k := range p.edges {
		p.edges[k] *= f
	}
}

// clone deep-copies the graph so each mapper transforms independently.
func (p *PGraph) clone() *PGraph {
	c := &PGraph{nodes: map[int]*pnode{}, edges: map[[2]int]int64{}, nextID: p.nextID}
	for id, n := range p.nodes {
		cp := *n
		c.nodes[id] = &cp
	}
	for k, v := range p.edges {
		c.edges[k] = v
	}
	return c
}

// TotalWork sums compute cycles per steady iteration.
func (p *PGraph) TotalWork() int64 {
	var t int64
	for _, n := range p.nodes {
		t += n.work
	}
	return t
}

// StatefulWork returns the fraction of steady-state work performed by
// stateful filters (the paper's final benchmark-table column).
func (p *PGraph) StatefulWork() float64 {
	var t, s int64
	for _, n := range p.nodes {
		if n.router || n.io {
			continue
		}
		t += n.work
		if n.stateful {
			s += n.work
		}
	}
	if t == 0 {
		return 0
	}
	return float64(s) / float64(t)
}

// CompCommRatio returns the static computation-to-communication ratio:
// total estimated cycles divided by items communicated per steady state.
func (p *PGraph) CompCommRatio() float64 {
	var comm int64
	for _, v := range p.edges {
		comm += v
	}
	if comm == 0 {
		return 0
	}
	return float64(p.TotalWork()) / float64(comm)
}

func (p *PGraph) outEdges(id int) [][2]int {
	var out [][2]int
	for k := range p.edges {
		if k[0] == id {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][1] < out[j][1] })
	return out
}

func (p *PGraph) inEdges(id int) [][2]int {
	var in [][2]int
	for k := range p.edges {
		if k[1] == id {
			in = append(in, k)
		}
	}
	sort.Slice(in, func(i, j int) bool { return in[i][0] < in[j][0] })
	return in
}

// reachable reports whether dst is reachable from src, optionally skipping
// the direct edge (src,dst).
func (p *PGraph) reachable(src, dst int, skipDirect bool) bool {
	seen := map[int]bool{}
	var stack []int
	push := func(id int) {
		if !seen[id] {
			seen[id] = true
			stack = append(stack, id)
		}
	}
	for k := range p.edges {
		if k[0] == src {
			if k[1] == dst && skipDirect {
				continue
			}
			push(k[1])
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == dst {
			return true
		}
		for k := range p.edges {
			if k[0] == n {
				push(k[1])
			}
		}
	}
	return false
}

// fuse merges node b into node a (they must be connected and fusion must
// not create a cycle). Internal traffic disappears (it becomes local
// buffer reuse inside the fused filter).
func (p *PGraph) fuse(a, b int) error {
	na, nb := p.nodes[a], p.nodes[b]
	if na == nil || nb == nil {
		return fmt.Errorf("partition: fusing missing node")
	}
	// Cycle check: any indirect path between them forbids fusion.
	if p.reachable(a, b, true) || p.reachable(b, a, true) {
		return fmt.Errorf("partition: fusing %s and %s would create a cycle", na.name, nb.name)
	}
	na.work += nb.work
	na.flops += nb.flops
	na.stateful = na.stateful || nb.stateful
	na.peeking = na.peeking || nb.peeking
	na.io = na.io || nb.io
	na.router = na.router && nb.router
	na.margin += nb.margin
	na.count += nb.count
	na.name = na.name + "+" + nb.name
	for k, v := range p.edges {
		if k[0] == b {
			delete(p.edges, k)
			if k[1] != a {
				p.edges[[2]int{a, k[1]}] += v
			}
		} else if k[1] == b {
			delete(p.edges, k)
			if k[0] != a {
				p.edges[[2]int{k[0], a}] += v
			}
		}
	}
	delete(p.nodes, b)
	return nil
}

// fissable reports whether a node can be data-parallelized.
func (n *pnode) fissable() bool {
	return !n.stateful && !n.io && !n.router && n.work > 0
}

// fiss replaces node id with k replicas, each doing 1/k of the work.
// Producers scatter to all replicas and consumers gather from all; peeking
// nodes pay the duplicated window margin on each replica's input.
func (p *PGraph) fiss(id, k int) error {
	n := p.nodes[id]
	if n == nil {
		return fmt.Errorf("partition: fissing missing node %d", id)
	}
	if !n.fissable() {
		return fmt.Errorf("partition: node %s is not fissable", n.name)
	}
	if k <= 1 {
		return nil
	}
	ins := p.inEdges(id)
	outs := p.outEdges(id)
	for r := 0; r < k; r++ {
		rid := p.nextID
		p.nextID++
		p.nodes[rid] = &pnode{
			id: rid, name: fmt.Sprintf("%s/f%d", n.name, r),
			work: n.work / int64(k), flops: n.flops / int64(k),
			margin: n.margin, count: 0,
		}
		for _, e := range ins {
			p.edges[[2]int{e[0], rid}] = p.edges[e]/int64(k) + n.margin
		}
		for _, e := range outs {
			p.edges[[2]int{rid, e[1]}] = p.edges[e] / int64(k)
		}
	}
	for _, e := range ins {
		delete(p.edges, e)
	}
	for _, e := range outs {
		delete(p.edges, e)
	}
	delete(p.nodes, id)
	return nil
}

// sortedIDs returns node IDs in ascending order for determinism.
func (p *PGraph) sortedIDs() []int {
	ids := make([]int, 0, len(p.nodes))
	for id := range p.nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// emit converts the partitioning graph into a machine weighted graph,
// returning also the id->index map.
func (p *PGraph) emit() (*machine.WGraph, map[int]int, error) {
	g := &machine.WGraph{}
	idx := map[int]int{}
	for _, id := range p.sortedIDs() {
		n := p.nodes[id]
		wn := g.AddNode(n.name, n.work, n.flops, n.stateful)
		idx[id] = wn.ID
	}
	keys := make([][2]int, 0, len(p.edges))
	for k := range p.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		g.AddEdge(g.Nodes[idx[k[0]]], g.Nodes[idx[k[1]]], p.edges[k])
	}
	if _, err := g.TopoOrder(); err != nil {
		return nil, nil, err
	}
	return g, idx, nil
}
