package partition

import (
	"fmt"
	"sort"

	"streamit/internal/machine"
)

// Strategy names the mapping strategies of the evaluation.
type Strategy string

// The compared strategies.
const (
	StratSequential Strategy = "sequential"
	StratTask       Strategy = "task"
	StratFineData   Strategy = "fine-grained data"
	StratCoarseData Strategy = "task+data"
	StratSWP        Strategy = "task+swp"
	StratCombined   Strategy = "task+data+swp"
	StratSpace      Strategy = "space (prior work)"
)

// Pipelined reports whether the strategy produces stage-assigned
// software-pipelined execution plans (BuildExecPlan sets ExecPlan.Pipelined
// and the mapped engine runs stage-skewed macro-cycles).
func (s Strategy) Pipelined() bool { return s == StratSWP || s == StratCombined }

// Plan is a mapped, weighted steady-state graph ready for simulation.
type Plan struct {
	Strategy Strategy
	Graph    *machine.WGraph
	Mapping  *machine.Mapping
	// Scale is the number of original steady iterations represented by one
	// macro-iteration of Graph (fission-based mappers scale up so replicas
	// receive whole items).
	Scale int
}

// Simulate runs the plan on the machine and normalizes the result back to
// original steady-state iterations.
func (pl *Plan) Simulate(cfg machine.Config, iters int) (*machine.Result, error) {
	res, err := machine.Simulate(pl.Graph, pl.Mapping, cfg, iters)
	if err != nil {
		return nil, err
	}
	if pl.Scale > 1 {
		res.CyclesPerIter /= float64(pl.Scale)
		res.ItersPerSec *= float64(pl.Scale)
	}
	return res, nil
}

// Map applies a strategy to the partitioning graph for a machine with the
// given tile count.
func (p *PGraph) Map(s Strategy, tiles int) (*Plan, error) {
	switch s {
	case StratSequential:
		return p.sequential()
	case StratTask:
		return p.taskParallel(tiles)
	case StratFineData:
		return p.fineGrainedData(tiles)
	case StratCoarseData:
		return p.coarseData(tiles)
	case StratSWP:
		return p.softwarePipelined(tiles)
	case StratCombined:
		return p.combined(tiles)
	case StratSpace:
		return p.spaceMultiplexed(tiles)
	}
	return nil, errUnknownStrategy(s)
}

type errUnknownStrategy Strategy

func (e errUnknownStrategy) Error() string { return "partition: unknown strategy " + string(e) }

// sequential places every node on tile 0 (the single-core baseline).
func (p *PGraph) sequential() (*Plan, error) {
	g, _, err := p.clone().emit()
	if err != nil {
		return nil, err
	}
	st, err := machine.Stages(g)
	if err != nil {
		return nil, err
	}
	m := &machine.Mapping{
		Tile:  make([]int, len(g.Nodes)),
		Stage: st,
		Mode:  machine.ModePipelined,
		Comm:  machine.CommNoC,
	}
	return &Plan{Strategy: StratSequential, Graph: g, Mapping: m}, nil
}

// taskParallel exploits only fork/join parallelism across split-join
// children: the graph is untransformed, stages execute sequentially with
// barriers, and nodes within a stage are load-balanced across tiles.
func (p *PGraph) taskParallel(tiles int) (*Plan, error) {
	g, _, err := p.clone().emit()
	if err != nil {
		return nil, err
	}
	m, err := barrieredLPT(g, tiles)
	if err != nil {
		return nil, err
	}
	return &Plan{Strategy: StratTask, Graph: g, Mapping: m}, nil
}

// fineGrainedData replicates every stateless filter across all tiles
// without coarsening first — the strawman showing that fission granularity
// must account for synchronization.
func (p *PGraph) fineGrainedData(tiles int) (*Plan, error) {
	c := p.clone()
	c.scaleSteady(int64(8 * tiles))
	for _, id := range c.sortedIDs() {
		n := c.nodes[id]
		if n.fissable() {
			if err := c.fiss(id, tiles); err != nil {
				return nil, err
			}
		}
	}
	g, _, err := c.emit()
	if err != nil {
		return nil, err
	}
	m, err := barrieredLPT(g, tiles)
	if err != nil {
		return nil, err
	}
	return &Plan{Strategy: StratFineData, Graph: g, Mapping: m, Scale: 8 * tiles}, nil
}

// coarsen fuses contiguous stateless, non-peeking, non-I/O regions so that
// later fission operates at coarse granularity (reducing synchronization).
func (p *PGraph) coarsen() {
	fusable := func(n *pnode) bool {
		return n != nil && !n.stateful && !n.peeking && !n.io
	}
	for {
		progress := false
		for _, id := range p.sortedIDs() {
			n := p.nodes[id]
			if !fusable(n) {
				continue
			}
			for _, e := range p.outEdges(id) {
				m := p.nodes[e[1]]
				if !fusable(m) {
					continue
				}
				if err := p.fuse(id, e[1]); err == nil {
					progress = true
					break
				}
			}
			if progress {
				break
			}
		}
		if !progress {
			return
		}
	}
}

// coarseData is the paper's main technique: coarsen stateless regions, then
// fiss every fissable node across the tiles; barriered execution.
func (p *PGraph) coarseData(tiles int) (*Plan, error) {
	c := p.clone()
	c.scaleSteady(int64(8 * tiles))
	c.coarsen()
	if err := c.fissAll(tiles); err != nil {
		return nil, err
	}
	g, _, err := c.emit()
	if err != nil {
		return nil, err
	}
	m, err := barrieredLPT(g, tiles)
	if err != nil {
		return nil, err
	}
	return &Plan{Strategy: StratCoarseData, Graph: g, Mapping: m, Scale: 8 * tiles}, nil
}

// fissAll fisses every fissable node whose work justifies replication.
func (p *PGraph) fissAll(tiles int) error {
	total := p.TotalWork()
	for _, id := range p.sortedIDs() {
		n := p.nodes[id]
		if n == nil || !n.fissable() {
			continue
		}
		// Judicious fission: replicate so each replica still carries
		// meaningful work relative to the synchronization it adds.
		k := tiles
		if n.work < total/int64(4*tiles) {
			continue // too small to be worth scattering
		}
		for k > 1 && n.work/int64(k) < 256 {
			k /= 2
		}
		if k > 1 {
			if err := p.fiss(id, k); err != nil {
				return err
			}
		}
	}
	return nil
}

// softwarePipelined implements coarse-grained software pipelining:
// selective fusion down to a manageable node count, then greedy
// load-balanced bin-packing ignoring dependences (the steady state is
// dependence-free across iterations), executing in pipelined mode with
// DRAM-buffered channels.
func (p *PGraph) softwarePipelined(tiles int) (*Plan, error) {
	c := p.clone()
	c.selectiveFusion(4 * tiles)
	g, _, err := c.emit()
	if err != nil {
		return nil, err
	}
	m, err := packedPipelined(g, tiles, machine.CommDRAM)
	if err != nil {
		return nil, err
	}
	return &Plan{Strategy: StratSWP, Graph: g, Mapping: m}, nil
}

// combined applies coarse-grained data parallelism and then software
// pipelines the result.
func (p *PGraph) combined(tiles int) (*Plan, error) {
	c := p.clone()
	c.scaleSteady(int64(8 * tiles))
	c.coarsen()
	if err := c.fissAll(tiles); err != nil {
		return nil, err
	}
	g, _, err := c.emit()
	if err != nil {
		return nil, err
	}
	m, err := packedPipelined(g, tiles, machine.CommDRAM)
	if err != nil {
		return nil, err
	}
	return &Plan{Strategy: StratCombined, Graph: g, Mapping: m, Scale: 8 * tiles}, nil
}

// selectiveFusion greedily fuses the lightest chain-connected pairs until
// at most target nodes remain (reducing synchronization while keeping
// load-balance options).
func (p *PGraph) selectiveFusion(target int) {
	for len(p.nodes) > target {
		// Find the chain edge (single-out producer, single-in consumer)
		// whose fusion yields the lightest combined node.
		bestA, bestB := -1, -1
		var bestW int64
		for _, id := range p.sortedIDs() {
			n := p.nodes[id]
			if n.io {
				continue
			}
			outs := p.outEdges(id)
			if len(outs) != 1 {
				continue
			}
			b := outs[0][1]
			m := p.nodes[b]
			if m.io || len(p.inEdges(b)) != 1 {
				continue
			}
			w := n.work + m.work
			if bestA == -1 || w < bestW {
				bestA, bestB, bestW = id, b, w
			}
		}
		if bestA == -1 {
			return
		}
		if err := p.fuse(bestA, bestB); err != nil {
			return
		}
	}
}

// spaceMultiplexed reproduces the prior work's backend: fuse the graph to
// at most one node per tile (contiguous regions), place one per tile, and
// stream between neighbours over the NoC.
func (p *PGraph) spaceMultiplexed(tiles int) (*Plan, error) {
	c := p.clone()
	c.selectiveFusion(tiles)
	// selectiveFusion only merges chains. The prior-work partitioner works
	// on the structured hierarchy: when a split-join is too wide, adjacent
	// sibling branches get fused together — sacrificing load balance, since
	// a fused pair then does twice the work of its siblings. Emulate that
	// by merging the lightest sibling pair first, falling back to any legal
	// edge-connected fusion.
	for len(c.nodes) > tiles {
		if c.fuseLightestSiblings() {
			continue
		}
		if !c.fuseAnyLegal() {
			break
		}
	}
	g, _, err := c.emit()
	if err != nil {
		return nil, err
	}
	st, err := machine.Stages(g)
	if err != nil {
		return nil, err
	}
	m := &machine.Mapping{
		Tile:  make([]int, len(g.Nodes)),
		Stage: st,
		Mode:  machine.ModePipelined,
		Comm:  machine.CommNoC,
	}
	// Layout: order nodes topologically and snake them across the grid so
	// pipeline neighbours are mesh neighbours.
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	for i, n := range order {
		m.Tile[n.ID] = snakeTile(i%tiles, tiles)
	}
	return &Plan{Strategy: StratSpace, Graph: g, Mapping: m}, nil
}

// fuseAnyLegal fuses the lightest edge-connected pair that does not create
// a cycle; returns false when none exists.
func (p *PGraph) fuseAnyLegal() bool {
	type cand struct {
		a, b int
		w    int64
	}
	var cands []cand
	for k := range p.edges {
		a, b := p.nodes[k[0]], p.nodes[k[1]]
		if a == nil || b == nil {
			continue
		}
		cands = append(cands, cand{k[0], k[1], a.work + b.work})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w < cands[j].w
		}
		if cands[i].a != cands[j].a {
			return cands[i].a < cands[j].a
		}
		return cands[i].b < cands[j].b
	})
	for _, c := range cands {
		if err := p.fuse(c.a, c.b); err == nil {
			return true
		}
	}
	return false
}

// snakeTile maps a linear position to a boustrophedon path over the 4xN
// grid so consecutive positions are mesh neighbours.
func snakeTile(pos, tiles int) int {
	cols := 4
	rows := tiles / cols
	if rows == 0 {
		return pos % tiles
	}
	r := pos / cols
	c := pos % cols
	if r%2 == 1 {
		c = cols - 1 - c
	}
	if r >= rows {
		r = rows - 1
	}
	return r*cols + c
}

// barrieredLPT builds a fork/join mapping: stages are topo levels; within
// each stage, nodes are assigned longest-processing-time-first to the
// least-loaded tile.
func barrieredLPT(g *machine.WGraph, tiles int) (*machine.Mapping, error) {
	st, err := machine.Stages(g)
	if err != nil {
		return nil, err
	}
	// Fork/join execution approximates a thread model: stage results are
	// exchanged through memory, and the barrier prevents overlapping the
	// stores and loads with compute (unlike software pipelining, which
	// decouples them across iterations).
	m := &machine.Mapping{
		Tile:  make([]int, len(g.Nodes)),
		Stage: st,
		Mode:  machine.ModeBarriered,
		Comm:  machine.CommDRAM,
	}
	maxStage := 0
	for _, s := range st {
		if s > maxStage {
			maxStage = s
		}
	}
	for s := 0; s <= maxStage; s++ {
		var nodes []*machine.WNode
		for _, n := range g.Nodes {
			if st[n.ID] == s {
				nodes = append(nodes, n)
			}
		}
		sort.Slice(nodes, func(i, j int) bool {
			if nodes[i].Work != nodes[j].Work {
				return nodes[i].Work > nodes[j].Work
			}
			return nodes[i].ID < nodes[j].ID
		})
		load := make([]int64, tiles)
		for _, n := range nodes {
			best := 0
			for t := 1; t < tiles; t++ {
				if load[t] < load[best] {
					best = t
				}
			}
			m.Tile[n.ID] = best
			load[best] += n.Work
		}
	}
	return m, nil
}

// packedPipelined builds a software-pipelined mapping: all nodes greedily
// bin-packed by work (dependences don't constrain the steady state), with
// the chosen communication substrate.
func packedPipelined(g *machine.WGraph, tiles int, comm machine.CommKind) (*machine.Mapping, error) {
	st, err := machine.Stages(g)
	if err != nil {
		return nil, err
	}
	m := &machine.Mapping{
		Tile:  make([]int, len(g.Nodes)),
		Stage: st,
		Mode:  machine.ModePipelined,
		Comm:  comm,
	}
	nodes := append([]*machine.WNode(nil), g.Nodes...)
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Work != nodes[j].Work {
			return nodes[i].Work > nodes[j].Work
		}
		return nodes[i].ID < nodes[j].ID
	})
	load := make([]int64, tiles)
	for _, n := range nodes {
		best := 0
		for t := 1; t < tiles; t++ {
			if load[t] < load[best] {
				best = t
			}
		}
		m.Tile[n.ID] = best
		load[best] += n.Work
	}
	return m, nil
}

// fuseLightestSiblings merges the lightest pair of sibling nodes — nodes
// sharing identical producer and consumer sets (parallel branches of the
// same split-join). Parallel siblings cannot form a cycle, so they are
// absorbed unconditionally. Returns false when no siblings exist.
func (p *PGraph) fuseLightestSiblings() bool {
	type key struct{ ins, outs string }
	groups := map[key][]int{}
	for _, id := range p.sortedIDs() {
		n := p.nodes[id]
		if n.io {
			continue
		}
		var ins, outs string
		for _, e := range p.inEdges(id) {
			ins += fmt.Sprintf("%d,", e[0])
		}
		for _, e := range p.outEdges(id) {
			outs += fmt.Sprintf("%d,", e[1])
		}
		if ins == "" && outs == "" {
			continue
		}
		groups[key{ins, outs}] = append(groups[key{ins, outs}], id)
	}
	bestA, bestB := -1, -1
	var bestW int64
	for _, ids := range groups {
		if len(ids) < 2 {
			continue
		}
		sort.Slice(ids, func(i, j int) bool { return p.nodes[ids[i]].work < p.nodes[ids[j]].work })
		a, b := ids[0], ids[1]
		w := p.nodes[a].work + p.nodes[b].work
		if bestA == -1 || w < bestW {
			bestA, bestB, bestW = a, b, w
		}
	}
	if bestA == -1 {
		return false
	}
	p.absorb(bestA, bestB)
	return true
}
