package partition

import (
	"testing"

	"streamit/internal/ir"
	"streamit/internal/sched"
)

// measuredPipe builds src -> a -> b -> snk where a and b have identical
// static work, then returns graph + schedule for measured-work overrides.
func measuredPipe(t *testing.T) (*ir.Graph, *sched.Schedule) {
	t.Helper()
	g, err := ir.FlattenStream("mw", ir.Pipe("p",
		heavyFilter("src", 100, 0, 0, 1),
		heavyFilter("a", 200, 0, 1, 1),
		heavyFilter("b", 200, 0, 1, 1),
		heavyFilter("snk", 100, 0, 1, 0)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, s
}

// nodeWork indexes per-node work by name.
func nodeWork(p *PGraph) map[string]int64 {
	out := map[string]int64{}
	for _, pn := range p.nodes {
		out[pn.name] = pn.work
	}
	return out
}

// TestMeasuredWorkReshapesProportions: profiled timings that say filter a
// is 3x filter b must shift the work split to 3:1 while keeping the
// covered filters' combined cycle total on the static scale, so the
// machine model's compute/communication calibration is not disturbed.
func TestMeasuredWorkReshapesProportions(t *testing.T) {
	g, s := measuredPipe(t)
	static, err := Build(g, s)
	if err != nil {
		t.Fatal(err)
	}
	sw := nodeWork(static)
	if sw["a"] != sw["b"] {
		t.Fatalf("static baseline skewed: a=%d b=%d", sw["a"], sw["b"])
	}

	measured, err := BuildOpts(g, s, BuildOptions{
		MeasuredWorkNS: map[string]int64{"a": 3000, "b": 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	mw := nodeWork(measured)
	ratio := float64(mw["a"]) / float64(mw["b"])
	if ratio < 2.9 || ratio > 3.1 {
		t.Errorf("a/b work ratio = %.2f, want ~3.0", ratio)
	}
	// Covered total preserved (integer truncation allows tiny slack).
	staticSum := sw["a"] + sw["b"]
	measSum := mw["a"] + mw["b"]
	if diff := staticSum - measSum; diff < -2 || diff > 2 {
		t.Errorf("covered work total drifted: static %d, measured %d", staticSum, measSum)
	}
}

// TestMeasuredWorkPartialCoverage: filters without a measurement keep the
// static estimate, and IO endpoints stay at zero work.
func TestMeasuredWorkPartialCoverage(t *testing.T) {
	g, s := measuredPipe(t)
	static, err := Build(g, s)
	if err != nil {
		t.Fatal(err)
	}
	sw := nodeWork(static)

	p, err := BuildOpts(g, s, BuildOptions{
		MeasuredWorkNS: map[string]int64{"a": 5000, "src": 9999, "snk": 9999},
	})
	if err != nil {
		t.Fatal(err)
	}
	mw := nodeWork(p)
	if mw["b"] != sw["b"] {
		t.Errorf("unmeasured filter b changed: %d -> %d", sw["b"], mw["b"])
	}
	if mw["src"] != 0 || mw["snk"] != 0 {
		t.Errorf("io endpoints gained work: src=%d snk=%d", mw["src"], mw["snk"])
	}
	// a is the only covered filter, so rescaling maps it back onto its own
	// static total.
	if mw["a"] != sw["a"] {
		t.Errorf("sole covered filter a should keep its static total: %d -> %d", sw["a"], mw["a"])
	}
}

// TestMeasuredWorkIgnoredWhenUseless: empty maps, zero values, and names
// that match nothing leave the static estimates untouched.
func TestMeasuredWorkIgnoredWhenUseless(t *testing.T) {
	g, s := measuredPipe(t)
	static, err := Build(g, s)
	if err != nil {
		t.Fatal(err)
	}
	sw := nodeWork(static)
	for _, m := range []map[string]int64{
		nil,
		{},
		{"a": 0, "b": -5},
		{"no-such-node": 123},
	} {
		p, err := BuildOpts(g, s, BuildOptions{MeasuredWorkNS: m})
		if err != nil {
			t.Fatal(err)
		}
		mw := nodeWork(p)
		for name, w := range sw {
			if mw[name] != w {
				t.Errorf("measured %v: node %s work %d, want static %d", m, name, mw[name], w)
			}
		}
	}
}

// TestMeasuredWorkTotalStable: the graph-wide TotalWork must not move when
// measurements only redistribute filter weights (routers keep their static
// charge, so total work stays comparable across Build variants).
func TestMeasuredWorkTotalStable(t *testing.T) {
	g, s := measuredPipe(t)
	static, err := Build(g, s)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildOpts(g, s, BuildOptions{
		MeasuredWorkNS: map[string]int64{"a": 7000, "b": 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := static.TotalWork() - p.TotalWork(); d < -2 || d > 2 {
		t.Errorf("TotalWork drifted by %d (static %d, measured %d)", d, static.TotalWork(), p.TotalWork())
	}
}
