package partition

import (
	"testing"

	"streamit/internal/ir"
	"streamit/internal/machine"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

// heavyFilter builds a filter with a tunable amount of per-firing work.
func heavyFilter(name string, loops int, peek, pop, push int) *ir.Filter {
	b := wfunc.NewKernel(name, peek, pop, push)
	i := b.Local("i")
	s := b.Local("s")
	var body []wfunc.Stmt
	body = append(body, wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(loops),
		wfunc.Set(s, wfunc.AddX(s, wfunc.MulX(i, wfunc.C(1.0001))))))
	for j := 0; j < pop; j++ {
		body = append(body, wfunc.Pop1())
	}
	for j := 0; j < push; j++ {
		body = append(body, wfunc.Push1(s))
	}
	b.WorkBody(body...)
	in, out := ir.TypeFloat, ir.TypeFloat
	if pop == 0 && peek == 0 {
		in = ir.TypeVoid
	}
	if push == 0 {
		out = ir.TypeVoid
	}
	return &ir.Filter{Kernel: b.Build(), In: in, Out: out}
}

func statefulFilter(name string, loops int) *ir.Filter {
	b := wfunc.NewKernel(name, 1, 1, 1)
	f := b.Field("acc", 0)
	i := b.Local("i")
	b.WorkBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(loops),
			wfunc.SetF(f, wfunc.AddX(f, wfunc.C(0.5)))),
		wfunc.Push1(wfunc.AddX(wfunc.PopE(), f)),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

func buildP(t *testing.T, s ir.Stream) *PGraph {
	t.Helper()
	g, err := ir.FlattenStream("t", s)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(g, sc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func simulate(t *testing.T, plan *Plan) *machine.Result {
	t.Helper()
	res, err := plan.Simulate(machine.DefaultConfig(), 24)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// statelessChain is an 8-filter stateless pipeline with a light source and
// sink.
func statelessChain(t *testing.T) *PGraph {
	children := []ir.Stream{heavyFilter("src", 4, 0, 0, 1)}
	for i := 0; i < 8; i++ {
		children = append(children, heavyFilter(name(i), 400, 1, 1, 1))
	}
	children = append(children, heavyFilter("snk", 4, 1, 1, 0))
	return buildP(t, ir.Pipe("chain", children...))
}

func name(i int) string { return string(rune('A' + i)) }

func TestSequentialVsCoarseData(t *testing.T) {
	p := statelessChain(t)
	seq, err := p.Map(StratSequential, 16)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := p.Map(StratCoarseData, 16)
	if err != nil {
		t.Fatal(err)
	}
	seqRes := simulate(t, seq)
	cdRes := simulate(t, cd)
	sp := cdRes.Speedup(seqRes)
	if sp < 6 {
		t.Errorf("coarse data parallelism speedup = %.2f, want >= 6 on a stateless chain", sp)
	}
}

func TestTaskParallelismPoorOnChain(t *testing.T) {
	p := statelessChain(t)
	seq, _ := p.Map(StratSequential, 16)
	task, err := p.Map(StratTask, 16)
	if err != nil {
		t.Fatal(err)
	}
	sp := simulate(t, task).Speedup(simulate(t, seq))
	if sp > 1.5 {
		t.Errorf("task parallelism on a pure chain should not speed up, got %.2f", sp)
	}
}

func TestTaskParallelismGoodOnWideSplitJoin(t *testing.T) {
	var branches []ir.Stream
	for i := 0; i < 16; i++ {
		branches = append(branches, heavyFilter("b"+name(i), 500, 1, 1, 1))
	}
	sj := ir.SJ("wide", ir.RoundRobin(), ir.RoundRobin(), branches...)
	p := buildP(t, ir.Pipe("main",
		heavyFilter("src", 2, 0, 0, 16), sj, heavyFilter("snk", 2, 16, 16, 0)))
	seq, _ := p.Map(StratSequential, 16)
	task, err := p.Map(StratTask, 16)
	if err != nil {
		t.Fatal(err)
	}
	sp := simulate(t, task).Speedup(simulate(t, seq))
	if sp < 6 {
		t.Errorf("task parallelism on a 16-wide splitjoin speedup = %.2f, want >= 6", sp)
	}
}

func TestStatefulNotFissed(t *testing.T) {
	p := buildP(t, ir.Pipe("main",
		heavyFilter("src", 2, 0, 0, 1),
		statefulFilter("state", 800),
		heavyFilter("snk", 2, 1, 1, 0)))
	cd, err := p.Map(StratCoarseData, 16)
	if err != nil {
		t.Fatal(err)
	}
	// The stateful node must survive unreplicated.
	found := 0
	for _, n := range cd.Graph.Nodes {
		if n.Stateful {
			found++
		}
	}
	if found != 1 {
		t.Errorf("expected exactly 1 stateful node after mapping, got %d", found)
	}
	// And data parallelism cannot beat ~1x on a stateful bottleneck.
	seq, _ := p.Map(StratSequential, 16)
	sp := simulate(t, cd).Speedup(simulate(t, seq))
	if sp > 2.0 {
		t.Errorf("stateful bottleneck speedup = %.2f, should stay near 1", sp)
	}
}

func TestSWPBalancesStatefulPipeline(t *testing.T) {
	// Pipeline of equally-heavy stateful filters: data parallelism is
	// paralyzed but software pipelining spreads the stages across tiles.
	children := []ir.Stream{heavyFilter("src", 2, 0, 0, 1)}
	for i := 0; i < 8; i++ {
		children = append(children, statefulFilter("s"+name(i), 500))
	}
	children = append(children, heavyFilter("snk", 2, 1, 1, 0))
	p := buildP(t, ir.Pipe("main", children...))
	seq, _ := p.Map(StratSequential, 16)
	seqRes := simulate(t, seq)
	cd, _ := p.Map(StratCoarseData, 16)
	swp, err := p.Map(StratSWP, 16)
	if err != nil {
		t.Fatal(err)
	}
	cdSp := simulate(t, cd).Speedup(seqRes)
	swpSp := simulate(t, swp).Speedup(seqRes)
	if swpSp < 4 {
		t.Errorf("SWP speedup on stateful pipeline = %.2f, want >= 4", swpSp)
	}
	if swpSp < cdSp {
		t.Errorf("SWP (%.2f) should beat data parallelism (%.2f) on all-stateful pipelines", swpSp, cdSp)
	}
}

func TestFeedbackLoopCollapsed(t *testing.T) {
	body := heavyFilter("body", 100, 2, 2, 2)
	fl := &ir.FeedbackLoop{
		Name:  "loop",
		Join:  ir.RoundRobin(1, 1),
		Body:  body,
		Split: ir.RoundRobin(1, 1),
		Delay: 1,
	}
	p := buildP(t, ir.Pipe("main",
		heavyFilter("src", 2, 0, 0, 1), fl, heavyFilter("snk", 2, 1, 1, 0)))
	// The loop must be one stateful node; the emitted graph is acyclic.
	plan, err := p.Map(StratSequential, 16)
	if err != nil {
		t.Fatal(err)
	}
	stateful := 0
	for _, n := range plan.Graph.Nodes {
		if n.Stateful {
			stateful++
		}
	}
	if stateful != 1 {
		t.Errorf("expected collapsed loop node, got %d stateful nodes", stateful)
	}
}

func TestPeekingFissionPaysDuplication(t *testing.T) {
	// A peeking FIR can be fissed, but replicas receive duplicated window
	// margins: total traffic grows.
	p := buildP(t, ir.Pipe("main",
		heavyFilter("src", 2, 0, 0, 1),
		heavyFilter("fir", 600, 32, 1, 1),
		heavyFilter("snk", 2, 1, 1, 0)))
	fine, err := p.Map(StratFineData, 16)
	if err != nil {
		t.Fatal(err)
	}
	var traffic int64
	for _, e := range fine.Graph.Edges {
		traffic += e.Items
	}
	var base int64
	seq, _ := p.Map(StratSequential, 16)
	for _, e := range seq.Graph.Edges {
		base += e.Items
	}
	if traffic <= base {
		t.Errorf("fissed peeking traffic %d should exceed base %d", traffic, base)
	}
}

func TestCombinedAtLeastAsGoodAsData(t *testing.T) {
	p := statelessChain(t)
	seq, _ := p.Map(StratSequential, 16)
	seqRes := simulate(t, seq)
	cd, _ := p.Map(StratCoarseData, 16)
	comb, err := p.Map(StratCombined, 16)
	if err != nil {
		t.Fatal(err)
	}
	cdSp := simulate(t, cd).Speedup(seqRes)
	combSp := simulate(t, comb).Speedup(seqRes)
	if combSp < cdSp*0.8 {
		t.Errorf("combined (%.2f) should not badly lose to data alone (%.2f)", combSp, cdSp)
	}
}

func TestSpaceMultiplexedFusesToTiles(t *testing.T) {
	children := []ir.Stream{heavyFilter("src", 2, 0, 0, 1)}
	for i := 0; i < 24; i++ {
		children = append(children, heavyFilter("f"+name(i%20)+name(i/20), 100+i, 1, 1, 1))
	}
	children = append(children, heavyFilter("snk", 2, 1, 1, 0))
	p := buildP(t, ir.Pipe("main", children...))
	plan, err := p.Map(StratSpace, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Graph.Nodes) > 16 {
		t.Errorf("space mapping has %d nodes, want <= 16", len(plan.Graph.Nodes))
	}
	if plan.Mapping.Mode != machine.ModePipelined || plan.Mapping.Comm != machine.CommNoC {
		t.Error("space mapping should be pipelined over the NoC")
	}
}

func TestStatsHelpers(t *testing.T) {
	p := buildP(t, ir.Pipe("main",
		heavyFilter("src", 2, 0, 0, 1),
		statefulFilter("state", 400),
		heavyFilter("plain", 400, 1, 1, 1),
		heavyFilter("snk", 2, 1, 1, 0)))
	sw := p.StatefulWork()
	if sw <= 0 || sw >= 1 {
		t.Errorf("stateful work fraction = %v, want in (0,1)", sw)
	}
	if p.CompCommRatio() <= 0 {
		t.Errorf("comp/comm ratio should be positive")
	}
}

// TestStrategyModes pins each strategy's execution discipline and
// communication substrate.
func TestStrategyModes(t *testing.T) {
	p := statelessChain(t)
	cases := []struct {
		strat Strategy
		mode  machine.Mode
		comm  machine.CommKind
	}{
		{StratSequential, machine.ModePipelined, machine.CommNoC},
		{StratTask, machine.ModeBarriered, machine.CommDRAM},
		{StratFineData, machine.ModeBarriered, machine.CommDRAM},
		{StratCoarseData, machine.ModeBarriered, machine.CommDRAM},
		{StratSWP, machine.ModePipelined, machine.CommDRAM},
		{StratCombined, machine.ModePipelined, machine.CommDRAM},
		{StratSpace, machine.ModePipelined, machine.CommNoC},
	}
	for _, c := range cases {
		plan, err := p.Map(c.strat, 16)
		if err != nil {
			t.Fatalf("%s: %v", c.strat, err)
		}
		if plan.Mapping.Mode != c.mode || plan.Mapping.Comm != c.comm {
			t.Errorf("%s: mode=%v comm=%v, want %v/%v",
				c.strat, plan.Mapping.Mode, plan.Mapping.Comm, c.mode, c.comm)
		}
	}
	if _, err := p.Map(Strategy("bogus"), 16); err == nil {
		t.Error("unknown strategy should error")
	}
}

// TestSequentialUsesOneTile: the baseline never spreads.
func TestSequentialUsesOneTile(t *testing.T) {
	p := statelessChain(t)
	plan, err := p.Map(StratSequential, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, tile := range plan.Mapping.Tile {
		if tile != 0 {
			t.Fatalf("sequential mapping uses tile %d", tile)
		}
	}
}
