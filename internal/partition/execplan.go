package partition

import (
	"fmt"
	"runtime"
	"sort"

	"streamit/internal/fuse"
	"streamit/internal/ir"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

// ExecPlanOptions configure the executable rewrite of a program for the
// mapped host engine.
type ExecPlanOptions struct {
	// Strategy selects the transformation: StratTask (no rewrite),
	// StratFineData (replicate every stateless filter), StratCoarseData
	// (fuse stateless regions, then judicious fission), or the pipelined
	// variants StratSWP (no rewrite, stage-assigned) and StratCombined
	// (coarsen+fission plus stages). The simulation-only space strategy is
	// rejected.
	Strategy Strategy
	// Workers is the target core count; 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// MeasuredWorkNS supplies profiled per-firing work (see
	// BuildOptions.MeasuredWorkNS); it biases both the fission granularity
	// heuristic and the worker assignment.
	MeasuredWorkNS map[string]int64
}

// ExecPlan is an executable mapping plan: the elaborated IR rewritten by
// fusion and executable fission, plus per-filter work estimates for
// assigning the flattened result to worker cores. Unlike Plan (which
// feeds the machine simulator), an ExecPlan's Program runs on the real
// engines and must be bit-identical to the original.
type ExecPlan struct {
	Strategy Strategy
	Workers  int
	// Program is the rewritten program (the original when Strategy is
	// StratTask). Rewritten filters are fresh; untouched filters are shared
	// with the input program.
	Program *ir.Program
	// Work estimates cycles per firing for filters of Program, on the
	// static estimator's scale (measured-work rescaled when provided).
	// Filters synthesized by fusion/fission carry their constituents' work.
	Work map[*ir.Filter]int64
	// Fused counts filters folded away by coarsening; Replicas counts
	// fission replicas created.
	Fused    int
	Replicas int
	// Pipelined marks software-pipelined plans (StratSWP/StratCombined):
	// the mapped engine runs them with stage-skewed workers, using
	// PipelineStages over the rewritten flat graph for the stage map.
	Pipelined bool
}

// BuildExecPlan rewrites prog for execution on workers cores. g and s are
// the elaborated flat graph and schedule of prog (used for work
// estimation only; the rewritten program is re-flattened by the caller).
func BuildExecPlan(prog *ir.Program, g *ir.Graph, s *sched.Schedule, opts ExecPlanOptions) (*ExecPlan, error) {
	switch opts.Strategy {
	case StratTask, StratFineData, StratCoarseData, StratSWP, StratCombined:
	default:
		return nil, fmt.Errorf("partition: strategy %q is not host-executable (use %q, %q, %q, %q, or %q)",
			opts.Strategy, StratTask, StratFineData, StratCoarseData, StratSWP, StratCombined)
	}
	pipelined := opts.Strategy == StratSWP || opts.Strategy == StratCombined
	if hasFeedback(prog.Top) && !pipelined {
		return nil, fmt.Errorf("partition: feedback loops need finer-than-batch interleaving; the mapped engine cannot run %s (use a pipelined strategy)", prog.Name)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pg, err := BuildOpts(g, s, BuildOptions{MeasuredWorkNS: opts.MeasuredWorkNS})
	if err != nil {
		return nil, err
	}
	b := &planBuilder{
		strategy: opts.Strategy,
		workers:  workers,
		graph:    g,
		sch:      s,
		pg:       pg,
		total:    pg.TotalWork(),
		plan: &ExecPlan{
			Strategy:  opts.Strategy,
			Workers:   workers,
			Work:      map[*ir.Filter]int64{},
			Pipelined: pipelined,
		},
	}
	// StratTask and StratSWP keep the program untouched. StratCombined also
	// skips the rewrite for teleport-messaging programs: sdep delivery
	// windows are computed on the executing graph, so rewriting the nodes
	// between messaging endpoints could move deliveries to different firing
	// boundaries than the sequential reference on the original program.
	if opts.Strategy == StratTask || opts.Strategy == StratSWP ||
		(pipelined && (len(prog.Portals) > 0 || len(prog.Constraints) > 0)) {
		b.plan.Program = prog
		return b.plan, nil
	}
	top, err := b.rewrite(prog.Top)
	if err != nil {
		return nil, err
	}
	b.plan.Program = &ir.Program{
		Name:        prog.Name + "_mapped",
		Top:         top,
		Portals:     prog.Portals,
		Constraints: prog.Constraints,
		Named:       prog.Named,
	}
	return b.plan, nil
}

func hasFeedback(s ir.Stream) bool {
	switch s := s.(type) {
	case *ir.FeedbackLoop:
		return true
	case *ir.Pipeline:
		for _, c := range s.Children {
			if hasFeedback(c) {
				return true
			}
		}
	case *ir.SplitJoin:
		for _, c := range s.Children {
			if hasFeedback(c) {
				return true
			}
		}
	}
	return false
}

// planBuilder carries the rewrite state: strategy, work estimates from the
// original schedule, and the accumulating plan.
type planBuilder struct {
	strategy Strategy
	workers  int
	graph    *ir.Graph
	sch      *sched.Schedule
	pg       *PGraph
	total    int64
	plan     *ExecPlan
}

// transformable reports whether f may participate in fusion/fission: a
// static-rate, data-carrying, stateless IL filter without messaging. Native
// filters are excluded even when marked Pure — their closures may not be
// reentrant, so they cannot be replicated or re-driven by the fused runner.
func (b *planBuilder) transformable(f *ir.Filter) bool {
	k := f.Kernel
	if f.WorkFn != nil || k.Dynamic || len(k.Handlers) > 0 {
		return false
	}
	if k.Pop <= 0 || k.Push <= 0 {
		return false
	}
	return !wfunc.WritesFields(k.Work) && !wfunc.SendsMessages(k.Work)
}

// perSteady returns f's estimated cycles per steady iteration of the
// original schedule (0 for filters missing from the flat graph).
func (b *planBuilder) perSteady(f *ir.Filter) int64 {
	n := b.graph.FilterNode[f]
	if n == nil {
		return 0
	}
	return b.pg.nodes[n.ID].work
}

func (b *planBuilder) reps(f *ir.Filter) int64 {
	n := b.graph.FilterNode[f]
	if n == nil {
		return 1
	}
	return int64(b.sch.Reps[n.ID])
}

// fissFactor mirrors PGraph.fissAll's granularity heuristic on the
// 8×workers-scaled steady state: skip nodes too small to be worth
// scattering, then halve the replica count until each replica carries
// meaningful work.
func (b *planBuilder) fissFactor(work int64) int {
	if work <= 0 {
		return 1
	}
	scale := int64(8 * b.workers)
	w, total := work*scale, b.total*scale
	if w < total/int64(4*b.workers) {
		return 1
	}
	k := b.workers
	for k > 1 && w/int64(k) < 256 {
		k /= 2
	}
	return k
}

func (b *planBuilder) rewrite(s ir.Stream) (ir.Stream, error) {
	switch s := s.(type) {
	case *ir.Filter:
		if !b.transformable(s) {
			return s, nil
		}
		out, err := b.rewriteRun([]*ir.Filter{s})
		if err != nil {
			return nil, err
		}
		if len(out) != 1 {
			return nil, fmt.Errorf("partition: single-filter rewrite produced %d streams", len(out))
		}
		return out[0], nil
	case *ir.Pipeline:
		return b.rewritePipeline(s)
	case *ir.SplitJoin:
		nsj := &ir.SplitJoin{Name: s.Name, Split: s.Split, Join: s.Join}
		for _, c := range s.Children {
			nc, err := b.rewrite(c)
			if err != nil {
				return nil, err
			}
			nsj.Add(nc)
		}
		return nsj, nil
	case *ir.FeedbackLoop:
		if b.strategy == StratCombined {
			// The loop rides through untouched: its nodes form one pipeline
			// cluster firing at sequential granularity on a single worker,
			// so rewriting inside it buys nothing and risks reordering the
			// back-edge interleave.
			return s, nil
		}
		return nil, fmt.Errorf("partition: feedback loop %s reached the rewriter", s.Name)
	}
	return nil, fmt.Errorf("partition: unknown stream kind %T", s)
}

// rewritePipeline collects maximal runs of transformable filters and
// rewrites each; other children recurse.
func (b *planBuilder) rewritePipeline(p *ir.Pipeline) (ir.Stream, error) {
	out := &ir.Pipeline{Name: p.Name}
	var run []*ir.Filter
	flush := func() error {
		if len(run) == 0 {
			return nil
		}
		streams, err := b.rewriteRun(run)
		run = nil
		if err != nil {
			return err
		}
		out.Add(streams...)
		return nil
	}
	for _, c := range p.Children {
		if f, ok := c.(*ir.Filter); ok && b.transformable(f) {
			run = append(run, f)
			continue
		}
		if err := flush(); err != nil {
			return nil, err
		}
		nc, err := b.rewrite(c)
		if err != nil {
			return nil, err
		}
		out.Add(nc)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// rewriteRun turns a maximal run of transformable filters into its
// executable form. Under fine-grained data parallelism every filter is
// replicated individually; under coarse-grained data parallelism the run
// is segmented into fusable stretches, each fused and then fissed when the
// granularity heuristic approves.
func (b *planBuilder) rewriteRun(run []*ir.Filter) ([]ir.Stream, error) {
	if b.strategy == StratFineData {
		var out []ir.Stream
		for _, f := range run {
			st, err := b.rewriteSegment([]*ir.Filter{f}, b.fineFactor(f))
			if err != nil {
				return nil, err
			}
			out = append(out, st)
		}
		return out, nil
	}
	var out []ir.Stream
	for _, seg := range b.segment(run) {
		var work int64
		for _, f := range seg {
			work += b.perSteady(f)
		}
		st, err := b.rewriteSegment(seg, b.fissFactor(work))
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// fineFactor is fine-grained data parallelism's replica count: every
// stateless filter with any work gets workers replicas, no granularity
// judgment — the strawman the paper measures against.
func (b *planBuilder) fineFactor(f *ir.Filter) int {
	if b.perSteady(f) <= 0 {
		return 1
	}
	return b.workers
}

// segment splits a run at boundaries where fusion fails (probed on
// throwaway copies so the originals stay untouched).
func (b *planBuilder) segment(run []*ir.Filter) [][]*ir.Filter {
	var segs [][]*ir.Filter
	cur := []*ir.Filter{run[0]}
	probe := ir.Stream(copyFilter(run[0], ""))
	for _, f := range run[1:] {
		var fused *ir.Filter
		var err error
		if pf, ok := probe.(*ir.Filter); ok {
			fused, err = fuse.Pipeline("probe", pf, copyFilter(f, ""))
		}
		if err != nil || fused == nil {
			segs = append(segs, cur)
			cur = []*ir.Filter{f}
			probe = copyFilter(f, "")
			continue
		}
		probe = fused
		cur = append(cur, f)
	}
	return append(segs, cur)
}

// rewriteSegment emits the executable form of one fusable segment with
// fission factor k: the original filter (len 1, k==1), a single fused
// filter (k==1), or a scatter/replicas/gather split-join (k>1). Replicas
// are built from fresh copies so no kernel state or fused closure is
// shared between them.
func (b *planBuilder) rewriteSegment(seg []*ir.Filter, k int) (ir.Stream, error) {
	var segWork int64
	for _, f := range seg {
		segWork += b.perSteady(f)
	}
	// Items entering the segment per original steady iteration, for
	// converting segment work to per-firing work of the fused result.
	inItems := b.reps(seg[0]) * int64(seg[0].Kernel.Pop)

	if k <= 1 {
		if len(seg) == 1 {
			return seg[0], nil
		}
		fused, err := foldFuse(seg)
		if err != nil {
			return nil, err
		}
		b.plan.Fused += len(seg) - 1
		b.plan.Work[fused] = perFiring(segWork, int64(fused.Kernel.Pop), inItems)
		return fused, nil
	}

	name := segName(seg)
	replicas := make([]*ir.Filter, k)
	for r := 0; r < k; r++ {
		copies := make([]*ir.Filter, len(seg))
		for i, f := range seg {
			copies[i] = copyFilter(f, "")
		}
		var rep *ir.Filter
		if len(copies) == 1 {
			rep = copies[0]
		} else {
			var err error
			rep, err = foldFuse(copies)
			if err != nil {
				return nil, err
			}
		}
		rep.Kernel.Name = fmt.Sprintf("%s/f%d", name, r)
		replicas[r] = rep
	}
	if len(seg) > 1 {
		b.plan.Fused += len(seg) - 1
	}
	b.plan.Replicas += k

	kr := replicas[0].Kernel
	P, U, E := kr.Pop, kr.Push, kr.Peek-kr.Pop
	wPop := make([]int, k)
	wPush := make([]int, k)
	for r := range wPop {
		wPop[r], wPush[r] = P, U
	}
	pf := perFiring(segWork, int64(P), inItems)
	if E == 0 {
		// Round-robin scatter of each replica's pop quantum; ordered
		// round-robin gather restores the original output order (replica r
		// handles original firings r, r+k, r+2k, ...).
		for _, rep := range replicas {
			b.plan.Work[rep] = pf
		}
		return ir.SJ(name+"_fiss", ir.RoundRobin(wPop...), ir.RoundRobin(wPush...), filterStreams(replicas)...), nil
	}
	// Peeking fission: every replica sees the whole stream (duplicate
	// splitter) and runs one constituent firing per k·P consumed items,
	// reading its slice through an offset window — PGraph.fiss's duplicated
	// peek margin, made executable.
	wrapped := make([]*ir.Filter, k)
	for r, rep := range replicas {
		w, err := wrapPeekingReplica(rep, r, k)
		if err != nil {
			return nil, err
		}
		b.plan.Work[w] = pf
		wrapped[r] = w
	}
	return ir.SJ(name+"_fiss", ir.Duplicate(), ir.RoundRobin(wPush...), filterStreams(wrapped)...), nil
}

// perFiring converts segment work per original steady iteration into
// cycles per fused firing: the fused filter consumes P items per firing
// out of inItems per steady iteration.
func perFiring(work, pop, inItems int64) int64 {
	if inItems <= 0 {
		return 1
	}
	w := work * pop / inItems
	if w < 1 {
		w = 1
	}
	return w
}

func segName(seg []*ir.Filter) string {
	name := seg[0].Kernel.Name
	for _, f := range seg[1:] {
		name += "+" + f.Kernel.Name
	}
	return name
}

func filterStreams(fs []*ir.Filter) []ir.Stream {
	out := make([]ir.Stream, len(fs))
	for i, f := range fs {
		out[i] = f
	}
	return out
}

// copyFilter clones an IL filter for use as a fission replica: a fresh
// Filter and Kernel value (flattening requires single appearance) sharing
// the immutable IL bodies; per-instance state is created by the engines.
func copyFilter(f *ir.Filter, tag string) *ir.Filter {
	k := *f.Kernel
	k.Name = f.Kernel.Name + tag
	return &ir.Filter{Kernel: &k, In: f.In, Out: f.Out, Pure: f.Pure}
}

// foldFuse fuses a segment left to right into one filter.
func foldFuse(seg []*ir.Filter) (*ir.Filter, error) {
	acc := seg[0]
	for _, f := range seg[1:] {
		fused, err := fuse.Pipeline(acc.Kernel.Name+"+"+f.Kernel.Name, acc, f)
		if err != nil {
			return nil, err
		}
		acc = fused
	}
	return acc, nil
}

// wrapPeekingReplica builds replica r of k for a peeking filter: a native
// filter consuming k·P items per firing with a peek margin of E extra,
// running the inner filter once over the window starting at r·P. The
// duplicate splitter delivers the full stream to every replica, so replica
// r's j-th firing reproduces original firing j·k+r exactly.
func wrapPeekingReplica(inner *ir.Filter, r, k int) (*ir.Filter, error) {
	ki := inner.Kernel
	P, U, E := ki.Pop, ki.Push, ki.Peek-ki.Pop
	peek, pop := k*P+E, k*P

	shell := wfunc.NewKernel(ki.Name, peek, pop, U)
	shell.Dynamic() // skip the static body check; behaviour is the closure below
	shell.WorkBody()
	kern := shell.Build()
	kern.Dynamic = false
	kern.Peek, kern.Pop, kern.Push = peek, pop, U

	var fire func(in, out wfunc.Tape)
	if inner.WorkFn != nil {
		// A fused replica: its closure owns all state (none, being pure).
		fire = func(in, out wfunc.Tape) { inner.WorkFn(in, out, nil) }
	} else {
		state := ki.NewState()
		if ki.Init != nil {
			env := wfunc.NewEnv(ki.Init)
			env.State = state
			if err := wfunc.Exec(ki.Init, env); err != nil {
				return nil, fmt.Errorf("partition: init of replica %s: %w", ki.Name, err)
			}
		}
		env := wfunc.NewEnv(ki.Work)
		env.State = state
		fire = func(in, out wfunc.Tape) {
			env.Reset()
			env.In, env.Out = in, out
			if err := wfunc.Exec(ki.Work, env); err != nil {
				panic(fmt.Errorf("partition: replica %s: %w", ki.Name, err))
			}
		}
	}
	base := r * P
	workFn := func(in, out wfunc.Tape, _ *wfunc.State) {
		w := &planWindow{under: in, base: base, limit: peek}
		fire(w, out)
		for i := 0; i < pop; i++ {
			in.Pop()
		}
	}
	return &ir.Filter{Kernel: kern, In: inner.In, Out: inner.Out, WorkFn: workFn, Pure: true}, nil
}

// planWindow is a read-only offset window over a tape: peeks shift by
// base+cursor, pops advance only the cursor. Out-of-window reads panic
// with an error value so the engines report a structured ExecError.
type planWindow struct {
	under  wfunc.Tape
	base   int
	cursor int
	limit  int
}

// Peek implements wfunc.Tape.
func (t *planWindow) Peek(i int) float64 {
	idx := t.base + t.cursor + i
	if i < 0 || idx >= t.limit {
		panic(fmt.Errorf("partition: replica peek(%d) at offset %d reads past the %d-item window", i, idx, t.limit))
	}
	return t.under.Peek(idx)
}

// Pop implements wfunc.Tape.
func (t *planWindow) Pop() float64 {
	idx := t.base + t.cursor
	if idx >= t.limit {
		panic(fmt.Errorf("partition: replica pop at offset %d reads past the %d-item window", idx, t.limit))
	}
	v := t.under.Peek(idx)
	t.cursor++
	return v
}

// Push is invalid on the window.
func (t *planWindow) Push(float64) { panic("partition: replica input window is read-only") }

// Assign maps every node of the rewritten flat graph onto a worker with
// longest-processing-time bin-packing over the plan's work estimates (the
// same greedy packing the simulated mappers use). g2 and s2 must be the
// flattening and schedule of plan.Program.
func (p *ExecPlan) Assign(g2 *ir.Graph, s2 *sched.Schedule) []int {
	return p.AssignN(g2, s2, p.Workers)
}

// AssignN is Assign onto an explicit worker count — the re-planning hook
// for crash recovery, which packs the same rewritten graph onto the
// surviving workers without re-running the fusion/fission rewrite (the
// graph, schedule, and checkpoint fingerprint all stay fixed).
func (p *ExecPlan) AssignN(g2 *ir.Graph, s2 *sched.Schedule, workers int) []int {
	return p.AssignMeasured(g2, s2, workers, nil)
}

// AssignMeasured is AssignN with live measurements: perFiringNS maps
// rewritten-graph node names (g2 names — fused segments and fission
// replicas, exactly the profiler's key space on a mapped engine) to
// measured work per firing in nanoseconds, which overrides the plan's
// static estimate for the nodes it covers. This is the elastic re-plan
// entry point: the elaborated graph, its schedule, and therefore the
// checkpoint fingerprint all stay fixed — only the packing moves.
// Measured weights are rescaled so covered nodes keep the covered set's
// total static weight, letting measured and estimated nodes pack on one
// scale (the same discipline as BuildOptions.MeasuredWorkNS).
func (p *ExecPlan) AssignMeasured(g2 *ir.Graph, s2 *sched.Schedule, workers int, perFiringNS map[string]int64) []int {
	if workers < 1 {
		workers = 1
	}
	nodeW := p.nodeWeights(g2, s2, perFiringNS)
	// Packing units: single nodes, except that pipelined plans keep every
	// stage cluster (feedback cycles, messaging hulls) whole — its members
	// must fire as a unit on one worker.
	type unit struct {
		members []int
		w       int64
	}
	var units []unit
	grouped := make([]bool, len(g2.Nodes))
	if p.Pipelined {
		if sp, err := PipelineStages(g2); err == nil {
			for _, c := range sp.Clusters {
				u := unit{members: c}
				for _, id := range c {
					u.w += nodeW[id]
					grouped[id] = true
				}
				units = append(units, u)
			}
		}
	}
	for _, n := range g2.Nodes {
		if !grouped[n.ID] {
			units = append(units, unit{members: []int{n.ID}, w: nodeW[n.ID]})
		}
	}
	sort.SliceStable(units, func(i, j int) bool { return units[i].w > units[j].w })
	loads := make([]int64, workers)
	assign := make([]int, len(g2.Nodes))
	for _, u := range units {
		best := 0
		for w := 1; w < len(loads); w++ {
			if loads[w] < loads[best] {
				best = w
			}
		}
		for _, id := range u.members {
			assign[id] = best
		}
		loads[best] += u.w
	}
	return assign
}
