package apps

import (
	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

// Reverb builds a feedback-comb reverberator: the input mixes with a
// delayed, attenuated copy of the output (a recirculating comb filter),
// between an analysis FIR front end and a gain back end. The feedback loop
// makes the program unrunnable on the lockstep concurrent engines — the
// loop interleaves at firing granularity — so it exercises the pipelined
// mapped engine's stage clusters, which host the whole loop on one worker
// and stage the surrounding pipeline around it. Not part of Suite(): the
// 12-app suite reproduces the paper's parallelization table, which has no
// feedback programs.
//
// delay is the comb's recirculation delay in samples (the loop's pre-loaded
// back-edge items); decay scales the fed-back signal and must stay below 1
// for stability.
func Reverb(delay int, decay float64) *ir.Program {
	comb := func() *ir.Filter {
		// Joiner RR(1,1) interleaves [external, feedback]; one firing
		// consumes one pair and emits the mixed sample, which the duplicate
		// splitter sends both downstream and back around the loop.
		b := wfunc.NewKernel("comb", 2, 2, 1)
		x := b.Local("x")
		b.WorkBody(
			wfunc.Set(x, wfunc.PopE()),
			wfunc.Push1(wfunc.AddX(x, wfunc.MulX(wfunc.PopE(), wfunc.C(decay)))),
		)
		return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
	}()
	loop := &ir.FeedbackLoop{
		Name:  "combLoop",
		Join:  ir.RoundRobin(1, 1),
		Body:  comb,
		Split: ir.Duplicate(),
		Delay: delay, // silent room before the first reflection
	}
	return &ir.Program{Name: "Reverb", Top: ir.Pipe("ReverbPipe",
		Source("in"),
		FIR("tone", 16, 0.21),
		loop,
		Gain("wet", 0.9),
		Sink("out", 1),
	)}
}
