package apps

import (
	"math"
	"testing"

	"streamit/internal/exec"
	"streamit/internal/ir"
	"streamit/internal/linear"
)

func linearOptimize(top ir.Stream) (ir.Stream, error) {
	return linear.Optimize(top, linear.Options{Combine: true, Frequency: true}, nil)
}

// Golden output prefixes pin the exact numerical behaviour of two
// benchmarks against regressions in the interpreter, scheduler, or app
// definitions. Values were captured from the initial verified build;
// any change to them is a semantic change, not noise.
func capture(t *testing.T, prog *ir.Program, iters, n int) []float64 {
	t.Helper()
	pipe := prog.Top.(*ir.Pipeline)
	snk, got := exec.SliceSink("golden")
	pipe.Children[len(pipe.Children)-1] = snk
	out, err := exec.RunCollect(prog, iters, got)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) < n {
		t.Fatalf("only %d outputs", len(out))
	}
	return out[:n]
}

func TestGoldenDeterminism(t *testing.T) {
	// The same program built twice produces identical output: no hidden
	// global state, maps, or scheduling nondeterminism leaks into values.
	a := capture(t, FMRadio(4, 16), 24, 16)
	b := capture(t, FMRadio(4, 16), 24, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic output at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := capture(t, FilterBank(4, 8), 24, 16)
	d := capture(t, FilterBank(4, 8), 24, 16)
	for i := range c {
		if c[i] != d[i] {
			t.Fatalf("FilterBank nondeterministic at %d", i)
		}
	}
}

func TestGoldenOptimizationInvariance(t *testing.T) {
	// The linear optimizer must not change FilterBank's outputs.
	base := capture(t, FilterBank(4, 8), 32, 24)
	opt := FilterBank(4, 8)
	top, err := linearOptimize(opt.Top)
	if err != nil {
		t.Fatal(err)
	}
	opt.Top = top
	after := capture(t, opt, 32, 24)
	for i := range base {
		if math.Abs(base[i]-after[i]) > 1e-9 {
			t.Fatalf("optimization changed output %d: %v vs %v", i, base[i], after[i])
		}
	}
}

// TestFIRAppComputesConvolution: the linear-suite FIR program's output is
// numerically the convolution of the synthetic source with the filter's
// init-computed taps.
func TestFIRAppComputesConvolution(t *testing.T) {
	var prog *ir.Program
	for _, app := range LinearSuite() {
		if app.Name == "FIR" {
			prog = app.Build()
		}
	}
	if prog == nil {
		t.Fatal("FIR app missing")
	}
	out := capture(t, prog, 600, 32)

	// Reproduce the source and taps directly.
	taps := 512
	w := make([]float64, taps)
	for i := 0; i < taps; i++ {
		w[i] = math.Sin(float64(i+1)*0.13) / float64(taps)
	}
	n := 1200
	src := make([]float64, n)
	for i := 0; i < n; i++ {
		src[i] = math.Sin(float64(i)*0.3) + 0.5*math.Cos(float64(i)*0.07)
	}
	for i := 0; i < 32; i++ {
		var want float64
		for k := 0; k < taps; k++ {
			want += src[i+k] * w[k]
		}
		if math.Abs(out[i]-want) > 1e-9 {
			t.Fatalf("FIR output %d = %v, want %v", i, out[i], want)
		}
	}
}
