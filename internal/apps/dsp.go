package apps

import (
	"math"

	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

// FMRadio builds the software FM radio of §3: a low-pass front end, an FM
// demodulator, and a multi-band equalizer (duplicate split-join of
// band-pass filter pipelines re-combined by an adder).
func FMRadio(bands, taps int) *ir.Program {
	var branches []ir.Stream
	for i := 0; i < bands; i++ {
		low := 0.1 + 0.8*float64(i)/float64(bands)
		branches = append(branches, ir.Pipe(mustName("band", i),
			FIR(mustName("bpfLow", i), taps, low),
			FIR(mustName("bpfHigh", i), taps, low+0.8/float64(bands)),
			Gain(mustName("bandGain", i), 1.0/float64(bands)),
		))
	}
	eq := ir.SJ("equalizer", ir.Duplicate(), ir.RoundRobin(), branches...)
	top := ir.Pipe("FMRadio",
		Source("antenna"),
		FIR("lowpass", taps, 0.25),
		FMDemod("demod"),
		eq,
		Adder("eqsum", bands),
		Sink("speaker", 1),
	)
	return &ir.Program{Name: "FMRadio", Top: top}
}

// FMDemod approximates FM demodulation (stateless, peek 2 pop 1).
func FMDemod(name string) *ir.Filter {
	b := wfunc.NewKernel(name, 2, 1, 1)
	b.WorkBody(
		wfunc.Push1(wfunc.MulX(
			wfunc.Un(wfunc.Atan, wfunc.MulX(wfunc.PeekE(0), wfunc.PeekE(1))),
			wfunc.C(0.7))),
		wfunc.Pop1(),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// FilterBank builds the classic multirate analysis/synthesis filter bank:
// M branches, each delaying, band-filtering, down- and up-sampling, and
// re-filtering before the bands are summed.
func FilterBank(branchesN, taps int) *ir.Program {
	var branches []ir.Stream
	for i := 0; i < branchesN; i++ {
		branches = append(branches, ir.Pipe(mustName("fbBranch", i),
			FIR(mustName("analysis", i), taps, 0.05+0.9*float64(i)/float64(branchesN)),
			Downsample(mustName("down", i), branchesN),
			Upsample(mustName("up", i), branchesN),
			FIR(mustName("synthesis", i), taps, 0.05+0.9*float64(i)/float64(branchesN)),
		))
	}
	sj := ir.SJ("bank", ir.Duplicate(), ir.RoundRobin(), branches...)
	top := ir.Pipe("FilterBank",
		Source("in"),
		sj,
		Adder("combine", branchesN),
		Sink("out", 1),
	)
	return &ir.Program{Name: "FilterBank", Top: top}
}

// ChannelVocoder: a pitch detector running alongside a bank of band-pass
// channel filters with magnitude envelopes.
func ChannelVocoder(channels, taps int) *ir.Program {
	var branches []ir.Stream
	branches = append(branches, ir.Pipe("pitchPath",
		FIRDecim("pitchDetector", taps*2, 1, 0.31),
		Gain("pitchGain", 1.5),
	))
	for i := 0; i < channels; i++ {
		branches = append(branches, ir.Pipe(mustName("chan", i),
			FIR(mustName("chanFilt", i), taps, 0.05+0.9*float64(i)/float64(channels)),
			envelope(mustName("chanEnv", i)),
		))
	}
	sj := ir.SJ("vocoderBank", ir.Duplicate(), ir.RoundRobin(), branches...)
	top := ir.Pipe("ChannelVocoder",
		Source("mic"),
		sj,
		Sink("features", channels+1),
	)
	return &ir.Program{Name: "ChannelVocoder", Top: top}
}

// envelope computes |x| smoothed over a short window (nonlinear).
func envelope(name string) *ir.Filter {
	b := wfunc.NewKernel(name, 4, 1, 1)
	i := b.Local("i")
	s := b.Local("s")
	b.WorkBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(4),
			wfunc.Set(s, wfunc.AddX(s, wfunc.Un(wfunc.Abs, wfunc.PeekX(i))))),
		wfunc.Pop1(),
		wfunc.Push1(wfunc.MulX(s, wfunc.C(0.25))),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// DCT builds the 16x16 IEEE-reference two-dimensional DCT benchmark: a
// pipeline of light pre/post stages around one dominant dense transform
// filter (the data-parallelism case study: the bottleneck filter does >6x
// the work of any other).
func DCT() *ir.Program {
	n := 16
	top := ir.Pipe("DCT",
		Source("blocks"),
		Gain("level", 1.0/128),
		MatMul("rowPre", n, n, 0.11),
		MatMul("dct2d", n*n/4, n*n/4, 0.013), // the dominant filter
		MatMul("colPost", n, n, 0.07),
		Gain("descale", 4),
		boundSat("saturate"),
		Sink("coeffs", 1),
	)
	return &ir.Program{Name: "DCT", Top: top}
}

func boundSat(name string) *ir.Filter {
	b := wfunc.NewKernel(name, 1, 1, 1)
	x := b.Local("x")
	b.WorkBody(
		wfunc.Set(x, wfunc.PopE()),
		wfunc.Push1(wfunc.Bin(wfunc.Max, wfunc.C(-255), wfunc.Bin(wfunc.Min, wfunc.C(255), x))),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// FFTApp builds the paper's FFT benchmark (Figure radiocode's FFT class):
// bit-reverse reordering via nested weighted-round-robin split-joins of
// identities, followed by log2(N)-1 butterfly stages, each a pair of
// split-joins (twiddle multiply + identity, then add/sub combine).
func FFTApp(n int) *ir.Program {
	p := ir.Pipe("FFTApp", Source("signal"))
	// Reordering stage.
	var outer []ir.Stream
	for i := 0; i < 2; i++ {
		outer = append(outer, ir.SJ(mustName("reorderInner", i),
			ir.RoundRobin(1, 1),
			ir.RoundRobin(n/4, n/4),
			ir.Identity(ir.TypeFloat), ir.Identity(ir.TypeFloat)))
	}
	p.Add(ir.SJ("reorder", ir.RoundRobin(n/2, n/2), ir.RoundRobin(1, 1), outer...))
	// Butterfly stages.
	for size, s := 2, 0; size < n; size, s = size*2, s+1 {
		p.Add(butterfly(mustName("bfly", s), size, n))
	}
	p.Add(Sink("spectrum", n))
	return &ir.Program{Name: "FFT", Top: p}
}

// butterfly is the paper's Butterfly(N, W) stream: a weighted split-join
// applying twiddle weights to the second half, then a duplicate split-join
// computing sums and differences.
func butterfly(name string, size, total int) ir.Stream {
	twiddle := func() *ir.Filter {
		b := wfunc.NewKernel(name+"Twiddle", size, size, size)
		w := b.FieldArray("w", size)
		i := b.Local("i")
		b.InitBody(
			wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(size),
				wfunc.SetFIdx(w, i, wfunc.Un(wfunc.Cos, wfunc.MulX(i, wfunc.C(math.Pi/float64(size)))))),
		)
		b.WorkBody(
			wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(size),
				wfunc.Push1(wfunc.MulX(wfunc.PeekX(i), wfunc.FIdx(w, i)))),
			wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(size), wfunc.Pop1()),
		)
		return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
	}()
	sub := func() *ir.Filter {
		b := wfunc.NewKernel(name+"Sub", 2, 2, 1)
		b.WorkBody(wfunc.Push1(wfunc.SubX(wfunc.PopE(), wfunc.PopE())))
		return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
	}()
	add := func() *ir.Filter {
		b := wfunc.NewKernel(name+"Add", 2, 2, 1)
		b.WorkBody(wfunc.Push1(wfunc.AddX(wfunc.PopE(), wfunc.PopE())))
		return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
	}()
	sj1 := ir.SJ(name+"Weight", ir.RoundRobin(size, size), ir.RoundRobin(1, 1),
		twiddle, ir.Identity(ir.TypeFloat))
	sj2 := ir.SJ(name+"Combine", ir.Duplicate(), ir.RoundRobin(size, size), sub, add)
	return ir.Pipe(name, sj1, sj2)
}

// TDE is the time-delay equalization benchmark: a long stateless pipeline
// (block FFT, per-bin scaling, inverse FFT) with little splitting — the
// shape on which the prior work's space multiplexing does well.
func TDE(block int, stages int) *ir.Program {
	p := ir.Pipe("TDEPipe", Source("sonar"))
	for s := 0; s < stages; s++ {
		p.Add(
			MatMul(mustName("tdeFwd", s), block, block, 0.029+float64(s)/100),
			Gain(mustName("tdeScale", s), 0.97),
			MatMul(mustName("tdeInv", s), block, block, 0.041+float64(s)/100),
		)
	}
	p.Add(Sink("equalized", 1))
	return &ir.Program{Name: "TDE", Top: p}
}

// Vocoder is the phase vocoder: a DFT filter bank, magnitude/phase
// separation, stateful phase unwrapping and accumulation per bin (the
// state that paralyzes data parallelism), and resynthesis.
func Vocoder(bins int) *ir.Program {
	var analysis []ir.Stream
	for i := 0; i < bins; i++ {
		analysis = append(analysis, ir.Pipe(mustName("bin", i),
			FIR(mustName("dftRe", i), 64, 0.02+0.9*float64(i)/float64(bins)),
			PhaseUnwrap(mustName("unwrap", i), 25),
			Gain(mustName("pitch", i), 1.02),
		))
	}
	bank := ir.SJ("dftBank", ir.Duplicate(), ir.RoundRobin(), analysis...)
	top := ir.Pipe("Vocoder",
		Source("voice"),
		bank,
		Adder("resynth", bins),
		FIR("smooth", 16, 0.2),
		Sink("outVoice", 1),
	)
	return &ir.Program{Name: "Vocoder", Top: top}
}

// Radar is the coarse-grained beamformer: per-channel stateful input FIRs
// (nearly all the work, unfissable), followed by beamforming matrix
// stages and detectors.
func Radar(channels, beams int) *ir.Program {
	var chans []ir.Stream
	for i := 0; i < channels; i++ {
		chans = append(chans, ir.Pipe(mustName("chanPipe", i),
			chanSource(mustName("antennaIn", i)),
			StatefulFIR(mustName("inputFIR", i), 64, 2),
			StatefulFIR(mustName("decimFIR", i), 16, 2),
		))
	}
	front := ir.SJ("frontEnd", ir.Null(), ir.RoundRobin(), chans...)
	var beamsS []ir.Stream
	for b := 0; b < beams; b++ {
		beamsS = append(beamsS, ir.Pipe(mustName("beam", b),
			MatMul(mustName("beamWeights", b), 1, channels, 0.03+float64(b)/50),
			magnitude1(mustName("detect", b)),
		))
	}
	bf := ir.SJ("beamform", ir.Duplicate(), ir.RoundRobin(), beamsS...)
	top := ir.Pipe("Radar", front, bf, Sink("targets", beams))
	return &ir.Program{Name: "Radar", Top: top}
}

// chanSource generates a per-channel waveform.
func chanSource(name string) *ir.Filter {
	b := wfunc.NewKernel(name, 0, 0, 1)
	n := b.Field("n", 0)
	b.WorkBody(
		wfunc.Push1(wfunc.Un(wfunc.Sin, wfunc.MulX(n, wfunc.C(0.21)))),
		wfunc.SetF(n, wfunc.AddX(n, wfunc.C(1))),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeVoid, Out: ir.TypeFloat}
}

// Magnitude2 pops one item and pushes |x| (detector stage).
func magnitude1(name string) *ir.Filter {
	b := wfunc.NewKernel(name, 1, 1, 1)
	b.WorkBody(wfunc.Push1(wfunc.Un(wfunc.Abs, wfunc.PopE())))
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}
