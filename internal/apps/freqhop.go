package apps

import (
	"math"

	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

// FreqHoppingRadio builds the paper's trunked-radio receiver (Figure
// "radiocode"): an A/D source, an RF-to-IF downconverter whose mixing
// frequency is retuned by teleport messages, a spectral check stage that
// detects energy in guard channels and sends setFreq upstream, and an
// audio back end.
//
// When teleport is false, the same application is built the way
// programmers had to before teleport messaging: the control information is
// manually embedded in the data stream — every sample becomes a (tag,
// value) pair, every filter in the path inspects and forwards tags, and
// the detector raises tags instead of sending messages. The 49%
// improvement reported in the paper's conclusion comes from removing
// exactly this overhead.
func FreqHoppingRadio(teleport bool) *ir.Program {
	prog := &ir.Program{Name: "FreqHoppingRadio"}
	if teleport {
		portal := prog.NewPortal("freqHop")
		rf := rfToIF("RFtoIF", false)
		portal.Register(rf)
		prog.Top = ir.Pipe("FreqHopRadio",
			Source("AtoD"),
			rf,
			FIR("ifFilter", 32, 0.2),
			Gain("ifGain", 1.5),
			Gain("audioGain", 0.8),
			checkFreqHop("checkHop", portal.ID),
			Sink("audioOut", 1),
		)
		return prog
	}
	prog.Top = ir.Pipe("FreqHopRadioManual",
		Source("AtoD"),
		tagInject("tagger"),
		rfToIF("RFtoIFManual", true),
		taggedFIR("ifFilterManual", 32, 0.2),
		taggedGain("ifGainManual", 1.5),
		taggedGain("audioGainManual", 0.8),
		checkFreqHopManual("checkHopManual"),
		Sink("audioOut", 1),
	)
	return prog
}

// rfToIF mixes the input with a tunable carrier (the paper's RFtoIF
// filter). The teleport version processes plain samples and has a setFreq
// handler; the manual version processes (tag, value) pairs, retuning when
// it sees a nonzero tag.
func rfToIF(name string, manual bool) *ir.Filter {
	size := 16
	b := wfunc.NewKernel(name, 1, 1, 1)
	w := b.FieldArray("w", size)
	count := b.Field("count", 0)
	freq := b.Field("freq", 1)
	i := b.Local("i")
	tag := b.Local("tag")

	retune := []wfunc.Stmt{
		// Recompute the mixing table for the new frequency (setf in the
		// paper: weight[i] = sin(i*pi*freq/size)).
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(size),
			wfunc.SetFIdx(w, i, wfunc.Un(wfunc.Sin,
				wfunc.MulX(wfunc.MulX(i, freq), wfunc.C(math.Pi/float64(size)))))),
		wfunc.SetF(count, wfunc.C(0)),
	}
	b.InitBody(retune...)

	mix := []wfunc.Stmt{
		wfunc.Push1(wfunc.MulX(wfunc.PopE(), wfunc.FIdx(w, count))),
		wfunc.SetF(count, wfunc.Bin(wfunc.Mod, wfunc.AddX(count, wfunc.C(1)), wfunc.Ci(size))),
	}
	if manual {
		// Per-item state machine: tag items alternate with value items, so
		// the filter fires twice per audio sample and inspects the tag
		// lane every time — the overhead teleport messaging removes.
		parity := b.Field("parity", 0)
		b.WorkBody(
			wfunc.IfElse(wfunc.Bin(wfunc.Eq, parity, wfunc.C(0)),
				[]wfunc.Stmt{
					wfunc.Set(tag, wfunc.PopE()),
					wfunc.IfS(wfunc.Bin(wfunc.Ne, tag, wfunc.C(0)),
						append([]wfunc.Stmt{wfunc.SetF(freq, tag)}, retune...)...),
					wfunc.Push1(tag),
				},
				mix,
			),
			wfunc.SetF(parity, wfunc.SubX(wfunc.C(1), parity)),
		)
	} else {
		b.WorkBody(mix...)
		newFreq := b.Local("newFreq")
		b.Handler("setFreq", 1, append([]wfunc.Stmt{wfunc.SetF(freq, newFreq)}, retune...)...)
	}
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// checkFreqHop watches the filtered signal; when guard-channel energy
// crosses a threshold it teleports setFreq upstream with latency 4 and
// passes the sample through unchanged.
func checkFreqHop(name string, portal int) *ir.Filter {
	b := wfunc.NewKernel(name, 1, 1, 1)
	avg := b.Field("avg", 0)
	hop := b.Field("hop", 2)
	v := b.Local("v")
	b.WorkBody(
		wfunc.Set(v, wfunc.PopE()),
		wfunc.SetF(avg, wfunc.AddX(wfunc.MulX(avg, wfunc.C(0.95)),
			wfunc.MulX(wfunc.Un(wfunc.Abs, v), wfunc.C(0.05)))),
		wfunc.IfS(wfunc.Bin(wfunc.Gt, avg, wfunc.C(0.32)),
			&wfunc.Send{Portal: portal, Handler: "setFreq",
				Args:       []wfunc.Expr{hop},
				MinLatency: 4, MaxLatency: 4},
			wfunc.SetF(hop, wfunc.AddX(wfunc.Bin(wfunc.Mod, hop, wfunc.C(5)), wfunc.C(1))),
			wfunc.SetF(avg, wfunc.C(0)),
		),
		wfunc.Push1(v),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// checkFreqHopManual performs the same detection but communicates by
// dropping the tag lane and (conceptually) relying on the upstream tagger:
// it consumes (tag, value) pairs and emits the audio value, recording the
// hop decision in its state for the next tag the tagger injects.
func checkFreqHopManual(name string) *ir.Filter {
	b := wfunc.NewKernel(name, 2, 2, 1)
	avg := b.Field("avg", 0)
	hop := b.Field("hop", 2)
	v := b.Local("v")
	b.WorkBody(
		wfunc.Pop1(), // tag lane
		wfunc.Set(v, wfunc.PopE()),
		wfunc.SetF(avg, wfunc.AddX(wfunc.MulX(avg, wfunc.C(0.95)),
			wfunc.MulX(wfunc.Un(wfunc.Abs, v), wfunc.C(0.05)))),
		wfunc.IfS(wfunc.Bin(wfunc.Gt, avg, wfunc.C(0.32)),
			wfunc.SetF(hop, wfunc.AddX(wfunc.Bin(wfunc.Mod, hop, wfunc.C(5)), wfunc.C(1))),
			wfunc.SetF(avg, wfunc.C(0)),
		),
		wfunc.Push1(v),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// taggedGain scales the value lane and forwards the tag lane — another
// filter paying the manual scheme's per-item tag tax.
func taggedGain(name string, g float64) *ir.Filter {
	b := wfunc.NewKernel(name, 1, 1, 1)
	parity := b.Field("parity", 0)
	b.WorkBody(
		wfunc.IfElse(wfunc.Bin(wfunc.Eq, parity, wfunc.C(0)),
			[]wfunc.Stmt{wfunc.Push1(wfunc.PopE())}, // forward tag
			[]wfunc.Stmt{wfunc.Push1(wfunc.MulX(wfunc.PopE(), wfunc.C(g)))},
		),
		wfunc.SetF(parity, wfunc.SubX(wfunc.C(1), parity)),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// tagInject turns the sample stream into (tag, value) pairs; tags are 0
// except when a (deterministic, rare) hop command is issued.
func tagInject(name string) *ir.Filter {
	b := wfunc.NewKernel(name, 1, 1, 2)
	n := b.Field("n", 0)
	b.WorkBody(
		wfunc.IfElse(wfunc.Bin(wfunc.Eq, wfunc.Bin(wfunc.Mod, n, wfunc.C(4096)), wfunc.C(4095)),
			[]wfunc.Stmt{wfunc.Push1(wfunc.AddX(wfunc.Bin(wfunc.Mod, n, wfunc.C(5)), wfunc.C(1)))},
			[]wfunc.Stmt{wfunc.Push1(wfunc.C(0))}),
		wfunc.SetF(n, wfunc.AddX(n, wfunc.C(1))),
		wfunc.Push1(wfunc.PopE()),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// taggedFIR is the FIR filter adapted to (tag, value) pairs: it forwards
// the tag lane untouched and filters the value lane — paying the doubled
// traffic and per-item tag handling the manual scheme imposes on every
// filter along the control path.
func taggedFIR(name string, taps int, cutoff float64) *ir.Filter {
	b := wfunc.NewKernel(name, 2*taps, 1, 1)
	w := b.FieldArray("w", taps)
	parity := b.Field("parity", 0)
	i := b.Local("i")
	sum := b.Local("sum")
	b.InitBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(taps),
			wfunc.SetFIdx(w, i, wfunc.MulX(
				wfunc.Un(wfunc.Sin, wfunc.MulX(wfunc.AddX(i, wfunc.C(1)), wfunc.C(cutoff))),
				wfunc.C(1.0/float64(taps))))),
	)
	b.WorkBody(
		wfunc.IfElse(wfunc.Bin(wfunc.Eq, parity, wfunc.C(0)),
			[]wfunc.Stmt{wfunc.Push1(wfunc.PeekE(0))}, // forward tag
			[]wfunc.Stmt{
				wfunc.Set(sum, wfunc.C(0)),
				// The value lane sits at even offsets from the current
				// (value) item: 0, 2, 4, ...
				wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(taps),
					wfunc.Set(sum, wfunc.AddX(sum, wfunc.MulX(
						wfunc.PeekX(wfunc.MulX(i, wfunc.C(2))),
						wfunc.FIdx(w, i))))),
				wfunc.Push1(sum),
			},
		),
		wfunc.Pop1(),
		wfunc.SetF(parity, wfunc.SubX(wfunc.C(1), parity)),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}
