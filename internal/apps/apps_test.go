package apps

import (
	"testing"

	"streamit/internal/exec"
	"streamit/internal/ir"
	"streamit/internal/linear"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

// TestSuiteBuildsAndSchedules flattens, verifies, and schedules every
// benchmark.
func TestSuiteBuildsAndSchedules(t *testing.T) {
	for _, app := range Suite() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			prog := app.Build()
			g, err := ir.Flatten(prog)
			if err != nil {
				t.Fatalf("flatten: %v", err)
			}
			s, err := sched.Compute(g)
			if err != nil {
				t.Fatalf("schedule: %v", err)
			}
			if s.TotalFirings() == 0 {
				t.Fatal("empty steady state")
			}
			st, err := g.ComputeStats()
			if err != nil {
				t.Fatal(err)
			}
			if st.Filters < 5 {
				t.Errorf("only %d filters; benchmark seems degenerate", st.Filters)
			}
		})
	}
}

// TestSuiteExecutes runs two steady iterations of every benchmark through
// the interpreter.
func TestSuiteExecutes(t *testing.T) {
	for _, app := range Suite() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			e, err := exec.New(app.Build())
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Run(2); err != nil {
				t.Fatal(err)
			}
			if e.Firings == 0 {
				t.Error("no firings recorded")
			}
		})
	}
}

// TestSuiteCharacteristics pins the qualitative benchmark-table properties
// the evaluation depends on.
func TestSuiteCharacteristics(t *testing.T) {
	wantStateful := map[string]bool{
		"MPEG2Decoder": true, "Vocoder": true, "Radar": true,
	}
	wantPeeking := map[string]bool{
		"ChannelVocoder": true, "FilterBank": true, "FMRadio": true, "Vocoder": true,
	}
	for _, app := range Suite() {
		prog := app.Build()
		g, err := ir.Flatten(prog)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		st, err := g.ComputeStats()
		if err != nil {
			t.Fatal(err)
		}
		if wantStateful[app.Name] && st.Stateful == 0 {
			t.Errorf("%s should contain stateful filters", app.Name)
		}
		if !wantStateful[app.Name] && st.Stateful > 0 {
			t.Errorf("%s should be stateless, found %d stateful filters", app.Name, st.Stateful)
		}
		if wantPeeking[app.Name] && st.Peeking == 0 {
			t.Errorf("%s should contain peeking filters", app.Name)
		}
	}
}

// TestLinearSuiteIsLinear checks the linear apps actually expose linear
// filters to the optimizer.
func TestLinearSuiteIsLinear(t *testing.T) {
	for _, app := range LinearSuite() {
		prog := app.Build()
		m := linear.Analyze(prog.Top)
		if len(m) < 1 {
			t.Errorf("%s: no linear filters detected", app.Name)
		}
	}
}

// TestLinearSuiteExecutes runs each linear benchmark unoptimized and
// optimized and compares outputs.
func TestLinearSuiteOptimizedEquivalence(t *testing.T) {
	for _, app := range LinearSuite() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			// The suite builders create fresh filters per call, so build
			// twice: once plain, once optimized.
			plain := app.Build()
			e1, err := exec.New(plain)
			if err != nil {
				t.Fatal(err)
			}
			if err := e1.Run(3); err != nil {
				t.Fatal(err)
			}
			optProg := app.Build()
			top, err := linear.Optimize(optProg.Top, linear.Options{Combine: true, Frequency: true, Block: 64}, nil)
			if err != nil {
				t.Fatal(err)
			}
			optProg.Top = top
			e2, err := exec.New(optProg)
			if err != nil {
				t.Fatal(err)
			}
			if err := e2.Run(3); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFreqHopVariantsExecute runs both the teleport and manual frequency-
// hopping radios.
func TestFreqHopVariantsExecute(t *testing.T) {
	for _, teleport := range []bool{true, false} {
		prog := FreqHoppingRadio(teleport)
		e, err := exec.New(prog)
		if err != nil {
			t.Fatalf("teleport=%v: %v", teleport, err)
		}
		if err := e.Run(2000); err != nil {
			t.Fatalf("teleport=%v: %v", teleport, err)
		}
	}
}

// TestBitonicSortActuallySorts captures the sorter's output and verifies
// every 16-key block emerges in ascending order.
func TestBitonicSortActuallySorts(t *testing.T) {
	prog := BitonicSort(16)
	pipe := prog.Top.(*ir.Pipeline)
	snk, got := exec.SliceSink("capture")
	pipe.Children[len(pipe.Children)-1] = snk
	out, err := exec.RunCollect(prog, 16*8, got)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) < 64 {
		t.Fatalf("only %d outputs", len(out))
	}
	blocks := len(out) / 16
	for b := 0; b < blocks; b++ {
		blk := out[b*16 : (b+1)*16]
		for i := 1; i < 16; i++ {
			if blk[i] < blk[i-1] {
				t.Fatalf("block %d not sorted: %v", b, blk)
			}
		}
	}
}

// TestMPEGDominantFilter pins the DCT-style claim: MPEG2Decoder's iDCT
// does more than 2x the work of the next-largest filter.
func TestMPEGDominantFilter(t *testing.T) {
	g, err := ir.Flatten(MPEG2Decoder())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	var works []int64
	for _, n := range g.Nodes {
		if n.Kind != ir.NodeFilter || n.IsSource() || n.IsSink() {
			continue
		}
		c := wfuncEstimate(n)
		works = append(works, c*int64(s.Reps[n.ID]))
	}
	sortInt64(works)
	if len(works) < 2 || works[len(works)-1] < 2*works[len(works)-2] {
		t.Errorf("dominant filter should do >2x the next largest: %v", works)
	}
}

func wfuncEstimate(n *ir.Node) int64 {
	return wfunc.EstimateKernel(n.Filter.Kernel).Cycles
}

func sortInt64(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
