// Package apps contains the benchmark applications of the paper's
// evaluation, re-implemented in the builder DSL from their published
// StreamIt structure: the 12-program parallelization suite (BitonicSort,
// ChannelVocoder, DCT, DES, FFT, FilterBank, FMRadio, Serpent, TDE,
// MPEG2Decoder, Vocoder, Radar), the linear-optimization suite (FIR,
// RateConvert, TargetDetect, Oversampler, DToA, plus the radio apps), and
// the frequency-hopping radio used by the teleport-messaging experiment.
package apps

import (
	"fmt"
	"math"

	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

// Source returns an IL source pushing a deterministic synthetic waveform
// (sum of two sinusoids), one item per firing — the stand-in for the
// paper's file readers and A/D converters.
func Source(name string) *ir.Filter {
	b := wfunc.NewKernel(name, 0, 0, 1)
	n := b.Field("n", 0)
	b.WorkBody(
		wfunc.Push1(wfunc.AddX(
			wfunc.Un(wfunc.Sin, wfunc.MulX(n, wfunc.C(0.3))),
			wfunc.MulX(wfunc.Un(wfunc.Cos, wfunc.MulX(n, wfunc.C(0.07))), wfunc.C(0.5)))),
		wfunc.SetF(n, wfunc.AddX(n, wfunc.C(1))),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeVoid, Out: ir.TypeFloat}
}

// PulseSource pushes a unit impulse every period samples.
func PulseSource(name string, period int) *ir.Filter {
	b := wfunc.NewKernel(name, 0, 0, 1)
	n := b.Field("n", 0)
	b.WorkBody(
		wfunc.Push1(wfunc.Bin(wfunc.Eq, n, wfunc.C(0))),
		wfunc.SetF(n, wfunc.Bin(wfunc.Mod, wfunc.AddX(n, wfunc.C(1)), wfunc.Ci(period))),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeVoid, Out: ir.TypeFloat}
}

// Sink returns an IL sink consuming pop items per firing.
func Sink(name string, pop int) *ir.Filter {
	b := wfunc.NewKernel(name, pop, pop, 0)
	i := b.Local("i")
	b.WorkBody(wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(pop), wfunc.Pop1()))
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeVoid}
}

// FIR returns an n-tap sliding FIR filter (peek n, pop 1, push 1) with
// deterministic windowed-sinc-flavoured coefficients parameterized by
// (cutoff, phase) so distinct instances differ.
func FIR(name string, taps int, cutoff float64) *ir.Filter {
	b := wfunc.NewKernel(name, taps, 1, 1)
	w := b.FieldArray("w", taps)
	i := b.Local("i")
	sum := b.Local("sum")
	b.InitBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(taps),
			wfunc.SetFIdx(w, i, wfunc.MulX(
				wfunc.Un(wfunc.Sin, wfunc.MulX(wfunc.AddX(i, wfunc.C(1)), wfunc.C(cutoff))),
				wfunc.C(1.0/float64(taps))))),
	)
	b.WorkBody(
		wfunc.Set(sum, wfunc.C(0)),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(taps),
			wfunc.Set(sum, wfunc.AddX(sum, wfunc.MulX(wfunc.PeekX(i), wfunc.FIdx(w, i))))),
		wfunc.Pop1(),
		wfunc.Push1(sum),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// FIRDecim returns a decimating FIR: peek taps, pop decim, push 1.
func FIRDecim(name string, taps, decim int, cutoff float64) *ir.Filter {
	b := wfunc.NewKernel(name, maxInt(taps, decim), decim, 1)
	w := b.FieldArray("w", taps)
	i := b.Local("i")
	sum := b.Local("sum")
	b.InitBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(taps),
			wfunc.SetFIdx(w, i, wfunc.Un(wfunc.Cos, wfunc.MulX(i, wfunc.C(cutoff))))),
	)
	b.WorkBody(
		wfunc.Set(sum, wfunc.C(0)),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(taps),
			wfunc.Set(sum, wfunc.AddX(sum, wfunc.MulX(wfunc.PeekX(i), wfunc.FIdx(w, i))))),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(decim), wfunc.Pop1()),
		wfunc.Push1(sum),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// Upsample inserts factor-1 zeros after every sample (pop 1, push factor).
func Upsample(name string, factor int) *ir.Filter {
	b := wfunc.NewKernel(name, 1, 1, factor)
	x := b.Local("x")
	body := []wfunc.Stmt{wfunc.Set(x, wfunc.PopE()), wfunc.Push1(x)}
	for i := 1; i < factor; i++ {
		body = append(body, wfunc.Push1(wfunc.C(0)))
	}
	b.WorkBody(body...)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// Downsample keeps one of every factor samples.
func Downsample(name string, factor int) *ir.Filter {
	b := wfunc.NewKernel(name, factor, factor, 1)
	i := b.Local("i")
	b.WorkBody(
		wfunc.Push1(wfunc.PeekE(0)),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(factor), wfunc.Pop1()),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// Adder sums n consecutive items into one (the equalizer's combiner).
func Adder(name string, n int) *ir.Filter {
	b := wfunc.NewKernel(name, n, n, 1)
	i := b.Local("i")
	sum := b.Local("sum")
	b.WorkBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(n),
			wfunc.Set(sum, wfunc.AddX(sum, wfunc.PeekX(i)))),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(n), wfunc.Pop1()),
		wfunc.Push1(sum),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// Gain multiplies by a constant.
func Gain(name string, g float64) *ir.Filter {
	b := wfunc.NewKernel(name, 1, 1, 1)
	b.WorkBody(wfunc.Push1(wfunc.MulX(wfunc.PopE(), wfunc.C(g))))
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// Magnitude computes sqrt(a^2+b^2) over pairs (nonlinear, stateless).
func Magnitude(name string) *ir.Filter {
	b := wfunc.NewKernel(name, 2, 2, 1)
	a := b.Local("a")
	c := b.Local("c")
	b.WorkBody(
		wfunc.Set(a, wfunc.PopE()),
		wfunc.Set(c, wfunc.PopE()),
		wfunc.Push1(wfunc.Un(wfunc.Sqrt, wfunc.AddX(wfunc.MulX(a, a), wfunc.MulX(c, c)))),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// MatMul applies a dense rows x cols constant matrix per firing (pop cols,
// push rows) — the shape of DCT stages and beamformer weights.
func MatMul(name string, rows, cols int, seed float64) *ir.Filter {
	b := wfunc.NewKernel(name, cols, cols, rows)
	m := b.FieldArray("m", rows*cols)
	i := b.Local("i")
	j := b.Local("j")
	sum := b.Local("sum")
	b.InitBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(rows*cols),
			wfunc.SetFIdx(m, i, wfunc.Un(wfunc.Cos, wfunc.MulX(i, wfunc.C(seed))))),
	)
	b.WorkBody(
		wfunc.ForUp(j, wfunc.Ci(0), wfunc.Ci(rows),
			wfunc.Set(sum, wfunc.C(0)),
			wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(cols),
				wfunc.Set(sum, wfunc.AddX(sum, wfunc.MulX(wfunc.PeekX(i),
					wfunc.FIdx(m, wfunc.AddX(wfunc.MulX(j, wfunc.Ci(cols)), i)))))),
			wfunc.Push1(sum),
		),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(cols), wfunc.Pop1()),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// XorPair xors consecutive items as integers (DES/Serpent rounds).
func XorPair(name string) *ir.Filter {
	b := wfunc.NewKernel(name, 2, 2, 1)
	b.WorkBody(wfunc.Push1(wfunc.Bin(wfunc.BitXor, wfunc.PopE(), wfunc.PopE())))
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// KeyXor xors each item with a round-constant stream derived from idx.
func KeyXor(name string, width int, round int) *ir.Filter {
	b := wfunc.NewKernel(name, width, width, width)
	k := b.FieldArray("k", width)
	i := b.Local("i")
	b.InitBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(width),
			wfunc.SetFIdx(k, i, wfunc.Bin(wfunc.Mod,
				wfunc.AddX(wfunc.MulX(i, wfunc.Ci(round+3)), wfunc.Ci(round)), wfunc.C(2)))),
	)
	b.WorkBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(width),
			wfunc.Push1(wfunc.Bin(wfunc.BitXor, wfunc.PeekX(i), wfunc.FIdx(k, i)))),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(width), wfunc.Pop1()),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// Sbox substitutes width-bit groups through a nonlinear table lookup.
func Sbox(name string, width int) *ir.Filter {
	b := wfunc.NewKernel(name, width, width, width)
	tbl := b.FieldArray("t", 16)
	i := b.Local("i")
	v := b.Local("v")
	b.InitBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(16),
			wfunc.SetFIdx(tbl, i, wfunc.Bin(wfunc.Mod, wfunc.MulX(wfunc.AddX(i, wfunc.C(5)), wfunc.C(7)), wfunc.C(16)))),
	)
	// Consume groups of 4 bits, emit substituted bits.
	b.WorkBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(width/4),
			// v = bits -> nibble
			wfunc.Set(v, wfunc.AddX(
				wfunc.MulX(wfunc.PeekX(wfunc.MulX(i, wfunc.C(4))), wfunc.C(8)),
				wfunc.AddX(
					wfunc.MulX(wfunc.PeekX(wfunc.AddX(wfunc.MulX(i, wfunc.C(4)), wfunc.C(1))), wfunc.C(4)),
					wfunc.AddX(
						wfunc.MulX(wfunc.PeekX(wfunc.AddX(wfunc.MulX(i, wfunc.C(4)), wfunc.C(2))), wfunc.C(2)),
						wfunc.PeekX(wfunc.AddX(wfunc.MulX(i, wfunc.C(4)), wfunc.C(3))))))),
			wfunc.Set(v, wfunc.FIdx(tbl, v)),
			wfunc.Push1(wfunc.Bin(wfunc.Mod, wfunc.DivX(v, wfunc.C(8)), wfunc.C(2))),
			wfunc.Push1(wfunc.Bin(wfunc.Mod, wfunc.DivX(v, wfunc.C(4)), wfunc.C(2))),
			wfunc.Push1(wfunc.Bin(wfunc.Mod, wfunc.DivX(v, wfunc.C(2)), wfunc.C(2))),
			wfunc.Push1(wfunc.Bin(wfunc.Mod, v, wfunc.C(2))),
		),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(width), wfunc.Pop1()),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// Permute applies a fixed permutation to width-item blocks.
func Permute(name string, width int, stride int) *ir.Filter {
	b := wfunc.NewKernel(name, width, width, width)
	i := b.Local("i")
	b.WorkBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(width),
			wfunc.Push1(wfunc.PeekX(wfunc.Bin(wfunc.Mod, wfunc.MulX(i, wfunc.Ci(stride)), wfunc.Ci(width))))),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(width), wfunc.Pop1()),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// StatefulFIR is a history-buffer FIR that keeps its window in fields (the
// Radar input stage's idiom): functionally similar to FIR but explicitly
// stateful, so the compiler cannot fiss it.
func StatefulFIR(name string, taps int, decim int) *ir.Filter {
	b := wfunc.NewKernel(name, decim, decim, 1)
	hist := b.FieldArray("h", taps)
	w := b.FieldArray("w", taps)
	i := b.Local("i")
	sum := b.Local("sum")
	b.InitBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(taps),
			wfunc.SetFIdx(w, i, wfunc.Un(wfunc.Sin, wfunc.MulX(i, wfunc.C(0.17))))),
	)
	var body []wfunc.Stmt
	for d := 0; d < decim; d++ {
		// Shift history and insert the new sample.
		body = append(body,
			wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(taps-1),
				wfunc.SetFIdx(hist, i, wfunc.FIdx(hist, wfunc.AddX(i, wfunc.C(1))))),
			wfunc.SetFIdx(hist, wfunc.Ci(taps-1), wfunc.PopE()),
		)
	}
	body = append(body,
		wfunc.Set(sum, wfunc.C(0)),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(taps),
			wfunc.Set(sum, wfunc.AddX(sum, wfunc.MulX(wfunc.FIdx(hist, i), wfunc.FIdx(w, i))))),
		wfunc.Push1(sum),
	)
	b.WorkBody(body...)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// PhaseUnwrap tracks phase continuity across firings (the Vocoder's
// stateful core).
func PhaseUnwrap(name string, extra int) *ir.Filter {
	b := wfunc.NewKernel(name, 1, 1, 1)
	prev := b.Field("prev", 0)
	acc := b.Field("acc", 0)
	x := b.Local("x")
	d := b.Local("d")
	i := b.Local("i")
	body := []wfunc.Stmt{
		wfunc.Set(x, wfunc.PopE()),
		wfunc.Set(d, wfunc.SubX(x, prev)),
		wfunc.IfS(wfunc.Bin(wfunc.Gt, d, wfunc.C(math.Pi)),
			wfunc.Set(d, wfunc.SubX(d, wfunc.C(2*math.Pi)))),
		wfunc.IfS(wfunc.Bin(wfunc.Lt, d, wfunc.C(-math.Pi)),
			wfunc.Set(d, wfunc.AddX(d, wfunc.C(2*math.Pi)))),
	}
	if extra > 0 {
		body = append(body,
			wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(extra),
				wfunc.Set(d, wfunc.AddX(d, wfunc.MulX(wfunc.Un(wfunc.Sin, d), wfunc.C(1e-9))))))
	}
	body = append(body,
		wfunc.SetF(acc, wfunc.AddX(acc, d)),
		wfunc.SetF(prev, x),
		wfunc.Push1(acc),
	)
	b.WorkBody(body...)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mustName(prefix string, i int) string { return fmt.Sprintf("%s%d", prefix, i) }
