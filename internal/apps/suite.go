package apps

import "streamit/internal/ir"

// App is one benchmark program with its builder.
type App struct {
	Name string
	Desc string
	// Build constructs a fresh program (filters are single-appearance, so
	// every use needs a new instance).
	Build func() *ir.Program
}

// Suite returns the 12-application parallelization benchmark suite of the
// paper's evaluation, with parameters sized to the published benchmark
// characteristics (filter counts, peeking, state).
func Suite() []App {
	return []App{
		{"BitonicSort", "bitonic sorting network, 16 keys (fine-grained)", func() *ir.Program { return BitonicSort(16) }},
		{"ChannelVocoder", "pitch detector + 16-channel filter bank", func() *ir.Program { return ChannelVocoder(16, 64) }},
		{"DCT", "16x16 IEEE reference DCT", DCT},
		{"DES", "16-round DES block cipher on bit streams", func() *ir.Program { return DES(16) }},
		{"FFT", "64-point FFT (reorder + butterfly stages)", func() *ir.Program { return FFTApp(64) }},
		{"FilterBank", "8-branch multirate analysis/synthesis bank", func() *ir.Program { return FilterBank(8, 64) }},
		{"FMRadio", "FM radio with 10-band equalizer", func() *ir.Program { return FMRadio(10, 64) }},
		{"Serpent", "32-round Serpent cipher (long pipeline)", func() *ir.Program { return Serpent(32) }},
		{"TDE", "time-delay equalization (long transform pipeline)", func() *ir.Program { return TDE(36, 5) }},
		{"MPEG2Decoder", "MPEG-2 block + motion-vector decoding subset", MPEG2Decoder},
		{"Vocoder", "phase vocoder (stateful phase unwrapping)", func() *ir.Program { return Vocoder(15) }},
		{"Radar", "beamformer with stateful input FIRs", func() *ir.Program { return Radar(12, 4) }},
	}
}

// LinearSuite returns the linear-optimization benchmark suite (the PLDI'03
// applications reproducible in this framework): each is dominated by
// linear filters that the optimizer can collapse and/or move to the
// frequency domain.
func LinearSuite() []App {
	return []App{
		{"FIR", "single 512-tap FIR filter", func() *ir.Program {
			return &ir.Program{Name: "FIR", Top: ir.Pipe("FIRPipe",
				Source("in"), FIR("fir512", 512, 0.13), Sink("out", 1))}
		}},
		{"RateConvert", "audio rate converter (up 2, FIR, down 3)", func() *ir.Program {
			return &ir.Program{Name: "RateConvert", Top: ir.Pipe("RateConvertPipe",
				Source("in"),
				Upsample("up2", 2),
				FIR("interp", 64, 0.21),
				Downsample("down3", 3),
				FIR("postFilter", 32, 0.4),
				Sink("out", 1))}
		}},
		{"TargetDetect", "matched filters with threshold detectors", func() *ir.Program {
			var branches []ir.Stream
			for i := 0; i < 4; i++ {
				branches = append(branches, ir.Pipe(mustName("match", i),
					FIR(mustName("matched", i), 64, 0.11+0.2*float64(i)),
					Gain(mustName("norm", i), 0.25),
				))
			}
			sj := ir.SJ("detectBank", ir.Duplicate(), ir.RoundRobin(), branches...)
			return &ir.Program{Name: "TargetDetect", Top: ir.Pipe("TargetDetectPipe",
				Source("radarIn"), sj, Sink("detections", 4))}
		}},
		{"FMRadioL", "FM radio (linear front end + equalizer)", func() *ir.Program {
			p := FMRadio(6, 64)
			p.Name = "FMRadioL"
			return p
		}},
		{"FilterBankL", "multirate filter bank", func() *ir.Program {
			p := FilterBank(8, 32)
			p.Name = "FilterBankL"
			return p
		}},
		{"Oversampler", "16x audio oversampler (cascaded interpolation)", func() *ir.Program {
			return &ir.Program{Name: "Oversampler", Top: ir.Pipe("OversamplerPipe",
				Source("in"),
				Upsample("os_up1", 2), FIR("os_fir1", 64, 0.18),
				Upsample("os_up2", 2), FIR("os_fir2", 64, 0.09),
				Upsample("os_up3", 2), FIR("os_fir3", 64, 0.045),
				Upsample("os_up4", 2), FIR("os_fir4", 64, 0.02),
				Sink("out", 16))}
		}},
		{"DToA", "1-bit D/A front end (oversampler + reconstruction)", func() *ir.Program {
			return &ir.Program{Name: "DToA", Top: ir.Pipe("DToAPipe",
				Source("pcm"),
				Upsample("da_up", 2), FIR("da_interp", 48, 0.15),
				FIR("da_shape", 16, 0.33),
				Downsample("da_dec", 2),
				Sink("analog", 1))}
		}},
	}
}
