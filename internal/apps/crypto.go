package apps

import (
	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

// BitSource pushes a deterministic pseudo-random bit per firing.
func BitSource(name string) *ir.Filter {
	b := wfunc.NewKernel(name, 0, 0, 1)
	st := b.Field("s", 1)
	b.WorkBody(
		wfunc.SetF(st, wfunc.Bin(wfunc.Mod,
			wfunc.AddX(wfunc.MulX(st, wfunc.C(75)), wfunc.C(74)), wfunc.C(65537))),
		wfunc.Push1(wfunc.Bin(wfunc.Mod, st, wfunc.C(2))),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeVoid, Out: ir.TypeBit}
}

func bitFilterType(f *ir.Filter) *ir.Filter {
	f.In, f.Out = ir.TypeBit, ir.TypeBit
	return f
}

// DES builds the 16-round DES benchmark on bit streams: each round splits
// the 64-bit block into halves, runs the Feistel function (expansion, key
// mix, S-boxes, permutation) against one half, XORs with the other, and
// crosses over — the published StreamIt structure of nested split-joins
// repeated per round.
func DES(rounds int) *ir.Program {
	const half = 32
	p := ir.Pipe("DESPipe", BitSource("plaintext"))
	for r := 0; r < rounds; r++ {
		// Split the 64-bit block into L (32) and R (32).
		fPath := ir.Pipe(mustName("feistel", r),
			bitFilterType(expand(mustName("expand", r), half)),
			bitFilterType(KeyXor(mustName("keymix", r), 48, r)),
			bitFilterType(Sbox(mustName("sbox", r), 48)),
			bitFilterType(compress48(mustName("pbox", r))),
		)
		// Duplicate R into the Feistel path and the crossover; XOR with L.
		round := ir.SJ(mustName("round", r),
			ir.RoundRobin(half, half), // L | R
			ir.RoundRobin(half, half*2),
			ir.Identity(ir.TypeBit), // L passes
			ir.SJ(mustName("rsplit", r), ir.Duplicate(), ir.RoundRobin(half, half),
				fPath, ir.Identity(ir.TypeBit)),
		)
		// After the round splitjoin the stream is L | f(R) | R; XOR the
		// first two and emit R first (crossover).
		p.Add(round, bitFilterType(desCombine(mustName("combine", r), half)))
	}
	p.Add(bitFilterType(Sink("ciphertext", 64)))
	return &ir.Program{Name: "DES", Top: p}
}

// expand widens 32 bits to 48 by re-reading edge bits (the DES E-box).
func expand(name string, in int) *ir.Filter {
	out := in * 3 / 2
	b := wfunc.NewKernel(name, in, in, out)
	i := b.Local("i")
	b.WorkBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(out),
			wfunc.Push1(wfunc.PeekX(wfunc.Bin(wfunc.Mod, wfunc.MulX(i, wfunc.C(5)), wfunc.Ci(in))))),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(in), wfunc.Pop1()),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeBit, Out: ir.TypeBit}
}

// compress48 narrows 48 bits back to 32 with a P-box style selection.
func compress48(name string) *ir.Filter {
	b := wfunc.NewKernel(name, 48, 48, 32)
	i := b.Local("i")
	b.WorkBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(32),
			wfunc.Push1(wfunc.PeekX(wfunc.Bin(wfunc.Mod, wfunc.MulX(i, wfunc.C(7)), wfunc.C(48))))),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(48), wfunc.Pop1()),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeBit, Out: ir.TypeBit}
}

// desCombine takes L | f(R) | R (32+32+32) and emits R | (L xor f(R)).
func desCombine(name string, half int) *ir.Filter {
	b := wfunc.NewKernel(name, 3*half, 3*half, 2*half)
	i := b.Local("i")
	b.WorkBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(half),
			wfunc.Push1(wfunc.PeekX(wfunc.AddX(i, wfunc.Ci(2*half))))),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(half),
			wfunc.Push1(wfunc.Bin(wfunc.BitXor,
				wfunc.PeekX(i), wfunc.PeekX(wfunc.AddX(i, wfunc.Ci(half)))))),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(3*half), wfunc.Pop1()),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeBit, Out: ir.TypeBit}
}

// Serpent builds the Serpent cipher benchmark: a long pipeline of rounds,
// each a key mix, S-box substitution, and linear transform over 128-bit
// blocks — fused-down-to-a-pipeline shape where space multiplexing shines.
func Serpent(rounds int) *ir.Program {
	const width = 128
	p := ir.Pipe("SerpentPipe", BitSource("plain"))
	for r := 0; r < rounds; r++ {
		p.Add(
			bitFilterType(KeyXor(mustName("skey", r), width, r)),
			bitFilterType(Sbox(mustName("ssbox", r), width)),
			bitFilterType(Permute(mustName("slt", r), width, 5)),
		)
	}
	p.Add(bitFilterType(Sink("cipher", width)))
	return &ir.Program{Name: "Serpent", Top: p}
}

// BitonicSort builds the bitonic sorting network: log2(n)*(log2(n)+1)/2
// stages of parallel 2-key compare-exchange filters connected by
// round-robin shuffles — the finest-granularity benchmark in the suite.
func BitonicSort(n int) *ir.Program {
	p := ir.Pipe("BitonicPipe", keySource("keys"))
	stage := 0
	for k := 2; k <= n; k *= 2 {
		for j := k / 2; j >= 1; j /= 2 {
			p.Add(bitonicStage(stage, n, j, k))
			stage++
		}
	}
	p.Add(Sink("sorted", n))
	return &ir.Program{Name: "BitonicSort", Top: p}
}

// keySource pushes pseudo-random keys.
func keySource(name string) *ir.Filter {
	b := wfunc.NewKernel(name, 0, 0, 1)
	st := b.Field("s", 7)
	b.WorkBody(
		wfunc.SetF(st, wfunc.Bin(wfunc.Mod,
			wfunc.AddX(wfunc.MulX(st, wfunc.C(137)), wfunc.C(29)), wfunc.C(2048))),
		wfunc.Push1(st),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeVoid, Out: ir.TypeFloat}
}

// bitonicStage pairs keys at distance j within blocks of size k and
// compare-exchanges each pair in parallel (n/2 tiny filters). The sort
// direction alternates per k-block: pairs whose first element has bit k
// clear sort ascending, the rest descending — the classic bitonic network.
func bitonicStage(stage, n, j, k int) ir.Stream {
	perm := pairPerm(n, j)
	var ces []ir.Stream
	weights := make([]int, n/2)
	for i := 0; i < n/2; i++ {
		asc := perm[2*i]&k == 0
		ces = append(ces, compareExchange(mustName(mustName("ce", stage)+"_", i), asc))
		weights[i] = 2 // each compare-exchange takes a consecutive pair
	}
	sj := ir.SJ(mustName("cestage", stage),
		ir.RoundRobin(weights...), ir.RoundRobin(weights...), ces...)
	return ir.Pipe(mustName("bstage", stage),
		pairShuffle(mustName("shuf", stage), n, j, false),
		sj,
		pairShuffle(mustName("unshuf", stage), n, j, true),
	)
}

// compareExchange emits the pair in ascending or descending order.
func compareExchange(name string, asc bool) *ir.Filter {
	b := wfunc.NewKernel(name, 2, 2, 2)
	a := b.Local("a")
	c := b.Local("c")
	first, second := wfunc.Min, wfunc.Max
	if !asc {
		first, second = wfunc.Max, wfunc.Min
	}
	b.WorkBody(
		wfunc.Set(a, wfunc.PopE()),
		wfunc.Set(c, wfunc.PopE()),
		wfunc.Push1(wfunc.Bin(first, a, c)),
		wfunc.Push1(wfunc.Bin(second, a, c)),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// pairPerm lists the n positions so partners at distance j are adjacent.
func pairPerm(n, j int) []int {
	perm := make([]int, 0, n)
	used := make([]bool, n)
	for i := 0; i < n; i++ {
		if used[i] {
			continue
		}
		partner := i ^ j
		if partner < n && !used[partner] && partner != i {
			perm = append(perm, i, partner)
			used[i], used[partner] = true, true
		} else if !used[i] {
			perm = append(perm, i)
			used[i] = true
		}
	}
	return perm
}

// pairShuffle reorders an n-key block so elements paired at distance j
// become adjacent (or restores the order when invert is set).
func pairShuffle(name string, n, j int, invert bool) *ir.Filter {
	perm := pairPerm(n, j)
	table := make([]float64, n)
	if invert {
		for pos, src := range perm {
			table[src] = float64(pos)
		}
	} else {
		for pos, src := range perm {
			table[pos] = float64(src)
		}
	}
	b := wfunc.NewKernel(name, n, n, n)
	tf := b.FieldArray("perm", n, table...)
	i := b.Local("i")
	b.WorkBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(n),
			wfunc.Push1(wfunc.PeekX(wfunc.FIdx(tf, i)))),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(n), wfunc.Pop1()),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// MPEG2Decoder builds the block/motion-vector subset of the MPEG-2
// decoder: a split-join of motion-vector decoding (lightly stateful:
// predictors persist across macroblocks) against block decoding (inverse
// quantization and the dominant iDCT), joined for motion compensation and
// saturation.
func MPEG2Decoder() *ir.Program {
	const blk = 64
	mv := func() *ir.Filter {
		b := wfunc.NewKernel("motionVectors", 8, 8, 8)
		pred := b.Field("pred", 0)
		i := b.Local("i")
		v := b.Local("v")
		b.WorkBody(
			wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(8),
				wfunc.Set(v, wfunc.AddX(wfunc.PeekX(i), pred)),
				wfunc.Push1(v),
			),
			wfunc.SetF(pred, wfunc.MulX(wfunc.PeekE(7), wfunc.C(0.5))),
			wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(8), wfunc.Pop1()),
		)
		return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
	}()
	blockPath := ir.Pipe("blockDecode",
		Gain("iquant", 0.125),
		MatMul("idct8x8", blk, blk, 0.017), // dominant filter
		Gain("mismatch", 1.0001),
	)
	sj := ir.SJ("mbSplit", ir.RoundRobin(8, blk), ir.RoundRobin(8, blk),
		mv, blockPath)
	top := ir.Pipe("MPEG2Decoder",
		Source("bitstream"),
		sj,
		motionComp("motionComp", 8, blk),
		boundSat("clip"),
		Sink("frames", 1),
	)
	return &ir.Program{Name: "MPEG2Decoder", Top: top}
}

// motionComp merges motion vectors with decoded blocks.
func motionComp(name string, mvN, blkN int) *ir.Filter {
	total := mvN + blkN
	b := wfunc.NewKernel(name, total, total, blkN)
	i := b.Local("i")
	b.WorkBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(blkN),
			wfunc.Push1(wfunc.AddX(
				wfunc.PeekX(wfunc.AddX(i, wfunc.Ci(mvN))),
				wfunc.MulX(wfunc.PeekX(wfunc.Bin(wfunc.Mod, i, wfunc.Ci(mvN))), wfunc.C(0.01))))),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(total), wfunc.Pop1()),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}
