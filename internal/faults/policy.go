package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Action is what a supervised engine does when a kernel firing fails.
type Action int

const (
	// Fail propagates the error to the caller (the default).
	Fail Action = iota
	// Retry rolls the firing back (tapes and filter state) and re-executes
	// it up to Retries times with linear Backoff between attempts.
	Retry
	// Skip drops the firing: the filter's pop-rate items are consumed and
	// discarded, and push-rate zeros are emitted so the static schedule
	// stays consistent downstream.
	Skip
	// Restart resets the filter to its initial state (fresh fields, init
	// function re-run), rolls the tapes back, and re-executes the firing
	// once.
	Restart
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Fail:
		return "fail"
	case Retry:
		return "retry"
	case Skip:
		return "skip"
	case Restart:
		return "restart"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Policy is one filter's recovery behaviour.
type Policy struct {
	Action  Action
	Retries int           // Retry only; attempts after the first failure
	Backoff time.Duration // Retry only; linear per-attempt backoff
}

// String renders the spec form of the policy.
func (p Policy) String() string {
	if p.Action == Retry {
		if p.Backoff > 0 {
			return fmt.Sprintf("retry:%d:%s", p.Retries, p.Backoff)
		}
		return fmt.Sprintf("retry:%d", p.Retries)
	}
	return p.Action.String()
}

// Policies maps filters to recovery policies, with a default for filters
// not named explicitly. The zero value fails everything — supervision is
// strictly opt-in.
type Policies struct {
	Default   Policy
	PerFilter map[string]Policy
}

// For returns the policy governing a filter. Flattened node names carry a
// "#ID" uniquifier and mapped rewrites add fission ("/fN") and fusion
// ("A+B") decoration; a policy keyed by the bare source-level name matches
// every instance of that filter, including replicas and fused segments
// that contain it (first named constituent wins on a fused segment).
func (ps Policies) For(filter string) Policy {
	if p, ok := ps.PerFilter[filter]; ok {
		return p
	}
	base := BaseName(filter)
	if p, ok := ps.PerFilter[base]; ok {
		return p
	}
	if parts := SplitConstituents(base); len(parts) > 1 {
		for _, part := range parts {
			if p, ok := ps.PerFilter[part]; ok {
				return p
			}
		}
	}
	return ps.Default
}

// Active reports whether any filter has a non-Fail policy (i.e. whether
// the engines need rollback bookkeeping at all).
func (ps Policies) Active() bool {
	if ps.Default.Action != Fail {
		return true
	}
	for _, p := range ps.PerFilter {
		if p.Action != Fail {
			return true
		}
	}
	return false
}

// ParsePolicies parses an -on-error flag value. Entries are separated by
// ','; each is either a bare policy (setting the default) or
// filter=policy. A policy is fail, skip, restart, or
// retry[:attempts[:backoff]] (attempts default 3, backoff 0).
//
//	-on-error skip
//	-on-error "retry:5:10ms"
//	-on-error "LowPass=restart,Eq=retry:2,default=skip"
//
// The key "default" is accepted as an explicit alias for the bare form.
func ParsePolicies(spec string) (Policies, error) {
	ps := Policies{PerFilter: map[string]Policy{}}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		target := ""
		polStr := entry
		if name, rest, ok := strings.Cut(entry, "="); ok {
			target, polStr = strings.TrimSpace(name), strings.TrimSpace(rest)
		}
		pol, err := parsePolicy(polStr)
		if err != nil {
			return Policies{}, err
		}
		if target == "" || target == "default" {
			ps.Default = pol
		} else {
			ps.PerFilter[target] = pol
		}
	}
	return ps, nil
}

func parsePolicy(s string) (Policy, error) {
	parts := strings.Split(s, ":")
	switch parts[0] {
	case "fail":
		return Policy{Action: Fail}, nil
	case "skip":
		return Policy{Action: Skip}, nil
	case "restart":
		return Policy{Action: Restart}, nil
	case "retry":
		p := Policy{Action: Retry, Retries: 3}
		if len(parts) > 1 {
			n, err := strconv.Atoi(parts[1])
			if err != nil || n <= 0 {
				return Policy{}, fmt.Errorf("faults: retry wants a positive attempt count in %q", s)
			}
			p.Retries = n
		}
		if len(parts) > 2 {
			d, err := time.ParseDuration(parts[2])
			if err != nil || d < 0 {
				return Policy{}, fmt.Errorf("faults: retry wants a duration backoff in %q", s)
			}
			p.Backoff = d
		}
		if len(parts) > 3 {
			return Policy{}, fmt.Errorf("faults: too many parts in policy %q", s)
		}
		return p, nil
	}
	return Policy{}, fmt.Errorf("faults: unknown policy %q (want fail, skip, restart, or retry[:n[:backoff]])", s)
}
