package faults

import (
	"reflect"
	"testing"
	"time"
)

func TestParsePlanExplicit(t *testing.T) {
	p, err := ParsePlan("panic:LowPass@12; corrupt:Eq@30,stall:Demod@5")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Filter: "LowPass", Firing: 12, Kind: Panic},
		{Filter: "Eq", Firing: 30, Kind: Corrupt},
		{Filter: "Demod", Firing: 5, Kind: Stall},
	}
	if !reflect.DeepEqual(p.Faults, want) {
		t.Fatalf("got %v, want %v", p.Faults, want)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{"", "panic", "panic:X", "panic:X@-1", "blow:X@3", "rand:0@7", "rand:2@1;rand:2@2"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) should fail", bad)
		}
	}
}

func TestSeededScheduleIsDeterministic(t *testing.T) {
	filters := []string{"A", "B", "C"}
	p, err := ParsePlan("rand:5@42")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := p.Materialize(filters)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Materialize(filters)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("same seed diverged: %v vs %v", s1, s2)
	}
	if len(s1) != 5 {
		t.Fatalf("got %d faults, want 5", len(s1))
	}
	for _, f := range s1 {
		if f.Kind == Stall {
			t.Fatalf("rand schedule must not contain stalls: %v", f)
		}
	}
	other, err := ParsePlan("rand:5@43")
	if err != nil {
		t.Fatal(err)
	}
	s3, err := other.Materialize(filters)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(s1, s3) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestMaterializeRejectsUnknownFilter(t *testing.T) {
	p, err := ParsePlan("panic:Ghost@1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Materialize([]string{"A", "B"}); err == nil {
		t.Fatal("unknown filter should be rejected")
	}
}

func TestInjectorConsumesOneShot(t *testing.T) {
	p, _ := ParsePlan("panic:A@3")
	inj, err := NewInjector(p, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := inj.Next("A", 2); ok {
		t.Fatal("fault fired early")
	}
	f, ok := inj.Next("A", 3)
	if !ok || f.Kind != Panic {
		t.Fatalf("fault did not fire: %v %v", f, ok)
	}
	if _, ok := inj.Next("A", 3); ok {
		t.Fatal("fault fired twice")
	}
	if inj.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", inj.Remaining())
	}
}

func TestInjectorLateDelivery(t *testing.T) {
	// A fault whose firing index was passed still triggers at the next
	// opportunity (<= semantics), so off-by-one engine counters cannot
	// silently drop scheduled faults.
	p, _ := ParsePlan("corrupt:A@1")
	inj, err := NewInjector(p, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := inj.Next("A", 10); !ok || f.Kind != Corrupt {
		t.Fatal("late fault should still deliver")
	}
}

func TestParsePolicies(t *testing.T) {
	ps, err := ParsePolicies("LowPass=restart, Eq=retry:2:10ms, default=skip")
	if err != nil {
		t.Fatal(err)
	}
	if ps.Default.Action != Skip {
		t.Fatalf("default = %v", ps.Default)
	}
	if got := ps.For("LowPass"); got.Action != Restart {
		t.Fatalf("LowPass = %v", got)
	}
	if got := ps.For("Eq"); got.Action != Retry || got.Retries != 2 || got.Backoff != 10*time.Millisecond {
		t.Fatalf("Eq = %+v", got)
	}
	if got := ps.For("Other"); got.Action != Skip {
		t.Fatalf("fallback = %v", got)
	}
	if !ps.Active() {
		t.Fatal("policies should be active")
	}

	bare, err := ParsePolicies("retry")
	if err != nil {
		t.Fatal(err)
	}
	if bare.Default.Action != Retry || bare.Default.Retries != 3 {
		t.Fatalf("bare retry = %+v", bare.Default)
	}

	var zero Policies
	if zero.Active() {
		t.Fatal("zero policies must be inactive")
	}
	if _, err := ParsePolicies("explode"); err == nil {
		t.Fatal("bad policy should be rejected")
	}
	if _, err := ParsePolicies("retry:0"); err == nil {
		t.Fatal("retry:0 should be rejected")
	}
}

func TestParsePlanWorkerFaults(t *testing.T) {
	p, err := ParsePlan("crash:worker1@200; stall:worker0@5, slow:worker2@8")
	if err != nil {
		t.Fatal(err)
	}
	want := []WorkerFault{
		{Worker: 1, Iter: 200, Kind: Crash},
		{Worker: 0, Iter: 5, Kind: Stall},
		{Worker: 2, Iter: 8, Kind: Slow},
	}
	if !reflect.DeepEqual(p.WorkerFaults, want) {
		t.Fatalf("got %v, want %v", p.WorkerFaults, want)
	}
	if got := want[0].String(); got != "crash:worker1@200" {
		t.Fatalf("String() = %q", got)
	}
	// Crash and slow target workers, never filters; panic targets filters,
	// never workers (a stalled worker is just every filter on it stalling,
	// so stall accepts both).
	for _, bad := range []string{"crash:LowPass@3", "slow:LowPass@3", "crash:worker-1@3"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) should fail", bad)
		}
	}
}

func TestBaseNameInstances(t *testing.T) {
	cases := map[string]string{
		"Gain":      "Gain",
		"Gain#7":    "Gain",
		"Gain/f2#9": "Gain",
		"A+B#3":     "A+B",
		"A+B/f1#4":  "A+B",
		"worker1":   "worker1",
	}
	for in, want := range cases {
		if got := BaseName(in); got != want {
			t.Errorf("BaseName(%q) = %q, want %q", in, got, want)
		}
	}
	if parts := SplitConstituents("A+B+C"); !reflect.DeepEqual(parts, []string{"A", "B", "C"}) {
		t.Errorf("SplitConstituents = %v", parts)
	}
}

// TestMaterializeReplicaRemap: a fault against a source filter name that
// fission replicated resolves onto the replica handling that original
// firing — replica r of k takes original firings r, r+k, r+2k, ... so
// original firing n maps to replica n%k at its local firing n/k.
func TestMaterializeReplicaRemap(t *testing.T) {
	p, err := ParsePlan("panic:Gain@5")
	if err != nil {
		t.Fatal(err)
	}
	filters := []string{"Src#1", "Gain/f0#2", "Gain/f1#3", "Gain/f2#4", "Snk#5"}
	fs, err := p.Materialize(filters)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Filter != "Gain/f2#4" || fs[0].Firing != 1 {
		t.Fatalf("got %v, want panic on Gain/f2#4 at local firing 1", fs)
	}
}

// TestMaterializeFusedConstituent: a fault against a source filter that
// fusion folded into a segment resolves onto the fused instance.
func TestMaterializeFusedConstituent(t *testing.T) {
	p, err := ParsePlan("corrupt:B@2")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := p.Materialize([]string{"Src#1", "A+B#2", "Snk#3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Filter != "A+B#2" || fs[0].Firing != 2 {
		t.Fatalf("got %v, want corrupt on A+B#2 at firing 2", fs)
	}
}

// TestMaterializeAmbiguousRejected: a base name matching several instances
// that do not form a complete replica set is an error, not a guess.
func TestMaterializeAmbiguousRejected(t *testing.T) {
	p, err := ParsePlan("panic:Gain@5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Materialize([]string{"Gain#1", "Gain#2"}); err == nil {
		t.Fatal("ambiguous duplicate instances should be rejected")
	}
	if _, err := p.Materialize([]string{"Gain/f0#1", "Gain/f2#2"}); err == nil {
		t.Fatal("an incomplete replica set should be rejected")
	}
}

// TestPoliciesResolveInstances: per-filter policies written against source
// names apply to flattened, replicated, and fused instances.
func TestPoliciesResolveInstances(t *testing.T) {
	ps, err := ParsePolicies("Gain=retry, B=restart, default=fail")
	if err != nil {
		t.Fatal(err)
	}
	if got := ps.For("Gain/f1#7"); got.Action != Retry {
		t.Errorf("replica policy = %v, want retry", got)
	}
	if got := ps.For("A+B#3"); got.Action != Restart {
		t.Errorf("fused-constituent policy = %v, want restart", got)
	}
	if got := ps.For("Other#2"); got.Action != Fail {
		t.Errorf("fallback = %v, want fail", got)
	}
}

func TestParsePlanShardFaults(t *testing.T) {
	p, err := ParsePlan("crash:shard1@32; stall:shard0@5, partition:shard2@8")
	if err != nil {
		t.Fatal(err)
	}
	want := []ShardFault{
		{Shard: 1, Iter: 32, Kind: Crash},
		{Shard: 0, Iter: 5, Kind: Stall},
		{Shard: 2, Iter: 8, Kind: Partition},
	}
	if !reflect.DeepEqual(p.ShardFaults, want) {
		t.Fatalf("got %v, want %v", p.ShardFaults, want)
	}
	if got := want[2].String(); got != "partition:shard2@8" {
		t.Fatalf("String() = %q", got)
	}
	// Partition targets shards, never filters or workers; shard faults
	// reject filter-only kinds.
	for _, bad := range []string{"partition:LowPass@3", "partition:worker1@3", "panic:shard0@3", "slow:shard0@3", "crash:shard-1@3"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) should fail", bad)
		}
	}
	// A shard-only plan is non-empty, and shard faults coexist with the
	// filter and worker forms in one spec.
	if p.Empty() {
		t.Fatal("shard-only plan reported empty")
	}
	mixed, err := ParsePlan("panic:LowPass@3; crash:worker1@9; crash:shard0@12")
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed.Faults) != 1 || len(mixed.WorkerFaults) != 1 || len(mixed.ShardFaults) != 1 {
		t.Fatalf("mixed plan parsed as %+v", mixed)
	}
}
