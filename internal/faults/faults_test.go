package faults

import (
	"reflect"
	"testing"
	"time"
)

func TestParsePlanExplicit(t *testing.T) {
	p, err := ParsePlan("panic:LowPass@12; corrupt:Eq@30,stall:Demod@5")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Filter: "LowPass", Firing: 12, Kind: Panic},
		{Filter: "Eq", Firing: 30, Kind: Corrupt},
		{Filter: "Demod", Firing: 5, Kind: Stall},
	}
	if !reflect.DeepEqual(p.Faults, want) {
		t.Fatalf("got %v, want %v", p.Faults, want)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{"", "panic", "panic:X", "panic:X@-1", "blow:X@3", "rand:0@7", "rand:2@1;rand:2@2"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) should fail", bad)
		}
	}
}

func TestSeededScheduleIsDeterministic(t *testing.T) {
	filters := []string{"A", "B", "C"}
	p, err := ParsePlan("rand:5@42")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := p.Materialize(filters)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Materialize(filters)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("same seed diverged: %v vs %v", s1, s2)
	}
	if len(s1) != 5 {
		t.Fatalf("got %d faults, want 5", len(s1))
	}
	for _, f := range s1 {
		if f.Kind == Stall {
			t.Fatalf("rand schedule must not contain stalls: %v", f)
		}
	}
	other, err := ParsePlan("rand:5@43")
	if err != nil {
		t.Fatal(err)
	}
	s3, err := other.Materialize(filters)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(s1, s3) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestMaterializeRejectsUnknownFilter(t *testing.T) {
	p, err := ParsePlan("panic:Ghost@1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Materialize([]string{"A", "B"}); err == nil {
		t.Fatal("unknown filter should be rejected")
	}
}

func TestInjectorConsumesOneShot(t *testing.T) {
	p, _ := ParsePlan("panic:A@3")
	inj, err := NewInjector(p, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := inj.Next("A", 2); ok {
		t.Fatal("fault fired early")
	}
	f, ok := inj.Next("A", 3)
	if !ok || f.Kind != Panic {
		t.Fatalf("fault did not fire: %v %v", f, ok)
	}
	if _, ok := inj.Next("A", 3); ok {
		t.Fatal("fault fired twice")
	}
	if inj.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", inj.Remaining())
	}
}

func TestInjectorLateDelivery(t *testing.T) {
	// A fault whose firing index was passed still triggers at the next
	// opportunity (<= semantics), so off-by-one engine counters cannot
	// silently drop scheduled faults.
	p, _ := ParsePlan("corrupt:A@1")
	inj, err := NewInjector(p, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := inj.Next("A", 10); !ok || f.Kind != Corrupt {
		t.Fatal("late fault should still deliver")
	}
}

func TestParsePolicies(t *testing.T) {
	ps, err := ParsePolicies("LowPass=restart, Eq=retry:2:10ms, default=skip")
	if err != nil {
		t.Fatal(err)
	}
	if ps.Default.Action != Skip {
		t.Fatalf("default = %v", ps.Default)
	}
	if got := ps.For("LowPass"); got.Action != Restart {
		t.Fatalf("LowPass = %v", got)
	}
	if got := ps.For("Eq"); got.Action != Retry || got.Retries != 2 || got.Backoff != 10*time.Millisecond {
		t.Fatalf("Eq = %+v", got)
	}
	if got := ps.For("Other"); got.Action != Skip {
		t.Fatalf("fallback = %v", got)
	}
	if !ps.Active() {
		t.Fatal("policies should be active")
	}

	bare, err := ParsePolicies("retry")
	if err != nil {
		t.Fatal(err)
	}
	if bare.Default.Action != Retry || bare.Default.Retries != 3 {
		t.Fatalf("bare retry = %+v", bare.Default)
	}

	var zero Policies
	if zero.Active() {
		t.Fatal("zero policies must be inactive")
	}
	if _, err := ParsePolicies("explode"); err == nil {
		t.Fatal("bad policy should be rejected")
	}
	if _, err := ParsePolicies("retry:0"); err == nil {
		t.Fatal("retry:0 should be rejected")
	}
}
