// Package faults is the runtime-robustness substrate of the execution
// engines: a deterministic, seedable fault injector (kernel panics, stalls,
// and value corruption at chosen firings) and per-kernel recovery policies
// (fail, retry, skip, restart). The paper's execution model assumes filters
// never fail; this package supplies the controlled failure modes and the
// recovery vocabulary that let the engines prove they can diagnose and
// survive a misbehaving kernel instead of hanging or dying on a bare panic.
//
// Plans are textual so they thread through CLI flags:
//
//	panic:LowPass@12;corrupt:Eq@30;stall:Demod@5
//	rand:4@42
//
// The first form schedules explicit one-shot faults ("make filter LowPass
// panic at its 12th firing"). The second derives a pseudo-random schedule
// of 4 panic/corrupt faults from seed 42 — the same seed over the same
// graph always yields the same schedule, so a failure found by a fuzzing
// run is replayable bit-for-bit.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind enumerates injected failure modes.
type Kind int

const (
	// Panic makes the firing fail as if the kernel panicked.
	Panic Kind = iota
	// Stall makes the kernel block forever (watchdog fodder). The
	// sequential engine, which has no watchdog, reports stalls
	// synchronously as errors.
	Stall
	// Corrupt lets the firing run but replaces every value it pushes with
	// CorruptValue.
	Corrupt
	// Crash kills a whole worker goroutine of the mapped engine (worker
	// faults only; filters cannot crash a worker except by panicking).
	Crash
	// Slow injects a one-shot delay into a worker's iteration (worker
	// faults only) — degradation without failure.
	Slow
	// Partition makes a distributed shard stop heartbeating while its
	// sockets stay open (shard faults only) — the network-partition
	// failure mode, distinct from a crash (connection reset) and a stall
	// (heartbeats keep flowing but the barrier never arrives).
	Partition
)

// CorruptValue is the sentinel emitted by Corrupt faults — large, exactly
// representable, and never produced by the benchmark kernels, so degraded
// output is unmistakable in tests and logs.
const CorruptValue = 9.9e99

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Stall:
		return "stall"
	case Corrupt:
		return "corrupt"
	case Crash:
		return "crash"
	case Slow:
		return "slow"
	case Partition:
		return "partition"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind maps the spec names onto Kind values.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "panic":
		return Panic, nil
	case "stall":
		return Stall, nil
	case "corrupt":
		return Corrupt, nil
	}
	return 0, fmt.Errorf("faults: unknown fault kind %q (want panic, stall, or corrupt)", s)
}

// Fault is one scheduled failure: filter Filter misbehaves at its
// Firing-th firing (0-based, counted per engine from the start of the
// supervised phase). Faults are one-shot: once triggered they are consumed,
// so a retried or restarted firing succeeds.
type Fault struct {
	Filter string
	Firing int64
	Kind   Kind
}

// String renders the spec form of the fault.
func (f Fault) String() string {
	return fmt.Sprintf("%s:%s@%d", f.Kind, f.Filter, f.Firing)
}

// WorkerFault is one scheduled worker-level failure on the mapped engine:
// worker Worker crashes, stalls, or slows at the start of steady iteration
// Iter (0-based, counted over the whole run). Worker faults are one-shot,
// and — unlike filter faults — they survive firing rollback: a crash
// consumed before a checkpoint replay is not re-injected, so recovery
// converges. Engines without workers (sequential, parallel, dynamic)
// ignore them.
type WorkerFault struct {
	Worker int
	Iter   int64
	Kind   Kind // Crash, Stall, or Slow
}

// String renders the spec form of the worker fault.
func (f WorkerFault) String() string {
	return fmt.Sprintf("%s:worker%d@%d", f.Kind, f.Worker, f.Iter)
}

// ShardFault is one scheduled shard-level failure on the distributed
// engine: shard Shard (its stable join-order ID, which survives re-plans)
// fails at the start of steady iteration Iter. Crash kills the shard
// process (or, in-process, severs every connection at once); Stall wedges
// the shard while its heartbeats keep flowing (barrier-deadline fodder);
// Partition silences heartbeats while the sockets stay open. Shard faults
// are one-shot and survive rollback, like worker faults. Engines other
// than the distributed one ignore them.
type ShardFault struct {
	Shard int
	Iter  int64
	Kind  Kind // Crash, Stall, or Partition
}

// String renders the spec form of the shard fault.
func (f ShardFault) String() string {
	return fmt.Sprintf("%s:shard%d@%d", f.Kind, f.Shard, f.Iter)
}

// RandSpec asks for N pseudo-random faults derived from Seed, scheduled
// over the graph's filters within the first MaxFiring firings. Stalls are
// never generated randomly (they would hang watchdog-less engines);
// explicit specs can still schedule them.
type RandSpec struct {
	N         int
	Seed      int64
	MaxFiring int64
}

// Plan is a parsed fault schedule: explicit filter faults, worker-level
// faults, plus an optional random generator, materialized against a
// concrete graph by NewInjector (worker faults are consumed by the mapped
// engine's supervisor instead — they name workers, not filters).
type Plan struct {
	Faults       []Fault
	WorkerFaults []WorkerFault
	ShardFaults  []ShardFault
	Rand         *RandSpec
}

// Empty reports whether the plan schedules nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Faults) == 0 && len(p.WorkerFaults) == 0 && len(p.ShardFaults) == 0 && p.Rand == nil)
}

// workerTarget recognizes the "workerN" target form of worker-level
// faults.
func workerTarget(target string) (int, bool) {
	return indexedTarget(target, "worker")
}

// shardTarget recognizes the "shardN" target form of shard-level faults.
func shardTarget(target string) (int, bool) {
	return indexedTarget(target, "shard")
}

func indexedTarget(target, prefix string) (int, bool) {
	rest, ok := strings.CutPrefix(target, prefix)
	if !ok || rest == "" {
		return 0, false
	}
	w, err := strconv.Atoi(rest)
	if err != nil || w < 0 {
		return 0, false
	}
	return w, true
}

// ParsePlan parses a -faults flag value. Entries are separated by ';' or
// ','; each is kind:filter@firing, kind:workerN@iteration (kind: crash,
// stall, or slow — mapped engine only), kind:shardN@iteration (kind:
// crash, stall, or partition — distributed engine only), or rand:N@seed.
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{}
	for _, entry := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("faults: entry %q: want kind:filter@firing or rand:N@seed", entry)
		}
		target, atStr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("faults: entry %q: missing @", entry)
		}
		at, err := strconv.ParseInt(strings.TrimSpace(atStr), 10, 64)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("faults: entry %q: bad number after @", entry)
		}
		if kindStr == "rand" {
			n, err := strconv.Atoi(strings.TrimSpace(target))
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("faults: entry %q: rand wants a positive count", entry)
			}
			if p.Rand != nil {
				return nil, fmt.Errorf("faults: at most one rand entry")
			}
			p.Rand = &RandSpec{N: n, Seed: at, MaxFiring: 256}
			continue
		}
		target = strings.TrimSpace(target)
		if sh, ok := shardTarget(target); ok {
			var kind Kind
			switch kindStr {
			case "crash":
				kind = Crash
			case "stall":
				kind = Stall
			case "partition":
				kind = Partition
			default:
				return nil, fmt.Errorf("faults: entry %q: shard faults want crash, stall, or partition", entry)
			}
			p.ShardFaults = append(p.ShardFaults, ShardFault{Shard: sh, Iter: at, Kind: kind})
			continue
		}
		if w, ok := workerTarget(target); ok {
			var kind Kind
			switch kindStr {
			case "crash":
				kind = Crash
			case "stall":
				kind = Stall
			case "slow":
				kind = Slow
			default:
				return nil, fmt.Errorf("faults: entry %q: worker faults want crash, stall, or slow", entry)
			}
			p.WorkerFaults = append(p.WorkerFaults, WorkerFault{Worker: w, Iter: at, Kind: kind})
			continue
		}
		if kindStr == "crash" || kindStr == "slow" {
			return nil, fmt.Errorf("faults: entry %q: %s faults target workers (workerN), not filters", entry, kindStr)
		}
		if kindStr == "partition" {
			return nil, fmt.Errorf("faults: entry %q: partition faults target shards (shardN), not filters", entry)
		}
		kind, err := ParseKind(kindStr)
		if err != nil {
			return nil, err
		}
		p.Faults = append(p.Faults, Fault{Filter: target, Firing: at, Kind: kind})
	}
	if p.Empty() {
		return nil, fmt.Errorf("faults: empty plan %q", spec)
	}
	return p, nil
}

// BaseName strips the instance decorations the compiler appends to node
// names — the flattener's "#ID" uniquifier and the fission rewrite's
// "/fN" replica suffix — recovering the source-level filter or segment
// name users write in fault plans and policy specs. A fused segment's
// base keeps its "A+B" form; SplitConstituents recovers the pieces.
func BaseName(node string) string {
	if i := strings.IndexByte(node, '#'); i >= 0 {
		node = node[:i]
	}
	if base, _, ok := replicaName(node); ok {
		node = base
	}
	return node
}

// replicaName splits a fission-replica instance name ("Seg/f3", already
// stripped of any "#ID" suffix) into its segment name and replica index.
func replicaName(node string) (string, int, bool) {
	i := strings.LastIndex(node, "/f")
	if i < 0 {
		return "", 0, false
	}
	idx, err := strconv.Atoi(node[i+2:])
	if err != nil || idx < 0 {
		return "", 0, false
	}
	return node[:i], idx, true
}

// SplitConstituents lists the source-level filters folded into a base
// name by fusion ("A+B" -> A, B); a plain name is its own only
// constituent.
func SplitConstituents(base string) []string {
	return strings.Split(base, "+")
}

// Materialize resolves the plan against a graph's filter names (in
// deterministic graph order): explicit faults are validated, and the rand
// spec is expanded with a seeded generator so the same seed over the same
// filter list always yields the same schedule.
//
// A fault written against a source-level name also resolves onto the
// instances the mapped rewrite synthesizes from it: a name matching one
// fused segment ("A+B#3" for target A or B) resolves directly, and a name
// matching a complete fission-replica set ("F/f0..F/f{k-1}") is remapped
// so the fault lands where the original firing went — replica firing%k at
// its firing/k firing, the round-robin scatter's distribution law.
func (p *Plan) Materialize(filters []string) ([]Fault, error) {
	if p == nil {
		return nil, nil
	}
	known := make(map[string]bool, len(filters))
	byPre := make(map[string][]string, len(filters))  // name sans "#ID"
	byBase := make(map[string][]string, len(filters)) // source-level base
	byPart := make(map[string][]string)               // fused constituents
	for _, f := range filters {
		known[f] = true
		pre := f
		if i := strings.IndexByte(pre, '#'); i >= 0 {
			pre = pre[:i]
		}
		byPre[pre] = append(byPre[pre], f)
		base := BaseName(f)
		if base != pre {
			byBase[base] = append(byBase[base], f)
		}
		if parts := SplitConstituents(base); len(parts) > 1 {
			for _, part := range parts {
				byPart[part] = append(byPart[part], f)
			}
		}
	}
	out := append([]Fault(nil), p.Faults...)
	for i, f := range out {
		if known[f.Filter] {
			continue
		}
		matches := byPre[f.Filter]
		if len(matches) == 0 {
			matches = byBase[f.Filter]
		}
		if len(matches) == 0 {
			matches = byPart[f.Filter]
		}
		switch len(matches) {
		case 0:
			return nil, fmt.Errorf("faults: filter %q not in graph (have %s)", f.Filter, strings.Join(filters, ", "))
		case 1:
			out[i].Filter = matches[0]
		default:
			replicas, ok := replicaSet(matches)
			if !ok {
				return nil, fmt.Errorf("faults: filter %q is ambiguous (instances %s); use a full node name", f.Filter, strings.Join(matches, ", "))
			}
			k := int64(len(replicas))
			out[i].Filter = replicas[f.Firing%k]
			out[i].Firing = f.Firing / k
		}
	}
	if p.Rand != nil {
		if len(filters) == 0 {
			return nil, fmt.Errorf("faults: rand plan needs at least one filter")
		}
		rng := rand.New(rand.NewSource(p.Rand.Seed))
		for i := 0; i < p.Rand.N; i++ {
			kind := Panic
			if rng.Intn(2) == 1 {
				kind = Corrupt
			}
			out = append(out, Fault{
				Filter: filters[rng.Intn(len(filters))],
				Firing: rng.Int63n(p.Rand.MaxFiring),
				Kind:   kind,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Firing < out[j].Firing })
	return out, nil
}

// replicaSet checks whether the matched instances form one complete
// fission-replica set of a single segment (indices exactly 0..k-1) and
// returns them ordered by replica index.
func replicaSet(matches []string) ([]string, bool) {
	ordered := make([]string, len(matches))
	var seg string
	for _, m := range matches {
		pre := m
		if i := strings.IndexByte(pre, '#'); i >= 0 {
			pre = pre[:i]
		}
		base, idx, ok := replicaName(pre)
		if !ok || idx >= len(matches) || ordered[idx] != "" {
			return nil, false
		}
		if seg == "" {
			seg = base
		} else if seg != base {
			return nil, false
		}
		ordered[idx] = m
	}
	return ordered, true
}

// Injector hands scheduled faults to an engine as it fires filters. It is
// safe for concurrent use (the parallel and dynamic engines consult it
// from every node goroutine).
type Injector struct {
	mu      sync.Mutex
	pending map[string][]Fault // per filter, ascending by firing
}

// NewInjector materializes a plan against the graph's filter names. A nil
// or empty plan yields an injector that never fires.
func NewInjector(p *Plan, filters []string) (*Injector, error) {
	sched, err := p.Materialize(filters)
	if err != nil {
		return nil, err
	}
	inj := &Injector{pending: map[string][]Fault{}}
	for _, f := range sched {
		inj.pending[f.Filter] = append(inj.pending[f.Filter], f)
	}
	return inj, nil
}

// Next returns the scheduled fault due for this filter at (or before) the
// given firing index, consuming it. One-shot consumption means a retried
// firing does not re-trigger the same fault.
func (inj *Injector) Next(filter string, firing int64) (Fault, bool) {
	if inj == nil {
		return Fault{}, false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	q := inj.pending[filter]
	if len(q) == 0 || q[0].Firing > firing {
		return Fault{}, false
	}
	f := q[0]
	inj.pending[filter] = q[1:]
	return f, true
}

// Remaining returns the number of faults not yet triggered.
func (inj *Injector) Remaining() int {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	n := 0
	for _, q := range inj.pending {
		n += len(q)
	}
	return n
}

// Schedule returns the not-yet-triggered faults in deterministic order
// (for -explain style tooling).
func (inj *Injector) Schedule() []Fault {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var out []Fault
	for _, q := range inj.pending {
		out = append(out, q...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Firing != out[j].Firing {
			return out[i].Firing < out[j].Firing
		}
		if out[i].Filter != out[j].Filter {
			return out[i].Filter < out[j].Filter
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
