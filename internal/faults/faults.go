// Package faults is the runtime-robustness substrate of the execution
// engines: a deterministic, seedable fault injector (kernel panics, stalls,
// and value corruption at chosen firings) and per-kernel recovery policies
// (fail, retry, skip, restart). The paper's execution model assumes filters
// never fail; this package supplies the controlled failure modes and the
// recovery vocabulary that let the engines prove they can diagnose and
// survive a misbehaving kernel instead of hanging or dying on a bare panic.
//
// Plans are textual so they thread through CLI flags:
//
//	panic:LowPass@12;corrupt:Eq@30;stall:Demod@5
//	rand:4@42
//
// The first form schedules explicit one-shot faults ("make filter LowPass
// panic at its 12th firing"). The second derives a pseudo-random schedule
// of 4 panic/corrupt faults from seed 42 — the same seed over the same
// graph always yields the same schedule, so a failure found by a fuzzing
// run is replayable bit-for-bit.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind enumerates injected failure modes.
type Kind int

const (
	// Panic makes the firing fail as if the kernel panicked.
	Panic Kind = iota
	// Stall makes the kernel block forever (watchdog fodder). The
	// sequential engine, which has no watchdog, reports stalls
	// synchronously as errors.
	Stall
	// Corrupt lets the firing run but replaces every value it pushes with
	// CorruptValue.
	Corrupt
)

// CorruptValue is the sentinel emitted by Corrupt faults — large, exactly
// representable, and never produced by the benchmark kernels, so degraded
// output is unmistakable in tests and logs.
const CorruptValue = 9.9e99

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Stall:
		return "stall"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind maps the spec names onto Kind values.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "panic":
		return Panic, nil
	case "stall":
		return Stall, nil
	case "corrupt":
		return Corrupt, nil
	}
	return 0, fmt.Errorf("faults: unknown fault kind %q (want panic, stall, or corrupt)", s)
}

// Fault is one scheduled failure: filter Filter misbehaves at its
// Firing-th firing (0-based, counted per engine from the start of the
// supervised phase). Faults are one-shot: once triggered they are consumed,
// so a retried or restarted firing succeeds.
type Fault struct {
	Filter string
	Firing int64
	Kind   Kind
}

// String renders the spec form of the fault.
func (f Fault) String() string {
	return fmt.Sprintf("%s:%s@%d", f.Kind, f.Filter, f.Firing)
}

// RandSpec asks for N pseudo-random faults derived from Seed, scheduled
// over the graph's filters within the first MaxFiring firings. Stalls are
// never generated randomly (they would hang watchdog-less engines);
// explicit specs can still schedule them.
type RandSpec struct {
	N         int
	Seed      int64
	MaxFiring int64
}

// Plan is a parsed fault schedule: explicit faults plus an optional random
// generator, materialized against a concrete graph by NewInjector.
type Plan struct {
	Faults []Fault
	Rand   *RandSpec
}

// Empty reports whether the plan schedules nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Faults) == 0 && p.Rand == nil)
}

// ParsePlan parses a -faults flag value. Entries are separated by ';' or
// ','; each is kind:filter@firing or rand:N@seed.
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{}
	for _, entry := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("faults: entry %q: want kind:filter@firing or rand:N@seed", entry)
		}
		target, atStr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("faults: entry %q: missing @", entry)
		}
		at, err := strconv.ParseInt(strings.TrimSpace(atStr), 10, 64)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("faults: entry %q: bad number after @", entry)
		}
		if kindStr == "rand" {
			n, err := strconv.Atoi(strings.TrimSpace(target))
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("faults: entry %q: rand wants a positive count", entry)
			}
			if p.Rand != nil {
				return nil, fmt.Errorf("faults: at most one rand entry")
			}
			p.Rand = &RandSpec{N: n, Seed: at, MaxFiring: 256}
			continue
		}
		kind, err := ParseKind(kindStr)
		if err != nil {
			return nil, err
		}
		p.Faults = append(p.Faults, Fault{Filter: strings.TrimSpace(target), Firing: at, Kind: kind})
	}
	if p.Empty() {
		return nil, fmt.Errorf("faults: empty plan %q", spec)
	}
	return p, nil
}

// BaseName strips the "#ID" uniquifier the flattener appends to node
// names, recovering the source-level filter name users write in fault
// plans and policy specs.
func BaseName(node string) string {
	if i := strings.IndexByte(node, '#'); i >= 0 {
		return node[:i]
	}
	return node
}

// Materialize resolves the plan against a graph's filter names (in
// deterministic graph order): explicit faults are validated, and the rand
// spec is expanded with a seeded generator so the same seed over the same
// filter list always yields the same schedule.
func (p *Plan) Materialize(filters []string) ([]Fault, error) {
	if p == nil {
		return nil, nil
	}
	known := make(map[string]bool, len(filters))
	byBase := make(map[string][]string, len(filters))
	for _, f := range filters {
		known[f] = true
		byBase[BaseName(f)] = append(byBase[BaseName(f)], f)
	}
	out := append([]Fault(nil), p.Faults...)
	for i, f := range out {
		if known[f.Filter] {
			continue
		}
		// Flattened node names carry a "#ID" uniquifier; resolve a bare
		// source-level name when it is unambiguous.
		switch matches := byBase[f.Filter]; len(matches) {
		case 1:
			out[i].Filter = matches[0]
		case 0:
			return nil, fmt.Errorf("faults: filter %q not in graph (have %s)", f.Filter, strings.Join(filters, ", "))
		default:
			return nil, fmt.Errorf("faults: filter %q is ambiguous (instances %s); use a full node name", f.Filter, strings.Join(matches, ", "))
		}
	}
	if p.Rand != nil {
		if len(filters) == 0 {
			return nil, fmt.Errorf("faults: rand plan needs at least one filter")
		}
		rng := rand.New(rand.NewSource(p.Rand.Seed))
		for i := 0; i < p.Rand.N; i++ {
			kind := Panic
			if rng.Intn(2) == 1 {
				kind = Corrupt
			}
			out = append(out, Fault{
				Filter: filters[rng.Intn(len(filters))],
				Firing: rng.Int63n(p.Rand.MaxFiring),
				Kind:   kind,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Firing < out[j].Firing })
	return out, nil
}

// Injector hands scheduled faults to an engine as it fires filters. It is
// safe for concurrent use (the parallel and dynamic engines consult it
// from every node goroutine).
type Injector struct {
	mu      sync.Mutex
	pending map[string][]Fault // per filter, ascending by firing
}

// NewInjector materializes a plan against the graph's filter names. A nil
// or empty plan yields an injector that never fires.
func NewInjector(p *Plan, filters []string) (*Injector, error) {
	sched, err := p.Materialize(filters)
	if err != nil {
		return nil, err
	}
	inj := &Injector{pending: map[string][]Fault{}}
	for _, f := range sched {
		inj.pending[f.Filter] = append(inj.pending[f.Filter], f)
	}
	return inj, nil
}

// Next returns the scheduled fault due for this filter at (or before) the
// given firing index, consuming it. One-shot consumption means a retried
// firing does not re-trigger the same fault.
func (inj *Injector) Next(filter string, firing int64) (Fault, bool) {
	if inj == nil {
		return Fault{}, false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	q := inj.pending[filter]
	if len(q) == 0 || q[0].Firing > firing {
		return Fault{}, false
	}
	f := q[0]
	inj.pending[filter] = q[1:]
	return f, true
}

// Remaining returns the number of faults not yet triggered.
func (inj *Injector) Remaining() int {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	n := 0
	for _, q := range inj.pending {
		n += len(q)
	}
	return n
}

// Schedule returns the not-yet-triggered faults in deterministic order
// (for -explain style tooling).
func (inj *Injector) Schedule() []Fault {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var out []Fault
	for _, q := range inj.pending {
		out = append(out, q...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Firing != out[j].Firing {
			return out[i].Firing < out[j].Firing
		}
		if out[i].Filter != out[j].Filter {
			return out[i].Filter < out[j].Filter
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
