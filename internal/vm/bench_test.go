package vm

import (
	"testing"

	"streamit/internal/wfunc"
)

// firKernel builds the canonical hot work function — an n-tap FIR
// accumulation loop — for microbenchmarking the execution substrates in
// isolation (no engine, no scheduling, a slice tape).
func firKernel(n int) *wfunc.Kernel {
	b := wfunc.NewKernel("fir", n, 1, 1)
	w := b.FieldArray("w", n)
	i := b.Local("i")
	sum := b.Local("sum")
	b.WorkBody(
		wfunc.Set(sum, wfunc.C(0)),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(n),
			wfunc.Set(sum, wfunc.AddX(sum, wfunc.MulX(wfunc.PeekX(i), wfunc.FIdx(w, i))))),
		wfunc.Pop1(),
		wfunc.Push1(sum),
	)
	return b.Build()
}

func firState(k *wfunc.Kernel, n int) *wfunc.State {
	st := k.NewState()
	for i := range st.Arrays[0] {
		st.Arrays[0][i] = 1.0 / float64(n)
	}
	return st
}

const benchTaps = 256

// BenchmarkFIRInterp measures one work-function firing on the
// tree-walking interpreter.
func BenchmarkFIRInterp(b *testing.B) {
	k := firKernel(benchTaps)
	st := firState(k, benchTaps)
	env := wfunc.NewEnv(k.Work)
	env.State = st
	in := &wfunc.SliceTape{}
	out := &wfunc.SliceTape{}
	for i := 0; i < benchTaps+b.N; i++ {
		in.Push(float64(i % 17))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Reset()
		env.In, env.Out = in, out
		if err := wfunc.Exec(k.Work, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFIRVM measures the same firing on the bytecode VM.
func BenchmarkFIRVM(b *testing.B) {
	k := firKernel(benchTaps)
	st := firState(k, benchTaps)
	p, err := Compile(k.Work)
	if err != nil {
		b.Fatal(err)
	}
	m := NewMachine(p)
	m.SetState(st)
	in := &wfunc.SliceTape{}
	out := &wfunc.SliceTape{}
	for i := 0; i < benchTaps+b.N; i++ {
		in.Push(float64(i % 17))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Run(in, out, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}
