// Package vm executes work-function IL as flat bytecode instead of walking
// the statement/expression tree. The compiler (compile.go) lowers a
// wfunc.Func — after constant folding — into a stack bytecode with resolved
// local/field/array slots, short-circuit control flow turned into jumps,
// and direct push/pop/peek tape instructions; the Machine here runs that
// bytecode against the same wfunc.Tape / wfunc.Messenger interfaces the
// interpreter uses.
//
// The VM is bit-identical to the interpreter by construction: all values
// are float64, the uncommon operators delegate to wfunc.EvalUnary and
// wfunc.EvalBinary (the shared semantic definitions), evaluation order of
// every tape operation is preserved, and message sends fire at exactly the
// same points, so sdep-based teleport delivery is unchanged. Dispatch over
// a flat instruction array replaces the interpreter's per-node type
// switches, recursive calls, and error plumbing, which is worth several
// times the throughput on the hot path every engine shares.
package vm

import (
	"fmt"

	"streamit/internal/wfunc"
)

// Op is a bytecode opcode. The zero value is invalid so that sparse
// operator-mapping tables fail loudly on unmapped entries.
type Op uint8

// Opcodes. The structural group below carries an operand in instr.a: a
// constant-pool index, a local/field/array slot, an absolute jump target,
// or a send-site index. The operator group is operand-free stack
// arithmetic; logical && and || have no opcodes because the compiler
// lowers their short-circuit evaluation into jumps.
const (
	opInvalid Op = iota

	opConst         // push consts[a]
	opLoadLocal     // push locals[a]
	opStoreLocal    // locals[a] = pop
	opLoadField     // push state.Scalars[a]
	opStoreField    // state.Scalars[a] = pop
	opLoadLocalIdx  // i = pop; push arrays[a][i]
	opStoreLocalIdx // i = pop; arrays[a][i] = pop
	opLoadFieldIdx  // i = pop; push state.Arrays[a][i]
	opStoreFieldIdx // i = pop; state.Arrays[a][i] = pop
	opPeek          // i = pop; push in.Peek(i)
	opPopV          // push in.Pop()
	opPopN          // in.Pop(), value discarded
	opPushV         // out.Push(pop)
	opJump          // pc = a
	opJumpIfZero    // if pop == 0 { pc = a }
	opBool          // tos = (tos != 0) ? 1 : 0
	opIncLocal      // locals[a] += pop (counted-loop step)
	opPrint         // print hook gets pop
	opSend          // deliver sends[a], popping its argument count

	// Fused superinstructions. The compiler emits these for the hot
	// shapes of real work functions (FIR-style accumulation loops):
	// peeking at a loop variable, indexing an array by a loop variable,
	// counted-loop heads with constant bounds, and constant steps. Each
	// replaces a 2–4 instruction sequence with identical semantics.
	opPeekLocal     // push in.Peek(int(locals[a]))
	opLoadLocalIdxL // push arrays[a][int(locals[b])]
	opLoadFieldIdxL // push state.Arrays[a][int(locals[b])]
	opJGeLC         // if !(locals[b&0xffff] < consts[b>>16]) { pc = a }
	opIncLocalC     // locals[a] += consts[b]

	// Unary operators (dedicated opcodes keep the hot ones branch-cheap;
	// the trigonometric tail delegates to wfunc.EvalUnary).
	opNeg
	opNot
	opTrunc
	opAbs
	opUnaryEv // a = wfunc.UnOp, via wfunc.EvalUnary

	// Binary operators.
	opAdd
	opSub
	opMul
	opDiv
	opEq
	opNe
	opLt
	opLe
	opGt
	opGe
	opBinaryEv // a = wfunc.BinOp, via wfunc.EvalBinary
)

// instr is one bytecode instruction: an opcode plus up to two operands
// (the second is used only by fused superinstructions).
type instr struct {
	op   Op
	a, b int32
}

// sendSite is the static part of one teleport Send statement.
type sendSite struct {
	portal     int
	handler    string
	nargs      int
	minLat     int
	maxLat     int
	bestEffort bool
}

// Program is a compiled work function: flat code, a constant pool, send
// sites, and the frame geometry the Machine must allocate. Programs are
// immutable and shared by every Machine (filter instance) running them.
type Program struct {
	name       string
	code       []instr
	consts     []float64
	sends      []sendSite
	numLocals  int
	arraySizes []int
	maxStack   int
}

// Name returns the compiled function's name (for diagnostics).
func (p *Program) Name() string { return p.name }

// Len returns the instruction count (for tests and size accounting).
func (p *Program) Len() int { return len(p.code) }

// Machine is the mutable execution frame for one Program: the operand
// stack, zero-initialized locals, and local arrays. One Machine per filter
// instance; Run fires the work function once.
type Machine struct {
	prog   *Program
	stack  []float64
	locals []float64
	arrays [][]float64
	state  *wfunc.State
}

// NewMachine allocates a frame sized for p.
func NewMachine(p *Program) *Machine {
	m := &Machine{
		prog:   p,
		stack:  make([]float64, p.maxStack),
		locals: make([]float64, p.numLocals),
		arrays: make([][]float64, len(p.arraySizes)),
	}
	for i, n := range p.arraySizes {
		m.arrays[i] = make([]float64, n)
	}
	return m
}

// SetState attaches the filter's field storage. Call again after a
// snapshot restore replaces the state object.
func (m *Machine) SetState(st *wfunc.State) { m.state = st }

// fail attaches the function name to an error, matching the interpreter's
// wrapping in wfunc.Exec.
func (m *Machine) fail(format string, args ...any) error {
	return fmt.Errorf("%s: %s", m.prog.name, fmt.Sprintf(format, args...))
}

// Run executes one invocation of the program: locals and local arrays are
// zeroed (IL frame semantics), then the bytecode runs to completion.
// in/out are the filter's tapes, msg receives teleport sends, and print
// receives println values (nil discards them).
func (m *Machine) Run(in, out wfunc.Tape, msg wfunc.Messenger, print func(float64)) error {
	locals := m.locals
	for i := range locals {
		locals[i] = 0
	}
	for _, arr := range m.arrays {
		for i := range arr {
			arr[i] = 0
		}
	}
	p := m.prog
	code := p.code
	st := m.stack
	var scalars []float64
	var fieldArrs [][]float64
	if m.state != nil {
		scalars = m.state.Scalars
		fieldArrs = m.state.Arrays
	}
	sp := 0
	for pc := 0; pc < len(code); {
		ins := code[pc]
		pc++
		switch ins.op {
		case opConst:
			st[sp] = p.consts[ins.a]
			sp++
		case opLoadLocal:
			st[sp] = locals[ins.a]
			sp++
		case opStoreLocal:
			sp--
			locals[ins.a] = st[sp]
		case opLoadField:
			st[sp] = scalars[ins.a]
			sp++
		case opStoreField:
			sp--
			scalars[ins.a] = st[sp]
		case opLoadLocalIdx:
			arr := m.arrays[ins.a]
			ix := int(st[sp-1])
			if ix < 0 || ix >= len(arr) {
				return m.fail("array index %d out of range [0,%d)", ix, len(arr))
			}
			st[sp-1] = arr[ix]
		case opStoreLocalIdx:
			arr := m.arrays[ins.a]
			ix := int(st[sp-1])
			if ix < 0 || ix >= len(arr) {
				return m.fail("array index %d out of range [0,%d)", ix, len(arr))
			}
			arr[ix] = st[sp-2]
			sp -= 2
		case opLoadFieldIdx:
			arr := fieldArrs[ins.a]
			ix := int(st[sp-1])
			if ix < 0 || ix >= len(arr) {
				return m.fail("array index %d out of range [0,%d)", ix, len(arr))
			}
			st[sp-1] = arr[ix]
		case opStoreFieldIdx:
			arr := fieldArrs[ins.a]
			ix := int(st[sp-1])
			if ix < 0 || ix >= len(arr) {
				return m.fail("array index %d out of range [0,%d)", ix, len(arr))
			}
			arr[ix] = st[sp-2]
			sp -= 2
		case opPeek:
			if in == nil {
				return m.fail("peek outside work function")
			}
			st[sp-1] = in.Peek(int(st[sp-1]))
		case opPopV:
			if in == nil {
				return m.fail("pop outside work function")
			}
			st[sp] = in.Pop()
			sp++
		case opPopN:
			if in == nil {
				return m.fail("pop outside work function")
			}
			in.Pop()
		case opPushV:
			if out == nil {
				return m.fail("push outside work function")
			}
			sp--
			out.Push(st[sp])
		case opJump:
			pc = int(ins.a)
		case opJumpIfZero:
			sp--
			if st[sp] == 0 {
				pc = int(ins.a)
			}
		case opBool:
			if st[sp-1] != 0 {
				st[sp-1] = 1
			} else {
				st[sp-1] = 0
			}
		case opIncLocal:
			sp--
			locals[ins.a] += st[sp]
		case opPrint:
			sp--
			if print != nil {
				print(st[sp])
			}
		case opSend:
			if msg == nil {
				return m.fail("message send with no messenger attached")
			}
			site := &p.sends[ins.a]
			args := make([]float64, site.nargs)
			sp -= site.nargs
			copy(args, st[sp:sp+site.nargs])
			if err := msg.Send(site.portal, site.handler, args, site.minLat, site.maxLat, site.bestEffort); err != nil {
				return m.fail("%v", err)
			}

		case opPeekLocal:
			if in == nil {
				return m.fail("peek outside work function")
			}
			st[sp] = in.Peek(int(locals[ins.a]))
			sp++
		case opLoadLocalIdxL:
			arr := m.arrays[ins.a]
			ix := int(locals[ins.b])
			if ix < 0 || ix >= len(arr) {
				return m.fail("array index %d out of range [0,%d)", ix, len(arr))
			}
			st[sp] = arr[ix]
			sp++
		case opLoadFieldIdxL:
			arr := fieldArrs[ins.a]
			ix := int(locals[ins.b])
			if ix < 0 || ix >= len(arr) {
				return m.fail("array index %d out of range [0,%d)", ix, len(arr))
			}
			st[sp] = arr[ix]
			sp++
		case opJGeLC:
			// Counted-loop head: jump out unless locals < const. Written as
			// !(a < b) — not a >= b — so NaN bounds exit like the
			// interpreter's failed < comparison.
			if !(locals[ins.b&0xffff] < p.consts[ins.b>>16]) {
				pc = int(ins.a)
			}
		case opIncLocalC:
			locals[ins.a] += p.consts[ins.b]

		case opNeg:
			st[sp-1] = -st[sp-1]
		case opNot:
			if st[sp-1] == 0 {
				st[sp-1] = 1
			} else {
				st[sp-1] = 0
			}
		case opTrunc:
			st[sp-1] = wfunc.EvalUnary(wfunc.Trunc, st[sp-1])
		case opAbs:
			st[sp-1] = wfunc.EvalUnary(wfunc.Abs, st[sp-1])
		case opUnaryEv:
			st[sp-1] = wfunc.EvalUnary(wfunc.UnOp(ins.a), st[sp-1])

		case opAdd:
			st[sp-2] += st[sp-1]
			sp--
		case opSub:
			st[sp-2] -= st[sp-1]
			sp--
		case opMul:
			st[sp-2] *= st[sp-1]
			sp--
		case opDiv:
			st[sp-2] /= st[sp-1]
			sp--
		case opEq:
			st[sp-2] = b2f(st[sp-2] == st[sp-1])
			sp--
		case opNe:
			st[sp-2] = b2f(st[sp-2] != st[sp-1])
			sp--
		case opLt:
			st[sp-2] = b2f(st[sp-2] < st[sp-1])
			sp--
		case opLe:
			st[sp-2] = b2f(st[sp-2] <= st[sp-1])
			sp--
		case opGt:
			st[sp-2] = b2f(st[sp-2] > st[sp-1])
			sp--
		case opGe:
			st[sp-2] = b2f(st[sp-2] >= st[sp-1])
			sp--
		case opBinaryEv:
			st[sp-2] = wfunc.EvalBinary(wfunc.BinOp(ins.a), st[sp-2], st[sp-1])
			sp--

		default:
			return m.fail("invalid opcode %d at pc %d", ins.op, pc-1)
		}
	}
	return nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
