package vm

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"streamit/internal/wfunc"
)

// runBoth executes k's work function once on the interpreter and once on
// the VM from identical starting conditions and returns both result sets:
// output items, final field state, and errors.
func runBoth(t *testing.T, k *wfunc.Kernel, input []float64) (iOut, vOut []float64, iErr, vErr error) {
	t.Helper()
	iIn := wfunc.NewSliceTape(input...)
	iTape := wfunc.NewSliceTape()
	iSt := k.NewState()
	env := wfunc.NewEnv(k.Work)
	env.State = iSt
	env.In, env.Out = iIn, iTape
	env.Reset()
	iErr = wfunc.Exec(k.Work, env)

	vIn := wfunc.NewSliceTape(input...)
	vTape := wfunc.NewSliceTape()
	vSt := k.NewState()
	p, err := Compile(k.Work)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := NewMachine(p)
	m.SetState(vSt)
	vErr = m.Run(vIn, vTape, nil, nil)

	if iErr == nil && vErr == nil {
		compareStates(t, iSt, vSt)
		if iIn.Len() != vIn.Len() {
			t.Fatalf("consumed different amounts: interp left %d, vm left %d", iIn.Len(), vIn.Len())
		}
	}
	return iTape.Items(), vTape.Items(), iErr, vErr
}

func compareStates(t *testing.T, a, b *wfunc.State) {
	t.Helper()
	for i := range a.Scalars {
		if math.Float64bits(a.Scalars[i]) != math.Float64bits(b.Scalars[i]) {
			t.Fatalf("field scalar %d: interp %v, vm %v", i, a.Scalars[i], b.Scalars[i])
		}
	}
	for i := range a.Arrays {
		for j := range a.Arrays[i] {
			if math.Float64bits(a.Arrays[i][j]) != math.Float64bits(b.Arrays[i][j]) {
				t.Fatalf("field array %d[%d]: interp %v, vm %v", i, j, a.Arrays[i][j], b.Arrays[i][j])
			}
		}
	}
}

func compareItems(t *testing.T, iOut, vOut []float64) {
	t.Helper()
	if len(iOut) != len(vOut) {
		t.Fatalf("interp pushed %d items, vm pushed %d", len(iOut), len(vOut))
	}
	for i := range iOut {
		if math.Float64bits(iOut[i]) != math.Float64bits(vOut[i]) {
			t.Fatalf("output %d: interp %v, vm %v", i, iOut[i], vOut[i])
		}
	}
}

func TestFIRMatchesInterpreter(t *testing.T) {
	n := 16
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = math.Sin(float64(i) * 0.7)
	}
	kb := wfunc.NewKernel("fir", n, 1, 1)
	w := kb.FieldArray("w", n, weights...)
	i := kb.Local("i")
	sum := kb.Local("sum")
	kb.WorkBody(
		wfunc.Set(sum, wfunc.C(0)),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(n),
			wfunc.Set(sum, wfunc.AddX(sum, wfunc.MulX(wfunc.PeekX(i), wfunc.FIdx(w, i))))),
		wfunc.Pop1(),
		wfunc.Push1(sum),
	)
	k := kb.Build()
	input := make([]float64, n+4)
	for j := range input {
		input[j] = math.Cos(float64(j) * 1.3)
	}
	iOut, vOut, iErr, vErr := runBoth(t, k, input)
	if iErr != nil || vErr != nil {
		t.Fatalf("errors: interp %v, vm %v", iErr, vErr)
	}
	compareItems(t, iOut, vOut)
}

func TestControlFlowMatchesInterpreter(t *testing.T) {
	// Nested loops with break/continue, if/else, while, conditional
	// expressions, and short-circuit logic — the full structural surface.
	kb := wfunc.NewKernel("ctl", 4, 4, 3)
	acc := kb.Field("acc", 1)
	i := kb.Local("i")
	j := kb.Local("j")
	tmp := kb.Local("tmp")
	kb.WorkBody(
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(4),
			wfunc.Set(tmp, wfunc.PopE()),
			wfunc.IfElse(wfunc.Bin(wfunc.Gt, tmp, wfunc.C(0)),
				[]wfunc.Stmt{wfunc.SetF(acc, wfunc.AddX(acc, tmp))},
				[]wfunc.Stmt{wfunc.SetF(acc, wfunc.SubX(acc, tmp))}),
			wfunc.ForUp(j, wfunc.Ci(0), wfunc.Ci(10),
				wfunc.IfS(wfunc.Bin(wfunc.Eq, j, wfunc.C(3)), &wfunc.Break{}),
				wfunc.IfS(wfunc.Bin(wfunc.And, wfunc.Bin(wfunc.Gt, j, wfunc.C(0)), wfunc.Bin(wfunc.Lt, tmp, wfunc.C(0))), &wfunc.Continue{}),
				wfunc.SetF(acc, wfunc.AddX(acc, wfunc.C(0.125))),
			),
		),
		wfunc.Set(j, wfunc.C(0)),
		&wfunc.While{
			C: wfunc.Bin(wfunc.Lt, j, wfunc.C(6)),
			Body: []wfunc.Stmt{
				wfunc.Set(j, wfunc.AddX(j, wfunc.C(1))),
				wfunc.IfS(wfunc.Bin(wfunc.Or, wfunc.Bin(wfunc.Eq, j, wfunc.C(5)), wfunc.Bin(wfunc.Gt, j, wfunc.C(7))), &wfunc.Break{}),
			},
		},
		wfunc.Push1(wfunc.Bin(wfunc.Mod, acc, wfunc.C(7))),
		wfunc.Push1(&wfunc.Cond{C: wfunc.Bin(wfunc.Ge, acc, wfunc.C(1)), A: j, B: wfunc.Un(wfunc.Neg, j)}),
		wfunc.Push1(acc),
	)
	k := kb.Build()
	iOut, vOut, iErr, vErr := runBoth(t, k, []float64{1.5, -2.25, 3, -0.5})
	if iErr != nil || vErr != nil {
		t.Fatalf("errors: interp %v, vm %v", iErr, vErr)
	}
	compareItems(t, iOut, vOut)
}

func TestShortCircuitSkipsTapeEffects(t *testing.T) {
	// The right operand of && must not be evaluated when the left is
	// false — here the right operand pops, so miscompiling short-circuit
	// logic would desynchronize the tape.
	kb := wfunc.NewKernel("sc", 2, 2, 1).Dynamic()
	v := kb.Local("v")
	kb.WorkBody(
		wfunc.Set(v, wfunc.Bin(wfunc.And, wfunc.PopE(), wfunc.PopE())),
		wfunc.Push1(v),
	)
	k := kb.Build()
	// First pop yields 0: second pop must be skipped by both backends.
	iOut, vOut, iErr, vErr := runBoth(t, k, []float64{0, 42})
	if iErr != nil || vErr != nil {
		t.Fatalf("errors: interp %v, vm %v", iErr, vErr)
	}
	compareItems(t, iOut, vOut)
}

func TestArrayIndexErrorMatches(t *testing.T) {
	kb := wfunc.NewKernel("oob", 1, 1, 1)
	a := kb.FieldArray("a", 4)
	kb.WorkBody(
		wfunc.Pop1(),
		wfunc.Push1(wfunc.FIdx(a, wfunc.C(9))),
	)
	k := kb.Build()
	_, _, iErr, vErr := runBoth(t, k, []float64{1})
	if iErr == nil || vErr == nil {
		t.Fatalf("expected errors, got interp %v, vm %v", iErr, vErr)
	}
	if iErr.Error() != vErr.Error() {
		t.Fatalf("error text differs:\n  interp: %v\n  vm:     %v", iErr, vErr)
	}
}

// recorder captures teleport sends for comparison.
type recorder struct{ log []string }

func (r *recorder) Send(portal int, handler string, args []float64, minLat, maxLat int, bestEffort bool) error {
	r.log = append(r.log, fmt.Sprintf("%d/%s/%v/%d..%d/%v", portal, handler, args, minLat, maxLat, bestEffort))
	return nil
}

func TestSendsFireAtSamePoints(t *testing.T) {
	kb := wfunc.NewKernel("tx", 1, 1, 1)
	v := kb.Local("v")
	kb.WorkBody(
		wfunc.Set(v, wfunc.PopE()),
		wfunc.IfS(wfunc.Bin(wfunc.Gt, v, wfunc.C(0)),
			&wfunc.Send{Portal: 2, Handler: "setFreq", Args: []wfunc.Expr{v, wfunc.MulX(v, wfunc.C(2))}, MinLatency: 3, MaxLatency: 5}),
		wfunc.Push1(v),
	)
	k := kb.Build()

	run := func(useVM bool) []string {
		rec := &recorder{}
		in := wfunc.NewSliceTape(1.5, -2, 3)
		out := wfunc.NewSliceTape()
		st := k.NewState()
		if useVM {
			p, err := Compile(k.Work)
			if err != nil {
				t.Fatal(err)
			}
			m := NewMachine(p)
			m.SetState(st)
			for f := 0; f < 3; f++ {
				if err := m.Run(in, out, rec, nil); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			env := wfunc.NewEnv(k.Work)
			env.State = st
			env.In, env.Out = in, out
			env.Msg = rec
			for f := 0; f < 3; f++ {
				env.Reset()
				if err := wfunc.Exec(k.Work, env); err != nil {
					t.Fatal(err)
				}
			}
		}
		return rec.log
	}
	iLog, vLog := run(false), run(true)
	if len(iLog) != len(vLog) {
		t.Fatalf("send counts differ: interp %d, vm %d", len(iLog), len(vLog))
	}
	for i := range iLog {
		if iLog[i] != vLog[i] {
			t.Fatalf("send %d differs:\n  interp: %s\n  vm:     %s", i, iLog[i], vLog[i])
		}
	}
}

func TestPrintMatchesAndNilHookDiscards(t *testing.T) {
	kb := wfunc.NewKernel("pr", 1, 1, 1)
	v := kb.Local("v")
	kb.WorkBody(
		wfunc.Set(v, wfunc.PopE()),
		&wfunc.Print{X: wfunc.MulX(v, wfunc.C(10))},
		wfunc.Push1(v),
	)
	k := kb.Build()
	p, err := Compile(k.Work)
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	m := NewMachine(p)
	m.SetState(k.NewState())
	in := wfunc.NewSliceTape(4)
	out := wfunc.NewSliceTape()
	if err := m.Run(in, out, nil, func(x float64) { got = append(got, x) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 40 {
		t.Fatalf("print hook got %v, want [40]", got)
	}
	// nil hook: must not crash.
	in2 := wfunc.NewSliceTape(4)
	if err := m.Run(in2, wfunc.NewSliceTape(), nil, nil); err != nil {
		t.Fatal(err)
	}
}

// randExpr builds a random expression tree of bounded depth over the
// kernel's declared locals, fields, and peek window.
func randExpr(rng *rand.Rand, depth int, locals []*wfunc.LocalRef, fields []*wfunc.FieldRef, farr int, farrSize, peekWin int) wfunc.Expr {
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(5) {
		case 0:
			return wfunc.C(float64(rng.Intn(21)-10) / 4)
		case 1:
			return locals[rng.Intn(len(locals))]
		case 2:
			return fields[rng.Intn(len(fields))]
		case 3:
			return wfunc.FIdx(farr, wfunc.Ci(rng.Intn(farrSize)))
		default:
			return wfunc.PeekE(rng.Intn(peekWin))
		}
	}
	switch rng.Intn(3) {
	case 0:
		ops := []wfunc.UnOp{wfunc.Neg, wfunc.Not, wfunc.BitNot, wfunc.Trunc, wfunc.Abs, wfunc.Sin, wfunc.Cos, wfunc.Exp, wfunc.Sqrt, wfunc.Floor, wfunc.Ceil, wfunc.Round, wfunc.Atan}
		return wfunc.Un(ops[rng.Intn(len(ops))], randExpr(rng, depth-1, locals, fields, farr, farrSize, peekWin))
	case 1:
		ops := []wfunc.BinOp{wfunc.Add, wfunc.Sub, wfunc.Mul, wfunc.Div, wfunc.Mod, wfunc.Pow, wfunc.Atan2, wfunc.Min, wfunc.Max,
			wfunc.And, wfunc.Or, wfunc.BitAnd, wfunc.BitOr, wfunc.BitXor, wfunc.Shl, wfunc.Shr,
			wfunc.Eq, wfunc.Ne, wfunc.Lt, wfunc.Le, wfunc.Gt, wfunc.Ge}
		return wfunc.Bin(ops[rng.Intn(len(ops))],
			randExpr(rng, depth-1, locals, fields, farr, farrSize, peekWin),
			randExpr(rng, depth-1, locals, fields, farr, farrSize, peekWin))
	default:
		return &wfunc.Cond{
			C: randExpr(rng, depth-1, locals, fields, farr, farrSize, peekWin),
			A: randExpr(rng, depth-1, locals, fields, farr, farrSize, peekWin),
			B: randExpr(rng, depth-1, locals, fields, farr, farrSize, peekWin),
		}
	}
}

// TestRandomizedEquivalence compiles hundreds of random kernels and
// checks bit-identical behaviour (outputs, state, consumption) between
// the interpreter and the VM.
func TestRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const peekWin, farrSize = 6, 5
	for trial := 0; trial < 300; trial++ {
		kb := wfunc.NewKernel(fmt.Sprintf("rand%d", trial), peekWin, 2, 3)
		fa := kb.FieldArray("fa", farrSize, 0.5, -1.25, 2, 0.75, -3)
		fields := []*wfunc.FieldRef{kb.Field("f0", 1.5), kb.Field("f1", -0.5)}
		locals := []*wfunc.LocalRef{kb.Local("l0"), kb.Local("l1"), kb.Local("l2")}
		i := kb.Local("i")

		var body []wfunc.Stmt
		nstmt := rng.Intn(4) + 1
		for s := 0; s < nstmt; s++ {
			e := randExpr(rng, 3, locals, fields, fa, farrSize, peekWin)
			switch rng.Intn(4) {
			case 0:
				body = append(body, wfunc.Set(locals[rng.Intn(len(locals))], e))
			case 1:
				body = append(body, wfunc.SetF(fields[rng.Intn(len(fields))], e))
			case 2:
				body = append(body, wfunc.SetFIdx(fa, wfunc.Ci(rng.Intn(farrSize)), e))
			default:
				body = append(body, wfunc.IfElse(
					randExpr(rng, 2, locals, fields, fa, farrSize, peekWin),
					[]wfunc.Stmt{wfunc.Set(locals[0], e)},
					[]wfunc.Stmt{wfunc.Set(locals[1], e)}))
			}
		}
		// A loop accumulating over the peek window, then the static rate:
		// pop 2, push 3.
		body = append(body,
			wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(peekWin),
				wfunc.Set(locals[2], wfunc.AddX(locals[2], wfunc.PeekX(i)))),
			wfunc.Pop1(), wfunc.Pop1(),
			wfunc.Push1(locals[0]), wfunc.Push1(locals[1]), wfunc.Push1(locals[2]),
		)
		kb.WorkBody(body...)
		k := kb.Build()

		input := make([]float64, peekWin+2)
		for j := range input {
			input[j] = float64(rng.Intn(17)-8) / 2
		}
		iOut, vOut, iErr, vErr := runBoth(t, k, input)
		if (iErr == nil) != (vErr == nil) {
			t.Fatalf("trial %d: error mismatch: interp %v, vm %v", trial, iErr, vErr)
		}
		if iErr != nil {
			continue
		}
		compareItems(t, iOut, vOut)
	}
}

// TestFoldThenCompile makes sure the compiler accepts folded kernels (the
// pipeline the engines actually run: build → Fold → compile).
func TestFoldThenCompile(t *testing.T) {
	kb := wfunc.NewKernel("folded", 1, 1, 1)
	v := kb.Local("v")
	kb.WorkBody(
		wfunc.Set(v, wfunc.MulX(wfunc.PopE(), wfunc.AddX(wfunc.C(2), wfunc.C(3)))),
		wfunc.IfS(wfunc.C(1), wfunc.Push1(v)),
	)
	k := kb.Build()
	wfunc.FoldKernel(k)
	p, err := Compile(k.Work)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	m.SetState(k.NewState())
	out := wfunc.NewSliceTape()
	if err := m.Run(wfunc.NewSliceTape(2), out, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := out.Items(); len(got) != 1 || got[0] != 10 {
		t.Fatalf("got %v, want [10]", got)
	}
}
